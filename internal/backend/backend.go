// Package backend implements the execution backends the context
// descriptor's exec.engine selects: the gate-model statevector path (the
// paper's IBM Qiskit Aer substitute), the simulated-annealing path (the
// D-Wave Ocean neal substitute), and a pulse-model path. A registry maps
// engine names — including the paper's own "gate.aer_simulator" and the
// Ocean-style "anneal.neal" — to implementations.
package backend

import (
	"fmt"
	"sort"

	"repro/internal/bundle"
	"repro/internal/result"
)

// Backend executes a validated job bundle.
type Backend interface {
	// Name is the canonical engine name.
	Name() string
	// Execute realizes and runs the bundle, returning decoded results.
	Execute(b *bundle.Bundle) (*result.Result, error)
}

// DefaultShots is used when the context specifies no sample count.
const DefaultShots = 1024

var registry = map[string]func() Backend{
	"gate.statevector":   func() Backend { return &Gate{engine: "gate.statevector"} },
	"gate.aer_simulator": func() Backend { return &Gate{engine: "gate.aer_simulator"} },
	"anneal.sa":          func() Backend { return &Anneal{engine: "anneal.sa"} },
	"anneal.neal":        func() Backend { return &Anneal{engine: "anneal.neal"} },
	"pulse.model":        func() Backend { return &Pulse{engine: "pulse.model"} },
}

// Get returns a backend for the engine name.
func Get(engine string) (Backend, error) {
	f, ok := registry[engine]
	if !ok {
		return nil, fmt.Errorf("backend: unknown engine %q (known: %v)", engine, Engines())
	}
	return f(), nil
}

// Engines returns the registered engine names, sorted.
func Engines() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
