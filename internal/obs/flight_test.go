package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestFlightWrapKeepsNewest(t *testing.T) {
	f := NewFlight(16)
	for i := 0; i < 40; i++ {
		f.Record(FlightJobDone, "j", "")
	}
	if f.Len() != 40 {
		t.Fatalf("Len = %d, want 40", f.Len())
	}
	evs := f.Events()
	if len(evs) != 16 {
		t.Fatalf("ring holds %d events, want capacity 16", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(24 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (newest 16, oldest first)", i, ev.Seq, want)
		}
	}
}

func TestFlightTailAndDuration(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightJobQueued, "a", "first")
	f.RecordDur(FlightKernelBatch, "b", "batch", 3*time.Millisecond)
	tail := f.Tail(1)
	if len(tail) != 1 || tail[0].Kind != FlightKernelBatch || tail[0].DurNs != int64(3*time.Millisecond) {
		t.Fatalf("Tail(1) = %+v, want the kernel batch with its duration", tail)
	}
}

func TestFlightNilIsInert(t *testing.T) {
	var f *Flight
	f.Record(FlightJobDone, "j", "") // must not panic
	if f.Events() != nil || f.Len() != 0 {
		t.Fatal("nil flight is not empty")
	}
}

// TestFlightConcurrentRecord hammers the ring from many goroutines
// (meaningful under -race): every claimed sequence number is unique and
// the snapshot stays sorted with no duplicates.
func TestFlightConcurrentRecord(t *testing.T) {
	f := NewFlight(64)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				f.Record(FlightKernelBatch, "j", "n")
			}
		}()
	}
	wg.Wait()
	if f.Len() != goroutines*perG {
		t.Fatalf("Len = %d, want %d", f.Len(), goroutines*perG)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("snapshot has %d events, want full ring of 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot out of order or duplicated at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightHandlerServesJSON(t *testing.T) {
	f := NewFlight(16)
	f.Record(FlightFleetForward, "job-1", "to worker w0")
	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var doc struct {
		Recorded uint64        `json:"recorded"`
		Events   []FlightEvent `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Recorded != 1 || len(doc.Events) != 1 || doc.Events[0].Kind != FlightFleetForward || doc.Events[0].Job != "job-1" {
		t.Fatalf("doc = %+v, want the one recorded forward", doc)
	}
}
