package repro

// End-to-end integration tests: full job.json workflows through the file
// system, cross-backend consistency, and the E-series invariants that
// span modules.

import (
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/runtime"
	"repro/internal/schemas"
	"repro/internal/transpile"
)

// TestE1E2_JobFileRoundTrip drives the paper's two §5 workflows through
// serialized job.json files, exactly as an external tool would.
func TestE1E2_JobFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)

	// Gate-path job file.
	seq, err := algolib.BuildQAOA(reg, g, []float64{0.3927}, []float64{1.1781})
	if err != nil {
		t.Fatal(err)
	}
	gateCtx := ctxdesc.NewGate("gate.aer_simulator", 2048, 42)
	gateBundle, err := bundle.New([]*qdt.DataType{reg}, seq, gateCtx)
	if err != nil {
		t.Fatal(err)
	}
	gatePath := filepath.Join(dir, "gate_job.json")
	if err := gateBundle.Save(gatePath); err != nil {
		t.Fatal(err)
	}

	// Anneal-path job file.
	isingOp, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(g))
	if err != nil {
		t.Fatal(err)
	}
	annealBundle, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{isingOp},
		ctxdesc.NewAnneal("anneal.neal", 1000, 42))
	if err != nil {
		t.Fatal(err)
	}
	annealPath := filepath.Join(dir, "anneal_job.json")
	if err := annealBundle.Save(annealPath); err != nil {
		t.Fatal(err)
	}

	// Reload and execute both, as qmlrun does.
	for _, tc := range []struct {
		path   string
		engine string
	}{
		{gatePath, "gate.aer_simulator"},
		{annealPath, "anneal.neal"},
	} {
		loaded, err := bundle.Load(tc.path, qop.ValidateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if err := loaded.ValidateAgainstSchemas(); err != nil {
			t.Fatalf("%s fails schemas: %v", tc.path, err)
		}
		res, err := runtime.Submit(loaded, runtime.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if res.Engine != tc.engine {
			t.Errorf("%s ran on %s", tc.path, res.Engine)
		}
		top, err := res.Top()
		if err != nil {
			t.Fatal(err)
		}
		if top.Bitstring != "1010" && top.Bitstring != "0101" {
			t.Errorf("%s top outcome %q, want an optimal cut", tc.path, top.Bitstring)
		}
	}
}

// TestE3_CrossBackendConsistency verifies that both backends agree on the
// optimal solutions of the same typed problem.
func TestE3_CrossBackendConsistency(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	exact := g.MaxCutBruteForce()

	seq, err := algolib.BuildQAOA(reg, g, []float64{0.3927}, []float64{1.1781})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", 4096, 1))
	if err != nil {
		t.Fatal(err)
	}
	gres, err := runtime.Submit(gb, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}

	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(g))
	if err != nil {
		t.Fatal(err)
	}
	ab, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctxdesc.NewAnneal("anneal.sa", 1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	ares, err := runtime.Submit(ab, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// The two most frequent strings of each backend must be exactly the
	// brute-force optima.
	wantSet := map[uint64]bool{}
	for _, m := range exact.Assignments {
		wantSet[m] = true
	}
	gres.Sort()
	ares.Sort()
	for i := 0; i < 2; i++ {
		if !wantSet[gres.Entries[i].Index] {
			t.Errorf("gate entry %d (%s) is not an optimal cut", i, gres.Entries[i].Bitstring)
		}
		if !wantSet[ares.Entries[i].Index] {
			t.Errorf("anneal entry %d (%s) is not an optimal cut", i, ares.Entries[i].Bitstring)
		}
	}
}

// TestE4_QFTUniform reproduces the Listing-1 motivational run.
func TestE4_QFTUniform(t *testing.T) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg},
		qop.Sequence{qft, algolib.NewMeasurement(reg)},
		ctxdesc.NewGate("gate.aer_simulator", 10000, 42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) < 990 {
		t.Errorf("only %d distinct outcomes; uniform over 1024 expected", len(res.Entries))
	}
	// Chi-square-like sanity: no outcome should be wildly off 9.77.
	for _, e := range res.Entries {
		if e.Count > 40 {
			t.Errorf("outcome %d count %d far above uniform", e.Index, e.Count)
		}
	}
}

// TestE5_QFTCostHint pins the Listing-3 numbers.
func TestE5_QFTCostHint(t *testing.T) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if qft.CostHint.TwoQ != 45 {
		t.Errorf("twoq hint %d, want 45 (Listing 3)", qft.CostHint.TwoQ)
	}
	if qft.CostHint.Depth != 100 {
		t.Errorf("depth hint %d, want 100 (Listing 3)", qft.CostHint.Depth)
	}
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := circ.CountOps()["cp"]; got != 45 {
		t.Errorf("realized cp count %d, want 45", got)
	}
}

// TestE6_CouplingMapRouting verifies the Listing-4 effect: the linear map
// inflates the two-qubit count.
func TestE6_CouplingMapRouting(t *testing.T) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	seq := qop.Sequence{qft, algolib.NewMeasurement(reg)}

	mkCtx := func(coupled bool) *ctxdesc.Context {
		ctx := ctxdesc.NewGate("gate.aer_simulator", 256, 42)
		ctx.Exec.Target = &ctxdesc.Target{BasisGates: []string{"sx", "rz", "cx"}}
		if coupled {
			for i := 0; i < 9; i++ {
				ctx.Exec.Target.CouplingMap = append(ctx.Exec.Target.CouplingMap, [2]int{i, i + 1})
			}
		}
		ctx.Exec.Options = map[string]any{"optimization_level": 2}
		return ctx
	}
	run := func(ctx *ctxdesc.Context) map[string]any {
		b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runtime.Submit(b, runtime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Meta
	}
	ideal, ok := run(mkCtx(false))["transpile"].(transpile.Stats)
	if !ok {
		t.Fatal("transpile stats missing from ideal run")
	}
	routed, ok := run(mkCtx(true))["transpile"].(transpile.Stats)
	if !ok {
		t.Fatal("transpile stats missing from routed run")
	}
	if routed.SwapsInserted == 0 {
		t.Error("linear coupling inserted no swaps")
	}
	if routed.TwoQAfter <= ideal.TwoQAfter {
		t.Errorf("routing did not inflate two-qubit count: %d vs %d",
			routed.TwoQAfter, ideal.TwoQAfter)
	}
	if routed.DepthAfter <= ideal.DepthAfter {
		t.Errorf("routing did not inflate depth: %d vs %d",
			routed.DepthAfter, ideal.DepthAfter)
	}
}

// TestE9_IntentArtifactsUnchanged: serialized intent bytes identical
// across contexts.
func TestE9_IntentArtifactsUnchanged(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		t.Fatal(err)
	}
	intent := qop.Sequence{op}
	dir := t.TempDir()
	var intentBytes []string
	var fingerprints []string
	for i, ctx := range []*ctxdesc.Context{
		ctxdesc.NewAnneal("anneal.sa", 50, 1),
		ctxdesc.NewGate("gate.statevector", 50, 1),
		nil,
	} {
		b, err := bundle.New([]*qdt.DataType{reg}, intent, ctx)
		if err != nil {
			t.Fatal(err)
		}
		// The artifact must also survive a disk round trip unchanged.
		path := filepath.Join(dir, "job.json")
		if err := b.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := bundle.Load(path, qop.ValidateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Serialize exactly the intent half (what Fingerprint hashes).
		serial, err := json.Marshal(struct {
			QDTs      []*qdt.DataType `json:"qdts"`
			Operators qop.Sequence    `json:"operators"`
		}{loaded.QDTs, loaded.Operators})
		if err != nil {
			t.Fatal(err)
		}
		intentBytes = append(intentBytes, string(serial))
		fp, err := loaded.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fingerprints = append(fingerprints, fp)
		if i > 0 {
			if intentBytes[i] != intentBytes[0] {
				t.Errorf("serialized intent differs under context %d", i)
			}
			if fingerprints[i] != fingerprints[0] {
				t.Errorf("fingerprint differs under context %d", i)
			}
		}
	}
}

// TestSchemaAndSemanticValidationAgree: everything algolib builds passes
// both validation layers.
func TestSchemaAndSemanticValidationAgree(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	phase := qdt.NewPhaseRegister("reg_phase", "phase", 6)
	builders := []func() (*qop.Operator, error){
		func() (*qop.Operator, error) { return algolib.NewQFT(phase, 1, true, false) },
		func() (*qop.Operator, error) { return algolib.NewPrepUniform(reg) },
		func() (*qop.Operator, error) { return algolib.NewMixerRX(reg, 0.5) },
		func() (*qop.Operator, error) { return algolib.NewIsingCostPhase(reg, graph.Cycle(4), 0.4) },
		func() (*qop.Operator, error) { return algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4))) },
		func() (*qop.Operator, error) { return algolib.NewAdder(phase, 13) },
		func() (*qop.Operator, error) { return algolib.NewGroverOracle(reg, []uint64{5}) },
		func() (*qop.Operator, error) { return algolib.NewGroverDiffusion(reg) },
		func() (*qop.Operator, error) { return algolib.NewMeasurement(reg), nil },
	}
	for i, build := range builders {
		op, err := build()
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		raw, err := op.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if err := schemas.Validate("qod.schema.json", raw); err != nil {
			t.Errorf("builder %d (%s) fails schema: %v", i, op.Name, err)
		}
	}
}

// TestNoiseAblationThroughContext: error rate rises smoothly with the
// context's noise level while the intent stays fixed.
func TestNoiseAblationThroughContext(t *testing.T) {
	reg := qdt.New("search", "x", 3, qdt.IntRegister, qdt.AsInt)
	seq, err := algolib.BuildGrover(reg, []uint64{5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, nil)
	if err != nil {
		t.Fatal(err)
	}
	success := func(p float64) float64 {
		ctx := ctxdesc.NewGate("gate.statevector", 1500, 9)
		if p > 0 {
			ctx.Exec.Options = map[string]any{"noise": map[string]any{"prob_1q": p, "prob_2q": p}}
		}
		res, err := runtime.Submit(b.WithContext(ctx), runtime.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Entries {
			if e.Index == 5 {
				return float64(e.Count) / float64(res.Samples)
			}
		}
		return 0
	}
	clean := success(0)
	mid := success(0.01)
	heavy := success(0.08)
	if !(clean > mid && mid > heavy) {
		t.Errorf("success not monotone in noise: %v, %v, %v", clean, mid, heavy)
	}
	if clean < 0.9 {
		t.Errorf("noiseless Grover success %v", clean)
	}
	if math.Abs(clean-1) < 1e-12 {
		t.Error("suspiciously perfect sampling")
	}
}
