// Package backend implements the execution backends the context
// descriptor's exec.engine selects: the gate-model statevector path (the
// paper's IBM Qiskit Aer substitute), the simulated-annealing path (the
// D-Wave Ocean neal substitute), and a pulse-model path. A registry maps
// engine names — including the paper's own "gate.aer_simulator" and the
// Ocean-style "anneal.neal" — to implementations.
package backend

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/result"
)

// Backend executes a validated job bundle.
type Backend interface {
	// Name is the canonical engine name.
	Name() string
	// Execute realizes and runs the bundle, returning decoded results.
	Execute(b *bundle.Bundle) (*result.Result, error)
}

// Sharded is implemented by backends whose hot loop can exploit a per-job
// parallelism grant. The serving layer's scheduler decides the grant — a
// large lone simulation gets every shard, concurrent small jobs stay
// single-shard — and the runtime forwards it here; shards ≤ 0 means "let
// the engine choose".
type Sharded interface {
	ExecuteSharded(b *bundle.Bundle, shards int) (*result.Result, error)
}

// StageFunc receives one callback per pipeline stage a backend times
// ("transpile", "compile", "execute", "sample") with its wall-clock
// duration. The jobs layer turns these into per-job span logs.
type StageFunc func(stage string, d time.Duration)

// Staged is implemented by backends that can report per-stage timings.
// stages may be nil (equivalent to ExecuteSharded).
type Staged interface {
	ExecuteStaged(b *bundle.Bundle, shards int, stages StageFunc) (*result.Result, error)
}

// Profiled is implemented by backends that can attach a kernel-granular
// execution profile to the result document: ExecuteProfiled behaves like
// ExecuteStaged and additionally stores the profile (the sim.Profile
// kernel table for the gate engine) under Meta["profile"] in the result.
// The profile is observational only — entries and counts are bit-identical
// to the unprofiled run.
type Profiled interface {
	ExecuteProfiled(b *bundle.Bundle, shards int, stages StageFunc) (*result.Result, error)
}

// DefaultShots is used when the context specifies no sample count.
const DefaultShots = 1024

// registryMu guards registry: the serving layer resolves engines from
// concurrent worker goroutines while tests inject fakes via Register.
var registryMu sync.RWMutex

var registry = map[string]func() Backend{
	"gate.statevector":   func() Backend { return &Gate{engine: "gate.statevector"} },
	"gate.aer_simulator": func() Backend { return &Gate{engine: "gate.aer_simulator"} },
	"anneal.sa":          func() Backend { return &Anneal{engine: "anneal.sa"} },
	"anneal.neal":        func() Backend { return &Anneal{engine: "anneal.neal"} },
	"pulse.model":        func() Backend { return &Pulse{engine: "pulse.model"} },
}

// Get returns a fresh backend instance for the engine name. Safe for
// concurrent use.
func Get(engine string) (Backend, error) {
	registryMu.RLock()
	f, ok := registry[engine]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown engine %q (known: %v)", engine, Engines())
	}
	return f(), nil
}

// Register installs (or replaces) an engine constructor under the given
// name. The jobs layer and tests use it to inject fake backends; the
// constructor must return a new instance per call since backends execute
// concurrently. It returns the previous constructor, or nil, so callers
// can restore it.
func Register(engine string, f func() Backend) func() Backend {
	if engine == "" || f == nil {
		panic("backend: Register requires a non-empty name and constructor")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	prev := registry[engine]
	registry[engine] = f
	return prev
}

// Unregister removes an engine from the registry (test teardown for
// engines injected via Register).
func Unregister(engine string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, engine)
}

// Engines returns the registered engine names, sorted. Safe for
// concurrent use.
func Engines() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
