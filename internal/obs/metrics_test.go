package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_ops_total", "ops"); again != c {
		t.Fatalf("get-or-create returned a different counter")
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestLabeledInstrumentsAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_reqs_total", "reqs", Label{Name: "code", Value: "200"})
	b := r.Counter("test_reqs_total", "reqs", Label{Name: "code", Value: "500"})
	if a == b {
		t.Fatalf("distinct label sets returned the same instrument")
	}
	a.Add(2)
	b.Inc()
	fams := mustParse(t, r)
	f := findFamily(t, fams, "test_reqs_total")
	if v, ok := f.Value(Label{Name: "code", Value: "200"}); !ok || v != 2 {
		t.Fatalf("code=200 sample = %v,%v want 2,true", v, ok)
	}
	if v, ok := f.Value(Label{Name: "code", Value: "500"}); !ok || v != 1 {
		t.Fatalf("code=500 sample = %v,%v want 1,true", v, ok)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_thing", "x")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_thing", "x")
}

func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "lat", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // → le=0.01
	h.Observe(10 * time.Millisecond)  // boundary: le semantics → le=0.01
	h.Observe(50 * time.Millisecond)  // → le=0.1
	h.Observe(500 * time.Millisecond) // → le=1
	h.Observe(3 * time.Second)        // → +Inf overflow
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	wantNs := int64(5+10+50+500)*1e6 + 3e9
	if got := h.SumNanos(); got != wantNs {
		t.Fatalf("sumNanos = %d, want %d", got, wantNs)
	}
	fams := mustParse(t, r)
	f := findFamily(t, fams, "test_latency_seconds")
	wantBuckets := map[string]float64{"0.01": 2, "0.1": 3, "1": 4, "+Inf": 5}
	for le, want := range wantBuckets {
		found := false
		for _, s := range f.Samples {
			if s.Name == "test_latency_seconds_bucket" && s.Label("le") == le {
				found = true
				if s.Value != want {
					t.Errorf("bucket le=%s = %v, want %v", le, s.Value, want)
				}
			}
		}
		if !found {
			t.Errorf("bucket le=%s missing", le)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.ObserveSeconds(0.15) // all in (0.1, 0.2]
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.1 || p50 > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", p50)
	}
	// Interpolation: target at half the bucket's mass → bucket midpoint.
	if math.Abs(p50-0.15) > 1e-9 {
		t.Fatalf("p50 = %v, want 0.15 (linear interpolation)", p50)
	}
	h.ObserveSeconds(99) // overflow clamps to highest bound
	if got := h.Quantile(0.9999); got != 0.8 {
		t.Fatalf("overflow quantile = %v, want clamp to 0.8", got)
	}
	empty := newHistogram(nil)
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "with\nnewline and \\backslash").Add(7)
	r.Gauge("test_b", "b", Label{Name: "path", Value: `quo"te\esc` + "\nnl"}).Set(1.25)
	r.GaugeFunc("test_c", "computed", func() float64 { return 42 })
	r.Histogram("test_d_seconds", "d", nil).Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("ParseExposition on own output: %v\n%s", err, sb.String())
	}
	f := findFamily(t, fams, "test_b")
	if v, ok := f.Value(Label{Name: "path", Value: `quo"te\esc` + "\nnl"}); !ok || v != 1.25 {
		t.Fatalf("escaped label round-trip = %v,%v", v, ok)
	}
	if v, ok := findFamily(t, fams, "test_c").Value(); !ok || v != 42 {
		t.Fatalf("gauge func = %v,%v want 42,true", v, ok)
	}
}

func TestHandlerMergesRegistriesWithoutDuplicates(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("test_shared_total", "s").Add(1)
	b.Counter("test_shared_total", "s").Add(100) // shadowed by a
	b.Counter("test_only_b_total", "b").Add(2)
	RegisterRuntime(a)
	RegisterRuntime(a) // idempotent
	RegisterBuildInfo(a)
	srv := httptest.NewServer(Handler(a, b, a))
	defer srv.Close()
	body := httpGet(t, srv.URL)
	fams, err := ParseExposition(body)
	if err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, body)
	}
	if v, ok := findFamily(t, fams, "test_shared_total").Value(); !ok || v != 1 {
		t.Fatalf("shared counter = %v,%v want first-registry value 1", v, ok)
	}
	if _, ok := findFamily(t, fams, "test_only_b_total").Value(); !ok {
		t.Fatalf("second registry's unique family missing")
	}
	if v, ok := findFamily(t, fams, "go_goroutines").Value(); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v,%v want >= 1", v, ok)
	}
	bi := findFamily(t, fams, "build_info")
	if v, ok := bi.Value(); !ok || v != 1 {
		t.Fatalf("build_info = %v,%v want 1,true", v, ok)
	}
	if bi.Samples[0].Label("go_version") == "" {
		t.Fatalf("build_info missing go_version label")
	}
}
