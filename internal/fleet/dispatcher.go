package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/obs"
)

// Options configure a Dispatcher. Workers is required; everything else
// has serving defaults.
type Options struct {
	// Workers are the fleet nodes' base URLs (host:port or http://…).
	Workers []string
	// Store, when non-nil, journals every accepted job (submission,
	// assignment, lifecycle) so forwarding survives both worker deaths
	// and dispatcher crashes. The dispatcher does not close the store.
	Store *store.Store
	// RequestTimeout bounds every dispatcher→worker HTTP call — both as
	// a context deadline and as the shared http.Client's hard timeout —
	// so a hung worker cannot wedge a dispatcher goroutine (default 10s).
	RequestTimeout time.Duration
	// ProbeInterval is the health/stats probe cadence (default 1s).
	ProbeInterval time.Duration
	// PollInterval is the per-job remote status poll cadence (default
	// 100ms).
	PollInterval time.Duration
	// EjectAfter is the consecutive probe failures that mark a worker
	// unhealthy; one success readmits it (default 3).
	EjectAfter int
	// ReforwardAfter is the consecutive per-job poll failures after
	// which the job abandons its worker and re-forwards (default 3).
	ReforwardAfter int
	// AffinitySlack is how many more outstanding dispatched jobs the
	// cache-affinity worker may carry than the least-loaded node before
	// the router spills the job to the latter (default 4).
	AffinitySlack int
	// Vnodes is the virtual-node count per worker on the consistent-hash
	// ring (default 64).
	Vnodes int
	// MaxRecords bounds retained terminal job records, like
	// jobs.Options.MaxRecords (default 65536; negative retains all).
	MaxRecords int
	// AllowMidCircuit forwards to bundle validation.
	AllowMidCircuit bool
	// Logger receives structured dispatch logs (assignments, reforwards,
	// ejections, terminal transitions) with job/trace/worker fields. nil
	// discards.
	Logger *slog.Logger
	// Metrics is the registry the dispatcher registers its instruments
	// in (fleet_* counters, the round-trip histogram, health gauges).
	// nil creates a private registry — NewHandler serves whichever one
	// is in effect on GET /metrics.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 100 * time.Millisecond
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.ReforwardAfter <= 0 {
		o.ReforwardAfter = 3
	}
	if o.AffinitySlack <= 0 {
		o.AffinitySlack = 4
	}
	if o.Vnodes <= 0 {
		o.Vnodes = 64
	}
	if o.MaxRecords == 0 {
		o.MaxRecords = 65536
	}
	return o
}

// Stats aggregates dispatcher counters; the attached store's journal
// counters are inlined when persistent.
type Stats struct {
	Workers   int    `json:"workers"`
	Healthy   int    `json:"healthy_workers"`
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Forwarded counts successful job handoffs to a worker; Reforwarded
	// the subset that re-assigned a job after its worker died or forgot
	// it.
	Forwarded   uint64 `json:"forwarded"`
	Reforwarded uint64 `json:"reforwarded"`
	// Coalesced counts submissions whose cache key was already in flight
	// through the dispatcher and were pinned to the primary's worker.
	Coalesced uint64 `json:"coalesced"`
	// AffinityHits counts routing decisions that followed the
	// consistent-hash affinity worker; AffinitySpills those diverted to
	// the least-loaded node by the slack rule.
	AffinityHits   uint64 `json:"affinity_hits"`
	AffinitySpills uint64 `json:"affinity_spills"`
	Ejected        uint64 `json:"ejected"`
	Readmitted     uint64 `json:"readmitted"`
	// Recovered counts job records replayed from the journal at boot;
	// Reattached the non-terminal subset whose workers are re-polled (and
	// the job re-forwarded if the fleet no longer knows it).
	Recovered  uint64 `json:"recovered"`
	Reattached uint64 `json:"reattached"`
	// Sweeps counts parameter-sweep jobs accepted (each one queue slot,
	// scattered range-wise over the fleet).
	Sweeps uint64 `json:"sweeps"`
	store.Stats
}

// WorkerInfo is one fleet node's health snapshot in /v1/stats.
type WorkerInfo struct {
	Name        string `json:"name"`
	Healthy     bool   `json:"healthy"`
	Outstanding int    `json:"outstanding"`
	ConsecFails int    `json:"consecutive_failures"`
	QueueLen    int    `json:"queue_len"`
	Running     int    `json:"running"`
	// Revision is the worker build's VCS revision from its last stats
	// probe ("" until the first successful probe, or for pre-telemetry
	// workers) — rolling-upgrade visibility across the fleet.
	Revision string `json:"revision,omitempty"`
}

// fleetMetrics are the registry-backed instruments behind Stats; like the
// worker pools, the counters are the system of record and Stats() reads
// them back, so /v1/stats and /metrics can never disagree.
type fleetMetrics struct {
	submitted      *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	canceled       *obs.Counter
	forwarded      *obs.Counter
	reforwarded    *obs.Counter
	coalesced      *obs.Counter
	affinityHits   *obs.Counter
	affinitySpills *obs.Counter
	ejected        *obs.Counter
	readmitted     *obs.Counter
	recovered      *obs.Counter
	reattached     *obs.Counter
	sweeps         *obs.Counter
	roundtrip      *obs.Histogram
}

func newFleetMetrics(reg *obs.Registry, d *Dispatcher) *fleetMetrics {
	m := &fleetMetrics{
		submitted:      reg.Counter("fleet_submitted_total", "Jobs accepted by the dispatcher."),
		completed:      reg.Counter("fleet_completed_total", "Dispatched jobs that finished in StateDone."),
		failed:         reg.Counter("fleet_failed_total", "Dispatched jobs that finished in StateFailed."),
		canceled:       reg.Counter("fleet_canceled_total", "Dispatched jobs canceled before completion."),
		forwarded:      reg.Counter("fleet_forwarded_total", "Successful job handoffs to a worker."),
		reforwarded:    reg.Counter("fleet_reforwarded_total", "Handoffs that re-assigned a job after its worker died or forgot it."),
		coalesced:      reg.Counter("fleet_coalesced_total", "Submissions pinned to an identical in-flight job's worker."),
		affinityHits:   reg.Counter("fleet_affinity_hits_total", "Routing decisions that followed the consistent-hash affinity worker."),
		affinitySpills: reg.Counter("fleet_affinity_spills_total", "Routing decisions diverted to the least-loaded node by the slack rule."),
		ejected:        reg.Counter("fleet_ejected_total", "Workers marked unhealthy after consecutive probe failures."),
		readmitted:     reg.Counter("fleet_readmitted_total", "Unhealthy workers readmitted on a probe success."),
		recovered:      reg.Counter("fleet_recovered_total", "Job records replayed from the journal at boot."),
		reattached:     reg.Counter("fleet_reattached_total", "Recovered non-terminal jobs re-attached to their workers."),
		sweeps:         reg.Counter("fleet_sweeps_total", "Parameter-sweep jobs accepted by the dispatcher."),
		roundtrip:      reg.Histogram("fleet_roundtrip_seconds", "Dispatcher→worker submit round-trip time (accepted handoffs only).", nil),
	}
	reg.GaugeFunc("fleet_workers_healthy", "Workers currently considered healthy.", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		n := 0
		for _, w := range d.workers {
			if w.healthy {
				n++
			}
		}
		return float64(n)
	})
	reg.GaugeFunc("fleet_jobs_tracked", "Jobs in the dispatcher's table (terminal records included until retention evicts them).", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.jobs))
	})
	return m
}

// Status is one dispatched job's externally visible snapshot.
type Status struct {
	ID string
	// Trace is the job's fleet-wide trace ID (inbound X-Trace-Id, or
	// dispatcher-generated); Spans its dispatch lifecycle log.
	Trace  string
	Spans  []obs.Span
	State  jobs.State
	Engine string
	// Worker is the fleet node currently (or finally) owning the job;
	// Remote is the job's ID in that worker's own pool.
	Worker string
	Remote string
	// CacheHit and Coalesced mirror the owning worker's verdict for the
	// remote job (served from its cache / attached to its in-flight twin).
	CacheHit  bool
	Coalesced bool
	Shards    int
	// Reforwards counts how many times the job changed workers.
	Reforwards int
	// Sweep marks a parameter-sweep job; Points is its grid size and
	// PointsDone the fleet-wide per-point progress summed over ranges.
	Sweep      bool
	Points     int
	PointsDone int
	// Progress is the completed-point fraction for sweeps (0..1, 1 once
	// terminal); ETA extrapolates the remaining run time of a running
	// sweep from fleet-wide progress so far. Both zero for plain jobs.
	Progress float64
	ETA      time.Duration
	// Ranges is the per-range dispatch detail of a sweep: which worker
	// owns each slice of the grid and how far along it is. Nil for plain
	// jobs and for terminal sweeps recovered without range assignments.
	Ranges []RangeInfo
	// Profile is the kernel-granular execution profile of a profiled
	// job, proxied opaquely from the owning worker's status document
	// (for sweeps: per-kind tables merged over the ranges). Nil unless
	// the submission asked for profiling and the work has completed.
	Profile     json.RawMessage
	Error       string
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

// RangeInfo is one sweep range's dispatch snapshot in a fleet status
// document: the [From,To) grid slice, its owning worker and remote
// sub-sweep ID, and range-local progress.
type RangeInfo struct {
	From       int    `json:"from"`
	To         int    `json:"to"`
	State      string `json:"state"` // queued | running | done | failed
	Worker     string `json:"worker,omitempty"`
	Remote     string `json:"remote,omitempty"`
	PointsDone int    `json:"points_done"`
	// Forwards counts handoffs; >1 means the range moved workers.
	Forwards int    `json:"forwards"`
	Error    string `json:"error,omitempty"`
}

type worker struct {
	name        string
	c           *client
	healthy     bool
	consecFails int
	outstanding int
	lastStats   map[string]any
}

// fwdJob is the dispatcher-side job record. Mutable fields are guarded
// by Dispatcher.mu; done closes exactly once under mu. evq is the job's
// pending journal events: transitions enqueue under the mutex (so the
// journal's per-job order always equals the transition order, which
// replay's last-writer-wins merge depends on) and a single claimant
// appends them to the store off-lock (so fsyncs never stall the
// dispatcher, and concurrent jobs' appends share group-commit
// barriers).
type fwdJob struct {
	id     string
	trace  string // fleet-wide trace ID, forwarded to workers
	key    string
	engine string
	raw    json.RawMessage // canonical bundle, dropped when terminal
	pin    int
	// profile asks the executing worker for a kernel-granular profile;
	// forwarded as ?profile=true (the raw bundle is re-derived from the
	// parsed struct, so the body flag would not survive).
	profile   bool
	state     jobs.State
	worker    string // assigned node ("" while unassigned)
	remote    string // job ID on that node
	avoid     string // node to skip on the next forward (it just lost the job)
	cacheHit  bool
	coalesced bool
	shards    int
	forwards  int
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	spans     []obs.Span // dispatch lifecycle log, appended in transition order
	// profileDoc is the owning worker's kernel-granular profile table,
	// captured opaquely from its status document once the remote job
	// completes (re-captured from the replacement worker after a
	// re-forward). Nil for unprofiled submissions.
	profileDoc json.RawMessage
	done       chan struct{}
	// Journal event queue (see the type comment). evGen counts events
	// ever enqueued; flushedGen is the newest generation known appended
	// (and, per the store's fsync policy, durable). flushJob waits until
	// flushedGen catches the generation it observed at entry, so an
	// acknowledgment path can never outrun its own event's durability
	// even when a concurrent flusher claimed the queue first.
	evq        []store.Event
	evGen      uint64
	flushedGen uint64
	flushing   bool
	// sweep is non-nil for parameter-sweep jobs: the point grid is
	// scattered range-wise over the fleet instead of forwarded whole
	// (see sweep.go). worker/remote stay empty; assignments live on the
	// ranges.
	sweep *sweepScatter
}

// spanLocked appends one dispatch-lifecycle span. Callers hold
// Dispatcher.mu (or run single-threaded in recovery).
func (j *fwdJob) spanLocked(stage string, d time.Duration, note string) {
	j.spans = append(j.spans, obs.NewSpan(stage, d, note))
}

// Dispatcher fronts a fleet of /v1 workers: it routes submissions,
// watches their remote lifecycle, re-forwards orphans, and serves the
// same /v1 surface itself (see NewHandler).
type Dispatcher struct {
	opts Options
	ring *ring
	hc   *http.Client
	met  *fleetMetrics
	reg  *obs.Registry
	log  *slog.Logger
	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // wakes flushJob waiters when a flush batch lands
	workers  map[string]*worker
	names    []string // configured order, for stable reporting
	jobs     map[string]*fwdJob
	inflight map[string]*fwdJob // cache key → primary non-terminal job
	terminal []string
	dirty    []*fwdJob // jobs with enqueued journal events awaiting flush
	nextID   uint64
	closed   bool
}

// New starts a dispatcher over the configured workers. When a store is
// attached its journal is replayed first: terminal jobs answer Status
// again, and non-terminal jobs are re-attached to their workers (or
// re-forwarded if no worker still knows them). Call Close to stop the
// prober and job watchers.
func New(opts Options) (*Dispatcher, error) {
	opts = opts.withDefaults()
	if len(opts.Workers) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	d := &Dispatcher{
		opts: opts,
		// A dedicated transport: the default keeps only 2 idle
		// connections per host, while the dispatcher concentrates many
		// concurrent status polls, probes and proxies on a handful of
		// worker hosts — reuse the connections instead of churning TCP.
		hc: &http.Client{
			Timeout: opts.RequestTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		workers:  map[string]*worker{},
		jobs:     map[string]*fwdJob{},
		inflight: map[string]*fwdJob{},
	}
	d.cond = sync.NewCond(&d.mu)
	d.log = opts.Logger
	if d.log == nil {
		d.log = obs.Discard()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d.reg = reg
	d.met = newFleetMetrics(reg, d)
	d.ctx, d.stop = context.WithCancel(context.Background())
	for _, name := range opts.Workers {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, dup := d.workers[name]; dup {
			return nil, fmt.Errorf("fleet: duplicate worker %q", name)
		}
		// Optimistically healthy so submissions route before the first
		// probe completes; the prober corrects within EjectAfter rounds.
		d.workers[name] = &worker{name: name, c: newClient(name, d.hc), healthy: true}
		d.names = append(d.names, name)
	}
	if len(d.names) == 0 {
		return nil, errors.New("fleet: no workers configured")
	}
	d.ring = buildRing(d.names, opts.Vnodes)
	var reattach []*fwdJob
	if opts.Store != nil {
		reattach = d.recover()
		d.flushDirty() // recovery runs single-threaded; drain its events now
	}
	d.wg.Add(1)
	go d.prober()
	for _, j := range reattach {
		d.wg.Add(1)
		go d.runJob(j)
	}
	return d, nil
}

// recover replays the journal into the job table. Terminal records
// become queryable; queued/running records keep their assignment (their
// runner re-polls the worker for the in-flight state and re-forwards if
// it is gone) and records that never got assigned forward from scratch.
func (d *Dispatcher) recover() []*fwdJob {
	var reattach []*fwdJob
	for _, rec := range d.opts.Store.Records() {
		var n uint64
		if _, err := fmt.Sscanf(rec.Job, "job-%d", &n); err == nil && n > d.nextID {
			d.nextID = n
		}
		j := &fwdJob{
			id:        rec.Job,
			trace:     rec.Trace,
			key:       rec.Key,
			engine:    rec.Engine,
			pin:       rec.Pin,
			profile:   rec.Profile,
			worker:    rec.Worker,
			remote:    rec.Remote,
			submitted: rec.Submitted,
			started:   rec.Started,
			finished:  rec.Finished,
			done:      make(chan struct{}),
		}
		if rec.Points > 0 {
			// A sweep record. Its range assignments are not folded into
			// the record (they are per-range EvAssigned history), so a
			// non-terminal sweep re-scatters from scratch; a terminal one
			// answers Status but not SweepResult (see SweepResult).
			j.sweep = &sweepScatter{points: rec.Points}
			j.worker, j.remote = "", ""
		}
		d.met.recovered.Inc()
		switch rec.State {
		case store.StateDone:
			j.state = jobs.StateDone
			j.cacheHit = rec.CacheHit
			j.coalesced = rec.Coalesced
			j.shards = rec.Shards
		case store.StateFailed:
			j.state = jobs.StateFailed
			j.errMsg = rec.Error
			j.shards = rec.Shards
		case store.StateCanceled:
			j.state = jobs.StateCanceled
		default: // queued or running at crash time: re-attach
			if len(rec.Bundle) == 0 {
				// Nothing to re-forward with; surface rather than drop.
				j.state = jobs.StateFailed
				j.errMsg = "fleet: recovery: journal record has no bundle"
				j.finished = time.Now()
				d.met.failed.Inc()
				j.spanLocked("failed", 0, "journal record has no bundle")
				d.log.Warn("job failed at recovery", "job", j.id, "trace", j.trace, "err", j.errMsg)
				d.jobs[j.id] = j
				d.enqueueLocked(j, store.Event{T: store.EvFailed, Job: j.id, At: j.finished, Error: j.errMsg})
				d.finishRetention(j)
				close(j.done)
				continue
			}
			j.state = jobs.StateQueued
			j.raw = rec.Bundle
			j.started = time.Time{} // re-observed from the worker
			if j.worker != "" {
				if w := d.workers[j.worker]; w != nil {
					w.outstanding++
				} else {
					// The fleet config changed across the restart; the
					// assigned node is gone. Forward from scratch.
					j.worker, j.remote = "", ""
				}
			}
			d.jobs[j.id] = j
			if j.sweep == nil && d.inflight[j.key] == nil {
				d.inflight[j.key] = j
			}
			d.met.reattached.Inc()
			j.spanLocked("queued", 0, "re-attached after restart")
			d.log.Info("job re-attached", "job", j.id, "trace", j.trace, "worker", j.worker)
			reattach = append(reattach, j)
			continue
		}
		d.jobs[j.id] = j
		d.finishRetention(j)
		close(j.done)
	}
	return reattach
}

// enqueueLocked queues one journal event on its job, in transition
// order. Callers hold d.mu and call flushDirty (and, on paths that
// acknowledge the transition to a client, flushJob) after releasing it.
func (d *Dispatcher) enqueueLocked(j *fwdJob, ev store.Event) {
	if d.opts.Store == nil {
		return
	}
	j.evq = append(j.evq, ev)
	j.evGen++
	d.dirty = append(d.dirty, j)
}

// flushDirty drains every job marked dirty since the last flush. Append
// failures are counted by the store and never fail the dispatch
// operation — the service degrades to in-memory rather than rejecting
// accepted work.
func (d *Dispatcher) flushDirty() {
	if d.opts.Store == nil {
		return
	}
	d.mu.Lock()
	dirty := d.dirty
	d.dirty = nil
	d.mu.Unlock()
	for _, j := range dirty {
		d.flushJob(j)
	}
}

// flushJob makes every event enqueued on the job before this call
// durable (appended under the store's fsync policy) before returning.
// One claimant at a time drains the queue (j.flushing) while waiters
// block on the condvar until the generation they observed is flushed —
// so an acknowledgment path cannot outrun its own event even when a
// concurrent flushDirty claimed the queue first. Per-job append order
// always equals enqueue order.
func (d *Dispatcher) flushJob(j *fwdJob) {
	if d.opts.Store == nil {
		return
	}
	d.mu.Lock()
	target := j.evGen
	for j.flushedGen < target {
		if j.flushing {
			d.cond.Wait()
			continue
		}
		if len(j.evq) == 0 {
			// Defensive: everything up to target is claimed or flushed.
			break
		}
		j.flushing = true
		evs := j.evq
		j.evq = nil
		gen := j.evGen
		d.mu.Unlock()
		for _, ev := range evs {
			//lint:ignore journalerr persistence failures count in store_journal_errors_total; the dispatcher keeps serving rather than failing routed jobs
			_ = d.opts.Store.Append(ev)
		}
		d.mu.Lock()
		j.flushing = false
		if gen > j.flushedGen {
			j.flushedGen = gen
		}
		d.cond.Broadcast()
	}
	d.mu.Unlock()
}

// Submit validates, journals and routes one bundle. The returned status
// is the accepted job's snapshot (state queued). The raw canonical JSON
// is re-derived from the parsed bundle so the journal, the cache key and
// the forwarded payload all agree byte-for-byte.
func (d *Dispatcher) Submit(b *bundle.Bundle, pin int) (Status, error) {
	return d.SubmitTraced(b, pin, "", false)
}

// SubmitTraced is Submit with an explicit trace ID (normally the inbound
// X-Trace-Id header) and profile flag. Empty or invalid IDs are replaced
// with a generated one; the accepted ID rides the journal, every forward
// to a worker, and the status document. profile asks the executing
// worker for a kernel-granular profile, which the dispatcher proxies
// back into this job's status once the worker reports it.
func (d *Dispatcher) SubmitTraced(b *bundle.Bundle, pin int, traceID string, profile bool) (Status, error) {
	if b == nil {
		return Status{}, errors.New("fleet: nil bundle")
	}
	key, err := jobs.CacheKey(b)
	if err != nil {
		return Status{}, err
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return Status{}, fmt.Errorf("fleet: marshal bundle: %w", err)
	}
	engine := jobs.ResolveEngine(b)
	now := time.Now()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return Status{}, jobs.ErrClosed
	}
	d.nextID++
	j := &fwdJob{
		id:        fmt.Sprintf("job-%08d", d.nextID),
		trace:     obs.EnsureTraceID(traceID),
		key:       key,
		engine:    engine,
		raw:       raw,
		pin:       pin,
		profile:   profile,
		state:     jobs.StateQueued,
		submitted: now,
		done:      make(chan struct{}),
	}
	d.jobs[j.id] = j
	d.met.submitted.Inc()
	if primary := d.inflight[key]; primary != nil {
		// A twin is already in flight through the dispatcher: the router
		// will pin this job to the primary's worker so the worker-side
		// pool coalesces them onto one execution.
		d.met.coalesced.Inc()
		j.spanLocked("queued", 0, "coalesces with "+primary.id)
	} else {
		d.inflight[key] = j
		j.spanLocked("queued", 0, "")
	}
	d.enqueueLocked(j, store.Event{T: store.EvSubmitted, Job: j.id, Trace: j.trace, At: now, Key: key, Engine: engine, Bundle: raw, Pin: pin, Profile: profile})
	d.wg.Add(1)
	st := d.statusLocked(j)
	d.mu.Unlock()
	d.log.Info("job accepted", "job", j.id, "trace", j.trace, "engine", engine)

	// Append after releasing the dispatcher lock: concurrent submitters
	// then share group-commit fsync barriers instead of serializing
	// their syncs behind d.mu, while the per-job queue keeps this job's
	// journal order equal to its transition order. flushJob then blocks
	// until this job's submitted event is durable — the 202 must not
	// outrun the fsync even if a concurrent flusher claimed the queue.
	d.flushDirty()
	d.flushJob(j)
	go d.runJob(j)
	return st, nil
}

// runJob owns one job's forwarding lifecycle: assign a worker, watch the
// remote status, and re-forward when the worker dies or forgets the job.
// It exits when the job is terminal or the dispatcher closes (the
// journal then carries the state to the next process life).
func (d *Dispatcher) runJob(j *fwdJob) {
	defer d.wg.Done()
	if j.sweep != nil {
		d.runSweep(j)
		return
	}
	pollFails := 0
	for d.ctx.Err() == nil {
		d.mu.Lock()
		if j.state.Terminal() {
			d.mu.Unlock()
			return
		}
		workerName, remote := j.worker, j.remote
		d.mu.Unlock()

		if workerName == "" || remote == "" {
			if !d.forward(j) {
				// No worker reachable right now; journal already holds the
				// job, so keep retrying until the fleet comes back.
				if !d.sleep(d.opts.ProbeInterval, j) {
					return
				}
			}
			pollFails = 0
			continue
		}

		w := d.workerByName(workerName)
		ctx, cancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
		st, notFound, err := w.c.status(ctx, remote)
		cancel()
		switch {
		case err != nil:
			pollFails++
			if pollFails >= d.opts.ReforwardAfter {
				d.detach(j, workerName)
				pollFails = 0
				continue
			}
		case notFound:
			// The worker answered but no longer knows the job: it
			// restarted without durable state. Re-forward immediately.
			d.detach(j, workerName)
			pollFails = 0
			continue
		default:
			pollFails = 0
			if d.observe(j, st) {
				return
			}
		}
		if !d.sleep(d.opts.PollInterval, j) {
			return
		}
	}
}

// forward assigns the job to a worker and POSTs it. It tries the routing
// choice first and rotates through the remaining healthy workers on
// transport errors or backpressure; the node that just lost the job
// (j.avoid) is skipped unless it is the only one left. Returns false
// when no worker accepted.
func (d *Dispatcher) forward(j *fwdJob) bool {
	tried := map[string]bool{}
	d.mu.Lock()
	avoid := j.avoid
	d.mu.Unlock()
	if avoid != "" {
		tried[avoid] = true
	}
	for round := 0; ; {
		name := d.pick(j, tried)
		if name == "" {
			if round == 0 && avoid != "" {
				// Every alternative is down; the avoided node may be the
				// only fleet left (e.g. it restarted in-memory). Allow it.
				delete(tried, avoid)
				round++
				continue
			}
			return false
		}
		tried[name] = true
		w := d.workerByName(name)
		ctx, cancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
		rtStart := time.Now()
		sub, err := w.c.submit(ctx, j.raw, j.pin, j.trace, j.profile)
		rt := time.Since(rtStart)
		cancel()
		if err != nil {
			continue // busy or unreachable: next candidate
		}
		d.met.roundtrip.Observe(rt)
		d.mu.Lock()
		if j.state.Terminal() { // canceled while forwarding
			d.mu.Unlock()
			// The worker now holds an orphan twin; best-effort cancel it.
			cctx, ccancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
			w.c.cancel(cctx, sub.ID)
			ccancel()
			return true
		}
		j.worker, j.remote = name, sub.ID
		j.avoid = ""
		j.forwards++
		reforward := j.forwards > 1
		if reforward {
			d.met.reforwarded.Inc()
			j.spanLocked("assigned", rt, fmt.Sprintf("re-forwarded to %s as %s", name, sub.ID))
		} else {
			j.spanLocked("assigned", rt, fmt.Sprintf("%s as %s", name, sub.ID))
		}
		d.met.forwarded.Inc()
		w.outstanding++
		d.enqueueLocked(j, store.Event{T: store.EvAssigned, Job: j.id, Trace: j.trace, At: time.Now(), Worker: name, Remote: sub.ID})
		d.mu.Unlock()
		if reforward {
			d.log.Warn("job re-forwarded", "job", j.id, "trace", j.trace, "worker", name, "remote", sub.ID)
			obs.RecordDur(obs.FlightFleetForward, j.id, "re-forwarded to "+name+" as "+sub.ID, rt)
		} else {
			d.log.Info("job forwarded", "job", j.id, "trace", j.trace, "worker", name, "remote", sub.ID)
			obs.RecordDur(obs.FlightFleetForward, j.id, name+" as "+sub.ID, rt)
		}
		d.flushDirty()
		return true
	}
}

// pick chooses a worker for the job: the in-flight primary's worker when
// the key is already dispatched (dispatcher-level coalescing), else the
// consistent-hash affinity node unless the slack rule spills to the
// least-loaded healthy worker. Workers in tried are excluded.
func (d *Dispatcher) pick(j *fwdJob, tried map[string]bool) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ok := func(name string) bool {
		w := d.workers[name]
		return w != nil && w.healthy && !tried[name]
	}
	if primary := d.inflight[j.key]; primary != nil && primary != j && primary.worker != "" && ok(primary.worker) {
		return primary.worker
	}
	var least *worker
	for _, name := range d.names {
		if !ok(name) {
			continue
		}
		w := d.workers[name]
		if least == nil || w.outstanding < least.outstanding {
			least = w
		}
	}
	if least == nil {
		return ""
	}
	affinity := d.ring.lookup(j.key, ok)
	if affinity == "" {
		return least.name
	}
	if aw := d.workers[affinity]; aw.outstanding > least.outstanding+d.opts.AffinitySlack {
		d.met.affinitySpills.Inc()
		return least.name
	}
	d.met.affinityHits.Inc()
	return affinity
}

// detach severs the job from a worker that died or forgot it; the runner
// loop forwards it elsewhere next.
func (d *Dispatcher) detach(j *fwdJob, workerName string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.state.Terminal() {
		// A concurrent Cancel/observe already finished the job (and
		// decremented the worker's outstanding count); detaching now
		// would double-decrement.
		return
	}
	if j.worker != workerName { // raced with a re-forward
		return
	}
	j.worker, j.remote = "", ""
	j.avoid = workerName
	j.started = time.Time{}
	if j.state == jobs.StateRunning {
		j.state = jobs.StateQueued
	}
	if w := d.workers[workerName]; w != nil {
		w.outstanding--
	}
	j.spanLocked("detached", 0, "worker "+workerName+" lost the job")
	obs.Record(obs.FlightFleetDetach, j.id, "worker "+workerName+" lost the job")
	d.log.Warn("job detached", "job", j.id, "trace", j.trace, "worker", workerName)
}

// observe folds a remote status snapshot into the local record. Returns
// true when the job reached a terminal state.
func (d *Dispatcher) observe(j *fwdJob, st remoteStatus) bool {
	d.mu.Lock()
	if j.state.Terminal() {
		d.mu.Unlock()
		return true
	}
	if st.Engine != "" {
		j.engine = st.Engine
	}
	j.cacheHit = st.CacheHit
	j.coalesced = st.Coalesced
	if st.Shards > 0 {
		j.shards = st.Shards
	}
	if len(st.Profile) > 0 {
		// The worker's kernel table, proxied opaquely. Overwrite rather
		// than keep-first: after a re-forward the replacement worker's
		// table describes the execution that actually produced the result.
		j.profileDoc = st.Profile
	}
	switch jobs.State(st.State) {
	case jobs.StateRunning:
		if j.state == jobs.StateQueued {
			j.state = jobs.StateRunning
			j.started = time.Now()
			j.spanLocked("started", 0, "on "+j.worker)
			d.enqueueLocked(j, store.Event{T: store.EvStarted, Job: j.id, Trace: j.trace, At: j.started, Shards: st.Shards})
		}
	case jobs.StateDone:
		j.errMsg = ""
		d.finishLocked(j, jobs.StateDone)
		d.enqueueLocked(j, store.Event{T: store.EvDone, Job: j.id, Trace: j.trace, At: j.finished, Engine: j.engine, CacheHit: st.CacheHit, Coalesced: st.Coalesced})
	case jobs.StateFailed:
		j.errMsg = st.Error
		d.finishLocked(j, jobs.StateFailed)
		d.enqueueLocked(j, store.Event{T: store.EvFailed, Job: j.id, Trace: j.trace, At: j.finished, Engine: j.engine, Coalesced: st.Coalesced, Error: st.Error})
	case jobs.StateCanceled:
		// Canceled out-of-band on the worker itself.
		d.finishLocked(j, jobs.StateCanceled)
		d.enqueueLocked(j, store.Event{T: store.EvCanceled, Job: j.id, Trace: j.trace, At: j.finished})
	}
	terminal := j.state.Terminal()
	d.mu.Unlock()
	d.flushDirty()
	return terminal
}

// finishLocked moves the job to a terminal state: stats, worker
// outstanding bookkeeping, in-flight pin cleanup, bundle drop, done
// close, and bounded retention. Callers hold d.mu and journal the
// terminal event themselves after unlocking.
func (d *Dispatcher) finishLocked(j *fwdJob, state jobs.State) {
	j.state = state
	j.finished = time.Now()
	var run time.Duration
	if !j.started.IsZero() {
		run = j.finished.Sub(j.started)
	}
	switch state {
	case jobs.StateDone:
		d.met.completed.Inc()
		j.spanLocked("done", run, "")
		d.log.Info("job done", "job", j.id, "trace", j.trace, "worker", j.worker, "run_ms", float64(run)/1e6)
	case jobs.StateFailed:
		d.met.failed.Inc()
		j.spanLocked("failed", run, j.errMsg)
		d.log.Warn("job failed", "job", j.id, "trace", j.trace, "worker", j.worker, "err", j.errMsg)
	case jobs.StateCanceled:
		d.met.canceled.Inc()
		j.spanLocked("canceled", 0, "")
		d.log.Info("job canceled", "job", j.id, "trace", j.trace, "worker", j.worker)
	}
	if j.worker != "" {
		if w := d.workers[j.worker]; w != nil {
			w.outstanding--
		}
	}
	if d.inflight[j.key] == j {
		delete(d.inflight, j.key)
	}
	j.raw = nil
	close(j.done)
	d.finishRetention(j)
}

// finishRetention appends the job to the terminal ring and evicts the
// oldest records beyond MaxRecords, mirroring the worker pools' bounded
// retention. Callers hold d.mu (or run single-threaded in recovery).
func (d *Dispatcher) finishRetention(j *fwdJob) {
	if d.opts.MaxRecords < 0 {
		return
	}
	d.terminal = append(d.terminal, j.id)
	for len(d.terminal) > d.opts.MaxRecords {
		evicted := d.terminal[0]
		d.terminal = d.terminal[1:]
		if ej := d.jobs[evicted]; ej != nil {
			// Enqueue on the evicted job's own queue so the forget event
			// can never overtake a still-pending lifecycle event of that
			// job in the journal.
			d.enqueueLocked(ej, store.Event{T: store.EvForget, Job: evicted, At: time.Now()})
		}
		delete(d.jobs, evicted)
	}
}

// sleep waits one cadence interval, waking early on dispatcher shutdown
// (returns false) or the job turning terminal.
func (d *Dispatcher) sleep(dur time.Duration, j *fwdJob) bool {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-d.ctx.Done():
		return false
	case <-j.done:
		return true
	case <-t.C:
		return true
	}
}

func (d *Dispatcher) workerByName(name string) *worker {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.workers[name]
}

// prober polls every worker's /v1/stats on the probe cadence, ejecting
// after EjectAfter consecutive failures and readmitting on the first
// success.
func (d *Dispatcher) prober() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-t.C:
		}
		d.probeOnce()
	}
}

func (d *Dispatcher) probeOnce() {
	type outcome struct {
		name  string
		stats map[string]any
		err   error
	}
	d.mu.Lock()
	clients := make(map[string]*client, len(d.workers))
	for name, w := range d.workers {
		clients[name] = w.c
	}
	d.mu.Unlock()
	results := make(chan outcome, len(clients))
	for name, c := range clients {
		go func(name string, c *client) {
			ctx, cancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
			defer cancel()
			st, err := c.stats(ctx)
			results <- outcome{name: name, stats: st, err: err}
		}(name, c)
	}
	for range clients {
		o := <-results
		d.mu.Lock()
		w := d.workers[o.name]
		switch {
		case o.err != nil:
			w.consecFails++
			if w.healthy && w.consecFails >= d.opts.EjectAfter {
				w.healthy = false
				d.met.ejected.Inc()
				obs.Record(obs.FlightFleetEject, "", fmt.Sprintf("worker %s after %d probe failures", o.name, w.consecFails))
				d.log.Warn("worker ejected", "worker", o.name, "consecutive_failures", w.consecFails)
			}
		default:
			w.consecFails = 0
			w.lastStats = o.stats
			if !w.healthy {
				w.healthy = true
				d.met.readmitted.Inc()
				obs.Record(obs.FlightFleetReadmit, "", "worker "+o.name)
				d.log.Info("worker readmitted", "worker", o.name)
			}
		}
		d.mu.Unlock()
	}
}

// Status returns a job's snapshot.
func (d *Dispatcher) Status(id string) (Status, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
	}
	return d.statusLocked(j), nil
}

func (d *Dispatcher) statusLocked(j *fwdJob) Status {
	reforwards := j.forwards - 1
	if reforwards < 0 {
		reforwards = 0
	}
	var sweep bool
	var points, pointsDone int
	var progress float64
	var eta time.Duration
	var ranges []RangeInfo
	profile := j.profileDoc
	if j.sweep != nil {
		sweep = true
		points = j.sweep.points
		pointsDone = j.sweep.pointsDoneLocked()
		if j.state == jobs.StateDone {
			pointsDone = points // incl. terminal records recovered without ranges
		}
		// Reforwards for a sweep counts range re-assignments.
		reforwards = 0
		for _, r := range j.sweep.ranges {
			if r.forwards > 1 {
				reforwards += r.forwards - 1
			}
			ranges = append(ranges, RangeInfo{
				From:       r.from,
				To:         r.to,
				State:      r.stateLocked(),
				Worker:     r.worker,
				Remote:     r.remote,
				PointsDone: r.pointsDoneLocked(),
				Forwards:   r.forwards,
				Error:      r.errMsg,
			})
		}
		if points > 0 {
			progress = float64(pointsDone) / float64(points)
		}
		if j.state == jobs.StateRunning && pointsDone > 0 && pointsDone < points && !j.started.IsZero() {
			elapsed := time.Since(j.started)
			eta = elapsed / time.Duration(pointsDone) * time.Duration(points-pointsDone)
		}
		profile = j.sweep.mergedProfileLocked()
	}
	if j.state.Terminal() && sweep {
		progress = 1
	}
	return Status{
		Sweep:       sweep,
		Points:      points,
		PointsDone:  pointsDone,
		Progress:    progress,
		ETA:         eta,
		Ranges:      ranges,
		Profile:     profile,
		ID:          j.id,
		Trace:       j.trace,
		Spans:       append([]obs.Span(nil), j.spans...),
		State:       j.state,
		Engine:      j.engine,
		Worker:      j.worker,
		Remote:      j.remote,
		CacheHit:    j.cacheHit,
		Coalesced:   j.coalesced,
		Shards:      j.shards,
		Reforwards:  reforwards,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// List returns snapshots of every tracked job, newest first; a non-empty
// state filters, limit caps (<= 0: no cap). The dispatcher's table IS
// the fleet-merged history: every job submitted through the front-end,
// with its owning worker in each snapshot.
func (d *Dispatcher) List(state jobs.State, limit int) []Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.jobs))
	for id, j := range d.jobs {
		if state != "" && j.state != state {
			continue
		}
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Status, len(ids))
	for i, id := range ids {
		out[i] = d.statusLocked(d.jobs[id])
	}
	return out
}

// Wait blocks until the job is terminal, then returns its snapshot.
func (d *Dispatcher) Wait(id string) (Status, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
	}
	<-j.done
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statusLocked(j), nil
}

// Result proxies the job's result document from its owning worker,
// returning the worker's HTTP status code and body verbatim. Jobs that
// never reached a worker follow the pool's error semantics.
func (d *Dispatcher) Result(ctx context.Context, id string) (int, []byte, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
	}
	state, workerName, remote, errMsg := j.state, j.worker, j.remote, j.errMsg
	d.mu.Unlock()
	switch state {
	case jobs.StateFailed:
		return 0, nil, fmt.Errorf("%w: %s", ErrJobFailed, errMsg)
	case jobs.StateCanceled:
		return 0, nil, fmt.Errorf("%w: %q", jobs.ErrCanceled, id)
	case jobs.StateDone:
		if workerName == "" || remote == "" {
			return 0, nil, fmt.Errorf("fleet: job %q has no worker assignment on record", id)
		}
		w := d.workerByName(workerName)
		if w == nil {
			return 0, nil, fmt.Errorf("fleet: job %q belongs to unknown worker %q", id, workerName)
		}
		cctx, cancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
		defer cancel()
		code, body, err := w.c.resultRaw(cctx, remote)
		if err != nil {
			return 0, nil, err
		}
		return code, body, nil
	default:
		return 0, nil, fmt.Errorf("%w: %q is %s", jobs.ErrNotFinished, id, state)
	}
}

// ErrConflict marks a cancel refused by state (already terminal, or
// running remotely and not preemptible); the HTTP layer maps it to 409.
var ErrConflict = errors.New("fleet: conflict")

// ErrJobFailed wraps a dispatched job's execution failure so the HTTP
// layer can serve it as a 500 exactly like a worker would.
var ErrJobFailed = errors.New("fleet: job failed")

// Cancel cancels a dispatched job. An unassigned job cancels locally; an
// assigned one forwards DELETE to its owning worker under the caller's
// context plus the request timeout, so a hung worker cannot wedge the
// canceling goroutine. A worker that already forgot the job (it
// restarted) counts as canceled too — the runner would only re-run work
// the client no longer wants. The DELETE races the runner's re-forward
// path, so after each round trip the assignment is re-checked under the
// lock: if the job moved workers meanwhile, the cancel chases it to the
// new node rather than reporting success while a live copy keeps
// running elsewhere.
func (d *Dispatcher) Cancel(ctx context.Context, id string) (Status, error) {
	for attempt := 0; attempt < 4; attempt++ {
		d.mu.Lock()
		j, ok := d.jobs[id]
		if !ok {
			d.mu.Unlock()
			return Status{}, fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
		}
		if j.state.Terminal() {
			st := d.statusLocked(j)
			d.mu.Unlock()
			if attempt > 0 {
				// Went terminal during the chase (observe() or our own
				// earlier DELETE landing); nothing left to cancel.
				return st, nil
			}
			return st, fmt.Errorf("%w: %q is already %s", ErrConflict, id, st.State)
		}
		if j.sweep != nil {
			// Cancel every assigned range's remote sub-sweep best-effort
			// after finishing locally; the range watchers wake on done and
			// exit. A range that slips through keeps running remotely but
			// its results are never fetched.
			type rloc struct{ worker, remote string }
			var locs []rloc
			for _, rg := range j.sweep.ranges {
				if rg.worker != "" && !rg.done && !rg.failed {
					if w := d.workers[rg.worker]; w != nil {
						w.outstanding--
					}
					if rg.remote != "" {
						locs = append(locs, rloc{rg.worker, rg.remote})
					}
				}
			}
			d.finishLocked(j, jobs.StateCanceled)
			d.enqueueLocked(j, store.Event{T: store.EvCanceled, Job: j.id, Trace: j.trace, At: j.finished})
			st := d.statusLocked(j)
			d.mu.Unlock()
			for _, loc := range locs {
				if w := d.workerByName(loc.worker); w != nil {
					cctx, ccancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
					w.c.cancel(cctx, loc.remote)
					ccancel()
				}
			}
			d.flushDirty()
			d.flushJob(j) // the 200 must not outrun the canceled event's fsync
			return st, nil
		}
		workerName, remote := j.worker, j.remote
		if workerName == "" || remote == "" {
			// Not yet (or no longer) assigned: cancel locally; the runner
			// wakes on done and exits.
			d.finishLocked(j, jobs.StateCanceled)
			d.enqueueLocked(j, store.Event{T: store.EvCanceled, Job: j.id, Trace: j.trace, At: j.finished})
			st := d.statusLocked(j)
			d.mu.Unlock()
			d.flushDirty()
			d.flushJob(j) // the 200 must not outrun the canceled event's fsync
			return st, nil
		}
		d.mu.Unlock()

		w := d.workerByName(workerName)
		cctx, cancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
		code, body, err := w.c.cancel(cctx, remote)
		cancel()
		if err != nil {
			return Status{}, fmt.Errorf("fleet: cancel %q on %s: %w", id, workerName, err)
		}
		switch code {
		case http.StatusOK, http.StatusNotFound:
			d.mu.Lock()
			if j.worker != workerName || j.remote != remote {
				// Re-forwarded while the DELETE was in flight: the copy we
				// canceled is not the live one. Chase the new assignment.
				d.mu.Unlock()
				continue
			}
			if !j.state.Terminal() {
				d.finishLocked(j, jobs.StateCanceled)
				d.enqueueLocked(j, store.Event{T: store.EvCanceled, Job: j.id, Trace: j.trace, At: j.finished})
			}
			st := d.statusLocked(j)
			d.mu.Unlock()
			d.flushDirty()
			d.flushJob(j) // the 200 must not outrun the canceled event's fsync
			return st, nil
		default:
			return Status{}, fmt.Errorf("%w: %s", ErrConflict, decodeErr(code, body))
		}
	}
	return Status{}, fmt.Errorf("fleet: cancel %q: assignment kept moving; retry", id)
}

// Engines returns the union of engine names across healthy workers.
func (d *Dispatcher) Engines(ctx context.Context) ([]string, error) {
	d.mu.Lock()
	clients := make([]*client, 0, len(d.workers))
	for _, name := range d.names {
		if w := d.workers[name]; w.healthy {
			clients = append(clients, w.c)
		}
	}
	d.mu.Unlock()
	if len(clients) == 0 {
		return nil, errors.New("fleet: no healthy workers")
	}
	type outcome struct {
		engines []string
		err     error
	}
	results := make(chan outcome, len(clients))
	for _, c := range clients {
		go func(c *client) {
			cctx, cancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
			defer cancel()
			engines, err := c.engines(cctx)
			results <- outcome{engines, err}
		}(c)
	}
	union := map[string]bool{}
	var lastErr error
	got := false
	for range clients {
		o := <-results
		if o.err != nil {
			lastErr = o.err
			continue
		}
		got = true
		for _, e := range o.engines {
			union[e] = true
		}
	}
	if !got {
		return nil, lastErr
	}
	out := make([]string, 0, len(union))
	for e := range union {
		out = append(out, e)
	}
	sort.Strings(out)
	return out, nil
}

// Stats snapshots the dispatcher counters (journal counters inlined when
// persistent). The counters are read back from the registry instruments,
// so this document and /metrics always agree.
func (d *Dispatcher) Stats() Stats {
	var s Stats
	s.Submitted = d.met.submitted.Value()
	s.Completed = d.met.completed.Value()
	s.Failed = d.met.failed.Value()
	s.Canceled = d.met.canceled.Value()
	s.Forwarded = d.met.forwarded.Value()
	s.Reforwarded = d.met.reforwarded.Value()
	s.Coalesced = d.met.coalesced.Value()
	s.AffinityHits = d.met.affinityHits.Value()
	s.AffinitySpills = d.met.affinitySpills.Value()
	s.Ejected = d.met.ejected.Value()
	s.Readmitted = d.met.readmitted.Value()
	s.Recovered = d.met.recovered.Value()
	s.Reattached = d.met.reattached.Value()
	s.Sweeps = d.met.sweeps.Value()
	d.mu.Lock()
	s.Workers = len(d.workers)
	for _, w := range d.workers {
		if w.healthy {
			s.Healthy++
		}
	}
	d.mu.Unlock()
	if d.opts.Store != nil {
		s.Stats = d.opts.Store.Stats()
	}
	return s
}

// Metrics returns the registry the dispatcher's instruments live in
// (Options.Metrics, or the private one created when that was nil).
func (d *Dispatcher) Metrics() *obs.Registry { return d.reg }

// WorkerInfos snapshots per-node health for /v1/stats, in configured
// order.
func (d *Dispatcher) WorkerInfos() []WorkerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]WorkerInfo, 0, len(d.names))
	for _, name := range d.names {
		w := d.workers[name]
		info := WorkerInfo{
			Name:        name,
			Healthy:     w.healthy,
			Outstanding: w.outstanding,
			ConsecFails: w.consecFails,
		}
		if v, ok := w.lastStats["queue_len"].(float64); ok {
			info.QueueLen = int(v)
		}
		if v, ok := w.lastStats["running"].(float64); ok {
			info.Running = int(v)
		}
		if build, ok := w.lastStats["build"].(map[string]any); ok {
			if rev, ok := build["revision"].(string); ok {
				info.Revision = rev
			}
		}
		out = append(out, info)
	}
	return out
}

// FleetStats sums the numeric counters of every worker's last probe —
// the fleet-wide aggregate served under "fleet" in /v1/stats.
func (d *Dispatcher) FleetStats() map[string]float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	agg := map[string]float64{}
	for _, w := range d.workers {
		for k, v := range w.lastStats {
			if f, ok := v.(float64); ok {
				agg[k] += f
			}
		}
	}
	return agg
}

// Close stops the prober and the per-job watchers and flushes the
// journal. Jobs still running on workers keep running there; the journal
// holds their assignments, so a restarted dispatcher re-attaches to
// them.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.stop()
	d.wg.Wait()
	if d.opts.Store != nil {
		//lint:ignore journalerr final courtesy flush on shutdown; every event already met its policy's durability barrier when appended
		_ = d.opts.Store.Sync()
	}
}
