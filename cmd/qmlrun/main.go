// Command qmlrun executes a job.json submission bundle through the middle
// layer runtime: validation, backend selection from the context (or the
// scheduler when the context names no engine), execution, and decoded
// output.
//
//	qmlrun job.json
//	qmlrun -engine anneal.sa job.json   # override the context's engine
//	qmlrun -top 5 job.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
	"repro/internal/transpile"
)

func main() {
	engine := flag.String("engine", "", "override the context's exec.engine")
	top := flag.Int("top", 10, "show at most this many outcomes")
	estimate := flag.Bool("estimate", false, "print per-engine cost estimates instead of executing")
	qasm := flag.Bool("qasm", false, "print the transpiled circuit as OpenQASM 2.0 instead of executing")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qmlrun [-engine name] [-top n] [-estimate] [-qasm] job.json")
		os.Exit(2)
	}
	var err error
	switch {
	case *estimate:
		err = runEstimate(flag.Arg(0))
	case *qasm:
		err = runQASM(flag.Arg(0))
	default:
		err = run(flag.Arg(0), *engine, *top)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmlrun:", err)
		os.Exit(1)
	}
}

// runEstimate prints the scheduler's per-engine cost projection — the
// "estimate queue and runtime" capability the paper's §2 calls for.
func runEstimate(path string) error {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return err
	}
	ests, err := runtime.EstimateAll(b)
	if err != nil {
		return err
	}
	fmt.Println("engine              feasible   duration(ms)   2q-gates   depth   units")
	for _, e := range ests {
		if !e.Feasible {
			fmt.Printf("%-18s  no (%s)\n", e.Engine, e.Reason)
			continue
		}
		fmt.Printf("%-18s  yes      %12.3f   %8d   %5d   %5d\n",
			e.Engine, e.DurationNS/1e6, e.TwoQubitGates, e.Depth, e.PhysicalUnits)
	}
	return nil
}

// runQASM lowers and transpiles the bundle's gate path and prints it as
// OpenQASM 2.0.
func runQASM(path string) error {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return err
	}
	regs := algolib.Registers{}
	for _, d := range b.QDTs {
		regs[d.ID] = d
	}
	lowered, err := algolib.Lower(b.Operators, regs)
	if err != nil {
		return err
	}
	tr, err := transpile.Transpile(lowered.Circuit, transpile.FromContext(b.Context))
	if err != nil {
		return err
	}
	text, err := tr.Circuit.ToQASM()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

func run(path, engineOverride string, top int) error {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return err
	}
	if engineOverride != "" {
		ctx := b.Context
		if ctx == nil {
			ctx = ctxdesc.New()
		}
		ctx = ctx.Clone()
		if ctx.Exec == nil {
			ctx.Exec = &ctxdesc.Exec{}
		}
		ctx.Exec.Engine = engineOverride
		b = b.WithContext(ctx)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	printResult(res, top)
	return nil
}

func printResult(res *result.Result, top int) {
	fmt.Printf("engine: %s\nsamples: %d\n", res.Engine, res.Samples)
	if fp, ok := res.Meta["intent_fingerprint"].(string); ok {
		fmt.Printf("intent: %s\n", fp[:16])
	}
	res.Sort()
	shown := 0
	for _, e := range res.Entries {
		if shown >= top {
			fmt.Printf("… %d more outcomes\n", len(res.Entries)-shown)
			break
		}
		if e.HasEnergy {
			fmt.Printf("  %s  count=%-6d energy=%+.3f\n", e.Bitstring, e.Count, e.Energy)
		} else {
			fmt.Printf("  %s  count=%-6d\n", e.Bitstring, e.Count)
		}
		shown++
	}
	for _, key := range []string{"transpile", "embedding", "comm", "qec", "pulse"} {
		if v, ok := res.Meta[key]; ok {
			fmt.Printf("%s: %+v\n", key, v)
		}
	}
}
