package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// runtimeKeys are the runtime/metrics keys the Go runtime gauges read.
var runtimeKeys = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

var registeredRuntime sync.Map // *Registry → bool

// RegisterRuntime adds Go runtime gauges to reg, refreshed at scrape
// time via an OnGather hook reading one runtime/metrics batch:
//
//	go_goroutines           live goroutine count
//	go_heap_objects_bytes   bytes of live heap objects
//	go_mem_total_bytes      total bytes from the OS
//	go_gc_cycles_total      completed GC cycles (gauge: runtime-owned)
//	go_gc_pause_p99_seconds p99 stop-the-world pause, process lifetime
//
// Idempotent per registry.
func RegisterRuntime(reg *Registry) {
	if _, loaded := registeredRuntime.LoadOrStore(reg, true); loaded {
		return
	}
	goroutines := reg.Gauge("go_goroutines", "Live goroutine count.")
	heapObj := reg.Gauge("go_heap_objects_bytes", "Bytes of live heap objects.")
	memTotal := reg.Gauge("go_mem_total_bytes", "Total bytes of memory obtained from the OS.")
	//lint:ignore obsconv mirrors the cumulative runtime/metrics counter /gc/cycles/total but is scraped via Gauge.Set; renaming would break the established /metrics surface
	gcCycles := reg.Gauge("go_gc_cycles_total", "Completed GC cycles since process start.")
	gcPause := reg.Gauge("go_gc_pause_p99_seconds", "p99 GC stop-the-world pause over the process lifetime.")
	samples := make([]metrics.Sample, len(runtimeKeys))
	for i, k := range runtimeKeys {
		samples[i].Name = k
	}
	reg.OnGather(func() {
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case "/sched/goroutines:goroutines":
				goroutines.Set(float64(s.Value.Uint64()))
			case "/memory/classes/heap/objects:bytes":
				heapObj.Set(float64(s.Value.Uint64()))
			case "/memory/classes/total:bytes":
				memTotal.Set(float64(s.Value.Uint64()))
			case "/gc/cycles/total:gc-cycles":
				gcCycles.Set(float64(s.Value.Uint64()))
			case "/gc/pauses:seconds":
				gcPause.Set(float64HistQuantile(s.Value.Float64Histogram(), 0.99))
			}
		}
	})
}

// float64HistQuantile estimates a quantile from a runtime/metrics
// Float64Histogram (bucket midpoints; runtime histograms may have
// infinite outer bounds, which clamp to the adjacent finite bound).
func float64HistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	total := uint64(0)
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			switch {
			case math.IsInf(lo, 0):
				return hi
			case math.IsInf(hi, 0):
				return lo
			default:
				return (lo + hi) / 2
			}
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 0) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}
