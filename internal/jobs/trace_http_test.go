package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer is a race-safe log sink: the pool's worker goroutines write
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHTTPTraceAndSpans drives a traced job through the worker surface:
// the inbound X-Trace-Id must come back on the 202 (header and body),
// appear in the status document alongside a span log covering the
// lifecycle and the simulator stages, and show up on the structured log
// lines.
func TestHTTPTraceAndSpans(t *testing.T) {
	logs := &syncBuffer{}
	pool := NewPool(Options{Workers: 1, QueueDepth: 8, Logger: obs.NewLogger("json", logs)})
	defer pool.Close()
	h := NewHandler(pool)
	raw := quickstartBundle(t)

	const trace = "trace-e2e-001"
	r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(raw)))
	r.Header.Set(obs.TraceHeader, trace)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get(obs.TraceHeader); got != trace {
		t.Fatalf("202 %s = %q, want %q", obs.TraceHeader, got, trace)
	}
	var sub struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body: %v (%s)", err, w.Body.String())
	}
	if sub.TraceID != trace {
		t.Fatalf("submit trace_id = %q, want %q", sub.TraceID, trace)
	}

	var st map[string]any
	deadline := time.Now().Add(30 * time.Second)
	for {
		st = doJSON(t, h, "GET", "/v1/jobs/"+sub.ID, nil, http.StatusOK)
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st["trace_id"] != trace {
		t.Fatalf("status trace_id = %v, want %q", st["trace_id"], trace)
	}
	spans, _ := st["spans"].([]any)
	stages := map[string]bool{}
	for _, s := range spans {
		stages[s.(map[string]any)["stage"].(string)] = true
	}
	for _, want := range []string{"queued", "started", "compile", "execute", "sample", "done"} {
		if !stages[want] {
			t.Fatalf("span log missing %q: %v", want, spans)
		}
	}

	if !strings.Contains(logs.String(), trace) {
		t.Fatalf("trace %q absent from structured logs:\n%s", trace, logs.String())
	}

	// A generated ID replaces a missing header and still echoes.
	r2 := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(raw)))
	w2 := httptest.NewRecorder()
	h.ServeHTTP(w2, r2)
	if w2.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d", w2.Code)
	}
	if gen := w2.Header().Get(obs.TraceHeader); !obs.ValidTraceID(gen) {
		t.Fatalf("generated trace %q is not valid", gen)
	}
}

// TestHTTPMetricsEndpoint scrapes GET /metrics off the worker handler
// after a job ran and checks — through the strict exposition parser —
// that the pool's counters and latency histograms are present and
// consistent with /v1/stats.
func TestHTTPMetricsEndpoint(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 8})
	defer pool.Close()
	h := NewHandler(pool)
	raw := quickstartBundle(t)

	sub := doJSON(t, h, "POST", "/v1/jobs", raw, http.StatusAccepted)
	id := sub["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := doJSON(t, h, "GET", "/v1/jobs/"+id, nil, http.StatusOK)
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	r := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	fams, err := obs.ParseExposition(w.Body.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]obs.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f, ok := byName["jobs_submitted_total"]; !ok || f.Samples[0].Value != 1 {
		t.Fatalf("jobs_submitted_total: %+v", byName["jobs_submitted_total"])
	}
	for _, histo := range []string{"jobs_queue_wait_seconds", "jobs_run_seconds", "sim_execute_seconds"} {
		f, ok := byName[histo]
		if !ok || f.Type != "histogram" {
			t.Fatalf("missing histogram %s (families: %d)", histo, len(fams))
		}
		found := false
		for _, s := range f.Samples {
			if strings.HasSuffix(s.Name, "_count") && s.Value >= 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s observed nothing: %+v", histo, f.Samples)
		}
	}
	stats := doJSON(t, h, "GET", "/v1/stats", nil, http.StatusOK)
	if stats["submitted"] != float64(1) {
		t.Fatalf("/v1/stats submitted = %v, want 1 (must agree with /metrics)", stats["submitted"])
	}
	if _, ok := stats["build"].(map[string]any); !ok {
		t.Fatalf("/v1/stats missing build info: %v", stats["build"])
	}
}
