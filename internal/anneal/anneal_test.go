package anneal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ising"
)

func cycle4() *ising.Model { return ising.FromMaxCut(graph.Cycle(4)) }

func TestSampleCycle4FindsGroundStates(t *testing.T) {
	// The paper's §5 anneal path: num_reads = 1000 on the 4-cycle Ising
	// problem. Both runs should overwhelmingly return the optimal cuts
	// 1010 (mask 5) and 0101 (mask 10) at energy -4.
	res, err := SampleModel(cycle4(), Params{NumReads: 1000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best()
	if best.Energy != -4 {
		t.Fatalf("best energy = %v, want -4", best.Energy)
	}
	if best.Mask != 5 && best.Mask != 10 {
		t.Errorf("best mask = %d, want 5 or 10", best.Mask)
	}
	if p := res.GroundProbability(-4, 1e-9); p < 0.95 {
		t.Errorf("ground probability = %v, want > 0.95 on this trivial instance", p)
	}
	if res.NumReads != 1000 {
		t.Errorf("NumReads = %d", res.NumReads)
	}
}

func TestSampleDeterministicBySeed(t *testing.T) {
	m := ising.FromMaxCut(graph.ErdosRenyi(10, 0.5, 3))
	a, err := SampleModel(m, Params{NumReads: 50, Sweeps: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SampleModel(m, Params{NumReads: 50, Sweeps: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("same seed, different sample sets")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("same seed, sample %d differs", i)
		}
	}
}

func TestSampleMatchesBruteForceGround(t *testing.T) {
	// On small random instances, SA with generous sweeps should find the
	// true ground energy.
	for seed := uint64(1); seed <= 5; seed++ {
		g := graph.ErdosRenyi(8, 0.5, seed)
		m := ising.FromMaxCut(g)
		gs := m.BruteForce()
		res, err := SampleModel(m, Params{NumReads: 50, Sweeps: 500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Best().Energy-gs.Energy) > 1e-9 {
			t.Errorf("seed %d: SA best %v, true ground %v", seed, res.Best().Energy, gs.Energy)
		}
	}
}

func TestSampleNeverBelowGround(t *testing.T) {
	// Property: no reported energy can be below the true ground energy.
	f := func(seed uint64) bool {
		g := graph.ErdosRenyi(7, 0.6, seed)
		m := ising.FromMaxCut(g)
		gs := m.BruteForce()
		res, err := SampleModel(m, Params{NumReads: 10, Sweeps: 50, Seed: seed})
		if err != nil {
			return false
		}
		for _, s := range res.Samples {
			if s.Energy < gs.Energy-1e-9 {
				return false
			}
			// And the reported energy must match the mask.
			if math.Abs(s.Energy-m.EnergyBits(s.Mask)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestOccurrencesSumToReads(t *testing.T) {
	res, err := SampleModel(cycle4(), Params{NumReads: 123, Sweeps: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range res.Samples {
		total += s.Occurrences
	}
	if total != 123 {
		t.Errorf("occurrences sum %d, want 123", total)
	}
}

func TestParamValidation(t *testing.T) {
	m := cycle4()
	if _, err := SampleModel(m, Params{NumReads: 0}); err == nil {
		t.Error("zero reads accepted")
	}
	if _, err := SampleModel(m, Params{NumReads: 1, Sweeps: -5}); err == nil {
		t.Error("negative sweeps accepted")
	}
	if _, err := SampleModel(m, Params{NumReads: 1, BetaMin: 2, BetaMax: 1}); err == nil {
		t.Error("inverted beta range accepted")
	}
	if _, err := SampleModel(m, Params{NumReads: 1, Schedule: "bogus"}); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := SampleModel(ising.NewModel(0), Params{NumReads: 1}); err == nil {
		t.Error("empty model accepted")
	}
}

func TestSchedules(t *testing.T) {
	p := Params{BetaMin: 0.1, BetaMax: 10, Schedule: "linear"}
	if b := betaAt(p, 0, 100); math.Abs(b-0.1) > 1e-12 {
		t.Errorf("linear start = %v", b)
	}
	if b := betaAt(p, 99, 100); math.Abs(b-10) > 1e-12 {
		t.Errorf("linear end = %v", b)
	}
	p.Schedule = "geometric"
	if b := betaAt(p, 0, 100); math.Abs(b-0.1) > 1e-12 {
		t.Errorf("geometric start = %v", b)
	}
	if b := betaAt(p, 99, 100); math.Abs(b-10) > 1e-9 {
		t.Errorf("geometric end = %v", b)
	}
	mid := betaAt(p, 49, 100)
	if mid < 0.5 || mid > 2 {
		t.Errorf("geometric midpoint = %v, want ~1 (geometric mean)", mid)
	}
}

func TestMeanEnergy(t *testing.T) {
	r := &Result{Samples: []Sample{
		{Mask: 0, Energy: -4, Occurrences: 3},
		{Mask: 1, Energy: 0, Occurrences: 1},
	}}
	if got := r.MeanEnergy(); math.Abs(got+3) > 1e-12 {
		t.Errorf("MeanEnergy = %v, want -3", got)
	}
}

func TestRandomSampleBaseline(t *testing.T) {
	m := cycle4()
	res, err := RandomSample(m, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform over 16 configs: ground probability ≈ 2/16.
	p := res.GroundProbability(-4, 1e-9)
	if p < 0.06 || p > 0.20 {
		t.Errorf("random ground probability = %v, want ~0.125", p)
	}
	if _, err := RandomSample(m, 0, 1); err == nil {
		t.Error("zero reads accepted")
	}
}

func TestGreedyDescentReachesLocalMinimum(t *testing.T) {
	m := ising.FromMaxCut(graph.ErdosRenyi(10, 0.5, 8))
	res, err := GreedyDescent(m, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	adj := m.AdjacencyList()
	_ = adj
	// Every returned configuration must be 1-flip stable.
	for _, smp := range res.Samples {
		s := ising.SpinsFromBits(smp.Mask, m.N)
		base := m.Energy(s)
		for i := 0; i < m.N; i++ {
			s[i] = -s[i]
			if m.Energy(s) < base-1e-9 {
				t.Fatalf("greedy returned non-local-minimum: flip %d improves", i)
			}
			s[i] = -s[i]
		}
	}
}

func TestTabuBeatsRandomOnFrustratedInstance(t *testing.T) {
	g := graph.ErdosRenyi(12, 0.5, 77)
	m := ising.FromMaxCut(g)
	gs := m.BruteForce()
	tabu, err := TabuSearch(m, 20, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSample(m, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tabu.Best().Energy > rnd.Best().Energy {
		t.Errorf("tabu best %v worse than random best %v", tabu.Best().Energy, rnd.Best().Energy)
	}
	if math.Abs(tabu.Best().Energy-gs.Energy) > 1e-9 {
		t.Errorf("tabu missed ground state: %v vs %v", tabu.Best().Energy, gs.Energy)
	}
}

func TestBaselineValidation(t *testing.T) {
	m := cycle4()
	if _, err := GreedyDescent(m, 0, 1); err == nil {
		t.Error("greedy zero reads accepted")
	}
	if _, err := TabuSearch(m, 0, 10, 1); err == nil {
		t.Error("tabu zero reads accepted")
	}
}

func TestSampleWithFieldsModel(t *testing.T) {
	// Biased single spin: h = -1 wants s = +1 (energy -1).
	m := ising.NewModel(2)
	m.H[0] = -1
	m.H[1] = 1
	res, err := SampleModel(m, Params{NumReads: 100, Sweeps: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Ground state: s0=+1 (bit set), s1=-1 (bit clear) -> mask 1, energy -2.
	if res.Best().Mask != 1 || res.Best().Energy != -2 {
		t.Errorf("best = %+v, want mask 1 energy -2", res.Best())
	}
	if p := res.GroundProbability(-2, 1e-9); p < 0.99 {
		t.Errorf("trivial field problem ground probability %v", p)
	}
}
