package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"time"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/obs"
)

// This file implements the compile-then-execute engine: a circuit is
// lowered once into a kernel sequence (Compile), and the kernels are then
// swept over the statevector by the persistent shard pool (Execute). The
// compile step fuses runs of single-qubit gates on the same qubit into one
// 2×2 matrix, merges consecutive diagonal/phase gates into a single
// diagonal kernel, and specializes controlled permutations, so a deep
// circuit needs far fewer bandwidth-bound sweeps than one per gate.
//
// Fusion composes kernels as complex matrices; at Compile finalize every
// kernel matrix and phase table is split once into real/imaginary float64
// parts (gates.Split2/Split4, the ph*/amp* plane slices), so the execution
// sweeps are branch-free float arithmetic over the state's split planes
// with no complex deinterleave per element.

// kernelKind enumerates the sweep shapes the executor knows.
type kernelKind uint8

const (
	// kGate1Q applies a fused 2×2 unitary to one qubit, iterating the
	// 2^(n-1) amplitude pairs directly.
	kGate1Q kernelKind = iota
	// kGate2Q applies a fused dense 4×4 unitary to a qubit pair, iterating
	// the 2^(n-2) amplitude quadruples directly — the merged form of
	// CX/CZ/CP/SWAP chains on one pair together with the single-qubit
	// gates surrounding them.
	kGate2Q
	// kCtrlPerm swaps amplitude pairs over the subspace selected by
	// constrained bits — the specialization of CX, SWAP, CCX and CSWAP.
	kCtrlPerm
	// kCtrlPhase multiplies one phase onto the all-ones subspace of its
	// qubits — the specialization of CZ and CP before any merging.
	kCtrlPhase
	// kDiag multiplies a phase table indexed by a gathered local index —
	// the merged form of runs of diagonal gates.
	kDiag
	// kPermute and kInit are the scratch-buffer natives.
	kPermute
	kInit
)

// bitInsert expands a compact subspace index by one constrained bit; see
// expandIndex. Inserts are ordered by ascending bit position.
type bitInsert struct {
	low int // mask of the bits below the constrained position
	bit int // the constrained value, shifted into place
}

// expandIndex maps a compact index over the free bits to a full amplitude
// index with every constrained bit set to its required value.
func expandIndex(c int, inserts []bitInsert) int {
	for _, ins := range inserts {
		c = (c&^ins.low)<<1 | ins.bit | c&ins.low
	}
	return c
}

// kernel is one compiled sweep.
type kernel struct {
	kind    kernelKind
	support int  // bitmask of touched qubits
	diag    bool // diagonal in the computational basis

	// kGate1Q (q only) / kGate2Q (q is the lower qubit, q2 the higher).
	// The complex matrices are the fusion-time representation; ms/m4s are
	// their split real/imag planes, derived once at Compile finalize and
	// the only form the sweeps read.
	q   int
	q2  int
	m   gates.Matrix2
	ms  gates.Split2
	m4  gates.Matrix4
	m4s gates.Split4
	// Monomial decomposition of m4 (permutation × phase: exactly one
	// nonzero per row and column), precomputed at Compile finalize. The
	// sweep then costs 4 complex multiplies per quadruple instead of the
	// dense kernel's 16 multiplies + 12 adds: out[r] = mph[r]·in[msrc[r]].
	mono  bool
	msrc  [4]int
	mphRe [4]float64
	mphIm [4]float64

	// kCtrlPerm / kCtrlPhase
	inserts []bitInsert
	free    int // number of unconstrained bits; the sweep runs 2^free trips
	flip    int // kCtrlPerm: XOR mask exchanging the amplitude pair
	phase   complex128

	// kDiag / kPermute / kInit (local indexing: qubits[k] is bit k).
	// phases/amps are the complex merge-time tables; phRe/phIm and
	// ampRe/ampIm the split planes the sweeps read (finishDiag keeps the
	// diagonal split in lockstep with table merges).
	qubits []int
	masks  []int
	phases []complex128
	phRe   []float64
	phIm   []float64
	perm   []uint64
	amps   []complex128
	ampRe  []float64
	ampIm  []float64

	// Parametric recording (CompileParametric only; always nil in
	// concrete plans). re1/re2 rebuild this kernel's fused matrix from a
	// bound parameter vector by replaying the exact sequence of
	// Mul2/Mul4/Kron2/row-scale operations the fusion scan performed —
	// same operations, same order, same float rounding — so a bound
	// kernel matrix is bit-identical to the one a concrete compile of
	// the bound circuit would produce.
	re1 func(v []float64) gates.Matrix2
	re2 func(v []float64) gates.Matrix4
}

// PlanStats reports what compilation achieved.
type PlanStats struct {
	// SourceOps counts compiled instructions (measurements and barriers
	// excluded).
	SourceOps int
	// Kernels is the length of the compiled sequence; SourceOps−Kernels
	// sweeps were eliminated by fusion.
	Kernels int
	// Fused1Q counts single-qubit gates folded into an earlier 2×2 kernel.
	Fused1Q int
	// Fused2Q counts gates of any arity folded into a dense 4×4 two-qubit
	// kernel: same-pair CX/CZ/CP/SWAP chains, the single-qubit gates
	// surrounding them, and pair-local diagonals.
	Fused2Q int
	// MergedDiag counts diagonal gates (CZ/CP/Diagonal) merged into an
	// earlier phase kernel.
	MergedDiag int
	// Monomial2Q counts dense 4×4 kernels that finalized as permutation ×
	// phase — pure CX/CZ/SWAP/S-style chains — and execute on the
	// 4-multiply monomial sweep instead of the full dense sweep.
	Monomial2Q int
}

// Plan is a compiled circuit: a kernel sequence ready to execute against
// any state with the right qubit count. Plans are immutable after Compile
// and safe for concurrent Execute calls on distinct states.
type Plan struct {
	n       int
	kernels []kernel
	stats   PlanStats

	// par is the parametric recording sink during CompileParametric;
	// nil for concrete compiles.
	par *paramRec
}

// NumQubits returns the qubit count the plan was compiled for.
func (pl *Plan) NumQubits() int { return pl.n }

// Stats returns the compile-time fusion statistics.
func (pl *Plan) Stats() PlanStats { return pl.stats }

// maxFuseScan bounds how far the compiler looks back for a fusion partner
// while hopping over commuting kernels, so compilation stays linear in
// depth. 64 comfortably covers a full layer on MaxQubits qubits.
const maxFuseScan = 64

// maxDiagFuseQubits caps the qubit support of a merged diagonal kernel;
// the phase table holds 2^k entries and the gather costs k operations per
// amplitude, so growth past a cache line of table stops paying.
const maxDiagFuseQubits = 8

// Compile lowers a circuit into a kernel plan. It performs all static
// validation (qubit bounds, operand distinctness, init normalization), so
// Execute can sweep without per-gate checks. Measurements must be
// terminal, exactly as in Evolve.
func Compile(c *circuit.Circuit) (*Plan, error) {
	if c.HasRefs() {
		return nil, fmt.Errorf("sim: circuit carries symbolic parameter references; use CompileParametric")
	}
	return compile(c, nil)
}

// compile is the shared body of Compile and CompileParametric. A
// non-nil par makes the lowering record matrix-rebuild closures and
// classification checks for symbolic instructions. Every call — both
// entry points and the degenerate-bind fallback — bumps CompileCount.
func compile(c *circuit.Circuit, par *paramRec) (*Plan, error) {
	compileCount.Add(1)
	if c.NumQubits < 1 || c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", c.NumQubits, MaxQubits)
	}
	pl := &Plan{n: c.NumQubits, par: par}
	seenMeasure := false
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpMeasure:
			seenMeasure = true
			continue
		case circuit.OpBarrier:
			continue
		}
		if seenMeasure {
			return nil, fmt.Errorf("sim: instruction %d follows a measurement; mid-circuit measurement is not supported by the statevector engine", idx)
		}
		if err := pl.lower(ins); err != nil {
			return nil, fmt.Errorf("sim: instruction %d: %w", idx, err)
		}
		pl.stats.SourceOps++
	}
	// Finalize: fusion is done mutating kernels, so matrix contents and
	// monomial structure are now stable. Split every kernel matrix into
	// real/imag planes once, and downgrade any dense 4×4 that ended up
	// permutation×phase (a pure CX/CZ/SWAP chain, possibly with
	// X/Z/S-style 1Q gates folded in) to the 4-multiply monomial sweep.
	for i := range pl.kernels {
		k := &pl.kernels[i]
		switch k.kind {
		case kGate1Q:
			k.ms = k.m.Split()
		case kGate2Q:
			if src, ph, ok := monomial4(k.m4); ok {
				k.mono, k.msrc = true, src
				for r := 0; r < 4; r++ {
					k.mphRe[r], k.mphIm[r] = real(ph[r]), imag(ph[r])
				}
				pl.stats.Monomial2Q++
				continue
			}
			k.m4s = k.m4.Split()
		}
	}
	pl.stats.Kernels = len(pl.kernels)
	return pl, nil
}

// monomial4 decomposes m as out[r] = ph[r]·in[src[r]] when every row and
// column holds exactly one nonzero entry. The zero test is exact, like
// isDiag4's: products and Kronecker factors of exact-zero patterns stay
// exactly zero, so gate chains that are structurally permutation×phase
// are recognized without a tolerance; a false negative only costs the
// fast path, never correctness.
func monomial4(m gates.Matrix4) (src [4]int, ph [4]complex128, ok bool) {
	var colUsed [4]bool
	for r := 0; r < 4; r++ {
		found := -1
		for c := 0; c < 4; c++ {
			if m[r][c] != 0 {
				if found >= 0 {
					return src, ph, false
				}
				found = c
			}
		}
		if found < 0 || colUsed[found] {
			return src, ph, false
		}
		colUsed[found] = true
		src[r] = found
		ph[r] = m[r][found]
	}
	return src, ph, true
}

func (pl *Plan) checkQubits(qs ...int) error {
	seen := 0
	for _, q := range qs {
		if q < 0 || q >= pl.n {
			return fmt.Errorf("sim: qubit %d out of [0,%d)", q, pl.n)
		}
		if seen&(1<<q) != 0 {
			return fmt.Errorf("sim: duplicate qubit %d", q)
		}
		seen |= 1 << q
	}
	return nil
}

// lower turns one instruction into a primitive kernel and appends it with
// fusion.
func (pl *Plan) lower(ins circuit.Instruction) error {
	switch ins.Op {
	case circuit.OpGate:
		switch ins.Gate {
		case gates.CX:
			return pl.lower2Q(ins.Gate, ins.Qubits[0], ins.Qubits[1])
		case gates.SWAP:
			return pl.lower2Q(ins.Gate, ins.Qubits[0], ins.Qubits[1])
		case gates.CCX:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]}, 1<<ins.Qubits[2])
		case gates.CSWAP:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]},
				1<<ins.Qubits[1]|1<<ins.Qubits[2])
		case gates.CZ:
			return pl.lowerCtrlPhase(ins.Qubits, -1)
		case gates.CP:
			return pl.lowerCtrlPhase(ins.Qubits, cmplx.Exp(complex(0, ins.Params[0])))
		default:
			params := ins.Params
			var reb func(v []float64) gates.Matrix2
			if pl.par != nil && ins.Symbolic() {
				reb = unitary1Rebuild(ins)
				params = boundParams(ins.Params, ins.Refs, pl.par.placeholder)
			}
			m, err := gates.Unitary1(ins.Gate, params)
			if err != nil {
				return err
			}
			q := ins.Qubits[0]
			if err := pl.checkQubits(q); err != nil {
				return err
			}
			k := kernel{
				kind: kGate1Q, support: 1 << q, q: q, m: m,
				diag: m[0][1] == 0 && m[1][0] == 0,
				re1:  reb,
			}
			if reb != nil {
				// The leaf's diag classification is numeric; record a
				// bind-time re-check so a degenerate angle (which would
				// classify differently in a concrete compile, changing
				// fusion decisions downstream) falls back.
				pl.par.check1Q(reb, k.diag)
			}
			pl.fuse1Q(k)
			return nil
		}
	case circuit.OpDiagonal:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		k := kernel{kind: kDiag, diag: true}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.phases = append([]complex128(nil), ins.Phases...)
		k.finishDiag()
		pl.fuseDiag(k)
		return nil
	case circuit.OpPermute:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Perm) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: permutation table size %d != 2^%d", len(ins.Perm), len(ins.Qubits))
		}
		k := kernel{kind: kPermute, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.perm = append([]uint64(nil), ins.Perm...)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	case circuit.OpInit:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Amps) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: init state size %d != 2^%d", len(ins.Amps), len(ins.Qubits))
		}
		norm := 0.0
		for _, a := range ins.Amps {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		if math.Abs(norm-1) > 1e-9 {
			return fmt.Errorf("sim: init state not normalized (norm² = %v)", norm)
		}
		k := kernel{kind: kInit, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.amps = append([]complex128(nil), ins.Amps...)
		k.ampRe, k.ampIm = splitComplexSlice(k.amps)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	}
	return fmt.Errorf("sim: unhandled opcode %d", ins.Op)
}

// lowerCtrlPerm builds the subspace-swap kernel for CCX/CSWAP (and for
// CX/SWAP when dense fusion finds no partner): ones lists bits constrained
// to 1, zeros bits constrained to 0 (the pair member the sweep visits),
// flip exchanges the pair.
func (pl *Plan) lowerCtrlPerm(ones, zeros []int, flip int) error {
	qs := append(append([]int(nil), ones...), zeros...)
	if err := pl.checkQubits(qs...); err != nil {
		return err
	}
	pl.kernels = append(pl.kernels, newCtrlPerm(ones, zeros, flip, pl.n))
	return nil
}

func newCtrlPerm(ones, zeros []int, flip, n int) kernel {
	qs := append(append([]int(nil), ones...), zeros...)
	return kernel{
		kind:    kCtrlPerm,
		support: qubitMask(qs),
		inserts: makeInserts(ones, zeros),
		free:    n - len(qs),
		flip:    flip,
	}
}

// lower2Q lowers CX or SWAP through the dense-fusion scan: the gate folds
// with any earlier kernels on its pair into one 4×4 unitary, or keeps its
// cheap subspace-exchange form when nothing folds.
func (pl *Plan) lower2Q(g gates.Name, a, b int) error {
	if err := pl.checkQubits(a, b); err != nil {
		return err
	}
	qLo, qHi := min(a, b), max(a, b)
	var m gates.Matrix4
	var plain kernel
	switch g {
	case gates.CX:
		m = mat4CX(a == qHi)
		plain = newCtrlPerm([]int{a}, []int{b}, 1<<b, pl.n)
	case gates.SWAP:
		m = mat4Swap()
		plain = newCtrlPerm([]int{a}, []int{b}, 1<<a|1<<b, pl.n)
	}
	pl.fuse2Q(qLo, qHi, m, plain)
	return nil
}

func (pl *Plan) lowerCtrlPhase(qubits []int, ph complex128) error {
	if err := pl.checkQubits(qubits...); err != nil {
		return err
	}
	k := kernel{
		kind:    kCtrlPhase,
		support: qubitMask(qubits),
		diag:    true,
		inserts: makeInserts(qubits, nil),
		free:    pl.n - len(qubits),
		phase:   ph,
	}
	k.qubits = append([]int(nil), qubits...)
	pl.fuseDiag(k)
	return nil
}

// makeInserts builds the bit-insert list for the constrained positions:
// ones are fixed to 1, zeros to 0. Positions must be distinct.
func makeInserts(ones, zeros []int) []bitInsert {
	type con struct{ pos, val int }
	cons := make([]con, 0, len(ones)+len(zeros))
	for _, p := range ones {
		cons = append(cons, con{p, 1})
	}
	for _, p := range zeros {
		cons = append(cons, con{p, 0})
	}
	// Insertion sort by position ascending (≤ 3 constraints in practice).
	for i := 1; i < len(cons); i++ {
		for j := i; j > 0 && cons[j].pos < cons[j-1].pos; j-- {
			cons[j], cons[j-1] = cons[j-1], cons[j]
		}
	}
	inserts := make([]bitInsert, len(cons))
	for i, c := range cons {
		inserts[i] = bitInsert{low: 1<<c.pos - 1, bit: c.val << c.pos}
	}
	return inserts
}

func qubitMask(qs []int) int {
	m := 0
	for _, q := range qs {
		m |= 1 << q
	}
	return m
}

func qubitMasks(qs []int) []int {
	masks := make([]int, len(qs))
	for i, q := range qs {
		masks[i] = 1 << q
	}
	return masks
}

// finishDiag derives the cached fields of a kDiag kernel from its qubit
// list and phase table — including the split real/imag planes the sweep
// reads, so table merges (mergeDiag, toDiag) can never leave the split
// form stale.
func (k *kernel) finishDiag() {
	k.support = qubitMask(k.qubits)
	k.masks = qubitMasks(k.qubits)
	k.phRe, k.phIm = splitComplexSlice(k.phases)
}

// commutes reports whether two kernels commute: disjoint qubit support, or
// both diagonal in the computational basis. The fusion scan may hop over a
// commuting kernel without changing circuit semantics.
func commutes(a, b *kernel) bool {
	return a.support&b.support == 0 || (a.diag && b.diag)
}

// ---- dense two-qubit fusion ----

var id2 = gates.Matrix2{{1, 0}, {0, 1}}

// mat4CX returns CX over the local pair basis: ctrlHigh selects whether
// the control sits on local bit 1 (the higher qubit position) or bit 0.
func mat4CX(ctrlHigh bool) gates.Matrix4 {
	if ctrlHigh {
		return gates.Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}}
	}
	return gates.Matrix4{{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}}
}

func mat4Swap() gates.Matrix4 {
	return gates.Matrix4{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}}
}

func mat4CPhase(ph complex128) gates.Matrix4 {
	return gates.Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, ph}}
}

// isDiag4 reports whether every off-diagonal entry is exactly zero (float
// products of diagonal factors stay exactly diagonal, so the check is not
// tolerance-sensitive; a false negative only costs a fusion hop).
func isDiag4(m gates.Matrix4) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && m[i][j] != 0 {
				return false
			}
		}
	}
	return true
}

// isPairSupport reports whether the mask covers exactly two qubits.
func isPairSupport(mask int) bool {
	return bits.OnesCount(uint(mask)) == 2
}

// diag4For maps a diagonal kernel with support ⊆ {qLo, qHi} onto the
// four-entry diagonal over the pair's local basis.
func diag4For(k *kernel, qLo, qHi int) [4]complex128 {
	if k.kind == kCtrlPhase {
		return [4]complex128{1, 1, 1, k.phase}
	}
	var d [4]complex128
	for l := 0; l < 4; l++ {
		dl := 0
		for bit, q := range k.qubits {
			if (q == qLo && l&1 != 0) || (q == qHi && l&2 != 0) {
				dl |= 1 << bit
			}
		}
		d[l] = k.phases[dl]
	}
	return d
}

// expand2Q returns a foldable kernel's 4×4 unitary in the local basis of
// the pair (qLo, qHi): bit 0 is qLo's value, bit 1 is qHi's.
func expand2Q(t *kernel, qLo, qHi int) gates.Matrix4 {
	switch t.kind {
	case kGate2Q:
		return t.m4
	case kGate1Q:
		if t.q == qHi {
			return gates.Kron2(t.m, id2)
		}
		return gates.Kron2(id2, t.m)
	case kCtrlPhase:
		return mat4CPhase(t.phase)
	case kCtrlPerm:
		if t.flip == t.support {
			return mat4Swap()
		}
		return mat4CX(t.support&^t.flip == 1<<qHi)
	case kDiag:
		var m gates.Matrix4
		d := diag4For(t, qLo, qHi)
		for l := 0; l < 4; l++ {
			m[l][l] = d[l]
		}
		return m
	}
	return gates.Matrix4{}
}

// fold2QPartner reports whether t can fold into a dense 4×4 on the pair:
// any kernel on exactly that pair, a single-qubit kernel on either qubit,
// or a pair-local diagonal table.
func fold2QPartner(t *kernel, pairMask int) bool {
	switch t.kind {
	case kGate2Q, kCtrlPerm, kCtrlPhase:
		return t.support == pairMask
	case kGate1Q, kDiag:
		return t.support&^pairMask == 0
	}
	return false
}

// toGate2Q rewrites a two-qubit specialized kernel (kCtrlPerm for CX/SWAP,
// or kCtrlPhase) in place as the equivalent dense 4×4 kernel.
func (k *kernel) toGate2Q() {
	qLo := bits.TrailingZeros(uint(k.support))
	qHi := bits.Len(uint(k.support)) - 1
	m := expand2Q(k, qLo, qHi)
	*k = kernel{
		kind: kGate2Q, support: 1<<qLo | 1<<qHi,
		q: qLo, q2: qHi, m4: m, diag: k.diag,
	}
}

// fuse2Q appends a two-qubit gate on the pair (qLo, qHi), scanning back
// over commuting kernels and absorbing every foldable kernel it reaches —
// earlier dense 4×4s, specialized same-pair CX/SWAP/CZ/CP kernels,
// single-qubit kernels on either qubit, and pair-local diagonals — into
// one dense 4×4 unitary, mirroring fuse1Q's commute-aware backward scan.
// Partners are composed in program order (the matrix product accumulates
// latest-first on the left), and each absorbed kernel is removed from the
// sequence; hopped kernels commute with the pair's support, so reordering
// the partners to the append point preserves circuit semantics. When
// nothing folds the gate keeps its specialized form (plain): a lone CX
// sweeps only half the state as a pair exchange, which a dense 4×4 — a
// full-state sweep — would make slower, not faster.
func (pl *Plan) fuse2Q(qLo, qHi int, m gates.Matrix4, plain kernel) {
	pairMask := 1<<qLo | 1<<qHi
	probe := kernel{support: pairMask}
	folded := false
	floor := len(pl.kernels) - maxFuseScan
	if floor < 0 {
		floor = 0
	}
	var reb func(v []float64) gates.Matrix4
	for i := len(pl.kernels) - 1; i >= floor; i-- {
		t := &pl.kernels[i]
		if fold2QPartner(t, pairMask) {
			if reb != nil || t.re1 != nil || t.re2 != nil {
				reb = fold2QRebuild(m, reb, *t, qLo, qHi)
			}
			m = gates.Mul4(m, expand2Q(t, qLo, qHi))
			pl.kernels = append(pl.kernels[:i], pl.kernels[i+1:]...)
			pl.stats.Fused2Q++
			folded = true
			continue
		}
		if !commutes(t, &probe) {
			break
		}
	}
	if !folded {
		pl.kernels = append(pl.kernels, plain)
		return
	}
	nk := kernel{
		kind: kGate2Q, support: pairMask,
		q: qLo, q2: qHi, m4: m, diag: isDiag4(m),
		re2: reb,
	}
	if reb != nil {
		// Like the 1Q leaf diag flag, this kernel's diag classification
		// is numeric and feeds later commute/fold decisions: re-check it
		// per bind against the bound product.
		pl.par.check2Q(reb, nk.diag)
	}
	pl.kernels = append(pl.kernels, nk)
}

// fuse1Q appends a single-qubit kernel, first scanning back over commuting
// kernels for a fold target: an earlier single-qubit kernel on the same
// qubit, or a dense two-qubit kernel covering the qubit. A non-commuting
// two-qubit specialized kernel (CX/SWAP/CZ/CP) on the qubit promotes to a
// dense 4×4 and absorbs the gate — that trade replaces a full one-qubit
// sweep plus the pair sweep with one full sweep.
func (pl *Plan) fuse1Q(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kGate1Q && t.q == k.q {
			if t.re1 != nil || k.re1 != nil {
				t.re1 = mul2Rebuild(k, *t)
			}
			t.m = gates.Mul2(k.m, t.m) // t ran first: new = k·t
			t.diag = t.diag && k.diag
			pl.stats.Fused1Q++
			return
		}
		if t.kind == kGate2Q && t.support&k.support != 0 {
			if t.re2 != nil || k.re1 != nil {
				t.re2 = fold1QRebuild(k, *t)
			}
			t.m4 = gates.Mul4(expand2Q(&k, t.q, t.q2), t.m4)
			t.diag = t.diag && k.diag
			pl.stats.Fused2Q++
			return
		}
		if commutes(t, &k) {
			// Hopping before considering promotion lets a diagonal
			// single-qubit gate pass over a controlled phase unchanged, so
			// CZ/CP runs keep merging as cheap phase kernels.
			continue
		}
		if (t.kind == kCtrlPerm || t.kind == kCtrlPhase) && isPairSupport(t.support) {
			// Non-commuting, so t touches k.q: promote and fold.
			t.toGate2Q()
			if k.re1 != nil {
				t.re2 = fold1QRebuild(k, *t)
			}
			t.m4 = gates.Mul4(expand2Q(&k, t.q, t.q2), t.m4)
			t.diag = t.diag && k.diag
			pl.stats.Fused2Q++
			return
		}
		break
	}
	pl.kernels = append(pl.kernels, k)
}

// fuseDiag appends a diagonal kernel (kCtrlPhase or kDiag), merging it
// into an earlier phase kernel when the combined qubit support stays
// within maxDiagFuseQubits, or into a dense two-qubit kernel covering its
// support. Two controlled phases on the same qubit pair collapse without
// building a table at all.
func (pl *Plan) fuseDiag(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kCtrlPhase && k.kind == kCtrlPhase && t.support == k.support {
			t.phase *= k.phase
			pl.stats.MergedDiag++
			return
		}
		if t.kind == kGate2Q && k.support&^t.support == 0 {
			// The diagonal acts only on the dense kernel's pair: scale the
			// 4×4's rows in place.
			d := diag4For(&k, t.q, t.q2)
			if t.re2 != nil {
				t.re2 = rowScaleRebuild(t.re2, d)
			}
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					t.m4[r][c] *= d[r]
				}
			}
			pl.stats.Fused2Q++
			return
		}
		if (t.kind == kCtrlPhase || t.kind == kDiag) &&
			bits.OnesCount(uint(t.support|k.support)) <= maxDiagFuseQubits {
			t.toDiag()
			mergeDiag(t, &k)
			pl.stats.MergedDiag++
			return
		}
		if !commutes(t, &k) {
			break
		}
	}
	pl.kernels = append(pl.kernels, k)
}

// toDiag rewrites a kCtrlPhase kernel as an equivalent kDiag table (the
// identity everywhere except the all-ones local index).
func (k *kernel) toDiag() {
	if k.kind != kCtrlPhase {
		return
	}
	n := len(k.qubits)
	phases := make([]complex128, 1<<n)
	for i := range phases {
		phases[i] = 1
	}
	phases[len(phases)-1] = k.phase
	k.kind = kDiag
	k.phases = phases
	k.inserts = nil
	k.finishDiag()
}

// mergeDiag folds src (kCtrlPhase or kDiag) into the kDiag kernel dst,
// extending dst's qubit list with src's new qubits and multiplying the
// phase tables pointwise over the union index space.
func mergeDiag(dst, src *kernel) {
	src.toDiag()
	union := append([]int(nil), dst.qubits...)
	for _, q := range src.qubits {
		if qubitMask(union)&(1<<q) == 0 {
			union = append(union, q)
		}
	}
	// posIn[i] maps union bit i to the kernel's local bit, or -1.
	posIn := func(k *kernel) []int {
		pos := make([]int, len(union))
		for i, uq := range union {
			pos[i] = -1
			for j, q := range k.qubits {
				if q == uq {
					pos[i] = j
					break
				}
			}
		}
		return pos
	}
	dstPos, srcPos := posIn(dst), posIn(src)
	phases := make([]complex128, 1<<len(union))
	for local := range phases {
		dl, sl := 0, 0
		for i := 0; i < len(union); i++ {
			if local>>i&1 == 1 {
				if dstPos[i] >= 0 {
					dl |= 1 << dstPos[i]
				}
				if srcPos[i] >= 0 {
					sl |= 1 << srcPos[i]
				}
			}
		}
		phases[local] = dst.phases[dl] * src.phases[sl]
	}
	dst.qubits = union
	dst.phases = phases
	dst.finishDiag()
}

// Execute applies the plan to st, sweeping each kernel across the shard
// pool with a barrier between kernels. shards ≤ 0 selects automatically
// (single-shard below the parallel threshold, GOMAXPROCS above).
func (pl *Plan) Execute(st *State, shards int) error {
	if st.n != pl.n {
		return fmt.Errorf("sim: plan compiled for %d qubits, state has %d", pl.n, st.n)
	}
	pool := newShardPool(resolveShards(st.Dim(), shards))
	defer pool.close()
	return pl.executeOn(st, pool, nil)
}

// executeOn runs the kernel sequence on an existing pool; Run reuses the
// same pool afterwards for the CDF build. Every kernel feeds the
// always-on per-kind instruments; when prof is non-nil, each sweep
// closure is additionally wrapped to accumulate per-shard times for the
// opt-in kernel table. Neither layer touches amplitudes or shard
// ranges, so execution stays bit-identical profiled or not.
func (pl *Plan) executeOn(st *State, pool *shardPool, prof *execProfiler) error {
	re, im := st.re, st.im
	dim := len(re)
	run := pool.do
	if prof != nil {
		run = func(total int, fn func(w, lo, hi int)) {
			pool.do(total, func(w, lo, hi int) {
				shardStart := time.Now()
				fn(w, lo, hi)
				prof.shard[w] += time.Since(shardStart)
			})
		}
	}
	batchStart := time.Now()
	for i := range pl.kernels {
		k := &pl.kernels[i]
		ord := kindOrdinal(k)
		if prof != nil {
			prof.begin()
		}
		kernelStart := time.Now()
		switch k.kind {
		case kGate1Q:
			stride := 1 << k.q
			ms := &k.ms
			run(dim/2, func(_, lo, hi int) {
				sweep1QAuto(re, im, ms, stride, lo, hi)
			})
		case kGate2Q:
			maskLo, maskHi := 1<<k.q, 1<<k.q2
			if k.mono {
				src, phRe, phIm := &k.msrc, &k.mphRe, &k.mphIm
				run(dim/4, func(_, lo, hi int) {
					sweep2QMonoAuto(re, im, src, phRe, phIm, maskLo, maskHi, lo, hi)
				})
				break
			}
			ms := &k.m4s
			run(dim/4, func(_, lo, hi int) {
				sweep2QAuto(re, im, ms, maskLo, maskHi, lo, hi)
			})
		case kCtrlPerm:
			run(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPerm(re, im, k.inserts, k.flip, lo, hi)
			})
		case kCtrlPhase:
			phR, phI := real(k.phase), imag(k.phase)
			run(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPhase(re, im, k.inserts, phR, phI, lo, hi)
			})
		case kDiag:
			run(dim, func(_, lo, hi int) {
				sweepDiag(re, im, k.masks, k.phRe, k.phIm, lo, hi)
			})
		case kPermute:
			src := st.scratchPlanes()
			run(dim, func(_, lo, hi int) {
				copy(src.re[lo:hi], re[lo:hi])
				copy(src.im[lo:hi], im[lo:hi])
			})
			run(dim, func(_, lo, hi int) {
				sweepPermute(re, im, src.re, src.im, k.masks, k.perm, lo, hi)
			})
		case kInit:
			anyMask := k.support
			src := st.scratchPlanes()
			bad := make([]int, pool.shards)
			for i := range bad {
				bad[i] = -1
			}
			run(dim, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i&anyMask != 0 && bad[w] < 0 &&
						cmplx.Abs(complex(re[i], im[i])) > 1e-12 {
						bad[w] = i
					}
				}
				copy(src.re[lo:hi], re[lo:hi])
				copy(src.im[lo:hi], im[lo:hi])
			})
			for _, b := range bad {
				if b >= 0 {
					return fmt.Errorf("sim: init target qubits not in |0…0⟩ (amplitude at %d)", b)
				}
			}
			run(dim, func(_, lo, hi int) {
				sweepInit(re, im, src.re, src.im, k.masks, anyMask, k.ampRe, k.ampIm, lo, hi)
			})
		}
		kernelDur := time.Since(kernelStart)
		simKernels.At(ord).Inc()
		simKernelSeconds.At(ord).Observe(kernelDur)
		if prof != nil {
			prof.end(i, k, ord, kernelDur)
		}
	}
	obs.RecordDur(obs.FlightKernelBatch, "",
		fmt.Sprintf("kernels=%d shards=%d n=%d", len(pl.kernels), pool.shards, pl.n),
		time.Since(batchStart))
	return nil
}

// ---- sweep bodies, shared by plan execution and the State methods ----
//
// Every sweep operates on the split re/im planes. The float expressions
// mirror the grouping of Go's complex128 arithmetic exactly — a complex
// product contributes (ar·br − ai·bi) and (ar·bi + ai·br) as parenthesized
// units, sums of products associate left to right — so the split kernels
// produce bit-identical amplitudes to the former []complex128 kernels and
// sampled counts are unchanged across the layout refactor.

// blockedStrideMin is the smallest kernel stride worth the cache-blocked
// sweep form: below it the contiguous runs are too short for the per-run
// setup to pay off.
const blockedStrideMin = 64

// cacheBlockAmps bounds the contiguous run length of a blocked sweep so
// each block's quadrant slices (4 streams for a 1Q kernel, 8 for a 2Q one,
// counting both planes) stay L2-resident while they are being transformed:
// 4096 amplitudes per stream is 32 KiB per plane, at most 256 KiB in
// flight.
const cacheBlockAmps = 1 << 12

// sweep1Q applies a 2×2 unitary to the amplitude pairs indexed by
// [lo, hi) ⊂ [0, 2^(n-1)): pair p expands to indices (i, i|stride) with
// the target bit cleared and set.
func sweep1Q(re, im []float64, m *gates.Split2, stride, lo, hi int) {
	low := stride - 1
	m00r, m01r, m10r, m11r := m.Re[0][0], m.Re[0][1], m.Re[1][0], m.Re[1][1]
	m00i, m01i, m10i, m11i := m.Im[0][0], m.Im[0][1], m.Im[1][0], m.Im[1][1]
	for p := lo; p < hi; p++ {
		i := (p&^low)<<1 | p&low
		j := i | stride
		a0r, a0i := re[i], im[i]
		a1r, a1i := re[j], im[j]
		re[i] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
		im[i] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
		re[j] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
		im[j] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
	}
}

// sweep1QBlocked is the cache-blocked form for high-stride targets: the
// pair index expands once per block and the four half-streams (two planes
// × two halves) then advance as plain consecutive runs, bounded by
// cacheBlockAmps so all streams stay cache-resident while being
// transformed. Per-pair bit surgery disappears from the inner loop, which
// is straight-line float math over equal-length slices.
func sweep1QBlocked(re, im []float64, m *gates.Split2, stride, lo, hi int) {
	low := stride - 1
	m00r, m01r, m10r, m11r := m.Re[0][0], m.Re[0][1], m.Re[1][0], m.Re[1][1]
	m00i, m01i, m10i, m11i := m.Im[0][0], m.Im[0][1], m.Im[1][0], m.Im[1][1]
	for p := lo; p < hi; {
		i := (p&^low)<<1 | p&low
		run := stride - p&low
		if run > hi-p {
			run = hi - p
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		// The half-streams as equal-length slices: the bounds checks
		// vanish from the inner loop.
		r0 := re[i : i+run]
		i0 := im[i:][:run]
		r1 := re[i|stride:][:run]
		i1 := im[i|stride:][:run]
		for r := range r0 {
			a0r, a0i := r0[r], i0[r]
			a1r, a1i := r1[r], i1[r]
			r0[r] = (m00r*a0r - m00i*a0i) + (m01r*a1r - m01i*a1i)
			i0[r] = (m00r*a0i + m00i*a0r) + (m01r*a1i + m01i*a1r)
			r1[r] = (m10r*a0r - m10i*a0i) + (m11r*a1r - m11i*a1i)
			i1[r] = (m10r*a0i + m10i*a0r) + (m11r*a1i + m11i*a1r)
		}
		p += run
	}
}

// sweep1QAuto picks the blocked sweep for high-stride targets.
func sweep1QAuto(re, im []float64, m *gates.Split2, stride, lo, hi int) {
	if stride >= blockedStrideMin {
		sweep1QBlocked(re, im, m, stride, lo, hi)
		return
	}
	sweep1Q(re, im, m, stride, lo, hi)
}

// sweep2Q applies a dense 4×4 unitary to the amplitude quadruples indexed
// by [lo, hi) ⊂ [0, 2^(n-2)): quad c expands to the base index i with both
// pair bits clear; its partners sit at i|maskLo, i|maskHi and i|both.
func sweep2Q(re, im []float64, m *gates.Split4, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	mr, mi := &m.Re, &m.Im
	for c := lo; c < hi; c++ {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		j := i | maskLo
		k := i | maskHi
		l := j | maskHi
		a0r, a0i := re[i], im[i]
		a1r, a1i := re[j], im[j]
		a2r, a2i := re[k], im[k]
		a3r, a3i := re[l], im[l]
		re[i] = (mr[0][0]*a0r - mi[0][0]*a0i) + (mr[0][1]*a1r - mi[0][1]*a1i) + (mr[0][2]*a2r - mi[0][2]*a2i) + (mr[0][3]*a3r - mi[0][3]*a3i)
		im[i] = (mr[0][0]*a0i + mi[0][0]*a0r) + (mr[0][1]*a1i + mi[0][1]*a1r) + (mr[0][2]*a2i + mi[0][2]*a2r) + (mr[0][3]*a3i + mi[0][3]*a3r)
		re[j] = (mr[1][0]*a0r - mi[1][0]*a0i) + (mr[1][1]*a1r - mi[1][1]*a1i) + (mr[1][2]*a2r - mi[1][2]*a2i) + (mr[1][3]*a3r - mi[1][3]*a3i)
		im[j] = (mr[1][0]*a0i + mi[1][0]*a0r) + (mr[1][1]*a1i + mi[1][1]*a1r) + (mr[1][2]*a2i + mi[1][2]*a2r) + (mr[1][3]*a3i + mi[1][3]*a3r)
		re[k] = (mr[2][0]*a0r - mi[2][0]*a0i) + (mr[2][1]*a1r - mi[2][1]*a1i) + (mr[2][2]*a2r - mi[2][2]*a2i) + (mr[2][3]*a3r - mi[2][3]*a3i)
		im[k] = (mr[2][0]*a0i + mi[2][0]*a0r) + (mr[2][1]*a1i + mi[2][1]*a1r) + (mr[2][2]*a2i + mi[2][2]*a2r) + (mr[2][3]*a3i + mi[2][3]*a3r)
		re[l] = (mr[3][0]*a0r - mi[3][0]*a0i) + (mr[3][1]*a1r - mi[3][1]*a1i) + (mr[3][2]*a2r - mi[3][2]*a2i) + (mr[3][3]*a3r - mi[3][3]*a3i)
		im[l] = (mr[3][0]*a0i + mi[3][0]*a0r) + (mr[3][1]*a1i + mi[3][1]*a1r) + (mr[3][2]*a2i + mi[3][2]*a2r) + (mr[3][3]*a3i + mi[3][3]*a3r)
	}
}

// sweep2QBlocked is the cache-blocked form for pairs whose lower qubit is
// high: the quadruple index expands once per block and the eight quadrant
// streams (four per plane) advance as consecutive runs bounded by
// cacheBlockAmps, keeping all slices cache-resident with no per-quad bit
// surgery.
func sweep2QBlocked(re, im []float64, m *gates.Split4, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	mr, mi := &m.Re, &m.Im
	for c := lo; c < hi; {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		run := maskLo - c&lowLo
		if run > hi-c {
			run = hi - c
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		// The quadrant streams as equal-length slices: the bounds checks
		// vanish from the inner loop.
		r0 := re[i : i+run]
		i0 := im[i:][:run]
		r1 := re[i|maskLo:][:run]
		i1 := im[i|maskLo:][:run]
		r2 := re[i|maskHi:][:run]
		i2 := im[i|maskHi:][:run]
		r3 := re[i|maskLo|maskHi:][:run]
		i3 := im[i|maskLo|maskHi:][:run]
		for r := range r0 {
			a0r, a0i := r0[r], i0[r]
			a1r, a1i := r1[r], i1[r]
			a2r, a2i := r2[r], i2[r]
			a3r, a3i := r3[r], i3[r]
			r0[r] = (mr[0][0]*a0r - mi[0][0]*a0i) + (mr[0][1]*a1r - mi[0][1]*a1i) + (mr[0][2]*a2r - mi[0][2]*a2i) + (mr[0][3]*a3r - mi[0][3]*a3i)
			i0[r] = (mr[0][0]*a0i + mi[0][0]*a0r) + (mr[0][1]*a1i + mi[0][1]*a1r) + (mr[0][2]*a2i + mi[0][2]*a2r) + (mr[0][3]*a3i + mi[0][3]*a3r)
			r1[r] = (mr[1][0]*a0r - mi[1][0]*a0i) + (mr[1][1]*a1r - mi[1][1]*a1i) + (mr[1][2]*a2r - mi[1][2]*a2i) + (mr[1][3]*a3r - mi[1][3]*a3i)
			i1[r] = (mr[1][0]*a0i + mi[1][0]*a0r) + (mr[1][1]*a1i + mi[1][1]*a1r) + (mr[1][2]*a2i + mi[1][2]*a2r) + (mr[1][3]*a3i + mi[1][3]*a3r)
			r2[r] = (mr[2][0]*a0r - mi[2][0]*a0i) + (mr[2][1]*a1r - mi[2][1]*a1i) + (mr[2][2]*a2r - mi[2][2]*a2i) + (mr[2][3]*a3r - mi[2][3]*a3i)
			i2[r] = (mr[2][0]*a0i + mi[2][0]*a0r) + (mr[2][1]*a1i + mi[2][1]*a1r) + (mr[2][2]*a2i + mi[2][2]*a2r) + (mr[2][3]*a3i + mi[2][3]*a3r)
			r3[r] = (mr[3][0]*a0r - mi[3][0]*a0i) + (mr[3][1]*a1r - mi[3][1]*a1i) + (mr[3][2]*a2r - mi[3][2]*a2i) + (mr[3][3]*a3r - mi[3][3]*a3i)
			i3[r] = (mr[3][0]*a0i + mi[3][0]*a0r) + (mr[3][1]*a1i + mi[3][1]*a1r) + (mr[3][2]*a2i + mi[3][2]*a2r) + (mr[3][3]*a3i + mi[3][3]*a3r)
		}
		c += run
	}
}

// sweep2QAuto picks the blocked sweep when the lower pair qubit's stride
// gives long enough contiguous runs.
func sweep2QAuto(re, im []float64, m *gates.Split4, maskLo, maskHi, lo, hi int) {
	if maskLo >= blockedStrideMin {
		sweep2QBlocked(re, im, m, maskLo, maskHi, lo, hi)
		return
	}
	sweep2Q(re, im, m, maskLo, maskHi, lo, hi)
}

// sweep2QMono applies a monomial (permutation × phase) 4×4 kernel to the
// amplitude quadruples indexed by [lo, hi): each output slot is one
// scaled input slot, 4 complex multiplies per quadruple where the dense
// sweep pays 16 multiplies and 12 adds.
func sweep2QMono(re, im []float64, src *[4]int, phRe, phIm *[4]float64, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
	p0r, p1r, p2r, p3r := phRe[0], phRe[1], phRe[2], phRe[3]
	p0i, p1i, p2i, p3i := phIm[0], phIm[1], phIm[2], phIm[3]
	if a, b, ok := monoTransposition(src, phRe, phIm); ok {
		// The permutation is one transposition and every fixed row keeps
		// unit phase (the shape CX/CZ chains with folded S/T produce):
		// only two of the four quadrant slots change per quadruple, so
		// half the loads, stores and multiplies drop out. Unit-phase rows
		// were exact out = 1·a − 0·b identities; skipping them changes at
		// most the sign of a zero amplitude.
		off := [4]int{0, maskLo, maskHi, maskLo | maskHi}
		offA, offB := off[a], off[b]
		par, pai := phRe[a], phIm[a]
		pbr, pbi := phRe[b], phIm[b]
		for c := lo; c < hi; c++ {
			x := (c&^lowLo)<<1 | c&lowLo
			i := (x&^lowHi)<<1 | x&lowHi
			ia, ib := i|offA, i|offB
			avr, avi := re[ia], im[ia]
			bvr, bvi := re[ib], im[ib]
			re[ia] = par*bvr - pai*bvi
			im[ia] = par*bvi + pai*bvr
			re[ib] = pbr*avr - pbi*avi
			im[ib] = pbr*avi + pbi*avr
		}
		return
	}
	if p0i == 0 && p1i == 0 && p2i == 0 && p3i == 0 {
		// Real phases (CX/CZ/SWAP/X/Z chains): the planes decouple —
		// out = p·in on each plane separately, half the multiplies. The
		// dropped −pi·in terms were exact zeros, so amplitudes match the
		// general path up to the sign of a zero, which no probability or
		// sampled count can observe.
		for c := lo; c < hi; c++ {
			x := (c&^lowLo)<<1 | c&lowLo
			i := (x&^lowHi)<<1 | x&lowHi
			j := i | maskLo
			k := i | maskHi
			l := j | maskHi
			qr := [4]float64{re[i], re[j], re[k], re[l]}
			qi := [4]float64{im[i], im[j], im[k], im[l]}
			re[i], im[i] = p0r*qr[s0], p0r*qi[s0]
			re[j], im[j] = p1r*qr[s1], p1r*qi[s1]
			re[k], im[k] = p2r*qr[s2], p2r*qi[s2]
			re[l], im[l] = p3r*qr[s3], p3r*qi[s3]
		}
		return
	}
	for c := lo; c < hi; c++ {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		j := i | maskLo
		k := i | maskHi
		l := j | maskHi
		qr := [4]float64{re[i], re[j], re[k], re[l]}
		qi := [4]float64{im[i], im[j], im[k], im[l]}
		re[i] = p0r*qr[s0] - p0i*qi[s0]
		im[i] = p0r*qi[s0] + p0i*qr[s0]
		re[j] = p1r*qr[s1] - p1i*qi[s1]
		im[j] = p1r*qi[s1] + p1i*qr[s1]
		re[k] = p2r*qr[s2] - p2i*qi[s2]
		im[k] = p2r*qi[s2] + p2i*qr[s2]
		re[l] = p3r*qr[s3] - p3i*qi[s3]
		im[l] = p3r*qi[s3] + p3i*qr[s3]
	}
}

// monoTransposition reports whether the monomial's permutation is exactly
// one transposition (a b) with every fixed row keeping unit phase — the
// dominant kernel shape compiled from CX/CZ chains, with or without folded
// S/T phases on the moved rows.
func monoTransposition(src *[4]int, phRe, phIm *[4]float64) (a, b int, ok bool) {
	a = -1
	for r := 0; r < 4; r++ {
		if src[r] == r {
			if phRe[r] != 1 || phIm[r] != 0 {
				return 0, 0, false
			}
			continue
		}
		if a < 0 {
			a = r
			continue
		}
		if b != 0 {
			return 0, 0, false // third moved row
		}
		b = r
	}
	if a < 0 || b == 0 {
		return 0, 0, false
	}
	if src[a] != b || src[b] != a {
		return 0, 0, false
	}
	return a, b, true
}

// monoComplexPlanes is the cycle-walking blocked monomial for complex
// phases, operating on both planes' quadrant runs together: unit-phase
// fixed rows skip their streams entirely, fixed rows with phase scale in
// place, and each k-cycle loops over only the 2k streams it moves —
// instead of one 16-stream loop whose slice bases spill out of the
// register file.
func monoComplexPlanes(qr, qi *[4][]float64, src *[4]int, phRe, phIm *[4]float64) {
	var done [4]bool
	for r0 := 0; r0 < 4; r0++ {
		if done[r0] {
			continue
		}
		done[r0] = true
		if src[r0] == r0 {
			pr, pi := phRe[r0], phIm[r0]
			if pr == 1 && pi == 0 {
				continue
			}
			sr := qr[r0]
			si := qi[r0][:len(sr)]
			for n := range sr {
				ar, ai := sr[n], si[n]
				sr[n] = ar*pr - ai*pi
				si[n] = ar*pi + ai*pr
			}
			continue
		}
		r1 := src[r0]
		if src[r1] == r0 {
			done[r1] = true
			p0r, p0i := phRe[r0], phIm[r0]
			p1r, p1i := phRe[r1], phIm[r1]
			ar0 := qr[r0]
			ai0 := qi[r0][:len(ar0)]
			ar1 := qr[r1][:len(ar0)]
			ai1 := qi[r1][:len(ar0)]
			for n := range ar0 {
				v0r, v0i := ar0[n], ai0[n]
				v1r, v1i := ar1[n], ai1[n]
				ar0[n] = p0r*v1r - p0i*v1i
				ai0[n] = p0r*v1i + p0i*v1r
				ar1[n] = p1r*v0r - p1i*v0i
				ai1[n] = p1r*v0i + p1i*v0r
			}
			continue
		}
		// 3- or 4-cycle: collect it and rotate with per-element buffering.
		cyc := [4]int{r0, r1, src[r1], -1}
		n := 3
		if src[cyc[2]] != r0 {
			cyc[3] = src[cyc[2]]
			n = 4
		}
		for _, r := range cyc[1:n] {
			done[r] = true
		}
		if n == 3 {
			p0r, p0i := phRe[cyc[0]], phIm[cyc[0]]
			p1r, p1i := phRe[cyc[1]], phIm[cyc[1]]
			p2r, p2i := phRe[cyc[2]], phIm[cyc[2]]
			s0r := qr[cyc[0]]
			s0i := qi[cyc[0]][:len(s0r)]
			s1r := qr[cyc[1]][:len(s0r)]
			s1i := qi[cyc[1]][:len(s0r)]
			s2r := qr[cyc[2]][:len(s0r)]
			s2i := qi[cyc[2]][:len(s0r)]
			for k := range s0r {
				v0r, v0i := s0r[k], s0i[k]
				v1r, v1i := s1r[k], s1i[k]
				v2r, v2i := s2r[k], s2i[k]
				s0r[k] = p0r*v1r - p0i*v1i
				s0i[k] = p0r*v1i + p0i*v1r
				s1r[k] = p1r*v2r - p1i*v2i
				s1i[k] = p1r*v2i + p1i*v2r
				s2r[k] = p2r*v0r - p2i*v0i
				s2i[k] = p2r*v0i + p2i*v0r
			}
			continue
		}
		p0r, p0i := phRe[cyc[0]], phIm[cyc[0]]
		p1r, p1i := phRe[cyc[1]], phIm[cyc[1]]
		p2r, p2i := phRe[cyc[2]], phIm[cyc[2]]
		p3r, p3i := phRe[cyc[3]], phIm[cyc[3]]
		s0r := qr[cyc[0]]
		s0i := qi[cyc[0]][:len(s0r)]
		s1r := qr[cyc[1]][:len(s0r)]
		s1i := qi[cyc[1]][:len(s0r)]
		s2r := qr[cyc[2]][:len(s0r)]
		s2i := qi[cyc[2]][:len(s0r)]
		s3r := qr[cyc[3]][:len(s0r)]
		s3i := qi[cyc[3]][:len(s0r)]
		for k := range s0r {
			v0r, v0i := s0r[k], s0i[k]
			v1r, v1i := s1r[k], s1i[k]
			v2r, v2i := s2r[k], s2i[k]
			v3r, v3i := s3r[k], s3i[k]
			s0r[k] = p0r*v1r - p0i*v1i
			s0i[k] = p0r*v1i + p0i*v1r
			s1r[k] = p1r*v2r - p1i*v2i
			s1i[k] = p1r*v2i + p1i*v2r
			s2r[k] = p2r*v3r - p2i*v3i
			s2i[k] = p2r*v3i + p2i*v3r
			s3r[k] = p3r*v0r - p3i*v0i
			s3i[k] = p3r*v0i + p3i*v0r
		}
	}
}

// monoRealPlane applies out[r] = ph[r]·in[src[r]] over one plane's four
// equal-length quadrant runs for a real-phase monomial, walking the
// permutation's cycles: identity rows with unit phase skip their loads and
// stores entirely (a CX kernel moves only two of the four quadrants, so
// half the block's traffic vanishes), fixed points with phase scale in
// place, and 2/3/4-cycles run as tight swap-scale loops over just the
// streams they touch.
func monoRealPlane(q *[4][]float64, src *[4]int, ph *[4]float64) {
	var done [4]bool
	for r0 := 0; r0 < 4; r0++ {
		if done[r0] {
			continue
		}
		done[r0] = true
		if src[r0] == r0 {
			if p := ph[r0]; p != 1 {
				s := q[r0]
				for i := range s {
					s[i] = p * s[i]
				}
			}
			continue
		}
		r1 := src[r0]
		if src[r1] == r0 {
			done[r1] = true
			p0, p1 := ph[r0], ph[r1]
			a := q[r0]
			b := q[r1][:len(a)]
			for i := range a {
				va, vb := a[i], b[i]
				a[i] = p0 * vb
				b[i] = p1 * va
			}
			continue
		}
		r2 := src[r1]
		if src[r2] == r0 {
			done[r1], done[r2] = true, true
			p0, p1, p2 := ph[r0], ph[r1], ph[r2]
			s0 := q[r0]
			s1 := q[r1][:len(s0)]
			s2 := q[r2][:len(s0)]
			for i := range s0 {
				v0, v1, v2 := s0[i], s1[i], s2[i]
				s0[i] = p0 * v1
				s1[i] = p1 * v2
				s2[i] = p2 * v0
			}
			continue
		}
		r3 := src[r2]
		done[r1], done[r2], done[r3] = true, true, true
		p0, p1, p2, p3 := ph[r0], ph[r1], ph[r2], ph[r3]
		s0 := q[r0]
		s1 := q[r1][:len(s0)]
		s2 := q[r2][:len(s0)]
		s3 := q[r3][:len(s0)]
		for i := range s0 {
			v0, v1, v2, v3 := s0[i], s1[i], s2[i], s3[i]
			s0[i] = p0 * v1
			s1[i] = p1 * v2
			s2[i] = p2 * v3
			s3[i] = p3 * v0
		}
	}
}

// sweep2QMonoBlocked is the cache-blocked monomial form for pairs whose
// lower qubit stride gives long contiguous quadrant runs (mirrors
// sweep2QBlocked's block expansion).
func sweep2QMonoBlocked(re, im []float64, src *[4]int, phRe, phIm *[4]float64, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	allReal := phIm[0] == 0 && phIm[1] == 0 && phIm[2] == 0 && phIm[3] == 0
	for c := lo; c < hi; {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		run := maskLo - c&lowLo
		if run > hi-c {
			run = hi - c
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		qr := [4][]float64{
			re[i : i+run],
			re[i|maskLo:][:run],
			re[i|maskHi:][:run],
			re[i|maskLo|maskHi:][:run],
		}
		qi := [4][]float64{
			im[i : i+run],
			im[i|maskLo:][:run],
			im[i|maskHi:][:run],
			im[i|maskLo|maskHi:][:run],
		}
		if allReal {
			// Real phases decouple the planes (see sweep2QMono): each
			// plane is an in-place permute-and-scale of its quadrant runs,
			// cycle by cycle, touching only the quadrants the permutation
			// moves — four live streams per loop instead of sixteen.
			monoRealPlane(&qr, src, phRe)
			monoRealPlane(&qi, src, phRe)
		} else {
			monoComplexPlanes(&qr, &qi, src, phRe, phIm)
		}
		c += run
	}
}

// sweep2QMonoAuto picks the blocked monomial sweep when the lower pair
// qubit's stride gives long enough contiguous runs.
func sweep2QMonoAuto(re, im []float64, src *[4]int, phRe, phIm *[4]float64, maskLo, maskHi, lo, hi int) {
	if maskLo >= blockedStrideMin {
		sweep2QMonoBlocked(re, im, src, phRe, phIm, maskLo, maskHi, lo, hi)
		return
	}
	sweep2QMono(re, im, src, phRe, phIm, maskLo, maskHi, lo, hi)
}

// sweepCtrlPerm exchanges amplitude pairs (i, i^flip) over the compact
// subspace [lo, hi) ⊂ [0, 2^free).
func sweepCtrlPerm(re, im []float64, inserts []bitInsert, flip, lo, hi int) {
	for c := lo; c < hi; c++ {
		i := expandIndex(c, inserts)
		j := i ^ flip
		re[i], re[j] = re[j], re[i]
		im[i], im[j] = im[j], im[i]
	}
}

// sweepCtrlPhase multiplies the phase (phR + i·phI) onto the all-ones
// subspace.
func sweepCtrlPhase(re, im []float64, inserts []bitInsert, phR, phI float64, lo, hi int) {
	for c := lo; c < hi; c++ {
		i := expandIndex(c, inserts)
		ar, ai := re[i], im[i]
		re[i] = ar*phR - ai*phI
		im[i] = ar*phI + ai*phR
	}
}

// diagGather is the byte-indexed gather used by sweepDiag: table[b][v]
// holds the local-index bits contributed when byte b of the amplitude
// index has value v, so local(i) ORs one lookup per index byte instead of
// running a branchy per-mask loop per amplitude. The tables cost a few KiB
// to build per sweep call — noise against the 2^n loop they serve.
type diagGather struct {
	tbl [4][256]uint32 // MaxQubits = 26 ⇒ index bytes 0..3
}

func makeDiagGather(masks []int) *diagGather {
	g := &diagGather{}
	for k, mq := range masks {
		pos := bits.TrailingZeros(uint(mq))
		byteIdx, bit := pos>>3, pos&7
		for v := 0; v < 256; v++ {
			if v>>bit&1 == 1 {
				g.tbl[byteIdx][v] |= 1 << k
			}
		}
	}
	return g
}

// sweepDiag multiplies each amplitude by the table phase selected by its
// gathered local index; the table is pre-split into real/imag planes. The
// gather hoists: within a 256-aligned run only the low index byte varies,
// so the high bytes' contribution is computed once per run and the inner
// loop pays a single byte-table load per amplitude.
func sweepDiag(re, im []float64, masks []int, phRe, phIm []float64, lo, hi int) {
	g := makeDiagGather(masks)
	t0 := &g.tbl[0]
	for i := lo; i < hi; {
		base := i & 255
		run := 256 - base
		if run > hi-i {
			run = hi - i
		}
		hiPart := g.tbl[1][i>>8&255] | g.tbl[2][i>>16&255] | g.tbl[3][i>>24&255]
		rr := re[i : i+run]
		ii := im[i:][:run]
		for r := range rr {
			loc := hiPart | t0[base+r]
			pr, pi := phRe[loc], phIm[loc]
			ar, ai := rr[r], ii[r]
			rr[r] = ar*pr - ai*pi
			ii[r] = ar*pi + ai*pr
		}
		i += run
	}
}

// sweepPermute scatters dst[π(i)] = src[i] for source indices in [lo, hi).
// The permutation is a bijection, so every destination is written exactly
// once across all shards even though writes land outside [lo, hi).
func sweepPermute(dstRe, dstIm, srcRe, srcIm []float64, masks []int, perm []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		to := int(perm[local])
		j := i
		for k, mq := range masks {
			if to&(1<<k) != 0 {
				j |= mq
			} else {
				j &^= mq
			}
		}
		dstRe[j] = srcRe[i]
		dstIm[j] = srcIm[i]
	}
}

// sweepInit writes dst[i] = src[i &^ anyMask] · amps[local(i)] for
// destination indices in [lo, hi); reads from src may cross shard
// boundaries, writes stay inside.
func sweepInit(dstRe, dstIm, srcRe, srcIm []float64, masks []int, anyMask int, ampRe, ampIm []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		s := i &^ anyMask
		sr, si := srcRe[s], srcIm[s]
		ar, ai := ampRe[local], ampIm[local]
		dstRe[i] = sr*ar - si*ai
		dstIm[i] = sr*ai + si*ar
	}
}
