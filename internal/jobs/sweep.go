// Sweep jobs: one submission carrying a parameter grid that occupies one
// queue slot, journals as one record, and fans out per point inside a
// single worker turn. The template bundle's sweep context block (params +
// points) stays attached to the job; every point is materialized with
// bundle.BindPoint into exactly the concrete bundle a caller would have
// submitted for that point alone, so per-point cache keys, fingerprints
// and counts are bit-identical to individual submissions. Points whose
// concrete twin already has a cached or on-disk result are served from it
// without execution; the rest run through runtime.SubmitSweep, which
// compiles the parametric plan once and binds per point.

package jobs

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/bundle"
	"repro/internal/jobs/store"
	"repro/internal/obs"
	"repro/internal/result"
	rt "repro/internal/runtime"
)

// MaxSweepPoints bounds one sweep submission's parameter grid.
const MaxSweepPoints = 4096

// sweepState is the per-point progress of a sweep job. All fields are
// guarded by Pool.mu; the worker running the sweep is the only writer, so
// it may read fields it already wrote without the lock.
type sweepState struct {
	points int
	// keys holds the per-point result content addresses in point order
	// (each equals CacheKey of that point's materialized bundle).
	keys []string
	// results holds the per-point results in point order; entries fill in
	// as points complete. nil for jobs recovered from the journal — their
	// results lazy-load from the store by key on first SweepResult call.
	results   []*result.Result
	completed int
}

// SubmitSweep registers a sweep bundle — a bundle whose context carries a
// sweep block — as ONE job and enqueues it, returning the job ID
// immediately. Unlike Submit there is no whole-sweep result cache or
// in-flight coalescing (the per-point caches below it make re-running a
// sweep cheap anyway); a saturated queue still rejects with ErrQueueFull.
func (p *Pool) SubmitSweep(b *bundle.Bundle) (string, error) {
	st, err := p.submitSweep(b, SubmitOptions{})
	return st.ID, err
}

// SubmitSweepWith is SubmitSweep with per-job execution hints.
func (p *Pool) SubmitSweepWith(b *bundle.Bundle, o SubmitOptions) (string, error) {
	st, err := p.submitSweep(b, o)
	return st.ID, err
}

// submitSweep does the work of SubmitSweep and returns the job's status
// snapshot from the same critical section (the HTTP front-end needs no
// follow-up lookup).
func (p *Pool) submitSweep(b *bundle.Bundle, o SubmitOptions) (Status, error) {
	if b == nil {
		return Status{}, fmt.Errorf("jobs: nil bundle")
	}
	if b.Context == nil || b.Context.Sweep == nil {
		return Status{}, fmt.Errorf("jobs: sweep submission without a sweep context block")
	}
	n := len(b.Context.Sweep.Points)
	if n == 0 {
		return Status{}, fmt.Errorf("jobs: sweep has no points")
	}
	if n > MaxSweepPoints {
		return Status{}, fmt.Errorf("jobs: sweep has %d points, max %d", n, MaxSweepPoints)
	}
	// The template's own content address (the sweep block is part of the
	// context, so it never collides with a per-point key) identifies the
	// job in the journal.
	key, err := CacheKey(b)
	if err != nil {
		return Status{}, err
	}
	key = profiledKey(key, o.Profile)
	engine := resolveEngine(b)
	var rawBundle json.RawMessage
	if p.opts.Store != nil {
		rawBundle, err = json.Marshal(b)
		if err != nil {
			return Status{}, fmt.Errorf("jobs: marshal bundle: %w", err)
		}
	}
	now := time.Now()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Status{}, ErrClosed
	}
	if len(p.pending) >= p.opts.QueueDepth {
		p.met.rejected.Inc()
		return Status{}, ErrQueueFull
	}
	p.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%08d", p.nextID),
		trace:     obs.EnsureTraceID(o.TraceID),
		bundle:    b,
		key:       key,
		state:     StateQueued,
		engine:    engine,
		shards:    o.Shards,
		profile:   o.Profile,
		submitted: now,
		sweep:     &sweepState{points: n},
		done:      make(chan struct{}),
	}
	j.spanLocked("queued", 0, fmt.Sprintf("sweep points=%d", n))
	p.pending = append(p.pending, j)
	p.jobs[j.id] = j
	p.met.submitted.Inc()
	p.met.sweeps.Inc()
	p.journal(store.Event{T: store.EvSubmitted, Job: j.id, At: now, Trace: j.trace, Key: key, Engine: engine, Bundle: rawBundle, Pin: o.Shards, Profile: o.Profile, Points: n})
	obs.Record(obs.FlightJobQueued, j.id, fmt.Sprintf("sweep points=%d", n))
	p.log.Info("sweep queued", "job", j.id, "trace", j.trace, "engine", engine, "points", n)
	p.cond.Signal()
	return p.statusLocked(j), nil
}

// runSweepJob executes a sweep job on the worker goroutine that dequeued
// it: materialize every point, serve points whose concrete twin already
// has a result from the memory or disk cache, run the rest through
// runtime.SubmitSweep (compile once, bind per point), persist each result
// under its per-point content address, and journal ONE terminal event
// whose Results field lists every address in point order.
func (p *Pool) runSweepJob(j *job) {
	p.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		p.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	p.running++
	// Same shard grant policy as plain jobs: a sweep starting into an
	// otherwise idle pool takes the full cap (the points run sequentially,
	// each wide); alongside other work it stays narrow.
	granted := j.shards
	if granted <= 0 {
		if p.running == 1 && len(p.pending) == 0 {
			granted = p.opts.MaxShards
		} else {
			granted = 1
		}
	}
	if granted > p.opts.MaxShards {
		granted = p.opts.MaxShards
	}
	j.granted = granted
	if granted > 1 {
		p.met.wideJobs.Inc()
	}
	b := j.bundle
	sw := b.Context.Sweep
	n := len(sw.Points)
	j.sweep.points = n
	j.sweep.keys = make([]string, n)
	j.sweep.results = make([]*result.Result, n)
	p.met.queueWait.Observe(j.started.Sub(j.submitted))
	j.spanLocked("started", j.started.Sub(j.submitted), fmt.Sprintf("sweep points=%d shards=%d", n, granted))
	p.journal(store.Event{T: store.EvStarted, Job: j.id, At: j.started, Shards: granted})
	obs.Record(obs.FlightJobRunning, j.id, fmt.Sprintf("sweep points=%d shards=%d", n, granted))
	p.log.Info("sweep started", "job", j.id, "trace", j.trace, "engine", j.engine, "points", n, "shards", granted)
	runOpts := p.opts.Run
	runOpts.Shards = granted
	runOpts.Profile = j.profile
	// No per-stage span callback: a sweep would log stage spans per point
	// and drown the lifecycle log; the coarse spans below cover it.
	p.mu.Unlock()

	// Materialize every point and derive its content address off-lock.
	// Each key equals CacheKey of the concrete bundle a standalone
	// submission of that point would carry, which is what lets sweep
	// points and individual jobs share one result cache.
	bindStart := time.Now()
	concrete := make([]*bundle.Bundle, n)
	keys := make([]string, n)
	var err error
	for i := 0; i < n && err == nil; i++ {
		if concrete[i], err = b.BindPoint(sw.Points[i]); err == nil {
			if keys[i], err = CacheKey(concrete[i]); err == nil {
				// Same keying rule as standalone submissions: a profiled
				// sweep's points share the cache with profiled single jobs.
				keys[i] = profiledKey(keys[i], j.profile)
			}
		}
	}

	var missIdx []int
	if err == nil {
		served := make([]bool, n)
		p.mu.Lock()
		copy(j.sweep.keys, keys)
		j.spanLocked("materialized", time.Since(bindStart), fmt.Sprintf("points=%d", n))
		if p.cache != nil {
			for i := range keys {
				if res, ok := p.cache.get(keys[i]); ok {
					j.sweep.results[i] = res
					j.sweep.completed++
					served[i] = true
					p.met.cacheHits.Inc()
				}
			}
		}
		p.mu.Unlock()
		if p.opts.Store != nil {
			// Second-level lookup: a point's result may live on disk (from
			// a previous process life) without being in the memory LRU.
			for i := range keys {
				if served[i] {
					continue
				}
				if res, ok, derr := p.opts.Store.GetResult(keys[i]); derr == nil && ok {
					p.mu.Lock()
					j.sweep.results[i] = res
					j.sweep.completed++
					if p.cache != nil {
						p.cache.put(keys[i], res)
					}
					p.mu.Unlock()
					served[i] = true
					p.met.diskHits.Inc()
				}
			}
		}
		for i := range served {
			if !served[i] {
				missIdx = append(missIdx, i)
			}
		}
	}

	if err == nil && len(missIdx) > 0 {
		missB := make([]*bundle.Bundle, len(missIdx))
		for k, i := range missIdx {
			missB[k] = concrete[i]
		}
		execStart := time.Now()
		err = rt.SubmitSweep(b, missB, missIdx, runOpts, func(i int, res *result.Result) error {
			// Persist before publishing, so the terminal journal event's
			// Results list never references a missing file. PutResult is
			// lock-free by design; the cache is not — it needs p.mu.
			if p.opts.Store != nil {
				//lint:ignore journalerr persistence failures count in store_journal_errors_total; the sweep degrades to in-memory results rather than failing
				_ = p.opts.Store.PutResult(keys[i], res)
			}
			p.mu.Lock()
			j.sweep.results[i] = res
			j.sweep.completed++
			if p.cache != nil {
				p.cache.put(keys[i], res)
			}
			p.mu.Unlock()
			return nil
		})
		p.mu.Lock()
		j.spanLocked("executed", time.Since(execStart), fmt.Sprintf("points=%d cached=%d", len(missIdx), n-len(missIdx)))
		p.mu.Unlock()
	}
	if err == nil && p.opts.Store != nil {
		// Backfill points served from the memory cache whose files an
		// earlier process life never persisted (mirrors the single-job
		// cache-hit backfill), so the done record below is self-contained.
		for i := range keys {
			if !p.opts.Store.HasResult(keys[i]) {
				//lint:ignore journalerr best-effort backfill; failures count in store_journal_errors_total and the result stays served from memory
				_ = p.opts.Store.PutResult(keys[i], j.sweep.results[i])
			}
		}
	}

	p.mu.Lock()
	j.finished = time.Now()
	p.running--
	p.met.runTime.Observe(j.finished.Sub(j.started))
	if err != nil {
		j.state = StateFailed
		j.err = err
		j.spanLocked("failed", j.finished.Sub(j.started), "")
		p.met.failed.Inc()
		p.journal(store.Event{T: store.EvFailed, Job: j.id, At: j.finished, Engine: j.engine, Error: err.Error()})
		obs.Record(obs.FlightJobFailed, j.id, err.Error())
		p.log.Warn("sweep failed", "job", j.id, "trace", j.trace, "engine", j.engine, "err", err)
	} else {
		j.state = StateDone
		if len(missIdx) == 0 {
			j.cacheHit = true // every point served without execution
		}
		if j.profile {
			j.profileDoc = aggregateSweepProfiles(j.sweep.results)
		}
		j.spanLocked("done", j.finished.Sub(j.started), fmt.Sprintf("points=%d", n))
		p.met.completed.Inc()
		p.met.sweepPoints.Add(uint64(n))
		p.journal(store.Event{T: store.EvDone, Job: j.id, At: j.finished, Engine: j.engine, Results: append([]string(nil), keys...)})
		obs.RecordDur(obs.FlightJobDone, j.id, fmt.Sprintf("sweep points=%d", n), j.finished.Sub(j.started))
		p.log.Info("sweep done", "job", j.id, "trace", j.trace, "engine", j.engine, "points", n, "run_ms", j.finished.Sub(j.started).Milliseconds())
	}
	p.finishLocked(j)
	p.mu.Unlock()
}

// SweepResult returns the per-point results of a done sweep job, indexed
// by point order. A queued or running sweep returns ErrNotFinished; a
// failed sweep returns its execution error. Jobs recovered from the
// journal hold only the per-point content addresses; their results load
// from the store on first access.
func (p *Pool) SweepResult(id string) ([]*result.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if j.sweep == nil {
		return nil, fmt.Errorf("jobs: %q is not a sweep", id)
	}
	switch j.state {
	case StateDone:
		if j.sweep.results == nil {
			if p.opts.Store == nil {
				return nil, fmt.Errorf("jobs: sweep results for %q are gone (no store attached)", id)
			}
			loaded := make([]*result.Result, len(j.sweep.keys))
			for i, k := range j.sweep.keys {
				res, ok, err := p.opts.Store.GetResult(k)
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("jobs: result file for %q point %d (%s) is gone", id, i, k)
				}
				loaded[i] = res
			}
			j.sweep.results = loaded
			if j.profile && j.profileDoc == nil {
				j.profileDoc = aggregateSweepProfiles(loaded)
			}
		}
		return append([]*result.Result(nil), j.sweep.results...), nil
	case StateFailed:
		return nil, j.err
	case StateCanceled:
		return nil, fmt.Errorf("%w: %q", ErrCanceled, id)
	default:
		return nil, fmt.Errorf("%w: %q is %s", ErrNotFinished, id, j.state)
	}
}

// WaitTimeout blocks until the job reaches a terminal state or the
// timeout elapses, then returns the job's status at that moment — the
// long-poll primitive behind GET /v1/jobs/{id}?wait=. A non-positive
// timeout degenerates to Status.
func (p *Pool) WaitTimeout(id string, d time.Duration) (Status, error) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if d > 0 {
		t := time.NewTimer(d)
		select {
		case <-j.done:
		case <-t.C:
		}
		t.Stop()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statusLocked(j), nil
}
