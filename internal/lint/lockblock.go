package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockblockScopes are the serving-layer packages whose mutexes guard the
// job tables every request path contends on. A blocking call under one
// of those locks is the fleet-wedging bug class PR 5's per-job event
// queues were built to eliminate.
var lockblockScopes = []string{
	"internal/jobs",
	"internal/jobs/store",
	"internal/fleet",
}

// storeMutators are the journal/store methods that reach the disk (and
// so block on fsync or rename) — calling one with a mutex held puts the
// durability barrier on every contending goroutine's critical path.
var storeMutators = map[string]bool{
	"Append":    true,
	"Sync":      true,
	"Compact":   true,
	"Close":     true,
	"PutResult": true,
}

// Lockblock flags blocking calls — journal/store mutators, fsync,
// net/http round trips, time.Sleep, WaitGroup waits, channel operations
// — made while a sync.Mutex or sync.RWMutex is provably held. The
// analysis is intra-function: it tracks Lock/RLock and Unlock/RUnlock
// pairs linearly through each function body, descends into branch
// bodies on a copy of the lock state, and treats function literals as
// separate scopes. deferred Unlocks do not release for the remainder of
// the body (they run at return, which is exactly why blocking under
// them is a bug). sync.Cond.Wait is exempt: it releases the lock while
// blocked.
func Lockblock() *Analyzer {
	return &Analyzer{
		Name: "lockblock",
		Doc:  "no blocking call (journal append/fsync, HTTP, sleep, channel op) while a mutex is held",
		Run:  runLockblock,
	}
}

func runLockblock(p *Package) []Diagnostic {
	for _, s := range lockblockScopes {
		if hasPathSuffix(p.Path, s) {
			lp := &lockblockPass{p: p}
			for _, f := range p.Files {
				if p.inTestFile(f) {
					continue
				}
				for _, decl := range f.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
						lp.scanStmts(fd.Body.List, lockState{})
					}
				}
			}
			return lp.diags
		}
	}
	return nil
}

// lockState maps the rendered receiver expression of a Lock call
// ("p.mu", "s.mu") to its held depth in the current scope.
type lockState map[string]int

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// heldName returns the name of a held mutex (the lexically smallest,
// for deterministic messages), or "" when none is held.
func (ls lockState) heldName() string {
	var held []string
	for k, v := range ls {
		if v > 0 {
			held = append(held, k)
		}
	}
	if len(held) == 0 {
		return ""
	}
	sort.Strings(held)
	return held[0]
}

type lockblockPass struct {
	p     *Package
	diags []Diagnostic
}

func (lp *lockblockPass) report(n ast.Node, format string, args ...any) {
	lp.diags = append(lp.diags, Diagnostic{
		Pos:      lp.p.position(n),
		Analyzer: "lockblock",
		Message:  fmt.Sprintf(format, args...),
	})
}

func (lp *lockblockPass) scanStmts(stmts []ast.Stmt, held lockState) {
	for _, st := range stmts {
		lp.scanStmt(st, held)
	}
}

func (lp *lockblockPass) scanStmt(st ast.Stmt, held lockState) {
	switch s := st.(type) {
	case nil:
	case *ast.ExprStmt:
		lp.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lp.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			lp.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						lp.scanExpr(e, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lp.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		lp.scanExpr(s.X, held)
	case *ast.SendStmt:
		if mu := held.heldName(); mu != "" {
			lp.report(s, "channel send while %s is held (may block until a receiver is ready)", mu)
		}
		lp.scanExpr(s.Value, held)
	case *ast.GoStmt:
		// The spawned call runs elsewhere; only argument evaluation (and
		// any function literal body, as its own scope) happens here.
		lp.scanCallShell(s.Call, held)
	case *ast.DeferStmt:
		// Deferred work runs at return. A deferred Unlock therefore does
		// NOT release the lock for the rest of the body, and a deferred
		// blocking call is not blocking here.
		lp.scanCallShell(s.Call, held)
	case *ast.BlockStmt:
		lp.scanStmts(s.List, held)
	case *ast.LabeledStmt:
		lp.scanStmt(s.Stmt, held)
	case *ast.IfStmt:
		lp.scanStmt(s.Init, held)
		lp.scanExpr(s.Cond, held)
		lp.scanStmts(s.Body.List, held.clone())
		if s.Else != nil {
			lp.scanStmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		loop := held.clone()
		lp.scanStmt(s.Init, loop)
		if s.Cond != nil {
			lp.scanExpr(s.Cond, loop)
		}
		lp.scanStmts(s.Body.List, loop)
		lp.scanStmt(s.Post, loop)
	case *ast.RangeStmt:
		if mu := held.heldName(); mu != "" {
			if t, ok := lp.p.Info.Types[s.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					lp.report(s, "range over channel while %s is held (blocks until the channel closes)", mu)
				}
			}
		}
		lp.scanExpr(s.X, held)
		lp.scanStmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		lp.scanStmt(s.Init, held)
		if s.Tag != nil {
			lp.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lp.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		lp.scanStmt(s.Init, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lp.scanStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if mu := held.heldName(); mu != "" && !hasDefault {
			lp.report(s, "select with no default while %s is held (blocks until a case is ready)", mu)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lp.scanStmts(cc.Body, held.clone())
			}
		}
	}
}

// scanCallShell scans a go/defer call's arguments and any function
// literal (as a fresh scope) without classifying the call itself.
func (lp *lockblockPass) scanCallShell(call *ast.CallExpr, held lockState) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		lp.scanStmts(lit.Body.List, lockState{})
	}
	for _, arg := range call.Args {
		lp.scanExpr(arg, held)
	}
}

func (lp *lockblockPass) scanExpr(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lp.scanStmts(x.Body.List, lockState{})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if mu := held.heldName(); mu != "" {
					lp.report(x, "channel receive while %s is held (may block until a sender is ready)", mu)
				}
			}
		case *ast.CallExpr:
			lp.classifyCall(x, held)
		}
		return true
	})
}

func (lp *lockblockPass) classifyCall(call *ast.CallExpr, held lockState) {
	fn := lp.p.funcObj(call)
	if fn == nil {
		return
	}
	pkg, typ := recvTypePkgPath(fn)
	// Lock-state transitions on sync.Mutex / sync.RWMutex.
	if pkg == "sync" && (typ == "Mutex" || typ == "RWMutex") {
		key := muKey(call)
		switch fn.Name() {
		case "Lock", "RLock":
			held[key]++
		case "Unlock", "RUnlock":
			if held[key] > 0 {
				held[key]--
			}
		}
		return
	}
	// sync.Cond.Wait atomically releases the lock while blocked — the
	// one sanctioned way to block inside a critical section.
	if pkg == "sync" && typ == "Cond" && fn.Name() == "Wait" {
		return
	}
	mu := held.heldName()
	if mu == "" {
		return
	}
	if what := blockingCall(fn, pkg, typ); what != "" {
		lp.report(call, "%s while %s is held (move the blocking work outside the critical section)", what, mu)
	}
}

// muKey renders the receiver expression of a Lock/Unlock call ("s.mu").
func muKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "<mutex>"
	}
	return types.ExprString(sel.X)
}

// blockingCall describes fn when it is in the blocking set, "" otherwise.
func blockingCall(fn *types.Func, recvPkg, recvType string) string {
	name := fn.Name()
	switch {
	case recvPkg == "" && funcPkgPath(fn) == "time" && name == "Sleep":
		return "time.Sleep"
	case recvPkg == "os" && recvType == "File" && name == "Sync":
		return "(*os.File).Sync (fsync)"
	case recvPkg == "net/http" && recvType == "Client":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "http.Client round trip"
		}
	case recvPkg == "" && funcPkgPath(fn) == "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head":
			return "net/http round trip"
		}
	case recvPkg == "sync" && recvType == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait"
	case hasPathSuffix(recvPkg, "jobs/store") && storeMutators[name]:
		return fmt.Sprintf("journal/store mutator %s.%s", recvType, name)
	}
	return ""
}
