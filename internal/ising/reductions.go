package ising

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// This file provides the standard NP-hard → QUBO/Ising reductions the
// annealing path consumes beyond Max-Cut (paper §1: annealers are "an
// essential and viable approach for solving optimization problems").
// Each reduction is exact: the ground states of the produced model are
// precisely the optimal solutions of the source problem, verified against
// brute force in tests.

// NumberPartitioning builds the Ising model whose ground states are the
// balanced partitions of the weights: E(s) = (Σ w_i s_i)² expanded into
// couplings J_ij = 2·w_i·w_j and offset Σ w_i². The ground energy is the
// squared difference of the best achievable partition.
func NumberPartitioning(weights []float64) (*Model, error) {
	if len(weights) < 2 {
		return nil, fmt.Errorf("ising: partitioning needs at least 2 weights")
	}
	m := NewModel(len(weights))
	for i, w := range weights {
		m.Offset += w * w
		for j := i + 1; j < len(weights); j++ {
			m.SetJ(i, j, 2*w*weights[j])
		}
	}
	return m, nil
}

// PartitionDifference recovers |Σ_{S} w − Σ_{S̄} w| from a configuration's
// energy: E = (difference)².
func PartitionDifference(energy float64) float64 {
	if energy < 0 {
		return 0
	}
	return math.Sqrt(energy)
}

// MinVertexCover builds the QUBO whose minima are minimum vertex covers:
// minimize Σ x_v + P·Σ_{(u,v)∈E} (1 − x_u)(1 − x_v). The penalty P must
// exceed 1 to make constraint violations never profitable; P = 2 by
// convention.
func MinVertexCover(g *graph.Graph, penalty float64) (*QUBO, error) {
	if penalty <= 1 {
		return nil, fmt.Errorf("ising: vertex-cover penalty %v must exceed 1", penalty)
	}
	q := NewQUBO(g.N)
	for v := 0; v < g.N; v++ {
		q.Set(v, v, 1)
	}
	for _, e := range g.Edges {
		// P·(1 − x_u)(1 − x_v) = P − P·x_u − P·x_v + P·x_u·x_v
		q.Offset += penalty
		q.Set(e.U, e.U, q.Get(e.U, e.U)-penalty)
		q.Set(e.V, e.V, q.Get(e.V, e.V)-penalty)
		q.Set(e.U, e.V, q.Get(e.U, e.V)+penalty)
	}
	return q, nil
}

// IsVertexCover reports whether the set bits of mask cover every edge.
func IsVertexCover(g *graph.Graph, mask uint64) bool {
	for _, e := range g.Edges {
		if mask>>uint(e.U)&1 == 0 && mask>>uint(e.V)&1 == 0 {
			return false
		}
	}
	return true
}

// MaxIndependentSet builds the QUBO whose minima are maximum independent
// sets: minimize −Σ x_v + P·Σ_{(u,v)∈E} x_u·x_v with P > 1.
func MaxIndependentSet(g *graph.Graph, penalty float64) (*QUBO, error) {
	if penalty <= 1 {
		return nil, fmt.Errorf("ising: independent-set penalty %v must exceed 1", penalty)
	}
	q := NewQUBO(g.N)
	for v := 0; v < g.N; v++ {
		q.Set(v, v, -1)
	}
	for _, e := range g.Edges {
		q.Set(e.U, e.V, q.Get(e.U, e.V)+penalty)
	}
	return q, nil
}

// IsIndependentSet reports whether the set bits of mask form an
// independent set.
func IsIndependentSet(g *graph.Graph, mask uint64) bool {
	for _, e := range g.Edges {
		if mask>>uint(e.U)&1 == 1 && mask>>uint(e.V)&1 == 1 {
			return false
		}
	}
	return true
}

// PopCount counts set bits (solution size for the set problems).
func PopCount(mask uint64) int {
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}
