package backend

import (
	"fmt"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/qdt"
	"repro/internal/result"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Sweeper is implemented by backends that can execute a parameter sweep
// against a single compiled plan. b is the template bundle whose context
// carries the sweep block and whose operator parameters may hold "$name"
// markers; concrete[k] is the fully materialized bundle for global point
// index indices[k] — exactly the bundle a caller would submit for that
// point alone — used for per-point fallback and provenance. each is
// invoked once per point, in indices order.
//
// The contract is bit-identity: the result delivered for point i equals,
// entry for entry, what Execute(concrete[k]) would return. A backend
// unable to honor that for some point must execute that point through
// its concrete path rather than approximate.
//
// When profile is set, each point's result carries its kernel-granular
// execution profile under Meta["profile"] (observational only — entries
// are unchanged); the serving layer aggregates the per-point tables.
type Sweeper interface {
	ExecuteSweep(b *bundle.Bundle, concrete []*bundle.Bundle, indices []int, shards int, stages StageFunc, profile bool, each func(i int, res *result.Result) error) error
}

// ExecuteSweep implements Sweeper for the gate engine: lower the
// template once with symbolic parameter references, transpile and
// compile once, then Bind per point. Points the parametric fast path
// cannot express exactly — degenerate angles the optimizer would have
// dropped, contexts with comm/QEC/noise blocks, transpile options
// outside the parametric subset — run through ExecuteStaged on their
// concrete bundle instead, so every point keeps the bit-identity
// contract regardless of which path served it.
func (g *Gate) ExecuteSweep(b *bundle.Bundle, concrete []*bundle.Bundle, indices []int, shards int, stages StageFunc, profile bool, each func(i int, res *result.Result) error) error {
	if len(concrete) != len(indices) {
		return fmt.Errorf("backend: %d concrete bundles for %d indices", len(concrete), len(indices))
	}
	ctx := b.Context
	if ctx == nil || ctx.Sweep == nil {
		return fmt.Errorf("backend: sweep execution without a sweep context block")
	}
	sw := ctx.Sweep
	for _, gi := range indices {
		if gi < 0 || gi >= len(sw.Points) {
			return fmt.Errorf("backend: point index %d out of range [0,%d)", gi, len(sw.Points))
		}
	}

	fallbackPoint := func(k int) error {
		res, err := g.executeStaged(concrete[k], shards, stages, profile)
		if err != nil {
			return fmt.Errorf("point %d: %w", indices[k], err)
		}
		return each(indices[k], res)
	}
	fallbackAll := func() error {
		for k := range concrete {
			if err := fallbackPoint(k); err != nil {
				return err
			}
		}
		return nil
	}

	// Blocks the parametric pipeline does not model run concretely.
	noise, err := noiseFromOptions(ctx)
	if err != nil {
		return err
	}
	if ctx.Comm != nil || ctx.QEC != nil || !noise.Zero() {
		return fallbackAll()
	}

	regs := algolib.Registers{}
	for _, d := range b.QDTs {
		regs[d.ID] = d
	}
	lowered, err := algolib.LowerParametric(b.Operators, regs, sw.Params)
	if err != nil {
		// The template did not lower symbolically (e.g. markers on an
		// operator kind without a parametric lowering); the concrete
		// bundles still lower point by point.
		return fallbackAll()
	}
	if !lowered.Circuit.HasRefs() {
		// Nothing symbolic: all points are the same circuit.
		return fallbackAll()
	}

	opts := transpile.FromContext(ctx)
	transpileStart := time.Now()
	tr, ok, err := transpile.TranspileParametric(lowered.Circuit, opts)
	if err != nil {
		return err
	}
	if !ok {
		return fallbackAll()
	}
	if stages != nil {
		stages("transpile", time.Since(transpileStart))
	}
	circ := tr.Circuit

	compileStart := time.Now()
	pp, err := sim.CompileParametric(circ)
	if err != nil {
		return fallbackAll()
	}
	if stages != nil {
		stages("compile", time.Since(compileStart))
	}

	shots := DefaultShots
	seed := uint64(0)
	if ctx.Exec != nil {
		if ctx.Exec.Samples > 0 {
			shots = ctx.Exec.Samples
		}
		seed = ctx.Exec.Seed
	}
	m := b.Operators.FinalMeasurement()
	var reg *qdt.DataType
	if m != nil {
		if reg, err = measuredRegister(b, m); err != nil {
			return err
		}
	}

	for k, gi := range indices {
		v := sw.Points[gi]
		if opts.OptimizationLevel >= 1 && transpile.ParamAngleZero(circ, v) {
			// The concrete optimizer would drop this point's zero-angle
			// rotation — a structural change the template cannot express.
			if err := fallbackPoint(k); err != nil {
				return err
			}
			continue
		}
		pl, err := pp.Bind(v)
		if err != nil {
			return fmt.Errorf("point %d: %w", gi, err)
		}
		run, err := sim.RunPlan(circ, pl, sim.Options{Shots: shots, Seed: seed, Shards: shards, Stages: stages, Profile: profile})
		if err != nil {
			return fmt.Errorf("point %d: %w", gi, err)
		}
		res := &result.Result{Engine: g.engine, Samples: shots, Meta: map[string]any{"transpile": tr.Stats}}
		if run.Profile != nil {
			res.Meta["profile"] = run.Profile
		}
		if m != nil {
			entries, err := result.DecodeCounts(run.Counts, m.Result, reg)
			if err != nil {
				return fmt.Errorf("point %d: %w", gi, err)
			}
			res.Entries = entries
			res.Sort()
		}
		if err := each(gi, res); err != nil {
			return err
		}
	}
	return nil
}
