package pulse

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ctxdesc"
)

func TestFromContextDefaults(t *testing.T) {
	cfg := FromContext(nil)
	if cfg.SingleGateNS != DefaultSingleGateNS || cfg.TwoGateNS != DefaultTwoGateNS {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	over := FromContext(&ctxdesc.Pulse{SingleGateNS: 50, TwoGateNS: 400,
		Calibrations: map[string]float64{"sx": 20}})
	if over.SingleGateNS != 50 || over.TwoGateNS != 400 || over.Calibrations["sx"] != 20 {
		t.Errorf("overrides ignored: %+v", over)
	}
}

func TestLowerSerialVsParallel(t *testing.T) {
	cfg := FromContext(nil)
	// Two H gates on different qubits run in parallel: total = 35ns.
	par := circuit.New(2, 0)
	par.H(0).H(1)
	s, err := Lower(par, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalDurationNS-35) > 1e-9 {
		t.Errorf("parallel duration = %v, want 35", s.TotalDurationNS)
	}
	// Same qubit: serial, 70ns.
	ser := circuit.New(1, 0)
	ser.H(0).H(0)
	s2, _ := Lower(ser, cfg)
	if math.Abs(s2.TotalDurationNS-70) > 1e-9 {
		t.Errorf("serial duration = %v, want 70", s2.TotalDurationNS)
	}
}

func TestLowerVirtualZIsFree(t *testing.T) {
	c := circuit.New(1, 0)
	c.RZ(1.0, 0).S(0).T(0).Z(0)
	s, err := Lower(c, FromContext(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalDurationNS != 0 {
		t.Errorf("virtual-Z chain duration = %v, want 0", s.TotalDurationNS)
	}
}

func TestLowerTwoQubitBlocksBoth(t *testing.T) {
	cfg := FromContext(nil)
	c := circuit.New(2, 0)
	c.CX(0, 1) // 300ns
	c.H(0)     // waits for cx: starts at 300
	s, err := Lower(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalDurationNS-335) > 1e-9 {
		t.Errorf("total = %v, want 335", s.TotalDurationNS)
	}
	if math.Abs(s.Ops[1].StartNS-300) > 1e-9 {
		t.Errorf("h start = %v, want 300", s.Ops[1].StartNS)
	}
}

func TestLowerBarrierSynchronizes(t *testing.T) {
	cfg := FromContext(nil)
	c := circuit.New(2, 0)
	c.H(0)
	c.Barrier()
	c.H(1) // must wait for qubit 0's H because of the barrier
	s, err := Lower(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalDurationNS-70) > 1e-9 {
		t.Errorf("barrier total = %v, want 70", s.TotalDurationNS)
	}
}

func TestLowerMeasurement(t *testing.T) {
	c := circuit.New(1, 1)
	c.H(0).Measure(0, 0)
	s, err := Lower(c, FromContext(nil))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TotalDurationNS-1035) > 1e-9 {
		t.Errorf("measure total = %v, want 1035", s.TotalDurationNS)
	}
}

func TestLowerCalibrationOverride(t *testing.T) {
	cfg := FromContext(&ctxdesc.Pulse{Calibrations: map[string]float64{"h": 10}})
	c := circuit.New(1, 0)
	c.H(0)
	s, _ := Lower(c, cfg)
	if math.Abs(s.TotalDurationNS-10) > 1e-9 {
		t.Errorf("calibrated h = %v, want 10", s.TotalDurationNS)
	}
}

func TestLowerRejectsWideGates(t *testing.T) {
	c := circuit.New(3, 0)
	c.CCX(0, 1, 2)
	if _, err := Lower(c, FromContext(nil)); err == nil {
		t.Error("ccx lowered without decomposition")
	}
}

func TestPerQubitBusy(t *testing.T) {
	cfg := FromContext(nil)
	c := circuit.New(2, 0)
	c.H(0).CX(0, 1)
	s, _ := Lower(c, cfg)
	if math.Abs(s.PerQubitBusyNS[0]-335) > 1e-9 {
		t.Errorf("qubit 0 busy = %v, want 335", s.PerQubitBusyNS[0])
	}
	if math.Abs(s.PerQubitBusyNS[1]-300) > 1e-9 {
		t.Errorf("qubit 1 busy = %v, want 300", s.PerQubitBusyNS[1])
	}
}

func TestWaveformShapes(t *testing.T) {
	cfg := FromContext(nil)
	g := Waveform(Op{Qubits: []int{0}, DurationNS: 35}, cfg)
	if len(g) == 0 {
		t.Fatal("empty gaussian")
	}
	// Peak in the middle, low at edges.
	mid := g[len(g)/2]
	if mid < 0.9 || g[0] > 0.2 || g[len(g)-1] > 0.2 {
		t.Errorf("gaussian shape wrong: edge %v mid %v", g[0], mid)
	}
	sq := Waveform(Op{Qubits: []int{0, 1}, DurationNS: 300}, cfg)
	// Flat top at 1.
	if sq[len(sq)/2] != 1 {
		t.Errorf("gaussian-square top = %v", sq[len(sq)/2])
	}
	if sq[0] > 0.2 {
		t.Errorf("gaussian-square edge = %v", sq[0])
	}
	if Waveform(Op{Qubits: []int{0}, DurationNS: 0}, cfg) != nil {
		t.Error("zero-duration op produced samples")
	}
}

func TestCriticalPath(t *testing.T) {
	cfg := FromContext(nil)
	c := circuit.New(3, 0)
	c.H(0)      // 0..35 on q0
	c.CX(0, 1)  // 35..335
	c.H(2)      // 0..35 on q2, off the critical path
	c.SXGate(1) // 335..370
	s, _ := Lower(c, cfg)
	path := s.CriticalPath()
	if len(path) != 3 {
		t.Fatalf("critical path length %d: %+v", len(path), path)
	}
	if path[0].Label != "h" || path[1].Label != "cx" || path[2].Label != "sx" {
		t.Errorf("critical path = %v %v %v", path[0].Label, path[1].Label, path[2].Label)
	}
	empty := &Schedule{}
	if empty.CriticalPath() != nil {
		t.Error("empty schedule has a critical path")
	}
}
