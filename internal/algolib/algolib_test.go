package algolib

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/sim"
)

func phaseReg(t *testing.T, width int) *qdt.DataType {
	t.Helper()
	return qdt.NewPhaseRegister("reg_phase", "phase", width)
}

func intReg(id string, width int) *qdt.DataType {
	return qdt.New(id, id, width, qdt.IntRegister, qdt.AsInt)
}

func TestNewQFTMatchesListing3(t *testing.T) {
	op, err := NewQFT(phaseReg(t, 10), 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if op.RepKind != qop.QFTTemplate || op.DomainQDT != "reg_phase" || op.CodomainQDT != "reg_phase" {
		t.Errorf("descriptor shape wrong: %+v", op)
	}
	// Listing 3: cost_hint twoq 45, depth "near 100".
	if op.CostHint.TwoQ != 45 {
		t.Errorf("twoq hint = %d, want 45", op.CostHint.TwoQ)
	}
	if op.CostHint.Depth != 100 {
		t.Errorf("depth hint = %d, want 100", op.CostHint.Depth)
	}
	if op.Result == nil || op.Result.Datatype != "AS_PHASE" || len(op.Result.ClbitOrder) != 10 {
		t.Errorf("result schema wrong: %+v", op.Result)
	}
	if _, err := NewQFT(phaseReg(t, 4), 4, true, false); err == nil {
		t.Error("approx_degree = width accepted")
	}
}

func TestQFTCircuitMatchesDFTMatrix(t *testing.T) {
	// QFT with swaps on |x⟩ must produce amplitudes e^{2πi·xk/N}/√N.
	const n = 3
	N := 1 << n
	for x := 0; x < N; x++ {
		prep := make(qop.Sequence, 0)
		reg := intReg("r", n)
		pb, err := NewPrepBasis(reg, uint64(x))
		if err != nil {
			t.Fatal(err)
		}
		qft, err := NewQFT(reg, 0, true, false)
		if err != nil {
			t.Fatal(err)
		}
		prep = append(prep, pb, qft)
		low, err := Lower(prep, Registers{"r": reg})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Evolve(low.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < N; k++ {
			want := cmplx.Exp(complex(0, 2*math.Pi*float64(x*k)/float64(N))) / complex(math.Sqrt(float64(N)), 0)
			got := st.Amplitude(uint64(k))
			if cmplx.Abs(got-want) > 1e-9 {
				t.Fatalf("QFT|%d⟩ amplitude at %d = %v, want %v", x, k, got, want)
			}
		}
	}
}

func TestQFTInverseIsIdentity(t *testing.T) {
	reg := intReg("r", 4)
	fwd, err := NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := fwd.Invert()
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := NewPrepBasis(reg, 11)
	low, err := Lower(qop.Sequence{pb, fwd, inv}, Registers{"r": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Probability(11)-1) > 1e-9 {
		t.Errorf("QFT·QFT⁻¹|11⟩ gave P(11) = %v", st.Probability(11))
	}
}

func TestQFTApproximationReducesGates(t *testing.T) {
	exact, _ := QFTCircuit(8, 0, false, false)
	approx, _ := QFTCircuit(8, 3, false, false)
	if approx.TwoQubitCount() >= exact.TwoQubitCount() {
		t.Errorf("approximation did not reduce gates: %d vs %d",
			approx.TwoQubitCount(), exact.TwoQubitCount())
	}
	// Estimator agrees with the realized circuit.
	est := EstimateQFTCost(8, 3, false)
	if est.TwoQ != approx.TwoQubitCount() {
		t.Errorf("estimator %d != realized %d", est.TwoQ, approx.TwoQubitCount())
	}
}

func TestEstimatorMatchesRealizedQFT(t *testing.T) {
	for n := 2; n <= 10; n++ {
		est := EstimateQFTCost(n, 0, false)
		c, err := QFTCircuit(n, 0, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if est.TwoQ != c.TwoQubitCount() {
			t.Errorf("n=%d: estimated twoq %d, realized %d", n, est.TwoQ, c.TwoQubitCount())
		}
	}
}

func TestQPEEstimatesPhase(t *testing.T) {
	counting := intReg("count", 4)
	eigen := intReg("eig", 1)
	for _, phase := range []float64{0.25, 0.5, 0.8125} { // exact 4-bit fractions
		op, err := NewQPE(counting, eigen, phase)
		if err != nil {
			t.Fatal(err)
		}
		meas := NewMeasurement(counting)
		low, err := Lower(qop.Sequence{op, meas}, Registers{"count": counting, "eig": eigen})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 200, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		wantK := uint64(phase * 16)
		if res.Counts[wantK] != 200 {
			t.Errorf("QPE(φ=%v): counts %v, want all at %d", phase, res.Counts, wantK)
		}
	}
}

func TestQPEValidation(t *testing.T) {
	counting := intReg("c", 3)
	if _, err := NewQPE(counting, intReg("e", 2), 0.5); err == nil {
		t.Error("wide eigen register accepted")
	}
	if _, err := NewQPE(counting, intReg("e", 1), 1.5); err == nil {
		t.Error("out-of-range phase accepted")
	}
}

func TestDraperAdder(t *testing.T) {
	reg := intReg("r", 4)
	cases := []struct{ x, c, want uint64 }{
		{5, 7, 12}, {0, 3, 3}, {15, 1, 0}, {9, 9, 2}, {4, 0, 4},
	}
	for _, tc := range cases {
		pb, _ := NewPrepBasis(reg, tc.x)
		add, err := NewAdder(reg, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		meas := NewMeasurement(reg)
		low, err := Lower(qop.Sequence{pb, add, meas}, Registers{"r": reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 50, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[tc.want] != 50 {
			t.Errorf("%d + %d: counts %v, want all at %d", tc.x, tc.c, res.Counts, tc.want)
		}
	}
}

func TestModAdd(t *testing.T) {
	reg := intReg("r", 4)
	op, err := NewModAdd(reg, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, want uint64 }{{0, 5}, {8, 0}, {12, 4}, {14, 14}} { // x ≥ M is identity
		pb, _ := NewPrepBasis(reg, tc.x)
		low, err := Lower(qop.Sequence{pb, op, NewMeasurement(reg)}, Registers{"r": reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[tc.want] != 10 {
			t.Errorf("modadd(%d): %v, want %d", tc.x, res.Counts, tc.want)
		}
	}
}

func TestModMul(t *testing.T) {
	reg := intReg("r", 4)
	op, err := NewModMul(reg, 7, 15)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ x, want uint64 }{{1, 7}, {2, 14}, {4, 13}, {0, 0}} {
		pb, _ := NewPrepBasis(reg, tc.x)
		low, err := Lower(qop.Sequence{pb, op, NewMeasurement(reg)}, Registers{"r": reg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[tc.want] != 10 {
			t.Errorf("modmul(%d): %v, want %d", tc.x, res.Counts, tc.want)
		}
	}
	if _, err := NewModMul(reg, 5, 15); err == nil {
		t.Error("non-coprime multiplier accepted")
	}
}

func TestModExpShorStyle(t *testing.T) {
	// 7^e mod 15 on |e⟩|1⟩: e=0→1, 1→7, 2→4, 3→13 (period 4).
	expReg := intReg("e", 2)
	tgtReg := intReg("y", 4)
	op, err := NewModExp(expReg, tgtReg, 7, 15)
	if err != nil {
		t.Fatal(err)
	}
	regs := Registers{"e": expReg, "y": tgtReg}
	want := []uint64{1, 7, 4, 13}
	for e := uint64(0); e < 4; e++ {
		pbE, _ := NewPrepBasis(expReg, e)
		pbY, _ := NewPrepBasis(tgtReg, 1)
		low, err := Lower(qop.Sequence{pbE, pbY, op, NewMeasurement(tgtReg)}, regs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 10, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counts[want[e]] != 10 {
			t.Errorf("7^%d mod 15: %v, want %d", e, res.Counts, want[e])
		}
	}
}

func TestCompare(t *testing.T) {
	reg := intReg("x", 3)
	flag := qdt.New("f", "f", 1, qdt.BoolRegister, qdt.AsBool)
	op, err := NewCompare(reg, flag, 5)
	if err != nil {
		t.Fatal(err)
	}
	regs := Registers{"x": reg, "f": flag}
	for x := uint64(0); x < 8; x++ {
		pb, _ := NewPrepBasis(reg, x)
		low, err := Lower(qop.Sequence{pb, op, NewMeasurement(flag)}, regs)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(low.Circuit, sim.Options{Shots: 5, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(0)
		if x < 5 {
			want = 1
		}
		if res.Counts[want] != 5 {
			t.Errorf("compare(%d < 5): %v, want flag %d", x, res.Counts, want)
		}
	}
}

func TestSwapTestOverlap(t *testing.T) {
	anc := qdt.New("anc", "anc", 1, qdt.BoolRegister, qdt.AsBool)
	a := intReg("a", 1)
	b := intReg("b", 1)
	st, err := NewSwapTest(anc, a, b)
	if err != nil {
		t.Fatal(err)
	}
	regs := Registers{"anc": anc, "a": a, "b": b}
	// Identical states |0⟩,|0⟩: P(anc=1) = 0.
	low, err := Lower(qop.Sequence{st, NewMeasurement(anc)}, regs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(low.Circuit, sim.Options{Shots: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[1] != 0 {
		t.Errorf("identical states gave anc=1 counts: %v", res.Counts)
	}
	// Orthogonal |0⟩ vs |1⟩: P(anc=1) = 1/2.
	pb, _ := NewPrepBasis(b, 1)
	low2, err := Lower(qop.Sequence{pb, st, NewMeasurement(anc)}, regs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(low2.Circuit, sim.Options{Shots: 4000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res2.Counts[1]) / 4000
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("orthogonal states anc=1 fraction = %v, want ~0.5", frac)
	}
}

func TestAngleAndAmplitudeEncoding(t *testing.T) {
	reg := intReg("r", 2)
	ae, err := NewAngleEncoding(reg, []float64{math.Pi, 0})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(qop.Sequence{ae}, Registers{"r": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	// RY(π)|0⟩ = |1⟩ on qubit 0 -> state |01⟩ = index 1.
	if math.Abs(st.Probability(1)-1) > 1e-9 {
		t.Errorf("angle encoding wrong: P(1) = %v", st.Probability(1))
	}

	amps := []complex128{0.5, 0.5, 0.5, 0.5}
	amp, err := NewAmplitudeEncoding(reg, amps)
	if err != nil {
		t.Fatal(err)
	}
	low2, err := Lower(qop.Sequence{amp}, Registers{"r": reg})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sim.Evolve(low2.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		if math.Abs(st2.Probability(k)-0.25) > 1e-9 {
			t.Errorf("amplitude encoding P(%d) = %v", k, st2.Probability(k))
		}
	}
	if _, err := NewAmplitudeEncoding(reg, []complex128{1, 0, 0}); err == nil {
		t.Error("wrong-length amplitudes accepted")
	}
	if _, err := NewAmplitudeEncoding(reg, []complex128{1, 1, 0, 0}); err == nil {
		t.Error("unnormalized amplitudes accepted")
	}
}

func TestBuildQAOAStackShape(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	seq, err := BuildQAOA(reg, g, []float64{0.4, 0.2}, []float64{0.3, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// prep + 2×(cost+mixer) + measurement = 6.
	if len(seq) != 6 {
		t.Fatalf("QAOA p=2 stack has %d ops", len(seq))
	}
	kinds := []qop.RepKind{qop.PrepUniform, qop.IsingCostPhase, qop.MixerRX,
		qop.IsingCostPhase, qop.MixerRX, qop.Measurement}
	for i, k := range kinds {
		if seq[i].RepKind != k {
			t.Errorf("op %d kind = %s, want %s", i, seq[i].RepKind, k)
		}
	}
	if err := Validate(seq, Registers{"ising_vars": reg}); err != nil {
		t.Errorf("QAOA stack invalid: %v", err)
	}
	if _, err := BuildQAOA(reg, g, []float64{1}, []float64{}); err == nil {
		t.Error("mismatched angle lists accepted")
	}
}

func TestQAOAExpectedCutAtZeroAngles(t *testing.T) {
	// γ=β=0: the state stays uniform; expected cut over uniform cuts of
	// C4 is 2.
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	seq, err := BuildQAOA(reg, g, []float64{0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(seq, Registers{"ising_vars": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	cut := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
	if math.Abs(cut-2) > 1e-9 {
		t.Errorf("zero-angle expected cut = %v, want 2", cut)
	}
}

func TestIsingProblemRoundTrip(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	m := ising.FromMaxCut(graph.Cycle(4))
	m.H[2] = 0.5
	op, err := NewIsingProblem(reg, m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IsingModelFromOp(op, 4)
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 16; mask++ {
		if math.Abs(m.EnergyBits(mask)-back.EnergyBits(mask)) > 1e-12 {
			t.Fatalf("round-tripped model disagrees at %04b", mask)
		}
	}
	// Wrong kind rejected.
	wrong := newOp("x", qop.MixerRX, "ising_vars")
	if _, err := IsingModelFromOp(wrong, 4); err == nil {
		t.Error("non-ISING_PROBLEM accepted")
	}
}

func TestIsingEvolutionLowering(t *testing.T) {
	// e^{-iHt} on a diagonal H is diagonal: probabilities of a basis
	// state are unchanged.
	reg := qdt.NewIsingVars("ising_vars", "s", 3)
	m := ising.FromMaxCut(graph.Cycle(3))
	op, err := NewIsingEvolution(reg, m, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := NewPrepBasis(reg, 5)
	low, err := Lower(qop.Sequence{pb, op}, Registers{"ising_vars": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Probability(5)-1) > 1e-9 {
		t.Errorf("diagonal evolution moved probability: P(5) = %v", st.Probability(5))
	}
}

func TestLowerRegisterPacking(t *testing.T) {
	a := intReg("a", 2)
	b := intReg("b", 3)
	pbA, _ := NewPrepBasis(a, 1)
	pbB, _ := NewPrepBasis(b, 4)
	low, err := Lower(qop.Sequence{pbA, pbB}, Registers{"a": a, "b": b})
	if err != nil {
		t.Fatal(err)
	}
	if low.Offsets["a"] != 0 || low.Offsets["b"] != 2 {
		t.Errorf("offsets = %v", low.Offsets)
	}
	if low.Circuit.NumQubits != 5 {
		t.Errorf("total qubits = %d", low.Circuit.NumQubits)
	}
}

func TestLowerRejectsUnknownRegister(t *testing.T) {
	op := newOp("x", qop.PrepUniform, "ghost")
	if _, err := Lower(qop.Sequence{op}, Registers{}); err == nil {
		t.Error("unknown register accepted")
	}
}

func TestValidateCatchesTableMismatch(t *testing.T) {
	a := intReg("a", 2)
	if err := Validate(qop.Sequence{}, Registers{"wrong_key": a}); err == nil {
		t.Error("mismatched table key accepted")
	}
}

func TestCSwapLowering(t *testing.T) {
	reg := intReg("r", 3)
	op, err := NewCSwap(reg, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// |101⟩: control bit0=1, swap bits 1,2: bit1=0,bit2=1 -> becomes
	// bit1=1,bit2=0: |011⟩ = 3.
	pb, _ := NewPrepBasis(reg, 5)
	low, err := Lower(qop.Sequence{pb, op, NewMeasurement(reg)}, Registers{"r": reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(low.Circuit, sim.Options{Shots: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[3] != 5 {
		t.Errorf("cswap(5) counts = %v, want 3", res.Counts)
	}
	if _, err := NewCSwap(reg, 0, 0, 1); err == nil {
		t.Error("duplicate cswap bits accepted")
	}
}
