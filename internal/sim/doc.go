// Package sim implements the statevector simulator backing the middle
// layer's gate path — the substitute for the paper's IBM Qiskit Aer state
// vector simulator.
//
// The simulator stores all 2^n complex amplitudes, applies unitary gates
// exactly, and samples measurement outcomes from the Born distribution
// with a seeded generator. The state vector is the hot data structure and
// every gate is a bandwidth-bound sweep over it, so in the HPC spirit of
// the paper the engine is organized around minimizing sweep count and
// memory traffic rather than per-gate convenience.
//
// # Compile → fuse → shard
//
// Execution is a three-stage pipeline:
//
//  1. Compile lowers a circuit.Circuit into a kernel Plan. Runs of
//     single-qubit gates on the same qubit fold into one 2×2 matrix,
//     consecutive diagonal/phase gates (CZ, CP, Diagonal) merge into a
//     single phase-table kernel, and the controlled permutations (CX,
//     SWAP, CCX, CSWAP) specialize to subspace pair exchanges. Chains of
//     CX/CZ/CP/SWAP on one qubit pair additionally fuse — together with
//     the single-qubit gates surrounding them on either qubit and any
//     pair-local diagonals — into a dense 4×4 kernel swept over the
//     2^(n-2) amplitude quadruples, so an entangler sandwich that would
//     cost three to five full-state sweeps runs as one (PlanStats.Fused2Q
//     counts the wins). A two-qubit gate with nothing to fold keeps its
//     cheaper specialized form. The compiler may hop over commuting
//     kernels (disjoint qubit support, or mutually diagonal) to find a
//     fusion partner, so a deep circuit becomes far fewer sweeps than it
//     has gates. All static validation happens here; executing a compiled
//     plan performs no per-gate checks. At finalize, any dense 4×4 that
//     ended up monomial — permutation × phase, the shape pure CX/CZ/SWAP
//     chains (plus X/Z/S-style 1Q gates) fuse to — is decomposed once
//     (PlanStats.Monomial2Q) and executes on a 4-multiply sweep instead
//     of the dense kernel's 16 multiplies + 12 adds, ~2.3× on
//     chain-heavy circuits.
//
//  2. Kernels iterate their natural index space directly instead of
//     scanning all 2^n indices and branching: a one-qubit kernel walks the
//     2^(n-1) amplitude pairs, a two-qubit dense kernel the 2^(n-2)
//     quadruples, a controlled permutation only the 2^(n-k) indices its k
//     constrained bits select. High-stride kernels (target qubits whose
//     pair halves sit far apart) run in cache-blocked order: the index
//     expansion hoists out of the inner loop and the two (or four)
//     quadrant streams advance through bounded contiguous runs that stay
//     cache-resident while they are transformed.
//
//  3. Execute sweeps each kernel across a persistent shard pool: the
//     index space splits into P contiguous shards owned by long-lived
//     workers that barrier between kernels, instead of forking and
//     joining a fresh goroutine set per gate. The shard count is an
//     execution option (Options.Shards, Plan.Execute) plumbed down from
//     the serving layer, which grants a large lone simulation all shards
//     while concurrent small jobs stay single-shard; 0 selects
//     automatically. The full-sweep reductions (State.Norm,
//     State.ExpectationDiagonal, the sampling CDF in Run) parallelize
//     over the same shard machinery.
//
// Evolve and Run compile internally, so callers keep the one-call API;
// Compile and Plan.Execute are exported for callers that reuse a plan
// across states. The direct State.Apply* methods remain for per-gate
// consumers such as the noise-trajectory path, built on the same
// pair-index sweeps.
package sim
