// Package gates defines the gate set shared by the circuit IR, the
// transpiler and the statevector simulator: names, arities, parameter
// counts, and unitary matrices.
//
// The set covers the paper's Listing-4 basis {sx, rz, cx}, the standard
// one- and two-qubit gates the algorithmic libraries lower to, and CCX for
// the arithmetic/boolean families.
package gates

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Name identifies a gate.
type Name string

// Gate names. Matrix conventions follow OpenQASM 3 / Qiskit: RZ(λ) =
// diag(e^{-iλ/2}, e^{iλ/2}), P(λ) = diag(1, e^{iλ}), SX = √X with
// SX² = X (up to no phase: the Qiskit SX has det e^{iπ/2}).
const (
	I   Name = "id"
	X   Name = "x"
	Y   Name = "y"
	Z   Name = "z"
	H   Name = "h"
	S   Name = "s"
	Sdg Name = "sdg"
	T   Name = "t"
	Tdg Name = "tdg"
	SX  Name = "sx"
	RX  Name = "rx"
	RY  Name = "ry"
	RZ  Name = "rz"
	P   Name = "p"

	CX   Name = "cx"
	CZ   Name = "cz"
	CP   Name = "cp"
	SWAP Name = "swap"

	CCX   Name = "ccx"
	CSWAP Name = "cswap"
)

// Info describes a gate's shape.
type Info struct {
	Qubits int // arity
	Params int // number of real parameters
}

var table = map[Name]Info{
	I: {1, 0}, X: {1, 0}, Y: {1, 0}, Z: {1, 0}, H: {1, 0},
	S: {1, 0}, Sdg: {1, 0}, T: {1, 0}, Tdg: {1, 0}, SX: {1, 0},
	RX: {1, 1}, RY: {1, 1}, RZ: {1, 1}, P: {1, 1},
	CX: {2, 0}, CZ: {2, 0}, CP: {2, 1}, SWAP: {2, 0},
	CCX: {3, 0}, CSWAP: {3, 0},
}

// Lookup returns the gate's shape, or an error for unknown names.
func Lookup(n Name) (Info, error) {
	info, ok := table[n]
	if !ok {
		return Info{}, fmt.Errorf("gates: unknown gate %q", n)
	}
	return info, nil
}

// Known reports whether n names a gate in the set.
func Known(n Name) bool { _, ok := table[n]; return ok }

// Names returns all gate names (unordered).
func Names() []Name {
	out := make([]Name, 0, len(table))
	for n := range table {
		out = append(out, n)
	}
	return out
}

// Matrix2 is a one-qubit unitary in row-major order.
type Matrix2 [2][2]complex128

// Matrix4 is a two-qubit unitary in row-major order over the local basis
// |b1 b0⟩ = |00⟩, |01⟩, |10⟩, |11⟩: local bit 0 is the least significant
// index. Which physical qubit maps to which local bit is the caller's
// convention — the simulator's dense two-qubit kernels put the lower qubit
// position on bit 0.
type Matrix4 [4][4]complex128

// Split2 is a one-qubit unitary stored as separate real and imaginary
// planes. The simulator splits every kernel matrix into this form at
// compile time so its inner sweeps are branch-free float64 arithmetic over
// the split amplitude planes — no complex deinterleave per element.
type Split2 struct {
	Re, Im [2][2]float64
}

// Split decomposes the matrix into its real and imaginary planes.
func (m Matrix2) Split() Split2 {
	var s Split2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s.Re[i][j] = real(m[i][j])
			s.Im[i][j] = imag(m[i][j])
		}
	}
	return s
}

// Split4 is a two-qubit unitary stored as separate real and imaginary
// planes; see Split2.
type Split4 struct {
	Re, Im [4][4]float64
}

// Split decomposes the matrix into its real and imaginary planes.
func (m Matrix4) Split() Split4 {
	var s Split4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s.Re[i][j] = real(m[i][j])
			s.Im[i][j] = imag(m[i][j])
		}
	}
	return s
}

// Unitary1 returns the matrix of a one-qubit gate.
func Unitary1(n Name, params []float64) (Matrix2, error) {
	info, err := Lookup(n)
	if err != nil {
		return Matrix2{}, err
	}
	if info.Qubits != 1 {
		return Matrix2{}, fmt.Errorf("gates: %q is not a one-qubit gate", n)
	}
	if len(params) != info.Params {
		return Matrix2{}, fmt.Errorf("gates: %q takes %d params, got %d", n, info.Params, len(params))
	}
	switch n {
	case I:
		return Matrix2{{1, 0}, {0, 1}}, nil
	case X:
		return Matrix2{{0, 1}, {1, 0}}, nil
	case Y:
		return Matrix2{{0, -1i}, {1i, 0}}, nil
	case Z:
		return Matrix2{{1, 0}, {0, -1}}, nil
	case H:
		s := complex(1/math.Sqrt2, 0)
		return Matrix2{{s, s}, {s, -s}}, nil
	case S:
		return Matrix2{{1, 0}, {0, 1i}}, nil
	case Sdg:
		return Matrix2{{1, 0}, {0, -1i}}, nil
	case T:
		return Matrix2{{1, 0}, {0, cmplx.Exp(1i * math.Pi / 4)}}, nil
	case Tdg:
		return Matrix2{{1, 0}, {0, cmplx.Exp(-1i * math.Pi / 4)}}, nil
	case SX:
		// (1/2)[[1+i, 1−i],[1−i, 1+i]]; SX·SX = X.
		return Matrix2{
			{complex(0.5, 0.5), complex(0.5, -0.5)},
			{complex(0.5, -0.5), complex(0.5, 0.5)},
		}, nil
	case RX:
		th := params[0] / 2
		return Matrix2{
			{complex(math.Cos(th), 0), complex(0, -math.Sin(th))},
			{complex(0, -math.Sin(th)), complex(math.Cos(th), 0)},
		}, nil
	case RY:
		th := params[0] / 2
		return Matrix2{
			{complex(math.Cos(th), 0), complex(-math.Sin(th), 0)},
			{complex(math.Sin(th), 0), complex(math.Cos(th), 0)},
		}, nil
	case RZ:
		th := params[0] / 2
		return Matrix2{
			{cmplx.Exp(complex(0, -th)), 0},
			{0, cmplx.Exp(complex(0, th))},
		}, nil
	case P:
		return Matrix2{{1, 0}, {0, cmplx.Exp(complex(0, params[0]))}}, nil
	}
	return Matrix2{}, fmt.Errorf("gates: no matrix for %q", n)
}

// Mul2 multiplies one-qubit unitaries (a·b: apply b first).
func Mul2(a, b Matrix2) Matrix2 {
	var out Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return out
}

// Mul4 multiplies two-qubit unitaries (a·b: apply b first).
func Mul4(a, b Matrix4) Matrix4 {
	var out Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j] +
				a[i][2]*b[2][j] + a[i][3]*b[3][j]
		}
	}
	return out
}

// Kron2 returns the Kronecker product hi ⊗ lo: hi acts on local bit 1, lo
// on local bit 0 of the Matrix4 basis.
func Kron2(hi, lo Matrix2) Matrix4 {
	var out Matrix4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			out[i][j] = hi[i>>1][j>>1] * lo[i&1][j&1]
		}
	}
	return out
}

// Dagger2 returns the conjugate transpose.
func Dagger2(m Matrix2) Matrix2 {
	return Matrix2{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// EqualUpToPhase2 reports whether a = e^{iφ}·b for some global phase φ,
// within tol.
func EqualUpToPhase2(a, b Matrix2, tol float64) bool {
	// Find the first element of b with significant magnitude to anchor the
	// phase.
	var phase complex128
	found := false
	for i := 0; i < 2 && !found; i++ {
		for j := 0; j < 2 && !found; j++ {
			if cmplx.Abs(b[i][j]) > tol {
				phase = a[i][j] / b[i][j]
				found = true
			}
		}
	}
	if !found {
		return false
	}
	if math.Abs(cmplx.Abs(phase)-1) > tol {
		return false
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]-phase*b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

// Inverse returns the gate (and parameters) implementing the inverse of
// the given gate. Parametric gates negate their angle; fixed gates map to
// their daggers.
func Inverse(n Name, params []float64) (Name, []float64, error) {
	info, err := Lookup(n)
	if err != nil {
		return "", nil, err
	}
	if info.Params > 0 {
		neg := make([]float64, len(params))
		for i, p := range params {
			neg[i] = -p
		}
		return n, neg, nil
	}
	switch n {
	case S:
		return Sdg, nil, nil
	case Sdg:
		return S, nil, nil
	case T:
		return Tdg, nil, nil
	case Tdg:
		return T, nil, nil
	case SX:
		// sx⁻¹ = sx·x up to phase; express as rz-free exact inverse using
		// rx(-π/2) (equal to sx† up to global phase).
		return RX, []float64{-math.Pi / 2}, nil
	default:
		// id, x, y, z, h, cx, cz, swap, ccx, cswap are self-inverse.
		return n, nil, nil
	}
}

// IsDiagonal reports whether the gate's unitary is diagonal in the
// computational basis (such gates commute with each other and with
// controls).
func IsDiagonal(n Name) bool {
	switch n {
	case I, Z, S, Sdg, T, Tdg, RZ, P, CZ, CP:
		return true
	}
	return false
}

// IsSelfInverse reports whether applying the gate twice (same operands,
// no parameters) is the identity.
func IsSelfInverse(n Name) bool {
	switch n {
	case I, X, Y, Z, H, CX, CZ, SWAP, CCX, CSWAP:
		return true
	}
	return false
}
