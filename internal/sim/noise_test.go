package sim

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/gates"
)

func bellCircuit() *circuit.Circuit {
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	return c
}

func TestRunNoisyZeroNoiseMatchesRun(t *testing.T) {
	c := bellCircuit()
	clean, err := Run(c, Options{Shots: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunNoisy(c, NoiseModel{}, Options{Shots: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range clean.Counts {
		if noisy.Counts[k] != v {
			t.Fatalf("zero-noise path diverged at %d: %d vs %d", k, v, noisy.Counts[k])
		}
	}
}

func TestRunNoisyBellDegrades(t *testing.T) {
	c := bellCircuit()
	noisy, err := RunNoisy(c, NoiseModel{Prob1Q: 0.02, Prob2Q: 0.05}, Options{Shots: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Correlated outcomes (00, 11) still dominate but the anticorrelated
	// ones now appear.
	good := noisy.Counts[0] + noisy.Counts[3]
	bad := noisy.Counts[1] + noisy.Counts[2]
	if bad == 0 {
		t.Error("noise injected no errors")
	}
	frac := float64(good) / 3000
	if frac < 0.80 || frac >= 1.0 {
		t.Errorf("Bell fidelity proxy %v, want in [0.80, 1)", frac)
	}
	_ = bad
}

func TestRunNoisyFidelityMonotoneInNoise(t *testing.T) {
	c := bellCircuit()
	fidelity := func(p float64) float64 {
		res, err := RunNoisy(c, NoiseModel{Prob1Q: p, Prob2Q: p}, Options{Shots: 2000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Counts[0]+res.Counts[3]) / 2000
	}
	f0, f1, f2 := fidelity(0.005), fidelity(0.05), fidelity(0.25)
	if !(f0 > f1 && f1 > f2) {
		t.Errorf("fidelity not monotone: %v, %v, %v", f0, f1, f2)
	}
}

func TestRunNoisyReadoutFlip(t *testing.T) {
	// Deterministic |0⟩ with pure readout noise: P(1) ≈ flip rate.
	c := circuit.New(1, 1)
	c.Gate("id", []int{0})
	c.Measure(0, 0)
	res, err := RunNoisy(c, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 5000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Counts[1]) / 5000
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("readout flip rate %v, want ~0.1", frac)
	}
}

func TestRunNoisyValidation(t *testing.T) {
	c := bellCircuit()
	if _, err := RunNoisy(c, NoiseModel{Prob1Q: -1}, Options{Shots: 1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := RunNoisy(c, NoiseModel{Prob2Q: 1.5}, Options{Shots: 1}); err == nil {
		t.Error(">1 probability accepted")
	}
	if _, err := RunNoisy(c, NoiseModel{Prob1Q: 0.1}, Options{Shots: -1}); err == nil {
		t.Error("negative shots accepted")
	}
}

// TestRunNoisyRejectsKeepState locks in the contract: trajectories have
// no single final state, so KeepState must fail loudly instead of
// silently returning Final == nil. The noiseless fall-through still
// honors the flag.
func TestRunNoisyRejectsKeepState(t *testing.T) {
	c := bellCircuit()
	if _, err := RunNoisy(c, NoiseModel{Prob1Q: 0.01}, Options{Shots: 10, KeepState: true}); err == nil {
		t.Error("KeepState accepted by the trajectory engine")
	}
	if _, err := RunNoisy(c, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 10, KeepState: true}); err == nil {
		t.Error("KeepState accepted by the readout-only path")
	}
	res, err := RunNoisy(c, NoiseModel{}, Options{Shots: 10, KeepState: true})
	if err != nil {
		t.Fatalf("zero-noise KeepState rejected: %v", err)
	}
	if res.Final == nil {
		t.Error("zero-noise fall-through dropped the state")
	}
}

// TestRunNoisyReadoutOnlySharedState exercises the readout-only fast path
// (one evolution, shared CDF, binary-search draws): determinism by seed,
// sensitivity to the seed, and agreement with the exact distribution.
func TestRunNoisyReadoutOnlySharedState(t *testing.T) {
	c := circuit.New(3, 3)
	c.H(0).CX(0, 1).CX(1, 2).MeasureAll()
	nm := NoiseModel{ReadoutFlip: 0.05}
	a, err := RunNoisy(c, nm, Options{Shots: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoisy(c, nm, Options{Shots: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("same seed, different counts at %d", k)
		}
	}
	if a.Counts.TotalShots() != 4000 {
		t.Fatalf("total shots %d", a.Counts.TotalShots())
	}
	// GHZ + 5%% flips: the two correlated outcomes still dominate.
	frac := float64(a.Counts[0]+a.Counts[7]) / 4000
	if frac < 0.75 || frac >= 1.0 {
		t.Errorf("GHZ fidelity proxy %v, want in [0.75, 1)", frac)
	}
	c2, err := RunNoisy(c, nm, Options{Shots: 4000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, v := range a.Counts {
		if c2.Counts[k] != v {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical readout-only counts")
	}
}

// TestRunNoisyReadoutOnlyMidMeasureRejected keeps the fast path's error
// contract aligned with the trajectory loop.
func TestRunNoisyReadoutOnlyMidMeasureRejected(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0).Measure(0, 0)
	c.X(1)
	if _, err := RunNoisy(c, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 5}); err == nil {
		t.Error("mid-circuit measurement accepted by readout-only path")
	}
	// Unmeasured circuits still surface compile errors (bypass the builder
	// validation to plant an invalid instruction).
	c2 := circuit.New(1, 0)
	c2.Instrs = append(c2.Instrs, circuit.Instruction{
		Op: circuit.OpGate, Gate: "nope", Qubits: []int{0},
	})
	if _, err := RunNoisy(c2, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 5}); err == nil {
		t.Error("invalid gate accepted by readout-only path")
	}
	// Runtime evolution errors surface even with nothing measured, as the
	// per-shot path surfaced them: an init on a qubit no longer in |0⟩.
	c3 := circuit.New(1, 0)
	c3.X(0)
	if err := c3.Init([]int{0}, []complex128{1, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunNoisy(c3, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 5}); err == nil {
		t.Error("init on non-|0⟩ qubit accepted by unmeasured readout-only path")
	}
}

// TestRunNoisyTrajectoryWorkersSerialSweeps guards the oversubscription
// fix: with W trajectory workers on a state above the parallel threshold,
// per-gate sweeps must stay on the worker goroutines instead of fanning
// out to W×GOMAXPROCS goroutines. The goroutine high-water mark during the
// run must stay near the worker count.
func TestRunNoisyTrajectoryWorkersSerialSweeps(t *testing.T) {
	n := 14 // 2^14 amplitudes: every sweep is above parallelThreshold
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < 6; l++ {
		for q := 0; q < n; q++ {
			c.RY(0.1*float64(l+q+1), q)
		}
	}
	c.MeasureAll()
	workers := 4
	// Force a multi-core fan-out decision even on single-core runners so
	// the broken behavior (workers×GOMAXPROCS sweep goroutines) is visible
	// everywhere.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	var maxG atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > maxG.Load() {
					maxG.Store(g)
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	_, err := RunNoisy(c, NoiseModel{Prob1Q: 0.01}, Options{Shots: 16, Seed: 3, Shards: workers})
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	// Allow the monitor itself plus a little runtime slack; the broken
	// behavior fans out to workers×GOMAXPROCS extra goroutines per sweep.
	if limit := int64(base + workers + 6); maxG.Load() > limit {
		t.Errorf("goroutine high-water mark %d exceeds %d: trajectory sweeps are fanning out", maxG.Load(), limit)
	}
}

// TestCloneThenEvolveKeepsSerialSweeps extends the high-water guard to the
// clone path: Clone must carry the serial-sweep pin, so evolving a clone of
// a pinned state spawns no sweep goroutines even above parallelThreshold.
// (A Clone that dropped the pin would fan each sweep out to GOMAXPROCS
// goroutines, resurrecting the oversubscription the pin exists to prevent.)
func TestCloneThenEvolveKeepsSerialSweeps(t *testing.T) {
	n := 14 // 2^14 amplitudes: every sweep is above parallelThreshold
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	st := mustStateQuick(n)
	st.noParallel = true
	cl := st.Clone()
	h, err := gates.Unitary1(gates.H, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	var maxG atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				if g := int64(runtime.NumGoroutine()); g > maxG.Load() {
					maxG.Store(g)
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}()
	for l := 0; l < 4; l++ {
		for q := 0; q < n; q++ {
			if err := cl.Apply1(h, q); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	// Only the monitor goroutine plus runtime slack: the pinned clone's
	// sweeps all run on the calling goroutine.
	if limit := int64(base + 3); maxG.Load() > limit {
		t.Errorf("goroutine high-water mark %d exceeds %d: cloned state lost the serial-sweep pin", maxG.Load(), limit)
	}
}

func TestRunNoisyDeterministicBySeed(t *testing.T) {
	c := bellCircuit()
	nm := NoiseModel{Prob1Q: 0.05, Prob2Q: 0.05, ReadoutFlip: 0.01}
	a, err := RunNoisy(c, nm, Options{Shots: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoisy(c, nm, Options{Shots: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("same seed, different noisy counts at %d", k)
		}
	}
}
