package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64
	// implementation (Vigna).
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Errorf("SplitMix64(0) value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Child()
	c2 := parent.Child()
	if c1.Uint64() == c2.Uint64() && c1.Uint64() == c2.Uint64() {
		t.Error("sibling child streams appear identical")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(123)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for n := 1; n <= 33; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-square-ish sanity check over 10 buckets.
	r := New(2024)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(77)
	for _, n := range []int{0, 1, 2, 5, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(31)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("Shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(404)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		r := New(seed)
		v := r.Uint64n(uint64(n))
		return v < uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
