package obs

import (
	"testing"
	"time"
)

// The hot-path instruments sit inside the pool scheduler and journal
// append path; these pin their cost so instrumentation regressions show
// up in the benchmark diff (the CI threshold gate runs over them).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_ops_total", "ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_lat_seconds", "lat", nil)
	d := 137 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "depth")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}
