package jobs

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// withProfileFlag injects the top-level "profile": true flag into a
// job.json document, the way a client opts a submission into profiling.
func withProfileFlag(t testing.TB, raw []byte) []byte {
	t.Helper()
	doc := map[string]any{}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["profile"] = true
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// profileDoc pulls the status document's kernel table.
func profileDoc(t testing.TB, st map[string]any) map[string]any {
	t.Helper()
	p, ok := st["profile"].(map[string]any)
	if !ok {
		t.Fatalf("status has no profile document: %v", st["profile"])
	}
	return p
}

// TestHTTPProfiledJob is the serving-layer profiling contract: a
// profiled submission's status document carries the per-kernel table,
// its total tracks the execute stage span, counts are bit-identical to
// the unprofiled twin, and the two cache separately.
func TestHTTPProfiledJob(t *testing.T) {
	pool := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer pool.Close()
	h := NewHandler(pool)
	raw := quickstartBundle(t)

	// Unprofiled baseline.
	sub := doJSON(t, h, "POST", "/v1/jobs", raw, http.StatusAccepted)
	baseID, _ := sub["id"].(string)
	baseSt := doJSON(t, h, "GET", "/v1/jobs/"+baseID+"?wait=30s", nil, http.StatusOK)
	if _, has := baseSt["profile"]; has {
		t.Fatal("unprofiled job status carries a profile")
	}
	baseRes := doJSON(t, h, "GET", "/v1/jobs/"+baseID+"/result", nil, http.StatusOK)

	// Profiled twin: same circuit, body flag set. Must NOT be served from
	// the unprofiled run's cache entry — the kernel table's presence is
	// deterministic in the submission.
	sub = doJSON(t, h, "POST", "/v1/jobs", withProfileFlag(t, raw), http.StatusAccepted)
	profID, _ := sub["id"].(string)
	if sub["cache_hit"] == true {
		t.Fatal("profiled submission hit the unprofiled cache entry")
	}
	st := doJSON(t, h, "GET", "/v1/jobs/"+profID+"?wait=30s", nil, http.StatusOK)
	if st["state"] != string(StateDone) {
		t.Fatalf("profiled job: %v", st)
	}
	p := profileDoc(t, st)
	kernels, ok := p["kernels"].([]any)
	if !ok || len(kernels) == 0 {
		t.Fatalf("profile has no kernel table: %v", p)
	}
	var rowSum float64
	for _, el := range kernels {
		row := el.(map[string]any)
		if row["kind"] == "" || row["ns"].(float64) < 0 {
			t.Fatalf("bad kernel row: %v", row)
		}
		rowSum += row["ns"].(float64)
	}
	total, _ := p["total_ns"].(float64)
	if total <= 0 || rowSum != total {
		t.Fatalf("total_ns %v != kernel row sum %v", total, rowSum)
	}
	// The kernel total accounts for the execute stage: never more than
	// the stage span, and not vanishingly less.
	var execNs float64
	for _, el := range st["spans"].([]any) {
		span := el.(map[string]any)
		if span["stage"] == "execute" {
			execNs = span["dur_ns"].(float64)
		}
	}
	if execNs <= 0 {
		t.Fatalf("no execute span in %v", st["spans"])
	}
	if total > execNs*1.10 || total < execNs*0.25 {
		t.Fatalf("kernel total %v ns does not track execute span %v ns", total, execNs)
	}

	// Counts are bit-identical profile-on vs profile-off; the profile
	// also rides the result document's meta.
	res := doJSON(t, h, "GET", "/v1/jobs/"+profID+"/result", nil, http.StatusOK)
	if !reflect.DeepEqual(baseRes["entries"], res["entries"]) {
		t.Fatal("profiled run's entries differ from the unprofiled twin")
	}
	if meta, ok := res["meta"].(map[string]any); !ok || meta["profile"] == nil {
		t.Fatal("result meta lost the profile")
	}

	// Resubmitting the profiled twin is a cache hit that keeps its table.
	sub = doJSON(t, h, "POST", "/v1/jobs", withProfileFlag(t, raw), http.StatusAccepted)
	if sub["cache_hit"] != true {
		t.Fatalf("profiled resubmission missed the cache: %v", sub)
	}
	st = doJSON(t, h, "GET", "/v1/jobs/"+sub["id"].(string), nil, http.StatusOK)
	profileDoc(t, st)

	// The ?profile=true query form (what the fleet dispatcher forwards)
	// lands on the same cache entry as the body flag.
	sub = doJSON(t, h, "POST", "/v1/jobs?profile=true", raw, http.StatusAccepted)
	if sub["cache_hit"] != true {
		t.Fatalf("?profile=true submission missed the profiled cache entry: %v", sub)
	}
}

// TestHTTPProfiledSweep checks the aggregated sweep profile and the
// progress fields on the sweep surfaces.
func TestHTTPProfiledSweep(t *testing.T) {
	pool := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer pool.Close()
	h := NewHandler(pool)
	points := [][]float64{{0.3, 0.7}, {1.1, 0.2}, {0.8, 1.4}, {0.5, 0.9}}
	raw := sweepBundleJSON(t, 4, points)

	sub := doJSON(t, h, "POST", "/v1/sweeps?profile=true", raw, http.StatusAccepted)
	id, _ := sub["id"].(string)
	st := doJSON(t, h, "GET", "/v1/jobs/"+id+"?wait=30s", nil, http.StatusOK)
	if st["state"] != string(StateDone) || st["progress"] != float64(1) {
		t.Fatalf("status: state=%v progress=%v", st["state"], st["progress"])
	}
	p := profileDoc(t, st)
	if p["points"] != float64(len(points)) || p["points_profiled"] != float64(len(points)) {
		t.Fatalf("sweep profile coverage: %v", p)
	}
	kinds, ok := p["kinds"].([]any)
	if !ok || len(kinds) == 0 {
		t.Fatalf("sweep profile has no per-kind rows: %v", p)
	}
	var kindSum float64
	for _, el := range kinds {
		row := el.(map[string]any)
		if row["kind"] == "" || row["kernels"].(float64) <= 0 {
			t.Fatalf("bad kind row: %v", row)
		}
		kindSum += row["ns"].(float64)
	}
	if total, _ := p["total_ns"].(float64); total <= 0 || kindSum != total {
		t.Fatalf("sweep total_ns %v != kind sum %v", p["total_ns"], kindSum)
	}

	// The sweep result doc echoes the aggregate and progress.
	res := doJSON(t, h, "GET", "/v1/sweeps/"+id, nil, http.StatusOK)
	if res["progress"] != float64(1) {
		t.Fatalf("sweep result progress = %v", res["progress"])
	}
	if _, ok := res["profile"].(map[string]any); !ok {
		t.Fatalf("sweep result has no profile aggregate: %v", res["profile"])
	}

	// An unprofiled sweep stays clean of profile documents.
	sub = doJSON(t, h, "POST", "/v1/sweeps", raw, http.StatusAccepted)
	uid, _ := sub["id"].(string)
	st = doJSON(t, h, "GET", "/v1/jobs/"+uid+"?wait=30s", nil, http.StatusOK)
	if _, has := st["profile"]; has {
		t.Fatal("unprofiled sweep status carries a profile")
	}
}
