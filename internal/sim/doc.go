// Package sim implements the statevector simulator backing the middle
// layer's gate path — the substitute for the paper's IBM Qiskit Aer state
// vector simulator.
//
// The simulator stores all 2^n complex amplitudes, applies unitary gates
// exactly, and samples measurement outcomes from the Born distribution
// with a seeded generator. The state vector is the hot data structure and
// every gate is a bandwidth-bound sweep over it, so in the HPC spirit of
// the paper the engine is organized around minimizing sweep count and
// memory traffic rather than per-gate convenience.
//
// # Compile → fuse → shard
//
// Execution is a three-stage pipeline:
//
//  1. Compile lowers a circuit.Circuit into a kernel Plan. Runs of
//     single-qubit gates on the same qubit fold into one 2×2 matrix,
//     consecutive diagonal/phase gates (CZ, CP, Diagonal) merge into a
//     single phase-table kernel, and the controlled permutations (CX,
//     SWAP, CCX, CSWAP) specialize to subspace pair exchanges. Chains of
//     CX/CZ/CP/SWAP on one qubit pair additionally fuse — together with
//     the single-qubit gates surrounding them on either qubit and any
//     pair-local diagonals — into a dense 4×4 kernel swept over the
//     2^(n-2) amplitude quadruples, so an entangler sandwich that would
//     cost three to five full-state sweeps runs as one (PlanStats.Fused2Q
//     counts the wins). A two-qubit gate with nothing to fold keeps its
//     cheaper specialized form. The compiler may hop over commuting
//     kernels (disjoint qubit support, or mutually diagonal) to find a
//     fusion partner, so a deep circuit becomes far fewer sweeps than it
//     has gates. All static validation happens here; executing a compiled
//     plan performs no per-gate checks. At finalize, any dense 4×4 that
//     ended up monomial — permutation × phase, the shape pure CX/CZ/SWAP
//     chains (plus X/Z/S-style 1Q gates) fuse to — is decomposed once
//     (PlanStats.Monomial2Q) and executes on a 4-multiply sweep instead
//     of the dense kernel's 16 multiplies + 12 adds, ~2.3× on
//     chain-heavy circuits.
//
//  2. Kernels iterate their natural index space directly instead of
//     scanning all 2^n indices and branching: a one-qubit kernel walks the
//     2^(n-1) amplitude pairs, a two-qubit dense kernel the 2^(n-2)
//     quadruples, a controlled permutation only the 2^(n-k) indices its k
//     constrained bits select. High-stride kernels (target qubits whose
//     pair halves sit far apart) run in cache-blocked order: the index
//     expansion hoists out of the inner loop and the two (or four)
//     quadrant streams advance through bounded contiguous runs that stay
//     cache-resident while they are transformed.
//
//  3. Execute sweeps each kernel across a persistent shard pool: the
//     index space splits into P contiguous shards owned by long-lived
//     workers that barrier between kernels, instead of forking and
//     joining a fresh goroutine set per gate. The shard count is an
//     execution option (Options.Shards, Plan.Execute) plumbed down from
//     the serving layer, which grants a large lone simulation all shards
//     while concurrent small jobs stay single-shard; 0 selects
//     automatically. The full-sweep reductions (State.Norm,
//     State.ExpectationDiagonal, the sampling CDF in Run) parallelize
//     over the same shard machinery.
//
// Evolve and Run compile internally, so callers keep the one-call API;
// Compile and Plan.Execute are exported for callers that reuse a plan
// across states. The direct State.Apply* methods remain for per-gate
// consumers such as the noise-trajectory path, built on the same
// pair-index sweeps.
//
// # Parametric plans
//
// A circuit whose rotation angles carry symbolic ParamRefs (the sweep
// path: algolib.LowerParametric) compiles once with CompileParametric
// into a ParamPlan. Compilation runs the ordinary fusion pipeline on a
// placeholder binding and records, per parameter-dependent kernel, a
// rebuild closure that re-derives just that kernel's fused matrix,
// split planes, and monomial decomposition from a concrete value
// vector. Bind(values) then produces a runnable Plan by rebuilding only
// the affected kernels — fusion never re-runs per point.
//
// The bind-invariance contract: a ParamPlan's kernel structure, order,
// and fusion stats (bar Monomial2Q, which each binding re-derives from
// its concrete matrices) are fixed at compile time and identical for
// every binding; Bind(v) yields a Plan whose execution is bit-identical
// to Compile on the concretely-lowered circuit for v. A parameter value
// that lands on a shape the template cannot reproduce exactly (e.g. an
// angle that would have made a kernel monomial under concrete
// compilation) is detected per kernel and that point falls back to a
// full recompile (Binds() reports binds vs. fallbacks), preserving
// bit-identity over raw speed. Sweep throughput rests on this: the
// serving layer's per-point results, cache keys and counts must be
// indistinguishable from individual concrete submissions.
//
// # Amplitude layout
//
// The statevector is stored structure-of-arrays: two parallel float64
// planes, re[k] and im[k], instead of one []complex128. Go's complex128
// code generation keeps real and imaginary parts interleaved and largely
// scalar; on the split planes every sweep body is plain float64 arithmetic
// over contiguous equal-length slices, which the compiler bounds-check
// eliminates and autovectorizes. Kernel matrices, phase tables and init
// amplitude tables are split once at compile finalize (gates.Split2 /
// gates.Split4, the phRe/phIm tables), never per sweep.
//
// Both planes come from alignedFloats, which over-allocates and re-slices
// so element 0 sits on a 64-byte cache-line boundary: plane base alignment
// is deterministic rather than allocator luck, sweeps never straddle an
// extra line at the block edges, and re and im keep identical offsets so
// a pair (re[k], im[k]) always splits across exactly two predictable
// lines. The full-size staging planes (State.scratch, used by permutation
// and init kernels that cannot run in place) are allocated the same way,
// lazily, and reused for the life of the State.
//
// First-touch ownership: a State created for plan execution (newStateOn)
// has its planes zeroed by the shard pool itself — each worker clears
// exactly the contiguous range of re and im it will later sweep, before
// any kernel runs. On NUMA machines first touch decides page placement,
// so this puts every shard's pages on the socket of the worker that owns
// them; on single-socket machines it is equivalent to the allocator's
// lazy zeroing and costs nothing extra.
//
// The split arithmetic is grouped exactly as Go complex128 arithmetic —
// (m·a)ʳ computes as mr·ar − mi·ai, multi-term sums associate left to
// right, and no FMA contraction is introduced — so amplitudes match the
// pre-refactor engine bit for bit, except that fast paths may skip exact
// ±0-valued terms, which can only flip the sign of a zero and is
// unobservable through probabilities. Sampled counts for a fixed
// bundle+shots+seed are therefore unchanged by the layout (the parity
// suite in soa_parity_test.go pins this against a complex128 reference).
//
// External packages see none of this: Amplitude, Probability and the
// Apply*/Evolve/Run APIs still speak complex128, and nothing outside the
// package may assume plane layout, alignment, or scratch reuse.
//
// # Profiling and the flight recorder
//
// Kernel execution is observable at two costs. Always on: every
// executed kernel increments a per-kind counter and observes its wall
// time in a per-kind histogram (the sim_kernels_total and
// sim_kernel_seconds labeled families — kinds gate1q, gate2q, monomial,
// diag, permute, ctrlphase, init), pre-resolved by ordinal so the cost
// is two clock reads and three atomic adds per kernel; plan executions
// also drop a kernel_batch event into the obs flight recorder. Opt in
// (Options.Profile, or Plan.ExecuteProfiled): execution additionally
// records the per-kernel table — kind, support mask, wall time, and
// per-shard sweep min/max with the max/mean imbalance ratio — into a
// Profile (Result.Profile), the document the serving layer attaches to
// job status. Per-shard timing wraps every sweep closure, so it is only
// paid when requested. Profiling is observational only: sweep bodies
// and shard ranges are identical with and without it, so amplitudes and
// sampled counts are bit-identical (pinned by profile_test.go).
package sim
