package jobs

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
)

// CacheKey returns the content address of a submission: a SHA-256 over the
// canonical JSON of the bundle's QDTs, operators and context plus the
// resolved shot count and seed. Provenance is excluded — who packaged the
// bundle does not change what executing it produces. Two bundles with the
// same key are guaranteed to yield byte-identical results because every
// stochastic stage is seeded.
func CacheKey(b *bundle.Bundle) (string, error) {
	shots, seed := resolveShotsSeed(b)
	payload := struct {
		QDTs      []*qdt.DataType  `json:"qdts"`
		Operators qop.Sequence     `json:"operators"`
		Context   *ctxdesc.Context `json:"context,omitempty"`
		Shots     int              `json:"shots"`
		Seed      uint64           `json:"seed"`
	}{b.QDTs, b.Operators, b.Context, shots, seed}
	raw, err := json.Marshal(payload) // canonical: struct order fixed, map keys sorted
	if err != nil {
		return "", fmt.Errorf("jobs: cache key: %w", err)
	}
	sum := sha256.Sum256(raw)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// resolveShotsSeed extracts the effective sample count and seed the
// backends will use: exec.samples (or anneal.num_reads on the anneal
// path), defaulting to backend.DefaultShots, and exec.seed.
func resolveShotsSeed(b *bundle.Bundle) (int, uint64) {
	shots := backend.DefaultShots
	seed := uint64(0)
	if b.Context != nil {
		if e := b.Context.Exec; e != nil {
			if e.Samples > 0 {
				shots = e.Samples
			}
			seed = e.Seed
		}
		if a := b.Context.Anneal; a != nil && a.NumReads > 0 {
			shots = a.NumReads
		}
	}
	return shots, seed
}

// resultCache is an LRU of completed results keyed by CacheKey. Entries
// are stored and served as copies so no caller ever shares an Entries
// slice with the cache (Result.Sort on a served copy cannot corrupt or
// race with another consumer).
type resultCache struct {
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *result.Result
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, order: list.New(), byKey: map[string]*list.Element{}}
}

// get returns a copy of the cached result. Callers hold Pool.mu.
func (c *resultCache) get(key string) (*result.Result, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return copyResult(el.Value.(*cacheEntry).res), true
}

// put stores a copy of res. Callers hold Pool.mu.
func (c *resultCache) put(key string, res *result.Result) {
	if res == nil {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).res = copyResult(res)
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: copyResult(res)})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }

// copyResult duplicates the Entries slice and Meta map so the copy can be
// sorted or annotated independently. Entry values (including decoded
// qdt.Value slices) are shared — they are read-only by convention.
func copyResult(res *result.Result) *result.Result {
	cp := *res
	cp.Entries = make([]result.Entry, len(res.Entries))
	copy(cp.Entries, res.Entries)
	if res.Meta != nil {
		cp.Meta = make(map[string]any, len(res.Meta))
		for k, v := range res.Meta {
			cp.Meta[k] = v
		}
	}
	return &cp
}
