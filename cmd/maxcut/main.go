// Command maxcut reproduces the paper's §5 proof of concept end to end:
// the same typed Max-Cut problem (4-node cycle, unit weights, an
// ISING_SPIN register of width 4) realized on the gate path (QAOA on the
// statevector simulator — Fig. 2) and the annealing path (Ising problem
// on the simulated annealer — Fig. 3), by changing only the operator
// formulation and the context descriptor.
//
// With -emit DIR it also writes the four JSON artifacts of the workflow
// diagrams (QDT.json, QOP.json, CTX.json, job.json) for each path.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
)

func main() {
	emit := flag.String("emit", "", "directory to write QDT/QOP/CTX/job JSON artifacts")
	samples := flag.Int("samples", 4096, "gate-path shots")
	reads := flag.Int("reads", 1000, "anneal-path num_reads")
	seed := flag.Uint64("seed", 42, "execution seed")
	gamma := flag.Float64("gamma", 0.3926990817, "QAOA cost angle (default ≈ π/8)")
	beta := flag.Float64("beta", 1.1780972451, "QAOA mixer angle (default ≈ 3π/8)")
	flag.Parse()
	if err := run(*emit, *samples, *reads, *seed, *gamma, *beta); err != nil {
		fmt.Fprintln(os.Stderr, "maxcut:", err)
		os.Exit(1)
	}
}

func run(emit string, samples, reads int, seed uint64, gamma, beta float64) error {
	g := graph.Cycle(4)
	exact := g.MaxCutBruteForce()
	fmt.Println("== Max-Cut on the 4-node cycle (paper §5) ==")
	fmt.Printf("exact optimum: cut=%v, assignments:", exact.Value)
	probe := qdt.NewIsingVars("ising_vars", "s", 4)
	for _, m := range exact.Assignments {
		fmt.Printf(" %s", probe.BitstringLSBFirst(m))
	}
	fmt.Println()

	// Shared quantum data type: the single intent-side declaration both
	// backends consume.
	reg := qdt.NewIsingVars("ising_vars", "s", 4)

	// ---- Gate path (Fig. 2): QAOA descriptor stack + gate context. ----
	gateSeq, err := algolib.BuildQAOA(reg, g, []float64{gamma}, []float64{beta})
	if err != nil {
		return err
	}
	gateCtx := ctxdesc.NewGate("gate.aer_simulator", samples, seed)
	gateCtx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, // the paper's 4-qubit ring
	}
	gateCtx.Exec.Options = map[string]any{"optimization_level": 2}
	gateBundle, err := bundle.New([]*qdt.DataType{reg}, gateSeq, gateCtx)
	if err != nil {
		return err
	}
	if emit != "" {
		if err := emitArtifacts(filepath.Join(emit, "gate"), reg, gateSeq, gateCtx, gateBundle); err != nil {
			return err
		}
	}
	gateRes, err := runtime.Submit(gateBundle, runtime.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\n-- gate path (QAOA, engine gate.aer_simulator) --")
	report(gateRes, g)

	// ---- Anneal path (Fig. 3): single Ising descriptor + anneal ctx. --
	model := ising.FromMaxCut(g)
	isingOp, err := algolib.NewIsingProblem(reg, model)
	if err != nil {
		return err
	}
	annealSeq := qop.Sequence{isingOp}
	annealCtx := ctxdesc.NewAnneal("anneal.neal", reads, seed)
	annealBundle, err := bundle.New([]*qdt.DataType{reg}, annealSeq, annealCtx)
	if err != nil {
		return err
	}
	if emit != "" {
		if err := emitArtifacts(filepath.Join(emit, "anneal"), reg, annealSeq, annealCtx, annealBundle); err != nil {
			return err
		}
	}
	annealRes, err := runtime.Submit(annealBundle, runtime.Options{})
	if err != nil {
		return err
	}
	fmt.Println("\n-- anneal path (Ising, engine anneal.neal) --")
	report(annealRes, g)

	gateFP, _ := gateBundle.Fingerprint()
	annealFP, _ := annealBundle.Fingerprint()
	fmt.Println("\n-- portability --")
	fmt.Printf("gate intent fingerprint:   %s\n", gateFP[:16])
	fmt.Printf("anneal intent fingerprint: %s\n", annealFP[:16])
	fmt.Println("(formulations differ — QAOA stack vs Ising problem — but both consume")
	fmt.Println(" the identical quantum data type; swap only operator formulation + context)")
	return nil
}

func report(res *result.Result, g *graph.Graph) {
	res.Sort()
	cut := 0.0
	total := 0
	for _, e := range res.Entries {
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
	}
	for i, e := range res.Entries {
		if i >= 6 {
			fmt.Printf("  … %d more outcomes\n", len(res.Entries)-i)
			break
		}
		marker := ""
		if g.CutValueBits(e.Index) == 4 {
			marker = "  <- optimal"
		}
		if e.HasEnergy {
			fmt.Printf("  %s  count=%-5d energy=%+.1f cut=%.0f%s\n", e.Bitstring, e.Count, e.Energy, g.CutValueBits(e.Index), marker)
		} else {
			fmt.Printf("  %s  count=%-5d cut=%.0f%s\n", e.Bitstring, e.Count, g.CutValueBits(e.Index), marker)
		}
	}
	if total > 0 {
		fmt.Printf("  expected cut: %.3f (paper band ≈ 3.0–3.2 for the gate path)\n", cut/float64(total))
	}
}

func emitArtifacts(dir string, reg *qdt.DataType, seq qop.Sequence, ctx *ctxdesc.Context, b *bundle.Bundle) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeJSON := func(name string, v interface{ MarshalJSON() ([]byte, error) }) error {
		raw, err := v.MarshalJSON()
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dir, name), indent(raw), 0o644)
	}
	if err := writeJSON("QDT.json", reg); err != nil {
		return err
	}
	for i, op := range seq {
		if err := writeJSON(fmt.Sprintf("QOP_%02d.json", i), op); err != nil {
			return err
		}
	}
	if err := writeJSON("CTX.json", ctx); err != nil {
		return err
	}
	raw, err := b.Marshal()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "job.json"), raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote descriptor artifacts to %s\n", dir)
	return nil
}

func indent(raw []byte) []byte {
	// MarshalJSON output is compact; re-indent for readability.
	var out []byte
	depth := 0
	inString := false
	for i := 0; i < len(raw); i++ {
		ch := raw[i]
		if inString {
			out = append(out, ch)
			if ch == '\\' && i+1 < len(raw) {
				out = append(out, raw[i+1])
				i++
			} else if ch == '"' {
				inString = false
			}
			continue
		}
		switch ch {
		case '"':
			inString = true
			out = append(out, ch)
		case '{', '[':
			out = append(out, ch)
			depth++
			out = appendNewline(out, depth)
		case '}', ']':
			depth--
			out = appendNewline(out, depth)
			out = append(out, ch)
		case ',':
			out = append(out, ch)
			out = appendNewline(out, depth)
		case ':':
			out = append(out, ch, ' ')
		default:
			out = append(out, ch)
		}
	}
	out = append(out, '\n')
	return out
}

func appendNewline(out []byte, depth int) []byte {
	out = append(out, '\n')
	for i := 0; i < depth; i++ {
		out = append(out, ' ', ' ')
	}
	return out
}
