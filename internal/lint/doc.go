// Package lint is the repo-invariant analyzer suite behind cmd/simvet.
// The system's load-bearing guarantees — bit-identical counts for a
// fixed bundle+shots+seed, no fsync under a serving-layer mutex, no
// complex128 arithmetic in SoA hot sweeps, a truthful Prometheus
// /metrics surface, and a durable journal whose errors are never
// silently lost — used to live in doc comments and reviewer memory.
// This package mechanizes them as type-aware static analysis over
// go/ast + go/types (stdlib only, like internal/obs): each package is
// parsed with go/parser and type-checked with the source go/importer,
// then every analyzer walks the typed syntax.
//
// The suite (see All):
//
//   - determinism — in simulation-core packages (internal/sim,
//     internal/gates, internal/algolib, and any package importing
//     internal/rng), no math/rand global-state calls, no rand.Seed,
//     and no time.Now()-derived seeds. The result cache, crash
//     requeue, and fleet re-forwarding all assume a fixed
//     bundle+shots+seed reproduces counts bit-identically.
//
//   - lockblock — in internal/jobs, internal/jobs/store and
//     internal/fleet, no blocking call (journal/store mutators, fsync,
//     net/http round trips, time.Sleep, WaitGroup waits, channel
//     operations) while a sync.Mutex/RWMutex is held. Intra-function:
//     lock state is tracked linearly, branches analyzed on copies,
//     function literals as fresh scopes; sync.Cond.Wait is exempt.
//
//   - soacomplex — in internal/sim (minus the compile-time allowlist
//     and _test.go files), no complex arithmetic and no []complex
//     allocations; the complex/real/imag conversion builtins stay
//     legal at the Amplitudes boundary.
//
//   - obsconv — instrument registrations on an internal/obs Registry
//     use lower-snake_case names, counters (and only counters) end in
//     _total, the histogram-owned _count/_sum/_bucket suffixes are
//     never claimed, and a name registers once per construction and
//     with one kind per package.
//
//   - journalerr — errors from journal/store mutators (Append, Sync,
//     Compact, PutResult) are never dropped, not even with `_ =`.
//
// # Suppressing a finding
//
// A justified exception is annotated in place:
//
//	//lint:ignore <analyzer> <reason>
//	_ = s.Append(ev)
//
// or trailing on the line itself. The directive suppresses the named
// analyzer ("*" for all) on its own line and the line below. The
// reason is mandatory — a directive without one is itself reported —
// because an unexplained suppression recreates exactly the
// reviewer-memory problem the suite removes.
//
// Analyzer scopes match package paths by suffix, so the golden-test
// fixture trees under testdata/src/<case>/ exercise the same rules as
// the real packages they mirror. The analysis is intra-procedural by
// design: a blocking call hidden behind a same-package wrapper (see
// jobs.Pool.journal) is documented at the wrapper instead.
package lint
