package qec

import (
	"math"
	"testing"

	"repro/internal/ctxdesc"
)

func surfacePolicy(d int) *ctxdesc.QEC {
	return &ctxdesc.QEC{CodeFamily: "surface", Distance: d, PhysErrorRate: 1e-3}
}

func repPolicy(d int) *ctxdesc.QEC {
	return &ctxdesc.QEC{CodeFamily: "repetition", Distance: d, PhysErrorRate: 1e-3}
}

func TestAllocateListing5(t *testing.T) {
	// The paper's Listing 5: surface code, distance 7. One logical qubit
	// spans "dozens of physical qubits": 49 data + 48 syndrome = 97.
	alloc, err := Allocate(surfacePolicy(7), 1)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.DataQubits != 49 || alloc.SyndromeQubits != 48 || alloc.PhysicalQubits != 97 {
		t.Errorf("d=7 surface allocation = %+v", alloc)
	}
	if alloc.RoundsPerLogicalOp != 7 {
		t.Errorf("rounds default = %d, want distance", alloc.RoundsPerLogicalOp)
	}
}

func TestAllocateRepetition(t *testing.T) {
	alloc, err := Allocate(repPolicy(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.DataQubits != 20 || alloc.SyndromeQubits != 16 || alloc.PhysicalQubits != 36 {
		t.Errorf("repetition allocation = %+v", alloc)
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(nil, 1); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := Allocate(surfacePolicy(4), 1); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := Allocate(surfacePolicy(7), 0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Allocate(&ctxdesc.QEC{CodeFamily: "parity", Distance: 3}, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestRepetitionLogicalErrorExact(t *testing.T) {
	// d=3, p: logical error = 3p²(1−p) + p³.
	p := 0.01
	want := 3*p*p*(1-p) + p*p*p
	got, err := LogicalErrorRate(repPolicy(3), p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("d=3 logical error = %v, want %v", got, want)
	}
	// d=1 is no protection.
	got1, _ := LogicalErrorRate(repPolicy(1), p)
	if math.Abs(got1-p) > 1e-12 {
		t.Errorf("d=1 logical error = %v, want p", got1)
	}
}

func TestLogicalErrorDecreasesWithDistance(t *testing.T) {
	for _, family := range []string{"repetition", "surface"} {
		prev := 1.0
		for _, d := range []int{3, 5, 7, 9} {
			pol := &ctxdesc.QEC{CodeFamily: family, Distance: d}
			le, err := LogicalErrorRate(pol, 1e-3)
			if err != nil {
				t.Fatal(err)
			}
			if le >= prev {
				t.Errorf("%s: logical error did not decrease at d=%d: %v >= %v", family, d, le, prev)
			}
			prev = le
		}
	}
}

func TestSurfaceAboveThresholdCapped(t *testing.T) {
	pol := &ctxdesc.QEC{CodeFamily: "surface", Distance: 9}
	le, err := LogicalErrorRate(pol, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if le > 1 {
		t.Errorf("logical error %v > 1", le)
	}
	zero, _ := LogicalErrorRate(pol, 0)
	if zero != 0 {
		t.Errorf("p=0 logical error = %v", zero)
	}
}

func TestLogicalErrorRateValidation(t *testing.T) {
	if _, err := LogicalErrorRate(repPolicy(3), -0.1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := LogicalErrorRate(repPolicy(3), 1); err == nil {
		t.Error("p=1 accepted")
	}
	if _, err := LogicalErrorRate(&ctxdesc.QEC{CodeFamily: "x", Distance: 3}, 0.1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestMonteCarloMatchesClosedForm(t *testing.T) {
	// The executable decoder must agree with the binomial formula.
	for _, d := range []int{3, 5} {
		p := 0.05
		exact := repetitionLogicalError(d, p)
		mc, err := SimulateRepetition(d, p, 200000, 42)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mc.Rate-exact) > 5*math.Sqrt(exact*(1-exact)/200000)+1e-4 {
			t.Errorf("d=%d: MC rate %v vs exact %v", d, mc.Rate, exact)
		}
	}
}

func TestSimulateRepetitionValidation(t *testing.T) {
	if _, err := SimulateRepetition(2, 0.1, 10, 1); err == nil {
		t.Error("even distance accepted")
	}
	if _, err := SimulateRepetition(3, 1.5, 10, 1); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := SimulateRepetition(3, 0.1, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestSyndromeExtractionNoNoise(t *testing.T) {
	for _, logical := range []uint8{0, 1} {
		decoded, syndromes, err := SyndromeExtraction(5, 3, 0, logical, 7)
		if err != nil {
			t.Fatal(err)
		}
		if decoded != logical {
			t.Errorf("noiseless decode of %d gave %d", logical, decoded)
		}
		if len(syndromes) != 3 || len(syndromes[0]) != 4 {
			t.Errorf("syndrome shape: %d rounds × %d", len(syndromes), len(syndromes[0]))
		}
		for _, syn := range syndromes {
			for _, s := range syn {
				if s != 0 {
					t.Error("noiseless syndromes should be trivial")
				}
			}
		}
	}
}

func TestSyndromeExtractionLowNoiseMostlyCorrect(t *testing.T) {
	correct := 0
	const trials = 200
	for seed := uint64(0); seed < trials; seed++ {
		decoded, _, err := SyndromeExtraction(5, 5, 0.01, 1, seed)
		if err != nil {
			t.Fatal(err)
		}
		if decoded == 1 {
			correct++
		}
	}
	if frac := float64(correct) / trials; frac < 0.97 {
		t.Errorf("low-noise decode success = %v, want > 0.97", frac)
	}
}

func TestSyndromeExtractionValidation(t *testing.T) {
	if _, _, err := SyndromeExtraction(4, 1, 0, 0, 1); err == nil {
		t.Error("even distance accepted")
	}
	if _, _, err := SyndromeExtraction(3, 0, 0, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, _, err := SyndromeExtraction(3, 1, 0, 2, 1); err == nil {
		t.Error("non-bit logical accepted")
	}
}

func TestEstimateOverhead(t *testing.T) {
	pol := surfacePolicy(7)
	ov, err := Estimate(pol, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ov.QubitOverhead-97) > 1e-12 {
		t.Errorf("qubit overhead = %v, want 97x", ov.QubitOverhead)
	}
	if ov.RoundOverhead != 7 {
		t.Errorf("round overhead = %d", ov.RoundOverhead)
	}
	if ov.LogicalError >= ov.UnprotectedErr {
		t.Errorf("QEC at p=1e-3 should beat bare: %v vs %v", ov.LogicalError, ov.UnprotectedErr)
	}
}

func TestCheckLogicalGateSet(t *testing.T) {
	pol := &ctxdesc.QEC{CodeFamily: "surface", Distance: 7,
		LogicalGateSet: []string{"H", "S", "CNOT", "T", "MEASURE_Z"}}
	if err := CheckLogicalGateSet(pol, []string{"H", "CNOT"}); err != nil {
		t.Errorf("allowed gates rejected: %v", err)
	}
	if err := CheckLogicalGateSet(pol, []string{"CCZ"}); err == nil {
		t.Error("non-FT gate accepted")
	}
	open := &ctxdesc.QEC{CodeFamily: "surface", Distance: 3}
	if err := CheckLogicalGateSet(open, []string{"ANYTHING"}); err != nil {
		t.Errorf("empty gate set should allow all: %v", err)
	}
}
