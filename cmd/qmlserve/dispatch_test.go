package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qdt"
)

// slowBundle builds a 22-qubit p=2 QAOA statevector job: ~1.5 s on one
// shard, a wide-open window to SIGKILL its worker mid-run. Identical
// (intent, samples, seed) ⇒ identical sampled counts wherever it runs.
func slowBundle(t *testing.T, seed uint64) []byte {
	t.Helper()
	const n = 22
	reg := qdt.NewIsingVars("ising_vars", "s", n)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(n), []float64{0.39, 0.21}, []float64{1.17, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", 512, seed))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// startProc launches one qmlserve process (worker or dispatcher mode,
// per args) and waits for its listen address.
func startProc(t *testing.T, bin string, args ...string) *server {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, logs: &logBuffer{}}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			s.logs.WriteLine(line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case s.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("qmlserve did not report its address; logs:\n%s", s.logs)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return s
}

func postJob(t *testing.T, s *server, raw []byte) string {
	return postJobTraced(t, s, raw, "")
}

// postJobTraced submits with an optional X-Trace-Id and checks the
// accepted trace echoes on the 202 header.
func postJobTraced(t *testing.T, s *server, raw []byte, trace string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, s.url("/v1/jobs"), bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || sub.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, sub)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit code %d", resp.StatusCode)
	}
	if trace != "" && resp.Header.Get(obs.TraceHeader) != trace {
		t.Fatalf("202 %s = %q, want %q", obs.TraceHeader, resp.Header.Get(obs.TraceHeader), trace)
	}
	return sub.ID
}

// scrapeMetrics GETs /metrics off a process and runs the strict
// exposition parser, returning families by name.
func scrapeMetrics(t *testing.T, s *server) map[string]obs.Family {
	t.Helper()
	resp, err := http.Get(s.url("/metrics"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d (%s)", resp.StatusCode, raw)
	}
	fams, err := obs.ParseExposition(string(raw))
	if err != nil {
		t.Fatalf("/metrics on %s does not parse: %v", s.addr, err)
	}
	byName := map[string]obs.Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

// TestDispatchAcceptance is the PR acceptance test at the process level:
// a dispatcher qmlserve fronting two in-memory worker qmlserves must
// (a) route a job to a worker and, when that worker is SIGKILLed
// mid-run, re-forward it to the survivor where it completes with counts
// identical to a single-node run of the same bundle, and (b) after the
// dispatcher itself is SIGKILLed and restarted on its journal, still
// answer status and result for the pre-crash job.
func TestDispatchAcceptance(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH; cannot build the server binary")
	}
	bin := filepath.Join(t.TempDir(), "qmlserve")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qmlserve: %v\n%s", err, out)
	}

	// Two in-memory workers, single-shard so the acceptance job runs
	// ~1.5 s — a wide window to kill one mid-job.
	w1 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	w2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	dataDir := t.TempDir()
	dispArgs := []string{
		"-addr", "127.0.0.1:0",
		"-dispatch", w1.addr + "," + w2.addr,
		"-data-dir", dataDir,
		"-probe-interval", "100ms",
		"-poll-interval", "25ms",
		"-debug-addr", "127.0.0.1:0",
	}
	disp := startProc(t, bin, dispArgs...)

	const trace = "trace-acceptance-01"
	id := postJobTraced(t, disp, slowBundle(t, 7), trace)

	// Wait until the dispatcher reports the job running on a known
	// worker, then SIGKILL that worker.
	var victim string
	deadline := time.Now().Add(60 * time.Second)
	for victim == "" {
		if time.Now().After(deadline) {
			t.Fatalf("job never reached running; logs:\n%s", disp.logs)
		}
		st := getJSON(t, disp.url("/v1/jobs/"+id), http.StatusOK)
		if st["state"] == "running" && st["worker"] != nil && st["worker"] != "" {
			victim = st["worker"].(string)
			break
		}
		switch st["state"] {
		case "done", "failed", "canceled":
			t.Fatalf("job finished before the kill window: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victimProc, survivor := w1, w2
	if victim == w2.addr {
		victimProc, survivor = w2, w1
	}
	if err := victimProc.cmd.Process.Kill(); err != nil { // SIGKILL mid-job
		t.Fatal(err)
	}
	victimProc.cmd.Wait()

	// The dispatcher must re-forward to the survivor and finish there.
	fin := waitDone(t, disp, id)
	if fin["worker"] != survivor.addr {
		t.Fatalf("job finished on %v, want survivor %s; status %v", fin["worker"], survivor.addr, fin)
	}
	if fin["reforwards"].(float64) < 1 {
		t.Fatalf("job was not re-forwarded: %v", fin)
	}
	resFleet := getJSON(t, disp.url("/v1/jobs/"+id+"/result"), http.StatusOK)

	// Tracing: the inbound X-Trace-Id is on the status document with a
	// span log, in the surviving worker's structured logs, and in the
	// dispatcher's journal file.
	if fin["trace_id"] != trace {
		t.Fatalf("status trace_id = %v, want %q", fin["trace_id"], trace)
	}
	if spans, ok := fin["spans"].([]any); !ok || len(spans) < 3 {
		t.Fatalf("status spans: %v", fin["spans"])
	}
	if !strings.Contains(survivor.logs.String(), trace) {
		t.Fatalf("trace %q absent from the surviving worker's logs:\n%s", trace, survivor.logs)
	}
	journal, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(journal), trace) {
		t.Fatalf("trace %q absent from the dispatcher journal", trace)
	}

	// /metrics: both tiers serve a valid exposition with the latency
	// histograms the PR promises.
	dispFams := scrapeMetrics(t, disp)
	for _, name := range []string{"fleet_roundtrip_seconds", "store_journal_append_seconds", "fleet_submitted_total", "build_info", "go_goroutines"} {
		if _, ok := dispFams[name]; !ok {
			t.Fatalf("dispatcher /metrics missing %s", name)
		}
	}
	workerFams := scrapeMetrics(t, survivor)
	for _, name := range []string{"jobs_queue_wait_seconds", "jobs_run_seconds", "sim_execute_seconds", "jobs_submitted_total"} {
		if _, ok := workerFams[name]; !ok {
			t.Fatalf("worker /metrics missing %s", name)
		}
	}

	// -debug-addr: the dispatcher's debug listener answers pprof and a
	// /metrics copy.
	debugRE := regexp.MustCompile(`msg="qmlserve debug listening" addr=(\S+)`)
	m := debugRE.FindStringSubmatch(disp.logs.String())
	if m == nil {
		t.Fatalf("debug listener address not logged:\n%s", disp.logs)
	}
	for _, path := range []string{"/debug/pprof/cmdline", "/metrics"} {
		resp, err := http.Get("http://" + m[1] + path)
		if err != nil {
			t.Fatalf("GET %s on debug listener: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("debug %s = %d (%d bytes)", path, resp.StatusCode, len(body))
		}
	}

	// Reference: the same bundle on a fresh single node produces the
	// same counts (deterministic in bundle+shots+seed) — the re-run lost
	// nothing.
	w3 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	refID := postJob(t, w3, slowBundle(t, 7))
	waitDone(t, w3, refID)
	resRef := getJSON(t, w3.url("/v1/jobs/"+refID+"/result"), http.StatusOK)
	if fmt.Sprint(resFleet["entries"]) != fmt.Sprint(resRef["entries"]) {
		t.Fatalf("re-forwarded counts differ from the single-node run:\n fleet %v\n ref   %v",
			resFleet["entries"], resRef["entries"])
	}

	// Fleet health surfaced the death: one worker ejected.
	stats := getJSON(t, disp.url("/v1/stats"), http.StatusOK)
	dstats := stats["dispatcher"].(map[string]any)
	if dstats["reforwarded"].(float64) < 1 {
		t.Fatalf("dispatcher stats missed the reforward: %v", dstats)
	}

	// Dispatcher crash: SIGKILL, restart on the same journal. The
	// pre-crash job must still answer status and (proxied) result.
	if err := disp.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	disp.cmd.Wait()
	disp2 := startProc(t, bin, dispArgs...)

	st := getJSON(t, disp2.url("/v1/jobs/"+id), http.StatusOK)
	if st["state"] != "done" || st["worker"] != survivor.addr {
		t.Fatalf("recovered status: %v", st)
	}
	resAgain := getJSON(t, disp2.url("/v1/jobs/"+id+"/result"), http.StatusOK)
	if fmt.Sprint(resAgain["entries"]) != fmt.Sprint(resFleet["entries"]) {
		t.Fatalf("result changed across dispatcher restart:\n before %v\n after  %v",
			resFleet["entries"], resAgain["entries"])
	}
	list := getJSON(t, disp2.url("/v1/jobs?state=done"), http.StatusOK)
	if list["count"].(float64) < 1 {
		t.Fatalf("history after restart: %v", list)
	}
	stats2 := getJSON(t, disp2.url("/v1/stats"), http.StatusOK)
	if stats2["dispatcher"].(map[string]any)["recovered"].(float64) < 1 {
		t.Fatalf("restart replayed nothing: %v", stats2)
	}

	// Graceful exit: SIGTERM drains and exits 0.
	if err := disp2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- disp2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful dispatcher shutdown: %v; logs:\n%s", err, disp2.logs)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("dispatcher did not exit on SIGTERM; logs:\n%s", disp2.logs)
	}
}
