package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
)

// maxTrajectoryBytes bounds the extra statevector memory the trajectory
// engine may allocate across its shot workers (64 MiB): a 2^20-amplitude
// state (16 MiB) runs at most 4 shot workers; anything at 2^22 and above
// runs shots serially and parallelizes inside each gate sweep instead.
const maxTrajectoryBytes = 64 << 20

// NoiseModel parametrizes stochastic Pauli (depolarizing-style) noise for
// trajectory simulation: after every gate, each touched qubit suffers a
// uniformly random Pauli error with the class's probability; measured
// bits flip with ReadoutFlip. This is the quantum-trajectory counterpart
// of Aer's basic device noise models, and gives the middle layer's QEC
// context something real to protect against.
type NoiseModel struct {
	Prob1Q      float64 // per-qubit error probability after a 1-qubit gate
	Prob2Q      float64 // per-qubit error probability after a multi-qubit gate
	ReadoutFlip float64 // classical bit-flip probability at measurement
}

// Validate checks probability ranges.
func (n NoiseModel) Validate() error {
	for _, p := range []float64{n.Prob1Q, n.Prob2Q, n.ReadoutFlip} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: noise probability %v out of [0,1]", p)
		}
	}
	return nil
}

// Zero reports whether the model injects no noise at all.
func (n NoiseModel) Zero() bool {
	return n.Prob1Q == 0 && n.Prob2Q == 0 && n.ReadoutFlip == 0
}

// RunNoisy executes the circuit under the noise model by quantum
// trajectories: each shot evolves its own statevector with randomly
// inserted Pauli errors and samples one outcome. Cost is shots × circuit,
// so it suits the small-register workloads of the evaluation; noiseless
// runs fall through to the fast path, and models with zero gate-error
// probabilities (pure readout noise) evolve a single shared state and
// sample every shot from its CDF. Options.KeepState is rejected whenever
// the model is non-zero: trajectories have no single final state.
//
// The shard grant (Options.Shards) parallelizes across trajectories: shot
// ranges split over that many workers, each shot drawing from its own
// serially pre-derived child RNG stream, so counts are bit-identical for
// any grant — including the serial baseline. 0 chooses automatically
// (trajectory workers for small states; serial shots for large states,
// whose sweeps fan out internally). When several trajectory workers run,
// each worker's per-gate sweeps are pinned to its own goroutine — the
// grant never multiplies into workers×GOMAXPROCS sweep goroutines.
func RunNoisy(c *circuit.Circuit, noise NoiseModel, opts Options) (*Result, error) {
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	if noise.Zero() {
		return Run(c, opts)
	}
	if opts.KeepState {
		// Each trajectory evolves and discards its own statevector; there
		// is no single final state a Result could carry, so accepting the
		// flag would silently return Final == nil. Reject it instead.
		return nil, fmt.Errorf("sim: KeepState is not supported with a non-zero noise model: trajectories have no single final state")
	}
	if opts.Shots < 0 {
		return nil, fmt.Errorf("sim: negative shot count %d", opts.Shots)
	}
	if c.NumQubits < 1 || c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", c.NumQubits, MaxQubits)
	}
	mm := c.MeasureMap()
	res := &Result{Counts: Counts{}, Shots: opts.Shots}

	qubits := make([]int, 0, len(mm))
	for q := range mm {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)

	// Child streams derive serially from the master so the per-shot
	// randomness is independent of how shots are scheduled.
	master := rng.New(opts.Seed)
	rngs := make([]*rng.Rand, opts.Shots)
	for shot := range rngs {
		rngs[shot] = master.Child()
	}

	if noise.Prob1Q == 0 && noise.Prob2Q == 0 {
		// Pure readout noise leaves every trajectory's unitary evolution
		// identical: evolve one state through the compiled plan, build its
		// sampling CDF once, and draw every shot by binary search instead
		// of re-evolving 2^n amplitudes and linearly scanning them per
		// shot. Each shot still consumes its own child stream in the same
		// draw order as a full trajectory.
		return runReadoutOnly(c, noise, opts, res, mm, qubits, rngs)
	}

	workers := opts.Shards
	if workers <= 0 {
		if 1<<c.NumQubits >= parallelThreshold {
			workers = 1 // per-gate sweeps already fan out internally
		} else {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	// Every trajectory worker owns a full 2^n statevector, so clamp the
	// fan-out to a fixed memory budget: a wide grant on a large state
	// must not multiply peak memory (those states parallelize inside
	// each gate sweep instead).
	if maxByMem := maxTrajectoryBytes / (16 << c.NumQubits); workers > maxByMem {
		workers = maxByMem
	}
	if workers > opts.Shots {
		workers = opts.Shots
	}
	if workers < 1 {
		workers = 1
	}

	// With several trajectory workers the per-gate sweeps inside each shot
	// must stay on the worker's goroutine: each sweep on a state at or
	// above parallelThreshold would otherwise fan out to GOMAXPROCS
	// goroutines per worker, oversubscribing the machine workers×cores
	// times. A lone worker keeps the internal fan-out instead.
	serialSweeps := workers > 1
	counts := make([]Counts, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardRange(opts.Shots, workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := Counts{}
			for shot := lo; shot < hi; shot++ {
				reg, measured, err := runTrajectory(c, noise, qubits, mm, rngs[shot], serialSweeps)
				if err != nil {
					errs[w] = err
					return
				}
				if measured {
					local[reg]++
				}
			}
			counts[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, local := range counts {
		for reg, n := range local {
			res.Counts[reg] += n
		}
	}
	return res, nil
}

// runReadoutOnly is the trajectory engine's fast path for models with
// gate-error probabilities of zero: one compiled evolution shared by every
// shot, one CDF build, and an O(n)-deep binary search per draw in place of
// the O(2^n) linear probability scan per shot. Shot draws follow the same
// child-stream order as full trajectories (outcome first, then one flip
// draw per measured qubit), and the serial shot loop makes counts
// trivially identical across shard grants.
func runReadoutOnly(c *circuit.Circuit, noise NoiseModel, opts Options, res *Result, mm map[int]int, qubits []int, rngs []*rng.Rand) (*Result, error) {
	pl, err := Compile(c)
	if err != nil {
		return nil, err
	}
	if opts.Shots == 0 {
		return res, nil
	}
	pool := newShardPool(resolveShards(1<<c.NumQubits, opts.Shards))
	defer pool.close()
	st, err := newStateOn(c.NumQubits, pool)
	if err != nil {
		return nil, err
	}
	// Evolve even when nothing is measured: runtime errors (an init on
	// qubits not in |0…0⟩) must surface exactly as the per-shot
	// trajectory path surfaced them.
	if err := pl.executeOn(st, pool, nil); err != nil {
		return nil, err
	}
	if len(mm) == 0 {
		return res, nil
	}
	cdf, _, lastPos := buildCDF(st, pool)
	for shot := 0; shot < opts.Shots; shot++ {
		r := rngs[shot]
		// Unscaled draw, matching sampleIndex's trajectory semantics: the
		// clamp catches u beyond the drifted top of the distribution.
		k := sampleCDF(cdf, lastPos, r.Float64())
		res.Counts[projectRegister(k, qubits, mm, noise.ReadoutFlip, r)]++
	}
	return res, nil
}

// projectRegister maps a sampled basis index onto the classical register
// defined by mm, flipping each measured bit with probability flip. The
// draw order — one Float64 per measured qubit, ascending qubit order,
// only when flip > 0 — is part of the seeded-stream contract the
// trajectory and readout-only paths share; r may be nil when flip is 0.
func projectRegister(k uint64, qubits []int, mm map[int]int, flip float64, r *rng.Rand) uint64 {
	var reg uint64
	for _, q := range qubits {
		bit := k >> uint(q) & 1
		if flip > 0 && r.Float64() < flip {
			bit ^= 1
		}
		if bit == 1 {
			reg |= 1 << uint(mm[q])
		}
	}
	return reg
}

// runTrajectory evolves one noisy shot and samples its measured register.
// serialSweeps pins the shot's gate sweeps to the calling goroutine (set
// when trajectories already run in parallel).
func runTrajectory(c *circuit.Circuit, noise NoiseModel, qubits []int, mm map[int]int, r *rng.Rand, serialSweeps bool) (uint64, bool, error) {
	paulis := [3]gates.Name{gates.X, gates.Y, gates.Z}
	st, err := NewState(c.NumQubits)
	if err != nil {
		return 0, false, err
	}
	st.noParallel = serialSweeps
	seenMeasure := false
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpMeasure:
			seenMeasure = true
			continue
		case circuit.OpBarrier:
			continue
		}
		if seenMeasure {
			return 0, false, fmt.Errorf("sim: instruction %d follows a measurement", idx)
		}
		if err := applyInstruction(st, ins); err != nil {
			return 0, false, fmt.Errorf("sim: instruction %d: %w", idx, err)
		}
		if ins.Op != circuit.OpGate {
			continue
		}
		p := noise.Prob1Q
		if len(ins.Qubits) > 1 {
			p = noise.Prob2Q
		}
		if p == 0 {
			continue
		}
		for _, q := range ins.Qubits {
			if r.Float64() < p {
				m, err := gates.Unitary1(paulis[r.Intn(3)], nil)
				if err != nil {
					return 0, false, err
				}
				if err := st.Apply1(m, q); err != nil {
					return 0, false, err
				}
			}
		}
	}
	if len(mm) == 0 {
		return 0, false, nil
	}
	k := sampleIndex(st, r)
	return projectRegister(k, qubits, mm, noise.ReadoutFlip, r), true, nil
}

// sampleIndex draws one basis index from the Born distribution by a
// linear scan. Only the one-draw-per-state trajectory path uses it — a
// CDF would cost the same 2^n pass it saves; shots drawn repeatedly from
// one evolved state go through buildCDF + sampleCDF instead
// (runReadoutOnly, Run).
func sampleIndex(st *State, r *rng.Rand) uint64 {
	u := r.Float64()
	acc := 0.0
	// Float-drift fallback: if the accumulated norm tops out below u, the
	// draw lands on the last basis state with positive probability — never
	// on a zero-probability state (the same clamp sampleCDF applies).
	last := uint64(0)
	for k := 0; k < st.Dim(); k++ {
		p := st.Probability(uint64(k))
		if p > 0 {
			last = uint64(k)
		}
		acc += p
		if u < acc {
			return uint64(k)
		}
	}
	return last
}
