package circuit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gates"
)

func TestAppendValidation(t *testing.T) {
	c := New(2, 2)
	cases := []struct {
		name string
		ins  Instruction
	}{
		{"unknown gate", Instruction{Op: OpGate, Gate: "warp", Qubits: []int{0}}},
		{"wrong arity", Instruction{Op: OpGate, Gate: gates.CX, Qubits: []int{0}}},
		{"wrong params", Instruction{Op: OpGate, Gate: gates.RZ, Qubits: []int{0}}},
		{"qubit range", Instruction{Op: OpGate, Gate: gates.X, Qubits: []int{5}}},
		{"negative qubit", Instruction{Op: OpGate, Gate: gates.X, Qubits: []int{-1}}},
		{"duplicate qubit", Instruction{Op: OpGate, Gate: gates.CX, Qubits: []int{1, 1}}},
		{"measure clbit range", Instruction{Op: OpMeasure, Qubits: []int{0}, Clbits: []int{7}}},
		{"measure arity", Instruction{Op: OpMeasure, Qubits: []int{0, 1}, Clbits: []int{0}}},
		{"permute size", Instruction{Op: OpPermute, Qubits: []int{0}, Perm: []uint64{0}}},
		{"permute not bijection", Instruction{Op: OpPermute, Qubits: []int{0}, Perm: []uint64{0, 0}}},
		{"permute out of range", Instruction{Op: OpPermute, Qubits: []int{0}, Perm: []uint64{0, 5}}},
		{"init size", Instruction{Op: OpInit, Qubits: []int{0, 1}, Amps: []complex128{1}}},
		{"bad opcode", Instruction{Op: Opcode(99)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := c.Append(tc.ins); err == nil {
				t.Error("invalid instruction accepted")
			}
		})
	}
	if len(c.Instrs) != 0 {
		t.Error("failed appends modified circuit")
	}
}

func TestFluentBuilders(t *testing.T) {
	c := New(3, 3)
	c.H(0).X(1).CX(0, 1).RZ(0.5, 2).CPhase(math.Pi/4, 0, 2).CCX(0, 1, 2).Measure(0, 0)
	if len(c.Instrs) != 7 {
		t.Fatalf("got %d instructions", len(c.Instrs))
	}
	counts := c.CountOps()
	if counts["h"] != 1 || counts["cx"] != 1 || counts["ccx"] != 1 || counts["measure"] != 1 {
		t.Errorf("CountOps = %v", counts)
	}
}

func TestBuilderPanicsOnBadOperand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range fluent call did not panic")
		}
	}()
	New(1, 0).H(3)
}

func TestDepth(t *testing.T) {
	// h(0), h(1) run in parallel (depth 1); cx(0,1) adds a level; rz(1)
	// another.
	c := New(2, 2)
	c.H(0).H(1).CX(0, 1).RZ(1.0, 1)
	if d := c.Depth(); d != 3 {
		t.Errorf("depth = %d, want 3", d)
	}
	// Barrier forces the next h(0) to wait for the rz on qubit 1? No —
	// barrier synchronizes only listed qubits; empty barrier = all.
	c2 := New(2, 0)
	c2.H(0)
	c2.Barrier()
	c2.H(1)
	if d := c2.Depth(); d != 2 {
		t.Errorf("barrier depth = %d, want 2", d)
	}
	// Without the barrier the two H's are parallel.
	c3 := New(2, 0)
	c3.H(0).H(1)
	if d := c3.Depth(); d != 1 {
		t.Errorf("parallel depth = %d, want 1", d)
	}
}

func TestDepthEmptyAndMeasureChains(t *testing.T) {
	if d := New(3, 0).Depth(); d != 0 {
		t.Errorf("empty depth = %d", d)
	}
	// Two measurements into the same clbit serialize.
	c := New(2, 1)
	c.Measure(0, 0)
	c.Measure(1, 0)
	if d := c.Depth(); d != 2 {
		t.Errorf("clbit-serialized depth = %d, want 2", d)
	}
}

func TestSizeExcludesBarriers(t *testing.T) {
	c := New(2, 0)
	c.H(0).Barrier().H(1)
	if s := c.Size(); s != 2 {
		t.Errorf("Size = %d, want 2", s)
	}
}

func TestTwoQubitCount(t *testing.T) {
	c := New(3, 0)
	c.H(0).CX(0, 1).CPhase(0.1, 1, 2).Swap(0, 2).CCX(0, 1, 2)
	if n := c.TwoQubitCount(); n != 3 {
		t.Errorf("TwoQubitCount = %d, want 3 (ccx is 3-qubit)", n)
	}
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2, 2)
	c.RZ(1.0, 0).CX(0, 1).Measure(1, 1)
	cp := c.Copy()
	cp.Instrs[0].Params[0] = 9
	cp.Instrs[1].Qubits[0] = 1
	if c.Instrs[0].Params[0] != 1.0 || c.Instrs[1].Qubits[0] != 0 {
		t.Error("Copy shares slices")
	}
}

func TestInverse(t *testing.T) {
	c := New(2, 0)
	c.H(0).T(1).CX(0, 1).RZ(0.5, 0)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Instrs) != 4 {
		t.Fatalf("inverse has %d instructions", len(inv.Instrs))
	}
	// Reverse order: rz(-0.5), cx, tdg, h.
	if inv.Instrs[0].Gate != gates.RZ || inv.Instrs[0].Params[0] != -0.5 {
		t.Errorf("inv[0] = %+v", inv.Instrs[0])
	}
	if inv.Instrs[1].Gate != gates.CX {
		t.Errorf("inv[1] = %+v", inv.Instrs[1])
	}
	if inv.Instrs[2].Gate != gates.Tdg {
		t.Errorf("inv[2] = %+v", inv.Instrs[2])
	}
	if inv.Instrs[3].Gate != gates.H {
		t.Errorf("inv[3] = %+v", inv.Instrs[3])
	}
}

func TestInverseRejectsMeasurement(t *testing.T) {
	c := New(1, 1)
	c.H(0).Measure(0, 0)
	if _, err := c.Inverse(); err == nil {
		t.Error("measured circuit inverted")
	}
}

func TestInversePermutation(t *testing.T) {
	c := New(2, 0)
	// Cyclic shift: 0->1->2->3->0.
	if err := c.Permute([]int{0, 1}, []uint64{1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 0, 1, 2}
	for i, v := range inv.Instrs[0].Perm {
		if v != want[i] {
			t.Errorf("inverse perm = %v, want %v", inv.Instrs[0].Perm, want)
			break
		}
	}
}

func TestCompose(t *testing.T) {
	a := New(2, 0)
	a.H(0)
	b := New(2, 0)
	b.CX(0, 1)
	if err := a.Compose(b); err != nil {
		t.Fatal(err)
	}
	if len(a.Instrs) != 2 {
		t.Errorf("composed length %d", len(a.Instrs))
	}
	// Composing a wider circuit fails.
	wide := New(5, 0)
	wide.H(4)
	if err := a.Compose(wide); err == nil {
		t.Error("wide compose accepted")
	}
}

func TestMeasureMapAndHasOp(t *testing.T) {
	c := New(3, 3)
	c.H(0)
	c.Measure(2, 0)
	c.Measure(0, 2)
	m := c.MeasureMap()
	if m[2] != 0 || m[0] != 2 {
		t.Errorf("MeasureMap = %v", m)
	}
	if !c.HasOp(OpMeasure) || c.HasOp(OpInit) {
		t.Error("HasOp wrong")
	}
}

func TestMeasureAll(t *testing.T) {
	c := New(3, 3)
	c.MeasureAll()
	if counts := c.CountOps(); counts["measure"] != 3 {
		t.Errorf("MeasureAll measured %d", counts["measure"])
	}
}

func TestStringRendering(t *testing.T) {
	c := New(2, 1)
	c.H(0).RZ(0.5, 1).CX(0, 1).Measure(1, 0).Barrier()
	s := c.String()
	for _, want := range []string{"circuit(2q, 1c)", "h [0]", "rz[0.5] [1]", "cx [0 1]", "measure [1] -> [0]", "barrier"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
