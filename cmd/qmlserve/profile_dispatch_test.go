package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/qdt"
)

// profileBundle builds a 20-qubit p=2 QAOA statevector job — big enough
// that kernel sweep time dominates the execute stage, so the kernel
// table's total must land within 10% of the execute span.
func profileBundle(t *testing.T, seed uint64) []byte {
	t.Helper()
	const n = 20
	reg := qdt.NewIsingVars("ising_vars", "s", n)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(n), []float64{0.39, 0.21}, []float64{1.17, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", 512, seed))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// profileSweepBundle builds a symbolic 16-qubit QAOA sweep over n points
// — per-point work small enough for CI, large enough to profile.
func profileSweepBundle(t *testing.T, n int) []byte {
	t.Helper()
	const nq = 16
	reg := qdt.NewIsingVars("ising_vars", "s", nq)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(nq), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", 256, 11)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.1 + 0.07*float64(i), 0.15 + 0.05*float64(i)}
	}
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: pts}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestProfiledAcceptance is the profiling acceptance test at the process
// level: a profiled 20-qubit job and a profiled 8-point sweep submitted
// through a dispatcher fronting two workers must come back with kernel
// tables on their dispatcher status documents — the job's total within
// 10% of its execute span — and the dispatcher's /debug/events flight
// recorder must have witnessed the work.
func TestProfiledAcceptance(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH; cannot build the server binary")
	}
	bin := filepath.Join(t.TempDir(), "qmlserve")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qmlserve: %v\n%s", err, out)
	}

	w1 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	w2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	disp := startProc(t, bin,
		"-addr", "127.0.0.1:0",
		"-dispatch", w1.addr+","+w2.addr,
		"-data-dir", t.TempDir(),
		"-probe-interval", "100ms",
		"-poll-interval", "25ms",
		"-debug-addr", "127.0.0.1:0",
	)

	// Profiled 20q job through the dispatcher (?profile=true is the wire
	// form the dispatcher itself forwards to workers).
	resp, err := http.Post(disp.url("/v1/jobs?profile=true"), "application/json",
		bytes.NewReader(profileBundle(t, 7)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body: %v (%s)", err, body)
	}
	fin := waitDone(t, disp, sub.ID)

	prof, ok := fin["profile"].(map[string]any)
	if !ok {
		t.Fatalf("dispatcher status has no kernel table: %v", fin["profile"])
	}
	kernels, ok := prof["kernels"].([]any)
	if !ok || len(kernels) == 0 {
		t.Fatalf("kernel table empty: %v", prof)
	}
	totalNs, _ := prof["total_ns"].(float64)
	// The dispatcher's span log records its own stages; the execute span
	// lives on the owning worker's status doc. The "assigned" span note
	// names the worker and the remote job ID — follow it.
	spans, ok := fin["spans"].([]any)
	if !ok || len(spans) == 0 {
		t.Fatalf("status has no span log: %v", fin["spans"])
	}
	var workerAddr, remoteID string
	assignRE := regexp.MustCompile(`^(\S+) as (\S+)$`)
	for _, el := range spans {
		span, _ := el.(map[string]any)
		if span["stage"] == "assigned" {
			note, _ := span["note"].(string)
			if m := assignRE.FindStringSubmatch(note); m != nil {
				workerAddr, remoteID = m[1], m[2]
			}
		}
	}
	if workerAddr == "" || remoteID == "" {
		t.Fatalf("assignment not recorded in the span log: %v", fin["spans"])
	}
	wst := getJSON(t, "http://"+workerAddr+"/v1/jobs/"+remoteID, http.StatusOK)
	var execNs float64
	for _, el := range wst["spans"].([]any) {
		span, _ := el.(map[string]any)
		if span["stage"] == "execute" {
			execNs, _ = span["dur_ns"].(float64)
		}
	}
	if execNs <= 0 {
		t.Fatalf("no execute span on the worker status: %v", wst["spans"])
	}
	// The acceptance bound: kernel-time total within 10% of the execute
	// stage, observed through the dispatcher.
	if math.Abs(totalNs-execNs) > 0.10*execNs {
		t.Fatalf("kernel total %.0f ns vs execute span %.0f ns: off by more than 10%%", totalNs, execNs)
	}

	// Profiled 8-point sweep, scattered over both workers.
	resp, err = http.Post(disp.url("/v1/sweeps?profile=true"), "application/json",
		bytes.NewReader(profileSweepBundle(t, 8)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit = %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("sweep submit body: %v (%s)", err, body)
	}
	sfin := waitDone(t, disp, sub.ID)
	if sfin["progress"] != float64(1) {
		t.Fatalf("terminal sweep progress = %v", sfin["progress"])
	}
	ranges, ok := sfin["ranges"].([]any)
	if !ok || len(ranges) == 0 {
		t.Fatalf("sweep status has no range table: %v", sfin["ranges"])
	}
	for _, el := range ranges {
		r := el.(map[string]any)
		if r["state"] != "done" || r["worker"] == "" {
			t.Fatalf("unaccounted range: %v", r)
		}
	}
	sprof, ok := sfin["profile"].(map[string]any)
	if !ok {
		t.Fatalf("sweep status has no merged profile: %v", sfin["profile"])
	}
	if sprof["points"] != float64(8) || sprof["points_profiled"] != float64(8) {
		t.Fatalf("merged profile coverage: %v", sprof)
	}
	if kinds, ok := sprof["kinds"].([]any); !ok || len(kinds) == 0 {
		t.Fatalf("merged profile has no per-kind rows: %v", sprof)
	}

	// The always-on per-kind instruments are on the worker exposition.
	for _, name := range []string{"sim_kernels_total", "sim_kernel_seconds"} {
		if _, ok := scrapeMetrics(t, w1)[name]; !ok {
			t.Fatalf("worker /metrics missing %s", name)
		}
	}

	// The flight recorder on the dispatcher's debug listener has seen the
	// fleet forwards.
	debugRE := regexp.MustCompile(`msg="qmlserve debug listening" addr=(\S+)`)
	m := debugRE.FindStringSubmatch(disp.logs.String())
	if m == nil {
		t.Fatalf("debug listener address not logged:\n%s", disp.logs)
	}
	resp, err = http.Get("http://" + m[1] + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/events = %d (%s)", resp.StatusCode, body)
	}
	var events struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(body, &events); err != nil {
		t.Fatalf("/debug/events is not JSON: %v (%s)", err, body)
	}
	if events.Recorded == 0 || len(events.Events) == 0 {
		t.Fatal("flight recorder is empty after a dispatched fleet workload")
	}
	sawForward := false
	for _, ev := range events.Events {
		if ev.Kind == "fleet_forward" {
			sawForward = true
		}
	}
	if !sawForward {
		t.Fatalf("no fleet_forward event recorded: %s", body)
	}
}
