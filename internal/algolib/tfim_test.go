package algolib

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/sim"
)

func evolveTFIM(t *testing.T, reg *qdt.DataType, m *ising.Model, g, time float64, steps int) *sim.State {
	t.Helper()
	op, err := NewTFIMEvolution(reg, m, g, time, steps)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(qop.Sequence{op}, Registers{reg.ID: reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestTFIMSingleQubitAnalytic(t *testing.T) {
	// H = g·X on one qubit: |0⟩ evolves to P(1) = sin²(g·t), exactly
	// (no Trotter error: H commutes with itself).
	reg := intReg("spin", 1)
	m := ising.NewModel(1)
	g, time := 0.7, 1.3
	st := evolveTFIM(t, reg, m, g, time, 1)
	want := math.Pow(math.Sin(g*time), 2)
	if math.Abs(st.Probability(1)-want) > 1e-9 {
		t.Errorf("P(1) = %v, analytic %v", st.Probability(1), want)
	}
}

func TestTFIMDiagonalLimit(t *testing.T) {
	// g = 0 reduces to the exact diagonal evolution: basis probabilities
	// are untouched regardless of the step count requested.
	reg := intReg("spins", 3)
	m := ising.NewModel(3)
	m.SetJ(0, 1, 1)
	m.SetJ(1, 2, -0.5)
	m.H[0] = 0.3
	pb, err := NewPrepBasis(reg, 5)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewTFIMEvolution(reg, m, 0, 2.1, 16)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(qop.Sequence{pb, op}, Registers{"spins": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Probability(5)-1) > 1e-9 {
		t.Errorf("diagonal limit moved probability: P(5) = %v", st.Probability(5))
	}
}

// stateDistance returns 1 − |⟨a|b⟩| (0 for equal states up to phase).
func stateDistance(a, b *sim.State) float64 {
	var overlap complex128
	for k := 0; k < a.Dim(); k++ {
		overlap += cmplx.Conj(a.Amplitude(uint64(k))) * b.Amplitude(uint64(k))
	}
	return 1 - cmplx.Abs(overlap)
}

func TestTFIMTrotterConvergence(t *testing.T) {
	// For non-commuting H = Z₀Z₁ + g(X₀+X₁), coarser Trotterizations
	// must be farther from a fine-step reference, with roughly first-
	// order improvement.
	reg := intReg("pair", 2)
	m := ising.NewModel(2)
	m.SetJ(0, 1, 1)
	g, time := 0.8, 1.0
	ref := evolveTFIM(t, reg, m, g, time, 2048)
	d4 := stateDistance(ref, evolveTFIM(t, reg, m, g, time, 4))
	d16 := stateDistance(ref, evolveTFIM(t, reg, m, g, time, 16))
	d64 := stateDistance(ref, evolveTFIM(t, reg, m, g, time, 64))
	if !(d4 > d16 && d16 > d64) {
		t.Errorf("Trotter error not decreasing: %v, %v, %v", d4, d16, d64)
	}
	if d64 > 1e-3 {
		t.Errorf("64-step Trotter error %v too large", d64)
	}
}

func TestTFIMEnergyConservation(t *testing.T) {
	// ⟨H⟩ is conserved under e^{-iHt}. Start from a non-eigenstate
	// (basis |01⟩), evolve finely, and compare ⟨H⟩ before and after,
	// computed directly from the statevector.
	reg := intReg("pair", 2)
	m := ising.NewModel(2)
	m.SetJ(0, 1, 1)
	g := 0.6

	energy := func(st *sim.State) float64 {
		// ⟨H⟩ = Σ_k conj(ψ_k)·(Hψ)_k with H = Z₀Z₁ + g(X₀+X₁).
		total := complex(0, 0)
		for k := 0; k < st.Dim(); k++ {
			amp := st.Amplitude(uint64(k))
			if amp == 0 {
				continue
			}
			// Diagonal ZZ part.
			z0 := 1.0
			if k&1 == 1 {
				z0 = -1
			}
			z1 := 1.0
			if k&2 == 2 {
				z1 = -1
			}
			h := complex(z0*z1, 0) * amp
			// Off-diagonal X parts: X₀ couples k ↔ k^1, X₁ couples k ↔ k^2.
			h += complex(g, 0) * st.Amplitude(uint64(k^1))
			h += complex(g, 0) * st.Amplitude(uint64(k^2))
			total += cmplx.Conj(amp) * h
		}
		return real(total)
	}

	pb, err := NewPrepBasis(reg, 1)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := Lower(qop.Sequence{pb}, Registers{"pair": reg})
	if err != nil {
		t.Fatal(err)
	}
	before, err := sim.Evolve(prep.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	op, err := NewTFIMEvolution(reg, m, g, 2.0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Lower(qop.Sequence{pb, op}, Registers{"pair": reg})
	if err != nil {
		t.Fatal(err)
	}
	after, err := sim.Evolve(full.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	e0, e1 := energy(before), energy(after)
	if math.Abs(e0-e1) > 1e-3 {
		t.Errorf("energy not conserved: %v -> %v", e0, e1)
	}
	// And the state genuinely moved (non-trivial dynamics).
	if stateDistance(before, after) < 1e-3 {
		t.Error("evolution did nothing")
	}
}

func TestTFIMValidation(t *testing.T) {
	reg := intReg("r", 2)
	m := ising.NewModel(2)
	if _, err := NewTFIMEvolution(reg, m, 1, 1, 0); err == nil {
		t.Error("zero trotter steps accepted")
	}
}
