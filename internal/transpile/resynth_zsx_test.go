package transpile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestZSXIdentity(t *testing.T) {
	// RZ(α)·RY(β)·RZ(γ) = RZ(α+π)·SX·RZ(β+π)·SX·RZ(γ) up to phase, for
	// random angles.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		alpha := r.Float64()*6 - 3
		beta := r.Float64()*6 - 3
		gamma := r.Float64()*6 - 3
		rza, _ := gates.Unitary1(gates.RZ, []float64{alpha})
		ryb, _ := gates.Unitary1(gates.RY, []float64{beta})
		rzg, _ := gates.Unitary1(gates.RZ, []float64{gamma})
		want := gates.Mul2(rza, gates.Mul2(ryb, rzg))

		sx, _ := gates.Unitary1(gates.SX, nil)
		rzap, _ := gates.Unitary1(gates.RZ, []float64{alpha + math.Pi})
		rzbp, _ := gates.Unitary1(gates.RZ, []float64{beta + math.Pi})
		got := gates.Mul2(rzap, gates.Mul2(sx, gates.Mul2(rzbp, gates.Mul2(sx, rzg))))
		return gates.EqualUpToPhase2(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResynthesizeZSXStaysInBasis(t *testing.T) {
	c := circuit.New(1, 0)
	// A 10-gate run, already in the {sx, rz} vocabulary.
	for i := 0; i < 5; i++ {
		c.SXGate(0)
		c.RZ(0.3+float64(i)*0.2, 0)
	}
	out := Resynthesize(c, true)
	if out.Size() > 5 {
		t.Errorf("zsx resynthesis left %d gates, want ≤ 5", out.Size())
	}
	for _, ins := range out.Instrs {
		if ins.Gate != gates.SX && ins.Gate != gates.RZ {
			t.Errorf("zsx resynthesis emitted %q", ins.Gate)
		}
	}
	// Equivalence.
	s1, _ := sim.Evolve(c)
	s2, _ := sim.Evolve(out)
	if !equalUpToGlobalPhase(s1, s2, 1e-9) {
		t.Error("zsx resynthesis changed semantics")
	}
}

func TestResynthesizeZSXThreshold(t *testing.T) {
	// Runs of exactly 5 are left alone in zsx mode.
	c := circuit.New(1, 0)
	c.RZ(0.1, 0).SXGate(0).RZ(0.2, 0).SXGate(0).RZ(0.3, 0)
	out := Resynthesize(c, true)
	if out.Size() != 5 {
		t.Errorf("5-gate run rewritten to %d gates", out.Size())
	}
}

func TestTranspileLevel3NeverWorseThanLevel2OnBasis(t *testing.T) {
	// Property: for random circuits under the Listing-4 basis, level 3
	// output is never larger than level 2 output, and both are
	// semantically equivalent to the input.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const nq = 3
		c := circuit.New(nq, nq)
		randomPrep(c, seed^0x77)
		for i := 0; i < 20; i++ {
			switch r.Intn(5) {
			case 0:
				c.H(r.Intn(nq))
			case 1:
				c.T(r.Intn(nq))
			case 2:
				c.RY(r.Float64()*3, r.Intn(nq))
			case 3:
				a := r.Intn(nq)
				c.CX(a, (a+1)%nq)
			case 4:
				c.SXGate(r.Intn(nq))
			}
		}
		c.MeasureAll()
		opts2 := Options{BasisGates: listing4Basis, OptimizationLevel: 2}
		opts3 := Options{BasisGates: listing4Basis, OptimizationLevel: 3}
		r2, err2 := Transpile(c, opts2)
		r3, err3 := Transpile(c, opts3)
		if err2 != nil || err3 != nil {
			return false
		}
		if r3.Stats.SizeAfter > r2.Stats.SizeAfter {
			return false
		}
		return distsEqualQuick(clbitDistQuick(c), clbitDistQuick(r3.Circuit), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func distsEqualQuick(a, b map[uint64]float64, tol float64) bool {
	keys := map[uint64]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		if math.Abs(a[k]-b[k]) > tol {
			return false
		}
	}
	return true
}
