// Package graph provides the undirected weighted graphs used as Max-Cut and
// QUBO workloads by the proof-of-concept experiments, together with exact
// (brute force) Max-Cut evaluation for verifying backend results.
//
// The paper's §5 instance is Cycle(4) with unit weights; the benchmark
// harness additionally sweeps complete, grid and Erdős–Rényi graphs.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Edge is an undirected weighted edge between vertices U < V.
type Edge struct {
	U, V   int
	Weight float64
}

// Graph is a simple undirected weighted graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns an empty graph on n vertices. It panics if n < 0.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{N: n}
}

// AddEdge adds an undirected edge (u, v) with the given weight, normalizing
// endpoint order. Self-loops and out-of-range endpoints are rejected.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at vertex %d", u)
	}
	if u > v {
		u, v = v, u
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, Weight: w})
	return nil
}

// HasEdge reports whether an edge between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range g.Edges {
		if e.U == u && e.V == v {
			return true
		}
	}
	return false
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int {
	d := 0
	for _, e := range g.Edges {
		if e.U == v || e.V == v {
			d++
		}
	}
	return d
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.Edges {
		s += e.Weight
	}
	return s
}

// Neighbors returns the sorted neighbor list of v.
func (g *Graph) Neighbors(v int) []int {
	var ns []int
	for _, e := range g.Edges {
		switch v {
		case e.U:
			ns = append(ns, e.V)
		case e.V:
			ns = append(ns, e.U)
		}
	}
	sort.Ints(ns)
	return ns
}

// CutValue returns the total weight of edges crossing the cut described by
// assign, where assign[i] is the side (false = S̄, true = S) of vertex i.
// It panics if len(assign) != g.N.
func (g *Graph) CutValue(assign []bool) float64 {
	if len(assign) != g.N {
		panic(fmt.Sprintf("graph: assignment length %d != %d vertices", len(assign), g.N))
	}
	cut := 0.0
	for _, e := range g.Edges {
		if assign[e.U] != assign[e.V] {
			cut += e.Weight
		}
	}
	return cut
}

// CutValueBits is CutValue for a bitmask assignment (bit i = side of vertex
// i), convenient when enumerating all 2^n cuts.
func (g *Graph) CutValueBits(mask uint64) float64 {
	cut := 0.0
	for _, e := range g.Edges {
		if (mask>>uint(e.U))&1 != (mask>>uint(e.V))&1 {
			cut += e.Weight
		}
	}
	return cut
}

// MaxCutResult is the outcome of exact Max-Cut enumeration.
type MaxCutResult struct {
	Value       float64  // optimal cut weight
	Assignments []uint64 // every optimal bitmask (bit i = side of vertex i)
}

// MaxCutBruteForce enumerates all 2^(n-1) distinct cuts (vertex 0 pinned to
// side 0 to break the global flip symmetry, then both representatives of
// each optimal cut are reported). It panics for n > 30.
func (g *Graph) MaxCutBruteForce() MaxCutResult {
	if g.N > 30 {
		panic("graph: brute force limited to 30 vertices")
	}
	if g.N == 0 {
		return MaxCutResult{Value: 0, Assignments: []uint64{0}}
	}
	best := -1.0
	var bestMasks []uint64
	half := uint64(1) << uint(g.N-1) // vertex n-1 pinned to 0
	for m := uint64(0); m < half; m++ {
		v := g.CutValueBits(m)
		switch {
		case v > best:
			best = v
			bestMasks = bestMasks[:0]
			bestMasks = append(bestMasks, m)
		case v == best:
			bestMasks = append(bestMasks, m)
		}
	}
	// Report both global-flip representatives of each optimal cut, sorted,
	// so callers can match measured bitstrings directly.
	full := (uint64(1) << uint(g.N)) - 1
	seen := map[uint64]bool{}
	var all []uint64
	for _, m := range bestMasks {
		for _, rep := range [2]uint64{m, m ^ full} {
			if !seen[rep] {
				seen[rep] = true
				all = append(all, rep)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return MaxCutResult{Value: best, Assignments: all}
}

// Cycle returns the n-cycle 0-1-…-(n-1)-0 with unit weights. This is the
// paper's §5 workload for n=4.
func Cycle(n int) *Graph {
	g := New(n)
	if n < 3 {
		return g
	}
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n, 1); err != nil {
			panic(err) // unreachable by construction
		}
	}
	return g
}

// Path returns the n-vertex path 0-1-…-(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			panic(err)
		}
	}
	return g
}

// Complete returns K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j, 1); err != nil {
				panic(err)
			}
		}
	}
	return g
}

// Grid returns the rows×cols king-less grid graph with unit weights.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1), 1); err != nil {
					panic(err)
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c), 1); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// ErdosRenyi returns G(n, p) with unit weights, deterministically generated
// from seed.
func ErdosRenyi(n int, p float64, seed uint64) *Graph {
	g := New(n)
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				if err := g.AddEdge(i, j, 1); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// RandomWeighted assigns each edge of g a uniform weight in [lo, hi),
// returning a new graph with the same topology.
func RandomWeighted(g *Graph, lo, hi float64, seed uint64) *Graph {
	out := New(g.N)
	r := rng.New(seed)
	for _, e := range g.Edges {
		if err := out.AddEdge(e.U, e.V, lo+(hi-lo)*r.Float64()); err != nil {
			panic(err)
		}
	}
	return out
}

// Connected reports whether g is connected (the empty graph and singletons
// are considered connected).
func (g *Graph) Connected() bool {
	if g.N <= 1 {
		return true
	}
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := make([]bool, g.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == g.N
}
