package transpile

import (
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// zyz decomposes a one-qubit unitary (up to global phase) as
// U ∝ RZ(α)·RY(β)·RZ(γ).
func zyz(m gates.Matrix2) (alpha, beta, gamma float64) {
	// Normalize to SU(2).
	det := m[0][0]*m[1][1] - m[0][1]*m[1][0]
	scale := cmplx.Sqrt(det)
	if cmplx.Abs(scale) > 1e-15 {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				m[i][j] /= scale
			}
		}
	}
	// atan2 is numerically stable where acos(|a|) is not (|a| ≈ 1 with a
	// vanishing off-diagonal must give β = 0 exactly).
	cosHalf := cmplx.Abs(m[0][0])
	sinHalf := cmplx.Abs(m[1][0])
	beta = 2 * math.Atan2(sinHalf, cosHalf)
	switch {
	case sinHalf < 1e-12:
		// β ≈ 0: U is diagonal; only α+γ is defined.
		gamma = 0
		alpha = 2 * cmplx.Phase(m[1][1])
	case cosHalf < 1e-12:
		// β ≈ π: anti-diagonal; only α−γ is defined.
		gamma = 0
		alpha = 2 * cmplx.Phase(m[1][0])
	default:
		sum := 2 * cmplx.Phase(m[1][1])
		diff := 2 * cmplx.Phase(m[1][0])
		alpha = (sum + diff) / 2
		gamma = (sum - diff) / 2
	}
	return alpha, beta, gamma
}

// Resynthesize collapses every maximal run of single-qubit gates on one
// qubit into a canonical short form, dropping runs that multiply to the
// identity. With zsxBasis false the form is RZ(α)·RY(β)·RZ(γ) (3 gates,
// rewriting runs longer than 3); with zsxBasis true it is the hardware
// form RZ·SX·RZ·SX·RZ (5 gates, rewriting runs longer than 5, so the pass
// never inflates a basis-constrained circuit). One-qubit runs commute
// with instructions not touching their qubit, so each run is emitted
// immediately before the instruction that interrupts it. This is the
// optimization_level-3 pass.
func Resynthesize(c *circuit.Circuit, zsxBasis bool) *circuit.Circuit {
	out := circuit.New(c.NumQubits, c.NumClbits)
	pending := map[int][]circuit.Instruction{}
	threshold := 3
	if zsxBasis {
		threshold = 5
	}

	flush := func(q int) {
		run := pending[q]
		if len(run) == 0 {
			return
		}
		delete(pending, q)
		if len(run) <= threshold {
			for _, ins := range run {
				mustAppend(out, ins)
			}
			return
		}
		// Multiply the run (later gates to the left).
		prod := gates.Matrix2{{1, 0}, {0, 1}}
		ok := true
		for _, ins := range run {
			m, err := gates.Unitary1(ins.Gate, ins.Params)
			if err != nil {
				ok = false
				break
			}
			prod = gates.Mul2(m, prod)
		}
		if !ok {
			for _, ins := range run {
				mustAppend(out, ins)
			}
			return
		}
		id := gates.Matrix2{{1, 0}, {0, 1}}
		if gates.EqualUpToPhase2(prod, id, 1e-10) {
			return // run cancels entirely
		}
		alpha, beta, gamma := zyz(prod)
		emit := func(name gates.Name, angle float64) {
			if !angleZero(angle) {
				mustAppend(out, circuit.Instruction{Op: circuit.OpGate, Gate: name,
					Qubits: []int{q}, Params: []float64{angle}})
			}
		}
		emitSX := func() {
			mustAppend(out, circuit.Instruction{Op: circuit.OpGate, Gate: gates.SX, Qubits: []int{q}})
		}
		if zsxBasis {
			// U ∝ RZ(α)·RY(β)·RZ(γ) = RZ(α+π)·SX·RZ(β+π)·SX·RZ(γ)
			// (the standard U3 → hardware-basis identity, exact up to
			// global phase; verified by tests).
			emit(gates.RZ, gamma)
			emitSX()
			emit(gates.RZ, beta+math.Pi)
			emitSX()
			emit(gates.RZ, alpha+math.Pi)
		} else {
			emit(gates.RZ, gamma)
			emit(gates.RY, beta)
			emit(gates.RZ, alpha)
		}
	}
	flushAll := func() {
		qs := make([]int, 0, len(pending))
		for q := range pending {
			qs = append(qs, q)
		}
		sort.Ints(qs)
		for _, q := range qs {
			flush(q)
		}
	}

	for _, ins := range c.Instrs {
		if ins.Op == circuit.OpGate && len(ins.Qubits) == 1 {
			q := ins.Qubits[0]
			pending[q] = append(pending[q], ins)
			continue
		}
		if ins.Op == circuit.OpBarrier && len(ins.Qubits) == 0 {
			flushAll()
		} else {
			for _, q := range ins.Qubits {
				flush(q)
			}
		}
		mustAppend(out, ins)
	}
	flushAll()
	return out
}

func mustAppend(c *circuit.Circuit, ins circuit.Instruction) {
	if err := c.Append(ins); err != nil {
		panic(err) // instructions come from an already-valid circuit
	}
}
