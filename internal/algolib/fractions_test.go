package algolib

import (
	"testing"
	"testing/quick"

	"repro/internal/qop"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestConvergentsOfPi(t *testing.T) {
	// 355/113 is the classic convergent of π ≈ 3.14159265; expand
	// 3141592653/1000000000 and expect 3, 22/7, 333/106, 355/113 among
	// the convergents.
	convs, err := Convergents(3141592653, 1000000000)
	if err != nil {
		t.Fatal(err)
	}
	want := []Fraction{{3, 1}, {22, 7}, {333, 106}, {355, 113}}
	for _, w := range want {
		found := false
		for _, c := range convs {
			if c == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("convergent %d/%d missing from %v", w.P, w.Q, convs[:6])
		}
	}
}

func TestConvergentsExactLast(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		num := uint64(r.Intn(1000))
		den := uint64(1 + r.Intn(1000))
		convs, err := Convergents(num, den)
		if err != nil || len(convs) == 0 {
			return false
		}
		last := convs[len(convs)-1]
		// Exactness: last convergent equals num/den in lowest terms.
		return last.P*den == last.Q*num
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConvergentsZeroDen(t *testing.T) {
	if _, err := Convergents(1, 0); err == nil {
		t.Error("zero denominator accepted")
	}
}

func TestRecoverPeriodShorCase(t *testing.T) {
	// 7 mod 15 has order 4. QPE outcomes k ∈ {0,4,8,12} over 2^4: k=4
	// → 1/4 → r=4; k=12 → 3/4 → r=4; k=8 → 1/2 → r=2 fails verification
	// (7² = 4 ≠ 1), so ok=false; k=0 uninformative.
	cases := []struct {
		k      uint64
		wantR  uint64
		wantOK bool
	}{
		{4, 4, true},
		{12, 4, true},
		{8, 0, false},
		{0, 0, false},
	}
	for _, c := range cases {
		r, ok, err := RecoverPeriod(c.k, 4, 7, 15, 15)
		if err != nil {
			t.Fatal(err)
		}
		if ok != c.wantOK || r != c.wantR {
			t.Errorf("RecoverPeriod(k=%d) = %d, %v; want %d, %v", c.k, r, ok, c.wantR, c.wantOK)
		}
	}
}

func TestRecoverPeriodValidation(t *testing.T) {
	if _, _, err := RecoverPeriod(1, 0, 7, 15, 15); err == nil {
		t.Error("zero width accepted")
	}
	if _, _, err := RecoverPeriod(16, 4, 7, 15, 15); err == nil {
		t.Error("out-of-range outcome accepted")
	}
}

func TestOrderOf(t *testing.T) {
	cases := []struct {
		base, mod, want uint64
	}{
		{7, 15, 4}, {2, 15, 4}, {4, 15, 2}, {2, 7, 3}, {3, 7, 6},
	}
	for _, c := range cases {
		got, err := OrderOf(c.base, c.mod)
		if err != nil || got != c.want {
			t.Errorf("OrderOf(%d, %d) = %d, %v; want %d", c.base, c.mod, got, err, c.want)
		}
	}
	if _, err := OrderOf(5, 15); err == nil {
		t.Error("non-coprime base accepted")
	}
	if _, err := OrderOf(2, 1); err == nil {
		t.Error("modulus 1 accepted")
	}
}

func TestEndToEndOrderFinding(t *testing.T) {
	// Full pipeline: QPE over mod-exp, measure, continued fractions —
	// a majority of measurements must recover r = 4 for 7 mod 15.
	expReg := intReg("e", 4)
	tgtReg := intReg("y", 4)
	prepE, err := NewPrepUniform(expReg)
	if err != nil {
		t.Fatal(err)
	}
	prepY, err := NewPrepBasis(tgtReg, 1)
	if err != nil {
		t.Fatal(err)
	}
	modExp, err := NewModExp(expReg, tgtReg, 7, 15)
	if err != nil {
		t.Fatal(err)
	}
	iqft, err := NewQFT(expReg, 0, true, true)
	if err != nil {
		t.Fatal(err)
	}
	seq := qop.Sequence{prepE, prepY, modExp, iqft, NewMeasurement(expReg)}
	low, err := Lower(seq, Registers{"e": expReg, "y": tgtReg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(low.Circuit, sim.Options{Shots: 400, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	total := 0
	for k, count := range res.Counts {
		total += count
		r, ok, err := RecoverPeriod(k, 4, 7, 15, 15)
		if err != nil {
			t.Fatal(err)
		}
		if ok && r == 4 {
			recovered += count
		}
	}
	// k ∈ {4, 12} recover directly: 50 % of the ideal distribution.
	if frac := float64(recovered) / float64(total); frac < 0.4 {
		t.Errorf("period recovered in %v of shots, want ≥ 0.4", frac)
	}
}
