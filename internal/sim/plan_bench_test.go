package sim

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"repro/internal/circuit"
	"repro/internal/rng"
)

// deepCircuit builds the acceptance workload: layers of rz·sx·rz on every
// qubit followed by a CZ ring — the shape a transpiled variational circuit
// takes in the {sx, rz, cx/cz} basis. Three layers on 20 qubits exceed
// depth 64 (each CZ ring alone contributes a depth-n chain).
func deepCircuit(n, layers int) *circuit.Circuit {
	c := circuit.New(n, n)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RZ(0.17*float64(l*n+q+1), q)
		}
		for q := 0; q < n; q++ {
			c.SXGate(q)
		}
		for q := 0; q < n; q++ {
			c.RZ(0.31*float64(l*n+q+1), q)
		}
		for q := 0; q < n; q++ {
			c.CZGate(q, (q+1)%n)
		}
	}
	return c
}

// cxBrickworkCircuit builds the CX-heavy acceptance workload: brickwork
// layers of ry rotations, a CX ladder over even pairs, rz rotations, and a
// CX ladder over odd pairs — the entangler-sandwich shape of
// hardware-efficient ansätze and of the QFT/Grover arithmetic blocks. Every
// CX has single-qubit gates touching its operands on both sides, so the
// two-qubit dense fusion pass can fold 3–5 source gates into each 4×4
// kernel; without it every CX is its own bandwidth-bound sweep.
func cxBrickworkCircuit(n, layers int) *circuit.Circuit {
	c := circuit.New(n, 0)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(0.13*float64(l*n+q+1), q)
		}
		for q := 0; q+1 < n; q += 2 {
			c.CX(q, q+1)
		}
		for q := 0; q < n; q++ {
			c.RZ(0.29*float64(l*n+q+1), q)
		}
		for q := 1; q+1 < n; q += 2 {
			c.CX(q, q+1)
		}
	}
	return c
}

// BenchmarkFusedEvolveCX20 runs the CX-heavy brickwork circuit through the
// compiled plan path — the acceptance benchmark for the two-qubit dense
// fusion pass (≥1.3× over the PR 2 plan number on this circuit).
func BenchmarkFusedEvolveCX20(b *testing.B) {
	c := cxBrickworkCircuit(20, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evolve(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerGateEvolveCX20 is the per-gate reference on the same
// CX-heavy circuit.
func BenchmarkPerGateEvolveCX20(b *testing.B) {
	c := cxBrickworkCircuit(20, 4)
	b.ReportAllocs()
	benchEvolveDirect(b, c)
}

// benchEvolveDirect is the seed engine's shape: one sweep per gate, no
// fusion, fork-join parallelism inside each State method.
func benchEvolveDirect(b *testing.B, c *circuit.Circuit) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		st, err := NewState(c.NumQubits)
		if err != nil {
			b.Fatal(err)
		}
		for _, ins := range c.Instrs {
			if err := applyInstruction(st, ins); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPerGateEvolve20 is the baseline for the acceptance comparison:
// the deep 20-qubit circuit executed gate by gate.
func BenchmarkPerGateEvolve20(b *testing.B) {
	c := deepCircuit(20, 3)
	if d := c.Depth(); d < 64 {
		b.Fatalf("benchmark circuit depth %d < 64", d)
	}
	b.ReportAllocs()
	benchEvolveDirect(b, c)
}

// BenchmarkFusedEvolve20 executes the same circuit through the
// compile→fuse→shard engine (compilation included in the measured loop, as
// Run pays it too). The acceptance bar is ≥1.5× over
// BenchmarkPerGateEvolve20.
func BenchmarkFusedEvolve20(b *testing.B) {
	c := deepCircuit(20, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evolve(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFusedEvolve20Shards pins explicit shard counts to expose the
// scaling knob the serving layer drives.
func BenchmarkFusedEvolve20Shards(b *testing.B) {
	c := deepCircuit(20, 3)
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvolveShards(c, shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// monomialChainCircuit builds the monomial-heavy workload: brickwork
// layers whose pair kernels fuse from pure CX/CZ/SWAP chains plus
// phase-type single-qubit gates, so every dense 4×4 finalizes as
// permutation×phase and executes on the 4-multiply monomial sweep. An
// opening H layer spreads amplitude so the sweeps move real weight.
func monomialChainCircuit(n, layers int) *circuit.Circuit {
	c := circuit.New(n, 0)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for l := 0; l < layers; l++ {
		for q := 0; q+1 < n; q += 2 {
			c.CX(q, q+1)
			c.CZGate(q, q+1)
			c.S(q)
			c.CX(q+1, q)
		}
		for q := 1; q+1 < n; q += 2 {
			c.Swap(q, q+1)
			c.CX(q, q+1)
			c.T(q + 1)
			c.CZGate(q, q+1)
		}
	}
	return c
}

// BenchmarkMonomialEvolve20 runs the monomial-heavy circuit through the
// compiled plan — the acceptance benchmark for the permutation×phase
// fast path (4 complex multiplies per quadruple instead of 16×mul+12×add).
func BenchmarkMonomialEvolve20(b *testing.B) {
	c := monomialChainCircuit(20, 4)
	pl, err := Compile(c)
	if err != nil {
		b.Fatal(err)
	}
	if pl.Stats().Monomial2Q == 0 {
		b.Fatalf("benchmark circuit produced no monomial kernels: %+v", pl.Stats())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evolve(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCDF20 isolates the sampling CDF build over the split
// planes on a spread-out 20-qubit state: two full passes over 2^20
// amplitudes on the shard pool, fixed-block summation order.
func BenchmarkBuildCDF20(b *testing.B) {
	c := deepCircuit(20, 1)
	st, err := Evolve(c)
	if err != nil {
		b.Fatal(err)
	}
	pool := newShardPool(resolveShards(st.Dim(), 0))
	defer pool.close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, acc, _ := buildCDF(st, pool); acc <= 0 {
			b.Fatal("empty distribution")
		}
	}
}

// BenchmarkSamplingStage20 measures the full sampling stage as Run pays
// it — CDF build plus 4096 binary-search draws and register projections —
// on the same evolved 20-qubit state.
func BenchmarkSamplingStage20(b *testing.B) {
	c := deepCircuit(20, 1)
	c.MeasureAll()
	st, err := Evolve(c)
	if err != nil {
		b.Fatal(err)
	}
	mm := c.MeasureMap()
	qubits := make([]int, 0, len(mm))
	for q := range mm {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	pool := newShardPool(resolveShards(st.Dim(), 0))
	defer pool.close()
	const shots = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdf, acc, lastPos := buildCDF(st, pool)
		r := rng.New(42)
		counts := Counts{}
		for shot := 0; shot < shots; shot++ {
			k := sampleCDF(cdf, lastPos, r.Float64()*acc)
			counts[projectRegister(k, qubits, mm, 0, nil)]++
		}
		if counts.TotalShots() != shots {
			b.Fatal("lost shots")
		}
	}
}

// BenchmarkCompileDeep20 isolates plan construction — it must stay
// negligible next to a single statevector sweep.
func BenchmarkCompileDeep20(b *testing.B) {
	c := deepCircuit(20, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(c); err != nil {
			b.Fatal(err)
		}
	}
}
