// Command qmlserve runs the middle layer as an HTTP job service: the
// queued, job-ID-addressed consumption model of production quantum
// backends (IBM Quantum's job API, D-Wave Leap), backed by the
// internal/jobs worker pool and content-addressed result cache.
//
//	qmlserve -addr :8080 -workers 8 -queue 256 -cache 4096
//
// Submit the quickstart bundle and poll it:
//
//	curl -s -X POST --data-binary @job.json localhost:8080/v1/jobs
//	  → {"id":"job-00000001","state":"queued","cache_hit":false}
//	curl -s localhost:8080/v1/jobs/job-00000001
//	  → {"id":"job-00000001","state":"done","engine":"gate.aer_simulator",...}
//	curl -s localhost:8080/v1/jobs/job-00000001/result
//	  → {"engine":"gate.aer_simulator","samples":10000,"entries":[...]}
//	curl -s localhost:8080/v1/engines
//	curl -s localhost:8080/v1/stats
//
// Re-POSTing an identical bundle (same intent, context, shots, seed)
// returns a new job ID already in state "done" with "cache_hit": true —
// the result is served from the content-addressed cache without
// re-execution, visible in /v1/stats as cache_hits. A duplicate of a job
// that is *currently executing* coalesces onto it instead of running
// twice ("coalesced": true in its status, coalesced in /v1/stats).
//
// The pool doubles as the statevector shard scheduler: a job that starts
// while the pool is otherwise idle is granted -max-shards parallel shards
// (default GOMAXPROCS) so one big simulation spans every core, while jobs
// running alongside others stay single-shard. POST /v1/jobs?shards=N pins
// the grant per job; /v1/stats reports max_shards and wide_jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/jobs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	queue := flag.Int("queue", 64, "bounded queue depth (full queue → 429)")
	cache := flag.Int("cache", 1024, "result-cache entries (negative disables)")
	maxShards := flag.Int("max-shards", 0, "statevector shards granted to a lone simulation job (0 = GOMAXPROCS)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qmlserve [-addr :8080] [-workers n] [-queue n] [-cache n] [-max-shards n]")
		os.Exit(2)
	}

	pool := jobs.NewPool(jobs.Options{Workers: *workers, QueueDepth: *queue, CacheSize: *cache, MaxShards: *maxShards})
	srv := &http.Server{Addr: *addr, Handler: jobs.NewHandler(pool)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("qmlserve: listening on %s (engines: %v)", *addr, backend.Engines())

	select {
	case err := <-errc:
		log.Fatalf("qmlserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("qmlserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// DeadlineExceeded here means in-flight requests were cut off.
		log.Printf("qmlserve: shutdown: %v", err)
	}
	pool.Close()
	s := pool.Stats()
	log.Printf("qmlserve: done (submitted=%d completed=%d failed=%d cache_hits=%d)",
		s.Submitted, s.Completed, s.Failed, s.CacheHits)
}
