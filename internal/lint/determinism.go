package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismScopes are the simulation-core package-path suffixes where
// unseeded randomness breaks the bit-identical-counts contract. Packages
// that import internal/rng are in scope too, wherever they live — pulling
// in the deterministic generator and then reaching for math/rand's global
// state defeats the point.
var determinismScopes = []string{
	"internal/sim",
	"internal/gates",
	"internal/algolib",
}

// randConstructors are the math/rand (v1 and v2) package-level functions
// that build an explicitly seeded generator instead of touching shared
// global state. Everything else at package level is banned in scope.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Determinism enforces the internal/rng contract: simulation-core code
// never draws from math/rand's process-global source, never reseeds it,
// and never derives a seed from the wall clock. Sampled counts for a
// fixed bundle+shots+seed must be bit-identical across runs and hosts —
// the result cache, crash requeue, and fleet re-forwarding all compare
// or reuse counts on that assumption.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "sim-core randomness must flow through repro/internal/rng with an explicit seed",
		Run:  runDeterminism,
	}
}

func runDeterminism(p *Package) []Diagnostic {
	if !determinismInScope(p) {
		return nil
	}
	var diags []Diagnostic
	flagged := map[token.Pos]bool{} // nested seed calls share time.Now subtrees
	for _, f := range p.Files {
		if p.inTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := p.funcObj(call)
			if fn == nil {
				return true
			}
			if isMathRandPkgFunc(fn) && !randConstructors[fn.Name()] {
				msg := fmt.Sprintf("math/rand global-state call rand.%s; draw from repro/internal/rng with an explicit seed instead", fn.Name())
				if fn.Name() == "Seed" {
					msg = "rand.Seed reseeds the process-global source; construct a repro/internal/rng generator with an explicit seed instead"
				}
				diags = append(diags, Diagnostic{Pos: p.position(call), Analyzer: "determinism", Message: msg})
			}
			if isSeedingCall(fn) {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						inner, ok := m.(*ast.CallExpr)
						if !ok {
							return true
						}
						ifn := p.funcObj(inner)
						if ifn != nil && funcPkgPath(ifn) == "time" && ifn.Name() == "Now" && !flagged[inner.Pos()] {
							flagged[inner.Pos()] = true
							diags = append(diags, Diagnostic{
								Pos:      p.position(inner),
								Analyzer: "determinism",
								Message:  "time.Now()-derived seed: the same bundle+shots+seed must sample identical counts on every run",
							})
						}
						return true
					})
				}
			}
			return true
		})
	}
	return diags
}

func determinismInScope(p *Package) bool {
	for _, s := range determinismScopes {
		if hasPathSuffix(p.Path, s) {
			return true
		}
	}
	for _, imp := range p.Types.Imports() {
		if hasPathSuffix(imp.Path(), "internal/rng") {
			return true
		}
	}
	return false
}

func funcPkgPath(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isMathRandPkgFunc reports whether fn is a package-level function of
// math/rand or math/rand/v2 (methods on *rand.Rand are fine: those
// generators carry their own seeded state).
func isMathRandPkgFunc(fn *types.Func) bool {
	path := funcPkgPath(fn)
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isSeedingCall reports whether fn consumes a seed argument: the
// internal/rng constructors, or the math/rand constructor/reseed entry
// points. time.Now anywhere in those argument subtrees is a wall-clock
// seed.
func isSeedingCall(fn *types.Func) bool {
	if hasPathSuffix(funcPkgPath(fn), "internal/rng") && strings.HasPrefix(fn.Name(), "New") {
		return true
	}
	if isMathRandPkgFunc(fn) {
		switch fn.Name() {
		case "New", "NewSource", "Seed", "NewPCG", "NewChaCha8":
			return true
		}
	}
	// (*rand.Rand).Seed reseeds an explicit generator; a wall-clock seed
	// there is just as fatal to reproducibility.
	if pkg, typ := recvTypePkgPath(fn); pkg == "math/rand" && typ == "Rand" && fn.Name() == "Seed" {
		return true
	}
	return false
}
