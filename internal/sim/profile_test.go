package sim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// validKinds is the label enum the profiler may emit.
var validKinds = map[string]bool{
	"gate1q": true, "gate2q": true, "monomial": true, "diag": true,
	"permute": true, "ctrlphase": true, "init": true,
}

// TestProfileParity is the profiling-is-free contract: with identical
// options plus Profile, amplitudes and sampled counts are bit-identical
// to the unprofiled run — across shard grants {1, 4, GOMAXPROCS}.
func TestProfileParity(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	c := randomMixedCircuit(r, 10, 80)
	c.MeasureAll()
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		base, err := Run(c, Options{Shots: 1500, Seed: 7, Shards: shards, KeepState: true})
		if err != nil {
			t.Fatal(err)
		}
		prof, err := Run(c, Options{Shots: 1500, Seed: 7, Shards: shards, KeepState: true, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		if base.Profile != nil {
			t.Fatal("Profile set without Options.Profile")
		}
		if prof.Profile == nil {
			t.Fatal("Options.Profile set but Result.Profile is nil")
		}
		for i := uint64(0); i < uint64(base.Final.Dim()); i++ {
			// Exact equality — profiling wraps timers around sweeps, it must
			// never reorder or regroup the arithmetic.
			if a, b := base.Final.Amplitude(i), prof.Final.Amplitude(i); a != b {
				t.Fatalf("shards=%d amp[%d]: unprofiled %v != profiled %v", shards, i, a, b)
			}
		}
		if !reflect.DeepEqual(base.Counts, prof.Counts) {
			t.Fatalf("shards=%d: counts differ between profiled and unprofiled runs", shards)
		}
	}
}

// TestProfileContents sanity-checks the kernel table itself: every row
// carries a known kind, execution-order indexes, shard bounds that
// bracket the kernel time, and a total equal to the rowwise sum.
func TestProfileContents(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	c := randomMixedCircuit(r, 9, 60)
	for _, shards := range []int{1, 4} {
		res, err := Run(c, Options{Shards: shards, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		p := res.Profile
		if p == nil || len(p.Kernels) == 0 {
			t.Fatalf("shards=%d: empty profile", shards)
		}
		if p.Shards != shards {
			t.Fatalf("profile shards = %d, want %d", p.Shards, shards)
		}
		var total int64
		for i, k := range p.Kernels {
			if k.Index != i {
				t.Fatalf("kernel %d has index %d, want execution order", i, k.Index)
			}
			if !validKinds[k.Kind] {
				t.Fatalf("kernel %d has unknown kind %q", i, k.Kind)
			}
			if k.Support == 0 {
				t.Fatalf("kernel %d (%s) has empty support", i, k.Kind)
			}
			if k.ShardMinNs > k.ShardMaxNs {
				t.Fatalf("kernel %d: shard min %d > max %d", i, k.ShardMinNs, k.ShardMaxNs)
			}
			if k.Ns < 0 || k.ShardMinNs < 0 {
				t.Fatalf("kernel %d: negative timing", i)
			}
			if k.Imbalance < 0 || (shards == 1 && k.Imbalance > 1.000001 && k.ShardMaxNs > 0) {
				t.Fatalf("kernel %d: imbalance %v impossible for %d shard(s)", i, k.Imbalance, shards)
			}
			total += k.Ns
		}
		if total != p.TotalNs {
			t.Fatalf("TotalNs %d != sum of kernel rows %d", p.TotalNs, total)
		}
	}
}

// TestExecuteProfiledMatchesExecute proves the plan-level entry point
// yields the same final state as plain Execute.
func TestExecuteProfiledMatchesExecute(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	c := randomMixedCircuit(r, 8, 50)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	plain := mustStateQuick(8)
	if err := pl.Execute(plain, 4); err != nil {
		t.Fatal(err)
	}
	profiled := mustStateQuick(8)
	prof, err := pl.ExecuteProfiled(profiled, 4)
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil || len(prof.Kernels) == 0 {
		t.Fatal("ExecuteProfiled returned an empty profile")
	}
	for i := uint64(0); i < uint64(plain.Dim()); i++ {
		if a, b := plain.Amplitude(i), profiled.Amplitude(i); a != b {
			t.Fatalf("amp[%d]: %v != %v", i, a, b)
		}
	}
}
