package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// This file implements the compile-then-execute engine: a circuit is
// lowered once into a kernel sequence (Compile), and the kernels are then
// swept over the statevector by the persistent shard pool (Execute). The
// compile step fuses runs of single-qubit gates on the same qubit into one
// 2×2 matrix, merges consecutive diagonal/phase gates into a single
// diagonal kernel, and specializes controlled permutations, so a deep
// circuit needs far fewer bandwidth-bound sweeps than one per gate.

// kernelKind enumerates the sweep shapes the executor knows.
type kernelKind uint8

const (
	// kGate1Q applies a fused 2×2 unitary to one qubit, iterating the
	// 2^(n-1) amplitude pairs directly.
	kGate1Q kernelKind = iota
	// kGate2Q applies a fused dense 4×4 unitary to a qubit pair, iterating
	// the 2^(n-2) amplitude quadruples directly — the merged form of
	// CX/CZ/CP/SWAP chains on one pair together with the single-qubit
	// gates surrounding them.
	kGate2Q
	// kCtrlPerm swaps amplitude pairs over the subspace selected by
	// constrained bits — the specialization of CX, SWAP, CCX and CSWAP.
	kCtrlPerm
	// kCtrlPhase multiplies one phase onto the all-ones subspace of its
	// qubits — the specialization of CZ and CP before any merging.
	kCtrlPhase
	// kDiag multiplies a phase table indexed by a gathered local index —
	// the merged form of runs of diagonal gates.
	kDiag
	// kPermute and kInit are the scratch-buffer natives.
	kPermute
	kInit
)

// bitInsert expands a compact subspace index by one constrained bit; see
// expandIndex. Inserts are ordered by ascending bit position.
type bitInsert struct {
	low int // mask of the bits below the constrained position
	bit int // the constrained value, shifted into place
}

// expandIndex maps a compact index over the free bits to a full amplitude
// index with every constrained bit set to its required value.
func expandIndex(c int, inserts []bitInsert) int {
	for _, ins := range inserts {
		c = (c&^ins.low)<<1 | ins.bit | c&ins.low
	}
	return c
}

// kernel is one compiled sweep.
type kernel struct {
	kind    kernelKind
	support int  // bitmask of touched qubits
	diag    bool // diagonal in the computational basis

	// kGate1Q (q only) / kGate2Q (q is the lower qubit, q2 the higher)
	q  int
	q2 int
	m  gates.Matrix2
	m4 gates.Matrix4
	// Monomial decomposition of m4 (permutation × phase: exactly one
	// nonzero per row and column), precomputed at Compile finalize. The
	// sweep then costs 4 complex multiplies per quadruple instead of the
	// dense kernel's 16 multiplies + 12 adds: out[r] = mph[r]·in[msrc[r]].
	mono bool
	msrc [4]int
	mph  [4]complex128

	// kCtrlPerm / kCtrlPhase
	inserts []bitInsert
	free    int // number of unconstrained bits; the sweep runs 2^free trips
	flip    int // kCtrlPerm: XOR mask exchanging the amplitude pair
	phase   complex128

	// kDiag / kPermute / kInit (local indexing: qubits[k] is bit k)
	qubits []int
	masks  []int
	phases []complex128
	perm   []uint64
	amps   []complex128
}

// PlanStats reports what compilation achieved.
type PlanStats struct {
	// SourceOps counts compiled instructions (measurements and barriers
	// excluded).
	SourceOps int
	// Kernels is the length of the compiled sequence; SourceOps−Kernels
	// sweeps were eliminated by fusion.
	Kernels int
	// Fused1Q counts single-qubit gates folded into an earlier 2×2 kernel.
	Fused1Q int
	// Fused2Q counts gates of any arity folded into a dense 4×4 two-qubit
	// kernel: same-pair CX/CZ/CP/SWAP chains, the single-qubit gates
	// surrounding them, and pair-local diagonals.
	Fused2Q int
	// MergedDiag counts diagonal gates (CZ/CP/Diagonal) merged into an
	// earlier phase kernel.
	MergedDiag int
	// Monomial2Q counts dense 4×4 kernels that finalized as permutation ×
	// phase — pure CX/CZ/SWAP/S-style chains — and execute on the
	// 4-multiply monomial sweep instead of the full dense sweep.
	Monomial2Q int
}

// Plan is a compiled circuit: a kernel sequence ready to execute against
// any state with the right qubit count. Plans are immutable after Compile
// and safe for concurrent Execute calls on distinct states.
type Plan struct {
	n       int
	kernels []kernel
	stats   PlanStats
}

// NumQubits returns the qubit count the plan was compiled for.
func (pl *Plan) NumQubits() int { return pl.n }

// Stats returns the compile-time fusion statistics.
func (pl *Plan) Stats() PlanStats { return pl.stats }

// maxFuseScan bounds how far the compiler looks back for a fusion partner
// while hopping over commuting kernels, so compilation stays linear in
// depth. 64 comfortably covers a full layer on MaxQubits qubits.
const maxFuseScan = 64

// maxDiagFuseQubits caps the qubit support of a merged diagonal kernel;
// the phase table holds 2^k entries and the gather costs k operations per
// amplitude, so growth past a cache line of table stops paying.
const maxDiagFuseQubits = 8

// Compile lowers a circuit into a kernel plan. It performs all static
// validation (qubit bounds, operand distinctness, init normalization), so
// Execute can sweep without per-gate checks. Measurements must be
// terminal, exactly as in Evolve.
func Compile(c *circuit.Circuit) (*Plan, error) {
	if c.NumQubits < 1 || c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", c.NumQubits, MaxQubits)
	}
	pl := &Plan{n: c.NumQubits}
	seenMeasure := false
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpMeasure:
			seenMeasure = true
			continue
		case circuit.OpBarrier:
			continue
		}
		if seenMeasure {
			return nil, fmt.Errorf("sim: instruction %d follows a measurement; mid-circuit measurement is not supported by the statevector engine", idx)
		}
		if err := pl.lower(ins); err != nil {
			return nil, fmt.Errorf("sim: instruction %d: %w", idx, err)
		}
		pl.stats.SourceOps++
	}
	// Finalize: fusion is done mutating kernels, so monomial structure is
	// now stable. A dense 4×4 that ended up permutation×phase (a pure
	// CX/CZ/SWAP chain, possibly with X/Z/S-style 1Q gates folded in)
	// downgrades to the 4-multiply monomial sweep.
	for i := range pl.kernels {
		k := &pl.kernels[i]
		if k.kind != kGate2Q {
			continue
		}
		if src, ph, ok := monomial4(k.m4); ok {
			k.mono, k.msrc, k.mph = true, src, ph
			pl.stats.Monomial2Q++
		}
	}
	pl.stats.Kernels = len(pl.kernels)
	return pl, nil
}

// monomial4 decomposes m as out[r] = ph[r]·in[src[r]] when every row and
// column holds exactly one nonzero entry. The zero test is exact, like
// isDiag4's: products and Kronecker factors of exact-zero patterns stay
// exactly zero, so gate chains that are structurally permutation×phase
// are recognized without a tolerance; a false negative only costs the
// fast path, never correctness.
func monomial4(m gates.Matrix4) (src [4]int, ph [4]complex128, ok bool) {
	var colUsed [4]bool
	for r := 0; r < 4; r++ {
		found := -1
		for c := 0; c < 4; c++ {
			if m[r][c] != 0 {
				if found >= 0 {
					return src, ph, false
				}
				found = c
			}
		}
		if found < 0 || colUsed[found] {
			return src, ph, false
		}
		colUsed[found] = true
		src[r] = found
		ph[r] = m[r][found]
	}
	return src, ph, true
}

func (pl *Plan) checkQubits(qs ...int) error {
	seen := 0
	for _, q := range qs {
		if q < 0 || q >= pl.n {
			return fmt.Errorf("sim: qubit %d out of [0,%d)", q, pl.n)
		}
		if seen&(1<<q) != 0 {
			return fmt.Errorf("sim: duplicate qubit %d", q)
		}
		seen |= 1 << q
	}
	return nil
}

// lower turns one instruction into a primitive kernel and appends it with
// fusion.
func (pl *Plan) lower(ins circuit.Instruction) error {
	switch ins.Op {
	case circuit.OpGate:
		switch ins.Gate {
		case gates.CX:
			return pl.lower2Q(ins.Gate, ins.Qubits[0], ins.Qubits[1])
		case gates.SWAP:
			return pl.lower2Q(ins.Gate, ins.Qubits[0], ins.Qubits[1])
		case gates.CCX:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]}, 1<<ins.Qubits[2])
		case gates.CSWAP:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]},
				1<<ins.Qubits[1]|1<<ins.Qubits[2])
		case gates.CZ:
			return pl.lowerCtrlPhase(ins.Qubits, -1)
		case gates.CP:
			return pl.lowerCtrlPhase(ins.Qubits, cmplx.Exp(complex(0, ins.Params[0])))
		default:
			m, err := gates.Unitary1(ins.Gate, ins.Params)
			if err != nil {
				return err
			}
			q := ins.Qubits[0]
			if err := pl.checkQubits(q); err != nil {
				return err
			}
			pl.fuse1Q(kernel{
				kind: kGate1Q, support: 1 << q, q: q, m: m,
				diag: m[0][1] == 0 && m[1][0] == 0,
			})
			return nil
		}
	case circuit.OpDiagonal:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		k := kernel{kind: kDiag, diag: true}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.phases = append([]complex128(nil), ins.Phases...)
		k.finishDiag()
		pl.fuseDiag(k)
		return nil
	case circuit.OpPermute:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Perm) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: permutation table size %d != 2^%d", len(ins.Perm), len(ins.Qubits))
		}
		k := kernel{kind: kPermute, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.perm = append([]uint64(nil), ins.Perm...)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	case circuit.OpInit:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Amps) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: init state size %d != 2^%d", len(ins.Amps), len(ins.Qubits))
		}
		norm := 0.0
		for _, a := range ins.Amps {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		if math.Abs(norm-1) > 1e-9 {
			return fmt.Errorf("sim: init state not normalized (norm² = %v)", norm)
		}
		k := kernel{kind: kInit, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.amps = append([]complex128(nil), ins.Amps...)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	}
	return fmt.Errorf("sim: unhandled opcode %d", ins.Op)
}

// lowerCtrlPerm builds the subspace-swap kernel for CCX/CSWAP (and for
// CX/SWAP when dense fusion finds no partner): ones lists bits constrained
// to 1, zeros bits constrained to 0 (the pair member the sweep visits),
// flip exchanges the pair.
func (pl *Plan) lowerCtrlPerm(ones, zeros []int, flip int) error {
	qs := append(append([]int(nil), ones...), zeros...)
	if err := pl.checkQubits(qs...); err != nil {
		return err
	}
	pl.kernels = append(pl.kernels, newCtrlPerm(ones, zeros, flip, pl.n))
	return nil
}

func newCtrlPerm(ones, zeros []int, flip, n int) kernel {
	qs := append(append([]int(nil), ones...), zeros...)
	return kernel{
		kind:    kCtrlPerm,
		support: qubitMask(qs),
		inserts: makeInserts(ones, zeros),
		free:    n - len(qs),
		flip:    flip,
	}
}

// lower2Q lowers CX or SWAP through the dense-fusion scan: the gate folds
// with any earlier kernels on its pair into one 4×4 unitary, or keeps its
// cheap subspace-exchange form when nothing folds.
func (pl *Plan) lower2Q(g gates.Name, a, b int) error {
	if err := pl.checkQubits(a, b); err != nil {
		return err
	}
	qLo, qHi := min(a, b), max(a, b)
	var m gates.Matrix4
	var plain kernel
	switch g {
	case gates.CX:
		m = mat4CX(a == qHi)
		plain = newCtrlPerm([]int{a}, []int{b}, 1<<b, pl.n)
	case gates.SWAP:
		m = mat4Swap()
		plain = newCtrlPerm([]int{a}, []int{b}, 1<<a|1<<b, pl.n)
	}
	pl.fuse2Q(qLo, qHi, m, plain)
	return nil
}

func (pl *Plan) lowerCtrlPhase(qubits []int, ph complex128) error {
	if err := pl.checkQubits(qubits...); err != nil {
		return err
	}
	k := kernel{
		kind:    kCtrlPhase,
		support: qubitMask(qubits),
		diag:    true,
		inserts: makeInserts(qubits, nil),
		free:    pl.n - len(qubits),
		phase:   ph,
	}
	k.qubits = append([]int(nil), qubits...)
	pl.fuseDiag(k)
	return nil
}

// makeInserts builds the bit-insert list for the constrained positions:
// ones are fixed to 1, zeros to 0. Positions must be distinct.
func makeInserts(ones, zeros []int) []bitInsert {
	type con struct{ pos, val int }
	cons := make([]con, 0, len(ones)+len(zeros))
	for _, p := range ones {
		cons = append(cons, con{p, 1})
	}
	for _, p := range zeros {
		cons = append(cons, con{p, 0})
	}
	// Insertion sort by position ascending (≤ 3 constraints in practice).
	for i := 1; i < len(cons); i++ {
		for j := i; j > 0 && cons[j].pos < cons[j-1].pos; j-- {
			cons[j], cons[j-1] = cons[j-1], cons[j]
		}
	}
	inserts := make([]bitInsert, len(cons))
	for i, c := range cons {
		inserts[i] = bitInsert{low: 1<<c.pos - 1, bit: c.val << c.pos}
	}
	return inserts
}

func qubitMask(qs []int) int {
	m := 0
	for _, q := range qs {
		m |= 1 << q
	}
	return m
}

func qubitMasks(qs []int) []int {
	masks := make([]int, len(qs))
	for i, q := range qs {
		masks[i] = 1 << q
	}
	return masks
}

// finishDiag derives the cached fields of a kDiag kernel from its qubit
// list.
func (k *kernel) finishDiag() {
	k.support = qubitMask(k.qubits)
	k.masks = qubitMasks(k.qubits)
}

// commutes reports whether two kernels commute: disjoint qubit support, or
// both diagonal in the computational basis. The fusion scan may hop over a
// commuting kernel without changing circuit semantics.
func commutes(a, b *kernel) bool {
	return a.support&b.support == 0 || (a.diag && b.diag)
}

// ---- dense two-qubit fusion ----

var id2 = gates.Matrix2{{1, 0}, {0, 1}}

// mat4CX returns CX over the local pair basis: ctrlHigh selects whether
// the control sits on local bit 1 (the higher qubit position) or bit 0.
func mat4CX(ctrlHigh bool) gates.Matrix4 {
	if ctrlHigh {
		return gates.Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}}
	}
	return gates.Matrix4{{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}}
}

func mat4Swap() gates.Matrix4 {
	return gates.Matrix4{{1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}}
}

func mat4CPhase(ph complex128) gates.Matrix4 {
	return gates.Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, ph}}
}

// isDiag4 reports whether every off-diagonal entry is exactly zero (float
// products of diagonal factors stay exactly diagonal, so the check is not
// tolerance-sensitive; a false negative only costs a fusion hop).
func isDiag4(m gates.Matrix4) bool {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && m[i][j] != 0 {
				return false
			}
		}
	}
	return true
}

// isPairSupport reports whether the mask covers exactly two qubits.
func isPairSupport(mask int) bool {
	return bits.OnesCount(uint(mask)) == 2
}

// diag4For maps a diagonal kernel with support ⊆ {qLo, qHi} onto the
// four-entry diagonal over the pair's local basis.
func diag4For(k *kernel, qLo, qHi int) [4]complex128 {
	if k.kind == kCtrlPhase {
		return [4]complex128{1, 1, 1, k.phase}
	}
	var d [4]complex128
	for l := 0; l < 4; l++ {
		dl := 0
		for bit, q := range k.qubits {
			if (q == qLo && l&1 != 0) || (q == qHi && l&2 != 0) {
				dl |= 1 << bit
			}
		}
		d[l] = k.phases[dl]
	}
	return d
}

// expand2Q returns a foldable kernel's 4×4 unitary in the local basis of
// the pair (qLo, qHi): bit 0 is qLo's value, bit 1 is qHi's.
func expand2Q(t *kernel, qLo, qHi int) gates.Matrix4 {
	switch t.kind {
	case kGate2Q:
		return t.m4
	case kGate1Q:
		if t.q == qHi {
			return gates.Kron2(t.m, id2)
		}
		return gates.Kron2(id2, t.m)
	case kCtrlPhase:
		return mat4CPhase(t.phase)
	case kCtrlPerm:
		if t.flip == t.support {
			return mat4Swap()
		}
		return mat4CX(t.support&^t.flip == 1<<qHi)
	case kDiag:
		var m gates.Matrix4
		d := diag4For(t, qLo, qHi)
		for l := 0; l < 4; l++ {
			m[l][l] = d[l]
		}
		return m
	}
	return gates.Matrix4{}
}

// fold2QPartner reports whether t can fold into a dense 4×4 on the pair:
// any kernel on exactly that pair, a single-qubit kernel on either qubit,
// or a pair-local diagonal table.
func fold2QPartner(t *kernel, pairMask int) bool {
	switch t.kind {
	case kGate2Q, kCtrlPerm, kCtrlPhase:
		return t.support == pairMask
	case kGate1Q, kDiag:
		return t.support&^pairMask == 0
	}
	return false
}

// toGate2Q rewrites a two-qubit specialized kernel (kCtrlPerm for CX/SWAP,
// or kCtrlPhase) in place as the equivalent dense 4×4 kernel.
func (k *kernel) toGate2Q() {
	qLo := bits.TrailingZeros(uint(k.support))
	qHi := bits.Len(uint(k.support)) - 1
	m := expand2Q(k, qLo, qHi)
	*k = kernel{
		kind: kGate2Q, support: 1<<qLo | 1<<qHi,
		q: qLo, q2: qHi, m4: m, diag: k.diag,
	}
}

// fuse2Q appends a two-qubit gate on the pair (qLo, qHi), scanning back
// over commuting kernels and absorbing every foldable kernel it reaches —
// earlier dense 4×4s, specialized same-pair CX/SWAP/CZ/CP kernels,
// single-qubit kernels on either qubit, and pair-local diagonals — into
// one dense 4×4 unitary, mirroring fuse1Q's commute-aware backward scan.
// Partners are composed in program order (the matrix product accumulates
// latest-first on the left), and each absorbed kernel is removed from the
// sequence; hopped kernels commute with the pair's support, so reordering
// the partners to the append point preserves circuit semantics. When
// nothing folds the gate keeps its specialized form (plain): a lone CX
// sweeps only half the state as a pair exchange, which a dense 4×4 — a
// full-state sweep — would make slower, not faster.
func (pl *Plan) fuse2Q(qLo, qHi int, m gates.Matrix4, plain kernel) {
	pairMask := 1<<qLo | 1<<qHi
	probe := kernel{support: pairMask}
	folded := false
	floor := len(pl.kernels) - maxFuseScan
	if floor < 0 {
		floor = 0
	}
	for i := len(pl.kernels) - 1; i >= floor; i-- {
		t := &pl.kernels[i]
		if fold2QPartner(t, pairMask) {
			m = gates.Mul4(m, expand2Q(t, qLo, qHi))
			pl.kernels = append(pl.kernels[:i], pl.kernels[i+1:]...)
			pl.stats.Fused2Q++
			folded = true
			continue
		}
		if !commutes(t, &probe) {
			break
		}
	}
	if !folded {
		pl.kernels = append(pl.kernels, plain)
		return
	}
	pl.kernels = append(pl.kernels, kernel{
		kind: kGate2Q, support: pairMask,
		q: qLo, q2: qHi, m4: m, diag: isDiag4(m),
	})
}

// fuse1Q appends a single-qubit kernel, first scanning back over commuting
// kernels for a fold target: an earlier single-qubit kernel on the same
// qubit, or a dense two-qubit kernel covering the qubit. A non-commuting
// two-qubit specialized kernel (CX/SWAP/CZ/CP) on the qubit promotes to a
// dense 4×4 and absorbs the gate — that trade replaces a full one-qubit
// sweep plus the pair sweep with one full sweep.
func (pl *Plan) fuse1Q(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kGate1Q && t.q == k.q {
			t.m = gates.Mul2(k.m, t.m) // t ran first: new = k·t
			t.diag = t.diag && k.diag
			pl.stats.Fused1Q++
			return
		}
		if t.kind == kGate2Q && t.support&k.support != 0 {
			t.m4 = gates.Mul4(expand2Q(&k, t.q, t.q2), t.m4)
			t.diag = t.diag && k.diag
			pl.stats.Fused2Q++
			return
		}
		if commutes(t, &k) {
			// Hopping before considering promotion lets a diagonal
			// single-qubit gate pass over a controlled phase unchanged, so
			// CZ/CP runs keep merging as cheap phase kernels.
			continue
		}
		if (t.kind == kCtrlPerm || t.kind == kCtrlPhase) && isPairSupport(t.support) {
			// Non-commuting, so t touches k.q: promote and fold.
			t.toGate2Q()
			t.m4 = gates.Mul4(expand2Q(&k, t.q, t.q2), t.m4)
			t.diag = t.diag && k.diag
			pl.stats.Fused2Q++
			return
		}
		break
	}
	pl.kernels = append(pl.kernels, k)
}

// fuseDiag appends a diagonal kernel (kCtrlPhase or kDiag), merging it
// into an earlier phase kernel when the combined qubit support stays
// within maxDiagFuseQubits, or into a dense two-qubit kernel covering its
// support. Two controlled phases on the same qubit pair collapse without
// building a table at all.
func (pl *Plan) fuseDiag(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kCtrlPhase && k.kind == kCtrlPhase && t.support == k.support {
			t.phase *= k.phase
			pl.stats.MergedDiag++
			return
		}
		if t.kind == kGate2Q && k.support&^t.support == 0 {
			// The diagonal acts only on the dense kernel's pair: scale the
			// 4×4's rows in place.
			d := diag4For(&k, t.q, t.q2)
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					t.m4[r][c] *= d[r]
				}
			}
			pl.stats.Fused2Q++
			return
		}
		if (t.kind == kCtrlPhase || t.kind == kDiag) &&
			bits.OnesCount(uint(t.support|k.support)) <= maxDiagFuseQubits {
			t.toDiag()
			mergeDiag(t, &k)
			pl.stats.MergedDiag++
			return
		}
		if !commutes(t, &k) {
			break
		}
	}
	pl.kernels = append(pl.kernels, k)
}

// toDiag rewrites a kCtrlPhase kernel as an equivalent kDiag table (the
// identity everywhere except the all-ones local index).
func (k *kernel) toDiag() {
	if k.kind != kCtrlPhase {
		return
	}
	n := len(k.qubits)
	phases := make([]complex128, 1<<n)
	for i := range phases {
		phases[i] = 1
	}
	phases[len(phases)-1] = k.phase
	k.kind = kDiag
	k.phases = phases
	k.inserts = nil
	k.finishDiag()
}

// mergeDiag folds src (kCtrlPhase or kDiag) into the kDiag kernel dst,
// extending dst's qubit list with src's new qubits and multiplying the
// phase tables pointwise over the union index space.
func mergeDiag(dst, src *kernel) {
	src.toDiag()
	union := append([]int(nil), dst.qubits...)
	for _, q := range src.qubits {
		if qubitMask(union)&(1<<q) == 0 {
			union = append(union, q)
		}
	}
	// posIn[i] maps union bit i to the kernel's local bit, or -1.
	posIn := func(k *kernel) []int {
		pos := make([]int, len(union))
		for i, uq := range union {
			pos[i] = -1
			for j, q := range k.qubits {
				if q == uq {
					pos[i] = j
					break
				}
			}
		}
		return pos
	}
	dstPos, srcPos := posIn(dst), posIn(src)
	phases := make([]complex128, 1<<len(union))
	for local := range phases {
		dl, sl := 0, 0
		for i := 0; i < len(union); i++ {
			if local>>i&1 == 1 {
				if dstPos[i] >= 0 {
					dl |= 1 << dstPos[i]
				}
				if srcPos[i] >= 0 {
					sl |= 1 << srcPos[i]
				}
			}
		}
		phases[local] = dst.phases[dl] * src.phases[sl]
	}
	dst.qubits = union
	dst.phases = phases
	dst.finishDiag()
}

// Execute applies the plan to st, sweeping each kernel across the shard
// pool with a barrier between kernels. shards ≤ 0 selects automatically
// (single-shard below the parallel threshold, GOMAXPROCS above).
func (pl *Plan) Execute(st *State, shards int) error {
	if st.n != pl.n {
		return fmt.Errorf("sim: plan compiled for %d qubits, state has %d", pl.n, st.n)
	}
	pool := newShardPool(resolveShards(len(st.amps), shards))
	defer pool.close()
	return pl.executeOn(st, pool)
}

// executeOn runs the kernel sequence on an existing pool; Run reuses the
// same pool afterwards for the CDF build.
func (pl *Plan) executeOn(st *State, pool *shardPool) error {
	a := st.amps
	for i := range pl.kernels {
		k := &pl.kernels[i]
		switch k.kind {
		case kGate1Q:
			stride := 1 << k.q
			m := k.m
			pool.do(len(a)/2, func(_, lo, hi int) {
				sweep1QAuto(a, m, stride, lo, hi)
			})
		case kGate2Q:
			maskLo, maskHi := 1<<k.q, 1<<k.q2
			if k.mono {
				src, ph := &k.msrc, &k.mph
				pool.do(len(a)/4, func(_, lo, hi int) {
					sweep2QMonoAuto(a, src, ph, maskLo, maskHi, lo, hi)
				})
				break
			}
			m := &k.m4
			pool.do(len(a)/4, func(_, lo, hi int) {
				sweep2QAuto(a, m, maskLo, maskHi, lo, hi)
			})
		case kCtrlPerm:
			pool.do(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPerm(a, k.inserts, k.flip, lo, hi)
			})
		case kCtrlPhase:
			pool.do(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPhase(a, k.inserts, k.phase, lo, hi)
			})
		case kDiag:
			pool.do(len(a), func(_, lo, hi int) {
				sweepDiag(a, k.masks, k.phases, lo, hi)
			})
		case kPermute:
			src := st.scratchBuf()
			pool.do(len(a), func(_, lo, hi int) {
				copy(src[lo:hi], a[lo:hi])
			})
			pool.do(len(a), func(_, lo, hi int) {
				sweepPermute(a, src, k.masks, k.perm, lo, hi)
			})
		case kInit:
			anyMask := k.support
			src := st.scratchBuf()
			bad := make([]int, pool.shards)
			for i := range bad {
				bad[i] = -1
			}
			pool.do(len(a), func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i&anyMask != 0 && cmplx.Abs(a[i]) > 1e-12 && bad[w] < 0 {
						bad[w] = i
					}
				}
				copy(src[lo:hi], a[lo:hi])
			})
			for _, b := range bad {
				if b >= 0 {
					return fmt.Errorf("sim: init target qubits not in |0…0⟩ (amplitude at %d)", b)
				}
			}
			amps := k.amps
			pool.do(len(a), func(_, lo, hi int) {
				sweepInit(a, src, k.masks, anyMask, amps, lo, hi)
			})
		}
	}
	return nil
}

// ---- sweep bodies, shared by plan execution and the State methods ----

// blockedStrideMin is the smallest kernel stride worth the cache-blocked
// sweep form: below it the contiguous runs are too short for the per-run
// setup to pay off.
const blockedStrideMin = 64

// cacheBlockAmps bounds the contiguous run length of a blocked sweep so
// each block's quadrant slices (2 streams for a 1Q kernel, 4 for a 2Q one)
// stay L2-resident while they are being transformed: 4096 amplitudes per
// stream is 64 KiB, at most 256 KiB in flight.
const cacheBlockAmps = 1 << 12

// sweep1Q applies a 2×2 unitary to the amplitude pairs indexed by
// [lo, hi) ⊂ [0, 2^(n-1)): pair p expands to indices (i, i|stride) with
// the target bit cleared and set.
func sweep1Q(a []complex128, m gates.Matrix2, stride, lo, hi int) {
	low := stride - 1
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	for p := lo; p < hi; p++ {
		i := (p&^low)<<1 | p&low
		j := i | stride
		a0, a1 := a[i], a[j]
		a[i] = m00*a0 + m01*a1
		a[j] = m10*a0 + m11*a1
	}
}

// sweep1QBlocked is the cache-blocked form for high-stride targets: the
// pair index expands once per block and the two half-streams then advance
// as plain consecutive runs, bounded by cacheBlockAmps so both halves stay
// cache-resident while being transformed. Per-pair bit surgery disappears
// from the inner loop.
func sweep1QBlocked(a []complex128, m gates.Matrix2, stride, lo, hi int) {
	low := stride - 1
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	for p := lo; p < hi; {
		i := (p&^low)<<1 | p&low
		run := stride - p&low
		if run > hi-p {
			run = hi - p
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		// The two half-streams as equal-length slices: the bounds checks
		// vanish from the inner loop.
		h0 := a[i : i+run]
		h1 := a[i|stride:][:run]
		for r := range h0 {
			a0, a1 := h0[r], h1[r]
			h0[r] = m00*a0 + m01*a1
			h1[r] = m10*a0 + m11*a1
		}
		p += run
	}
}

// sweep1QAuto picks the blocked sweep for high-stride targets.
func sweep1QAuto(a []complex128, m gates.Matrix2, stride, lo, hi int) {
	if stride >= blockedStrideMin {
		sweep1QBlocked(a, m, stride, lo, hi)
		return
	}
	sweep1Q(a, m, stride, lo, hi)
}

// sweep2Q applies a dense 4×4 unitary to the amplitude quadruples indexed
// by [lo, hi) ⊂ [0, 2^(n-2)): quad c expands to the base index i with both
// pair bits clear; its partners sit at i|maskLo, i|maskHi and i|both.
func sweep2Q(a []complex128, m *gates.Matrix4, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	for c := lo; c < hi; c++ {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		j := i | maskLo
		k := i | maskHi
		l := j | maskHi
		a0, a1, a2, a3 := a[i], a[j], a[k], a[l]
		a[i] = m00*a0 + m01*a1 + m02*a2 + m03*a3
		a[j] = m10*a0 + m11*a1 + m12*a2 + m13*a3
		a[k] = m20*a0 + m21*a1 + m22*a2 + m23*a3
		a[l] = m30*a0 + m31*a1 + m32*a2 + m33*a3
	}
}

// sweep2QBlocked is the cache-blocked form for pairs whose lower qubit is
// high: the quadruple index expands once per block and the four quadrant
// streams advance as consecutive runs bounded by cacheBlockAmps, keeping
// all four slices cache-resident with no per-quad bit surgery.
func sweep2QBlocked(a []complex128, m *gates.Matrix4, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	m00, m01, m02, m03 := m[0][0], m[0][1], m[0][2], m[0][3]
	m10, m11, m12, m13 := m[1][0], m[1][1], m[1][2], m[1][3]
	m20, m21, m22, m23 := m[2][0], m[2][1], m[2][2], m[2][3]
	m30, m31, m32, m33 := m[3][0], m[3][1], m[3][2], m[3][3]
	for c := lo; c < hi; {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		run := maskLo - c&lowLo
		if run > hi-c {
			run = hi - c
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		// The four quadrant streams as equal-length slices: the bounds
		// checks vanish from the inner loop.
		q0 := a[i : i+run]
		q1 := a[i|maskLo:][:run]
		q2 := a[i|maskHi:][:run]
		q3 := a[i|maskLo|maskHi:][:run]
		for r := range q0 {
			a0, a1, a2, a3 := q0[r], q1[r], q2[r], q3[r]
			q0[r] = m00*a0 + m01*a1 + m02*a2 + m03*a3
			q1[r] = m10*a0 + m11*a1 + m12*a2 + m13*a3
			q2[r] = m20*a0 + m21*a1 + m22*a2 + m23*a3
			q3[r] = m30*a0 + m31*a1 + m32*a2 + m33*a3
		}
		c += run
	}
}

// sweep2QAuto picks the blocked sweep when the lower pair qubit's stride
// gives long enough contiguous runs.
func sweep2QAuto(a []complex128, m *gates.Matrix4, maskLo, maskHi, lo, hi int) {
	if maskLo >= blockedStrideMin {
		sweep2QBlocked(a, m, maskLo, maskHi, lo, hi)
		return
	}
	sweep2Q(a, m, maskLo, maskHi, lo, hi)
}

// sweep2QMono applies a monomial (permutation × phase) 4×4 kernel to the
// amplitude quadruples indexed by [lo, hi): each output slot is one
// scaled input slot, 4 complex multiplies per quadruple where the dense
// sweep pays 16 multiplies and 12 adds.
func sweep2QMono(a []complex128, src *[4]int, ph *[4]complex128, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	s0, s1, s2, s3 := src[0], src[1], src[2], src[3]
	p0, p1, p2, p3 := ph[0], ph[1], ph[2], ph[3]
	for c := lo; c < hi; c++ {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		j := i | maskLo
		k := i | maskHi
		l := j | maskHi
		q := [4]complex128{a[i], a[j], a[k], a[l]}
		a[i] = p0 * q[s0]
		a[j] = p1 * q[s1]
		a[k] = p2 * q[s2]
		a[l] = p3 * q[s3]
	}
}

// sweep2QMonoBlocked is the cache-blocked monomial form for pairs whose
// lower qubit stride gives long contiguous quadrant runs (mirrors
// sweep2QBlocked's block expansion).
func sweep2QMonoBlocked(a []complex128, src *[4]int, ph *[4]complex128, maskLo, maskHi, lo, hi int) {
	lowLo, lowHi := maskLo-1, maskHi-1
	p0, p1, p2, p3 := ph[0], ph[1], ph[2], ph[3]
	for c := lo; c < hi; {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		run := maskLo - c&lowLo
		if run > hi-c {
			run = hi - c
		}
		if run > cacheBlockAmps {
			run = cacheBlockAmps
		}
		q := [4][]complex128{
			a[i : i+run],
			a[i|maskLo:][:run],
			a[i|maskHi:][:run],
			a[i|maskLo|maskHi:][:run],
		}
		in0, in1, in2, in3 := q[src[0]], q[src[1]], q[src[2]], q[src[3]]
		q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
		for r := range q0 {
			b0, b1, b2, b3 := p0*in0[r], p1*in1[r], p2*in2[r], p3*in3[r]
			q0[r], q1[r], q2[r], q3[r] = b0, b1, b2, b3
		}
		c += run
	}
}

// sweep2QMonoAuto picks the blocked monomial sweep when the lower pair
// qubit's stride gives long enough contiguous runs.
func sweep2QMonoAuto(a []complex128, src *[4]int, ph *[4]complex128, maskLo, maskHi, lo, hi int) {
	if maskLo >= blockedStrideMin {
		sweep2QMonoBlocked(a, src, ph, maskLo, maskHi, lo, hi)
		return
	}
	sweep2QMono(a, src, ph, maskLo, maskHi, lo, hi)
}

// sweepCtrlPerm exchanges amplitude pairs (i, i^flip) over the compact
// subspace [lo, hi) ⊂ [0, 2^free).
func sweepCtrlPerm(a []complex128, inserts []bitInsert, flip, lo, hi int) {
	for c := lo; c < hi; c++ {
		i := expandIndex(c, inserts)
		j := i ^ flip
		a[i], a[j] = a[j], a[i]
	}
}

// sweepCtrlPhase multiplies ph onto the all-ones subspace.
func sweepCtrlPhase(a []complex128, inserts []bitInsert, ph complex128, lo, hi int) {
	for c := lo; c < hi; c++ {
		a[expandIndex(c, inserts)] *= ph
	}
}

// sweepDiag multiplies each amplitude by the table phase selected by its
// gathered local index.
func sweepDiag(a []complex128, masks []int, phases []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		a[i] *= phases[local]
	}
}

// sweepPermute scatters dst[π(i)] = src[i] for source indices in [lo, hi).
// The permutation is a bijection, so every destination is written exactly
// once across all shards even though writes land outside [lo, hi).
func sweepPermute(dst, src []complex128, masks []int, perm []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		to := int(perm[local])
		j := i
		for k, mq := range masks {
			if to&(1<<k) != 0 {
				j |= mq
			} else {
				j &^= mq
			}
		}
		dst[j] = src[i]
	}
}

// sweepInit writes dst[i] = src[i &^ anyMask] · amps[local(i)] for
// destination indices in [lo, hi); reads from src may cross shard
// boundaries, writes stay inside.
func sweepInit(dst, src []complex128, masks []int, anyMask int, amps []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		dst[i] = src[i&^anyMask] * amps[local]
	}
}
