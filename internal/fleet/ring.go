package fleet

import (
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over worker names. Each worker
// contributes vnodes virtual points; a key routes to the first point
// clockwise from its hash. The ring is built once over the configured
// fleet and never rebuilt — health is applied at lookup time by walking
// to the next point whose worker passes the filter, which is exactly the
// minimal-movement rehash: ejecting a worker moves only the keys it
// owned, and readmitting it moves them back.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	worker string
}

// mix64 is the splitmix64 finalizer. FNV-1a alone diffuses trailing-byte
// differences weakly — the 64 vnode hashes of one worker would cluster
// in a band of ~vnodes×prime ≈ 2^46 out of 2^64, collapsing the worker
// to effectively one ring point — so every ring hash gets a final
// avalanche pass.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// buildRing hashes vnodes virtual points per worker. The vnode counter
// is hashed BEFORE the name so it diffuses through the whole string, and
// the result is finalized with mix64.
func buildRing(workers []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodes)}
	for _, w := range workers {
		for v := 0; v < vnodes; v++ {
			h := fnv.New64a()
			h.Write([]byte{byte(v), byte(v >> 8), '#'})
			h.Write([]byte(w))
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), worker: w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// lookup walks clockwise from the key's hash and returns the first
// worker accepted by ok (nil ok accepts all). Empty string when no
// worker qualifies.
func (r *ring) lookup(key string, ok func(string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		if ok == nil || ok(p.worker) {
			return p.worker
		}
	}
	return ""
}
