package algolib

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/graph"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// SymbolicParam returns the marker value ("$name") that makes an
// operator parameter reference a named sweep parameter instead of
// carrying a concrete number. Markers survive JSON round-trips — they
// are ordinary string parameter values — and only LowerParametric
// interprets them; the concrete Lower path rejects them with the usual
// "parameter is not numeric" error.
func SymbolicParam(name string) string { return "$" + name }

// LowerParametric realizes a descriptor sequence whose gamma/beta/angle
// parameters may carry "$name" markers referencing the named sweep
// parameters (in bind-vector order). The emitted circuit is
// structurally identical to the concrete lowering — markers become
// symbolic ParamRefs on the same instructions — and
// Circuit.BindValues(point) reproduces exactly the circuit a concrete
// lowering would emit for that point. That identity is the foundation
// of the sweep determinism contract.
func LowerParametric(ops qop.Sequence, regs Registers, paramNames []string) (*Lowered, error) {
	env := &paramEnv{index: make(map[string]int, len(paramNames))}
	for i, name := range paramNames {
		if name == "" {
			return nil, fmt.Errorf("algolib: sweep parameter %d has empty name", i)
		}
		if _, dup := env.index[name]; dup {
			return nil, fmt.Errorf("algolib: duplicate sweep parameter %q", name)
		}
		env.index[name] = i
	}
	return lowerSeq(ops, regs, env)
}

// paramEnv maps sweep parameter names to bind-vector indices during a
// parametric lowering. A nil env means concrete lowering.
type paramEnv struct {
	index map[string]int
}

// refIndex reports whether op's key parameter is a symbolic marker and
// resolves its bind index when it is.
func (env *paramEnv) refIndex(op *qop.Operator, key string) (int, bool, error) {
	if env == nil {
		return 0, false, nil
	}
	s, ok := op.Params[key].(string)
	if !ok || !strings.HasPrefix(s, "$") {
		return 0, false, nil
	}
	idx, err := env.lookup(op, s)
	return idx, err == nil, err
}

func (env *paramEnv) lookup(op *qop.Operator, marker string) (int, error) {
	name := strings.TrimPrefix(marker, "$")
	idx, ok := env.index[name]
	if !ok {
		return 0, fmt.Errorf("op %q references unknown sweep parameter %q", op.Name, name)
	}
	return idx, nil
}

// lowerAngleEncoding handles an ANGLE_ENCODING whose angles list mixes
// numbers and "$name" markers. Returns done=false when the list is
// fully concrete (or env is nil) so the caller's concrete path runs.
func (env *paramEnv) lowerAngleEncoding(c *circuit.Circuit, op *qop.Operator, base, width int) (bool, error) {
	if env == nil {
		return false, nil
	}
	raw, ok := op.Params["angles"].([]any)
	if !ok {
		return false, nil
	}
	symbolic := false
	for _, v := range raw {
		if s, isS := v.(string); isS && strings.HasPrefix(s, "$") {
			symbolic = true
			break
		}
	}
	if !symbolic {
		return false, nil
	}
	if len(raw) != width {
		return true, fmt.Errorf("%d angles for width %d", len(raw), width)
	}
	for q, v := range raw {
		switch t := v.(type) {
		case float64:
			c.RY(t, base+q)
		case string:
			idx, err := env.lookup(op, t)
			if err != nil {
				return true, err
			}
			if err := c.GateRefs(gates.RY, []int{base + q}, []float64{0}, []circuit.ParamRef{{Index: idx, Scale: 1}}); err != nil {
				return true, err
			}
		default:
			return true, fmt.Errorf("angles[%d] is %T, want number or $marker", q, v)
		}
	}
	return true, nil
}

// NewGateList wraps a flat circuit as a GATE_LIST operator: the raw
// gate escape hatch, used by the QASM ingestion path. Measurements and
// barriers are not encoded — the caller emits a MEASUREMENT descriptor
// for the readout.
func NewGateList(reg *qdt.DataType, c *circuit.Circuit) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if c.NumQubits != reg.Width {
		return nil, fmt.Errorf("algolib: circuit has %d qubits, register width %d", c.NumQubits, reg.Width)
	}
	var list []any
	oneQ, twoQ := 0, 0
	for _, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpGate:
			qs := make([]any, len(ins.Qubits))
			for i, q := range ins.Qubits {
				qs[i] = float64(q)
			}
			entry := map[string]any{"gate": string(ins.Gate), "qubits": qs}
			if len(ins.Params) > 0 {
				ps := make([]any, len(ins.Params))
				for i, p := range ins.Params {
					ps[i] = p
				}
				entry["params"] = ps
			}
			list = append(list, entry)
			if len(ins.Qubits) == 2 {
				twoQ++
			} else {
				oneQ++
			}
		case circuit.OpMeasure, circuit.OpBarrier:
			// readout is a separate MEASUREMENT descriptor; barriers
			// carry no semantics for the simulator
		default:
			return nil, fmt.Errorf("algolib: opcode %d has no GATE_LIST encoding", ins.Op)
		}
	}
	op := newOp("gate_list", qop.GateList, reg.ID)
	op.SetParam("gates", list)
	op.CostHint = &qop.CostHint{OneQ: oneQ, TwoQ: twoQ, Depth: c.Depth()}
	return op, nil
}

// lowerGateList replays a GATE_LIST descriptor's entries as gate
// instructions at the register's base offset.
func lowerGateList(c *circuit.Circuit, op *qop.Operator, base int) error {
	raw, ok := op.Params["gates"].([]any)
	if !ok {
		return fmt.Errorf("GATE_LIST missing gates param")
	}
	for i, entry := range raw {
		m, ok := entry.(map[string]any)
		if !ok {
			return fmt.Errorf("gates[%d] is %T, want object", i, entry)
		}
		name, _ := m["gate"].(string)
		if name == "" {
			return fmt.Errorf("gates[%d] missing gate name", i)
		}
		qraw, ok := m["qubits"].([]any)
		if !ok {
			return fmt.Errorf("gates[%d] missing qubits", i)
		}
		qs := make([]int, len(qraw))
		for j, v := range qraw {
			f, isF := v.(float64)
			if !isF {
				return fmt.Errorf("gates[%d].qubits[%d] is %T", i, j, v)
			}
			qs[j] = base + int(f)
		}
		var params []float64
		if praw, has := m["params"].([]any); has {
			params = make([]float64, len(praw))
			for j, v := range praw {
				f, isF := v.(float64)
				if !isF {
					return fmt.Errorf("gates[%d].params[%d] is %T", i, j, v)
				}
				params[j] = f
			}
		}
		if err := c.Append(circuit.Instruction{Op: circuit.OpGate, Gate: gates.Name(name), Qubits: qs, Params: params}); err != nil {
			return fmt.Errorf("gates[%d]: %w", i, err)
		}
	}
	return nil
}

// BuildQAOASymbolic emits the same descriptor stack as BuildQAOA with
// every layer angle referencing a named sweep parameter instead of a
// concrete value. gammaNames and betaNames must have equal length
// p ≥ 1; the names index into a sweep's parameter list.
func BuildQAOASymbolic(reg *qdt.DataType, g *graph.Graph, gammaNames, betaNames []string) (qop.Sequence, error) {
	if len(gammaNames) != len(betaNames) || len(gammaNames) == 0 {
		return nil, fmt.Errorf("algolib: QAOA needs equal non-empty name lists, got %d/%d", len(gammaNames), len(betaNames))
	}
	prep, err := NewPrepUniform(reg)
	if err != nil {
		return nil, err
	}
	seq := qop.Sequence{prep}
	for layer := range gammaNames {
		cost, err := NewIsingCostPhase(reg, g, 0)
		if err != nil {
			return nil, err
		}
		cost.SetParam("gamma", SymbolicParam(gammaNames[layer]))
		mixer, err := NewMixerRX(reg, 0)
		if err != nil {
			return nil, err
		}
		mixer.SetParam("beta", SymbolicParam(betaNames[layer]))
		seq = append(seq, cost, mixer)
	}
	seq = append(seq, NewMeasurement(reg))
	return seq, nil
}
