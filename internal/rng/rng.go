// Package rng provides small, fast, deterministic pseudo-random number
// generators for the middle layer's stochastic substrates (measurement
// sampling, simulated annealing, workload generation).
//
// Determinism is a middle-layer contract: the execution context carries an
// explicit seed, and every backend must reproduce bit-identical results for
// a fixed seed. math/rand's global state is therefore never used; each
// consumer owns an explicitly seeded generator. The contract is enforced
// mechanically: the determinism analyzer in internal/lint (run by
// cmd/simvet in CI) flags math/rand global-state calls, rand.Seed, and
// time.Now()-derived seeds in simulation-core packages and in every
// package importing this one.
//
// The core generator is xoshiro256**, seeded through splitmix64 as its
// authors recommend. Both algorithms are public domain (Blackman & Vigna).
package rng

import "math"

// SplitMix64 is a tiny 64-bit generator used to seed larger generators and
// to derive independent child seeds from a single user-facing seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zeros in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Child derives an independent generator from this one. It is used to give
// each of num_reads anneal restarts (or each sampling worker) its own
// stream so that parallel execution stays deterministic regardless of
// scheduling order.
func (r *Rand) Child() *Rand {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method, which avoids modulo bias without divisions in the
// common case.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	thresh := -n % n
	for {
		v := r.Uint64()
		if v >= thresh {
			return v % n
		}
	}
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// method. Used by the pulse substrate's noise model.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
