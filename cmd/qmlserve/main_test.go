package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// testBundle builds a small 4-qubit QAOA bundle for the statevector
// engine; identical (intent, samples, seed) means identical cache key and
// therefore identical sampled counts.
func testBundle(t *testing.T, seed uint64) []byte {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.39}, []float64{1.17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", 256, seed))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// cacheKeyOf computes the content address the pool will derive for a
// bundle's raw JSON, so injected journal records carry the true key.
func cacheKeyOf(t *testing.T, raw []byte) string {
	t.Helper()
	b, err := bundle.FromJSON(raw, qop.ValidateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key, err := jobs.CacheKey(b)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// logBuffer is a race-safe line sink (the reader goroutine appends while
// failure paths read).
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *logBuffer) WriteLine(s string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf.WriteString(s + "\n")
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.buf.String()
}

// server wraps one qmlserve process life.
type server struct {
	cmd  *exec.Cmd
	addr string
	logs *logBuffer
}

// listenRE matches the slog text line the server emits once bound:
//
//	time=... level=INFO msg="qmlserve listening" addr=127.0.0.1:43210 mode=worker ...
var listenRE = regexp.MustCompile(`msg="qmlserve listening" addr=(\S+)`)

func startServer(t *testing.T, bin, dataDir string) *server {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1", "-data-dir", dataDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, logs: &logBuffer{}}
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			s.logs.WriteLine(line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrc <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case s.addr = <-addrc:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("qmlserve did not report its address; logs:\n%s", s.logs)
	}
	return s
}

func (s *server) url(path string) string { return "http://" + s.addr + path }

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw)
	}
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("GET %s: %v (body %s)", url, err, raw)
	}
	return out
}

func waitDone(t *testing.T, s *server, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON(t, s.url("/v1/jobs/"+id), http.StatusOK)
		switch st["state"] {
		case "done":
			return st
		case "failed", "canceled":
			t.Fatalf("job %s reached %v: %v", id, st["state"], st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// TestRestartAcceptance is the PR acceptance test at the process level: a
// qmlserve started with -data-dir and killed hard after accepting jobs
// must, on restart, (a) serve the terminal jobs' statuses and results
// from disk, (b) requeue and finish the jobs that were queued or running
// at crash time, with sampled counts identical to the pre-crash cache
// key's semantics (same bundle+shots+seed ⇒ same counts), and (c)
// tolerate the torn final journal line the crash left behind.
func TestRestartAcceptance(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH; cannot build the server binary")
	}
	bin := filepath.Join(t.TempDir(), "qmlserve")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qmlserve: %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	// Life 1: accept and finish one job, then die without warning.
	s1 := startServer(t, bin, dataDir)
	resp, err := http.Post(s1.url("/v1/jobs"), "application/json", bytes.NewReader(testBundle(t, 42)))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || sub.ID == "" {
		t.Fatalf("submit: %v (%+v)", err, sub)
	}
	resp.Body.Close()
	waitDone(t, s1, sub.ID)
	res1 := getJSON(t, s1.url("/v1/jobs/"+sub.ID+"/result"), http.StatusOK)
	if err := s1.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	s1.cmd.Wait()

	// While the server is down, plant the crash image the acceptance
	// criterion describes: two accepted-but-unfinished jobs — one that
	// was queued (identical to the finished job: same cache key) and one
	// that was mid-run (a different seed, so it must actually execute) —
	// plus a torn final line from the append the crash interrupted.
	st, err := store.Open(dataDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	twin, other := testBundle(t, 42), testBundle(t, 43)
	if err := st.Append(store.Event{T: store.EvSubmitted, Job: "job-00000002", At: now,
		Key: cacheKeyOf(t, twin), Engine: "gate.statevector", Bundle: twin}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(store.Event{T: store.EvSubmitted, Job: "job-00000003", At: now,
		Key: cacheKeyOf(t, other), Engine: "gate.statevector", Bundle: other}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(store.Event{T: store.EvStarted, Job: "job-00000003", At: now, Shards: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dataDir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"done","job":"job-000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Life 2: recovery must serve history and re-run the interrupted work.
	s2 := startServer(t, bin, dataDir)
	defer func() {
		s2.cmd.Process.Kill()
		s2.cmd.Wait()
	}()

	st1 := getJSON(t, s2.url("/v1/jobs/"+sub.ID), http.StatusOK)
	if st1["state"] != "done" {
		t.Fatalf("recovered terminal job: %v", st1)
	}
	res1Again := getJSON(t, s2.url("/v1/jobs/"+sub.ID+"/result"), http.StatusOK)
	if fmt.Sprint(res1Again["entries"]) != fmt.Sprint(res1["entries"]) {
		t.Fatalf("terminal result changed across restart:\n before %v\n after  %v", res1["entries"], res1Again["entries"])
	}

	waitDone(t, s2, "job-00000002")
	waitDone(t, s2, "job-00000003")
	res2 := getJSON(t, s2.url("/v1/jobs/job-00000002/result"), http.StatusOK)
	// Same bundle+shots+seed as the pre-crash job ⇒ identical counts.
	if fmt.Sprint(res2["entries"]) != fmt.Sprint(res1["entries"]) {
		t.Fatalf("requeued twin's counts differ from the pre-crash run:\n pre  %v\n post %v", res1["entries"], res2["entries"])
	}
	res3 := getJSON(t, s2.url("/v1/jobs/job-00000003/result"), http.StatusOK)
	if len(res3["entries"].([]any)) == 0 {
		t.Fatal("re-run job has no entries")
	}

	stats := getJSON(t, s2.url("/v1/stats"), http.StatusOK)
	if stats["requeued"] != float64(2) || stats["recovered"] != float64(3) {
		t.Fatalf("stats: requeued=%v recovered=%v, want 2/3", stats["requeued"], stats["recovered"])
	}
	if stats["journal_truncated_tail"] != float64(1) {
		t.Fatalf("torn tail not reported: %v", stats["journal_truncated_tail"])
	}
	list := getJSON(t, s2.url("/v1/jobs?state=done"), http.StatusOK)
	if list["count"].(float64) < 3 {
		t.Fatalf("history listing: %v", list)
	}

	// Graceful path: SIGTERM drains and exits 0, flushing the journal.
	if err := s2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown exit: %v; logs:\n%s", err, s2.logs)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("qmlserve did not exit on SIGTERM; logs:\n%s", s2.logs)
	}
}
