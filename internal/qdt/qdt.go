// Package qdt implements quantum data type descriptors, the middle layer's
// semantic contract for what a quantum register means (paper §4.1).
//
// A DataType declares a register's width, encoding kind, bit significance
// order, measurement semantics and (for phase registers) phase scale — so
// that independently written libraries interpret registers identically and
// results can be decoded automatically, with no guessing about endianness
// or number representation. The descriptor is hardware-agnostic: it says
// what the data represents, never how a backend realizes it.
package qdt

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// SchemaName is the JSON Schema identifier carried in the "$schema" field,
// matching the paper's Listing 2.
const SchemaName = "qdt-core.schema.json"

// EncodingKind classifies how basis states of the register are interpreted.
type EncodingKind string

// Encoding kinds from the paper (§4.1 and §5) plus the fixed-point and
// QUBO forms the algorithmic libraries need.
const (
	IntRegister   EncodingKind = "INT_REGISTER"   // |k⟩ decodes to the integer k
	BoolRegister  EncodingKind = "BOOL_REGISTER"  // independent {0,1} flags
	PhaseRegister EncodingKind = "PHASE_REGISTER" // fixed-point phase accumulator
	IsingSpin     EncodingKind = "ISING_SPIN"     // logical spins s ∈ {−1,+1} read as Boolean
	QUBOBinary    EncodingKind = "QUBO_BINARY"    // binary optimization variables x ∈ {0,1}
	FixedPoint    EncodingKind = "FIXED_POINT"    // signed/unsigned fixed-point real
)

// BitOrder fixes the index-to-significance mapping of the register.
type BitOrder string

const (
	LSB0 BitOrder = "LSB_0" // index i has weight 2^i (paper default)
	MSB0 BitOrder = "MSB_0" // index 0 is the most significant bit
)

// MeasurementSemantics tells downstream tools how to interpret Z-basis
// outcomes.
type MeasurementSemantics string

const (
	AsInt   MeasurementSemantics = "AS_INT"
	AsBool  MeasurementSemantics = "AS_BOOL"
	AsPhase MeasurementSemantics = "AS_PHASE"
	AsSpin  MeasurementSemantics = "AS_SPIN"
	AsFixed MeasurementSemantics = "AS_FIXED"
)

// DataType is a quantum data type descriptor. The JSON field names follow
// the paper's Listing 2 exactly.
type DataType struct {
	Schema               string               `json:"$schema"`
	ID                   string               `json:"id"`
	Name                 string               `json:"name"`
	Width                int                  `json:"width"`
	EncodingKind         EncodingKind         `json:"encoding_kind"`
	BitOrder             BitOrder             `json:"bit_order"`
	MeasurementSemantics MeasurementSemantics `json:"measurement_semantics"`

	// PhaseScale maps the observed integer k to a unitless fraction of a
	// full turn, written as a rational like "1/1024" (Listing 2). Required
	// for PHASE_REGISTER, ignored otherwise.
	PhaseScale string `json:"phase_scale,omitempty"`

	// Signed selects two's-complement interpretation for INT_REGISTER and
	// FIXED_POINT kinds.
	Signed bool `json:"signed,omitempty"`

	// FractionBits is the number of fractional bits for FIXED_POINT.
	FractionBits int `json:"fraction_bits,omitempty"`

	// Metadata carries free-form, non-semantic annotations (provenance,
	// display hints). The middle layer never interprets it.
	Metadata map[string]any `json:"metadata,omitempty"`
}

// New returns a descriptor with the schema field set and LSB_0 ordering,
// the paper's defaults.
func New(id, name string, width int, kind EncodingKind, sem MeasurementSemantics) *DataType {
	return &DataType{
		Schema:               SchemaName,
		ID:                   id,
		Name:                 name,
		Width:                width,
		EncodingKind:         kind,
		BitOrder:             LSB0,
		MeasurementSemantics: sem,
	}
}

// NewPhaseRegister returns the paper's Listing-2 style descriptor: a
// width-qubit fixed-point phase register with resolution 1/2^width.
func NewPhaseRegister(id, name string, width int) *DataType {
	d := New(id, name, width, PhaseRegister, AsPhase)
	d.PhaseScale = fmt.Sprintf("1/%d", uint64(1)<<uint(width))
	return d
}

// NewIsingVars returns the paper's §5 descriptor: width logical spins with
// AS_BOOL readout, as used by both the QAOA and the annealing path.
func NewIsingVars(id, name string, width int) *DataType {
	return New(id, name, width, IsingSpin, AsBool)
}

// Validate checks the descriptor's internal consistency. It returns a
// descriptive error naming every violation found.
func (d *DataType) Validate() error {
	var probs []string
	if d.Schema != SchemaName {
		probs = append(probs, fmt.Sprintf("$schema is %q, want %q", d.Schema, SchemaName))
	}
	if d.ID == "" {
		probs = append(probs, "id is empty")
	}
	if d.Width <= 0 {
		probs = append(probs, fmt.Sprintf("width %d is not positive", d.Width))
	}
	if d.Width > 62 {
		probs = append(probs, fmt.Sprintf("width %d exceeds the 62-carrier decoding limit", d.Width))
	}
	switch d.EncodingKind {
	case IntRegister, BoolRegister, PhaseRegister, IsingSpin, QUBOBinary, FixedPoint:
	case "":
		probs = append(probs, "encoding_kind is empty")
	default:
		probs = append(probs, fmt.Sprintf("unknown encoding_kind %q", d.EncodingKind))
	}
	switch d.BitOrder {
	case LSB0, MSB0:
	case "":
		probs = append(probs, "bit_order is empty")
	default:
		probs = append(probs, fmt.Sprintf("unknown bit_order %q", d.BitOrder))
	}
	switch d.MeasurementSemantics {
	case AsInt, AsBool, AsPhase, AsSpin, AsFixed:
	case "":
		probs = append(probs, "measurement_semantics is empty")
	default:
		probs = append(probs, fmt.Sprintf("unknown measurement_semantics %q", d.MeasurementSemantics))
	}
	if d.EncodingKind == PhaseRegister {
		if d.PhaseScale == "" {
			probs = append(probs, "PHASE_REGISTER requires phase_scale")
		} else if _, err := ParsePhaseScale(d.PhaseScale); err != nil {
			probs = append(probs, err.Error())
		}
	}
	if d.EncodingKind == FixedPoint {
		if d.FractionBits < 0 || d.FractionBits > d.Width {
			probs = append(probs, fmt.Sprintf("fraction_bits %d out of [0,%d]", d.FractionBits, d.Width))
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("qdt %q: %s", d.ID, strings.Join(probs, "; "))
	}
	return nil
}

// ParsePhaseScale parses a rational of the form "a/b" (or a plain decimal)
// into a float fraction-of-turn per unit index.
func ParsePhaseScale(s string) (float64, error) {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, err1 := strconv.ParseFloat(strings.TrimSpace(s[:i]), 64)
		den, err2 := strconv.ParseFloat(strings.TrimSpace(s[i+1:]), 64)
		if err1 != nil || err2 != nil || den == 0 {
			return 0, fmt.Errorf("qdt: invalid phase_scale %q", s)
		}
		return num / den, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("qdt: invalid phase_scale %q", s)
	}
	return f, nil
}

// IndexFromBits converts a measured classical bit vector (bits[i] is the
// outcome of logical carrier i) into the basis-state index k according to
// the declared bit order. This is the single place in the middle layer
// where significance order is applied; everything downstream works on k.
func (d *DataType) IndexFromBits(bits []uint8) (uint64, error) {
	if len(bits) != d.Width {
		return 0, fmt.Errorf("qdt %q: got %d bits, want width %d", d.ID, len(bits), d.Width)
	}
	var k uint64
	for i, b := range bits {
		if b > 1 {
			return 0, fmt.Errorf("qdt %q: bit %d has value %d", d.ID, i, b)
		}
		if b == 1 {
			k |= 1 << uint(d.significance(i))
		}
	}
	return k, nil
}

// BitsFromIndex is the inverse of IndexFromBits.
func (d *DataType) BitsFromIndex(k uint64) ([]uint8, error) {
	if d.Width < 64 && k >= uint64(1)<<uint(d.Width) {
		return nil, fmt.Errorf("qdt %q: index %d exceeds width %d", d.ID, k, d.Width)
	}
	bits := make([]uint8, d.Width)
	for i := range bits {
		bits[i] = uint8((k >> uint(d.significance(i))) & 1)
	}
	return bits, nil
}

func (d *DataType) significance(i int) int {
	if d.BitOrder == MSB0 {
		return d.Width - 1 - i
	}
	return i
}

// Value is a decoded measurement outcome. Exactly one field group is
// meaningful, selected by Semantics.
type Value struct {
	Semantics MeasurementSemantics

	Int   int64   // AS_INT, AS_FIXED (raw integer before scaling)
	Float float64 // AS_PHASE (fraction of a turn), AS_FIXED (scaled value)
	Bools []bool  // AS_BOOL
	Spins []int8  // AS_SPIN
	Index uint64  // the raw basis-state index, always set
}

// Decode interprets a basis-state index according to the register's
// measurement semantics.
func (d *DataType) Decode(k uint64) (Value, error) {
	v := Value{Semantics: d.MeasurementSemantics, Index: k}
	if d.Width < 64 && k >= uint64(1)<<uint(d.Width) {
		return v, fmt.Errorf("qdt %q: index %d exceeds width %d", d.ID, k, d.Width)
	}
	switch d.MeasurementSemantics {
	case AsInt:
		v.Int = d.toInt(k)
	case AsBool:
		v.Bools = make([]bool, d.Width)
		for i := 0; i < d.Width; i++ {
			v.Bools[i] = (k>>uint(i))&1 == 1
		}
	case AsSpin:
		v.Spins = make([]int8, d.Width)
		for i := 0; i < d.Width; i++ {
			if (k>>uint(i))&1 == 1 {
				v.Spins[i] = 1
			} else {
				v.Spins[i] = -1
			}
		}
	case AsPhase:
		scale, err := ParsePhaseScale(d.PhaseScale)
		if err != nil {
			return v, err
		}
		v.Float = float64(k) * scale
	case AsFixed:
		raw := d.toInt(k)
		v.Int = raw
		v.Float = float64(raw) / float64(uint64(1)<<uint(d.FractionBits))
	default:
		return v, fmt.Errorf("qdt %q: cannot decode semantics %q", d.ID, d.MeasurementSemantics)
	}
	return v, nil
}

// DecodeBits is Decode composed with IndexFromBits.
func (d *DataType) DecodeBits(bits []uint8) (Value, error) {
	k, err := d.IndexFromBits(bits)
	if err != nil {
		return Value{}, err
	}
	return d.Decode(k)
}

func (d *DataType) toInt(k uint64) int64 {
	if !d.Signed {
		return int64(k)
	}
	// Two's complement within Width bits.
	sign := uint64(1) << uint(d.Width-1)
	if k&sign != 0 {
		return int64(k) - int64(1)<<uint(d.Width)
	}
	return int64(k)
}

// PhaseRadians converts an AS_PHASE Value's turn fraction to radians.
func (v Value) PhaseRadians() float64 { return v.Float * 2 * 3.141592653589793 }

// BitstringLSBFirst renders index k as a bit string with carrier 0 first,
// the convention the paper uses when reporting "1010" and "0101" for the
// §5 Max-Cut (bit i is the ith character).
func (d *DataType) BitstringLSBFirst(k uint64) string {
	var sb strings.Builder
	for i := 0; i < d.Width; i++ {
		if (k>>uint(i))&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Compatible reports whether two descriptors can be legally composed on the
// same register: identical width, encoding kind and bit order. Differing
// measurement semantics are allowed (they only matter at readout).
func Compatible(a, b *DataType) error {
	if a.Width != b.Width {
		return fmt.Errorf("qdt: width mismatch %q(%d) vs %q(%d)", a.ID, a.Width, b.ID, b.Width)
	}
	if a.EncodingKind != b.EncodingKind {
		return fmt.Errorf("qdt: encoding mismatch %q(%s) vs %q(%s)", a.ID, a.EncodingKind, b.ID, b.EncodingKind)
	}
	if a.BitOrder != b.BitOrder {
		return fmt.Errorf("qdt: bit order mismatch %q(%s) vs %q(%s)", a.ID, a.BitOrder, b.ID, b.BitOrder)
	}
	return nil
}

// MarshalJSON emits the descriptor with its schema field defaulted, so
// hand-constructed descriptors still serialize validly.
func (d *DataType) MarshalJSON() ([]byte, error) {
	type alias DataType
	cp := *d
	if cp.Schema == "" {
		cp.Schema = SchemaName
	}
	return json.Marshal((*alias)(&cp))
}

// FromJSON parses and validates a descriptor.
func FromJSON(src []byte) (*DataType, error) {
	var d DataType
	if err := json.Unmarshal(src, &d); err != nil {
		return nil, fmt.Errorf("qdt: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
