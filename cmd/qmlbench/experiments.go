package main

import (
	"fmt"

	"repro/internal/algolib"
	"repro/internal/anneal"
	"repro/internal/bundle"
	"repro/internal/comm"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qec"
	"repro/internal/qop"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Grid-optimal p=1 angles for the 4-cycle under this library's QAOA
// convention (e^{-iγΣZZ} cost, RX(2β) mixer): γ=π/8, β=3π/8 reach the
// theoretical p=1 optimum of expected cut 3.0.
const (
	bestGamma = 0.3926990817
	bestBeta  = 1.1780972451
)

func isingVars() *qdt.DataType { return qdt.NewIsingVars("ising_vars", "s", 4) }

func gateMaxCutBundle(samples int, seed uint64) (*bundle.Bundle, error) {
	reg := isingVars()
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{bestGamma}, []float64{bestBeta})
	if err != nil {
		return nil, err
	}
	ctx := ctxdesc.NewGate("gate.aer_simulator", samples, seed)
	ctx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	ctx.Exec.Options = map[string]any{"optimization_level": 2}
	return bundle.New([]*qdt.DataType{reg}, seq, ctx)
}

func annealMaxCutBundle(reads int, seed uint64) (*bundle.Bundle, error) {
	reg := isingVars()
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		return nil, err
	}
	return bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctxdesc.NewAnneal("anneal.neal", reads, seed))
}

func runE1(seed uint64) error {
	b, err := gateMaxCutBundle(4096, seed)
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	g := graph.Cycle(4)
	cut, total := 0.0, 0
	fmt.Println("outcome  count  cut")
	for _, e := range res.Entries {
		fmt.Printf("  %s   %5d    %.0f\n", e.Bitstring, e.Count, g.CutValueBits(e.Index))
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
	}
	fmt.Printf("expected cut (sampled, 4096 shots): %.3f   paper: ≈3.0–3.2\n", cut/float64(total))
	fmt.Printf("transpile: %+v\n", res.Meta["transpile"])
	return nil
}

func runE2(seed uint64) error {
	b, err := annealMaxCutBundle(1000, seed)
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	fmt.Println("outcome  count  energy")
	for _, e := range res.Entries {
		fmt.Printf("  %s   %5d   %+.1f\n", e.Bitstring, e.Count, e.Energy)
	}
	top, err := res.Top()
	if err != nil {
		return err
	}
	fmt.Printf("best energy: %+.1f (ground truth -4.0); paper: optimal cuts 1010/0101\n", top.Energy)
	return nil
}

func runE3(seed uint64) error {
	// Exact expected cut at grid-optimal angles (no sampling noise).
	reg := isingVars()
	g := graph.Cycle(4)
	seq, err := algolib.BuildQAOA(reg, g, []float64{bestGamma}, []float64{bestBeta})
	if err != nil {
		return err
	}
	low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
	if err != nil {
		return err
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		return err
	}
	exact := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
	fmt.Printf("exact expected cut at (γ*, β*): %.4f   paper band: 3.0–3.2\n", exact)

	// Both backends' most frequent strings.
	gb, err := gateMaxCutBundle(4096, seed)
	if err != nil {
		return err
	}
	gres, err := runtime.Submit(gb, runtime.Options{})
	if err != nil {
		return err
	}
	ab, err := annealMaxCutBundle(1000, seed)
	if err != nil {
		return err
	}
	ares, err := runtime.Submit(ab, runtime.Options{})
	if err != nil {
		return err
	}
	gtop, err := gres.Top()
	if err != nil {
		return err
	}
	atop, err := ares.Top()
	if err != nil {
		return err
	}
	fmt.Printf("gate-path top outcome:   %s   anneal-path top outcome: %s\n", gtop.Bitstring, atop.Bitstring)
	fmt.Println("paper: both runs produce the optimal cut assignments 1010 and 0101 (cut = 4)")
	return nil
}

func runE4(seed uint64) error {
	// Listing 1: 10-qubit QFT + measure, 10000 shots. QFT|0…0⟩ is the
	// uniform superposition: 1024 outcomes, each ≈ 10000/1024 ≈ 9.8.
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		return err
	}
	seq := qop.Sequence{qft, algolib.NewMeasurement(reg)}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.aer_simulator", 10000, seed))
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	min, max := 1<<30, 0
	for _, e := range res.Entries {
		if e.Count < min {
			min = e.Count
		}
		if e.Count > max {
			max = e.Count
		}
	}
	fmt.Printf("distinct outcomes: %d / 1024 possible\n", len(res.Entries))
	fmt.Printf("count range: [%d, %d], uniform expectation ≈ 9.77\n", min, max)
	return nil
}

func runE5(uint64) error {
	// Listing 3's cost hint vs our estimator and the realized circuit.
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		return err
	}
	fmt.Printf("paper cost_hint:      twoq=45  depth=100\n")
	fmt.Printf("library estimator:    twoq=%-3d depth=%d\n", qft.CostHint.TwoQ, qft.CostHint.Depth)
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		return err
	}
	fmt.Printf("template realization: twoq=%-3d depth=%d (cp counted as one two-qubit gate, + %d swaps)\n",
		circ.TwoQubitCount()-5, circ.Depth(), 5)
	tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: []string{"sx", "rz", "cx"}, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	fmt.Printf("after {sx,rz,cx} decomposition: cx=%d depth=%d\n", tr.Stats.TwoQAfter, tr.Stats.DepthAfter)
	return nil
}

func runE6(uint64) error {
	// Listing 4: ideal all-to-all vs the linear 0–9 coupling map.
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		return err
	}
	basis := []string{"sx", "rz", "cx"}
	ideal, err := transpile.Transpile(circ.Copy(), transpile.Options{BasisGates: basis, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	var linear [][2]int
	for i := 0; i < 9; i++ {
		linear = append(linear, [2]int{i, i + 1})
	}
	routed, err := transpile.Transpile(circ.Copy(), transpile.Options{BasisGates: basis, CouplingMap: linear, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	fmt.Println("target                cx     depth  swaps")
	fmt.Printf("all-to-all (ideal)   %4d   %5d      0\n", ideal.Stats.TwoQAfter, ideal.Stats.DepthAfter)
	fmt.Printf("linear 0–9 coupling  %4d   %5d   %4d\n", routed.Stats.TwoQAfter, routed.Stats.DepthAfter, routed.Stats.SwapsInserted)
	fmt.Println("paper: the coupling map \"forces realistic routing and basis decompositions\"")
	return nil
}

func runE7(seed uint64) error {
	fmt.Println("family      d   phys qubits/logical  rounds  logical err (p=1e-3)")
	for _, family := range []string{"repetition", "surface"} {
		for _, d := range []int{3, 5, 7, 9, 11} {
			pol := &ctxdesc.QEC{CodeFamily: family, Distance: d, PhysErrorRate: 1e-3}
			ov, err := qec.Estimate(pol, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %3d   %8.0f             %3d     %.3e\n",
				family, d, ov.QubitOverhead, ov.RoundOverhead, ov.LogicalError)
		}
	}
	// Monte Carlo cross-check of the repetition closed form at d=5.
	mc, err := qec.SimulateRepetition(5, 0.05, 200000, seed)
	if err != nil {
		return err
	}
	exact, err := qec.LogicalErrorRate(&ctxdesc.QEC{CodeFamily: "repetition", Distance: 5}, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("repetition d=5 @ p=0.05: Monte Carlo %.5f vs closed form %.5f\n", mc.Rate, exact)
	fmt.Println("paper (Listing 5): distance-7 surface code; \"one logical qubit may span dozens of physical qubits\"")
	return nil
}

func runE8(uint64) error {
	fmt.Println("QFT(n) over 2 QPUs   crossing-cx   EPR pairs   classical bits")
	basis := []string{"sx", "rz", "cx"}
	for _, n := range []int{4, 6, 8, 10, 12} {
		circ, err := algolib.QFTCircuit(n, 0, true, false)
		if err != nil {
			return err
		}
		tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: basis, OptimizationLevel: 1})
		if err != nil {
			return err
		}
		part, err := comm.BlockPartition(n, 2, (n+1)/2)
		if err != nil {
			return err
		}
		plan, err := comm.Analyze(tr.Circuit, part)
		if err != nil {
			return err
		}
		fmt.Printf("      n=%-2d              %5d        %5d         %5d\n",
			n, plan.CrossingGates, plan.EPRPairs, plan.ClassicalBits)
	}
	fmt.Println("paper §2: communication volume is a cost dimension schedulers need exposed")
	return nil
}

func runE9(seed uint64) error {
	reg := isingVars()
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		return err
	}
	intent := qop.Sequence{op}
	contexts := map[string]*ctxdesc.Context{
		"anneal.sa (plain)":    ctxdesc.NewAnneal("anneal.sa", 100, seed),
		"anneal.sa (embedded)": embeddedCtx(seed),
		"scheduler-selected":   nil,
	}
	var first string
	for name, ctx := range contexts {
		b, err := bundle.New([]*qdt.DataType{reg}, intent, ctx)
		if err != nil {
			return err
		}
		if _, err := runtime.Submit(b, runtime.Options{}); err != nil {
			return err
		}
		fp, err := b.Fingerprint()
		if err != nil {
			return err
		}
		if first == "" {
			first = fp
		}
		match := "MATCH"
		if fp != first {
			match = "MISMATCH"
		}
		fmt.Printf("%-22s intent fingerprint %s… %s\n", name, fp[:16], match)
	}
	fmt.Println("paper: \"the same logical program runs unmodified … by swapping only the context descriptor\"")
	return nil
}

func embeddedCtx(seed uint64) *ctxdesc.Context {
	c := ctxdesc.NewAnneal("anneal.sa", 100, seed)
	c.Anneal.Embed = true
	c.Anneal.UnitCells = 1
	c.Anneal.Sweeps = 300
	return c
}

func runE10(uint64) error {
	// Expected cut vs QAOA depth p, angles grid-searched per depth.
	reg := isingVars()
	g := graph.Cycle(4)
	fmt.Println("p   best expected cut (grid-searched angles)")
	for p := 1; p <= 3; p++ {
		best := -1.0
		grid := []float64{0.13, 0.26, 0.39, 0.52, 0.65, 0.79, 0.92, 1.05, 1.18}
		var search func(gammas, betas []float64)
		search = func(gammas, betas []float64) {
			if len(gammas) == p {
				seq, err := algolib.BuildQAOA(reg, g, gammas, betas)
				if err != nil {
					return
				}
				low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
				if err != nil {
					return
				}
				st, err := sim.Evolve(low.Circuit)
				if err != nil {
					return
				}
				cut := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
				if cut > best {
					best = cut
				}
				return
			}
			for _, ga := range grid {
				for _, be := range grid {
					search(append(gammas, ga), append(betas, be))
				}
			}
		}
		if p > 1 {
			// Coarsen the grid for p ≥ 2 to keep the sweep tractable.
			grid = []float64{0.26, 0.52, 0.79, 1.05}
		}
		search(nil, nil)
		fmt.Printf("%d   %.4f\n", p, best)
	}
	fmt.Println("shape: p=1 reaches 3.0 (the C4 optimum at depth 1); deeper circuits close the gap to 4")
	return nil
}

func runE11(seed uint64) error {
	fmt.Println("n=12 Erdős–Rényi(0.5) Max-Cut, 50 reads each")
	g := graph.ErdosRenyi(12, 0.5, 7)
	m := ising.FromMaxCut(g)
	gs := m.BruteForce()
	fmt.Printf("true ground energy: %+.1f (cut %.0f)\n", gs.Energy, ising.CutFromEnergy(g, gs.Energy))
	fmt.Println("sampler          best    mean    P(ground)")

	row := func(name string, res *anneal.Result) {
		fmt.Printf("%-14s %+6.1f  %+6.2f   %.3f\n", name, res.Best().Energy, res.MeanEnergy(),
			res.GroundProbability(gs.Energy, 1e-9))
	}
	if r, err := anneal.RandomSample(m, 50, seed); err == nil {
		row("random", r)
	} else {
		return err
	}
	if r, err := anneal.GreedyDescent(m, 50, seed); err == nil {
		row("greedy", r)
	} else {
		return err
	}
	if r, err := anneal.TabuSearch(m, 50, 0, seed); err == nil {
		row("tabu", r)
	} else {
		return err
	}
	for _, sweeps := range []int{10, 100, 1000} {
		r, err := anneal.SampleModel(m, anneal.Params{NumReads: 50, Sweeps: sweeps, Seed: seed})
		if err != nil {
			return err
		}
		row(fmt.Sprintf("SA (%d sweeps)", sweeps), r)
	}
	fmt.Println("shape: SA dominates random/greedy and converges to ground with more sweeps")
	return nil
}
