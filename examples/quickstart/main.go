// Quickstart: the paper's motivational example (§2) done the middle-layer
// way. Where Listing 1's Qiskit program says only "10 qubits", here the
// register meaning is explicit (a fixed-point phase register with scale
// 1/1024 and LSB_0 significance — Listing 2), the QFT is a logical
// template with a device-independent cost hint (Listing 3), execution
// policy lives in a context descriptor (Listing 4), and readout decodes
// automatically through the result schema.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/core"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
)

func main() {
	// 1. Declare what the register MEANS (quantum data type, Listing 2).
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	fmt.Printf("register %q: width=%d encoding=%s scale=%s\n",
		reg.ID, reg.Width, reg.EncodingKind, reg.PhaseScale)

	// 2. State the intent: a QFT template + an explicit measurement.
	prog := core.NewProgram()
	if err := prog.AddRegister(reg); err != nil {
		log.Fatal(err)
	}
	qft, err := algolib.NewQFT(reg, 0 /* exact */, true /* do_swaps */, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QFT cost hint (device-independent): twoq=%d depth=%d\n",
		qft.CostHint.TwoQ, qft.CostHint.Depth)
	if err := prog.Append(qft, algolib.NewMeasurement(reg)); err != nil {
		log.Fatal(err)
	}

	// 3. Execution policy is orthogonal: Listing 4's shape.
	ctx := ctxdesc.NewGate("gate.aer_simulator", 10000, 42)

	// 4. Run. QFT|0…0⟩ is the uniform superposition over all 1024 phase
	// values.
	res, err := prog.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d shots over %d distinct outcomes (uniform ≈ %.1f each)\n",
		res.Samples, len(res.Entries), float64(res.Samples)/1024)

	// 5. Decoding is automatic and typed: AS_PHASE turns the measured
	// integer k into the phase fraction k/1024.
	res.Sort()
	fmt.Println("top outcomes decoded as phases:")
	for i, e := range res.Entries {
		if i >= 5 {
			break
		}
		fmt.Printf("  k=%-5d phase=%.4f turns (%.4f rad)  count=%d\n",
			e.Index, e.Value.Float, e.Value.PhaseRadians(), e.Count)
	}
}
