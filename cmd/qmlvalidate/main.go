// Command qmlvalidate validates middle-layer descriptor artifacts against
// their embedded JSON Schemas — the "validators can catch mismatches
// early" role of the paper's §4.1.
//
// Each argument is a JSON file; its schema is taken from the document's
// "$schema" field, or forced with -schema. Exit status is non-zero if any
// file fails.
//
//	qmlvalidate qdt.json qop.json ctx.json job.json
//	qmlvalidate -schema qdt-core.schema.json some.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/schemas"
)

func main() {
	schemaFlag := flag.String("schema", "", "force a schema name instead of reading $schema")
	list := flag.Bool("list", false, "list known schemas and exit")
	flag.Parse()

	if *list {
		for _, n := range schemas.Names() {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: qmlvalidate [-schema name] file.json...")
		os.Exit(2)
	}
	failed := 0
	for _, path := range flag.Args() {
		if err := validateFile(path, *schemaFlag); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("ok   %s\n", path)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func validateFile(path, forced string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := forced
	if name == "" {
		var probe struct {
			Schema string `json:"$schema"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return fmt.Errorf("parse: %w", err)
		}
		if probe.Schema == "" {
			return fmt.Errorf("no $schema field; use -schema")
		}
		name = probe.Schema
	}
	return schemas.Validate(name, raw)
}
