package circuit

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/gates"
)

// FromQASM parses the OpenQASM 2.0 subset ToQASM emits (plus the common
// Qiskit spellings): one quantum and one classical register, qelib1
// gates, measure and barrier statements, and constant parameter
// expressions over numbers and pi with + − * / and parentheses.
func FromQASM(src string) (*Circuit, error) {
	var c *Circuit
	qregName, cregName := "", ""
	nq, nc := 0, 0
	sawHeader := false

	// Strip comments, split on semicolons.
	var cleaned strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		cleaned.WriteString(line)
		cleaned.WriteByte('\n')
	}
	for lineNo, stmt := range strings.Split(cleaned.String(), ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "OPENQASM"):
			if !strings.Contains(stmt, "2.0") {
				return nil, fmt.Errorf("qasm: unsupported version in %q", stmt)
			}
			sawHeader = true
		case strings.HasPrefix(stmt, "include"):
			// qelib1.inc is implied.
		case strings.HasPrefix(stmt, "qreg"):
			name, size, err := parseRegDecl(stmt[len("qreg"):])
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
			if qregName != "" {
				return nil, fmt.Errorf("qasm: multiple quantum registers unsupported")
			}
			qregName, nq = name, size
		case strings.HasPrefix(stmt, "creg"):
			name, size, err := parseRegDecl(stmt[len("creg"):])
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
			if cregName != "" {
				return nil, fmt.Errorf("qasm: multiple classical registers unsupported")
			}
			cregName, nc = name, size
		case strings.HasPrefix(stmt, "measure"):
			if c == nil {
				c = New(nq, nc)
			}
			rest := strings.TrimSpace(stmt[len("measure"):])
			parts := strings.Split(rest, "->")
			if len(parts) != 2 {
				return nil, fmt.Errorf("qasm: statement %d: malformed measure %q", lineNo, stmt)
			}
			q, err := parseIndexed(strings.TrimSpace(parts[0]), qregName)
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
			cb, err := parseIndexed(strings.TrimSpace(parts[1]), cregName)
			if err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
			if err := c.Append(Instruction{Op: OpMeasure, Qubits: []int{q}, Clbits: []int{cb}}); err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
		case strings.HasPrefix(stmt, "barrier"):
			if c == nil {
				c = New(nq, nc)
			}
			rest := strings.TrimSpace(stmt[len("barrier"):])
			var qubits []int
			if rest != qregName { // "barrier q" = all qubits = empty list
				for _, operand := range strings.Split(rest, ",") {
					q, err := parseIndexed(strings.TrimSpace(operand), qregName)
					if err != nil {
						return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
					}
					qubits = append(qubits, q)
				}
			}
			if err := c.Append(Instruction{Op: OpBarrier, Qubits: qubits}); err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
		default:
			if !sawHeader {
				return nil, fmt.Errorf("qasm: missing OPENQASM header")
			}
			if c == nil {
				c = New(nq, nc)
			}
			if err := parseGateStmt(c, stmt, qregName); err != nil {
				return nil, fmt.Errorf("qasm: statement %d: %w", lineNo, err)
			}
		}
	}
	if c == nil {
		c = New(nq, nc)
	}
	return c, nil
}

// parseRegDecl parses ` name[size]`.
func parseRegDecl(rest string) (string, int, error) {
	rest = strings.TrimSpace(rest)
	open := strings.IndexByte(rest, '[')
	if open <= 0 || !strings.HasSuffix(rest, "]") {
		return "", 0, fmt.Errorf("malformed register declaration %q", rest)
	}
	size, err := strconv.Atoi(rest[open+1 : len(rest)-1])
	if err != nil || size < 0 {
		return "", 0, fmt.Errorf("malformed register size in %q", rest)
	}
	return rest[:open], size, nil
}

// parseIndexed parses `name[idx]` and checks the register name.
func parseIndexed(s, regName string) (int, error) {
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("malformed operand %q", s)
	}
	if s[:open] != regName {
		return 0, fmt.Errorf("operand %q references unknown register (want %q)", s, regName)
	}
	idx, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil {
		return 0, fmt.Errorf("malformed index in %q", s)
	}
	return idx, nil
}

// qasmToGate maps qelib1 spellings back to internal names.
var qasmToGate = map[string]gates.Name{
	"id": gates.I, "x": gates.X, "y": gates.Y, "z": gates.Z, "h": gates.H,
	"s": gates.S, "sdg": gates.Sdg, "t": gates.T, "tdg": gates.Tdg, "sx": gates.SX,
	"rx": gates.RX, "ry": gates.RY, "rz": gates.RZ, "u1": gates.P, "p": gates.P,
	"cx": gates.CX, "cz": gates.CZ, "cu1": gates.CP, "cp": gates.CP, "swap": gates.SWAP,
	"ccx": gates.CCX, "cswap": gates.CSWAP,
}

func parseGateStmt(c *Circuit, stmt, qregName string) error {
	// Shape: name[(params)] operand[, operand...]
	nameEnd := strings.IndexAny(stmt, "( \t")
	if nameEnd < 0 {
		return fmt.Errorf("malformed gate statement %q", stmt)
	}
	name := stmt[:nameEnd]
	gate, ok := qasmToGate[name]
	if !ok {
		return fmt.Errorf("unknown gate %q", name)
	}
	rest := stmt[nameEnd:]
	var params []float64
	if strings.HasPrefix(strings.TrimSpace(rest), "(") {
		rest = strings.TrimSpace(rest)
		// Find the matching close paren (parameters may nest parens).
		depth := 0
		close := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '(':
				depth++
			case ')':
				depth--
				if depth == 0 {
					close = i
				}
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return fmt.Errorf("unclosed parameter list in %q", stmt)
		}
		for _, expr := range splitTopLevel(rest[1:close]) {
			v, err := evalExpr(expr)
			if err != nil {
				return err
			}
			params = append(params, v)
		}
		rest = rest[close+1:]
	}
	var qubits []int
	for _, operand := range strings.Split(strings.TrimSpace(rest), ",") {
		q, err := parseIndexed(strings.TrimSpace(operand), qregName)
		if err != nil {
			return err
		}
		qubits = append(qubits, q)
	}
	return c.Append(Instruction{Op: OpGate, Gate: gate, Qubits: qubits, Params: params})
}

// splitTopLevel splits a parameter list on commas not nested in parens.
func splitTopLevel(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// evalExpr evaluates a constant expression over numbers and pi with
// + − * / and parentheses (recursive descent).
func evalExpr(s string) (float64, error) {
	p := &exprParser{src: strings.TrimSpace(s)}
	v, err := p.sum()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input in expression %q", s)
	}
	return v, nil
}

type exprParser struct {
	src string
	pos int
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) sum() (float64, error) {
	v, err := p.product()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '+':
			p.pos++
			r, err := p.product()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.product()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) product() (float64, error) {
	v, err := p.unary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return v, nil
		}
		switch p.src[p.pos] {
		case '*':
			p.pos++
			r, err := p.unary()
			if err != nil {
				return 0, err
			}
			v *= r
		case '/':
			p.pos++
			r, err := p.unary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			v /= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) unary() (float64, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '-' {
		p.pos++
		v, err := p.unary()
		return -v, err
	}
	return p.atom()
}

func (p *exprParser) atom() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		v, err := p.sum()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return 0, fmt.Errorf("missing closing parenthesis")
		}
		p.pos++
		return v, nil
	}
	if strings.HasPrefix(p.src[p.pos:], "pi") {
		p.pos += 2
		return math.Pi, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == 'e' || ch == 'E' ||
			((ch == '+' || ch == '-') && p.pos > start && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E')) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return 0, fmt.Errorf("unexpected character %q in expression", p.src[p.pos])
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("malformed number %q", p.src[start:p.pos])
	}
	return v, nil
}
