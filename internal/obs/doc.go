// Package obs is the middle layer's observability subsystem: a
// dependency-free metrics registry with Prometheus text exposition, job
// trace IDs and span logs, structured-logging helpers, and the HTTP
// middleware the serving layer wraps around every handler.
//
// # Metrics
//
// A Registry holds named instruments — monotonic Counters, settable
// Gauges, gauges computed at scrape time (GaugeFunc), and fixed-bucket
// latency Histograms — and renders them in the Prometheus text
// exposition format (version 0.0.4) via WriteText or the Handler an
// HTTP server mounts on GET /metrics. Instrument lookups are
// get-or-create: asking twice for the same name (and label set) returns
// the same instrument, so independent subsystems sharing one registry
// cannot double-register. All instruments are lock-free on the hot path
// (atomic increments and observes, a few nanoseconds each — see the
// package benchmarks) and safe for concurrent use.
//
// Naming conventions, followed throughout the repo:
//
//   - snake_case metric names prefixed by their subsystem: jobs_ (worker
//     pool), store_ (journal + result files), fleet_ (dispatcher), sim_
//     (statevector engine), go_ (runtime), http_ (serving middleware).
//   - Counters end in _total; durations are histograms in seconds ending
//     in _seconds; sizes end in _bytes.
//   - build_info is a constant 1-valued gauge whose labels (go_version,
//     revision) identify the binary — fleet operators diff it across
//     workers to spot mixed-version fleets.
//
// Labeled instruments come in two forms. Ad-hoc Label arguments on
// Counter/Gauge/Histogram create one distinct instrument per label set.
// CounterFamily and HistogramFamily are the bounded-cardinality form:
// one label name whose complete value enum is declared at registration,
// with every child created eagerly so hot paths index a pre-resolved
// slice (At(ordinal)) with no lock, map lookup, or allocation — the
// shape the simulator's per-kernel-kind instruments need. The enum is
// capped at 32 values and can never grow afterwards, which is what
// keeps the /metrics exposition bounded.
//
// The conventions are enforced mechanically: the obsconv analyzer in
// internal/lint (run by cmd/simvet in CI) flags non-snake_case names,
// counters missing _total (and non-counters claiming it or the
// histogram-owned _count/_sum/_bucket suffixes), duplicate
// registrations within one construction, and same-name registrations
// under two instrument kinds — the clash this registry would otherwise
// only catch by panicking at runtime. Family registrations are policed
// too: the label name must be a lower-snake_case literal and the value
// set a literal []string (non-empty, duplicate-free, at most 32
// entries), so an unbounded value — a job or trace ID — can never leak
// in as a label.
//
// Histograms use DefBuckets by default: exponential latency bounds from
// 10µs to 10s, chosen so both journal fsyncs (~100µs–10ms) and
// 20-qubit statevector executions (~100ms–10s) land mid-range.
// Quantiles (p50/p90/p99) are derivable from any histogram via
// Histogram.Quantile, which interpolates linearly inside the owning
// bucket — the same estimate Prometheus' histogram_quantile computes
// server-side.
//
// RegisterRuntime adds Go runtime gauges (goroutines, heap and total
// memory, GC cycles and pause p99) sourced from runtime/metrics and
// refreshed at scrape time; RegisterBuildInfo adds the build_info
// gauge from debug.ReadBuildInfo.
//
// ParseExposition is the strict counterpart to WriteText: a
// line-format parser over a scraped /metrics body that validates metric
// and label grammar, TYPE declarations, and histogram invariants
// (ascending le bounds, monotonic cumulative counts, +Inf == _count).
// The process-level acceptance tests scrape real servers through it.
//
// # Tracing
//
// Every job carries a trace ID across the fleet. The contract:
//
//   - POST /v1/jobs accepts an inbound X-Trace-Id header (1–128 chars of
//     [A-Za-z0-9._-]); absent or invalid, the server generates a random
//     16-byte hex ID. The accepted ID is echoed in the response header
//     and the submit/status documents ("trace_id").
//   - The fleet dispatcher forwards the same header with the job to its
//     worker, records the ID in every journal event and job record, and
//     both dispatcher and worker log it on every lifecycle transition —
//     one grep for the ID reconstructs the job's fleet-wide life.
//   - Each job accumulates a span log (queued, assigned, started,
//     transpile/compile/execute/sample stage timings, persisted, done)
//     with monotonic timestamps, surfaced in GET /v1/jobs/{id}.
//
// # Profiling and the flight recorder
//
// qmlserve -debug-addr brings up a second listener serving
// net/http/pprof under /debug/pprof/ plus a /metrics alias, so CPU and
// heap profiles never contend with (or get rate-limited by) production
// traffic:
//
//	qmlserve -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//	curl -s http://127.0.0.1:6060/debug/pprof/goroutine?debug=2
//
// The same listener serves GET /debug/events, the flight recorder: a
// fixed-size lock-free ring (Flight) of the most recent structured
// events from every layer — job transitions, kernel-batch completions,
// fleet forwards/detaches/ejects/readmits, journal fsync stalls.
// Recording costs one small allocation plus one atomic store per event,
// so it is always on; readers snapshot without blocking writers. The
// Recover middleware appends the ring's tail to every panic report, so
// a post-mortem starts with the last things the process did rather
// than with log archaeology. Library layers record through the
// process-wide ring (obs.Record / obs.RecordDur) under the fixed kind
// enum (FlightJobQueued ... FlightSweepRange) — per-job identity goes
// in the event's Job field, never in a new kind.
//
// Kernel-granular simulator profiling (per-kernel tables on job status
// documents, opt-in per submission) lives in internal/sim and the
// serving layer; see the root package doc. Its always-on aggregates —
// the sim_kernels_total and sim_kernel_seconds families — live here.
package obs
