package runtime

import (
	"fmt"
	"sort"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/pulse"
	"repro/internal/qop"
	"repro/internal/transpile"
)

// Estimate is a per-engine pre-execution cost projection — the scheduler
// capability the paper's §2 motivates: "without this information, a
// scheduler cannot choose an appropriate backend and topology, or
// estimate queue and runtime."
type Estimate struct {
	Engine string
	// Feasible reports whether the engine can realize the bundle at all.
	Feasible bool
	Reason   string // why not, when infeasible
	// DurationNS projects wall time per shot/read batch: for gate/pulse
	// engines the pulse-model schedule length times the sample count;
	// for anneal engines sweeps × spins × a per-flip constant.
	DurationNS float64
	// Resources summarizes the dominant resource counts.
	TwoQubitGates int
	Depth         int
	PhysicalUnits int // qubits or spins
}

// perFlipNS is the nominal Metropolis step cost used for anneal
// projections (arbitrary but fixed; estimates are for *comparing*
// engines, not absolute prediction).
const perFlipNS = 2.0

// EstimateAll projects the bundle onto every registered engine family
// (one estimate per family representative), sorted by engine name.
func EstimateAll(b *bundle.Bundle) ([]Estimate, error) {
	if err := b.Validate(qop.ValidateOptions{}); err != nil {
		return nil, err
	}
	engines := []string{"gate.statevector", "anneal.sa", "pulse.model"}
	out := make([]Estimate, 0, len(engines))
	for _, engine := range engines {
		out = append(out, estimateFor(b, engine))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Engine < out[j].Engine })
	return out, nil
}

func estimateFor(b *bundle.Bundle, engine string) Estimate {
	est := Estimate{Engine: engine}
	isIsingOnly := true
	hasIsing := false
	for _, op := range b.Operators {
		switch op.RepKind {
		case qop.IsingProblem:
			hasIsing = true
		case qop.Measurement:
		default:
			isIsingOnly = false
		}
	}
	switch engine {
	case "anneal.sa":
		if !hasIsing || !isIsingOnly {
			est.Reason = "anneal engines realize only ISING_PROBLEM bundles"
			return est
		}
		reg := b.QDTs[0]
		reads := 1000
		sweeps := 1000
		if b.Context != nil && b.Context.Anneal != nil {
			if b.Context.Anneal.NumReads > 0 {
				reads = b.Context.Anneal.NumReads
			}
			if b.Context.Anneal.Sweeps > 0 {
				sweeps = b.Context.Anneal.Sweeps
			}
		}
		est.Feasible = true
		est.PhysicalUnits = reg.Width
		est.DurationNS = float64(reads) * float64(sweeps) * float64(reg.Width) * perFlipNS
		return est
	case "gate.statevector", "pulse.model":
		if hasIsing {
			est.Reason = "ISING_PROBLEM has no gate realization"
			return est
		}
		regs := algolib.Registers{}
		for _, d := range b.QDTs {
			regs[d.ID] = d
		}
		lowered, err := algolib.Lower(b.Operators, regs)
		if err != nil {
			est.Reason = fmt.Sprintf("lowering failed: %v", err)
			return est
		}
		opts := transpile.FromContext(b.Context)
		if engine == "pulse.model" && len(opts.BasisGates) == 0 {
			opts.BasisGates = []string{"sx", "rz", "cx"}
		}
		tr, err := transpile.Transpile(lowered.Circuit, opts)
		if err != nil {
			est.Reason = fmt.Sprintf("transpilation failed: %v", err)
			return est
		}
		var pulseCtx *ctxdesc.Pulse
		if b.Context != nil {
			pulseCtx = b.Context.Pulse
		}
		sched, err := pulse.Lower(tr.Circuit, pulse.FromContext(pulseCtx))
		if err != nil {
			// Circuits with native ops (permute/init/diagonal) have no
			// pulse schedule; the gate simulator still takes them.
			if engine == "pulse.model" {
				est.Reason = fmt.Sprintf("no pulse realization: %v", err)
				return est
			}
			sched = nil
		}
		shots := 1024
		if b.Context != nil && b.Context.Exec != nil && b.Context.Exec.Samples > 0 {
			shots = b.Context.Exec.Samples
		}
		est.Feasible = true
		est.TwoQubitGates = tr.Stats.TwoQAfter
		est.Depth = tr.Stats.DepthAfter
		est.PhysicalUnits = tr.Circuit.NumQubits
		if sched != nil {
			est.DurationNS = sched.TotalDurationNS * float64(shots)
		}
		return est
	}
	est.Reason = "unknown engine family"
	return est
}
