// Package jsonschema implements a small JSON Schema validator covering the
// subset of the specification that the middle layer's descriptor schemas
// use: type, enum, const, required, properties, additionalProperties,
// items, array and string length bounds, numeric bounds, pattern,
// allOf/anyOf/oneOf/not, and local $ref into $defs.
//
// The paper's descriptors each name a schema in their "$schema" field
// (qdt-core.schema.json, qod.schema.json, ctx.schema.json); validating
// artifacts against those schemas is how the middle layer "catches
// mismatches early" before anything reaches a backend.
package jsonschema

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Schema is a parsed JSON Schema document.
type Schema struct {
	raw  map[string]any
	root *Schema // document root, for $ref resolution

	compiled map[string]*regexp.Regexp
}

// Compile parses and prepares a schema from its JSON source.
func Compile(src []byte) (*Schema, error) {
	var raw map[string]any
	if err := json.Unmarshal(src, &raw); err != nil {
		return nil, fmt.Errorf("jsonschema: parse: %w", err)
	}
	s := &Schema{raw: raw, compiled: map[string]*regexp.Regexp{}}
	s.root = s
	if err := s.compilePatterns(raw); err != nil {
		return nil, err
	}
	return s, nil
}

// MustCompile is Compile for schemas embedded in the binary; it panics on
// error, which can only indicate a programming mistake.
func MustCompile(src []byte) *Schema {
	s, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Schema) compilePatterns(node any) error {
	switch v := node.(type) {
	case map[string]any:
		if p, ok := v["pattern"].(string); ok {
			if _, done := s.compiled[p]; !done {
				re, err := regexp.Compile(p)
				if err != nil {
					return fmt.Errorf("jsonschema: bad pattern %q: %w", p, err)
				}
				s.compiled[p] = re
			}
		}
		for _, child := range v {
			if err := s.compilePatterns(child); err != nil {
				return err
			}
		}
	case []any:
		for _, child := range v {
			if err := s.compilePatterns(child); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidationError describes a single constraint violation.
type ValidationError struct {
	Path    string // JSON pointer-ish path to the offending value
	Message string
}

func (e ValidationError) Error() string {
	if e.Path == "" {
		return e.Message
	}
	return e.Path + ": " + e.Message
}

// Errors aggregates all violations found in one document.
type Errors []ValidationError

func (es Errors) Error() string {
	if len(es) == 0 {
		return "jsonschema: no errors"
	}
	msgs := make([]string, len(es))
	for i, e := range es {
		msgs[i] = e.Error()
	}
	return "jsonschema: " + strings.Join(msgs, "; ")
}

// ValidateBytes validates raw JSON against the schema.
func (s *Schema) ValidateBytes(doc []byte) error {
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return fmt.Errorf("jsonschema: document parse: %w", err)
	}
	return s.Validate(v)
}

// Validate validates a decoded JSON value (as produced by encoding/json
// into any) against the schema. It returns nil or an Errors value listing
// every violation.
func (s *Schema) Validate(v any) error {
	var errs Errors
	s.validate(s.raw, v, "$", &errs)
	if len(errs) == 0 {
		return nil
	}
	return errs
}

func (s *Schema) resolveRef(ref string) (map[string]any, bool) {
	// Only local refs of the form "#/$defs/name" (or nested) are supported.
	if !strings.HasPrefix(ref, "#/") {
		return nil, false
	}
	parts := strings.Split(strings.TrimPrefix(ref, "#/"), "/")
	var cur any = s.root.raw
	for _, p := range parts {
		m, ok := cur.(map[string]any)
		if !ok {
			return nil, false
		}
		cur, ok = m[p]
		if !ok {
			return nil, false
		}
	}
	m, ok := cur.(map[string]any)
	return m, ok
}

func jsonType(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case float64:
		if t == math.Trunc(t) && !math.IsInf(t, 0) {
			return "integer"
		}
		return "number"
	case json.Number:
		if _, err := t.Int64(); err == nil {
			return "integer"
		}
		return "number"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func typeMatches(want string, v any) bool {
	got := jsonType(v)
	if want == got {
		return true
	}
	// An integer is also a number.
	return want == "number" && got == "integer"
}

func asFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case json.Number:
		f, err := t.Float64()
		return f, err == nil
	}
	return 0, false
}

func deepEqual(a, b any) bool {
	ab, errA := json.Marshal(canonical(a))
	bb, errB := json.Marshal(canonical(b))
	return errA == nil && errB == nil && string(ab) == string(bb)
}

// canonical recursively sorts map keys so deepEqual is order-insensitive.
// encoding/json already sorts map keys, so this is mainly about normalizing
// numeric forms.
func canonical(v any) any { return v }

func (s *Schema) validate(schema map[string]any, v any, path string, errs *Errors) {
	if ref, ok := schema["$ref"].(string); ok {
		target, found := s.resolveRef(ref)
		if !found {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("unresolvable $ref %q", ref)})
			return
		}
		s.validate(target, v, path, errs)
		return
	}

	if t, ok := schema["type"]; ok {
		switch tt := t.(type) {
		case string:
			if !typeMatches(tt, v) {
				*errs = append(*errs, ValidationError{path, fmt.Sprintf("got %s, want %s", jsonType(v), tt)})
				return
			}
		case []any:
			okAny := false
			var names []string
			for _, alt := range tt {
				if name, isStr := alt.(string); isStr {
					names = append(names, name)
					if typeMatches(name, v) {
						okAny = true
					}
				}
			}
			if !okAny {
				*errs = append(*errs, ValidationError{path, fmt.Sprintf("got %s, want one of %v", jsonType(v), names)})
				return
			}
		}
	}

	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, e := range enum {
			if deepEqual(e, v) {
				found = true
				break
			}
		}
		if !found {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("value %v not in enum", compactJSON(v))})
		}
	}
	if c, ok := schema["const"]; ok {
		if !deepEqual(c, v) {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("value %v != const %v", compactJSON(v), compactJSON(c))})
		}
	}

	if f, isNum := asFloat(v); isNum {
		if m, ok := asFloat(schema["minimum"]); ok && f < m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("%v < minimum %v", f, m)})
		}
		if m, ok := asFloat(schema["maximum"]); ok && f > m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("%v > maximum %v", f, m)})
		}
		if m, ok := asFloat(schema["exclusiveMinimum"]); ok && f <= m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("%v <= exclusiveMinimum %v", f, m)})
		}
		if m, ok := asFloat(schema["exclusiveMaximum"]); ok && f >= m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("%v >= exclusiveMaximum %v", f, m)})
		}
		if m, ok := asFloat(schema["multipleOf"]); ok && m > 0 {
			q := f / m
			if math.Abs(q-math.Round(q)) > 1e-9 {
				*errs = append(*errs, ValidationError{path, fmt.Sprintf("%v is not a multiple of %v", f, m)})
			}
		}
	}

	if str, isStr := v.(string); isStr {
		if m, ok := asFloat(schema["minLength"]); ok && float64(len([]rune(str))) < m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("string length %d < minLength %v", len([]rune(str)), m)})
		}
		if m, ok := asFloat(schema["maxLength"]); ok && float64(len([]rune(str))) > m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("string length %d > maxLength %v", len([]rune(str)), m)})
		}
		if p, ok := schema["pattern"].(string); ok {
			re := s.root.compiled[p]
			if re != nil && !re.MatchString(str) {
				*errs = append(*errs, ValidationError{path, fmt.Sprintf("string %q does not match pattern %q", str, p)})
			}
		}
	}

	if arr, isArr := v.([]any); isArr {
		if m, ok := asFloat(schema["minItems"]); ok && float64(len(arr)) < m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("array length %d < minItems %v", len(arr), m)})
		}
		if m, ok := asFloat(schema["maxItems"]); ok && float64(len(arr)) > m {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("array length %d > maxItems %v", len(arr), m)})
		}
		if items, ok := schema["items"].(map[string]any); ok {
			for i, elem := range arr {
				s.validate(items, elem, fmt.Sprintf("%s[%d]", path, i), errs)
			}
		}
		if uniq, ok := schema["uniqueItems"].(bool); ok && uniq {
			seen := map[string]int{}
			for i, elem := range arr {
				key := compactJSON(elem)
				if j, dup := seen[key]; dup {
					*errs = append(*errs, ValidationError{fmt.Sprintf("%s[%d]", path, i), fmt.Sprintf("duplicate of element %d", j)})
				} else {
					seen[key] = i
				}
			}
		}
	}

	if obj, isObj := v.(map[string]any); isObj {
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := obj[name]; !present {
					*errs = append(*errs, ValidationError{path, fmt.Sprintf("missing required property %q", name)})
				}
			}
		}
		props, _ := schema["properties"].(map[string]any)
		for name, sub := range props {
			if child, present := obj[name]; present {
				if subSchema, ok := sub.(map[string]any); ok {
					s.validate(subSchema, child, path+"."+name, errs)
				}
			}
		}
		if ap, ok := schema["additionalProperties"]; ok {
			// Deterministic error ordering: iterate keys sorted.
			keys := make([]string, 0, len(obj))
			for k := range obj {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if _, declared := props[k]; declared {
					continue
				}
				switch rule := ap.(type) {
				case bool:
					if !rule {
						*errs = append(*errs, ValidationError{path, fmt.Sprintf("unexpected property %q", k)})
					}
				case map[string]any:
					s.validate(rule, obj[k], path+"."+k, errs)
				}
			}
		}
	}

	if all, ok := schema["allOf"].([]any); ok {
		for _, sub := range all {
			if m, isM := sub.(map[string]any); isM {
				s.validate(m, v, path, errs)
			}
		}
	}
	if anyOf, ok := schema["anyOf"].([]any); ok {
		matched := false
		for _, sub := range anyOf {
			if m, isM := sub.(map[string]any); isM {
				var trial Errors
				s.validate(m, v, path, &trial)
				if len(trial) == 0 {
					matched = true
					break
				}
			}
		}
		if !matched {
			*errs = append(*errs, ValidationError{path, "value matches no anyOf alternative"})
		}
	}
	if oneOf, ok := schema["oneOf"].([]any); ok {
		matches := 0
		for _, sub := range oneOf {
			if m, isM := sub.(map[string]any); isM {
				var trial Errors
				s.validate(m, v, path, &trial)
				if len(trial) == 0 {
					matches++
				}
			}
		}
		if matches != 1 {
			*errs = append(*errs, ValidationError{path, fmt.Sprintf("value matches %d oneOf alternatives, want exactly 1", matches)})
		}
	}
	if not, ok := schema["not"].(map[string]any); ok {
		var trial Errors
		s.validate(not, v, path, &trial)
		if len(trial) == 0 {
			*errs = append(*errs, ValidationError{path, "value matches forbidden (not) schema"})
		}
	}
}

func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}
