package transpile

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
	"repro/internal/sim"
)

// equalUpToGlobalPhase compares two states.
func equalUpToGlobalPhase(a, b *sim.State, tol float64) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	var phase complex128
	found := false
	for k := 0; k < a.Dim(); k++ {
		if cmplx.Abs(b.Amplitude(uint64(k))) > tol {
			phase = a.Amplitude(uint64(k)) / b.Amplitude(uint64(k))
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for k := 0; k < a.Dim(); k++ {
		if cmplx.Abs(a.Amplitude(uint64(k))-phase*b.Amplitude(uint64(k))) > tol {
			return false
		}
	}
	return true
}

// randomPrep appends a random product-state preparation so equivalence
// checks exercise all amplitudes.
func randomPrep(c *circuit.Circuit, seed uint64) {
	r := rng.New(seed)
	for q := 0; q < c.NumQubits; q++ {
		c.RY(r.Float64()*3, q)
		c.RZ(r.Float64()*3, q)
	}
}

// clbitDist returns the exact Born distribution over the classical
// register defined by the circuit's measurements.
func clbitDist(t *testing.T, c *circuit.Circuit) map[uint64]float64 {
	t.Helper()
	// Strip measurements for evolution, then marginalize.
	evolved := circuit.New(c.NumQubits, c.NumClbits)
	for _, ins := range c.Instrs {
		if ins.Op == circuit.OpMeasure {
			continue
		}
		if err := evolved.Append(ins); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sim.Evolve(evolved)
	if err != nil {
		t.Fatal(err)
	}
	mm := c.MeasureMap()
	dist := map[uint64]float64{}
	for k := 0; k < st.Dim(); k++ {
		p := st.Probability(uint64(k))
		if p < 1e-15 {
			continue
		}
		var reg uint64
		for q, cb := range mm {
			if uint64(k)>>uint(q)&1 == 1 {
				reg |= 1 << uint(cb)
			}
		}
		dist[reg] += p
	}
	return dist
}

func distsEqual(a, b map[uint64]float64, tol float64) bool {
	keys := map[uint64]bool{}
	for k := range a {
		keys[k] = true
	}
	for k := range b {
		keys[k] = true
	}
	for k := range keys {
		if math.Abs(a[k]-b[k]) > tol {
			return false
		}
	}
	return true
}

var listing4Basis = []string{"sx", "rz", "cx"}

func TestDecomposeSingleGatesExact(t *testing.T) {
	// Every 1q/2q/3q gate's decomposition must reproduce the original
	// state up to global phase, starting from a random state.
	type tc struct {
		name  string
		nq    int
		build func(c *circuit.Circuit)
	}
	cases := []tc{
		{"h", 1, func(c *circuit.Circuit) { c.H(0) }},
		{"x", 1, func(c *circuit.Circuit) { c.X(0) }},
		{"y", 1, func(c *circuit.Circuit) { c.Y(0) }},
		{"z", 1, func(c *circuit.Circuit) { c.Z(0) }},
		{"s", 1, func(c *circuit.Circuit) { c.S(0) }},
		{"t", 1, func(c *circuit.Circuit) { c.T(0) }},
		{"rx", 1, func(c *circuit.Circuit) { c.RX(1.234, 0) }},
		{"ry", 1, func(c *circuit.Circuit) { c.RY(-0.77, 0) }},
		{"p", 1, func(c *circuit.Circuit) { c.Phase(0.41, 0) }},
		{"cz", 2, func(c *circuit.Circuit) { c.CZGate(0, 1) }},
		{"cp", 2, func(c *circuit.Circuit) { c.CPhase(1.1, 0, 1) }},
		{"swap", 2, func(c *circuit.Circuit) { c.Swap(0, 1) }},
		{"ccx", 3, func(c *circuit.Circuit) { c.CCX(0, 1, 2) }},
		{"cswap", 3, func(c *circuit.Circuit) { c.CSwap(0, 1, 2) }},
	}
	for _, tcase := range cases {
		t.Run(tcase.name, func(t *testing.T) {
			orig := circuit.New(tcase.nq, 0)
			randomPrep(orig, 99)
			tcase.build(orig)

			prep := circuit.New(tcase.nq, 0)
			randomPrep(prep, 99)
			gateOnly := circuit.New(tcase.nq, 0)
			tcase.build(gateOnly)
			low, err := Decompose(gateOnly, listing4Basis)
			if err != nil {
				t.Fatal(err)
			}
			for _, ins := range low.Instrs {
				if ins.Op == circuit.OpGate && ins.Gate != "sx" && ins.Gate != "rz" && ins.Gate != "cx" {
					t.Fatalf("gate %q escaped decomposition", ins.Gate)
				}
			}
			if err := prep.Compose(low); err != nil {
				t.Fatal(err)
			}
			sOrig, err := sim.Evolve(orig)
			if err != nil {
				t.Fatal(err)
			}
			sLow, err := sim.Evolve(prep)
			if err != nil {
				t.Fatal(err)
			}
			if !equalUpToGlobalPhase(sOrig, sLow, 1e-9) {
				t.Errorf("decomposition of %s is not equivalent", tcase.name)
			}
		})
	}
}

func TestDecomposeEmptyBasisIsNative(t *testing.T) {
	c2 := circuit.New(3, 0)
	c2.H(0).CCX(0, 1, 2)
	out, err := Decompose(c2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountOps()["ccx"] != 1 {
		t.Error("native mode rewrote gates")
	}
}

func TestDecomposeRejectsNativeOps(t *testing.T) {
	c := circuit.New(2, 0)
	if err := c.Permute([]int{0, 1}, []uint64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := Decompose(c, listing4Basis); err == nil {
		t.Error("permute accepted under basis constraint")
	}
}

func TestDecomposeUnreachableBasis(t *testing.T) {
	c := circuit.New(1, 0)
	c.H(0)
	if _, err := Decompose(c, []string{"cx"}); err == nil {
		t.Error("H decomposed into cx-only basis")
	}
}

func TestRouteLinearChain(t *testing.T) {
	// cx(0,3) on a 0-1-2-3 line needs swaps.
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	c := circuit.New(4, 4)
	randomPrep(c, 5)
	c.CX(0, 3)
	c.MeasureAll()
	routed, layout, swaps, err := Route(c, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if swaps == 0 {
		t.Error("no swaps inserted for distant pair")
	}
	if len(layout) != 4 {
		t.Errorf("layout size %d", len(layout))
	}
	// Every two-qubit gate must act on coupled qubits.
	coup, _ := newCoupling(pairs, 4)
	for _, ins := range routed.Instrs {
		if ins.Op == circuit.OpGate && len(ins.Qubits) == 2 {
			if !coup.connected(ins.Qubits[0], ins.Qubits[1]) {
				t.Errorf("gate %s on uncoupled pair %v", ins.Gate, ins.Qubits)
			}
		}
	}
	// Semantics preserved through measurement remapping.
	if !distsEqual(clbitDist(t, c), clbitDist(t, routed), 1e-9) {
		t.Error("routing changed the measured distribution")
	}
}

func TestRouteRing(t *testing.T) {
	// The paper's §5 four-qubit ring 0-1-2-3-0.
	pairs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	c := circuit.New(4, 4)
	randomPrep(c, 11)
	c.CX(0, 2).CX(1, 3).CX(0, 1)
	c.MeasureAll()
	routed, _, _, err := Route(c, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !distsEqual(clbitDist(t, c), clbitDist(t, routed), 1e-9) {
		t.Error("ring routing changed the measured distribution")
	}
}

func TestRouteDisconnected(t *testing.T) {
	pairs := [][2]int{{0, 1}, {2, 3}}
	c := circuit.New(4, 0)
	c.CX(0, 3)
	if _, _, _, err := Route(c, pairs); err == nil {
		t.Error("disconnected routing succeeded")
	}
}

func TestRouteRejectsThreeQubitGates(t *testing.T) {
	c := circuit.New(3, 0)
	c.CCX(0, 1, 2)
	if _, _, _, err := Route(c, [][2]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("ccx routed without decomposition")
	}
}

func TestRouteNoCouplingIsIdentity(t *testing.T) {
	c := circuit.New(3, 0)
	c.CX(0, 2)
	routed, layout, swaps, err := Route(c, nil)
	if err != nil || swaps != 0 {
		t.Fatalf("err=%v swaps=%d", err, swaps)
	}
	if len(routed.Instrs) != 1 || layout[2] != 2 {
		t.Error("no-coupling route modified circuit")
	}
}

func TestOptimizeCancellation(t *testing.T) {
	c := circuit.New(2, 0)
	c.H(0).H(0).CX(0, 1).CX(0, 1).X(1).X(1)
	out := Optimize(c, 1)
	if out.Size() != 0 {
		t.Errorf("self-inverse pairs survived: %v", out.CountOps())
	}
}

func TestOptimizeRotationMerge(t *testing.T) {
	c := circuit.New(1, 0)
	c.RZ(0.5, 0).RZ(0.25, 0).RZ(-0.75, 0)
	out := Optimize(c, 2)
	if out.Size() != 0 {
		t.Errorf("rz angles did not merge to zero: %v", out.String())
	}
	c2 := circuit.New(1, 0)
	c2.RZ(0.5, 0).RZ(0.25, 0)
	out2 := Optimize(c2, 1)
	if out2.Size() != 1 || math.Abs(out2.Instrs[0].Params[0]-0.75) > 1e-12 {
		t.Errorf("rz merge wrong: %v", out2.String())
	}
}

func TestOptimizeDropsIdentity(t *testing.T) {
	c := circuit.New(1, 0)
	c.Gate(gates.I, []int{0})
	c.RZ(0, 0)
	c.RX(2*math.Pi, 0)
	out := Optimize(c, 1)
	if out.Size() != 0 {
		t.Errorf("identities survived: %v", out.CountOps())
	}
}

func TestOptimizeCommutationLevel2(t *testing.T) {
	// h(0) … h(0) separated by rz on the control of a cx and the cx
	// itself: level 2 cannot remove the h pair (h does not commute), but
	// cx(0,1) rz(0,ctrl) cx(0,1) — the rz commutes through, letting the
	// cx pair cancel.
	c := circuit.New(2, 0)
	c.CX(0, 1).RZ(0.4, 0).CX(0, 1)
	out := Optimize(c, 2)
	counts := out.CountOps()
	if counts["cx"] != 0 || counts["rz"] != 1 {
		t.Errorf("commuting cancellation failed: %v", counts)
	}
	// Level 1 must NOT do this (no look-through).
	out1 := Optimize(c, 1)
	if out1.CountOps()["cx"] != 2 {
		t.Errorf("level 1 unexpectedly looked through: %v", out1.CountOps())
	}
	// And the result must still be correct.
	pre := circuit.New(2, 0)
	randomPrep(pre, 3)
	full := pre.Copy()
	if err := full.Compose(c); err != nil {
		t.Fatal(err)
	}
	opt := pre.Copy()
	if err := opt.Compose(out); err != nil {
		t.Fatal(err)
	}
	s1, _ := sim.Evolve(full)
	s2, _ := sim.Evolve(opt)
	if !equalUpToGlobalPhase(s1, s2, 1e-9) {
		t.Error("level-2 optimization changed semantics")
	}
}

func TestOptimizePreservesSemanticsRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const nq = 4
		c := circuit.New(nq, 0)
		randomPrep(c, seed)
		for i := 0; i < 30; i++ {
			switch r.Intn(6) {
			case 0:
				c.H(r.Intn(nq))
			case 1:
				c.RZ(r.Float64()*4-2, r.Intn(nq))
			case 2:
				a := r.Intn(nq)
				b := (a + 1 + r.Intn(nq-1)) % nq
				c.CX(a, b)
			case 3:
				c.X(r.Intn(nq))
			case 4:
				c.T(r.Intn(nq))
			case 5:
				a := r.Intn(nq)
				b := (a + 1 + r.Intn(nq-1)) % nq
				c.CPhase(r.Float64()*2, a, b)
			}
		}
		opt := Optimize(c, 2)
		s1, err1 := sim.Evolve(c)
		s2, err2 := sim.Evolve(opt)
		if err1 != nil || err2 != nil {
			return false
		}
		return equalUpToGlobalPhase(s1, s2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTranspilePipelineListing4(t *testing.T) {
	// Full Listing-4 context shape: basis {sx,rz,cx}, linear coupling,
	// level 2 — on a circuit with distant interactions.
	c := circuit.New(4, 4)
	randomPrep(c, 21)
	c.H(0).CCX(0, 1, 3).CPhase(0.9, 0, 3)
	c.MeasureAll()
	res, err := Transpile(c, Options{
		BasisGates:        listing4Basis,
		CouplingMap:       [][2]int{{0, 1}, {1, 2}, {2, 3}},
		OptimizationLevel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range res.Circuit.Instrs {
		if ins.Op != circuit.OpGate {
			continue
		}
		switch ins.Gate {
		case "sx", "rz", "cx":
		default:
			t.Fatalf("gate %q escaped transpilation", ins.Gate)
		}
	}
	if !distsEqual(clbitDist(t, c), clbitDist(t, res.Circuit), 1e-9) {
		t.Error("transpilation changed the measured distribution")
	}
	if res.Stats.SwapsInserted == 0 {
		t.Error("expected swaps on the linear chain")
	}
	if res.Stats.TwoQAfter <= res.Stats.TwoQBefore {
		t.Errorf("routing+decomposition should raise 2q count: %d -> %d",
			res.Stats.TwoQBefore, res.Stats.TwoQAfter)
	}
}

func TestTranspileQuickRandomCircuits(t *testing.T) {
	// Property: transpiling random measured circuits to the Listing-4
	// target preserves the clbit distribution.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const nq = 4
		c := circuit.New(nq, nq)
		randomPrep(c, seed^0xabc)
		for i := 0; i < 12; i++ {
			switch r.Intn(5) {
			case 0:
				c.H(r.Intn(nq))
			case 1:
				c.T(r.Intn(nq))
			case 2:
				a := r.Intn(nq)
				b := (a + 1 + r.Intn(nq-1)) % nq
				c.CX(a, b)
			case 3:
				a := r.Intn(nq)
				b := (a + 1 + r.Intn(nq-1)) % nq
				c.Swap(a, b)
			case 4:
				c.RY(r.Float64()*3, r.Intn(nq))
			}
		}
		c.MeasureAll()
		res, err := Transpile(c, Options{
			BasisGates:        listing4Basis,
			CouplingMap:       [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
			OptimizationLevel: 2,
		})
		if err != nil {
			return false
		}
		return distsEqual(clbitDistQuick(c), clbitDistQuick(res.Circuit), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func clbitDistQuick(c *circuit.Circuit) map[uint64]float64 {
	evolved := circuit.New(c.NumQubits, c.NumClbits)
	for _, ins := range c.Instrs {
		if ins.Op == circuit.OpMeasure {
			continue
		}
		if err := evolved.Append(ins); err != nil {
			return nil
		}
	}
	st, err := sim.Evolve(evolved)
	if err != nil {
		return nil
	}
	mm := c.MeasureMap()
	dist := map[uint64]float64{}
	for k := 0; k < st.Dim(); k++ {
		p := st.Probability(uint64(k))
		if p < 1e-15 {
			continue
		}
		var reg uint64
		for q, cb := range mm {
			if uint64(k)>>uint(q)&1 == 1 {
				reg |= 1 << uint(cb)
			}
		}
		dist[reg] += p
	}
	return dist
}

func TestFromContext(t *testing.T) {
	if opts := FromContext(nil); opts.OptimizationLevel != 1 {
		t.Error("nil context defaults wrong")
	}
}
