package backend

import (
	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/pulse"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/transpile"
)

// Pulse is the pulse-model backend: it realizes the bundle as a timed
// pulse schedule and reports duration costs instead of sampled counts.
// (The paper lists pulse/control among the orthogonal context services;
// this engine is the realization path for exec.engine = "pulse.model".)
type Pulse struct {
	engine string
}

// Name implements Backend.
func (p *Pulse) Name() string { return p.engine }

// PulseInfo is the meta record the pulse engine produces.
type PulseInfo struct {
	TotalDurationNS float64
	OpCount         int
	CriticalPathLen int
	PerQubitBusyNS  []float64
}

// Execute lowers, transpiles to the Listing-4 basis (pulse hardware
// drives a calibrated native set), and schedules.
func (p *Pulse) Execute(b *bundle.Bundle) (*result.Result, error) {
	if err := b.Validate(qop.ValidateOptions{}); err != nil {
		return nil, err
	}
	regs := algolib.Registers{}
	for _, d := range b.QDTs {
		regs[d.ID] = d
	}
	lowered, err := algolib.Lower(b.Operators, regs)
	if err != nil {
		return nil, err
	}
	ctx := b.Context
	if ctx == nil {
		ctx = ctxdesc.New()
	}
	opts := transpile.FromContext(ctx)
	if len(opts.BasisGates) == 0 {
		opts.BasisGates = []string{"sx", "rz", "cx"}
	}
	tr, err := transpile.Transpile(lowered.Circuit, opts)
	if err != nil {
		return nil, err
	}
	cfg := pulse.FromContext(ctx.Pulse)
	sched, err := pulse.Lower(tr.Circuit, cfg)
	if err != nil {
		return nil, err
	}
	meta := map[string]any{
		"transpile": tr.Stats,
		"pulse": PulseInfo{
			TotalDurationNS: sched.TotalDurationNS,
			OpCount:         len(sched.Ops),
			CriticalPathLen: len(sched.CriticalPath()),
			PerQubitBusyNS:  sched.PerQubitBusyNS,
		},
	}
	return &result.Result{Engine: p.engine, Samples: 0, Meta: meta}, nil
}
