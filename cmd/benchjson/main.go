// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name → ns/op on stdout. CI pipes the bench
// smoke step through it to publish BENCH_PR<n>.json artifacts, so the
// performance trajectory of the kernel engine is recorded run over run
// instead of scrolling away in logs.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH.json
//
// Sub-benchmarks keep their full slash-separated name; the -N GOMAXPROCS
// suffix is stripped so artifacts diff cleanly across machines. A
// benchmark appearing more than once (e.g. -count > 1) keeps its last
// reading.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseBench extracts name → ns/op pairs from benchmark result lines of
// the form:
//
//	BenchmarkName-8   	      10	 123456 ns/op	  16 B/op ...
func parseBench(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := splitFields(sc.Text())
		if len(fields) < 4 || !isBenchName(fields[0]) {
			continue
		}
		// Find the value preceding the "ns/op" unit token.
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			var ns float64
			if _, err := fmt.Sscanf(fields[i], "%g", &ns); err == nil {
				results[trimProcs(fields[0])] = ns
			}
			break
		}
	}
	return results, sc.Err()
}

func splitFields(line string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(line); i++ {
		if i < len(line) && line[i] != ' ' && line[i] != '\t' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, line[start:i])
			start = -1
		}
	}
	return out
}

func isBenchName(s string) bool {
	const prefix = "Benchmark"
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths (and any -N inside them) intact.
func trimProcs(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}
