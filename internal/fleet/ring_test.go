package fleet

import (
	"fmt"
	"testing"
)

// TestRingMinimalRehash pins the consistent-hash property the affinity
// router depends on: ejecting one worker moves ONLY the keys that worker
// owned (everything else keeps its node), and readmitting it restores
// the original mapping exactly — so a worker bouncing in and out of the
// fleet does not scramble cache locality for the others.
func TestRingMinimalRehash(t *testing.T) {
	workers := []string{"http://w1:8080", "http://w2:8080", "http://w3:8080"}
	r := buildRing(workers, 64)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("sha256:%064d", i)
	}
	baseline := map[string]string{}
	owned := map[string]int{}
	for _, k := range keys {
		w := r.lookup(k, nil)
		if w == "" {
			t.Fatalf("key %s mapped nowhere", k)
		}
		baseline[k] = w
		owned[w]++
	}
	// Every worker must own a meaningful share — a degenerate ring would
	// defeat load spreading.
	for _, w := range workers {
		if owned[w] < len(keys)/10 {
			t.Fatalf("worker %s owns only %d/%d keys", w, owned[w], len(keys))
		}
	}

	// Eject w2: its keys redistribute, all other keys stay put.
	alive := func(name string) bool { return name != workers[1] }
	moved := 0
	for _, k := range keys {
		w := r.lookup(k, alive)
		if baseline[k] != workers[1] {
			if w != baseline[k] {
				t.Fatalf("key %s moved %s→%s though its owner stayed healthy", k, baseline[k], w)
			}
			continue
		}
		moved++
		if w == workers[1] || w == "" {
			t.Fatalf("key %s still on the ejected worker (%q)", k, w)
		}
	}
	if moved != owned[workers[1]] {
		t.Fatalf("moved %d keys, want exactly the ejected worker's %d", moved, owned[workers[1]])
	}

	// Readmit: the original mapping returns bit-for-bit.
	for _, k := range keys {
		if w := r.lookup(k, nil); w != baseline[k] {
			t.Fatalf("key %s: %s after readmit, want %s", k, w, baseline[k])
		}
	}
}
