// Package anneal implements the simulated annealing sampler backing the
// middle layer's annealing path — the substitute for D-Wave Ocean's `neal`
// simulated annealer, which is itself a classical Metropolis sampler.
//
// Sample draws num_reads independent anneals of an Ising model, each a
// sequence of Metropolis sweeps under a rising inverse-temperature
// schedule, and aggregates the observed configurations with their
// energies. Reads run in parallel across goroutines; determinism is
// preserved by deriving one child RNG per read up front.
//
// The package also provides the classical baselines (random sampling,
// greedy descent, tabu search) used by the E11 ablation benchmarks.
package anneal

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ising"
	"repro/internal/rng"
)

// Defaults applied when the context leaves fields zero.
const (
	DefaultSweeps  = 1000
	DefaultBetaMin = 0.1
	DefaultBetaMax = 5.0
)

// Params configure a sampling run (mirroring the context descriptor's
// anneal block).
type Params struct {
	NumReads int
	Sweeps   int
	BetaMin  float64
	BetaMax  float64
	Schedule string // "geometric" (default) or "linear"
	Seed     uint64
}

func (p Params) withDefaults(m *ising.Model) (Params, error) {
	if p.NumReads < 1 {
		return p, fmt.Errorf("anneal: num_reads %d < 1", p.NumReads)
	}
	if p.Sweeps == 0 {
		p.Sweeps = DefaultSweeps
	}
	if p.Sweeps < 0 {
		return p, fmt.Errorf("anneal: negative sweeps %d", p.Sweeps)
	}
	scale := m.MaxAbsCoupling()
	if scale == 0 {
		scale = 1
	}
	if p.BetaMin == 0 {
		p.BetaMin = DefaultBetaMin / scale
	}
	if p.BetaMax == 0 {
		p.BetaMax = DefaultBetaMax / scale * 4
	}
	if p.BetaMin < 0 || p.BetaMax < p.BetaMin {
		return p, fmt.Errorf("anneal: invalid beta range [%v, %v]", p.BetaMin, p.BetaMax)
	}
	switch p.Schedule {
	case "":
		p.Schedule = "geometric"
	case "geometric", "linear":
	default:
		return p, fmt.Errorf("anneal: unknown schedule %q", p.Schedule)
	}
	return p, nil
}

// betaAt returns the inverse temperature for sweep s of total.
func betaAt(p Params, s, total int) float64 {
	if total <= 1 {
		return p.BetaMax
	}
	t := float64(s) / float64(total-1)
	switch p.Schedule {
	case "linear":
		return p.BetaMin + t*(p.BetaMax-p.BetaMin)
	default: // geometric
		if p.BetaMin <= 0 {
			return p.BetaMin + t*(p.BetaMax-p.BetaMin)
		}
		return p.BetaMin * math.Pow(p.BetaMax/p.BetaMin, t)
	}
}

// Sample is one aggregated configuration.
type Sample struct {
	Mask        uint64 // bit i set → spin i = +1
	Energy      float64
	Occurrences int
}

// Result aggregates a sampling run, sorted by ascending energy (ties by
// mask).
type Result struct {
	Samples  []Sample
	NumReads int
}

// Best returns the lowest-energy sample. It panics on an empty result
// (impossible for NumReads >= 1).
func (r *Result) Best() Sample { return r.Samples[0] }

// MeanEnergy returns the occurrence-weighted mean energy over all reads.
func (r *Result) MeanEnergy() float64 {
	total := 0.0
	n := 0
	for _, s := range r.Samples {
		total += s.Energy * float64(s.Occurrences)
		n += s.Occurrences
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// GroundProbability returns the fraction of reads that landed within tol
// of the given energy.
func (r *Result) GroundProbability(groundEnergy, tol float64) float64 {
	hits := 0
	n := 0
	for _, s := range r.Samples {
		n += s.Occurrences
		if math.Abs(s.Energy-groundEnergy) <= tol {
			hits += s.Occurrences
		}
	}
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// Sample runs simulated annealing on the model.
func SampleModel(m *ising.Model, p Params) (*Result, error) {
	p, err := p.withDefaults(m)
	if err != nil {
		return nil, err
	}
	if m.N == 0 {
		return nil, fmt.Errorf("anneal: empty model")
	}
	if m.N > 63 {
		return nil, fmt.Errorf("anneal: model size %d exceeds 63-spin mask limit", m.N)
	}

	// Derive per-read RNGs sequentially for determinism, then fan out.
	master := rng.New(p.Seed)
	readRNGs := make([]*rng.Rand, p.NumReads)
	for i := range readRNGs {
		readRNGs[i] = master.Child()
	}

	masks := make([]uint64, p.NumReads)
	adj := m.AdjacencyList()
	workers := runtime.GOMAXPROCS(0)
	if workers > p.NumReads {
		workers = p.NumReads
	}
	var wg sync.WaitGroup
	chunk := (p.NumReads + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > p.NumReads {
			hi = p.NumReads
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				masks[i] = annealOnce(m, adj, p, readRNGs[i])
			}
		}(lo, hi)
	}
	wg.Wait()

	agg := map[uint64]int{}
	for _, mask := range masks {
		agg[mask]++
	}
	res := &Result{NumReads: p.NumReads}
	for mask, occ := range agg {
		res.Samples = append(res.Samples, Sample{Mask: mask, Energy: m.EnergyBits(mask), Occurrences: occ})
	}
	sortSamples(res.Samples)
	return res, nil
}

func sortSamples(samples []Sample) {
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].Energy != samples[j].Energy {
			return samples[i].Energy < samples[j].Energy
		}
		return samples[i].Mask < samples[j].Mask
	})
}

// annealOnce runs one read: random start, Metropolis sweeps with the beta
// schedule, local fields maintained incrementally.
func annealOnce(m *ising.Model, adj [][]int, p Params, r *rng.Rand) uint64 {
	n := m.N
	s := make([]int8, n)
	for i := range s {
		if r.Float64() < 0.5 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	// fields[i] = h_i + Σ_j J_ij s_j, updated on every accepted flip.
	fields := make([]float64, n)
	for i := 0; i < n; i++ {
		fields[i] = m.H[i]
		for _, j := range adj[i] {
			fields[i] += m.GetJ(i, j) * float64(s[j])
		}
	}
	for sweep := 0; sweep < p.Sweeps; sweep++ {
		beta := betaAt(p, sweep, p.Sweeps)
		for i := 0; i < n; i++ {
			delta := -2 * float64(s[i]) * fields[i]
			// Zero-cost moves accept with probability ½: deterministic
			// acceptance of ties in a fixed sweep order creates limit
			// cycles on plateaus (e.g. the 4-cycle's energy-0 band) that
			// never descend to the ground state.
			accept := delta < 0 ||
				(delta == 0 && r.Float64() < 0.5) ||
				(delta > 0 && r.Float64() < math.Exp(-beta*delta))
			if accept {
				old := s[i]
				s[i] = -old
				for _, j := range adj[i] {
					fields[j] += -2 * m.GetJ(i, j) * float64(old)
				}
			}
		}
	}
	return ising.BitsFromSpins(s)
}
