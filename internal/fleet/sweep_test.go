package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/qdt"
)

// sweepFleetBundle builds a symbolic QAOA sweep template for the given
// engine and point grid.
func sweepFleetBundle(t testing.TB, engine string, points [][]float64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(4), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate(engine, 256, 11)
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: points}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sweepGrid(n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.1 + 0.07*float64(i), 0.15 + 0.05*float64(i)}
	}
	return pts
}

// postSweepHTTP submits a sweep bundle to an HTTP endpoint and returns
// the accepted job ID.
func postSweepHTTP(t *testing.T, url string, b *bundle.Bundle) string {
	t.Helper()
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: %d (%s)", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("sweep submit body: %v (%s)", err, body)
	}
	return sub.ID
}

// sweepResultsByIndex fetches a terminal sweep's result document from an
// HTTP endpoint and returns per-point entry renderings keyed by global
// index.
func sweepResultsByIndex(t *testing.T, url, id string) map[int]string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/sweeps/" + id + "?wait=5s")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var doc struct {
				Results []struct {
					Index   int   `json:"index"`
					Entries []any `json:"entries"`
				} `json:"results"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("sweep result body: %v (%s)", err, body)
			}
			out := make(map[int]string, len(doc.Results))
			for _, pt := range doc.Results {
				out[pt.Index] = fmt.Sprint(pt.Entries)
			}
			return out
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("sweep %s still pending: %s", id, body)
			}
		default:
			t.Fatalf("sweep result: %d (%s)", resp.StatusCode, body)
		}
	}
}

// TestFleetSweepScatterMerge: a sweep POSTed to the dispatcher scatters
// its point ranges over both workers, and the merged result set is
// per-point identical to the same sweep on a fresh single node.
func TestFleetSweepScatterMerge(t *testing.T) {
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()

	const n = 8
	tmpl := sweepFleetBundle(t, "gate.statevector", sweepGrid(n))
	id := postSweepHTTP(t, front.URL, tmpl)

	// Long-poll the generic job route to terminal; the status must carry
	// the sweep progress fields.
	resp, err := http.Get(front.URL + "/v1/jobs/" + id + "?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		State      string `json:"state"`
		Sweep      bool   `json:"sweep"`
		Points     int    `json:"points"`
		PointsDone int    `json:"points_done"`
		Error      string `json:"error"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || !st.Sweep || st.Points != n || st.PointsDone != n {
		t.Fatalf("status: %+v (%s)", st, body)
	}

	// Both workers took a range: each pool accepted one sub-sweep.
	if w1.pool.Stats().Sweeps != 1 || w2.pool.Stats().Sweeps != 1 {
		t.Fatalf("scatter skipped a worker: w1=%d w2=%d sweeps",
			w1.pool.Stats().Sweeps, w2.pool.Stats().Sweeps)
	}
	if s := d.Stats(); s.Sweeps != 1 || s.Forwarded < 2 {
		t.Fatalf("dispatcher stats: %+v", s)
	}

	merged := sweepResultsByIndex(t, front.URL, id)
	if len(merged) != n {
		t.Fatalf("merged %d points, want %d", len(merged), n)
	}

	// Reference: the same template on a fresh single worker.
	w3 := startWorker(t, 2)
	refID := postSweepHTTP(t, w3.srv.URL, tmpl)
	ref := sweepResultsByIndex(t, w3.srv.URL, refID)
	for i := 0; i < n; i++ {
		if merged[i] == "" || merged[i] != ref[i] {
			t.Fatalf("point %d differs:\n fleet %s\n ref   %s", i, merged[i], ref[i])
		}
	}

	// A plain job's route rejects the sweep-results endpoint.
	plain, err := d.Submit(fleetBundle(t, "gate.statevector", 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(plain.ID); err != nil {
		t.Fatal(err)
	}
	presp, err := http.Get(front.URL + "/v1/sweeps/" + plain.ID)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep result for plain job: %d", presp.StatusCode)
	}
}

// TestFleetSweepRangeReforward: when a worker stops answering mid-sweep,
// only its unfinished range re-forwards — the other range keeps its
// assignment — and the sweep still completes with every point answered.
func TestFleetSweepRangeReforward(t *testing.T) {
	fb := registerFake(t, "fake.fleet_sweep")
	fb.block = make(chan struct{})
	fb.ran = make(chan struct{})
	// Release blocked executions even on a failure path: the worker
	// pools' Close cleanups otherwise wait forever on them.
	var unblock sync.Once
	release := func() { unblock.Do(func() { close(fb.block) }) }
	t.Cleanup(release)
	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	d := newDispatcher(t, fastOpts(w1, w2))

	const n = 6
	st, err := d.SubmitSweep(sweepFleetBundle(t, "fake.fleet_sweep", sweepGrid(n)))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sweep || st.Points != n {
		t.Fatalf("accepted status: %+v", st)
	}

	// Both ranges are executing their first point (the fake holds each
	// worker's execution open).
	<-fb.ran
	<-fb.ran
	go func() { // drain subsequent executions
		for range fb.ran {
		}
	}()

	// Identify a worker that owns a range and take it down; the poll
	// failures detach only that range. A point can start executing
	// before the dispatcher records the assignment under its own lock,
	// so poll until a range shows its worker.
	d.mu.Lock()
	j := d.jobs[st.ID]
	d.mu.Unlock()
	var victimURL string
	for deadline := time.Now().Add(10 * time.Second); victimURL == "" && time.Now().Before(deadline); {
		d.mu.Lock()
		for _, r := range j.sweep.ranges {
			if r.worker != "" {
				victimURL = r.worker
				break
			}
		}
		d.mu.Unlock()
		if victimURL == "" {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if victimURL == "" {
		t.Fatal("no range assigned within 10s")
	}
	victim := w1
	if victimURL == w2.srv.URL {
		victim = w2
	}
	victim.down.Store(true)
	release()

	fin, err := d.Wait(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != jobs.StateDone || fin.PointsDone != n {
		t.Fatalf("sweep finished %s points_done=%d (%s)", fin.State, fin.PointsDone, fin.Error)
	}
	if fin.Reforwards < 1 {
		t.Fatalf("no range was re-forwarded: %+v", fin)
	}
	if s := d.Stats(); s.Reforwarded < 1 {
		t.Fatalf("stats missed the range reforward: %+v", s)
	}
	// Every range ended on the surviving worker or finished before the
	// death; none is still assigned to the victim.
	d.mu.Lock()
	for _, r := range j.sweep.ranges {
		if !r.done {
			t.Errorf("range [%d,%d) not done", r.from, r.to)
		}
	}
	d.mu.Unlock()
}

// TestFleetSweepRecoveredTerminal: a terminal sweep replayed from the
// journal still answers Status with its grid size, and SweepResult
// reports the lost range assignments explicitly instead of guessing.
func TestFleetSweepRecoveredTerminal(t *testing.T) {
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := startWorker(t, 2)
	opts := fastOpts(w1)
	opts.Store = st1
	d := newDispatcher(t, opts)

	const n = 4
	sub, err := d.SubmitSweep(sweepFleetBundle(t, "gate.statevector", sweepGrid(n)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(sub.ID); err != nil {
		t.Fatal(err)
	}
	d.Close()
	st1.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	opts.Store = st2
	d2 := newDispatcher(t, opts)
	got, err := d2.Status(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone || !got.Sweep || got.Points != n || got.PointsDone != n {
		t.Fatalf("recovered status: %+v", got)
	}
	if _, _, err := d2.SweepResult(t.Context(), sub.ID); err == nil {
		t.Fatal("SweepResult after restart should report lost assignments")
	}
}
