package sim

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/circuit"
)

func TestRunBellCounts(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	res, err := Run(c, Options{Shots: 10000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts.TotalShots() != 10000 {
		t.Errorf("total shots %d", res.Counts.TotalShots())
	}
	if len(res.Counts) != 2 {
		t.Fatalf("Bell circuit produced %d outcomes: %v", len(res.Counts), res.Counts)
	}
	for _, k := range []uint64{0, 3} {
		frac := float64(res.Counts[k]) / 10000
		if math.Abs(frac-0.5) > 0.03 {
			t.Errorf("outcome %d frequency %v, want ~0.5", k, frac)
		}
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	c := circuit.New(3, 3)
	c.H(0).H(1).H(2).MeasureAll()
	a, err := Run(c, Options{Shots: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, Options{Shots: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Counts) != len(b.Counts) {
		t.Fatal("same seed, different outcome sets")
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("same seed, different counts at %d: %d vs %d", k, v, b.Counts[k])
		}
	}
	c2, err := Run(c, Options{Shots: 500, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, v := range a.Counts {
		if c2.Counts[k] != v {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical counts")
	}
}

func TestRunPartialMeasurement(t *testing.T) {
	// Measure only qubit 1 into clbit 0.
	c := circuit.New(2, 1)
	c.X(1)
	c.H(0)
	c.Measure(1, 0)
	res, err := Run(c, Options{Shots: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[1] != 100 {
		t.Errorf("expected all shots = 1, got %v", res.Counts)
	}
}

func TestRunClbitRemapping(t *testing.T) {
	// Qubit 0 -> clbit 2, qubit 2 -> clbit 0: X on qubit 0 should set
	// clbit 2 (value 4).
	c := circuit.New(3, 3)
	c.X(0)
	c.Measure(0, 2)
	c.Measure(2, 0)
	res, err := Run(c, Options{Shots: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[4] != 10 {
		t.Errorf("clbit remap wrong: %v", res.Counts)
	}
}

func TestRunRejectsMidCircuitMeasurement(t *testing.T) {
	c := circuit.New(1, 1)
	c.Measure(0, 0)
	c.H(0)
	if _, err := Run(c, Options{Shots: 1}); err == nil {
		t.Error("gate after measurement accepted")
	}
}

func TestRunNoMeasurements(t *testing.T) {
	c := circuit.New(2, 0)
	c.H(0)
	res, err := Run(c, Options{Shots: 100, Seed: 0, KeepState: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counts) != 0 {
		t.Error("unmeasured circuit produced counts")
	}
	if res.Final == nil {
		t.Fatal("KeepState did not keep state")
	}
	if math.Abs(res.Final.Probability(0)-0.5) > 1e-12 {
		t.Error("final state wrong")
	}
}

func TestRunNegativeShots(t *testing.T) {
	c := circuit.New(1, 1)
	if _, err := Run(c, Options{Shots: -1}); err == nil {
		t.Error("negative shots accepted")
	}
}

func TestRunPermuteAndInitInstructions(t *testing.T) {
	c := circuit.New(2, 2)
	if err := c.Init([]int{0, 1}, []complex128{0, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Permute([]int{0, 1}, []uint64{1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	c.MeasureAll()
	res, err := Run(c, Options{Shots: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// init put us at index 1; permute maps 1 -> 2.
	if res.Counts[2] != 50 {
		t.Errorf("counts = %v, want all at 2", res.Counts)
	}
}

func TestCountsHelpers(t *testing.T) {
	cnt := Counts{5: 10, 3: 30, 9: 30}
	if cnt.TotalShots() != 70 {
		t.Errorf("TotalShots = %d", cnt.TotalShots())
	}
	keys := cnt.Keys()
	if len(keys) != 3 || keys[0] != 3 || keys[1] != 5 || keys[2] != 9 {
		t.Errorf("Keys = %v", keys)
	}
	k, n, ok := cnt.MostFrequent()
	if !ok || k != 3 || n != 30 {
		t.Errorf("MostFrequent = %d, %d, %v (tie should pick lowest key)", k, n, ok)
	}
	if _, _, ok := (Counts{}).MostFrequent(); ok {
		t.Error("MostFrequent on empty counts reported ok")
	}
}

// TestSampleCDFClampsDrift is the regression test for the sampling drift
// guard: when float rounding leaves the top of the CDF below the drawn u,
// the inversion must land on the last positive-probability basis state —
// never on a zero-probability state past it (the old guard bumped the
// final CDF entry, steering exactly such draws onto the all-ones state).
func TestSampleCDFClampsDrift(t *testing.T) {
	// States 2 and 3 have zero probability; state 1 is the last with mass.
	cdf := []float64{0.5, 1.0, 1.0, 1.0}
	lastPos := 1
	if k := sampleCDF(cdf, lastPos, 1.0); k != 1 {
		t.Errorf("drifted draw u=1.0 sampled index %d, want 1", k)
	}
	if k := sampleCDF(cdf, lastPos, 0.25); k != 0 {
		t.Errorf("u=0.25 sampled index %d, want 0", k)
	}
	if k := sampleCDF(cdf, lastPos, 0.75); k != 1 {
		t.Errorf("u=0.75 sampled index %d, want 1", k)
	}
	// A zero-probability gap inside the support is skipped, not clamped.
	gap := []float64{0.5, 0.5, 1.0, 1.0}
	if k := sampleCDF(gap, 2, 0.7); k != 2 {
		t.Errorf("gap draw sampled index %d, want 2", k)
	}
}

// TestRunCDFLastPositiveIndex checks the Run-level behavior on a state
// whose trailing basis states carry no probability: no shot may land past
// the support, for any seed tried.
func TestRunCDFLastPositiveIndex(t *testing.T) {
	c := circuit.New(3, 3)
	c.H(0) // support = {|000⟩, |001⟩}; indices 2..7 have zero probability
	c.MeasureAll()
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Run(c, Options{Shots: 200, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for k := range res.Counts {
			if k > 1 {
				t.Fatalf("seed %d: sampled zero-probability outcome %d", seed, k)
			}
		}
	}
}

func TestEvolveQFTOnZeroIsUniform(t *testing.T) {
	// The E4 primitive: QFT|0…0⟩ = uniform superposition, here built from
	// raw gates (H + controlled phases), 5 qubits.
	n := 5
	c := circuit.New(n, 0)
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			c.CPhase(math.Pi/math.Pow(2, float64(i-j)), j, i)
		}
	}
	st, err := Evolve(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / float64(st.Dim())
	for k := 0; k < st.Dim(); k++ {
		if math.Abs(st.Probability(uint64(k))-want) > 1e-12 {
			t.Fatalf("QFT|0⟩ not uniform at %d: %v", k, st.Probability(uint64(k)))
		}
	}
}

// referenceCDF is the pre-optimization buildCDF algorithm, serial and
// spelled out: per-block left-to-right probability sums, serial block
// offsets, then a second Probability sweep writing the prefix. The
// production buildCDF computes each probability once (stashing it in the
// cdf slice between passes); this reference recomputes it, so agreement
// must be bit-exact or the single-sweep rewrite changed the summation.
func referenceCDF(st *State) (cdf []float64, acc float64, lastPos int) {
	dim := st.Dim()
	cdf = make([]float64, dim)
	nBlocks := (dim + cdfBlock - 1) / cdfBlock
	blockSum := make([]float64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		sum := 0.0
		for i := b * cdfBlock; i < min((b+1)*cdfBlock, dim); i++ {
			p := st.Probability(uint64(i))
			sum += p
			if p > 0 {
				lastPos = i
			}
		}
		blockSum[b] = sum
	}
	for b, s := range blockSum {
		blockSum[b] = acc
		acc += s
	}
	for b := 0; b < nBlocks; b++ {
		run := blockSum[b]
		for i := b * cdfBlock; i < min((b+1)*cdfBlock, dim); i++ {
			run += st.Probability(uint64(i))
			cdf[i] = run
		}
	}
	return cdf, acc, lastPos
}

// TestBuildCDFSingleSweepDeterminism pins the buildCDF rewrite (one
// Probability evaluation per amplitude instead of two) to the fixed-block
// summation order: for a 13-qubit state spanning multiple 4096-entry
// blocks with irrational amplitudes, the CDF must be bit-identical to the
// two-sweep reference for every shard count, and sampled counts must not
// depend on the shard grant.
func TestBuildCDFSingleSweepDeterminism(t *testing.T) {
	c := circuit.New(13, 13)
	for q := 0; q < 13; q++ {
		c.RY(0.137+0.211*float64(q), q)
	}
	for q := 0; q < 12; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < 13; q += 2 {
		c.RY(0.731*float64(q+1), q)
	}
	st, err := Evolve(c)
	if err != nil {
		t.Fatal(err)
	}
	refCDF, refAcc, refLast := referenceCDF(st)
	for _, shards := range []int{1, 3, 8} {
		pool := newShardPool(shards)
		cdf, acc, lastPos := buildCDF(st, pool)
		pool.close()
		if acc != refAcc {
			t.Fatalf("shards=%d: total mass %v, reference %v", shards, acc, refAcc)
		}
		if lastPos != refLast {
			t.Fatalf("shards=%d: lastPos %d, reference %d", shards, lastPos, refLast)
		}
		for i := range cdf {
			if cdf[i] != refCDF[i] {
				t.Fatalf("shards=%d: cdf[%d] = %v, reference %v (bit drift)", shards, i, cdf[i], refCDF[i])
			}
		}
	}

	// End to end: counts are identical across shard grants.
	c.MeasureAll()
	base, err := Run(c, Options{Shots: 2000, Seed: 99, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{3, 8} {
		res, err := Run(c, Options{Shots: 2000, Seed: 99, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Counts, res.Counts) {
			t.Fatalf("counts differ between shards=1 and shards=%d", shards)
		}
	}
}
