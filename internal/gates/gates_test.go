package gates

import (
	"math"
	"math/cmplx"
	"testing"
)

// TestMul4Kron2 checks the two-qubit helpers: Kron2 factors multiply
// componentwise (Kron2(a,b)·Kron2(c,d) = Kron2(ac, bd)), and Mul4 against
// a hand-computed CX·(H⊗I) product column.
func TestMul4Kron2(t *testing.T) {
	h, _ := Unitary1(H, nil)
	s, _ := Unitary1(S, nil)
	x, _ := Unitary1(X, nil)
	id := Matrix2{{1, 0}, {0, 1}}

	left := Mul4(Kron2(h, s), Kron2(x, id))
	right := Kron2(Mul2(h, x), Mul2(s, id))
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if cmplx.Abs(left[i][j]-right[i][j]) > 1e-12 {
				t.Fatalf("Kron2 mixed-product property fails at (%d,%d): %v vs %v", i, j, left[i][j], right[i][j])
			}
		}
	}

	// CX with control on local bit 1, applied after H on bit 1: the |00⟩
	// column of CX·(H⊗I) is (1/√2, 0, 0, 1/√2) — the Bell preparation.
	cx := Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}}
	bell := Mul4(cx, Kron2(h, id))
	want := [4]complex128{complex(1/math.Sqrt2, 0), 0, 0, complex(1/math.Sqrt2, 0)}
	for i := 0; i < 4; i++ {
		if cmplx.Abs(bell[i][0]-want[i]) > 1e-12 {
			t.Fatalf("Bell column entry %d = %v, want %v", i, bell[i][0], want[i])
		}
	}
}

// TestKron2Entries pins the layout: hi acts on local bit 1, lo on bit 0.
func TestKron2Entries(t *testing.T) {
	x, _ := Unitary1(X, nil)
	id := Matrix2{{1, 0}, {0, 1}}
	xHi := Kron2(x, id)
	// X on bit 1 maps |00⟩ -> |10⟩: column 0 has its 1 in row 2.
	if xHi[2][0] != 1 || xHi[0][0] != 0 {
		t.Errorf("Kron2(x, id) column 0 = %v", [4]complex128{xHi[0][0], xHi[1][0], xHi[2][0], xHi[3][0]})
	}
	xLo := Kron2(id, x)
	// X on bit 0 maps |00⟩ -> |01⟩: column 0 has its 1 in row 1.
	if xLo[1][0] != 1 || xLo[0][0] != 0 {
		t.Errorf("Kron2(id, x) column 0 = %v", [4]complex128{xLo[0][0], xLo[1][0], xLo[2][0], xLo[3][0]})
	}
}

func unitaryOK(t *testing.T, m Matrix2, name string) {
	t.Helper()
	// m·m† = I
	d := Dagger2(m)
	prod := Mul2(m, d)
	id := Matrix2{{1, 0}, {0, 1}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(prod[i][j]-id[i][j]) > 1e-12 {
				t.Errorf("%s: m·m† != I at (%d,%d): %v", name, i, j, prod[i][j])
			}
		}
	}
}

func TestAllOneQubitGatesAreUnitary(t *testing.T) {
	for _, n := range Names() {
		info, _ := Lookup(n)
		if info.Qubits != 1 {
			continue
		}
		params := make([]float64, info.Params)
		for i := range params {
			params[i] = 0.7321
		}
		m, err := Unitary1(n, params)
		if err != nil {
			t.Fatalf("Unitary1(%s): %v", n, err)
		}
		unitaryOK(t, m, string(n))
	}
}

func TestSXSquaredIsX(t *testing.T) {
	sx, _ := Unitary1(SX, nil)
	x, _ := Unitary1(X, nil)
	if !EqualUpToPhase2(Mul2(sx, sx), x, 1e-12) {
		t.Error("sx·sx != x")
	}
}

func TestHViaRZSX(t *testing.T) {
	// The transpiler's core identity: h = rz(π/2)·sx·rz(π/2) up to phase.
	rz, _ := Unitary1(RZ, []float64{math.Pi / 2})
	sx, _ := Unitary1(SX, nil)
	h, _ := Unitary1(H, nil)
	if !EqualUpToPhase2(Mul2(rz, Mul2(sx, rz)), h, 1e-12) {
		t.Error("rz(π/2)·sx·rz(π/2) != h up to phase")
	}
}

func TestRZVsP(t *testing.T) {
	// rz(λ) = e^{-iλ/2}·p(λ).
	for _, lam := range []float64{0.1, 1.0, math.Pi, -2.5} {
		rz, _ := Unitary1(RZ, []float64{lam})
		p, _ := Unitary1(P, []float64{lam})
		if !EqualUpToPhase2(rz, p, 1e-12) {
			t.Errorf("rz(%v) not phase-equal to p(%v)", lam, lam)
		}
	}
}

func TestSTviaP(t *testing.T) {
	s, _ := Unitary1(S, nil)
	p2, _ := Unitary1(P, []float64{math.Pi / 2})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(s[i][j]-p2[i][j]) > 1e-15 {
				t.Error("s != p(π/2)")
			}
		}
	}
	tg, _ := Unitary1(T, nil)
	p4, _ := Unitary1(P, []float64{math.Pi / 4})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(tg[i][j]-p4[i][j]) > 1e-15 {
				t.Error("t != p(π/4)")
			}
		}
	}
}

func TestRotationComposition(t *testing.T) {
	// rz(a)·rz(b) = rz(a+b)
	a, _ := Unitary1(RZ, []float64{0.4})
	b, _ := Unitary1(RZ, []float64{1.1})
	ab, _ := Unitary1(RZ, []float64{1.5})
	got := Mul2(a, b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(got[i][j]-ab[i][j]) > 1e-12 {
				t.Error("rz angles do not add")
			}
		}
	}
}

func TestInverseRules(t *testing.T) {
	// Each (gate, inverse) product must be identity up to phase.
	for _, n := range Names() {
		info, _ := Lookup(n)
		if info.Qubits != 1 {
			continue
		}
		params := make([]float64, info.Params)
		for i := range params {
			params[i] = 1.234
		}
		invName, invParams, err := Inverse(n, params)
		if err != nil {
			t.Fatalf("Inverse(%s): %v", n, err)
		}
		m, _ := Unitary1(n, params)
		inv, err := Unitary1(invName, invParams)
		if err != nil {
			t.Fatalf("Unitary1(%s): %v", invName, err)
		}
		id := Matrix2{{1, 0}, {0, 1}}
		if !EqualUpToPhase2(Mul2(inv, m), id, 1e-12) {
			t.Errorf("%s·%s != I up to phase", invName, n)
		}
	}
}

func TestInverseMultiQubitNames(t *testing.T) {
	for _, n := range []Name{CX, CZ, SWAP, CCX, CSWAP} {
		inv, params, err := Inverse(n, nil)
		if err != nil || inv != n || params != nil {
			t.Errorf("Inverse(%s) = %s, %v, %v; want self", n, inv, params, err)
		}
	}
	cpInv, p, err := Inverse(CP, []float64{0.5})
	if err != nil || cpInv != CP || p[0] != -0.5 {
		t.Errorf("Inverse(cp) = %s %v %v", cpInv, p, err)
	}
}

func TestLookupErrors(t *testing.T) {
	if _, err := Lookup("bogus"); err == nil {
		t.Error("unknown gate accepted")
	}
	if _, err := Unitary1(CX, nil); err == nil {
		t.Error("two-qubit gate accepted by Unitary1")
	}
	if _, err := Unitary1(RZ, nil); err == nil {
		t.Error("missing parameter accepted")
	}
	if _, err := Unitary1(X, []float64{1}); err == nil {
		t.Error("extra parameter accepted")
	}
	if Known("bogus") {
		t.Error("Known(bogus)")
	}
	if !Known(CX) {
		t.Error("!Known(cx)")
	}
}

func TestIsDiagonal(t *testing.T) {
	for _, n := range []Name{Z, S, Sdg, T, Tdg, RZ, P, CZ, CP} {
		if !IsDiagonal(n) {
			t.Errorf("IsDiagonal(%s) = false", n)
		}
	}
	for _, n := range []Name{X, Y, H, SX, RX, RY, CX, SWAP} {
		if IsDiagonal(n) {
			t.Errorf("IsDiagonal(%s) = true", n)
		}
	}
}

func TestIsSelfInverse(t *testing.T) {
	for _, n := range []Name{X, Y, Z, H, CX, CZ, SWAP, CCX, CSWAP} {
		if !IsSelfInverse(n) {
			t.Errorf("IsSelfInverse(%s) = false", n)
		}
	}
	for _, n := range []Name{S, T, SX, RZ, RX, RY, P, CP} {
		if IsSelfInverse(n) {
			t.Errorf("IsSelfInverse(%s) = true", n)
		}
	}
}

func TestEqualUpToPhaseRejects(t *testing.T) {
	x, _ := Unitary1(X, nil)
	z, _ := Unitary1(Z, nil)
	if EqualUpToPhase2(x, z, 1e-12) {
		t.Error("x phase-equal to z")
	}
	var zero Matrix2
	if EqualUpToPhase2(x, zero, 1e-12) {
		t.Error("x phase-equal to zero matrix")
	}
}
