package repro

// One benchmark per experiment row in DESIGN.md (E1–E11), plus
// micro-benchmarks for the hot substrates. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute timings depend on the host; EXPERIMENTS.md records the
// paper-vs-measured *shapes* these benchmarks regenerate.

import (
	"testing"

	"repro/internal/algolib"
	"repro/internal/anneal"
	"repro/internal/bundle"
	"repro/internal/circuit"
	"repro/internal/comm"
	"repro/internal/ctxdesc"
	"repro/internal/embed"
	"repro/internal/gates"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qec"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
	"repro/internal/schemas"
	"repro/internal/sim"
	"repro/internal/transpile"
)

const (
	benchGamma = 0.3926990817
	benchBeta  = 1.1780972451
)

func gateMaxCutBundle(b *testing.B, samples int) *bundle.Bundle {
	b.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{benchGamma}, []float64{benchBeta})
	if err != nil {
		b.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.aer_simulator", samples, 42)
	ctx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	ctx.Exec.Options = map[string]any{"optimization_level": 2}
	bd, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		b.Fatal(err)
	}
	return bd
}

func annealMaxCutBundle(b *testing.B, reads int) *bundle.Bundle {
	b.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		b.Fatal(err)
	}
	bd, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctxdesc.NewAnneal("anneal.neal", reads, 42))
	if err != nil {
		b.Fatal(err)
	}
	return bd
}

// BenchmarkE1_MaxCutQAOAGatePath regenerates the §5 gate path: the full
// pipeline (validate → lower → transpile under the ring target → simulate
// 4096 shots → decode).
func BenchmarkE1_MaxCutQAOAGatePath(b *testing.B) {
	bd := gateMaxCutBundle(b, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Submit(bd, runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_MaxCutAnnealPath regenerates the §5 anneal path with
// num_reads = 1000.
func BenchmarkE2_MaxCutAnnealPath(b *testing.B) {
	bd := annealMaxCutBundle(b, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Submit(bd, runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_ExpectedCutExact computes the exact QAOA expected cut (the
// §5 3.0–3.2 claim) without sampling.
func BenchmarkE3_ExpectedCutExact(b *testing.B) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	seq, err := algolib.BuildQAOA(reg, g, []float64{benchGamma}, []float64{benchBeta})
	if err != nil {
		b.Fatal(err)
	}
	low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := sim.Evolve(low.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		cut := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
		if cut < 2.9 {
			b.Fatalf("expected cut %v", cut)
		}
	}
}

// BenchmarkE4_QFT10 regenerates the Listing-1 motivational example: a
// 10-qubit QFT with 10000 shots.
func BenchmarkE4_QFT10(b *testing.B) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		b.Fatal(err)
	}
	bd, err := bundle.New([]*qdt.DataType{reg},
		qop.Sequence{qft, algolib.NewMeasurement(reg)},
		ctxdesc.NewGate("gate.aer_simulator", 10000, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runtime.Submit(bd, runtime.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_QFTCostHint regenerates the Listing-3 cost-hint check:
// estimator plus realized template counts.
func BenchmarkE5_QFTCostHint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hint := algolib.EstimateQFTCost(10, 0, true)
		if hint.TwoQ != 45 || hint.Depth != 100 {
			b.Fatalf("hint %+v", hint)
		}
		c, err := algolib.QFTCircuit(10, 0, true, false)
		if err != nil {
			b.Fatal(err)
		}
		if c.TwoQubitCount() != 50 { // 45 cp + 5 swap
			b.Fatalf("twoq %d", c.TwoQubitCount())
		}
	}
}

// BenchmarkE6_RoutingOverhead regenerates the Listing-4 routing
// comparison: QFT(10) under the linear coupling map.
func BenchmarkE6_RoutingOverhead(b *testing.B) {
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		b.Fatal(err)
	}
	var linear [][2]int
	for i := 0; i < 9; i++ {
		linear = append(linear, [2]int{i, i + 1})
	}
	opts := transpile.Options{
		BasisGates:        []string{"sx", "rz", "cx"},
		CouplingMap:       linear,
		OptimizationLevel: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := transpile.Transpile(circ, opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.SwapsInserted == 0 {
			b.Fatal("no swaps on the linear chain")
		}
	}
}

// BenchmarkE7_QECOverhead regenerates the Listing-5 QEC table: overhead
// estimates across distances plus a Monte Carlo decode batch.
func BenchmarkE7_QECOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range []int{3, 5, 7, 9, 11} {
			pol := &ctxdesc.QEC{CodeFamily: "surface", Distance: d, PhysErrorRate: 1e-3}
			if _, err := qec.Estimate(pol, 4); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := qec.SimulateRepetition(5, 0.05, 10000, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_DistributedQFT regenerates the communication-volume sweep.
func BenchmarkE8_DistributedQFT(b *testing.B) {
	basis := []string{"sx", "rz", "cx"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{4, 8, 12} {
			circ, err := algolib.QFTCircuit(n, 0, true, false)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: basis, OptimizationLevel: 1})
			if err != nil {
				b.Fatal(err)
			}
			part, err := comm.BlockPartition(n, 2, (n+1)/2)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := comm.Analyze(tr.Circuit, part); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE9_ContextSwap regenerates the portability check: repackaging
// one intent under different contexts and fingerprinting.
func BenchmarkE9_ContextSwap(b *testing.B) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		b.Fatal(err)
	}
	intent := qop.Sequence{op}
	ctxA := ctxdesc.NewAnneal("anneal.sa", 100, 1)
	ctxB := ctxdesc.NewGate("gate.statevector", 100, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ba, err := bundle.New([]*qdt.DataType{reg}, intent, ctxA)
		if err != nil {
			b.Fatal(err)
		}
		bb := ba.WithContext(ctxB)
		fa, _ := ba.Fingerprint()
		fb, _ := bb.Fingerprint()
		if fa != fb {
			b.Fatal("fingerprint changed with context")
		}
	}
}

// BenchmarkE10_QAOADepthSweep regenerates one point of the depth
// ablation: a p=2 evaluation.
func BenchmarkE10_QAOADepthSweep(b *testing.B) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		seq, err := algolib.BuildQAOA(reg, g, []float64{0.4, 0.2}, []float64{0.3, 0.6})
		if err != nil {
			b.Fatal(err)
		}
		low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Evolve(low.Circuit); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_AnnealerAblation regenerates one ablation row: SA at 100
// sweeps on the n=12 instance, against the tabu baseline.
func BenchmarkE11_AnnealerAblation(b *testing.B) {
	m := ising.FromMaxCut(graph.ErdosRenyi(12, 0.5, 7))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := anneal.SampleModel(m, anneal.Params{NumReads: 50, Sweeps: 100, Seed: 42}); err != nil {
			b.Fatal(err)
		}
		if _, err := anneal.TabuSearch(m, 50, 0, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkSimHadamard18 measures one-qubit gate bandwidth on a 2^18
// statevector (the parallel sweep path).
func BenchmarkSimHadamard18(b *testing.B) {
	st, err := sim.NewState(18)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := gates.Unitary1(gates.H, nil)
	b.ReportAllocs()
	b.SetBytes(int64(st.Dim() * 16))
	for i := 0; i < b.N; i++ {
		if err := st.Apply1(m, i%18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimCX18 measures two-qubit gate bandwidth.
func BenchmarkSimCX18(b *testing.B) {
	st, err := sim.NewState(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(st.Dim() * 16))
	for i := 0; i < b.N; i++ {
		if err := st.ApplyCX(i%18, (i+1)%18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSampling measures Born sampling for 4096 shots on 12 qubits.
func BenchmarkSimSampling(b *testing.B) {
	c := circuit.New(12, 12)
	for q := 0; q < 12; q++ {
		c.H(q)
	}
	c.MeasureAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(c, sim.Options{Shots: 4096, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountsMostFrequent guards the O(n) argmax over observed
// outcomes: a previous implementation sorted all keys on every call
// (O(n log n) plus an allocation), which this benchmark would regress on.
func BenchmarkCountsMostFrequent(b *testing.B) {
	cnt := sim.Counts{}
	for k := uint64(0); k < 1<<16; k++ {
		cnt[k] = int(k % 97)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if k, n, ok := cnt.MostFrequent(); !ok || n != 96 || k != 96 {
			b.Fatalf("MostFrequent = %d, %d, %v", k, n, ok)
		}
	}
}

// BenchmarkSASweeps measures raw Metropolis throughput: one read of 1000
// sweeps on a 64-edge instance.
func BenchmarkSASweeps(b *testing.B) {
	m := ising.FromMaxCut(graph.ErdosRenyi(16, 0.5, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := anneal.SampleModel(m, anneal.Params{NumReads: 1, Sweeps: 1000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTranspileQFT measures the full pass pipeline on QFT(10).
func BenchmarkTranspileQFT(b *testing.B) {
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		b.Fatal(err)
	}
	opts := transpile.Options{BasisGates: []string{"sx", "rz", "cx"}, OptimizationLevel: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := transpile.Transpile(circ, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeCounts measures schema-driven decoding of 1024 outcomes.
func BenchmarkDecodeCounts(b *testing.B) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	schema := qop.DefaultResultSchema(reg.ID, reg.Width, "AS_PHASE", "LSB_0")
	counts := map[uint64]int{}
	for k := uint64(0); k < 1024; k++ {
		counts[k] = int(k%17) + 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := result.DecodeCounts(counts, schema, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchemaValidate measures JSON Schema validation of a Listing-4
// context document.
func BenchmarkSchemaValidate(b *testing.B) {
	doc := []byte(`{
		"$schema": "ctx.schema.json",
		"exec": {"engine": "gate.aer_simulator", "samples": 4096, "seed": 42,
			"target": {"basis_gates": ["sx","rz","cx"],
				"coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]},
			"options": {"optimization_level": 2}}}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := schemas.Validate("ctx.schema.json", doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinorEmbedding measures the K4→Chimera embedding heuristic.
func BenchmarkMinorEmbedding(b *testing.B) {
	m := ising.FromMaxCut(graph.Complete(4))
	hw, err := embed.Chimera(2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := embed.Find(m, hw); err != nil {
			b.Fatal(err)
		}
	}
}
