// Package result implements the middle layer's result model: backend
// outputs decoded strictly through the operator's explicit result schema
// and the register's quantum data type — never through inference, which
// is the decoding discipline the paper's composability principle demands
// ("results need unambiguous decoding rules").
package result

import (
	"fmt"
	"sort"

	"repro/internal/qdt"
	"repro/internal/qop"
)

// Entry is one decoded outcome.
type Entry struct {
	// Bitstring renders the outcome with carrier 0 first — the form the
	// paper uses when reporting the §5 optimal cuts "1010" and "0101".
	Bitstring string
	// Index is the decoded basis-state index of the register.
	Index uint64
	// Value is the typed interpretation per the register's measurement
	// semantics (overridden by the schema's datatype).
	Value qdt.Value
	// Count is the number of shots/reads observing this outcome.
	Count int
	// Energy is the Ising energy of the configuration (anneal path only).
	Energy float64
	// HasEnergy reports whether Energy is meaningful.
	HasEnergy bool
}

// Result is a backend execution result.
type Result struct {
	Engine  string
	Samples int
	Entries []Entry
	// Meta carries engine-specific artifacts: transpile stats, embedding
	// info, communication plans, pulse durations.
	Meta map[string]any
}

// Sort orders entries by descending count, ties by ascending index, and
// is idempotent.
func (r *Result) Sort() {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Count != r.Entries[j].Count {
			return r.Entries[i].Count > r.Entries[j].Count
		}
		return r.Entries[i].Index < r.Entries[j].Index
	})
}

// Top returns the most frequent entry.
func (r *Result) Top() (Entry, error) {
	if len(r.Entries) == 0 {
		return Entry{}, fmt.Errorf("result: empty result")
	}
	best := r.Entries[0]
	for _, e := range r.Entries[1:] {
		if e.Count > best.Count || (e.Count == best.Count && e.Index < best.Index) {
			best = e
		}
	}
	return best, nil
}

// Expectation returns the count-weighted mean of f over the entries —
// the §5 "expected cut" evaluator.
func (r *Result) Expectation(f func(Entry) float64) float64 {
	total := 0.0
	n := 0
	for _, e := range r.Entries {
		total += f(e) * float64(e.Count)
		n += e.Count
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// DecodeCounts converts raw classical-register counts (clbit cb = bit cb
// of the key) into decoded entries using the result schema's clbit→
// register-bit mapping and datatype.
func DecodeCounts(counts map[uint64]int, schema *qop.ResultSchema, reg *qdt.DataType) ([]Entry, error) {
	if schema == nil {
		return nil, fmt.Errorf("result: nil result schema")
	}
	if err := schema.Validate(reg.ID, reg.Width); err != nil {
		return nil, err
	}
	// Shadow register applying the schema's datatype and significance.
	shadow := *reg
	shadow.MeasurementSemantics = qdt.MeasurementSemantics(schema.Datatype)
	shadow.BitOrder = qdt.BitOrder(schema.BitSignificance)

	// clbit cb carries register bit bitOf[cb].
	bitOf := make([]int, len(schema.ClbitOrder))
	for cb, ref := range schema.ClbitOrder {
		_, bit, err := qop.ParseBitRef(ref)
		if err != nil {
			return nil, err
		}
		bitOf[cb] = bit
	}

	keys := make([]uint64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	entries := make([]Entry, 0, len(keys))
	for _, key := range keys {
		bits := make([]uint8, reg.Width)
		for cb := range bitOf {
			bits[bitOf[cb]] = uint8(key >> uint(cb) & 1)
		}
		k, err := shadow.IndexFromBits(bits)
		if err != nil {
			return nil, err
		}
		value, err := shadow.Decode(k)
		if err != nil {
			return nil, err
		}
		entries = append(entries, Entry{
			Bitstring: carrierString(bits),
			Index:     k,
			Value:     value,
			Count:     counts[key],
		})
	}
	return entries, nil
}

// carrierString renders measured bits with carrier 0 first, regardless of
// significance order.
func carrierString(bits []uint8) string {
	buf := make([]byte, len(bits))
	for i, b := range bits {
		buf[i] = '0' + b
	}
	return string(buf)
}
