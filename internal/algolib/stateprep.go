package algolib

import (
	"fmt"
	"math"

	"repro/internal/qdt"
	"repro/internal/qop"
)

// NewPrepUniform builds the uniform state preparation operator (Hadamard
// on every carrier) — the first element of the paper's §5 QAOA stack.
func NewPrepUniform(reg *qdt.DataType) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	op := newOp("prep_uniform", qop.PrepUniform, reg.ID)
	op.CostHint = &qop.CostHint{OneQ: reg.Width, Depth: 1}
	return op, nil
}

// NewPrepBasis builds a computational-basis preparation |value⟩ (X gates
// on the set bits).
func NewPrepBasis(reg *qdt.DataType, value uint64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if reg.Width < 64 && value >= uint64(1)<<uint(reg.Width) {
		return nil, fmt.Errorf("algolib: basis value %d exceeds register width %d", value, reg.Width)
	}
	op := newOp("prep_basis", qop.PrepBasis, reg.ID)
	op.SetParam("value", float64(value))
	ones := 0
	for v := value; v != 0; v >>= 1 {
		ones += int(v & 1)
	}
	op.CostHint = &qop.CostHint{OneQ: ones, Depth: 1}
	return op, nil
}

// NewAngleEncoding builds the angle-encoding preparation: RY(angles[i])
// on carrier i — the standard feature-map entry of the paper's state
// preparation family.
func NewAngleEncoding(reg *qdt.DataType, angles []float64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if len(angles) != reg.Width {
		return nil, fmt.Errorf("algolib: %d angles for width-%d register", len(angles), reg.Width)
	}
	op := newOp("angle_encoding", qop.AngleEncoding, reg.ID)
	op.SetParam("angles", toAnySlice(angles))
	op.CostHint = &qop.CostHint{OneQ: reg.Width, Depth: 1}
	return op, nil
}

// NewAmplitudeEncoding builds the amplitude-encoding preparation: the
// register is initialized to the normalized amplitude vector. Amplitudes
// are carried as parallel re/im arrays so the descriptor stays pure JSON.
func NewAmplitudeEncoding(reg *qdt.DataType, amps []complex128) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	want := 1 << uint(reg.Width)
	if len(amps) != want {
		return nil, fmt.Errorf("algolib: %d amplitudes for width-%d register (want %d)", len(amps), reg.Width, want)
	}
	norm := 0.0
	re := make([]float64, len(amps))
	im := make([]float64, len(amps))
	for i, a := range amps {
		re[i] = real(a)
		im[i] = imag(a)
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		return nil, fmt.Errorf("algolib: amplitude vector not normalized (norm² = %v)", norm)
	}
	op := newOp("amplitude_encoding", qop.AmplitudeEnc, reg.ID)
	op.SetParam("re", toAnySlice(re))
	op.SetParam("im", toAnySlice(im))
	op.CostHint = &qop.CostHint{Depth: 1 << uint(reg.Width)} // state prep is exponential in general
	return op, nil
}

func toAnySlice(xs []float64) []any {
	out := make([]any, len(xs))
	for i, x := range xs {
		out[i] = x
	}
	return out
}

// floatSliceParam reads a []float64 parameter that may arrive as []any
// (after JSON round-trips) or []float64 (freshly constructed).
func floatSliceParam(op *qop.Operator, key string) ([]float64, error) {
	v, ok := op.Params[key]
	if !ok {
		return nil, fmt.Errorf("algolib: op %q missing param %q", op.Name, key)
	}
	switch t := v.(type) {
	case []float64:
		return append([]float64(nil), t...), nil
	case []any:
		out := make([]float64, len(t))
		for i, e := range t {
			f, isF := e.(float64)
			if !isF {
				return nil, fmt.Errorf("algolib: op %q param %q[%d] is %T", op.Name, key, i, e)
			}
			out[i] = f
		}
		return out, nil
	}
	return nil, fmt.Errorf("algolib: op %q param %q is %T, want array", op.Name, key, v)
}
