package fleet

import (
	"bytes"
	"context"
	"encoding/json"

	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/qdt"
	"repro/internal/result"
)

// fakeBackend is a deterministic injectable engine; block gates Execute
// for in-flight tests.
type fakeBackend struct {
	name  string
	execs atomic.Int64
	block chan struct{}
	ran   chan struct{}
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Execute(b *bundle.Bundle) (*result.Result, error) {
	if f.ran != nil {
		f.ran <- struct{}{}
	}
	if f.block != nil {
		<-f.block
	}
	f.execs.Add(1)
	seed := uint64(0)
	if b.Context != nil && b.Context.Exec != nil {
		seed = b.Context.Exec.Seed
	}
	return &result.Result{
		Engine:  f.name,
		Samples: 100,
		Entries: []result.Entry{
			{Bitstring: "0101", Index: seed % 16, Count: 60},
			{Bitstring: "1010", Index: (seed + 5) % 16, Count: 40},
		},
	}, nil
}

func registerFake(t *testing.T, name string) *fakeBackend {
	t.Helper()
	f := &fakeBackend{name: name}
	backend.Register(name, func() backend.Backend { return f })
	t.Cleanup(func() { backend.Unregister(name) })
	return f
}

// fleetBundle builds a small QAOA bundle routed to the given engine;
// identical (engine, seed) ⇒ identical cache key.
func fleetBundle(t testing.TB, engine string, seed uint64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.39}, []float64{1.17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate(engine, 256, seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// flakyWorker is a real jobs pool behind a handler that can be switched
// to answer 503 on everything — the probe- and poll-visible "down" state
// that does not stop the pool itself.
type flakyWorker struct {
	srv  *httptest.Server
	pool *jobs.Pool
	down atomic.Bool
}

func startWorker(t *testing.T, workers int) *flakyWorker {
	t.Helper()
	fw := &flakyWorker{pool: jobs.NewPool(jobs.Options{Workers: workers, QueueDepth: 64, CacheSize: 64})}
	inner := jobs.NewHandler(fw.pool)
	fw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fw.down.Load() {
			http.Error(w, `{"error":"worker down"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		fw.srv.Close()
		fw.pool.Close()
	})
	return fw
}

// fastOpts are test-speed dispatcher options.
func fastOpts(workers ...*flakyWorker) Options {
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = w.srv.URL
	}
	return Options{
		Workers:        names,
		RequestTimeout: 2 * time.Second,
		ProbeInterval:  20 * time.Millisecond,
		PollInterval:   10 * time.Millisecond,
		EjectAfter:     2,
		ReforwardAfter: 2,
	}
}

func newDispatcher(t *testing.T, opts Options) *Dispatcher {
	t.Helper()
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func waitState(t *testing.T, d *Dispatcher, id string, want jobs.State) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := d.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Status{}
}

// TestDispatchBasic: jobs submitted to the dispatcher run on the fleet
// and complete with proxied results; duplicates follow cache affinity to
// the same worker and dedupe there.
func TestDispatchBasic(t *testing.T) {
	registerFake(t, "fake.fleet_basic")
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))

	ids := make([]string, 4)
	for i := range ids {
		st, err := d.Submit(fleetBundle(t, "fake.fleet_basic", uint64(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}
	for _, id := range ids {
		st, err := d.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		if st.Worker == "" || st.Remote == "" {
			t.Fatalf("job %s has no assignment: %+v", id, st)
		}
		code, body, err := d.Result(context.Background(), id)
		if err != nil || code != http.StatusOK {
			t.Fatalf("result %s: %d %v", id, code, err)
		}
		var doc struct {
			Entries []any `json:"entries"`
		}
		if err := json.Unmarshal(body, &doc); err != nil || len(doc.Entries) != 2 {
			t.Fatalf("result %s: %v (%s)", id, err, body)
		}
	}

	// A duplicate of job 0 must route to the same worker and be served
	// from that worker's cache (or coalesce) — no second execution path.
	first, _ := d.Status(ids[0])
	dup, err := d.Submit(fleetBundle(t, "fake.fleet_basic", 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := d.Wait(dup.ID)
	if err != nil || st.State != jobs.StateDone {
		t.Fatalf("dup: %+v %v", st, err)
	}
	if st.Worker != first.Worker {
		t.Fatalf("duplicate routed to %s, primary ran on %s", st.Worker, first.Worker)
	}
	if !st.CacheHit && !st.Coalesced {
		t.Fatalf("duplicate neither cache hit nor coalesced: %+v", st)
	}

	s := d.Stats()
	if s.Completed != 5 || s.Failed != 0 || s.Forwarded < 5 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Healthy != 2 || s.Workers != 2 {
		t.Fatalf("health: %+v", s)
	}
}

// TestEjectReadmitRejoin: a worker that stops answering is ejected (its
// keys rehash onto the survivors), and readmitted — rejoining the ring —
// on its first healthy probe.
func TestEjectReadmitRejoin(t *testing.T) {
	registerFake(t, "fake.fleet_rejoin")
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))

	w1.down.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Healthy != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := d.Stats(); got.Healthy != 1 || got.Ejected != 1 {
		t.Fatalf("eject never happened: %+v", got)
	}

	// Everything routes to w2 while w1 is out — including keys whose ring
	// affinity is w1.
	for i := 0; i < 6; i++ {
		st, err := d.Submit(fleetBundle(t, "fake.fleet_rejoin", uint64(100+i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		fin, err := d.Wait(st.ID)
		if err != nil || fin.State != jobs.StateDone {
			t.Fatalf("job during eject: %+v %v", fin, err)
		}
		if fin.Worker != w2.srv.URL {
			t.Fatalf("job routed to ejected worker %s", fin.Worker)
		}
	}

	// Rejoin: first healthy probe readmits, and a key with w1 affinity
	// routes to w1 again (rehash back).
	w1.down.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for d.Stats().Healthy != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := d.Stats(); got.Healthy != 2 || got.Readmitted != 1 {
		t.Fatalf("readmit never happened: %+v", got)
	}
	// Search for a seed whose key has w1 affinity (the ring is port-
	// dependent, so probe deterministically rather than sampling), then
	// check it routes to the readmitted worker again.
	var b *bundle.Bundle
	for i := 0; i < 4096; i++ {
		cand := fleetBundle(t, "fake.fleet_rejoin", uint64(200+i))
		key, err := jobs.CacheKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if d.ring.lookup(key, nil) == w1.srv.URL {
			b = cand
			break
		}
	}
	if b == nil {
		t.Fatal("ring maps no key to w1 — the ring is broken")
	}
	st, err := d.Submit(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.Wait(st.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("job after rejoin: %+v %v", fin, err)
	}
	if fin.Worker != w1.srv.URL {
		t.Fatalf("w1-affinity key routed to %s after readmit, want %s", fin.Worker, w1.srv.URL)
	}
}

// TestReforwardOnWorkerLoss: a job whose worker goes dark mid-run is
// re-forwarded to a surviving node and completes there.
func TestReforwardOnWorkerLoss(t *testing.T) {
	fake := registerFake(t, "fake.fleet_reforward")
	fake.block = make(chan struct{})
	fake.ran = make(chan struct{}, 8)
	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	d := newDispatcher(t, fastOpts(w1, w2))

	st, err := d.Submit(fleetBundle(t, "fake.fleet_reforward", 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran // executing on some worker
	running := waitState(t, d, st.ID, jobs.StateRunning)
	victim, survivor := w1, w2
	if running.Worker == w2.srv.URL {
		victim, survivor = w2, w1
	}
	victim.down.Store(true)

	// The dispatcher must abandon the dark worker and re-run on the
	// survivor; unblock the engine once the second execution starts.
	<-fake.ran
	close(fake.block)
	fin, err := d.Wait(st.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("after reforward: %+v %v", fin, err)
	}
	if fin.Worker != survivor.srv.URL {
		t.Fatalf("job finished on %s, want survivor %s", fin.Worker, survivor.srv.URL)
	}
	if fin.Reforwards != 1 {
		t.Fatalf("reforwards = %d, want 1", fin.Reforwards)
	}
	if s := d.Stats(); s.Reforwarded != 1 {
		t.Fatalf("stats: %+v", s)
	}
	code, body, err := d.Result(context.Background(), st.ID)
	if err != nil || code != http.StatusOK || !bytes.Contains(body, []byte("0101")) {
		t.Fatalf("result after reforward: %d %v %s", code, err, body)
	}
}

// TestCancelCoalescedDuplicateRemote is the ISSUE edge case: a duplicate
// that coalesced onto a primary running on a remote worker is canceled —
// the cancel forwards to the owning worker, detaches only the waiter,
// and the primary still completes with its result.
func TestCancelCoalescedDuplicateRemote(t *testing.T) {
	fake := registerFake(t, "fake.fleet_coalcancel")
	fake.block = make(chan struct{})
	fake.ran = make(chan struct{}, 8)
	w1 := startWorker(t, 1)
	d := newDispatcher(t, fastOpts(w1))

	primary, err := d.Submit(fleetBundle(t, "fake.fleet_coalcancel", 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	waitState(t, d, primary.ID, jobs.StateRunning)

	dup, err := d.Submit(fleetBundle(t, "fake.fleet_coalcancel", 9), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the duplicate is attached on the worker (forwarded and
	// remote-coalesced), then cancel it through the dispatcher.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := d.Status(dup.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Remote != "" {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cst, err := d.Cancel(context.Background(), dup.ID)
	if err != nil {
		t.Fatalf("cancel coalesced duplicate: %v", err)
	}
	if cst.State != jobs.StateCanceled {
		t.Fatalf("duplicate state %s, want canceled", cst.State)
	}

	close(fake.block)
	fin, err := d.Wait(primary.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("primary after duplicate cancel: %+v %v", fin, err)
	}
	code, _, err := d.Result(context.Background(), primary.ID)
	if err != nil || code != http.StatusOK {
		t.Fatalf("primary result: %d %v", code, err)
	}
	if fake.execs.Load() != 1 {
		t.Fatalf("execs = %d, want 1 (duplicate must not re-run)", fake.execs.Load())
	}
	if s := d.Stats(); s.Canceled != 1 || s.Completed != 1 || s.Coalesced != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestHungWorkerDoesNotWedge: every dispatcher→worker call carries a
// timeout, so a worker that accepts connections and never answers
// releases the calling goroutine within RequestTimeout.
func TestHungWorkerDoesNotWedge(t *testing.T) {
	registerFake(t, "fake.fleet_hung")
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // hold every request until the client gives up
	}))
	defer hung.Close()
	opts := Options{
		Workers:        []string{hung.URL},
		RequestTimeout: 200 * time.Millisecond,
		ProbeInterval:  time.Hour, // keep the prober out of the picture
		PollInterval:   10 * time.Millisecond,
	}
	d := newDispatcher(t, opts)

	start := time.Now()
	st, err := d.Submit(fleetBundle(t, "fake.fleet_hung", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The submit forward must give up within the timeout (the job then
	// waits for a healthy worker); the submission call itself returned
	// immediately.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("submit blocked %v", elapsed)
	}
	// Cancel against the hung worker: the job has no assignment (forward
	// can never succeed), so this cancels locally and promptly either way;
	// the real check is that nothing deadlocks under the timeout.
	start = time.Now()
	if _, err := d.Cancel(context.Background(), st.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel blocked %v", elapsed)
	}
}

// TestDispatcherCrashRecovery: a dispatcher journaling to a store is
// torn down with a job still in flight on a worker; a new dispatcher
// over the same journal re-attaches to the remote job and finishes it,
// and pre-crash terminal jobs still answer status and (proxied) result.
func TestDispatcherCrashRecovery(t *testing.T) {
	fake := registerFake(t, "fake.fleet_recover")
	w1 := startWorker(t, 1)
	dir := t.TempDir()
	st1, err := store.Open(dir, store.Options{Sync: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(w1)
	opts.Store = st1
	d1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	// One finished job...
	doneSt, err := d1.Submit(fleetBundle(t, "fake.fleet_recover", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if fin, err := d1.Wait(doneSt.ID); err != nil || fin.State != jobs.StateDone {
		t.Fatalf("%+v %v", fin, err)
	}
	// ...and one still executing when the dispatcher "crashes".
	fake.block = make(chan struct{})
	fake.ran = make(chan struct{}, 4)
	inflightSt, err := d1.Submit(fleetBundle(t, "fake.fleet_recover", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	waitState(t, d1, inflightSt.ID, jobs.StateRunning)
	d1.Close() // watchers stop; the worker keeps running the job
	st1.Close()

	st2, err := store.Open(dir, store.Options{Sync: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	opts.Store = st2
	d2 := newDispatcher(t, opts)

	s := d2.Stats()
	if s.Recovered < 2 || s.Reattached != 1 {
		t.Fatalf("recovery stats: %+v", s)
	}
	// Pre-crash terminal job: status + proxied result still served.
	got, err := d2.Status(doneSt.ID)
	if err != nil || got.State != jobs.StateDone {
		t.Fatalf("recovered terminal: %+v %v", got, err)
	}
	code, body, err := d2.Result(context.Background(), doneSt.ID)
	if err != nil || code != http.StatusOK || !bytes.Contains(body, []byte("0101")) {
		t.Fatalf("recovered result: %d %v %s", code, err, body)
	}
	// In-flight job: re-attached under its original ID and finishes.
	close(fake.block)
	fin, err := d2.Wait(inflightSt.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("reattached job: %+v %v", fin, err)
	}
	if fake.execs.Load() != 2 {
		t.Fatalf("execs = %d, want 2 (re-attach must not re-run)", fake.execs.Load())
	}
}

// TestHTTPSurface drives the dispatcher through its HTTP handler the way
// qmlserve serves it: submit, status, list, result, stats, engines.
func TestHTTPSurface(t *testing.T) {
	registerFake(t, "fake.fleet_http")
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()

	raw, err := json.Marshal(fleetBundle(t, "fake.fleet_http", 3))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil || sub.ID == "" {
		t.Fatalf("submit: %v %+v", err, sub)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit code %d", resp.StatusCode)
	}

	getJSON := func(path string, want int) map[string]any {
		t.Helper()
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d (%s)", path, resp.StatusCode, want, body)
		}
		out := map[string]any{}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getJSON("/v1/jobs/"+sub.ID, http.StatusOK)
		if st["state"] == "done" {
			if st["worker"] == "" {
				t.Fatalf("done without worker: %v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never done: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	res := getJSON("/v1/jobs/"+sub.ID+"/result", http.StatusOK)
	if len(res["entries"].([]any)) != 2 {
		t.Fatalf("result: %v", res)
	}
	list := getJSON("/v1/jobs?state=done", http.StatusOK)
	if list["count"].(float64) < 1 {
		t.Fatalf("list: %v", list)
	}
	stats := getJSON("/v1/stats", http.StatusOK)
	if stats["dispatcher"] == nil || stats["workers"] == nil || stats["fleet"] == nil {
		t.Fatalf("stats shape: %v", stats)
	}
	engines := getJSON("/v1/engines", http.StatusOK)
	found := false
	for _, e := range engines["engines"].([]any) {
		if e == "fake.fleet_http" {
			found = true
		}
	}
	if !found {
		t.Fatalf("engines: %v", engines)
	}

	// Unknown job: 404 on every per-job verb.
	if resp, _ := http.Get(front.URL + "/v1/jobs/job-99999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status of unknown job: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/v1/jobs/job-99999999", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: %d", resp.StatusCode)
	}
}

// TestSubmitValidation: a bundle the workers would reject is rejected at
// the dispatcher door with 400, before any forwarding.
func TestSubmitValidation(t *testing.T) {
	registerFake(t, "fake.fleet_validate")
	w1 := startWorker(t, 1)
	d := newDispatcher(t, fastOpts(w1))
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()
	resp, err := http.Post(front.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(`{"not":"a bundle"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid bundle: %d", resp.StatusCode)
	}
	if s := d.Stats(); s.Submitted != 0 || s.Forwarded != 0 {
		t.Fatalf("rejected bundle reached the router: %+v", s)
	}
}
