// Package store is a journalerr fixture mirroring the journal store's
// package-path suffix.
package store

import "os"

// Store mirrors the real journal store's mutator surface.
type Store struct{ f *os.File }

// Append is a journal mutator whose error is the durability verdict.
func (s *Store) Append(b []byte) error {
	_, err := s.f.Write(b)
	return err
}

// Sync is the durability barrier.
func (s *Store) Sync() error { return s.f.Sync() }

// DropStatement discards the verdict by calling as a statement.
func DropStatement(s *Store) {
	s.Append(nil) // want `journalerr: error from Store\.Append discarded by calling as a statement`
}

// DropBlank discards it explicitly.
func DropBlank(s *Store) {
	_ = s.Sync() // want `journalerr: error from Store\.Sync assigned to _`
}

// Handled is the near-miss: the verdict is propagated.
func Handled(s *Store) error {
	if err := s.Append(nil); err != nil {
		return err
	}
	return s.Sync()
}

// Suppressed carries the reasoned annotation the driver honors.
func Suppressed(s *Store) {
	//lint:ignore journalerr fixture: the recovery story would be documented here
	_ = s.Sync()
}
