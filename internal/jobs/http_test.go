package jobs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// quickstartBundle reproduces examples/quickstart as a job.json document:
// a 10-qubit QFT with measurement under the Listing-4 gate context.
func quickstartBundle(t testing.TB) []byte {
	t.Helper()
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg},
		qop.Sequence{qft, algolib.NewMeasurement(reg)},
		ctxdesc.NewGate("gate.aer_simulator", 10000, 42))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func doJSON(t testing.TB, h http.Handler, method, path string, body []byte, wantCode int) map[string]any {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, strings.NewReader(string(body)))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != wantCode {
		t.Fatalf("%s %s = %d, want %d (body: %s)", method, path, w.Code, wantCode, w.Body.String())
	}
	out := map[string]any{}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: non-JSON body %q: %v", method, path, w.Body.String(), err)
	}
	return out
}

// TestHTTPQuickstartEndToEnd is the acceptance-criterion flow: the
// quickstart bundle submitted twice over HTTP returns the same result,
// with the second submission served from the content-addressed cache as
// witnessed by the /v1/stats cache-hit counter.
func TestHTTPQuickstartEndToEnd(t *testing.T) {
	pool := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer pool.Close()
	h := NewHandler(pool)
	raw := quickstartBundle(t)

	// GET /v1/engines
	engines := doJSON(t, h, "GET", "/v1/engines", nil, http.StatusOK)
	if list, ok := engines["engines"].([]any); !ok || len(list) < 5 {
		t.Fatalf("engines: %v", engines)
	}

	// POST /v1/jobs — first submission executes.
	sub1 := doJSON(t, h, "POST", "/v1/jobs", raw, http.StatusAccepted)
	id1, _ := sub1["id"].(string)
	if id1 == "" || sub1["cache_hit"] != false {
		t.Fatalf("first submit: %v", sub1)
	}
	if _, err := pool.Wait(id1); err != nil {
		t.Fatal(err)
	}

	// GET /v1/jobs/{id} — terminal status with timing.
	st1 := doJSON(t, h, "GET", "/v1/jobs/"+id1, nil, http.StatusOK)
	if st1["state"] != string(StateDone) || st1["engine"] != "gate.aer_simulator" {
		t.Fatalf("status: %v", st1)
	}
	if ms, ok := st1["run_ms"].(float64); !ok || ms <= 0 {
		t.Fatalf("run_ms: %v", st1["run_ms"])
	}

	// GET /v1/jobs/{id}/result
	res1 := doJSON(t, h, "GET", "/v1/jobs/"+id1+"/result", nil, http.StatusOK)
	if res1["engine"] != "gate.aer_simulator" || res1["samples"] != float64(10000) {
		t.Fatalf("result: engine=%v samples=%v", res1["engine"], res1["samples"])
	}
	if entries, ok := res1["entries"].([]any); !ok || len(entries) == 0 {
		t.Fatal("result has no entries")
	}

	// POST the identical bundle again — born done, served from cache.
	sub2 := doJSON(t, h, "POST", "/v1/jobs", raw, http.StatusAccepted)
	id2, _ := sub2["id"].(string)
	if sub2["cache_hit"] != true || sub2["state"] != string(StateDone) {
		t.Fatalf("second submit not a cache hit: %v", sub2)
	}
	res2 := doJSON(t, h, "GET", "/v1/jobs/"+id2+"/result", nil, http.StatusOK)
	if !reflect.DeepEqual(res1["entries"], res2["entries"]) {
		t.Fatal("cached result entries differ from the first execution")
	}

	// GET /v1/stats — the cache hit is visible in the counter.
	stats := doJSON(t, h, "GET", "/v1/stats", nil, http.StatusOK)
	if stats["cache_hits"] != float64(1) || stats["submitted"] != float64(2) {
		t.Fatalf("stats: %v", stats)
	}
}

// TestHTTPShardsParam covers the per-job parallelism surface: ?shards=N
// pins the grant (visible as "shards" in the status document), invalid
// values are rejected, and /v1/stats reports the shard counters.
func TestHTTPShardsParam(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 4, MaxShards: 4})
	defer pool.Close()
	h := NewHandler(pool)
	raw := quickstartBundle(t)

	sub := doJSON(t, h, "POST", "/v1/jobs?shards=2", raw, http.StatusAccepted)
	id, _ := sub["id"].(string)
	if id == "" {
		t.Fatalf("submit: %v", sub)
	}
	if _, err := pool.Wait(id); err != nil {
		t.Fatal(err)
	}
	st := doJSON(t, h, "GET", "/v1/jobs/"+id, nil, http.StatusOK)
	if st["state"] != string(StateDone) || st["shards"] != float64(2) {
		t.Fatalf("status: %v", st)
	}

	doJSON(t, h, "POST", "/v1/jobs?shards=bogus", raw, http.StatusBadRequest)
	doJSON(t, h, "POST", "/v1/jobs?shards=-1", raw, http.StatusBadRequest)

	stats := doJSON(t, h, "GET", "/v1/stats", nil, http.StatusOK)
	if stats["max_shards"] != float64(4) || stats["wide_jobs"] != float64(1) {
		t.Fatalf("stats: %v", stats)
	}
}

// TestHTTPErrorSurface covers the non-happy paths of every endpoint.
func TestHTTPErrorSurface(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 4})
	defer pool.Close()
	h := NewHandler(pool)

	// Invalid JSON and invalid bundles are 400.
	doJSON(t, h, "POST", "/v1/jobs", []byte("{not json"), http.StatusBadRequest)
	doJSON(t, h, "POST", "/v1/jobs", []byte(`{"$schema":"job.schema.json","qdts":[],"operators":[]}`),
		http.StatusBadRequest)

	// Unknown job IDs are 404 everywhere.
	doJSON(t, h, "GET", "/v1/jobs/job-99999999", nil, http.StatusNotFound)
	doJSON(t, h, "GET", "/v1/jobs/job-99999999/result", nil, http.StatusNotFound)
	doJSON(t, h, "DELETE", "/v1/jobs/job-99999999", nil, http.StatusNotFound)

	// A completed job cannot be canceled: 409.
	sub := doJSON(t, h, "POST", "/v1/jobs", quickstartBundle(t), http.StatusAccepted)
	id := sub["id"].(string)
	if _, err := pool.Wait(id); err != nil {
		t.Fatal(err)
	}
	doJSON(t, h, "DELETE", "/v1/jobs/"+id, nil, http.StatusConflict)
}

// TestHTTPBackpressureAndPending drives the 429 queue-full response and
// the 202 pending-result response through a blocked fake backend.
func TestHTTPBackpressureAndPending(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 8)}
	registerFake(t, "fake.http", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 1, CacheSize: -1})
	defer pool.Close()
	h := NewHandler(pool)

	body := func(seed uint64) []byte {
		raw, err := annealBundle(t, "fake.http", 50, seed).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	sub1 := doJSON(t, h, "POST", "/v1/jobs", body(1), http.StatusAccepted)
	<-fake.ran // job 1 is running (blocked)
	id1 := sub1["id"].(string)

	// Running job's result is 202 (poll again), and DELETE is 409.
	doJSON(t, h, "GET", "/v1/jobs/"+id1+"/result", nil, http.StatusAccepted)
	doJSON(t, h, "DELETE", "/v1/jobs/"+id1, nil, http.StatusConflict)

	doJSON(t, h, "POST", "/v1/jobs", body(2), http.StatusAccepted) // fills the queue

	// Queue full → 429 with Retry-After.
	r := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(string(body(3))))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST = %d, want 429 (body: %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}

	close(fake.block)
	if _, err := pool.Wait(id1); err != nil {
		t.Fatal(err)
	}
	stats := doJSON(t, h, "GET", "/v1/stats", nil, http.StatusOK)
	if stats["rejected"] != float64(1) {
		t.Fatalf("stats: %v", stats)
	}
}

// TestHTTPFailedJobResult checks a failed job surfaces as 500 with the
// execution error.
func TestHTTPFailedJobResult(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 4})
	defer pool.Close()
	h := NewHandler(pool)

	raw, err := annealBundle(t, "no.such_engine", 50, 1).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	sub := doJSON(t, h, "POST", "/v1/jobs", raw, http.StatusAccepted)
	id := sub["id"].(string)
	if _, err := pool.Wait(id); err != nil {
		t.Fatal(err)
	}
	out := doJSON(t, h, "GET", "/v1/jobs/"+id+"/result", nil, http.StatusInternalServerError)
	if msg, _ := out["error"].(string); !strings.Contains(msg, "no.such_engine") {
		t.Fatalf("error body: %v", out)
	}
	st := doJSON(t, h, "GET", "/v1/jobs/"+id, nil, http.StatusOK)
	if st["state"] != string(StateFailed) {
		t.Fatalf("status: %v", st)
	}
}

// TestHTTPListJobs covers GET /v1/jobs: history listing, state filter,
// limit, and the 400 surface for bad parameters.
func TestHTTPListJobs(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.http_list", fake)
	pool := NewPool(Options{Workers: 1, QueueDepth: 8, CacheSize: -1})
	defer pool.Close()
	h := NewHandler(pool)

	var last string
	for seed := uint64(1); seed <= 3; seed++ {
		id, err := pool.Submit(annealBundle(t, "fake.http_list", 50, seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pool.Wait(id); err != nil {
			t.Fatal(err)
		}
		last = id
	}

	out := doJSON(t, h, "GET", "/v1/jobs", nil, http.StatusOK)
	jobsList, ok := out["jobs"].([]any)
	if !ok || len(jobsList) != 3 || out["count"] != float64(3) {
		t.Fatalf("list: %v", out)
	}
	first, _ := jobsList[0].(map[string]any)
	if first["id"] != last {
		t.Fatalf("listing not newest-first: %v", first)
	}
	if st := first["state"]; st != string(StateDone) {
		t.Fatalf("state: %v", st)
	}

	out = doJSON(t, h, "GET", "/v1/jobs?state=done&limit=2", nil, http.StatusOK)
	if out["count"] != float64(2) {
		t.Fatalf("filtered list: %v", out)
	}
	out = doJSON(t, h, "GET", "/v1/jobs?state=canceled", nil, http.StatusOK)
	if out["count"] != float64(0) {
		t.Fatalf("canceled list: %v", out)
	}
	doJSON(t, h, "GET", "/v1/jobs?state=bogus", nil, http.StatusBadRequest)
	doJSON(t, h, "GET", "/v1/jobs?limit=-1", nil, http.StatusBadRequest)
}
