package embed

import (
	"math"
	"testing"

	"repro/internal/anneal"
	"repro/internal/graph"
	"repro/internal/ising"
)

func TestChimeraStructure(t *testing.T) {
	h, err := Chimera(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 32 {
		t.Fatalf("C(2) has %d qubits, want 32", h.N)
	}
	// Edges: 4 cells × 16 intra + vertical 2 cols × 4 + horizontal 2 rows × 4 = 64 + 8 + 8.
	if h.EdgeCount() != 80 {
		t.Errorf("C(2) has %d couplers, want 80", h.EdgeCount())
	}
	// Intra-cell: left 0 of cell (0,0) couples to right 0..3 of same cell.
	for j := 0; j < 4; j++ {
		if !h.Adjacent(0, 4+j) {
			t.Errorf("left 0 not coupled to right %d in cell (0,0)", j)
		}
	}
	// No left-left coupling within a cell.
	if h.Adjacent(0, 1) {
		t.Error("left qubits coupled within a cell")
	}
	// Vertical: left i of (0,0) couples to left i of (1,0). Cell (1,0) is
	// cell index row*m+col = 2, base 16.
	if !h.Adjacent(0, 16) {
		t.Error("vertical coupler missing")
	}
	// Horizontal: right i of (0,0) (id 4) couples to right i of (0,1)
	// (base 8, right side: 12).
	if !h.Adjacent(4, 12) {
		t.Error("horizontal coupler missing")
	}
	if _, err := Chimera(0); err == nil {
		t.Error("C(0) accepted")
	}
}

func TestChimeraDegreeBounds(t *testing.T) {
	h, _ := Chimera(3)
	for p := 0; p < h.N; p++ {
		d := h.Degree(p)
		if d < 4 || d > 6 {
			t.Errorf("qubit %d degree %d outside [4,6]", p, d)
		}
	}
}

func TestCompleteHardware(t *testing.T) {
	h := Complete(5)
	if h.EdgeCount() != 10 {
		t.Errorf("K5 edges = %d", h.EdgeCount())
	}
	if !h.Adjacent(0, 4) || h.Adjacent(1, 1) {
		t.Error("adjacency wrong")
	}
}

func TestFindEmbeddingCycle4OnChimera(t *testing.T) {
	m := ising.FromMaxCut(graph.Cycle(4))
	hw, _ := Chimera(1)
	e, err := Find(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(m); err != nil {
		t.Errorf("embedding invalid: %v", err)
	}
	if e.PhysicalQubits() < 4 {
		t.Errorf("too few physical qubits: %d", e.PhysicalQubits())
	}
}

func TestFindEmbeddingK4OnChimera(t *testing.T) {
	// K4 is not a subgraph of K_{4,4}; chains are required.
	m := ising.FromMaxCut(graph.Complete(4))
	hw, _ := Chimera(1)
	e, err := Find(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxChainLength() < 2 {
		t.Errorf("K4 embedded without chains (max chain %d); K4 ⊄ K44", e.MaxChainLength())
	}
}

func TestFindEmbeddingIdentityOnComplete(t *testing.T) {
	m := ising.FromMaxCut(graph.Complete(5))
	e, err := Find(m, Complete(5))
	if err != nil {
		t.Fatal(err)
	}
	if e.MaxChainLength() != 1 || e.PhysicalQubits() != 5 {
		t.Errorf("all-to-all embedding not identity-like: chains %v", e.Chains)
	}
}

func TestFindFailsOnTooSmallHardware(t *testing.T) {
	m := ising.FromMaxCut(graph.Complete(6))
	if _, err := Find(m, Complete(3)); err == nil {
		t.Error("oversized problem embedded")
	}
}

func TestEmbedModelEnergyCorrespondence(t *testing.T) {
	// For an unbroken-chain physical configuration, the physical energy
	// equals the logical energy plus the (constant) chain binding energy.
	g := graph.Cycle(4)
	m := ising.FromMaxCut(g)
	hw, _ := Chimera(1)
	e, err := Find(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := e.EmbedModel(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Count intra-chain couplers to compute the binding constant.
	chainLinks := 0
	for _, chain := range e.Chains {
		for i, p := range chain {
			for _, q := range chain[i+1:] {
				if hw.Adjacent(p, q) {
					chainLinks++
				}
			}
		}
	}
	binding := -3 * float64(chainLinks)
	for logical := uint64(0); logical < 16; logical++ {
		var physMask uint64
		for v, chain := range e.Chains {
			if logical>>uint(v)&1 == 1 {
				for _, p := range chain {
					physMask |= 1 << uint(p)
				}
			}
		}
		got := phys.EnergyBits(physMask)
		want := m.EnergyBits(logical) + binding
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("logical %04b: physical energy %v, want %v", logical, got, want)
		}
	}
}

func TestUnembedMajorityVote(t *testing.T) {
	hw, _ := Chimera(1)
	e := &Embedding{HW: hw, Chains: [][]int{{0, 4, 1}, {5}}}
	// Chain 0: qubits 0 and 4 up, 1 down -> majority +1. Chain 1: down.
	logical, broken := e.Unembed(1<<0 | 1<<4)
	if logical != 1 {
		t.Errorf("logical = %b, want 1", logical)
	}
	if broken != 1 {
		t.Errorf("broken = %d, want 1", broken)
	}
	// Unanimous chains: no breakage.
	logical, broken = e.Unembed(1<<0 | 1<<4 | 1<<1 | 1<<5)
	if logical != 3 || broken != 0 {
		t.Errorf("unanimous unembed = %b, broken %d", logical, broken)
	}
}

func TestEndToEndEmbeddedAnneal(t *testing.T) {
	// The full anneal-with-embedding path: embed the §5 problem onto
	// Chimera, sample the physical model, unembed, and confirm the
	// logical ground states dominate.
	g := graph.Cycle(4)
	m := ising.FromMaxCut(g)
	hw, _ := Chimera(1)
	e, err := Find(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	phys, err := e.EmbedModel(m, 0) // default chain strength
	if err != nil {
		t.Fatal(err)
	}
	res, err := anneal.SampleModel(phys, anneal.Params{NumReads: 200, Sweeps: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	groundHits := 0
	total := 0
	for _, s := range res.Samples {
		logical, _ := e.Unembed(s.Mask)
		if m.EnergyBits(logical) == -4 {
			groundHits += s.Occurrences
		}
		total += s.Occurrences
	}
	frac := float64(groundHits) / float64(total)
	if frac < 0.8 {
		t.Errorf("embedded anneal ground fraction = %v, want > 0.8", frac)
	}
}

func TestEmbedModelValidation(t *testing.T) {
	m := ising.FromMaxCut(graph.Cycle(4))
	hw, _ := Chimera(1)
	e, err := Find(m, hw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EmbedModel(m, -1); err == nil {
		t.Error("negative chain strength accepted")
	}
	// Corrupt the embedding: empty chain.
	bad := &Embedding{HW: hw, Chains: [][]int{{}}}
	if err := bad.Validate(ising.NewModel(1)); err == nil {
		t.Error("empty chain accepted")
	}
	// Overlapping chains.
	bad2 := &Embedding{HW: hw, Chains: [][]int{{0}, {0}}}
	if err := bad2.Validate(ising.NewModel(2)); err == nil {
		t.Error("overlapping chains accepted")
	}
	// Disconnected chain (left qubits 0 and 1 are not adjacent).
	bad3 := &Embedding{HW: hw, Chains: [][]int{{0, 1}}}
	if err := bad3.Validate(ising.NewModel(1)); err == nil {
		t.Error("disconnected chain accepted")
	}
	// Missing logical coupler.
	m2 := ising.NewModel(2)
	m2.SetJ(0, 1, 1)
	bad4 := &Embedding{HW: hw, Chains: [][]int{{0}, {1}}} // 0 and 1 not adjacent
	if err := bad4.Validate(m2); err == nil {
		t.Error("uncoupled chains accepted")
	}
}
