package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/obs"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
)

// MaxBodyBytes bounds a POST /v1/jobs body; larger submissions are
// rejected with 413.
const MaxBodyBytes = 8 << 20

// NewHandler exposes a Pool over HTTP, speaking the job.json bundle schema
// from internal/schemas:
//
//	POST   /v1/jobs             submit a job.json bundle → 202 {id,state,cache_hit}
//	GET    /v1/jobs             job history listing (?state=done&limit=100)
//	GET    /v1/jobs/{id}        lifecycle status + timing (?wait=5s long-polls)
//	GET    /v1/jobs/{id}/result decoded result (202 while pending)
//	DELETE /v1/jobs/{id}        cancel a queued (or coalesced) job
//	POST   /v1/sweeps           submit a sweep bundle → 202 {id,state,points}
//	GET    /v1/sweeps/{id}      indexed per-point result set (?wait=5s long-polls)
//	GET    /v1/engines          registered engine names
//	GET    /v1/stats            pool counters incl. cache_hits, coalesced, wide_jobs
//
// A sweep bundle is an ordinary job.json whose context carries a sweep
// block ({"params": [...], "points": [[...], ...]}) and whose operator
// parameters reference the swept names as "$name" markers. The whole grid
// is ONE job: one queue slot, one journal record, per-point fan-out when
// it runs (see SubmitSweep). GET /v1/sweeps/{id} answers 202 with the
// lifecycle status (including points_done progress) until the sweep is
// terminal, then the indexed result set.
//
// ?wait=<duration> on GET /v1/jobs/{id} and GET /v1/sweeps/{id} long-polls:
// the response is held until the job turns terminal or the duration
// (capped at 60s) elapses, whichever is first, then carries the status at
// that moment. Pollers get an answer in one round-trip instead of a
// retry loop.
//
// POST /v1/jobs?shards=N pins the statevector parallelism grant for that
// job (0 or absent: the scheduler gives a lone simulation the pool's
// max_shards and concurrent jobs one shard; the grant appears in the
// status document as "shards"). Backpressure surfaces as 429 with
// Retry-After when the pool's bounded queue is full.
//
// When the pool is persistent (qmlserve -data-dir), the history listing,
// per-job statuses and results all survive restarts, and /v1/stats gains
// the journal counters (recovered, requeued, disk_hits, journal_events,
// journal_compactions, disk_results).
func NewHandler(p *Pool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(p, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleList(p, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleStatus(p, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(p, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleCancel(p, w, r)
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSweepSubmit(p, w, r)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleSweepResult(p, w, r)
	})
	mux.HandleFunc("GET /v1/engines", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"engines": backend.Engines()})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Stats())
	})
	// The pool's own instruments plus the process-wide registry (sim_*
	// stage histograms, and go_*/build_info when the server registered
	// them there) in one exposition.
	mux.Handle("GET /metrics", obs.Handler(p.reg, obs.Default()))
	return obs.Recover(mux, p.log, p.reg.Counter("http_panics_total", "Handler panics recovered by the middleware."))
}

// ErrorJSON is the error document every /v1 endpoint serves; the fleet
// dispatcher speaks the same wire shape.
type ErrorJSON struct {
	Error string `json:"error"`
}

// errorJSON is kept as the local alias the worker handlers use.
type errorJSON = ErrorJSON

type submitJSON struct {
	ID       string `json:"id"`
	TraceID  string `json:"trace_id,omitempty"`
	State    State  `json:"state"`
	CacheHit bool   `json:"cache_hit"`
}

type statusJSON struct {
	ID          string          `json:"id"`
	TraceID     string          `json:"trace_id,omitempty"`
	State       State           `json:"state"`
	Engine      string          `json:"engine,omitempty"`
	CacheHit    bool            `json:"cache_hit"`
	Coalesced   bool            `json:"coalesced,omitempty"`
	Shards      int             `json:"shards,omitempty"`
	Sweep       bool            `json:"sweep,omitempty"`
	Points      int             `json:"points,omitempty"`
	PointsDone  int             `json:"points_done,omitempty"`
	Progress    float64         `json:"progress,omitempty"`
	EtaMS       float64         `json:"eta_ms,omitempty"`
	Error       string          `json:"error,omitempty"`
	SubmittedAt string          `json:"submitted_at"`
	StartedAt   string          `json:"started_at,omitempty"`
	FinishedAt  string          `json:"finished_at,omitempty"`
	QueueMS     float64         `json:"queue_ms"`
	RunMS       float64         `json:"run_ms"`
	Spans       []obs.Span      `json:"spans,omitempty"`
	Profile     json.RawMessage `json:"profile,omitempty"`
}

type entryJSON struct {
	Bitstring string   `json:"bitstring"`
	Index     uint64   `json:"index"`
	Value     any      `json:"value,omitempty"`
	Count     int      `json:"count"`
	Energy    *float64 `json:"energy,omitempty"`
}

type resultJSON struct {
	ID      string         `json:"id"`
	Engine  string         `json:"engine"`
	Samples int            `json:"samples"`
	Entries []entryJSON    `json:"entries"`
	Meta    map[string]any `json:"meta,omitempty"`
}

// ProfileFlag side-parses the optional top-level "profile" flag from a
// raw submission body. The flag is not part of the bundle schema —
// FromJSON ignores unknown top-level fields and schema validation
// re-marshals from the struct — so it rides verbatim through any proxy
// that forwards the raw body, and reaches the executing worker without
// protocol changes. Proxies that re-derive the body from the parsed
// bundle (the fleet dispatcher re-marshals, which drops unknown fields)
// forward the flag as ?profile=true instead, exactly like shard pins.
func ProfileFlag(raw []byte) bool {
	var flags struct {
		Profile bool `json:"profile"`
	}
	_ = json.Unmarshal(raw, &flags) // malformed bodies already failed FromJSON
	return flags.Profile
}

// queryProfile reads the ?profile=true form of the flag.
func queryProfile(r *http.Request) bool {
	return r.URL.Query().Get("profile") == "true"
}

func handleSubmit(p *Pool, w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(w, r)
	if err != nil {
		return // readBody already replied
	}
	b, err := bundle.FromJSON(raw, qop.ValidateOptions{AllowMidCircuit: p.opts.Run.AllowMidCircuit})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	var so SubmitOptions
	so.Profile = ProfileFlag(raw) || queryProfile(r)
	if raw := r.URL.Query().Get("shards"); raw != "" {
		shards, err := strconv.Atoi(raw)
		if err != nil || shards < 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: invalid shards %q", raw)})
			return
		}
		so.Shards = shards
	}
	so.TraceID = r.Header.Get(obs.TraceHeader)
	st, err := p.submit(b, so)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorJSON{err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	// Echo the accepted (possibly server-generated) trace ID so callers
	// can correlate without parsing the body.
	w.Header().Set(obs.TraceHeader, st.Trace)
	writeJSON(w, http.StatusAccepted, submitJSON{ID: st.ID, TraceID: st.Trace, State: st.State, CacheHit: st.CacheHit})
}

// listDefaultLimit caps GET /v1/jobs responses unless ?limit= overrides.
const listDefaultLimit = 100

func handleList(p *Pool, w http.ResponseWriter, r *http.Request) {
	state := State(r.URL.Query().Get("state"))
	switch state {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: unknown state %q", state)})
		return
	}
	limit := listDefaultLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: invalid limit %q", raw)})
			return
		}
		limit = n
	}
	sts := p.List(state, limit)
	out := struct {
		Jobs  []statusJSON `json:"jobs"`
		Count int          `json:"count"`
	}{Jobs: make([]statusJSON, len(sts)), Count: len(sts)}
	for i, st := range sts {
		out.Jobs[i] = statusToJSON(st)
	}
	writeJSON(w, http.StatusOK, out)
}

// maxLongPoll caps the ?wait= long-poll duration so a handler goroutine
// never hangs past proxy/server timeouts.
const maxLongPoll = 60 * time.Second

// waitParam parses the ?wait= long-poll duration. ok=false means the
// parameter was present but invalid (the caller has already replied).
func waitParam(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, true
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: invalid wait %q", raw)})
		return 0, false
	}
	if d > maxLongPoll {
		d = maxLongPoll
	}
	return d, true
}

func handleStatus(p *Pool, w http.ResponseWriter, r *http.Request) {
	wait, ok := waitParam(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	st, err := p.WaitTimeout(id, wait)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, statusToJSON(st))
}

func handleResult(p *Pool, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := p.Result(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeJSON(w, http.StatusNotFound, errorJSON{err.Error()})
		case errors.Is(err, ErrNotFinished):
			// Still queued or running: poll again.
			writeJSON(w, http.StatusAccepted, errorJSON{err.Error()})
		case errors.Is(err, ErrCanceled):
			writeJSON(w, http.StatusGone, errorJSON{err.Error()})
		default: // execution failure
			writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, resultToJSON(id, res))
}

func handleCancel(p *Pool, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := p.Cancel(id); err != nil {
		if errors.Is(err, ErrNotFound) {
			writeJSON(w, http.StatusNotFound, errorJSON{err.Error()})
		} else {
			writeJSON(w, http.StatusConflict, errorJSON{err.Error()})
		}
		return
	}
	st, err := p.Status(id)
	if err != nil {
		// The record was evicted (MaxRecords) between Cancel and the
		// lookup; the cancellation itself succeeded.
		st = Status{ID: id, State: StateCanceled}
	}
	writeJSON(w, http.StatusOK, statusToJSON(st))
}

type sweepSubmitJSON struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id,omitempty"`
	State   State  `json:"state"`
	Points  int    `json:"points"`
}

// sweepPointJSON is one indexed per-point result in a sweep result set.
type sweepPointJSON struct {
	Index   int            `json:"index"`
	Engine  string         `json:"engine"`
	Samples int            `json:"samples"`
	Entries []entryJSON    `json:"entries"`
	Meta    map[string]any `json:"meta,omitempty"`
}

type sweepResultJSON struct {
	ID         string           `json:"id"`
	TraceID    string           `json:"trace_id,omitempty"`
	State      State            `json:"state"`
	Engine     string           `json:"engine,omitempty"`
	Points     int              `json:"points"`
	PointsDone int              `json:"points_done"`
	Progress   float64          `json:"progress"`
	Profile    json.RawMessage  `json:"profile,omitempty"`
	Results    []sweepPointJSON `json:"results"`
}

func handleSweepSubmit(p *Pool, w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(w, r)
	if err != nil {
		return // readBody already replied
	}
	b, err := bundle.FromJSON(raw, qop.ValidateOptions{AllowMidCircuit: p.opts.Run.AllowMidCircuit})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	var so SubmitOptions
	so.Profile = ProfileFlag(raw) || queryProfile(r)
	if raw := r.URL.Query().Get("shards"); raw != "" {
		shards, err := strconv.Atoi(raw)
		if err != nil || shards < 0 {
			writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: invalid shards %q", raw)})
			return
		}
		so.Shards = shards
	}
	so.TraceID = r.Header.Get(obs.TraceHeader)
	st, err := p.submitSweep(b, so)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorJSON{err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorJSON{err.Error()})
		return
	case err != nil:
		// Everything else is a malformed sweep submission (missing sweep
		// block, empty or oversized grid, unkeyable bundle).
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}
	w.Header().Set(obs.TraceHeader, st.Trace)
	writeJSON(w, http.StatusAccepted, sweepSubmitJSON{ID: st.ID, TraceID: st.Trace, State: st.State, Points: st.Points})
}

func handleSweepResult(p *Pool, w http.ResponseWriter, r *http.Request) {
	wait, ok := waitParam(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	st, err := p.WaitTimeout(id, wait)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorJSON{err.Error()})
		return
	}
	if !st.Sweep {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("jobs: %q is not a sweep", id)})
		return
	}
	if !st.State.Terminal() {
		// Still queued or running: report progress, poll (or ?wait=) again.
		writeJSON(w, http.StatusAccepted, statusToJSON(st))
		return
	}
	results, err := p.SweepResult(id)
	if err != nil {
		switch {
		case errors.Is(err, ErrNotFound):
			writeJSON(w, http.StatusNotFound, errorJSON{err.Error()})
		case errors.Is(err, ErrCanceled):
			writeJSON(w, http.StatusGone, errorJSON{err.Error()})
		default: // execution failure, or a recovered result file is gone
			writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		}
		return
	}
	// Re-snapshot: a recovered sweep's aggregated profile materializes on
	// the SweepResult call above (results lazy-load from disk).
	if st2, err2 := p.Status(id); err2 == nil {
		st = st2
	}
	out := sweepResultJSON{
		ID:         st.ID,
		TraceID:    st.Trace,
		State:      st.State,
		Engine:     st.Engine,
		Points:     st.Points,
		PointsDone: st.PointsDone,
		Progress:   st.Progress,
		Profile:    st.Profile,
		Results:    make([]sweepPointJSON, 0, len(results)),
	}
	for i, res := range results {
		rj := resultToJSON(id, res)
		out.Results = append(out.Results, sweepPointJSON{
			Index: i, Engine: rj.Engine, Samples: rj.Samples, Entries: rj.Entries, Meta: rj.Meta,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func statusToJSON(st Status) statusJSON {
	out := statusJSON{
		ID:          st.ID,
		TraceID:     st.Trace,
		State:       st.State,
		Engine:      st.Engine,
		CacheHit:    st.CacheHit,
		Coalesced:   st.Coalesced,
		Shards:      st.Shards,
		Sweep:       st.Sweep,
		Points:      st.Points,
		PointsDone:  st.PointsDone,
		Error:       st.Error,
		SubmittedAt: st.SubmittedAt.UTC().Format(time.RFC3339Nano),
		QueueMS:     float64(st.QueueWait) / float64(time.Millisecond),
		RunMS:       float64(st.RunTime) / float64(time.Millisecond),
		Progress:    st.Progress,
		EtaMS:       float64(st.ETA) / float64(time.Millisecond),
		Spans:       st.Spans,
		Profile:     st.Profile,
	}
	if !st.StartedAt.IsZero() {
		out.StartedAt = st.StartedAt.UTC().Format(time.RFC3339Nano)
	}
	if !st.FinishedAt.IsZero() {
		out.FinishedAt = st.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	return out
}

func resultToJSON(id string, res *result.Result) resultJSON {
	out := resultJSON{
		ID:      id,
		Engine:  res.Engine,
		Samples: res.Samples,
		Entries: make([]entryJSON, 0, len(res.Entries)),
		Meta:    res.Meta,
	}
	for _, e := range res.Entries {
		ej := entryJSON{Bitstring: e.Bitstring, Index: e.Index, Value: valueToJSON(e.Value), Count: e.Count}
		if e.HasEnergy {
			energy := e.Energy
			ej.Energy = &energy
		}
		out.Entries = append(out.Entries, ej)
	}
	return out
}

// valueToJSON renders a decoded qdt.Value in its natural JSON shape per
// the register's measurement semantics.
func valueToJSON(v qdt.Value) any {
	switch v.Semantics {
	case qdt.AsInt:
		return v.Int
	case qdt.AsPhase, qdt.AsFixed:
		return v.Float
	case qdt.AsBool:
		return v.Bools
	case qdt.AsSpin:
		return v.Spins
	default:
		return nil
	}
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	raw, err := readAllLimited(r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorJSON{fmt.Sprintf("jobs: body exceeds %d bytes", MaxBodyBytes)})
		} else {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		}
		return nil, err
	}
	return raw, nil
}

func readAllLimited(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
}

// WriteJSON writes one /v1 response document (indented, with the JSON
// content type). Shared with the fleet dispatcher's handler so both
// services encode identically.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, code int, v any) { WriteJSON(w, code, v) }
