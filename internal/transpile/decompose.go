// Package transpile lowers circuits to a target: basis-gate decomposition,
// coupling-map routing with SWAP insertion, and peephole optimization.
// It consumes the context descriptor's target block (basis_gates,
// coupling_map) and options (optimization_level) — the knobs the paper's
// Listing 4 exposes — and reports the cost metadata (depth, two-qubit
// count, inserted swaps) that the middle layer's cost hints estimate.
package transpile

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// protoGate is one element of a decomposition rule: a gate applied to a
// subset of the original instruction's operands.
type protoGate struct {
	name     gates.Name
	operands []int // indices into the original instruction's qubit list
	// params derives the new gate's parameters from the original's.
	params func(orig []float64) []float64
}

func fixed(params ...float64) func([]float64) []float64 {
	return func([]float64) []float64 { return params }
}

func noParams([]float64) []float64 { return nil }

// rules maps each gate to its expansion toward the {sx, rz, cx} basis.
// Every rule is exact up to global phase (verified by tests that compare
// statevector probabilities and relative phases).
var rules = map[gates.Name][]protoGate{
	gates.I:   {},
	gates.Z:   {{gates.RZ, []int{0}, fixed(math.Pi)}},
	gates.S:   {{gates.RZ, []int{0}, fixed(math.Pi / 2)}},
	gates.Sdg: {{gates.RZ, []int{0}, fixed(-math.Pi / 2)}},
	gates.T:   {{gates.RZ, []int{0}, fixed(math.Pi / 4)}},
	gates.Tdg: {{gates.RZ, []int{0}, fixed(-math.Pi / 4)}},
	gates.P:   {{gates.RZ, []int{0}, func(p []float64) []float64 { return []float64{p[0]} }}},
	gates.H: {
		{gates.RZ, []int{0}, fixed(math.Pi / 2)},
		{gates.SX, []int{0}, noParams},
		{gates.RZ, []int{0}, fixed(math.Pi / 2)},
	},
	gates.X: {
		{gates.SX, []int{0}, noParams},
		{gates.SX, []int{0}, noParams},
	},
	gates.Y: {
		// Y = RZ(π)·X (apply X first).
		{gates.SX, []int{0}, noParams},
		{gates.SX, []int{0}, noParams},
		{gates.RZ, []int{0}, fixed(math.Pi)},
	},
	gates.RX: {
		// RX(θ) = H·RZ(θ)·H exactly.
		{gates.H, []int{0}, noParams},
		{gates.RZ, []int{0}, func(p []float64) []float64 { return []float64{p[0]} }},
		{gates.H, []int{0}, noParams},
	},
	gates.RY: {
		// RY(θ) = RZ(π/2)·RX(θ)·RZ(−π/2) exactly in SU(2).
		{gates.RZ, []int{0}, fixed(-math.Pi / 2)},
		{gates.RX, []int{0}, func(p []float64) []float64 { return []float64{p[0]} }},
		{gates.RZ, []int{0}, fixed(math.Pi / 2)},
	},
	gates.CZ: {
		{gates.H, []int{1}, noParams},
		{gates.CX, []int{0, 1}, noParams},
		{gates.H, []int{1}, noParams},
	},
	gates.CP: {
		// CP(λ) = (P(λ/2)⊗P(λ/2))·CX·(I⊗P(−λ/2))·CX, exact.
		{gates.P, []int{0}, func(p []float64) []float64 { return []float64{p[0] / 2} }},
		{gates.P, []int{1}, func(p []float64) []float64 { return []float64{p[0] / 2} }},
		{gates.CX, []int{0, 1}, noParams},
		{gates.P, []int{1}, func(p []float64) []float64 { return []float64{-p[0] / 2} }},
		{gates.CX, []int{0, 1}, noParams},
	},
	gates.SWAP: {
		{gates.CX, []int{0, 1}, noParams},
		{gates.CX, []int{1, 0}, noParams},
		{gates.CX, []int{0, 1}, noParams},
	},
	gates.CCX: {
		// Standard 6-CX Toffoli.
		{gates.H, []int{2}, noParams},
		{gates.CX, []int{1, 2}, noParams},
		{gates.Tdg, []int{2}, noParams},
		{gates.CX, []int{0, 2}, noParams},
		{gates.T, []int{2}, noParams},
		{gates.CX, []int{1, 2}, noParams},
		{gates.Tdg, []int{2}, noParams},
		{gates.CX, []int{0, 2}, noParams},
		{gates.T, []int{1}, noParams},
		{gates.T, []int{2}, noParams},
		{gates.H, []int{2}, noParams},
		{gates.CX, []int{0, 1}, noParams},
		{gates.T, []int{0}, noParams},
		{gates.Tdg, []int{1}, noParams},
		{gates.CX, []int{0, 1}, noParams},
	},
	gates.CSWAP: {
		{gates.CX, []int{2, 1}, noParams},
		{gates.CCX, []int{0, 1, 2}, noParams},
		{gates.CX, []int{2, 1}, noParams},
	},
}

// maxExpansionDepth bounds recursive rule application; the rule graph is
// acyclic with depth well under this.
const maxExpansionDepth = 12

// Decompose rewrites every gate into the target basis. An empty basis
// means "native" (no rewriting). Non-gate instructions pass through except
// OpPermute/OpInit, which have no gate realization and are rejected when a
// basis is requested.
func Decompose(c *circuit.Circuit, basis []string) (*circuit.Circuit, error) {
	if len(basis) == 0 {
		return c.Copy(), nil
	}
	allowed := map[gates.Name]bool{}
	for _, b := range basis {
		allowed[gates.Name(b)] = true
	}
	out := circuit.New(c.NumQubits, c.NumClbits)
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpGate:
			if err := expandInto(out, ins.Gate, ins.Qubits, ins.Params, allowed, 0); err != nil {
				return nil, fmt.Errorf("transpile: instruction %d: %w", idx, err)
			}
		case circuit.OpPermute, circuit.OpInit, circuit.OpDiagonal:
			return nil, fmt.Errorf("transpile: instruction %d: native op has no realization in basis %v (synthesis not supported)", idx, basis)
		default:
			if err := out.Append(ins); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func expandInto(out *circuit.Circuit, name gates.Name, qubits []int, params []float64, allowed map[gates.Name]bool, depth int) error {
	if allowed[name] {
		return out.Append(circuit.Instruction{Op: circuit.OpGate, Gate: name, Qubits: append([]int(nil), qubits...), Params: append([]float64(nil), params...)})
	}
	if depth > maxExpansionDepth {
		return fmt.Errorf("expansion depth exceeded for gate %q", name)
	}
	rule, ok := rules[name]
	if !ok {
		return fmt.Errorf("gate %q cannot be decomposed into the target basis", name)
	}
	for _, pg := range rule {
		opQubits := make([]int, len(pg.operands))
		for i, o := range pg.operands {
			opQubits[i] = qubits[o]
		}
		if err := expandInto(out, pg.name, opQubits, pg.params(params), allowed, depth+1); err != nil {
			return err
		}
	}
	return nil
}
