// Quantum dynamics on the middle layer: Trotterized time evolution of a
// transverse-field Ising chain (H = J·ΣZᵢZᵢ₊₁ + g·ΣXᵢ) expressed as one
// ISING_EVOLUTION descriptor per time point — the quantum-simulation
// workload behind the paper's §4.2 "Ising evolution operator" example.
// The program prints the magnetization ⟨Z⟩ collapsing and reviving as the
// transverse field rotates the chain.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/algolib"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/sim"
)

func main() {
	const (
		n     = 6   // chain length
		j     = 1.0 // ZZ coupling
		g     = 1.0 // transverse field (critical point of the TFIM chain)
		steps = 64  // Trotter resolution per run
	)
	reg := qdt.New("chain", "spins", n, qdt.IsingSpin, qdt.AsSpin)
	model := ising.NewModel(n)
	for i := 0; i+1 < n; i++ {
		model.SetJ(i, i+1, j)
	}

	fmt.Printf("TFIM chain n=%d, J=%.1f, g=%.1f: magnetization ⟨Z⟩(t) from |0…0⟩\n\n", n, j, g)
	fmt.Println("  t     ⟨Z⟩      ")
	for _, time := range []float64{0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0} {
		var seq qop.Sequence
		if time > 0 {
			op, err := algolib.NewTFIMEvolution(reg, model, g, time, steps)
			if err != nil {
				log.Fatal(err)
			}
			seq = qop.Sequence{op}
		} else {
			prep, err := algolib.NewPrepBasis(reg, 0)
			if err != nil {
				log.Fatal(err)
			}
			seq = qop.Sequence{prep}
		}
		low, err := algolib.Lower(seq, algolib.Registers{"chain": reg})
		if err != nil {
			log.Fatal(err)
		}
		st, err := sim.Evolve(low.Circuit)
		if err != nil {
			log.Fatal(err)
		}
		mag := st.ExpectationDiagonal(func(k uint64) float64 {
			total := 0.0
			for q := 0; q < n; q++ {
				if k>>uint(q)&1 == 1 {
					total--
				} else {
					total++
				}
			}
			return total / n
		})
		bar := int((mag + 1) / 2 * 40)
		fmt.Printf("%5.2f  %+.4f  |%s\n", time, mag, strings.Repeat("█", bar))
	}
	fmt.Println("\nthe cost hint scales with Trotter resolution:")
	for _, s := range []int{8, 64, 512} {
		op, err := algolib.NewTFIMEvolution(reg, model, g, 1.0, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  steps=%-4d  twoq=%-5d depth=%d\n", s, op.CostHint.TwoQ, op.CostHint.Depth)
	}
}
