// Package badignore holds a reasonless suppression directive, which is
// itself a finding (checked programmatically in lint_test.go — the
// malformed directive's own line cannot also carry a want comment).
package badignore

// V is plain package state.
var V int

// Set writes V under a directive that names an analyzer but gives no
// reason.
func Set(x int) {
	//lint:ignore determinism
	V = x
}
