package algolib

import (
	"fmt"
)

// This file provides the classical post-processing half of period finding
// (§4.4's "expectation/estimation helpers" family): continued-fraction
// expansion of a measured phase k/2^n to recover the order r.

// Fraction is a rational p/q.
type Fraction struct {
	P, Q uint64
}

// Convergents returns the continued-fraction convergents of num/den in
// order of increasing denominator (including the final exact fraction).
func Convergents(num, den uint64) ([]Fraction, error) {
	if den == 0 {
		return nil, fmt.Errorf("algolib: zero denominator")
	}
	var out []Fraction
	// Standard recurrence: h_i = a_i h_{i-1} + h_{i-2}.
	var h0, h1 uint64 = 1, 0 // numerators (h_{-1}, h_{-2})
	var k0, k1 uint64 = 0, 1 // denominators
	a, b := num, den
	for {
		q := a / b
		h0, h1 = q*h0+h1, h0
		k0, k1 = q*k0+k1, k0
		out = append(out, Fraction{P: h0, Q: k0})
		a, b = b, a%b
		if b == 0 {
			return out, nil
		}
	}
}

// RecoverPeriod post-processes a phase-estimation outcome k (out of 2^n
// values) into a candidate period r ≤ maxDenominator: the denominator of
// the best convergent of k/2^n. The verifier reports whether the
// candidate truly satisfies base^r ≡ 1 (mod modulus); callers retry with
// another measurement when it fails (k = 0 or shared factors).
func RecoverPeriod(k uint64, n int, base, modulus, maxDenominator uint64) (r uint64, ok bool, err error) {
	if n < 1 || n > 62 {
		return 0, false, fmt.Errorf("algolib: counting width %d out of [1,62]", n)
	}
	den := uint64(1) << uint(n)
	if k >= den {
		return 0, false, fmt.Errorf("algolib: outcome %d exceeds 2^%d", k, n)
	}
	if k == 0 {
		return 0, false, nil // uninformative measurement
	}
	convs, err := Convergents(k, den)
	if err != nil {
		return 0, false, err
	}
	for _, c := range convs {
		if c.Q == 0 || c.Q > maxDenominator {
			continue
		}
		if c.Q > 1 && modPow(base, c.Q, modulus) == 1%modulus {
			return c.Q, true, nil
		}
	}
	return 0, false, nil
}

// OrderOf computes the multiplicative order of base modulo modulus by
// direct iteration — the brute-force reference for tests and examples.
func OrderOf(base, modulus uint64) (uint64, error) {
	if modulus < 2 {
		return 0, fmt.Errorf("algolib: modulus %d < 2", modulus)
	}
	if gcd(base%modulus, modulus) != 1 {
		return 0, fmt.Errorf("algolib: gcd(%d, %d) != 1; no order exists", base, modulus)
	}
	acc := base % modulus
	for r := uint64(1); r <= modulus; r++ {
		if acc == 1 {
			return r, nil
		}
		acc = acc * (base % modulus) % modulus
	}
	return 0, fmt.Errorf("algolib: order not found below modulus (impossible for coprime base)")
}
