// Package ctxdesc implements context descriptors: declarative records that
// specify how an operator sequence may be executed without changing its
// meaning (paper §4.3).
//
// A Context carries execution policy (engine, samples, seed, target
// constraints, transpiler options — Listing 4), an optional error
// correction policy (Listing 5), and the orthogonal-service blocks for
// annealing, distributed communication and pulse control (§4.3.1). The
// middle layer guarantees that swapping contexts never mutates the intent
// artifacts (quantum data types and operator descriptors).
package ctxdesc

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// SchemaName matches the "$schema" field of the paper's Listings 4 and 5.
const SchemaName = "ctx.schema.json"

// Context is the top-level context descriptor.
type Context struct {
	Schema string  `json:"$schema"`
	Exec   *Exec   `json:"exec,omitempty"`
	QEC    *QEC    `json:"qec,omitempty"`
	Anneal *Anneal `json:"anneal,omitempty"`
	Comm   *Comm   `json:"comm,omitempty"`
	Pulse  *Pulse  `json:"pulse,omitempty"`
	Sweep  *Sweep  `json:"sweep,omitempty"`

	// Extensions carries forward-compatible blocks the core does not
	// interpret (Listing 5 shows an "extensions" field).
	Extensions map[string]any `json:"extensions,omitempty"`
}

// Exec is the execution-policy block (Listing 4).
type Exec struct {
	// Engine selects the backend, e.g. "gate.statevector" (our Aer
	// substitute), "anneal.sa" (our neal substitute), "pulse.model".
	Engine string `json:"engine"`

	// Samples is the number of shots/reads to draw.
	Samples int `json:"samples,omitempty"`

	// Seed makes every stochastic stage deterministic.
	Seed uint64 `json:"seed,omitempty"`

	// Target constrains compilation: basis gates and qubit connectivity.
	// Omitting it yields an ideal all-to-all configuration (paper §4.3).
	Target *Target `json:"target,omitempty"`

	// Options passes engine-specific settings such as
	// optimization_level.
	Options map[string]any `json:"options,omitempty"`
}

// Target describes the compilation target (Listing 4's "target" block).
type Target struct {
	BasisGates  []string `json:"basis_gates,omitempty"`
	CouplingMap [][2]int `json:"coupling_map,omitempty"`
	NumQubits   int      `json:"num_qubits,omitempty"`
}

// QEC is the error-correction policy block (Listing 5). Error correction
// is execution context: the same logical program runs unmodified with or
// without it.
type QEC struct {
	CodeFamily     string   `json:"code_family"` // "surface", "repetition"
	Distance       int      `json:"distance"`
	Allocator      string   `json:"allocator,omitempty"` // "auto" delegates patch placement
	LogicalGateSet []string `json:"logical_gate_set,omitempty"`
	Decoder        string   `json:"decoder,omitempty"`         // "majority", "mwpm_lite"
	PhysErrorRate  float64  `json:"phys_error_rate,omitempty"` // per-round physical error probability
	Rounds         int      `json:"rounds,omitempty"`          // syndrome rounds per logical op (0 = distance)
}

// Anneal is the annealer-settings block (§5's `"contexts": {"anneal": …}`).
type Anneal struct {
	NumReads      int     `json:"num_reads"`
	Sweeps        int     `json:"sweeps,omitempty"`     // Metropolis sweeps per read (default 1000)
	BetaMin       float64 `json:"beta_min,omitempty"`   // initial inverse temperature
	BetaMax       float64 `json:"beta_max,omitempty"`   // final inverse temperature
	Schedule      string  `json:"schedule,omitempty"`   // "geometric" (default) or "linear"
	Embed         bool    `json:"embed,omitempty"`      // minor-embed onto the hardware graph
	Topology      string  `json:"topology,omitempty"`   // "chimera" hardware graph family
	UnitCells     int     `json:"unit_cells,omitempty"` // Chimera grid side
	ChainStrength float64 `json:"chain_strength,omitempty"`
}

// Comm is the distributed-execution block (§4.3.1: quantum communication
// with teleportation and remote operations between devices).
type Comm struct {
	QPUs           int   `json:"qpus"`                 // number of devices
	QubitsPerQPU   int   `json:"qubits_per_qpu"`       // capacity of each device
	AllowTeleport  bool  `json:"allow_teleport"`       // permit teleported two-qubit gates
	Partition      []int `json:"partition,omitempty"`  // explicit qubit→QPU map; empty = block partition
	EPRBufferPairs int   `json:"epr_buffer,omitempty"` // pre-shared entanglement budget (0 = unlimited)
}

// Sweep is the parameter-sweep block: operator parameters carrying the
// marker "$name" (for a name listed in Params) are bound per point from
// the Points grid, one execution per point. The program compiles once
// as a parametric plan; per-point results are bit-identical to
// submitting the same bundle with the point's concrete values in place
// of the markers.
type Sweep struct {
	// Params names the sweep parameters in bind-vector order: point
	// index j supplies the value for "$Params[j]".
	Params []string `json:"params"`
	// Points is the evaluation grid; every row has len(Params) values.
	Points [][]float64 `json:"points"`
}

// Pulse is the pulse/control block (§4.3.1).
type Pulse struct {
	DTNanos      float64            `json:"dt_ns,omitempty"` // sample period
	SingleGateNS float64            `json:"single_gate_ns,omitempty"`
	TwoGateNS    float64            `json:"two_gate_ns,omitempty"`
	Calibrations map[string]float64 `json:"calibrations,omitempty"` // per-gate duration overrides
}

// New returns a context with the schema field set.
func New() *Context { return &Context{Schema: SchemaName} }

// NewGate returns the paper's Listing-4 shape: a gate-engine execution
// context with samples and seed.
func NewGate(engine string, samples int, seed uint64) *Context {
	c := New()
	c.Exec = &Exec{Engine: engine, Samples: samples, Seed: seed}
	return c
}

// NewAnneal returns an annealing context in the §5 shape.
func NewAnneal(engine string, numReads int, seed uint64) *Context {
	c := New()
	c.Exec = &Exec{Engine: engine, Seed: seed}
	c.Anneal = &Anneal{NumReads: numReads}
	return c
}

// Validate checks internal consistency of whichever blocks are present.
func (c *Context) Validate() error {
	var probs []string
	if c.Schema != SchemaName {
		probs = append(probs, fmt.Sprintf("$schema is %q, want %q", c.Schema, SchemaName))
	}
	if c.Exec != nil {
		if c.Exec.Engine == "" {
			probs = append(probs, "exec.engine is empty")
		}
		if c.Exec.Samples < 0 {
			probs = append(probs, fmt.Sprintf("exec.samples %d is negative", c.Exec.Samples))
		}
		if t := c.Exec.Target; t != nil {
			for i, pair := range t.CouplingMap {
				if pair[0] == pair[1] {
					probs = append(probs, fmt.Sprintf("exec.target.coupling_map[%d] is a self-loop (%d,%d)", i, pair[0], pair[1]))
				}
				if pair[0] < 0 || pair[1] < 0 {
					probs = append(probs, fmt.Sprintf("exec.target.coupling_map[%d] has negative qubit", i))
				}
				if t.NumQubits > 0 && (pair[0] >= t.NumQubits || pair[1] >= t.NumQubits) {
					probs = append(probs, fmt.Sprintf("exec.target.coupling_map[%d] exceeds num_qubits %d", i, t.NumQubits))
				}
			}
		}
	}
	if q := c.QEC; q != nil {
		switch q.CodeFamily {
		case "surface", "repetition":
		case "":
			probs = append(probs, "qec.code_family is empty")
		default:
			probs = append(probs, fmt.Sprintf("unknown qec.code_family %q", q.CodeFamily))
		}
		if q.Distance < 1 {
			probs = append(probs, fmt.Sprintf("qec.distance %d < 1", q.Distance))
		} else if q.Distance%2 == 0 {
			probs = append(probs, fmt.Sprintf("qec.distance %d must be odd", q.Distance))
		}
		if q.PhysErrorRate < 0 || q.PhysErrorRate >= 1 {
			probs = append(probs, fmt.Sprintf("qec.phys_error_rate %v out of [0,1)", q.PhysErrorRate))
		}
		switch q.Decoder {
		case "", "majority", "mwpm_lite":
		default:
			probs = append(probs, fmt.Sprintf("unknown qec.decoder %q", q.Decoder))
		}
	}
	if a := c.Anneal; a != nil {
		if a.NumReads < 1 {
			probs = append(probs, fmt.Sprintf("anneal.num_reads %d < 1", a.NumReads))
		}
		if a.Sweeps < 0 {
			probs = append(probs, fmt.Sprintf("anneal.sweeps %d is negative", a.Sweeps))
		}
		if a.BetaMin < 0 || a.BetaMax < 0 || (a.BetaMax != 0 && a.BetaMin > a.BetaMax) {
			probs = append(probs, fmt.Sprintf("anneal beta range [%v,%v] invalid", a.BetaMin, a.BetaMax))
		}
		switch a.Schedule {
		case "", "geometric", "linear":
		default:
			probs = append(probs, fmt.Sprintf("unknown anneal.schedule %q", a.Schedule))
		}
	}
	if m := c.Comm; m != nil {
		if m.QPUs < 1 {
			probs = append(probs, fmt.Sprintf("comm.qpus %d < 1", m.QPUs))
		}
		if m.QubitsPerQPU < 1 {
			probs = append(probs, fmt.Sprintf("comm.qubits_per_qpu %d < 1", m.QubitsPerQPU))
		}
		for i, p := range m.Partition {
			if p < 0 || p >= m.QPUs {
				probs = append(probs, fmt.Sprintf("comm.partition[%d] = %d out of [0,%d)", i, p, m.QPUs))
			}
		}
	}
	if p := c.Pulse; p != nil {
		if p.DTNanos < 0 || p.SingleGateNS < 0 || p.TwoGateNS < 0 {
			probs = append(probs, "pulse durations must be non-negative")
		}
	}
	if s := c.Sweep; s != nil {
		if len(s.Params) == 0 {
			probs = append(probs, "sweep.params is empty")
		}
		seen := make(map[string]bool, len(s.Params))
		for i, name := range s.Params {
			if name == "" {
				probs = append(probs, fmt.Sprintf("sweep.params[%d] is empty", i))
			} else if seen[name] {
				probs = append(probs, fmt.Sprintf("sweep.params[%d] %q is duplicated", i, name))
			}
			seen[name] = true
		}
		if len(s.Points) == 0 {
			probs = append(probs, "sweep.points is empty")
		}
		for i, pt := range s.Points {
			if len(pt) != len(s.Params) {
				probs = append(probs, fmt.Sprintf("sweep.points[%d] has %d values for %d params", i, len(pt), len(s.Params)))
				continue
			}
			for j, v := range pt {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					probs = append(probs, fmt.Sprintf("sweep.points[%d][%d] is not finite", i, j))
				}
			}
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("ctx: %s", strings.Join(probs, "; "))
	}
	return nil
}

// OptimizationLevel reads exec.options.optimization_level, defaulting to 1.
func (c *Context) OptimizationLevel() int {
	if c.Exec == nil || c.Exec.Options == nil {
		return 1
	}
	v, ok := c.Exec.Options["optimization_level"]
	if !ok {
		return 1
	}
	switch t := v.(type) {
	case float64:
		return int(t)
	case int:
		return t
	}
	return 1
}

// EngineFamily returns the prefix before the first '.' of exec.engine,
// which names the backend family ("gate", "anneal", "pulse").
func (c *Context) EngineFamily() string {
	if c.Exec == nil {
		return ""
	}
	if i := strings.IndexByte(c.Exec.Engine, '.'); i >= 0 {
		return c.Exec.Engine[:i]
	}
	return c.Exec.Engine
}

// Clone returns a deep copy via JSON round-trip.
func (c *Context) Clone() *Context {
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("ctxdesc: clone marshal: %v", err))
	}
	var cp Context
	if err := json.Unmarshal(b, &cp); err != nil {
		panic(fmt.Sprintf("ctxdesc: clone unmarshal: %v", err))
	}
	return &cp
}

// Merge overlays o's non-nil blocks onto a copy of c, the mechanism for
// composing a base policy with per-run overrides. Extensions merge by key.
func (c *Context) Merge(o *Context) *Context {
	out := c.Clone()
	if o == nil {
		return out
	}
	if o.Exec != nil {
		out.Exec = o.Clone().Exec
	}
	if o.QEC != nil {
		out.QEC = o.Clone().QEC
	}
	if o.Anneal != nil {
		out.Anneal = o.Clone().Anneal
	}
	if o.Comm != nil {
		out.Comm = o.Clone().Comm
	}
	if o.Pulse != nil {
		out.Pulse = o.Clone().Pulse
	}
	if o.Sweep != nil {
		out.Sweep = o.Clone().Sweep
	}
	for k, v := range o.Extensions {
		if out.Extensions == nil {
			out.Extensions = map[string]any{}
		}
		out.Extensions[k] = v
	}
	return out
}

// FromJSON parses and validates a context descriptor.
func FromJSON(src []byte) (*Context, error) {
	var c Context
	if err := json.Unmarshal(src, &c); err != nil {
		return nil, fmt.Errorf("ctxdesc: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// MarshalJSON defaults the schema field.
func (c *Context) MarshalJSON() ([]byte, error) {
	type alias Context
	cp := *c
	if cp.Schema == "" {
		cp.Schema = SchemaName
	}
	return json.Marshal((*alias)(&cp))
}
