package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/qdt"
)

// slowSweepBundle builds a symbolic 21-qubit p=1 QAOA sweep over n
// points: each point runs ~0.4 s on one shard, so a two-worker scatter
// leaves a wide window to SIGKILL a range owner mid-sweep. Binding is
// deterministic, so the same template yields identical per-point counts
// wherever each range lands.
func slowSweepBundle(t *testing.T, n int) []byte {
	t.Helper()
	const nq = 21
	reg := qdt.NewIsingVars("ising_vars", "s", nq)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(nq), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", 256, 11)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{0.1 + 0.07*float64(i), 0.15 + 0.05*float64(i)}
	}
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: pts}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// postSweep submits a sweep bundle to a process's POST /v1/sweeps and
// returns the accepted job ID.
func postSweep(t *testing.T, s *server, raw []byte) string {
	t.Helper()
	resp, err := http.Post(s.url("/v1/sweeps"), "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit = %d (%s)", resp.StatusCode, body)
	}
	var sub struct {
		ID     string `json:"id"`
		Points int    `json:"points"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("sweep submit body: %v (%s)", err, body)
	}
	return sub.ID
}

// sweepEntries long-polls GET /v1/sweeps/{id}?wait= until the merged
// result document lands, then returns per-point entry renderings keyed
// by global point index.
func sweepEntries(t *testing.T, s *server, id string) map[int]string {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(s.url("/v1/sweeps/" + id + "?wait=10s"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			var doc struct {
				Results []struct {
					Index   int   `json:"index"`
					Entries []any `json:"entries"`
				} `json:"results"`
			}
			if err := json.Unmarshal(body, &doc); err != nil {
				t.Fatalf("sweep result body: %v (%s)", err, body)
			}
			out := make(map[int]string, len(doc.Results))
			for _, pt := range doc.Results {
				out[pt.Index] = fmt.Sprint(pt.Entries)
			}
			return out
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("sweep %s still pending: %s", id, body)
			}
		default:
			t.Fatalf("sweep result = %d (%s)", resp.StatusCode, body)
		}
	}
}

// TestSweepDispatchAcceptance is the sweep acceptance test at the
// process level: a dispatcher qmlserve scatters one POST /v1/sweeps
// across two worker qmlserves; when the worker owning the first point
// range is SIGKILLed mid-sweep, only its unfinished range re-forwards
// to the survivor, and the merged result set is per-point identical to
// the same sweep on a fresh single node.
func TestSweepDispatchAcceptance(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH; cannot build the server binary")
	}
	bin := filepath.Join(t.TempDir(), "qmlserve")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building qmlserve: %v\n%s", err, out)
	}

	w1 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	w2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	dataDir := t.TempDir()
	disp := startProc(t, bin,
		"-addr", "127.0.0.1:0",
		"-dispatch", w1.addr+","+w2.addr,
		"-data-dir", dataDir,
		"-probe-interval", "100ms",
		"-poll-interval", "25ms",
	)

	const n = 8
	raw := slowSweepBundle(t, n)
	id := postSweep(t, disp, raw)

	// Scatter order follows the -dispatch flag order, so the range
	// [0,4) lands on w1. Kill w1 as soon as the sweep is running and
	// before its range can complete (~1.6 s of statevector work).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("sweep never reached running; logs:\n%s", disp.logs)
		}
		st := getJSON(t, disp.url("/v1/jobs/"+id), http.StatusOK)
		if st["state"] == "running" {
			break
		}
		switch st["state"] {
		case "done", "failed", "canceled":
			t.Fatalf("sweep finished before the kill window: %v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w1.cmd.Process.Kill(); err != nil { // SIGKILL mid-sweep
		t.Fatal(err)
	}
	w1.cmd.Wait()

	// The generic job route long-polls the sweep to terminal and carries
	// the grid progress fields; the lost range must have re-forwarded.
	fin := getJSON(t, disp.url("/v1/jobs/"+id+"?wait=120s"), http.StatusOK)
	if fin["state"] != "done" {
		t.Fatalf("sweep finished %v: %v\nlogs:\n%s", fin["state"], fin, disp.logs)
	}
	if fin["sweep"] != true || fin["points"].(float64) != n || fin["points_done"].(float64) != n {
		t.Fatalf("sweep progress fields: %v", fin)
	}
	if fin["reforwards"].(float64) < 1 {
		t.Fatalf("no range was re-forwarded after the worker kill: %v", fin)
	}
	merged := sweepEntries(t, disp, id)
	if len(merged) != n {
		t.Fatalf("merged %d points, want %d", len(merged), n)
	}

	// The dispatcher journaled ONE record for the whole grid: a single
	// submitted event carrying the point count, not one per point.
	journal, err := os.ReadFile(filepath.Join(dataDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(journal), `"t":"submitted"`); got != 1 {
		t.Fatalf("journal has %d submitted records, want 1", got)
	}
	if !strings.Contains(string(journal), fmt.Sprintf(`"points":%d`, n)) {
		t.Fatal("journal submit record does not carry the grid size")
	}

	// Reference: the same sweep template on a fresh single node. Bind
	// determinism means every point's counts must match the merged
	// fleet set, including the points that moved workers mid-flight.
	w3 := startProc(t, bin, "-addr", "127.0.0.1:0", "-workers", "1", "-max-shards", "1")
	refID := postSweep(t, w3, raw)
	ref := sweepEntries(t, w3, refID)
	for i := 0; i < n; i++ {
		if merged[i] == "" || merged[i] != ref[i] {
			t.Fatalf("point %d differs after the mid-sweep kill:\n fleet %s\n ref   %s", i, merged[i], ref[i])
		}
	}

	// Fleet health surfaced the death and the range move.
	stats := getJSON(t, disp.url("/v1/stats"), http.StatusOK)
	dstats := stats["dispatcher"].(map[string]any)
	if dstats["sweeps"].(float64) != 1 {
		t.Fatalf("dispatcher sweep counter: %v", dstats)
	}
	if dstats["reforwarded"].(float64) < 1 {
		t.Fatalf("dispatcher stats missed the range reforward: %v", dstats)
	}
}
