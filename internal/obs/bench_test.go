package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The hot-path instruments sit inside the pool scheduler and journal
// append path; these pin their cost so instrumentation regressions show
// up in the benchmark diff (the CI threshold gate runs over them).

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_ops_total", "ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_lat_seconds", "lat", nil)
	d := 137 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	g := NewRegistry().Gauge("bench_depth", "depth")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkFamilyCounterAt(b *testing.B) {
	f := NewRegistry().CounterFamily("bench_kind_total", "ops by kind", "kind",
		[]string{"gate1q", "gate2q", "monomial", "diag", "permute", "ctrlphase", "init"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.At(i & 3).Inc()
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlight(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightKernelBatch, "bench", "")
	}
}

// BenchmarkWriteText pins the scrape path's allocation behavior: the
// registry pre-sizes its buffer from the previous exposition's length,
// so a steady-state scrape should not regrow it sample by sample.
func BenchmarkWriteText(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 24; i++ {
		r.Counter(fmt.Sprintf("bench_scrape_c%02d_total", i), "scrape fodder").Add(uint64(i))
		r.Histogram(fmt.Sprintf("bench_scrape_h%02d", i), "scrape fodder", nil).Observe(time.Millisecond)
	}
	var sb strings.Builder
	r.WriteText(&sb) // warm lastLen so steady state is measured
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		if err := r.WriteText(&sb); err != nil {
			b.Fatal(err)
		}
	}
}
