// Package fleet is the serving layer's horizontal scale-out subsystem: a
// dispatcher that fronts N worker qmlserve nodes over the same /v1 HTTP
// protocol the workers themselves speak. Workers need zero changes to
// join a fleet — the dispatcher is just another /v1 client — and clients
// need zero changes to use one: POST /v1/jobs, GET status/result, DELETE
// cancel, /v1/jobs history and /v1/stats all behave as on a single node,
// with the fleet behind them.
//
// # Routing
//
// Submissions are routed load-aware with cache-key affinity. A
// consistent-hash ring (virtual nodes per worker) maps each submission's
// content address — the same canonical bundle+shots+seed key the result
// caches use — to a preferred worker, so identical bundles land on the
// node that already holds the result in its cache and duplicates of a
// running job coalesce in that worker's pool. The affinity choice yields
// to load only when that worker is carrying AffinitySlack more
// outstanding dispatched jobs than the least-loaded node, in which case
// the least-loaded healthy worker takes the job (Stats.AffinitySpills).
// While a job with some key is in flight through the dispatcher, later
// duplicates are pinned to its worker even if the ring has shifted, so
// dispatcher-level coalescing survives ejects and readmissions.
//
// # Health
//
// A prober polls every worker's /v1/stats on ProbeInterval. EjectAfter
// consecutive failures mark the worker unhealthy — it leaves the routing
// ring (its keys rehash to the surviving nodes, which is the consistent
// hash's minimal-movement rehash) but keeps being probed, and a single
// success readmits it. Every dispatcher→worker HTTP call carries both a
// context deadline and a hard client timeout (RequestTimeout), so a hung
// worker can stall at most one request, never wedge a dispatcher
// goroutine forever.
//
// # Durability
//
// With a Store attached, the dispatcher journals every accepted job
// through internal/jobs/store exactly as a worker pool does — submitted
// (with the canonical bundle), assigned (worker + remote job ID,
// re-appended on every re-forward), started, done/failed/canceled — by
// default under the store's group-commit fsync policy so concurrent
// submissions share fsync barriers. A job whose worker dies mid-run is
// re-forwarded to another node and re-runs there; execution is
// deterministic in the cache key, so the re-run's counts are identical
// to what the lost run would have produced (at-least-once forwarding —
// a network-partitioned worker may also finish the original run, which
// is harmless for the same reason). After a dispatcher crash, New
// replays the journal: terminal jobs answer status again (results are
// proxied from the worker that holds them), and non-terminal jobs are
// re-attached — the dispatcher re-polls the assigned worker for their
// in-flight state, and re-forwards any the fleet no longer knows.
//
// cmd/qmlserve exposes all of this as `-dispatch worker1,worker2,...`,
// so one binary serves both roles.
package fleet
