// Package comm implements the quantum communication context service
// (paper §4.3.1): multi-QPU partitioning, EPR-pair accounting, and
// teleportation insertion for two-qubit gates that cross device
// boundaries.
//
// The executable core is a *coherent* (measurement-deferred) cat-state
// non-local CNOT: an EPR pair bridges the two QPUs, corrections are
// applied as controlled gates instead of classically fed-forward ones, and
// both ancillas provably end in |+⟩ disentangled from the data. This lets
// the statevector engine verify distributed realizations exactly, while
// Analyze provides the communication-volume accounting (EPR pairs,
// classical bits) a scheduler would consume — the cost dimension the
// paper's §2 motivational example calls out as invisible in today's
// stacks.
package comm

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/ctxdesc"
)

// Partition maps each data qubit to a QPU.
type Partition struct {
	QPUs   int
	Assign []int // Assign[q] = QPU of qubit q
}

// BlockPartition slices qubits into contiguous blocks of qubitsPerQPU.
func BlockPartition(numQubits, qpus, qubitsPerQPU int) (*Partition, error) {
	if qpus < 1 || qubitsPerQPU < 1 {
		return nil, fmt.Errorf("comm: invalid partition shape %d QPUs × %d qubits", qpus, qubitsPerQPU)
	}
	if numQubits > qpus*qubitsPerQPU {
		return nil, fmt.Errorf("comm: %d qubits exceed capacity %d×%d", numQubits, qpus, qubitsPerQPU)
	}
	p := &Partition{QPUs: qpus, Assign: make([]int, numQubits)}
	for q := 0; q < numQubits; q++ {
		p.Assign[q] = q / qubitsPerQPU
	}
	return p, nil
}

// FromContext builds a partition for numQubits from the comm block.
func FromContext(cfg *ctxdesc.Comm, numQubits int) (*Partition, error) {
	if cfg == nil {
		return nil, fmt.Errorf("comm: nil comm context")
	}
	if len(cfg.Partition) > 0 {
		if len(cfg.Partition) != numQubits {
			return nil, fmt.Errorf("comm: explicit partition covers %d qubits, circuit has %d", len(cfg.Partition), numQubits)
		}
		p := &Partition{QPUs: cfg.QPUs, Assign: append([]int(nil), cfg.Partition...)}
		counts := make([]int, cfg.QPUs)
		for q, dev := range p.Assign {
			if dev < 0 || dev >= cfg.QPUs {
				return nil, fmt.Errorf("comm: qubit %d assigned to nonexistent QPU %d", q, dev)
			}
			counts[dev]++
			if counts[dev] > cfg.QubitsPerQPU {
				return nil, fmt.Errorf("comm: QPU %d over capacity %d", dev, cfg.QubitsPerQPU)
			}
		}
		return p, nil
	}
	return BlockPartition(numQubits, cfg.QPUs, cfg.QubitsPerQPU)
}

// Crossing reports whether an instruction spans two QPUs.
func (p *Partition) Crossing(ins circuit.Instruction) bool {
	if len(ins.Qubits) < 2 {
		return false
	}
	first := p.Assign[ins.Qubits[0]]
	for _, q := range ins.Qubits[1:] {
		if p.Assign[q] != first {
			return true
		}
	}
	return false
}

// Plan is the communication accounting for one circuit under a partition.
type Plan struct {
	CrossingGates int
	EPRPairs      int
	ClassicalBits int // 2 per teleported gate in the measured protocol
	LocalGates    int
	PerQPUGates   []int
	TeleportDepth int // extra depth contributed by teleport subcircuits
}

// Analyze counts the communication resources the circuit needs under the
// partition. Gates on 3+ qubits must be decomposed first.
func Analyze(c *circuit.Circuit, p *Partition) (*Plan, error) {
	if len(p.Assign) < c.NumQubits {
		return nil, fmt.Errorf("comm: partition covers %d qubits, circuit has %d", len(p.Assign), c.NumQubits)
	}
	plan := &Plan{PerQPUGates: make([]int, p.QPUs)}
	for idx, ins := range c.Instrs {
		if ins.Op != circuit.OpGate {
			continue
		}
		if len(ins.Qubits) > 2 {
			return nil, fmt.Errorf("comm: instruction %d: %d-qubit gate must be decomposed before distribution", idx, len(ins.Qubits))
		}
		if p.Crossing(ins) {
			plan.CrossingGates++
			plan.EPRPairs++
			plan.ClassicalBits += 2
			// Coherent protocol: 7 extra gates, depth ≈ 6.
			plan.TeleportDepth += 6
		} else {
			plan.LocalGates++
			plan.PerQPUGates[p.Assign[ins.Qubits[0]]]++
		}
	}
	return plan, nil
}

// NonLocalCX appends the coherent cat-state CNOT between ctrl and tgt
// using fresh ancillas e1 (control side) and e2 (target side). Both
// ancillas must be in |0⟩ and end in |+⟩.
//
// Protocol: EPR prep H(e1)·CX(e1,e2); entangle CX(ctrl,e1); deferred
// X-correction CX(e1,e2); remote action CX(e2,tgt); deferred Z-correction
// H(e2)·CZ(e2,ctrl).
func NonLocalCX(c *circuit.Circuit, ctrl, tgt, e1, e2 int) {
	c.H(e1)
	c.CX(e1, e2)
	c.CX(ctrl, e1)
	c.CX(e1, e2)
	c.CX(e2, tgt)
	c.H(e2)
	c.CZGate(e2, ctrl)
}

// DistributeResult carries the rewritten circuit and its plan.
type DistributeResult struct {
	Circuit *circuit.Circuit
	Plan    *Plan
	// AncillaStart is the index of the first EPR ancilla; ancillas occupy
	// [AncillaStart, Circuit.NumQubits).
	AncillaStart int
}

// Distribute rewrites the circuit so every crossing CX becomes a coherent
// teleported CX over fresh EPR ancillas. Only CX crossings are rewritten
// (decompose to a CX basis first); crossing gates of other kinds are
// rejected. The data-qubit indices are unchanged, so measurement maps
// stay valid.
func Distribute(c *circuit.Circuit, cfg *ctxdesc.Comm) (*DistributeResult, error) {
	p, err := FromContext(cfg, c.NumQubits)
	if err != nil {
		return nil, err
	}
	plan, err := Analyze(c, p)
	if err != nil {
		return nil, err
	}
	if !cfg.AllowTeleport && plan.CrossingGates > 0 {
		return nil, fmt.Errorf("comm: %d crossing gates but allow_teleport is false", plan.CrossingGates)
	}
	if cfg.EPRBufferPairs > 0 && plan.EPRPairs > cfg.EPRBufferPairs {
		return nil, fmt.Errorf("comm: plan needs %d EPR pairs, buffer holds %d", plan.EPRPairs, cfg.EPRBufferPairs)
	}
	out := circuit.New(c.NumQubits+2*plan.EPRPairs, c.NumClbits)
	anc := c.NumQubits
	for idx, ins := range c.Instrs {
		if ins.Op == circuit.OpGate && p.Crossing(ins) {
			if ins.Gate != "cx" {
				return nil, fmt.Errorf("comm: instruction %d: crossing gate %q unsupported; decompose to cx first", idx, ins.Gate)
			}
			NonLocalCX(out, ins.Qubits[0], ins.Qubits[1], anc, anc+1)
			anc += 2
			continue
		}
		if err := out.Append(ins); err != nil {
			return nil, err
		}
	}
	return &DistributeResult{Circuit: out, Plan: plan, AncillaStart: c.NumQubits}, nil
}
