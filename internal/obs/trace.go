package obs

import (
	"crypto/rand"
	"encoding/hex"
	"time"
)

// TraceHeader is the HTTP header carrying a job's trace ID: accepted on
// POST /v1/jobs, echoed on responses, and forwarded dispatcher→worker.
const TraceHeader = "X-Trace-Id"

// MaxTraceIDLen bounds accepted trace IDs so a hostile header cannot
// bloat journals and logs.
const MaxTraceIDLen = 128

// NewTraceID returns a random 32-hex-char (16-byte) trace ID.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether s is acceptable as an inbound trace ID:
// 1–128 characters of [A-Za-z0-9._-].
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > MaxTraceIDLen {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// EnsureTraceID returns s when it is a valid trace ID and a fresh random
// ID otherwise (including for empty s).
func EnsureTraceID(s string) string {
	if ValidTraceID(s) {
		return s
	}
	return NewTraceID()
}

// Span is one entry in a job's lifecycle log: a named stage, the wall
// time it completed, how long it took (zero for instantaneous
// transitions like "queued"), and an optional note (e.g. the owning
// worker's name on "assigned").
type Span struct {
	Stage string        `json:"stage"`
	At    time.Time     `json:"at"`
	Dur   time.Duration `json:"-"`
	DurNs int64         `json:"dur_ns"`
	Note  string        `json:"note,omitempty"`
}

// NewSpan builds a span stamped with the current time.
func NewSpan(stage string, d time.Duration, note string) Span {
	return Span{Stage: stage, At: time.Now().UTC(), Dur: d, DurNs: d.Nanoseconds(), Note: note}
}
