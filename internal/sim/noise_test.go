package sim

import (
	"math"
	"testing"

	"repro/internal/circuit"
)

func bellCircuit() *circuit.Circuit {
	c := circuit.New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	return c
}

func TestRunNoisyZeroNoiseMatchesRun(t *testing.T) {
	c := bellCircuit()
	clean, err := Run(c, Options{Shots: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunNoisy(c, NoiseModel{}, Options{Shots: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range clean.Counts {
		if noisy.Counts[k] != v {
			t.Fatalf("zero-noise path diverged at %d: %d vs %d", k, v, noisy.Counts[k])
		}
	}
}

func TestRunNoisyBellDegrades(t *testing.T) {
	c := bellCircuit()
	noisy, err := RunNoisy(c, NoiseModel{Prob1Q: 0.02, Prob2Q: 0.05}, Options{Shots: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Correlated outcomes (00, 11) still dominate but the anticorrelated
	// ones now appear.
	good := noisy.Counts[0] + noisy.Counts[3]
	bad := noisy.Counts[1] + noisy.Counts[2]
	if bad == 0 {
		t.Error("noise injected no errors")
	}
	frac := float64(good) / 3000
	if frac < 0.80 || frac >= 1.0 {
		t.Errorf("Bell fidelity proxy %v, want in [0.80, 1)", frac)
	}
	_ = bad
}

func TestRunNoisyFidelityMonotoneInNoise(t *testing.T) {
	c := bellCircuit()
	fidelity := func(p float64) float64 {
		res, err := RunNoisy(c, NoiseModel{Prob1Q: p, Prob2Q: p}, Options{Shots: 2000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Counts[0]+res.Counts[3]) / 2000
	}
	f0, f1, f2 := fidelity(0.005), fidelity(0.05), fidelity(0.25)
	if !(f0 > f1 && f1 > f2) {
		t.Errorf("fidelity not monotone: %v, %v, %v", f0, f1, f2)
	}
}

func TestRunNoisyReadoutFlip(t *testing.T) {
	// Deterministic |0⟩ with pure readout noise: P(1) ≈ flip rate.
	c := circuit.New(1, 1)
	c.Gate("id", []int{0})
	c.Measure(0, 0)
	res, err := RunNoisy(c, NoiseModel{ReadoutFlip: 0.1}, Options{Shots: 5000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Counts[1]) / 5000
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("readout flip rate %v, want ~0.1", frac)
	}
}

func TestRunNoisyValidation(t *testing.T) {
	c := bellCircuit()
	if _, err := RunNoisy(c, NoiseModel{Prob1Q: -1}, Options{Shots: 1}); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := RunNoisy(c, NoiseModel{Prob2Q: 1.5}, Options{Shots: 1}); err == nil {
		t.Error(">1 probability accepted")
	}
	if _, err := RunNoisy(c, NoiseModel{Prob1Q: 0.1}, Options{Shots: -1}); err == nil {
		t.Error("negative shots accepted")
	}
}

func TestRunNoisyDeterministicBySeed(t *testing.T) {
	c := bellCircuit()
	nm := NoiseModel{Prob1Q: 0.05, Prob2Q: 0.05, ReadoutFlip: 0.01}
	a, err := RunNoisy(c, nm, Options{Shots: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoisy(c, nm, Options{Shots: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Counts {
		if b.Counts[k] != v {
			t.Fatalf("same seed, different noisy counts at %d", k)
		}
	}
}
