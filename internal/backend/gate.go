package backend

import (
	"fmt"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/comm"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qec"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Gate is the gate-model statevector backend.
type Gate struct {
	engine string
}

// Name implements Backend.
func (g *Gate) Name() string { return g.engine }

// Execute lowers the descriptor sequence to a circuit, transpiles it
// under the context's target, consults the comm and QEC context services,
// simulates, and decodes through the final measurement's result schema.
func (g *Gate) Execute(b *bundle.Bundle) (*result.Result, error) {
	return g.ExecuteSharded(b, 0)
}

// ExecuteSharded implements backend.Sharded: the statevector sweep runs
// across the granted number of persistent shards (≤ 0 lets the simulator
// choose). The grant changes scheduling only, never results.
func (g *Gate) ExecuteSharded(b *bundle.Bundle, shards int) (*result.Result, error) {
	return g.ExecuteStaged(b, shards, nil)
}

// ExecuteStaged implements backend.Staged: ExecuteSharded plus per-stage
// timing callbacks ("transpile" here; "compile"/"execute"/"sample" from
// the simulator).
func (g *Gate) ExecuteStaged(b *bundle.Bundle, shards int, stages StageFunc) (*result.Result, error) {
	return g.executeStaged(b, shards, stages, false)
}

// ExecuteProfiled implements backend.Profiled: ExecuteStaged with the
// simulator's kernel-granular profiler on; the per-kernel table lands in
// the result's Meta["profile"]. The noise-trajectory path has no plan
// execution to profile, so noisy contexts return no profile.
func (g *Gate) ExecuteProfiled(b *bundle.Bundle, shards int, stages StageFunc) (*result.Result, error) {
	return g.executeStaged(b, shards, stages, true)
}

func (g *Gate) executeStaged(b *bundle.Bundle, shards int, stages StageFunc, profile bool) (*result.Result, error) {
	if err := b.Validate(qop.ValidateOptions{}); err != nil {
		return nil, err
	}
	regs := algolib.Registers{}
	for _, d := range b.QDTs {
		regs[d.ID] = d
	}
	lowered, err := algolib.Lower(b.Operators, regs)
	if err != nil {
		return nil, err
	}

	ctx := b.Context
	if ctx == nil {
		ctx = ctxdesc.New()
	}
	opts := transpile.FromContext(ctx)

	// Distribution requires a CX-only two-qubit vocabulary; force the
	// Listing-4 basis when a comm block is present and none was given.
	if ctx.Comm != nil && len(opts.BasisGates) == 0 {
		opts.BasisGates = []string{"sx", "rz", "cx"}
	}

	meta := map[string]any{}
	circ := lowered.Circuit

	transpileStart := time.Now()
	tr, err := transpile.Transpile(circ, opts)
	if err != nil {
		return nil, err
	}
	if stages != nil {
		stages("transpile", time.Since(transpileStart))
	}
	circ = tr.Circuit
	meta["transpile"] = tr.Stats

	if ctx.Comm != nil {
		dist, err := comm.Distribute(circ, ctx.Comm)
		if err != nil {
			return nil, err
		}
		if dist.Circuit.NumQubits > sim.MaxQubits {
			return nil, fmt.Errorf("backend: distributed circuit needs %d qubits (> %d); use comm.Analyze for accounting-only runs", dist.Circuit.NumQubits, sim.MaxQubits)
		}
		circ = dist.Circuit
		meta["comm"] = *dist.Plan
	}

	if ctx.QEC != nil {
		overhead, err := qec.Estimate(ctx.QEC, lowered.Circuit.NumQubits)
		if err != nil {
			return nil, err
		}
		meta["qec"] = *overhead
	}

	shots := DefaultShots
	seed := uint64(0)
	if ctx.Exec != nil {
		if ctx.Exec.Samples > 0 {
			shots = ctx.Exec.Samples
		}
		seed = ctx.Exec.Seed
	}
	noise, err := noiseFromOptions(ctx)
	if err != nil {
		return nil, err
	}
	var run *sim.Result
	if noise.Zero() {
		run, err = sim.Run(circ, sim.Options{Shots: shots, Seed: seed, Shards: shards, Stages: stages, Profile: profile})
	} else {
		// The trajectory engine interleaves noise injection with gate
		// application, so there is no clean compile/execute split to time;
		// only the process-wide sim histograms its Run path shares apply.
		meta["noise"] = noise
		run, err = sim.RunNoisy(circ, noise, sim.Options{Shots: shots, Seed: seed, Shards: shards})
	}
	if err != nil {
		return nil, err
	}
	if run.Profile != nil {
		meta["profile"] = run.Profile
	}

	res := &result.Result{Engine: g.engine, Samples: shots, Meta: meta}
	if m := b.Operators.FinalMeasurement(); m != nil {
		reg, err := measuredRegister(b, m)
		if err != nil {
			return nil, err
		}
		entries, err := result.DecodeCounts(run.Counts, m.Result, reg)
		if err != nil {
			return nil, err
		}
		res.Entries = entries
		res.Sort()
	}
	return res, nil
}

// noiseFromOptions reads the engine-specific noise block from
// exec.options (the context's free-form options field):
//
//	"options": {"noise": {"prob_1q": 0.001, "prob_2q": 0.01, "readout_flip": 0.02}}
func noiseFromOptions(ctx *ctxdesc.Context) (sim.NoiseModel, error) {
	var nm sim.NoiseModel
	if ctx.Exec == nil || ctx.Exec.Options == nil {
		return nm, nil
	}
	raw, ok := ctx.Exec.Options["noise"]
	if !ok {
		return nm, nil
	}
	block, ok := raw.(map[string]any)
	if !ok {
		return nm, fmt.Errorf("backend: exec.options.noise is %T, want object", raw)
	}
	read := func(key string) (float64, error) {
		v, present := block[key]
		if !present {
			return 0, nil
		}
		f, isF := v.(float64)
		if !isF {
			return 0, fmt.Errorf("backend: noise.%s is %T, want number", key, v)
		}
		return f, nil
	}
	var err error
	if nm.Prob1Q, err = read("prob_1q"); err != nil {
		return nm, err
	}
	if nm.Prob2Q, err = read("prob_2q"); err != nil {
		return nm, err
	}
	if nm.ReadoutFlip, err = read("readout_flip"); err != nil {
		return nm, err
	}
	return nm, nm.Validate()
}

func measuredRegister(b *bundle.Bundle, m *qop.Operator) (*qdt.DataType, error) {
	if m.Result == nil {
		return nil, fmt.Errorf("backend: final MEASUREMENT carries no result schema")
	}
	if len(m.Result.ClbitOrder) == 0 {
		return nil, fmt.Errorf("backend: empty clbit order")
	}
	regID, _, err := qop.ParseBitRef(m.Result.ClbitOrder[0])
	if err != nil {
		return nil, err
	}
	return b.QDT(regID)
}
