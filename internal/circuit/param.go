package circuit

import (
	"fmt"

	"repro/internal/gates"
)

// ParamRef marks one gate parameter as symbolic. The effective angle
// under a bind vector v is Scale*v[Index]. Scale folds structural
// constants into the reference — e.g. the QAOA cost layer's RZ(2·γ·w)
// lowers to Scale = 2·w — so binding is a single multiplication.
// Because doubling is exact in IEEE-754 and multiplication rounds once,
// Scale*v[Index] is bit-identical to the value the concrete lowering
// computes ((2·γ)·w and (2·w)·γ round the same real number), which is
// what keeps bound plans bit-identical to concrete compiles.
//
// Index < 0 marks a concrete entry (Params holds the value); such
// entries appear in mixed instructions where only some parameters are
// symbolic.
type ParamRef struct {
	Index int     `json:"index"`
	Scale float64 `json:"scale"`
}

// Concrete reports whether the reference denotes a concrete parameter.
func (r ParamRef) Concrete() bool { return r.Index < 0 }

// GateRefs appends a parameterized gate carrying symbolic parameter
// references. refs must parallel params; concrete entries use
// ParamRef{Index: -1} and read their value from params.
func (c *Circuit) GateRefs(name gates.Name, qubits []int, params []float64, refs []ParamRef) error {
	return c.Append(Instruction{Op: OpGate, Gate: name, Qubits: qubits, Params: params, Refs: refs})
}

// Symbolic reports whether the instruction carries at least one
// symbolic parameter reference.
func (ins *Instruction) Symbolic() bool {
	for _, r := range ins.Refs {
		if r.Index >= 0 {
			return true
		}
	}
	return false
}

// BoundParams returns the instruction's parameters with symbolic
// entries replaced by Scale*values[Index]. Concrete instructions return
// Params unchanged (no copy). Indices out of range of values panic; the
// caller validates the bind vector length against NumParams.
func (ins *Instruction) BoundParams(values []float64) []float64 {
	if !ins.Symbolic() {
		return ins.Params
	}
	out := append([]float64(nil), ins.Params...)
	for i, r := range ins.Refs {
		if r.Index >= 0 {
			out[i] = r.Scale * values[r.Index]
		}
	}
	return out
}

// HasRefs reports whether any instruction carries a symbolic parameter
// reference.
func (c *Circuit) HasRefs() bool {
	for i := range c.Instrs {
		if c.Instrs[i].Symbolic() {
			return true
		}
	}
	return false
}

// NumParams returns 1 + the largest symbolic parameter index used by
// the circuit — the length a bind vector must have. Fully concrete
// circuits return 0.
func (c *Circuit) NumParams() int {
	max := -1
	for i := range c.Instrs {
		for _, r := range c.Instrs[i].Refs {
			if r.Index > max {
				max = r.Index
			}
		}
	}
	return max + 1
}

// BindValues returns a concrete deep copy with every symbolic reference
// resolved to Scale*values[Index] and Refs cleared. The result is
// exactly the circuit a concrete lowering would have produced for these
// values, so compiling it is the reference semantics for a parametric
// bind.
func (c *Circuit) BindValues(values []float64) (*Circuit, error) {
	if np := c.NumParams(); len(values) < np {
		return nil, fmt.Errorf("circuit: bind vector has %d values, circuit uses %d parameters", len(values), np)
	}
	out := c.Copy()
	for i := range out.Instrs {
		ins := &out.Instrs[i]
		if ins.Symbolic() {
			ins.Params = ins.BoundParams(values)
		}
		ins.Refs = nil
	}
	return out, nil
}
