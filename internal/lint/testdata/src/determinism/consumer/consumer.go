// Package consumer imports the deterministic generator, which puts it
// in determinism scope wherever it lives in the tree.
package consumer

import (
	"time"

	"repro/internal/rng"
)

// Seeded derives the generator seed from the wall clock, breaking
// run-to-run reproducibility.
func Seeded() uint64 {
	g := rng.New(uint64(time.Now().UnixNano())) // want `determinism: time\.Now\(\)-derived seed`
	return g.Uint64()
}

// Fixed is the near-miss: an explicit literal seed.
func Fixed() uint64 {
	g := rng.New(42)
	return g.Uint64()
}

// Stamp may read the clock for non-seed purposes.
func Stamp() int64 {
	return time.Now().UnixNano()
}
