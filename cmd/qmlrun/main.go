// Command qmlrun executes a job.json submission bundle through the middle
// layer runtime: validation, backend selection from the context (or the
// scheduler when the context names no engine), execution, and decoded
// output.
//
//	qmlrun job.json
//	qmlrun -engine anneal.sa job.json   # override the context's engine
//	qmlrun -top 5 job.json
//	qmlrun -parallel 4 a.json b.json c.json   # batch mode on a worker pool
//	qmlrun -profile job.json   # print the kernel-granular execution profile
//
// -profile runs statevector execution with the kernel profiler on and
// appends the per-kernel table to the output: one row per fused kernel
// with its kind, support mask, wall time, per-shard min/max and the
// imbalance ratio (max/mean over shards). Profiling never changes
// counts — the sweep bodies and shard ranges are identical either way.
//
// An OpenQASM 2.0 circuit runs like any bundle: -qasm parses the file
// (the ToQASM subset plus common Qiskit spellings), wraps it as a
// GATE_LIST operator over a boolean register with full-register
// readout, and executes it on the gate path:
//
//	qmlrun -qasm bell.qasm
//	qmlrun -qasm -shots 4096 -seed 7 grover.qasm
//
// The reverse direction still exists: -emit-qasm lowers and transpiles
// a bundle's gate path and prints it as OpenQASM 2.0.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/circuit"
	"repro/internal/ctxdesc"
	"repro/internal/jobs"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/transpile"
)

func main() {
	engine := flag.String("engine", "", "override the context's exec.engine")
	top := flag.Int("top", 10, "show at most this many outcomes")
	estimate := flag.Bool("estimate", false, "print per-engine cost estimates instead of executing")
	qasm := flag.Bool("qasm", false, "treat the input as an OpenQASM 2.0 circuit and run it on the gate path")
	emitQASM := flag.Bool("emit-qasm", false, "print the transpiled circuit as OpenQASM 2.0 instead of executing")
	shots := flag.Int("shots", 1024, "samples for -qasm runs (job.json bundles carry their own)")
	seed := flag.Uint64("seed", 1, "sampling seed for -qasm runs")
	parallel := flag.Int("parallel", 0, "batch mode: execute all job files on a pool of this many workers")
	shards := flag.Int("shards", 0, "statevector shards (single run: the grant; batch: the lone-job cap; 0 = auto)")
	profile := flag.Bool("profile", false, "run with the kernel-granular profiler on and print the per-kernel table (counts are unchanged)")
	flag.Parse()
	if *parallel > 0 {
		if flag.NArg() < 1 || *estimate || *qasm || *emitQASM {
			fmt.Fprintln(os.Stderr, "usage: qmlrun -parallel n [-engine name] [-top n] [-shards n] job.json [job.json …]")
			os.Exit(2)
		}
		if err := runParallel(flag.Args(), *engine, *parallel, *shards, *top); err != nil {
			fmt.Fprintln(os.Stderr, "qmlrun:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: qmlrun [-engine name] [-top n] [-estimate] [-qasm] [-emit-qasm] [-parallel n] [-shards n] [-profile] job.json|file.qasm")
		os.Exit(2)
	}
	var err error
	switch {
	case *estimate:
		err = runEstimate(flag.Arg(0))
	case *emitQASM:
		err = runQASM(flag.Arg(0))
	case *qasm:
		err = runFromQASM(flag.Arg(0), *engine, *top, *shards, *shots, *seed, *profile)
	default:
		err = run(flag.Arg(0), *engine, *top, *shards, *profile)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmlrun:", err)
		os.Exit(1)
	}
}

// runEstimate prints the scheduler's per-engine cost projection — the
// "estimate queue and runtime" capability the paper's §2 calls for.
func runEstimate(path string) error {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return err
	}
	ests, err := runtime.EstimateAll(b)
	if err != nil {
		return err
	}
	fmt.Println("engine              feasible   duration(ms)   2q-gates   depth   units")
	for _, e := range ests {
		if !e.Feasible {
			fmt.Printf("%-18s  no (%s)\n", e.Engine, e.Reason)
			continue
		}
		fmt.Printf("%-18s  yes      %12.3f   %8d   %5d   %5d\n",
			e.Engine, e.DurationNS/1e6, e.TwoQubitGates, e.Depth, e.PhysicalUnits)
	}
	return nil
}

// runQASM lowers and transpiles the bundle's gate path and prints it as
// OpenQASM 2.0.
func runQASM(path string) error {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return err
	}
	regs := algolib.Registers{}
	for _, d := range b.QDTs {
		regs[d.ID] = d
	}
	lowered, err := algolib.Lower(b.Operators, regs)
	if err != nil {
		return err
	}
	tr, err := transpile.Transpile(lowered.Circuit, transpile.FromContext(b.Context))
	if err != nil {
		return err
	}
	text, err := tr.Circuit.ToQASM()
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}

// runFromQASM parses an OpenQASM 2.0 file and executes it through the
// same runtime path as a bundle — the dormant parser's CLI entry point.
func runFromQASM(path, engineOverride string, top, shards, shots int, seed uint64, profile bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b, err := qasmBundle(string(src), engineOverride, shots, seed)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := runtime.Submit(b, runtime.Options{Shards: shards, Profile: profile})
	if err != nil {
		return err
	}
	printResult(res, top)
	printProfile(res)
	return nil
}

// qasmBundle wraps a parsed OpenQASM circuit as a one-register bundle:
// a GATE_LIST operator carrying the raw gates plus a full-register
// MEASUREMENT readout (the parser validates the file's own measure
// statements; sampling always reads every qubit). QASM names no
// execution context, so the bundle runs on the gate path —
// gate.statevector unless engineOverride picks another gate engine.
func qasmBundle(src, engineOverride string, shots int, seed uint64) (*bundle.Bundle, error) {
	c, err := circuit.FromQASM(src)
	if err != nil {
		return nil, err
	}
	if c.NumQubits == 0 {
		return nil, fmt.Errorf("qasm: no quantum register declared")
	}
	reg := qdt.New("q", "q", c.NumQubits, qdt.BoolRegister, qdt.AsBool)
	gl, err := algolib.NewGateList(reg, c)
	if err != nil {
		return nil, err
	}
	engine := "gate.statevector"
	if engineOverride != "" {
		engine = engineOverride
	}
	ctx := ctxdesc.NewGate(engine, shots, seed)
	return bundle.New([]*qdt.DataType{reg}, qop.Sequence{gl, algolib.NewMeasurement(reg)}, ctx)
}

func run(path, engineOverride string, top, shards int, profile bool) error {
	b, err := loadBundle(path, engineOverride)
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{Shards: shards, Profile: profile})
	if err != nil {
		return err
	}
	printResult(res, top)
	printProfile(res)
	return nil
}

// loadBundle loads a job.json and applies an optional engine override.
func loadBundle(path, engineOverride string) (*bundle.Bundle, error) {
	b, err := bundle.Load(path, qop.ValidateOptions{})
	if err != nil {
		return nil, err
	}
	if engineOverride != "" {
		ctx := b.Context
		if ctx == nil {
			ctx = ctxdesc.New()
		}
		ctx = ctx.Clone()
		if ctx.Exec == nil {
			ctx.Exec = &ctxdesc.Exec{}
		}
		ctx.Exec.Engine = engineOverride
		b = b.WithContext(ctx)
	}
	return b, nil
}

// runParallel executes every job file concurrently on a jobs.Pool — the
// batch-mode consumer of the same scheduler cmd/qmlserve exposes over
// HTTP. Identical bundles (same intent, context, shots, seed) execute
// once and the duplicates are served from the content-addressed cache.
func runParallel(paths []string, engineOverride string, workers, maxShards, top int) error {
	// MaxRecords unbounded: the batch holds every job ID and reads each
	// result exactly once, so no record may be evicted mid-batch.
	pool := jobs.NewPool(jobs.Options{Workers: workers, QueueDepth: len(paths), MaxRecords: -1, MaxShards: maxShards})
	defer pool.Close()

	ids := make([]string, len(paths))
	for i, path := range paths {
		b, err := loadBundle(path, engineOverride)
		if err != nil {
			return err
		}
		id, err := pool.Submit(b)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ids[i] = id
	}

	failed := 0
	for i, id := range ids {
		st, err := pool.Wait(id)
		if err != nil {
			return err
		}
		fmt.Printf("== %s (%s: %s", paths[i], id, st.State)
		if st.CacheHit {
			fmt.Printf(", cache hit")
		} else if st.Coalesced {
			fmt.Printf(", coalesced")
		} else {
			fmt.Printf(", queued %.1fms, ran %.1fms",
				float64(st.QueueWait.Microseconds())/1000, float64(st.RunTime.Microseconds())/1000)
		}
		fmt.Println(") ==")
		res, err := pool.Result(id)
		if err != nil {
			failed++
			fmt.Printf("  error: %v\n", err)
			continue
		}
		printResult(res, top)
	}

	s := pool.Stats()
	workerNoun := "workers"
	if s.Workers == 1 {
		workerNoun = "worker"
	}
	fmt.Printf("\nbatch: %d jobs on %d %s — %d done (%d cache hits), %d failed\n",
		s.Submitted, s.Workers, workerNoun, s.Completed, s.CacheHits, s.Failed)
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", failed, len(paths))
	}
	return nil
}

func printResult(res *result.Result, top int) {
	fmt.Printf("engine: %s\nsamples: %d\n", res.Engine, res.Samples)
	if fp, ok := res.Meta["intent_fingerprint"].(string); ok {
		fmt.Printf("intent: %s\n", fp[:16])
	}
	res.Sort()
	shown := 0
	for _, e := range res.Entries {
		if shown >= top {
			fmt.Printf("… %d more outcomes\n", len(res.Entries)-shown)
			break
		}
		if e.HasEnergy {
			fmt.Printf("  %s  count=%-6d energy=%+.3f\n", e.Bitstring, e.Count, e.Energy)
		} else {
			fmt.Printf("  %s  count=%-6d\n", e.Bitstring, e.Count)
		}
		shown++
	}
	for _, key := range []string{"transpile", "embedding", "comm", "qec", "pulse"} {
		if v, ok := res.Meta[key]; ok {
			fmt.Printf("%s: %+v\n", key, v)
		}
	}
}

// printProfile renders the kernel-granular execution profile attached by
// a -profile run (res.Meta["profile"]); silent when the result carries
// none (engines without a statevector plan, or -profile off).
func printProfile(res *result.Result) {
	p, ok := res.Meta["profile"].(*sim.Profile)
	if !ok || p == nil {
		return
	}
	fmt.Printf("\nprofile: %d kernels over %d shards, total %.3f ms\n",
		len(p.Kernels), p.Shards, float64(p.TotalNs)/1e6)
	fmt.Println("  idx  kind       support             ms   shard min/max ms   imbalance")
	for _, k := range p.Kernels {
		fmt.Printf("  %3d  %-9s  %#016x  %9.3f  %8.3f/%-8.3f  %9.2f\n",
			k.Index, k.Kind, k.Support, float64(k.Ns)/1e6,
			float64(k.ShardMinNs)/1e6, float64(k.ShardMaxNs)/1e6, k.Imbalance)
	}
}
