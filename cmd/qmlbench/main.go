// Command qmlbench regenerates every quantitative artifact of the paper's
// evaluation (and the claims embedded in its listings), one experiment per
// row of DESIGN.md's per-experiment index:
//
//	E1  §5 gate path: QAOA Max-Cut on the statevector engine
//	E2  §5 anneal path: Ising Max-Cut on the SA engine
//	E3  §5 claims: optimal strings 1010/0101, expected cut ≈ 3.0–3.2
//	E4  Listing 1: 10-qubit QFT, 10000 shots, uniform counts
//	E5  Listing 3: QFT cost hint twoq=45, depth≈100 vs realized circuit
//	E6  Listing 4: routing overhead under basis {sx,rz,cx} + linear map
//	E7  Listing 5: QEC overhead and logical error rate vs distance
//	E8  §4.3.1: distributed QFT teleportation/EPR accounting vs width
//	E9  §1/§3: context swaps leave intent artifacts byte-identical
//	E10 ablation: QAOA depth p and angle grid vs expected cut
//	E11 ablation: SA sweeps/schedule vs baselines (random/greedy/tabu)
//
// Usage: qmlbench [-exp E5] [-seed 42]   (default: run everything)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

var experiments = []struct {
	id   string
	desc string
	run  func(seed uint64) error
}{
	{"E1", "§5 gate path: QAOA Max-Cut", runE1},
	{"E2", "§5 anneal path: Ising Max-Cut", runE2},
	{"E3", "§5 claims: optimal strings + expected-cut band", runE3},
	{"E4", "Listing 1: 10-qubit QFT, 10000 shots", runE4},
	{"E5", "Listing 3: QFT cost hint vs realized circuit", runE5},
	{"E6", "Listing 4: routing overhead", runE6},
	{"E7", "Listing 5: QEC overhead vs distance", runE7},
	{"E8", "§4.3.1: distributed QFT communication volume", runE8},
	{"E9", "§1/§3: intent unchanged across contexts", runE9},
	{"E10", "ablation: QAOA depth sweep", runE10},
	{"E11", "ablation: annealer vs classical baselines", runE11},
	{"E12", "ablation: transpiler optimization levels", runE12},
	{"E13", "ablation: Grover success vs context noise", runE13},
}

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E11)")
	seed := flag.Uint64("seed", 42, "master seed")
	flag.Parse()
	ran := 0
	for _, e := range experiments {
		if *exp != "" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("==== %s — %s ====\n", e.id, e.desc)
		if err := e.run(*seed); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
