package algolib

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// NewQFT builds the Listing-3 operator: a QFT template over a register,
// with approximation degree (number of smallest-angle controlled-phase
// layers dropped), optional final wire-reversal swaps, and direction.
// The descriptor carries the device-independent cost hint the paper shows
// (≈45 two-qubit gates and depth near 100 for width 10).
func NewQFT(reg *qdt.DataType, approxDegree int, doSwaps, inverse bool) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if approxDegree < 0 || approxDegree >= reg.Width {
		return nil, fmt.Errorf("algolib: approx_degree %d out of [0,%d)", approxDegree, reg.Width)
	}
	op := newOp("QFT", qop.QFTTemplate, reg.ID)
	op.SetParam("approx_degree", approxDegree)
	op.SetParam("do_swaps", doSwaps)
	op.SetParam("inverse", inverse)
	hint := EstimateQFTCost(reg.Width, approxDegree, doSwaps)
	op.CostHint = &hint
	attachDefaultResult(op, reg)
	return op, nil
}

// EstimateQFTCost is the device-independent cost estimator for the QFT
// template. Two-qubit count is the controlled-phase count n(n−1)/2 minus
// the approximation-trimmed rotations (angles below π/2^approx are
// dropped); depth is estimated at n² gate layers, matching the Listing-3
// hint ("twoq": 45, "depth": 100 for n = 10, exact).
func EstimateQFTCost(n, approxDegree int, doSwaps bool) qop.CostHint {
	twoq := 0
	for i := 0; i < n; i++ {
		layers := i // controlled phases onto qubit i from lower qubits
		trimmed := layers - (n - 1 - approxDegree)
		if trimmed < 0 {
			trimmed = 0
		}
		kept := layers
		if approxDegree > 0 {
			kept = 0
			for j := 0; j < i; j++ {
				// CP(π/2^{i-j}) is kept when i-j <= n-1-approxDegree.
				if i-j <= n-1-approxDegree {
					kept++
				}
			}
		}
		twoq += kept
	}
	// Wire-reversal swaps are not counted: on most targets they realize
	// as free classical relabelling, and the Listing-3 hint ("twoq": 45
	// for n = 10 with do_swaps = true) counts only the controlled phases.
	_ = doSwaps
	return qop.CostHint{
		TwoQ:  twoq,
		OneQ:  n,
		Depth: n * n,
	}
}

// QFTCircuit realizes the QFT template over qubit indices [0, n) of a
// circuit (qubit i = register bit i, LSB_0). With doSwaps, the output
// matches the textbook QFT |x⟩ → (1/√N)Σ_k e^{2πi·xk/N}|k⟩ in the same
// bit ordering as the input.
func QFTCircuit(n, approxDegree int, doSwaps, inverse bool) (*circuit.Circuit, error) {
	if n < 1 {
		return nil, fmt.Errorf("algolib: QFT width %d < 1", n)
	}
	if approxDegree < 0 || approxDegree >= n {
		return nil, fmt.Errorf("algolib: approx_degree %d out of [0,%d)", approxDegree, n)
	}
	c := circuit.New(n, 0)
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			// CP(π/2^{i-j}) between qubit j (control) and i (target).
			if approxDegree > 0 && i-j > n-1-approxDegree {
				continue
			}
			c.CPhase(math.Pi/math.Pow(2, float64(i-j)), j, i)
		}
	}
	if doSwaps {
		for i := 0; i < n/2; i++ {
			c.Swap(i, n-1-i)
		}
	}
	if inverse {
		inv, err := c.Inverse()
		if err != nil {
			return nil, err
		}
		return inv, nil
	}
	return c, nil
}

// NewQPE builds a quantum phase estimation template: the counting
// register reads out an estimate of the oracle phase. The synthetic
// oracle U = P(2π·phase) acts on a one-qubit eigenstate register prepared
// in |1⟩ — the closest executable equivalent of the paper's "QPE
// scaffolding" library entry.
func NewQPE(counting *qdt.DataType, eigen *qdt.DataType, phase float64) (*qop.Operator, error) {
	if err := counting.Validate(); err != nil {
		return nil, err
	}
	if err := eigen.Validate(); err != nil {
		return nil, err
	}
	if eigen.Width != 1 {
		return nil, fmt.Errorf("algolib: QPE eigenstate register must have width 1, got %d", eigen.Width)
	}
	if phase < 0 || phase >= 1 {
		return nil, fmt.Errorf("algolib: QPE phase %v out of [0,1)", phase)
	}
	op := newOp("QPE", qop.QPETemplate, counting.ID)
	op.SetParam("phase", phase)
	op.SetParam("eigen_qdt", eigen.ID)
	n := counting.Width
	hint := EstimateQFTCost(n, 0, true)
	hint.TwoQ += n // controlled-oracle applications
	op.CostHint = &hint
	attachDefaultResult(op, counting)
	return op, nil
}

// NewPhaseKickback builds a controlled-phase kickback gadget: CP(angle)
// from control bit ctrlBit onto target bit tgtBit of the register.
func NewPhaseKickback(reg *qdt.DataType, ctrlBit, tgtBit int, angle float64) (*qop.Operator, error) {
	if ctrlBit < 0 || ctrlBit >= reg.Width || tgtBit < 0 || tgtBit >= reg.Width || ctrlBit == tgtBit {
		return nil, fmt.Errorf("algolib: kickback bits (%d,%d) invalid for width %d", ctrlBit, tgtBit, reg.Width)
	}
	op := newOp("phase_kickback", qop.PhaseKickback, reg.ID)
	op.SetParam("control", ctrlBit)
	op.SetParam("target", tgtBit)
	op.SetParam("angle", angle)
	op.CostHint = &qop.CostHint{TwoQ: 1, Depth: 1}
	return op, nil
}
