package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecoverMiddleware(t *testing.T) {
	var logBuf strings.Builder
	panics := NewRegistry().Counter("http_panics_total", "p")
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	mux.HandleFunc("/ok", func(w http.ResponseWriter, _ *http.Request) { w.Write([]byte("fine")) })
	srv := httptest.NewServer(Recover(mux, NewLogger("json", &logBuf), panics))
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/boom", nil)
	req.Header.Set(TraceHeader, "trace-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("panic tore down the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("500 body not error JSON: %v %+v", err, body)
	}
	if panics.Value() != 1 {
		t.Fatalf("panic counter = %d, want 1", panics.Value())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(logBuf.String()), &entry); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, logBuf.String())
	}
	if entry["trace"] != "trace-abc" {
		t.Fatalf("log entry missing trace ID: %v", entry)
	}
	if s, _ := entry["stack"].(string); !strings.Contains(s, "TestRecoverMiddleware") {
		t.Fatalf("log entry stack does not reach the panicking handler:\n%s", s)
	}

	// The server (and its middleware) stays serviceable afterwards.
	if got := httpGet(t, srv.URL+"/ok"); got != "fine" {
		t.Fatalf("post-panic request = %q", got)
	}
	if panics.Value() != 1 {
		t.Fatalf("ok request counted as panic")
	}
}

func TestRecoverPassesThroughAbortHandler(t *testing.T) {
	h := Recover(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}), Discard(), nil)
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatalf("ErrAbortHandler was swallowed")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestNewLoggerFormats(t *testing.T) {
	var buf strings.Builder
	NewLogger("json", &buf).Info("hello", "k", "v")
	if !strings.HasPrefix(strings.TrimSpace(buf.String()), "{") {
		t.Fatalf("json logger produced %q", buf.String())
	}
	buf.Reset()
	NewLogger("text", &buf).Info("hello", "k", "v")
	if !strings.Contains(buf.String(), "k=v") {
		t.Fatalf("text logger produced %q", buf.String())
	}
	Discard().Info("dropped")
}
