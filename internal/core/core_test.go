package core

import (
	"testing"

	"repro/internal/algolib"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
)

func TestProgramGateAndAnnealSameIntent(t *testing.T) {
	// The §5 portability demonstration through the facade: one typed
	// problem, two backends, only the operator formulation and the
	// context change.
	g := graph.Cycle(4)

	// Gate path.
	gateProg := NewProgram()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	if err := gateProg.AddRegister(reg); err != nil {
		t.Fatal(err)
	}
	seq, err := algolib.BuildQAOA(reg, g, []float64{0.65}, []float64{0.39})
	if err != nil {
		t.Fatal(err)
	}
	if err := gateProg.AppendSequence(seq); err != nil {
		t.Fatal(err)
	}
	gateCtx := ctxdesc.NewGate("gate.aer_simulator", 2048, 42)
	gateRes, err := gateProg.Run(gateCtx)
	if err != nil {
		t.Fatal(err)
	}
	if gateRes.Samples != 2048 || len(gateRes.Entries) == 0 {
		t.Errorf("gate result: %d samples, %d entries", gateRes.Samples, len(gateRes.Entries))
	}

	// Anneal path.
	annealProg := NewProgram()
	if err := annealProg.AddRegister(qdt.NewIsingVars("ising_vars", "s", 4)); err != nil {
		t.Fatal(err)
	}
	op, err := algolib.NewIsingProblem(annealProg.Registers()["ising_vars"], ising.FromMaxCut(g))
	if err != nil {
		t.Fatal(err)
	}
	if err := annealProg.Append(op); err != nil {
		t.Fatal(err)
	}
	annealRes, err := annealProg.Run(ctxdesc.NewAnneal("anneal.neal", 500, 42))
	if err != nil {
		t.Fatal(err)
	}
	top, err := annealRes.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Bitstring != "1010" && top.Bitstring != "0101" {
		t.Errorf("anneal top = %q", top.Bitstring)
	}
}

func TestProgramValidation(t *testing.T) {
	p := NewProgram()
	reg := qdt.NewIsingVars("r", "r", 2)
	if err := p.AddRegister(reg); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRegister(qdt.NewIsingVars("r", "dup", 2)); err == nil {
		t.Error("duplicate register accepted")
	}
	bad := qdt.New("", "", 0, "NOPE", "AS_JPEG")
	if err := p.AddRegister(bad); err == nil {
		t.Error("invalid register accepted")
	}
	if err := p.Append(nil); err == nil {
		t.Error("nil operator accepted")
	}
	if err := p.Append(&qop.Operator{}); err == nil {
		t.Error("invalid operator accepted")
	}
	// Operator on undeclared register fails at Validate/Package time.
	ghost := qop.New("x", qop.PrepUniform, "ghost")
	if err := p.Append(ghost); err != nil {
		t.Fatalf("structurally valid operator rejected early: %v", err)
	}
	if err := p.Validate(); err == nil {
		t.Error("dangling register not caught")
	}
	if _, err := p.Package(nil); err == nil {
		t.Error("Package accepted invalid program")
	}
}

func TestProgramPackageProducesValidBundle(t *testing.T) {
	p := NewProgram()
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 4)
	if err := p.AddRegister(reg); err != nil {
		t.Fatal(err)
	}
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(qft, algolib.NewMeasurement(reg)); err != nil {
		t.Fatal(err)
	}
	b, err := p.Package(ctxdesc.NewGate("gate.statevector", 64, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ValidateAgainstSchemas(); err != nil {
		t.Errorf("packaged bundle fails schemas: %v", err)
	}
	if b.Provenance == nil || b.Provenance.IntentFingerprint == "" {
		t.Error("bundle missing provenance")
	}
}
