package circuit

import (
	"fmt"
	"strings"
)

// ToQASM renders the circuit as an OpenQASM 2.0 program — the
// interoperability hook toward the assembly-language layer the paper's
// related work discusses (QASM 3.0, QIR). Native operations (permute,
// init, diagonal) have no QASM spelling and are rejected; transpile to a
// gate basis first.
func (c *Circuit) ToQASM() (string, error) {
	var sb strings.Builder
	sb.WriteString("OPENQASM 2.0;\n")
	sb.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&sb, "qreg q[%d];\n", c.NumQubits)
	if c.NumClbits > 0 {
		fmt.Fprintf(&sb, "creg c[%d];\n", c.NumClbits)
	}
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case OpGate:
			name, ok := qasmGateName[string(ins.Gate)]
			if !ok {
				return "", fmt.Errorf("circuit: gate %q has no QASM spelling", ins.Gate)
			}
			if len(ins.Params) > 0 {
				params := make([]string, len(ins.Params))
				for i, p := range ins.Params {
					params[i] = fmt.Sprintf("%.17g", p)
				}
				fmt.Fprintf(&sb, "%s(%s)", name, strings.Join(params, ","))
			} else {
				sb.WriteString(name)
			}
			operands := make([]string, len(ins.Qubits))
			for i, q := range ins.Qubits {
				operands[i] = fmt.Sprintf("q[%d]", q)
			}
			fmt.Fprintf(&sb, " %s;\n", strings.Join(operands, ","))
		case OpMeasure:
			for i, q := range ins.Qubits {
				fmt.Fprintf(&sb, "measure q[%d] -> c[%d];\n", q, ins.Clbits[i])
			}
		case OpBarrier:
			if len(ins.Qubits) == 0 {
				sb.WriteString("barrier q;\n")
			} else {
				operands := make([]string, len(ins.Qubits))
				for i, q := range ins.Qubits {
					operands[i] = fmt.Sprintf("q[%d]", q)
				}
				fmt.Fprintf(&sb, "barrier %s;\n", strings.Join(operands, ","))
			}
		default:
			return "", fmt.Errorf("circuit: instruction %d (opcode %d) has no QASM spelling; transpile to a gate basis first", idx, ins.Op)
		}
	}
	return sb.String(), nil
}

// qasmGateName maps internal gate names to qelib1 spellings. Most
// coincide; the controlled-phase differs (cp is cu1 in qelib1).
var qasmGateName = map[string]string{
	"id": "id", "x": "x", "y": "y", "z": "z", "h": "h",
	"s": "s", "sdg": "sdg", "t": "t", "tdg": "tdg", "sx": "sx",
	"rx": "rx", "ry": "ry", "rz": "rz", "p": "u1",
	"cx": "cx", "cz": "cz", "cp": "cu1", "swap": "swap",
	"ccx": "ccx", "cswap": "cswap",
}
