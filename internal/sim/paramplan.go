package sim

// Parametric compilation: compile a circuit whose rotation angles are
// symbolic ParamRefs once, then Bind(values) per parameter point.
//
// The determinism contract is exact: Bind(v) returns a plan whose
// kernel matrices — and therefore amplitudes and sampled counts — are
// bit-identical to Compile(c.BindValues(v)). It holds because the
// fusion scan records, alongside each in-place matrix mutation, a
// closure that replays the same float operations (gates.Mul2/Mul4,
// Kron2 inside expand2Q, diagonal row scaling) in the same order on the
// bound operand matrices. Fusion *decisions* (what folds with what,
// what commutes) are taken once at template-compile time under generic
// placeholder angles; the only value-dependent inputs to those
// decisions are the two numeric diag classifications (1Q leaf
// off-diagonal test, fuse2Q's isDiag4), and each symbolic occurrence of
// those records a bind-time check. A point whose bound matrices would
// classify differently — degenerate angles such as RX(0) — fails its
// check and transparently falls back to a full concrete compile for
// that point, trading speed for the unchanged contract.

import (
	"fmt"
	"sync/atomic"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// compileCount counts plan compilations process-wide: both concrete
// Compile calls and CompileParametric template compiles (and degenerate
// Bind fallbacks, which recompile concretely). Sweep tests stat-assert
// compile-once behavior against this counter.
var compileCount atomic.Uint64

// CompileCount returns the process-wide number of plan compilations.
func CompileCount() uint64 { return compileCount.Load() }

// paramRec is the recording sink a parametric compile threads through
// the fusion scan.
type paramRec struct {
	// placeholder holds the generic angles the template compiles under.
	// Their exact values never affect correctness — every numeric
	// classification made under them is re-validated per bind — only
	// how often the fast path applies, so they sit away from the
	// rotation family's degenerate points (multiples of π/2).
	placeholder []float64
	// checks re-run the template's numeric classifications against a
	// bind vector; false means the concrete compile of that point would
	// have diverged and Bind must fall back.
	checks []func(v []float64) bool
}

func (pr *paramRec) check1Q(reb func([]float64) gates.Matrix2, templDiag bool) {
	pr.checks = append(pr.checks, func(v []float64) bool {
		m := reb(v)
		return (m[0][1] == 0 && m[1][0] == 0) == templDiag
	})
}

func (pr *paramRec) check2Q(reb func([]float64) gates.Matrix4, templDiag bool) {
	pr.checks = append(pr.checks, func(v []float64) bool {
		return isDiag4(reb(v)) == templDiag
	})
}

func placeholderValues(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 0.6366197723675814 + 0.0536712345678911*float64(i)
	}
	return v
}

// boundParams resolves an instruction's parameter list under a bind
// vector: refs[i].Index >= 0 replaces params[i] with Scale*v[Index].
func boundParams(params []float64, refs []circuit.ParamRef, v []float64) []float64 {
	out := append([]float64(nil), params...)
	for i, r := range refs {
		if r.Index >= 0 {
			out[i] = r.Scale * v[r.Index]
		}
	}
	return out
}

// unitary1Rebuild returns the closure rebuilding a symbolic 1Q leaf's
// matrix from a bind vector.
func unitary1Rebuild(ins circuit.Instruction) func(v []float64) gates.Matrix2 {
	gate := ins.Gate
	params := append([]float64(nil), ins.Params...)
	refs := append([]circuit.ParamRef(nil), ins.Refs...)
	return func(v []float64) gates.Matrix2 {
		m, err := gates.Unitary1(gate, boundParams(params, refs, v))
		if err != nil {
			// The template compile already built this gate with the
			// same name and parameter count; Unitary1 cannot fail here.
			panic(fmt.Sprintf("sim: rebind %s: %v", gate, err))
		}
		return m
	}
}

// mul2Rebuild captures fuse1Q's same-qubit fold "t.m = Mul2(k.m, t.m)".
// Both kernels are passed by value before the in-place mutation, so the
// closure holds snapshots of the pre-fold matrices.
func mul2Rebuild(k, t kernel) func(v []float64) gates.Matrix2 {
	ka, ta := k.re1, t.re1
	km, tm := k.m, t.m
	return func(v []float64) gates.Matrix2 {
		a, b := km, tm
		if ka != nil {
			a = ka(v)
		}
		if ta != nil {
			b = ta(v)
		}
		return gates.Mul2(a, b)
	}
}

// fold1QRebuild captures fuse1Q's dense fold
// "t.m4 = Mul4(expand2Q(&k, t.q, t.q2), t.m4)" for a 1Q kernel k
// folding into the dense pair kernel t.
func fold1QRebuild(k, t kernel) func(v []float64) gates.Matrix4 {
	ka, ta := k.re1, t.re2
	kk := kernel{kind: kGate1Q, q: k.q, m: k.m}
	tm4 := t.m4
	q1, q2 := t.q, t.q2
	return func(v []float64) gates.Matrix4 {
		kb := kk
		if ka != nil {
			kb.m = ka(v)
		}
		b := tm4
		if ta != nil {
			b = ta(v)
		}
		return gates.Mul4(expand2Q(&kb, q1, q2), b)
	}
}

// fold2QRebuild captures one step of fuse2Q's accumulation
// "m = Mul4(m, expand2Q(t, qLo, qHi))": prev rebuilds the accumulated
// left factor (nil while it is still the concrete mAcc), and partner t
// — passed by value before its removal from the kernel list — is
// re-expanded from its bound matrices.
func fold2QRebuild(mAcc gates.Matrix4, prev func([]float64) gates.Matrix4, t kernel, qLo, qHi int) func(v []float64) gates.Matrix4 {
	tre1, tre2 := t.re1, t.re2
	return func(v []float64) gates.Matrix4 {
		a := mAcc
		if prev != nil {
			a = prev(v)
		}
		tb := t
		if tre1 != nil {
			tb.m = tre1(v)
		}
		if tre2 != nil {
			tb.m4 = tre2(v)
		}
		return gates.Mul4(a, expand2Q(&tb, qLo, qHi))
	}
}

// rowScaleRebuild captures fuseDiag's row scaling of a dense pair
// kernel by a concrete diagonal d.
func rowScaleRebuild(prev func(v []float64) gates.Matrix4, d [4]complex128) func(v []float64) gates.Matrix4 {
	return func(v []float64) gates.Matrix4 {
		m4 := prev(v)
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				m4[r][c] *= d[r]
			}
		}
		return m4
	}
}

// ParamPlan is a parametrically compiled circuit: the fusion structure,
// kernel order and structural stats are fixed once, and Bind derives
// the concrete plan for one parameter point by recomputing only the
// parameter-dependent kernel matrices (plus their split planes and
// monomial decompositions).
type ParamPlan struct {
	nParams int
	circ    *circuit.Circuit // symbolic source, for the fallback path
	tmpl    *Plan
	rec     *paramRec
	parIdx  []int // template kernel indices with rebuild closures

	binds     atomic.Uint64
	fallbacks atomic.Uint64
}

// CompileParametric compiles a circuit carrying symbolic ParamRefs into
// a reusable template. Symbolic references are supported on
// single-qubit gates (the rotation family the algolib lowerings emit);
// a symbolic reference anywhere else is an error — callers that can
// hold such circuits route those points through the concrete path.
func CompileParametric(c *circuit.Circuit) (*ParamPlan, error) {
	nParams := c.NumParams()
	if nParams == 0 {
		return nil, fmt.Errorf("sim: circuit has no symbolic parameters; use Compile")
	}
	for idx := range c.Instrs {
		ins := &c.Instrs[idx]
		if ins.Symbolic() && (ins.Op != circuit.OpGate || len(ins.Qubits) != 1) {
			return nil, fmt.Errorf("sim: instruction %d: symbolic parameters are only supported on single-qubit gates", idx)
		}
	}
	rec := &paramRec{placeholder: placeholderValues(nParams)}
	tmpl, err := compile(c, rec)
	if err != nil {
		return nil, err
	}
	pp := &ParamPlan{nParams: nParams, circ: c.Copy(), tmpl: tmpl, rec: rec}
	for i := range tmpl.kernels {
		if k := &tmpl.kernels[i]; k.re1 != nil || k.re2 != nil {
			pp.parIdx = append(pp.parIdx, i)
		}
	}
	return pp, nil
}

// NumParams returns the length Bind vectors must have.
func (pp *ParamPlan) NumParams() int { return pp.nParams }

// NumQubits returns the qubit count the template was compiled for.
func (pp *ParamPlan) NumQubits() int { return pp.tmpl.n }

// Stats returns the template's fusion statistics. All fields are
// bind-invariant except Monomial2Q, which each bound plan re-derives
// from its concrete matrices (exactly as a concrete compile would).
func (pp *ParamPlan) Stats() PlanStats { return pp.tmpl.stats }

// Binds returns how many Bind calls completed, and how many of those
// took the degenerate-point fallback (a full concrete recompile).
func (pp *ParamPlan) Binds() (binds, fallbacks uint64) {
	return pp.binds.Load(), pp.fallbacks.Load()
}

// Bind derives the concrete plan for one parameter point. The returned
// plan is bit-identical — kernel matrices, amplitudes, sampled counts —
// to Compile of the concretely bound circuit. Bind is safe for
// concurrent use; bound plans share the template's immutable concrete
// kernels.
func (pp *ParamPlan) Bind(values []float64) (*Plan, error) {
	if len(values) != pp.nParams {
		return nil, fmt.Errorf("sim: bind vector has %d values, plan takes %d", len(values), pp.nParams)
	}
	for _, chk := range pp.rec.checks {
		if !chk(values) {
			pp.binds.Add(1)
			pp.fallbacks.Add(1)
			bound, err := pp.circ.BindValues(values)
			if err != nil {
				return nil, err
			}
			return compile(bound, nil)
		}
	}
	out := &Plan{n: pp.tmpl.n, stats: pp.tmpl.stats}
	out.kernels = append([]kernel(nil), pp.tmpl.kernels...)
	for _, i := range pp.parIdx {
		k := &out.kernels[i]
		if k.re1 != nil {
			k.m = k.re1(values)
			k.ms = k.m.Split()
		}
		if k.re2 != nil {
			k.m4 = k.re2(values)
			// Re-finalize exactly as compile's finalize loop does: the
			// bound matrix decides monomial vs dense per point.
			if src, ph, ok := monomial4(k.m4); ok {
				if !k.mono {
					out.stats.Monomial2Q++
				}
				k.mono, k.msrc = true, src
				for r := 0; r < 4; r++ {
					k.mphRe[r], k.mphIm[r] = real(ph[r]), imag(ph[r])
				}
			} else {
				if k.mono {
					out.stats.Monomial2Q--
				}
				k.mono = false
				k.m4s = k.m4.Split()
			}
		}
	}
	pp.binds.Add(1)
	return out, nil
}
