package sim

// Fuse folds two kernel factors at compile time. plan.go is on the
// analyzer's allowlist: compilation runs once per circuit and splits
// its output into planes before any sweep, so complex arithmetic here
// is a deliberate non-finding.
func Fuse(a, b complex128) complex128 {
	return a * b
}
