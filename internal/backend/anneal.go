package backend

import (
	"fmt"

	"repro/internal/algolib"
	"repro/internal/anneal"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/embed"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
)

// Anneal is the simulated-annealing backend (D-Wave Ocean neal
// substitute). It consumes the paper's §5 anneal-path bundle: a single
// ISING_PROBLEM operator descriptor (an optional trailing MEASUREMENT is
// tolerated and used only for its result schema).
type Anneal struct {
	engine string
}

// Name implements Backend.
func (a *Anneal) Name() string { return a.engine }

// EmbeddingInfo is the meta record attached when minor embedding runs.
type EmbeddingInfo struct {
	Topology       string
	UnitCells      int
	PhysicalQubits int
	MaxChainLength int
	ChainStrength  float64
	BrokenChains   int // total broken chains observed across reads
}

// Execute realizes the Ising problem, optionally minor-embeds it onto a
// Chimera hardware graph per the anneal context, samples, unembeds, and
// decodes.
func (a *Anneal) Execute(b *bundle.Bundle) (*result.Result, error) {
	if err := b.Validate(qop.ValidateOptions{}); err != nil {
		return nil, err
	}
	var problem *qop.Operator
	for _, op := range b.Operators {
		switch op.RepKind {
		case qop.IsingProblem:
			if problem != nil {
				return nil, fmt.Errorf("backend: multiple ISING_PROBLEM descriptors")
			}
			problem = op
		case qop.Measurement:
			// Readout schema only; annealers measure implicitly at the
			// end of the anneal.
		default:
			return nil, fmt.Errorf("backend: anneal engine cannot realize rep_kind %q", op.RepKind)
		}
	}
	if problem == nil {
		return nil, fmt.Errorf("backend: anneal bundle contains no ISING_PROBLEM")
	}
	reg, err := b.QDT(problem.DomainQDT)
	if err != nil {
		return nil, err
	}
	model, err := algolib.IsingModelFromOp(problem, reg.Width)
	if err != nil {
		return nil, err
	}

	ctx := b.Context
	if ctx == nil {
		ctx = ctxdesc.New()
	}
	cfg := ctx.Anneal
	if cfg == nil {
		cfg = &ctxdesc.Anneal{NumReads: DefaultShots}
	}
	seed := uint64(0)
	if ctx.Exec != nil {
		seed = ctx.Exec.Seed
	}
	params := anneal.Params{
		NumReads: cfg.NumReads,
		Sweeps:   cfg.Sweeps,
		BetaMin:  cfg.BetaMin,
		BetaMax:  cfg.BetaMax,
		Schedule: cfg.Schedule,
		Seed:     seed,
	}

	meta := map[string]any{}
	logicalCounts := map[uint64]int{}

	if cfg.Embed {
		cells := cfg.UnitCells
		if cells == 0 {
			cells = 2
		}
		hw, err := embed.Chimera(cells)
		if err != nil {
			return nil, err
		}
		if hw.N > 63 {
			return nil, fmt.Errorf("backend: chimera C(%d) has %d qubits, beyond the 63-spin sampler limit", cells, hw.N)
		}
		emb, err := embed.Find(model, hw)
		if err != nil {
			return nil, err
		}
		strength := cfg.ChainStrength
		phys, err := emb.EmbedModel(model, strength)
		if err != nil {
			return nil, err
		}
		if strength == 0 {
			strength = 2*model.MaxAbsCoupling() + 1
		}
		sampled, err := anneal.SampleModel(phys, params)
		if err != nil {
			return nil, err
		}
		info := EmbeddingInfo{
			Topology:       "chimera",
			UnitCells:      cells,
			PhysicalQubits: emb.PhysicalQubits(),
			MaxChainLength: emb.MaxChainLength(),
			ChainStrength:  strength,
		}
		for _, s := range sampled.Samples {
			logical, broken := emb.Unembed(s.Mask)
			logicalCounts[logical] += s.Occurrences
			info.BrokenChains += broken * s.Occurrences
		}
		meta["embedding"] = info
	} else {
		sampled, err := anneal.SampleModel(model, params)
		if err != nil {
			return nil, err
		}
		for _, s := range sampled.Samples {
			logicalCounts[s.Mask] += s.Occurrences
		}
	}

	schema := problem.Result
	if m := b.Operators.FinalMeasurement(); m != nil && m.Result != nil {
		schema = m.Result
	}
	if schema == nil {
		schema = qop.DefaultResultSchema(reg.ID, reg.Width, string(reg.MeasurementSemantics), string(reg.BitOrder))
	}
	// The sampler's masks are register-indexed already: clbit i = spin i.
	entries, err := result.DecodeCounts(maskCountsToClbits(logicalCounts, schema, reg), schema, reg)
	if err != nil {
		return nil, err
	}
	for i := range entries {
		entries[i].Energy = model.EnergyBits(entries[i].Index)
		entries[i].HasEnergy = true
	}
	res := &result.Result{Engine: a.engine, Samples: cfg.NumReads, Entries: entries, Meta: meta}
	res.Sort()
	return res, nil
}

// maskCountsToClbits re-expresses register-bit-indexed masks in the
// schema's clbit indexing so DecodeCounts can apply its single decoding
// path.
func maskCountsToClbits(masks map[uint64]int, schema *qop.ResultSchema, reg *qdt.DataType) map[uint64]int {
	out := make(map[uint64]int, len(masks))
	for mask, n := range masks {
		var key uint64
		for cb, ref := range schema.ClbitOrder {
			_, bit, err := qop.ParseBitRef(ref)
			if err != nil {
				continue // schema validated downstream
			}
			if mask>>uint(bit)&1 == 1 {
				key |= 1 << uint(cb)
			}
		}
		out[key] += n
	}
	_ = reg
	return out
}
