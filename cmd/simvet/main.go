// Command simvet runs the repo-invariant analyzer suite (internal/lint)
// over the tree and fails on findings:
//
//	go run ./cmd/simvet ./...
//
// Patterns are package directories relative to the working directory,
// with /... for a recursive walk (testdata and vendor trees are skipped
// unless named explicitly). Findings print one per line as
//
//	file:line:col: analyzer: message
//
// and the exit status is 1 when any finding survives its package's
// //lint:ignore directives, 2 on a loading or type-checking failure.
// The -list flag prints the analyzer suite and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simvet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "simvet:", err)
		os.Exit(2)
	}
}

func run(patterns []string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		return err
	}
	// Patterns are cwd-relative on the command line; Load resolves
	// relative patterns against the module root, so absolutize first.
	abs := make([]string, len(patterns))
	for i, pat := range patterns {
		dir, rec := pat, ""
		if pat == "..." {
			dir, rec = ".", "/..."
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			dir, rec = rest, "/..."
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		abs[i] = dir + rec
	}
	pkgs, err := lint.Load(root, abs, lint.LoadOptions{})
	if err != nil {
		return err
	}
	diags := lint.Apply(pkgs, lint.All())
	for _, d := range diags {
		line := d.String()
		// Report paths relative to the invocation directory when they
		// shorten, matching go vet's output shape.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			line = rel + strings.TrimPrefix(line, d.Pos.Filename)
		}
		fmt.Println(line)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
