// Package pulse implements the pulse/control context service (paper
// §4.3.1): lowering a gate circuit to a timed pulse schedule with
// per-gate durations, ASAP scheduling across drive channels, and simple
// waveform synthesis — giving the middle layer a realization path whose
// cost metric is *duration*, the quantity the paper's §2 example notes is
// invisible without cost metadata.
package pulse

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/circuit"
	"repro/internal/ctxdesc"
)

// Default timing model, loosely shaped on superconducting-qubit stacks.
const (
	DefaultDTNanos       = 0.222 // sample period
	DefaultSingleGateNS  = 35.0
	DefaultTwoGateNS     = 300.0
	DefaultMeasureNS     = 1000.0
	DefaultVirtualZNanos = 0.0 // rz is a frame update: zero duration
)

// Config is the resolved pulse timing model.
type Config struct {
	DTNanos      float64
	SingleGateNS float64
	TwoGateNS    float64
	MeasureNS    float64
	Calibrations map[string]float64 // per-gate-name duration overrides
}

// FromContext resolves a Config from the context's pulse block (nil block
// = all defaults).
func FromContext(p *ctxdesc.Pulse) Config {
	cfg := Config{
		DTNanos:      DefaultDTNanos,
		SingleGateNS: DefaultSingleGateNS,
		TwoGateNS:    DefaultTwoGateNS,
		MeasureNS:    DefaultMeasureNS,
	}
	if p == nil {
		return cfg
	}
	if p.DTNanos > 0 {
		cfg.DTNanos = p.DTNanos
	}
	if p.SingleGateNS > 0 {
		cfg.SingleGateNS = p.SingleGateNS
	}
	if p.TwoGateNS > 0 {
		cfg.TwoGateNS = p.TwoGateNS
	}
	if len(p.Calibrations) > 0 {
		cfg.Calibrations = map[string]float64{}
		for k, v := range p.Calibrations {
			cfg.Calibrations[k] = v
		}
	}
	return cfg
}

// duration returns the gate's duration under the config.
func (cfg Config) duration(ins circuit.Instruction) (float64, error) {
	switch ins.Op {
	case circuit.OpMeasure:
		return cfg.MeasureNS, nil
	case circuit.OpBarrier:
		return 0, nil
	case circuit.OpGate:
		if d, ok := cfg.Calibrations[string(ins.Gate)]; ok {
			return d, nil
		}
		if ins.Gate == "rz" || ins.Gate == "p" || ins.Gate == "z" ||
			ins.Gate == "s" || ins.Gate == "sdg" || ins.Gate == "t" || ins.Gate == "tdg" {
			// Diagonal single-qubit gates realize as virtual-Z frame
			// updates: free.
			return DefaultVirtualZNanos, nil
		}
		switch len(ins.Qubits) {
		case 1:
			return cfg.SingleGateNS, nil
		case 2:
			return cfg.TwoGateNS, nil
		default:
			return 0, fmt.Errorf("pulse: %d-qubit gate %q has no pulse realization; decompose first", len(ins.Qubits), ins.Gate)
		}
	}
	return 0, fmt.Errorf("pulse: opcode %d has no pulse realization", ins.Op)
}

// Op is one scheduled pulse.
type Op struct {
	Label      string
	Qubits     []int
	StartNS    float64
	DurationNS float64
}

// Schedule is a timed pulse program.
type Schedule struct {
	Ops             []Op
	TotalDurationNS float64
	PerQubitBusyNS  []float64
}

// Lower converts a circuit to a pulse schedule with ASAP scheduling: each
// op starts when all its qubits are free; barriers synchronize.
func Lower(c *circuit.Circuit, cfg Config) (*Schedule, error) {
	free := make([]float64, c.NumQubits)
	busy := make([]float64, c.NumQubits)
	sched := &Schedule{PerQubitBusyNS: busy}
	for idx, ins := range c.Instrs {
		dur, err := cfg.duration(ins)
		if err != nil {
			return nil, fmt.Errorf("pulse: instruction %d: %w", idx, err)
		}
		qubits := ins.Qubits
		if ins.Op == circuit.OpBarrier && len(qubits) == 0 {
			qubits = make([]int, c.NumQubits)
			for i := range qubits {
				qubits[i] = i
			}
		}
		start := 0.0
		for _, q := range qubits {
			if free[q] > start {
				start = free[q]
			}
		}
		end := start + dur
		for _, q := range qubits {
			free[q] = end
			if ins.Op != circuit.OpBarrier {
				busy[q] += dur
			}
		}
		if ins.Op != circuit.OpBarrier && dur >= 0 {
			label := string(ins.Gate)
			if ins.Op == circuit.OpMeasure {
				label = "measure"
			}
			sched.Ops = append(sched.Ops, Op{Label: label, Qubits: append([]int(nil), qubits...), StartNS: start, DurationNS: dur})
		}
		if end > sched.TotalDurationNS {
			sched.TotalDurationNS = end
		}
	}
	return sched, nil
}

// Waveform synthesizes drive-envelope samples for an op: a Gaussian for
// single-qubit pulses, a flat-top Gaussian-square for two-qubit pulses.
// Amplitude is normalized to 1; the sample period comes from the config.
func Waveform(op Op, cfg Config) []float64 {
	n := int(math.Ceil(op.DurationNS / cfg.DTNanos))
	if n <= 0 {
		return nil
	}
	samples := make([]float64, n)
	switch len(op.Qubits) {
	case 1:
		// Gaussian centred at n/2 with σ = n/6.
		sigma := float64(n) / 6
		mid := float64(n-1) / 2
		for i := range samples {
			d := (float64(i) - mid) / sigma
			samples[i] = math.Exp(-d * d / 2)
		}
	default:
		// Gaussian-square: σ = n/10 edges, flat top.
		rise := n / 5
		if rise < 1 {
			rise = 1
		}
		sigma := float64(rise) / 2
		for i := range samples {
			switch {
			case i < rise:
				d := float64(i-rise) / sigma
				samples[i] = math.Exp(-d * d / 2)
			case i >= n-rise:
				d := float64(i-(n-rise-1)) / sigma
				samples[i] = math.Exp(-d * d / 2)
			default:
				samples[i] = 1
			}
		}
	}
	return samples
}

// CriticalPath returns the ops on the schedule's longest time chain,
// useful for duration-oriented cost reporting.
func (s *Schedule) CriticalPath() []Op {
	if len(s.Ops) == 0 {
		return nil
	}
	// Walk backward from the op that ends last, following the
	// latest-ending predecessor sharing a qubit. Predecessors are earlier
	// in the time-sorted order (strictly, so chains of zero-duration
	// virtual-Z ops at the same instant cannot cycle).
	ops := append([]Op(nil), s.Ops...)
	sort.SliceStable(ops, func(i, j int) bool {
		return ops[i].StartNS+ops[i].DurationNS < ops[j].StartNS+ops[j].DurationNS
	})
	curIdx := len(ops) - 1
	path := []Op{ops[curIdx]}
	for {
		cur := ops[curIdx]
		prevIdx := -1
		for i := 0; i < curIdx; i++ {
			o := ops[i]
			if o.StartNS+o.DurationNS > cur.StartNS+1e-9 {
				continue
			}
			if !sharesQubit(o, cur) {
				continue
			}
			if prevIdx < 0 || o.StartNS+o.DurationNS >= ops[prevIdx].StartNS+ops[prevIdx].DurationNS {
				prevIdx = i
			}
		}
		if prevIdx < 0 {
			break
		}
		path = append(path, ops[prevIdx])
		curIdx = prevIdx
	}
	// Reverse into time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func sharesQubit(a, b Op) bool {
	for _, q := range a.Qubits {
		for _, p := range b.Qubits {
			if q == p {
				return true
			}
		}
	}
	return false
}
