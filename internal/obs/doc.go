// Package obs is the middle layer's observability subsystem: a
// dependency-free metrics registry with Prometheus text exposition, job
// trace IDs and span logs, structured-logging helpers, and the HTTP
// middleware the serving layer wraps around every handler.
//
// # Metrics
//
// A Registry holds named instruments — monotonic Counters, settable
// Gauges, gauges computed at scrape time (GaugeFunc), and fixed-bucket
// latency Histograms — and renders them in the Prometheus text
// exposition format (version 0.0.4) via WriteText or the Handler an
// HTTP server mounts on GET /metrics. Instrument lookups are
// get-or-create: asking twice for the same name (and label set) returns
// the same instrument, so independent subsystems sharing one registry
// cannot double-register. All instruments are lock-free on the hot path
// (atomic increments and observes, a few nanoseconds each — see the
// package benchmarks) and safe for concurrent use.
//
// Naming conventions, followed throughout the repo:
//
//   - snake_case metric names prefixed by their subsystem: jobs_ (worker
//     pool), store_ (journal + result files), fleet_ (dispatcher), sim_
//     (statevector engine), go_ (runtime), http_ (serving middleware).
//   - Counters end in _total; durations are histograms in seconds ending
//     in _seconds; sizes end in _bytes.
//   - build_info is a constant 1-valued gauge whose labels (go_version,
//     revision) identify the binary — fleet operators diff it across
//     workers to spot mixed-version fleets.
//
// The conventions are enforced mechanically: the obsconv analyzer in
// internal/lint (run by cmd/simvet in CI) flags non-snake_case names,
// counters missing _total (and non-counters claiming it or the
// histogram-owned _count/_sum/_bucket suffixes), duplicate
// registrations within one construction, and same-name registrations
// under two instrument kinds — the clash this registry would otherwise
// only catch by panicking at runtime.
//
// Histograms use DefBuckets by default: exponential latency bounds from
// 10µs to 10s, chosen so both journal fsyncs (~100µs–10ms) and
// 20-qubit statevector executions (~100ms–10s) land mid-range.
// Quantiles (p50/p90/p99) are derivable from any histogram via
// Histogram.Quantile, which interpolates linearly inside the owning
// bucket — the same estimate Prometheus' histogram_quantile computes
// server-side.
//
// RegisterRuntime adds Go runtime gauges (goroutines, heap and total
// memory, GC cycles and pause p99) sourced from runtime/metrics and
// refreshed at scrape time; RegisterBuildInfo adds the build_info
// gauge from debug.ReadBuildInfo.
//
// ParseExposition is the strict counterpart to WriteText: a
// line-format parser over a scraped /metrics body that validates metric
// and label grammar, TYPE declarations, and histogram invariants
// (ascending le bounds, monotonic cumulative counts, +Inf == _count).
// The process-level acceptance tests scrape real servers through it.
//
// # Tracing
//
// Every job carries a trace ID across the fleet. The contract:
//
//   - POST /v1/jobs accepts an inbound X-Trace-Id header (1–128 chars of
//     [A-Za-z0-9._-]); absent or invalid, the server generates a random
//     16-byte hex ID. The accepted ID is echoed in the response header
//     and the submit/status documents ("trace_id").
//   - The fleet dispatcher forwards the same header with the job to its
//     worker, records the ID in every journal event and job record, and
//     both dispatcher and worker log it on every lifecycle transition —
//     one grep for the ID reconstructs the job's fleet-wide life.
//   - Each job accumulates a span log (queued, assigned, started,
//     transpile/compile/execute/sample stage timings, persisted, done)
//     with monotonic timestamps, surfaced in GET /v1/jobs/{id}.
//
// # Profiling
//
// qmlserve -debug-addr brings up a second listener serving
// net/http/pprof under /debug/pprof/ plus a /metrics alias, so CPU and
// heap profiles never contend with (or get rate-limited by) production
// traffic:
//
//	qmlserve -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=30
//	curl -s http://127.0.0.1:6060/debug/pprof/goroutine?debug=2
package obs
