package store

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/result"
)

// resultPath maps a content address ("sha256:<hex>") to its file. The hex
// digest is validated so a hostile key cannot escape the results
// directory.
func (s *Store) resultPath(key string) (string, error) {
	digest, ok := strings.CutPrefix(key, "sha256:")
	if !ok || digest == "" {
		return "", fmt.Errorf("store: result key %q lacks sha256: prefix", key)
	}
	if _, err := hex.DecodeString(digest); err != nil {
		return "", fmt.Errorf("store: result key %q is not hex", key)
	}
	return filepath.Join(s.dir, "results", digest+".json"), nil
}

// PutResult writes the result under its content address via temp file +
// atomic rename (fsynced unless SyncNone). Writing the same key twice is
// idempotent. It deliberately runs without s.mu: everything it touches
// is immutable (s.dir, s.opts) or atomic (s.met), concurrent writers of
// the same key race benignly (identical content, atomic rename), and
// holding the store lock across a file write + fsync would stall every
// journal append behind the result fsync.
func (s *Store) PutResult(key string, res *result.Result) error {
	path, err := s.resultPath(key)
	if err != nil {
		s.met.errors.Inc()
		return err
	}
	raw, err := json.Marshal(res)
	if err != nil {
		s.met.errors.Inc()
		return fmt.Errorf("store: result %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "result-*.tmp")
	if err != nil {
		s.met.errors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		s.met.errors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Sync != SyncNone {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			s.met.errors.Inc()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		s.met.errors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		s.met.errors.Inc()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Sync != SyncNone {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// GetResult loads a result by content address; ok=false when no file
// exists for the key.
func (s *Store) GetResult(key string) (*result.Result, bool, error) {
	path, err := s.resultPath(key)
	if err != nil {
		return nil, false, err
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	var res result.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, false, fmt.Errorf("store: result %s: %w", key, err)
	}
	return &res, true, nil
}

// HasResult reports whether a result file exists for the key.
func (s *Store) HasResult(key string) bool {
	path, err := s.resultPath(key)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// RecentResultKeys returns up to n result content addresses ordered
// oldest→newest by file modification time, the order the pool feeds its
// LRU on boot so the most recent result ends up most-recently-used
// (n <= 0: all).
func (s *Store) RecentResultKeys(n int) []string {
	type entry struct {
		key string
		mod int64
	}
	var entries []entry
	for _, de := range s.resultDirEntries() {
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, entry{"sha256:" + strings.TrimSuffix(de.Name(), ".json"), info.ModTime().UnixNano()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod < entries[j].mod })
	if n > 0 && len(entries) > n {
		entries = entries[len(entries)-n:]
	}
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.key
	}
	return keys
}

func (s *Store) resultDirEntries() []os.DirEntry {
	des, err := os.ReadDir(filepath.Join(s.dir, "results"))
	if err != nil {
		return nil
	}
	out := des[:0]
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ".json") {
			out = append(out, de)
		}
	}
	return out
}

func (s *Store) countResults() int { return len(s.resultDirEntries()) }

// gcResults deletes unreferenced result files beyond Options.MaxResults,
// oldest first. Files referenced by a live record are always kept.
func (s *Store) gcResults() {
	if s.opts.MaxResults < 0 {
		return
	}
	referenced := map[string]bool{}
	for _, r := range s.records {
		if r.ResultKey != "" {
			referenced[r.ResultKey] = true
		}
		if r.Key != "" {
			referenced[r.Key] = true
		}
		// A done sweep record references every per-point result file.
		for _, k := range r.Results {
			referenced[k] = true
		}
	}
	keys := s.RecentResultKeys(0) // oldest first
	excess := len(keys) - s.opts.MaxResults
	for _, key := range keys {
		if excess <= 0 {
			break
		}
		if referenced[key] {
			continue
		}
		if path, err := s.resultPath(key); err == nil && os.Remove(path) == nil {
			excess--
		}
	}
}
