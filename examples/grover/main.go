// Grover search on the middle layer: a phase oracle and diffusion
// operator from the amplitude-amplification family of the algorithmic
// libraries, measured through a typed register — then the *same intent*
// re-run under a noisy execution context (exec.options.noise), showing
// policy-side noise injection without touching a single operator
// descriptor.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/result"
	"repro/internal/runtime"
)

func main() {
	const marked = 11 // search for |1011⟩ among 16 states
	reg := qdt.New("search", "x", 4, qdt.IntRegister, qdt.AsInt)
	seq, err := algolib.BuildGrover(reg, []uint64{marked}, 0 /* optimal iterations */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Grover search over 16 states for |%d⟩: %d oracle+diffusion rounds\n",
		marked, (len(seq)-2)/2)

	clean := ctxdesc.NewGate("gate.statevector", 4096, 42)
	b, err := bundle.New([]*qdt.DataType{reg}, seq, clean)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("noiseless", res.Entries, marked, res.Samples)

	// Same intent, noisy context. Only the policy artifact changes.
	noisy := clean.Clone()
	noisy.Exec.Options = map[string]any{
		"noise": map[string]any{"prob_1q": 0.002, "prob_2q": 0.01, "readout_flip": 0.01},
	}
	noisyRes, err := runtime.Submit(b.WithContext(noisy), runtime.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("noisy   ", noisyRes.Entries, marked, noisyRes.Samples)

	fpA, _ := b.Fingerprint()
	fpB, _ := b.WithContext(noisy).Fingerprint()
	fmt.Printf("\nintent fingerprints identical across contexts: %v (%s…)\n", fpA == fpB, fpA[:12])
}

func report(label string, entries []result.Entry, marked uint64, samples int) {
	hit := 0
	for _, e := range entries {
		if e.Index == marked {
			hit = e.Count
		}
	}
	fmt.Printf("%s: P(marked) = %.3f over %d shots\n", label, float64(hit)/float64(samples), samples)
}
