package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"repro/internal/gates"
)

// parallelThreshold is the sweep size above which one-shot gate sweeps and
// reductions fan out to worker goroutines. Below it, goroutine overhead
// dominates.
const parallelThreshold = 1 << 13

// MaxQubits bounds state allocation (2^26 amplitudes = 1 GiB).
const MaxQubits = 26

// planes bundles the two amplitude planes of the structure-of-arrays
// layout: amplitude k is complex(re[k], im[k]). Splitting the planes lets
// every hot sweep run as straight-line float64 arithmetic over two
// contiguous streams — the form the compiler turns into much tighter code
// than []complex128 streaming — while Amplitude/Probability stay the
// external contract.
type planes struct {
	re, im []float64
}

// State is an n-qubit statevector. Qubit 0 is the least significant bit of
// the basis index: |q_{n-1} … q_1 q_0⟩ ↔ index Σ q_i 2^i. Amplitudes are
// stored as split real/imaginary planes (structure of arrays), each
// 64-byte aligned; see the package doc's amplitude-layout section.
type State struct {
	n int
	// re and im are the split amplitude planes, each of length 2^n and
	// cache-line aligned via alignedFloats.
	re, im []float64
	// scratch is the state-owned staging buffer ApplyPermute, ApplyInit
	// and the corresponding plan kernels reuse instead of allocating a
	// full 2^n copy per call. Lazily allocated.
	scratch planes
	// noParallel pins every sweep and reduction on this state to the
	// caller's goroutine. The trajectory engine sets it on states owned by
	// its shot workers: with W workers each fanning a gate sweep out to
	// GOMAXPROCS goroutines, a single RunNoisy would otherwise run
	// W×GOMAXPROCS sweep goroutines at once.
	noParallel bool
}

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) (*State, error) {
	s, err := newStateUninit(n)
	if err != nil {
		return nil, err
	}
	s.re[0] = 1
	return s, nil
}

// newStateUninit allocates the aligned planes without setting any
// amplitude. The planes are logically zero (Go allocation guarantees it)
// but their pages may be untouched; newStateOn first-touches them on the
// shard workers.
func newStateUninit(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", n, MaxQubits)
	}
	dim := 1 << uint(n)
	return &State{n: n, re: alignedFloats(dim), im: alignedFloats(dim)}, nil
}

// newStateOn returns |0…0⟩ with both amplitude planes first-touched on the
// pool's workers: each worker writes (zeroes) exactly the contiguous shard
// range it will sweep for the rest of the execution, so on NUMA systems
// with first-touch page placement every shard's pages land on the memory
// node of the core that streams them. Best-effort by construction — the Go
// allocator may hand back an already-touched span, whose pages keep their
// prior placement — but fresh large slabs come straight from the OS
// untouched, which is exactly the 2^n-amplitude case that matters.
func newStateOn(n int, pool *shardPool) (*State, error) {
	s, err := newStateUninit(n)
	if err != nil {
		return nil, err
	}
	re, im := s.re, s.im
	pool.do(len(re), func(_, lo, hi int) {
		clear(re[lo:hi])
		clear(im[lo:hi])
	})
	s.re[0] = 1
	return s, nil
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Dim returns 2^n.
func (s *State) Dim() int { return len(s.re) }

// Amplitude returns the amplitude of basis state k.
func (s *State) Amplitude(k uint64) complex128 {
	return complex(s.re[k], s.im[k])
}

// Probability returns |amp_k|².
func (s *State) Probability(k uint64) float64 {
	return s.re[k]*s.re[k] + s.im[k]*s.im[k]
}

// Norm returns Σ|amp|², which must stay 1 under unitary evolution. The
// reduction parallelizes over shards for large states.
func (s *State) Norm() float64 {
	re, im := s.re, s.im
	return s.psum(len(re), func(lo, hi int) float64 {
		total := 0.0
		rr, ii := re[lo:hi], im[lo:hi:hi]
		for k := range rr {
			total += rr[k]*rr[k] + ii[k]*ii[k]
		}
		return total
	})
}

// Clone returns a deep copy (without the scratch buffer). The serial-sweep
// pin carries over: a clone made by a trajectory shot worker must not
// regain nested sweep parallelism, or W workers would again fan out
// W×GOMAXPROCS sweep goroutines.
func (s *State) Clone() *State {
	cp := &State{
		n:          s.n,
		re:         alignedFloats(len(s.re)),
		im:         alignedFloats(len(s.im)),
		noParallel: s.noParallel,
	}
	copy(cp.re, s.re)
	copy(cp.im, s.im)
	return cp
}

// scratchPlanes returns the lazily allocated full-size staging planes.
func (s *State) scratchPlanes() planes {
	if s.scratch.re == nil {
		s.scratch = planes{re: alignedFloats(len(s.re)), im: alignedFloats(len(s.im))}
	}
	return s.scratch
}

// pfor runs body over [0, n), fanning out for large sweeps unless the
// state is pinned serial (trajectory shot workers).
func (s *State) pfor(n int, body func(lo, hi int)) {
	if s.noParallel {
		body(0, n)
		return
	}
	parallelFor(n, body)
}

// psum is the reduction counterpart of pfor.
func (s *State) psum(n int, f func(lo, hi int) float64) float64 {
	if s.noParallel {
		return f(0, n)
	}
	return parallelSum(n, f)
}

// parallelFor splits [0, n) across workers when n is large. It is the
// one-shot fork-join used by the direct State methods; plan execution uses
// the persistent shard pool instead.
func parallelFor(n int, body func(lo, hi int)) {
	if n < parallelThreshold {
		body(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardRange(n, workers, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Apply1 applies a one-qubit unitary to qubit q, iterating the 2^(n-1)
// amplitude pairs directly.
func (s *State) Apply1(m gates.Matrix2, q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("sim: qubit %d out of [0,%d)", q, s.n)
	}
	stride := 1 << uint(q)
	ms := m.Split()
	re, im := s.re, s.im
	s.pfor(len(re)/2, func(lo, hi int) {
		sweep1QAuto(re, im, &ms, stride, lo, hi)
	})
	return nil
}

// Apply2 applies a two-qubit unitary to the pair (q0, q1): local basis bit
// 0 is q0's value and bit 1 is q1's. It is the direct-path counterpart of
// the plan's dense 4×4 kernel, sweeping the 2^(n-2) amplitude quadruples.
func (s *State) Apply2(m gates.Matrix4, q0, q1 int) error {
	if err := s.checkDistinct(q0, q1); err != nil {
		return err
	}
	if q0 > q1 {
		// Reorder to ascending qubit positions by conjugating with SWAP:
		// permute local indices 1 and 2 in both rows and columns.
		perm := [4]int{0, 2, 1, 3}
		var sm gates.Matrix4
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				sm[i][j] = m[perm[i]][perm[j]]
			}
		}
		m = sm
		q0, q1 = q1, q0
	}
	maskLo, maskHi := 1<<q0, 1<<q1
	ms := m.Split()
	re, im := s.re, s.im
	s.pfor(len(re)/4, func(lo, hi int) {
		sweep2QAuto(re, im, &ms, maskLo, maskHi, lo, hi)
	})
	return nil
}

// applyCtrlPerm sweeps the subspace pair exchange shared by CX, SWAP, CCX
// and CSWAP: ones lists bits constrained to 1, zeros bits constrained to
// 0, flip exchanges the amplitude pair.
func (s *State) applyCtrlPerm(ones, zeros []int, flip int) error {
	if err := s.checkDistinct(append(append([]int(nil), ones...), zeros...)...); err != nil {
		return err
	}
	inserts := makeInserts(ones, zeros)
	re, im := s.re, s.im
	s.pfor(len(re)>>len(inserts), func(lo, hi int) {
		sweepCtrlPerm(re, im, inserts, flip, lo, hi)
	})
	return nil
}

// ApplyCX applies a controlled-X with the given control and target.
func (s *State) ApplyCX(ctrl, tgt int) error {
	return s.applyCtrlPerm([]int{ctrl}, []int{tgt}, 1<<tgt)
}

// ApplyCZ applies a controlled-Z.
func (s *State) ApplyCZ(a1, a2 int) error {
	return s.applyCtrlPhase([]int{a1, a2}, -1)
}

// ApplyCP applies a controlled phase of angle lambda.
func (s *State) ApplyCP(lambda float64, a1, a2 int) error {
	return s.applyCtrlPhase([]int{a1, a2}, cmplx.Exp(complex(0, lambda)))
}

// applyCtrlPhase multiplies ph onto the subspace with every listed qubit
// set, visiting only those 2^(n-k) amplitudes.
func (s *State) applyCtrlPhase(qubits []int, ph complex128) error {
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	inserts := makeInserts(qubits, nil)
	re, im := s.re, s.im
	s.pfor(len(re)>>len(inserts), func(lo, hi int) {
		sweepCtrlPhase(re, im, inserts, real(ph), imag(ph), lo, hi)
	})
	return nil
}

// ApplySwap swaps two qubits.
func (s *State) ApplySwap(q1, q2 int) error {
	return s.applyCtrlPerm([]int{q1}, []int{q2}, 1<<q1|1<<q2)
}

// ApplyCCX applies a Toffoli gate.
func (s *State) ApplyCCX(c1, c2, tgt int) error {
	return s.applyCtrlPerm([]int{c1, c2}, []int{tgt}, 1<<tgt)
}

// ApplyCSwap applies a Fredkin gate.
func (s *State) ApplyCSwap(ctrl, q1, q2 int) error {
	return s.applyCtrlPerm([]int{ctrl, q1}, []int{q2}, 1<<q1|1<<q2)
}

// ApplyPermute applies a basis-state permutation over the listed qubits:
// local index ℓ (bit k of ℓ = value of qubits[k]) maps to perm[ℓ]. The
// staging copy lives in the state-owned scratch buffer, reused across
// calls.
func (s *State) ApplyPermute(qubits []int, perm []uint64) error {
	nq := len(qubits)
	if len(perm) != 1<<uint(nq) {
		return fmt.Errorf("sim: permutation table size %d != 2^%d", len(perm), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	src := s.scratchPlanes()
	re, im := s.re, s.im
	masks := qubitMasks(qubits)
	s.pfor(len(re), func(lo, hi int) {
		copy(src.re[lo:hi], re[lo:hi])
		copy(src.im[lo:hi], im[lo:hi])
	})
	s.pfor(len(re), func(lo, hi int) {
		sweepPermute(re, im, src.re, src.im, masks, perm, lo, hi)
	})
	return nil
}

// ApplyInit initializes the listed qubits to the given local state. The
// listed qubits must currently be in |0…0⟩ (i.e. every amplitude with any
// of those bits set must vanish); this keeps initialization unitary-free
// but well-defined mid-circuit.
func (s *State) ApplyInit(qubits []int, amps []complex128) error {
	nq := len(qubits)
	if len(amps) != 1<<uint(nq) {
		return fmt.Errorf("sim: init state size %d != 2^%d", len(amps), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	norm := 0.0
	for _, a := range amps {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		return fmt.Errorf("sim: init state not normalized (norm² = %v)", norm)
	}
	masks := qubitMasks(qubits)
	anyMask := qubitMask(qubits)
	for i := range s.re {
		if i&anyMask != 0 && cmplx.Abs(s.Amplitude(uint64(i))) > 1e-12 {
			return fmt.Errorf("sim: init target qubits not in |0…0⟩ (amplitude at %d)", i)
		}
	}
	ampRe, ampIm := splitComplexSlice(amps)
	src := s.scratchPlanes()
	re, im := s.re, s.im
	s.pfor(len(re), func(lo, hi int) {
		copy(src.re[lo:hi], re[lo:hi])
		copy(src.im[lo:hi], im[lo:hi])
	})
	s.pfor(len(re), func(lo, hi int) {
		sweepInit(re, im, src.re, src.im, masks, anyMask, ampRe, ampIm, lo, hi)
	})
	return nil
}

// ApplyDiagonal multiplies each amplitude by the phase selected by the
// local index over the listed qubits (indexing as in ApplyPermute).
func (s *State) ApplyDiagonal(qubits []int, phases []complex128) error {
	nq := len(qubits)
	if len(phases) != 1<<uint(nq) {
		return fmt.Errorf("sim: diagonal table size %d != 2^%d", len(phases), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	masks := qubitMasks(qubits)
	phRe, phIm := splitComplexSlice(phases)
	re, im := s.re, s.im
	s.pfor(len(re), func(lo, hi int) {
		sweepDiag(re, im, masks, phRe, phIm, lo, hi)
	})
	return nil
}

// splitComplexSlice decomposes a complex table into its real and
// imaginary planes (the compile-time form the sweep kernels consume).
func splitComplexSlice(vs []complex128) (re, im []float64) {
	re = alignedFloats(len(vs))
	im = alignedFloats(len(vs))
	for i, v := range vs {
		re[i], im[i] = real(v), imag(v)
	}
	return re, im
}

func (s *State) checkDistinct(qs ...int) error {
	for i, q := range qs {
		if q < 0 || q >= s.n {
			return fmt.Errorf("sim: qubit %d out of [0,%d)", q, s.n)
		}
		for j := 0; j < i; j++ {
			if qs[j] == q {
				return fmt.Errorf("sim: duplicate qubit %d", q)
			}
		}
	}
	return nil
}

// ExpectationDiagonal returns Σ_k |amp_k|² f(k) for a diagonal observable
// f over basis indices — the QAOA expected-cut evaluator. The reduction
// parallelizes over shards for large states, so f must be safe for
// concurrent calls.
func (s *State) ExpectationDiagonal(f func(uint64) float64) float64 {
	re, im := s.re, s.im
	return s.psum(len(re), func(lo, hi int) float64 {
		total := 0.0
		for k := lo; k < hi; k++ {
			p := re[k]*re[k] + im[k]*im[k]
			if p > 0 {
				total += p * f(uint64(k))
			}
		}
		return total
	})
}

// Probabilities returns the full Born distribution. The slice is freshly
// allocated.
func (s *State) Probabilities() []float64 {
	re, im := s.re, s.im
	ps := make([]float64, len(re))
	s.pfor(len(re), func(lo, hi int) {
		rr, ii := re[lo:hi], im[lo:hi:hi]
		out := ps[lo:hi:hi]
		for i := range rr {
			out[i] = rr[i]*rr[i] + ii[i]*ii[i]
		}
	})
	return ps
}
