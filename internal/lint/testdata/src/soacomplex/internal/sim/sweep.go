// Package sim is a soacomplex fixture mirroring the simulation core's
// package-path suffix.
package sim

// SweepComplex does interleaved complex arithmetic in sweep code.
func SweepComplex(amps []complex128, k complex128) {
	for i := range amps {
		amps[i] = amps[i] * k // want `soacomplex: complex arithmetic \(\*\)`
	}
}

// AccumulateComplex compound-assigns on a complex accumulator.
func AccumulateComplex(amps []complex128) complex128 {
	var acc complex128
	for i := range amps {
		acc += amps[i] // want `soacomplex: complex compound assignment \(\+=\)`
	}
	return acc
}

// AllocComplex allocates an interleaved buffer.
func AllocComplex(n int) []complex128 {
	return make([]complex128, n) // want `soacomplex: \[\]complex allocation`
}

// SweepSoA is the near-miss: the split real/imag plane form the
// contract wants; all-float arithmetic is untouched.
func SweepSoA(re, im []float64, kr, ki float64) {
	for i := range re {
		r, m := re[i], im[i]
		re[i] = r*kr - m*ki
		im[i] = r*ki + m*kr
	}
}

// Boundary is legal: the complex/real/imag conversion builtins are the
// public Amplitudes shims.
func Boundary(re, im float64) (float64, float64) {
	c := complex(re, im)
	return real(c), imag(c)
}
