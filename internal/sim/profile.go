package sim

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Kernel-granular observability. Two layers:
//
//   - Always on: every executed kernel increments a per-kind counter and
//     observes its wall time in a per-kind histogram (the labeled
//     sim_kernels_total / sim_kernel_seconds families below). The
//     instruments are pre-resolved by kind ordinal, so the per-kernel
//     cost is two time.Now calls and three atomic adds — invisible next
//     to a statevector sweep.
//
//   - Opt in (Options.Profile): Plan execution additionally records a
//     per-kernel table — kind, support mask, wall time, and the per-shard
//     sweep times behind it — into a Profile, the document the serving
//     layer attaches to job status next to the span log. Per-shard timing
//     wraps every sweep closure, so it is only paid when requested.

// Kernel kind ordinals for the labeled instrument families. The enum is
// the executor's sweep classification: both permutation shapes (the
// controlled subspace exchange and the full-state relabeling) report as
// "permute".
const (
	pkGate1Q = iota
	pkGate2Q
	pkMonomial
	pkDiag
	pkPermute
	pkCtrlPhase
	pkInit
	pkKinds // count
)

// kindNames maps kind ordinals to their label values, in ordinal order.
var kindNames = [pkKinds]string{"gate1q", "gate2q", "monomial", "diag", "permute", "ctrlphase", "init"}

// Always-on per-kind aggregates, registered process-wide like the stage
// histograms in run.go. The value enums here must stay in kindNames'
// ordinal order — At(ordinal) is the zero-alloc hot-path accessor.
var (
	simKernels = obs.Default().CounterFamily("sim_kernels_total",
		"Kernels executed, by kernel kind.",
		"kind", []string{"gate1q", "gate2q", "monomial", "diag", "permute", "ctrlphase", "init"})
	simKernelSeconds = obs.Default().HistogramFamily("sim_kernel_seconds",
		"Per-kernel execution wall time, by kernel kind.", nil,
		"kind", []string{"gate1q", "gate2q", "monomial", "diag", "permute", "ctrlphase", "init"})
)

// kindOrdinal classifies a compiled kernel for the instrument families.
func kindOrdinal(k *kernel) int {
	switch k.kind {
	case kGate1Q:
		return pkGate1Q
	case kGate2Q:
		if k.mono {
			return pkMonomial
		}
		return pkGate2Q
	case kDiag:
		return pkDiag
	case kCtrlPerm, kPermute:
		return pkPermute
	case kCtrlPhase:
		return pkCtrlPhase
	default:
		return pkInit
	}
}

// KernelProfile is one row of the per-kernel table: which kernel, what
// it swept, how long, and how evenly the shards shared it.
type KernelProfile struct {
	// Index is the kernel's position in the compiled plan.
	Index int `json:"index"`
	// Kind is the kernel's kind label (gate1q, gate2q, monomial, diag,
	// permute, ctrlphase, init).
	Kind string `json:"kind"`
	// Support is the bitmask of qubits the kernel touches.
	Support uint64 `json:"support"`
	// Ns is the kernel's wall time, including the shard-pool barrier.
	Ns int64 `json:"ns"`
	// ShardMinNs / ShardMaxNs bound the per-shard sweep times. A shard
	// granted no work (a subspace kernel narrower than the pool) counts
	// as zero.
	ShardMinNs int64 `json:"shard_min_ns"`
	ShardMaxNs int64 `json:"shard_max_ns"`
	// Imbalance is max/mean over per-shard times: 1.0 is perfectly
	// balanced, the shard count is the worst case (all work on one
	// shard). 0 when no shard time was measurable.
	Imbalance float64 `json:"imbalance"`
}

// Profile is the kernel-granular execution profile of one plan execution
// (Options.Profile). Its kernel-time total tracks the "execute" stage
// duration to within scheduling overhead.
type Profile struct {
	// Shards is the effective shard count the plan executed across.
	Shards int `json:"shards"`
	// TotalNs is the sum of per-kernel wall times.
	TotalNs int64 `json:"total_ns"`
	// Kernels is the per-kernel table, in execution order.
	Kernels []KernelProfile `json:"kernels"`
}

// execProfiler accumulates the per-kernel table during executeOn. The
// shard slice is written barrier-to-barrier by each worker into its own
// slot, so no synchronization beyond the pool's own barrier is needed.
type execProfiler struct {
	shard   []time.Duration
	kernels []KernelProfile
	total   time.Duration
}

func newExecProfiler(shards, kernels int) *execProfiler {
	return &execProfiler{
		shard:   make([]time.Duration, shards),
		kernels: make([]KernelProfile, 0, kernels),
	}
}

// begin resets the per-shard accumulators for the next kernel.
func (p *execProfiler) begin() {
	for i := range p.shard {
		p.shard[i] = 0
	}
}

// end folds one kernel's timings into the table.
func (p *execProfiler) end(idx int, k *kernel, ord int, d time.Duration) {
	minS, maxS, sum := p.shard[0], p.shard[0], time.Duration(0)
	for _, s := range p.shard {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
		sum += s
	}
	imb := 0.0
	if sum > 0 {
		mean := float64(sum) / float64(len(p.shard))
		imb = float64(maxS) / mean
	}
	p.kernels = append(p.kernels, KernelProfile{
		Index:      idx,
		Kind:       kindNames[ord],
		Support:    uint64(k.support),
		Ns:         d.Nanoseconds(),
		ShardMinNs: minS.Nanoseconds(),
		ShardMaxNs: maxS.Nanoseconds(),
		Imbalance:  imb,
	})
	p.total += d
}

func (p *execProfiler) finish() *Profile {
	return &Profile{Shards: len(p.shard), TotalNs: p.total.Nanoseconds(), Kernels: p.kernels}
}

// ExecuteProfiled is Execute with the kernel-granular profiler on,
// returning the per-kernel table. Profiling never changes amplitudes —
// sweep bodies and shard ranges are identical with and without it.
func (pl *Plan) ExecuteProfiled(st *State, shards int) (*Profile, error) {
	if st.n != pl.n {
		return nil, fmt.Errorf("sim: plan compiled for %d qubits, state has %d", pl.n, st.n)
	}
	pool := newShardPool(resolveShards(st.Dim(), shards))
	defer pool.close()
	prof := newExecProfiler(pool.shards, len(pl.kernels))
	if err := pl.executeOn(st, pool, prof); err != nil {
		return nil, err
	}
	return prof.finish(), nil
}
