package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default histogram upper bounds, in seconds:
// exponential from 10µs to 10s so journal fsyncs, HTTP round-trips, and
// multi-second statevector sweeps all resolve to a few buckets rather
// than piling into the first or last one.
var DefBuckets = []float64{
	10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3,
	10e-3, 25e-3, 50e-3,
	100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Counter is a monotonically increasing count. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Obtain one from Registry.Gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (compare-and-swap loop; fine off the hot path).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency distribution. Observations index
// into cumulative-at-render buckets by upper bound (le semantics, like
// Prometheus); the sum is kept in exact integer nanoseconds so callers
// deriving totals (e.g. the pool's total_queue_ns) lose nothing to float
// accumulation. Obtain one from Registry.Histogram.
type Histogram struct {
	bounds   []float64 // ascending upper bounds in seconds; +Inf implicit
	counts   []atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly ascending at %v", b[i]))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(d.Nanoseconds())
}

// ObserveSeconds records one observation given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	i := sort.SearchFloat64s(h.bounds, s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(s * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNanos returns the exact sum of observed durations in nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sumNanos.Load() }

// Sum returns the sum of observations in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNanos.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation inside the owning bucket — the same estimate Prometheus'
// histogram_quantile computes. Returns 0 with no observations; an
// estimate landing in the overflow bucket clamps to the highest bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(target-cum)/n
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name=value pair attached to an instrument.
type Label struct {
	Name  string
	Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label

	// Rendered label strings, computed once at registration so scrapes
	// never re-escape or re-join label sets: lbl is the plain set,
	// lblBuckets the per-bound sets (le included, +Inf last) for
	// histograms.
	lbl        string
	lblBuckets []string

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry is a named set of instruments. Lookups are get-or-create:
// the same (name, labels) pair always yields the same instrument, and a
// name registered under one kind panics if re-requested as another.
// Registries are independent — tests give every pool its own so counters
// never bleed across fixtures — and Handler can serve several at once.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric
	order    []*metric
	kinds    map[string]metricKind
	onGather []func()

	// lastLen remembers the previous exposition's byte length so the next
	// scrape pre-sizes its buffer in one allocation instead of growing
	// through the doubling ladder (the /metrics churn fix).
	lastLen atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}, kinds: map[string]metricKind{}}
}

var defaultRegistry = NewRegistry()

// Default is the process-wide registry. Library layers with no handle on
// a server's registry (the sim engine's stage histograms) register here;
// servers merge it into their /metrics via Handler.
func Default() *Registry { return defaultRegistry }

func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup returns the metric for (name, labels), creating it with mk on
// first use. Kind clashes are programming errors and panic.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func() *metric) *metric {
	if !validName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic("obs: invalid label name " + strconv.Quote(l.Name))
		}
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	key := metricKey(name, sorted)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %s already registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	if k, ok := r.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("obs: metric %s already registered as %s, requested as %s", name, k, kind))
	}
	m := mk()
	m.name, m.help, m.kind, m.labels = name, help, kind, sorted
	m.lbl = renderLabels(sorted, "")
	if m.hist != nil {
		m.lblBuckets = make([]string, len(m.hist.bounds)+1)
		for i, bound := range m.hist.bounds {
			m.lblBuckets[i] = renderLabels(sorted, formatFloat(bound))
		}
		m.lblBuckets[len(m.hist.bounds)] = renderLabels(sorted, "+Inf")
	}
	r.metrics[key] = m
	r.kinds[name] = kind
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter with the given name and labels, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, labels, func() *metric {
		return &metric{counter: &Counter{}}
	}).counter
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. A second registration under the same name and labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.lookup(name, help, kindGaugeFunc, labels, func() *metric { return &metric{} })
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram with the given name, labels, and
// upper bounds (nil = DefBuckets), creating it on first use. Bounds are
// fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, func() *metric {
		return &metric{hist: newHistogram(buckets)}
	}).hist
}

// OnGather registers fn to run at the start of every scrape, before
// instruments render — the hook point batch sources (runtime/metrics)
// use to refresh their gauges.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	r.onGather = append(r.onGather, fn)
	r.mu.Unlock()
}

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4), families sorted by name, after running OnGather hooks.
func (r *Registry) WriteText(w io.Writer) error {
	return r.writeText(w, map[string]bool{})
}

func (r *Registry) writeText(w io.Writer, seen map[string]bool) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.onGather...)
	ms := append([]*metric{}, r.order...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	var b strings.Builder
	b.Grow(int(r.lastLen.Load()) + 256)
	line := func(name, suffix, labels, value string) {
		b.WriteString(name)
		b.WriteString(suffix)
		b.WriteString(labels)
		b.WriteByte(' ')
		b.WriteString(value)
		b.WriteByte('\n')
	}
	last := ""
	for _, m := range ms {
		if m.name != last {
			if seen[m.name] {
				// A family already emitted by an earlier registry in a
				// merged Handler: drop it rather than produce an invalid
				// duplicate exposition.
				continue
			}
			seen[m.name] = true
			if m.help != "" {
				b.WriteString("# HELP ")
				b.WriteString(m.name)
				b.WriteByte(' ')
				b.WriteString(escapeHelp(m.help))
				b.WriteByte('\n')
			}
			b.WriteString("# TYPE ")
			b.WriteString(m.name)
			b.WriteByte(' ')
			b.WriteString(m.kind.String())
			b.WriteByte('\n')
			last = m.name
		}
		switch m.kind {
		case kindCounter:
			line(m.name, "", m.lbl, strconv.FormatUint(m.counter.Value(), 10))
		case kindGauge:
			line(m.name, "", m.lbl, formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			v := 0.0
			if m.fn != nil {
				v = m.fn()
			}
			line(m.name, "", m.lbl, formatFloat(v))
		case kindHistogram:
			h := m.hist
			cum := uint64(0)
			for i := range h.bounds {
				cum += h.counts[i].Load()
				line(m.name, "_bucket", m.lblBuckets[i], strconv.FormatUint(cum, 10))
			}
			// The overflow bucket renders as the total count so the +Inf
			// invariant holds even if observations raced the loop above.
			line(m.name, "_bucket", m.lblBuckets[len(h.bounds)], strconv.FormatUint(h.Count(), 10))
			line(m.name, "_sum", m.lbl, formatFloat(h.Sum()))
			line(m.name, "_count", m.lbl, strconv.FormatUint(h.Count(), 10))
		}
	}
	r.lastLen.Store(int64(b.Len()))
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// renderLabels formats a label set, appending le when non-empty (the
// histogram bucket case).
func renderLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Handler serves the merged exposition of the given registries (none =
// Default()) on any method. When a family name appears in several
// registries, the first registry wins — merged output is always a valid
// single exposition.
func Handler(regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default()}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		seen := map[string]bool{}
		emitted := map[*Registry]bool{}
		for _, r := range regs {
			if r == nil || emitted[r] {
				continue
			}
			emitted[r] = true
			if err := r.writeText(w, seen); err != nil {
				return
			}
		}
	})
}
