package jsonschema

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := Compile([]byte(src))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return s
}

func TestTypeValidation(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{
		"name":{"type":"string"},
		"width":{"type":"integer"},
		"scale":{"type":"number"},
		"on":{"type":"boolean"},
		"tags":{"type":"array"}}}`)

	if err := s.ValidateBytes([]byte(`{"name":"x","width":4,"scale":1.5,"on":true,"tags":[]}`)); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`{"width":"four"}`)); err == nil {
		t.Error("string-for-integer accepted")
	}
	if err := s.ValidateBytes([]byte(`{"width":4.5}`)); err == nil {
		t.Error("non-integral number accepted as integer")
	}
	// integer satisfies number
	if err := s.ValidateBytes([]byte(`{"scale":2}`)); err != nil {
		t.Errorf("integer rejected where number expected: %v", err)
	}
}

func TestRequired(t *testing.T) {
	s := mustCompile(t, `{"type":"object","required":["id","width"]}`)
	err := s.ValidateBytes([]byte(`{"id":"a"}`))
	if err == nil {
		t.Fatal("missing required property accepted")
	}
	if !strings.Contains(err.Error(), "width") {
		t.Errorf("error does not name the missing property: %v", err)
	}
}

func TestEnumAndConst(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{
		"bit_order":{"enum":["LSB_0","MSB_0"]},
		"version":{"const":1}}}`)
	if err := s.ValidateBytes([]byte(`{"bit_order":"LSB_0","version":1}`)); err != nil {
		t.Errorf("valid enum/const rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`{"bit_order":"BIG"}`)); err == nil {
		t.Error("out-of-enum value accepted")
	}
	if err := s.ValidateBytes([]byte(`{"version":2}`)); err == nil {
		t.Error("non-const value accepted")
	}
}

func TestNumericBounds(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{
		"width":{"type":"integer","minimum":1,"maximum":64},
		"p":{"type":"number","exclusiveMinimum":0,"exclusiveMaximum":1},
		"even":{"type":"integer","multipleOf":2}}}`)
	cases := []struct {
		doc string
		ok  bool
	}{
		{`{"width":1}`, true},
		{`{"width":64}`, true},
		{`{"width":0}`, false},
		{`{"width":65}`, false},
		{`{"p":0.5}`, true},
		{`{"p":0}`, false},
		{`{"p":1}`, false},
		{`{"even":4}`, true},
		{`{"even":3}`, false},
	}
	for _, c := range cases {
		err := s.ValidateBytes([]byte(c.doc))
		if (err == nil) != c.ok {
			t.Errorf("doc %s: ok=%v, err=%v", c.doc, c.ok, err)
		}
	}
}

func TestStringConstraints(t *testing.T) {
	s := mustCompile(t, `{"type":"string","minLength":2,"maxLength":5,"pattern":"^[a-z_]+$"}`)
	if err := s.ValidateBytes([]byte(`"ab_c"`)); err != nil {
		t.Errorf("valid string rejected: %v", err)
	}
	for _, bad := range []string{`"a"`, `"toolongvalue"`, `"ABC"`} {
		if err := s.ValidateBytes([]byte(bad)); err == nil {
			t.Errorf("invalid string %s accepted", bad)
		}
	}
}

func TestBadPatternRejectedAtCompile(t *testing.T) {
	if _, err := Compile([]byte(`{"pattern":"["}`)); err == nil {
		t.Error("invalid regexp compiled successfully")
	}
}

func TestArrayConstraints(t *testing.T) {
	s := mustCompile(t, `{"type":"array","minItems":1,"maxItems":3,
		"items":{"type":"integer","minimum":0},"uniqueItems":true}`)
	if err := s.ValidateBytes([]byte(`[1,2,3]`)); err != nil {
		t.Errorf("valid array rejected: %v", err)
	}
	for _, bad := range []string{`[]`, `[1,2,3,4]`, `[-1]`, `[1,1]`, `["x"]`} {
		if err := s.ValidateBytes([]byte(bad)); err == nil {
			t.Errorf("invalid array %s accepted", bad)
		}
	}
}

func TestNestedObjects(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{
		"exec":{"type":"object","required":["engine"],"properties":{
			"engine":{"type":"string"},
			"samples":{"type":"integer","minimum":1}}}}}`)
	if err := s.ValidateBytes([]byte(`{"exec":{"engine":"gate.statevector","samples":4096}}`)); err != nil {
		t.Errorf("valid nested doc rejected: %v", err)
	}
	err := s.ValidateBytes([]byte(`{"exec":{"samples":0}}`))
	if err == nil {
		t.Fatal("invalid nested doc accepted")
	}
	// Both violations should be reported.
	msg := err.Error()
	if !strings.Contains(msg, "engine") || !strings.Contains(msg, "minimum") {
		t.Errorf("expected both nested violations, got: %v", msg)
	}
}

func TestAdditionalPropertiesFalse(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{"a":{}},"additionalProperties":false}`)
	if err := s.ValidateBytes([]byte(`{"a":1}`)); err != nil {
		t.Errorf("declared property rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`{"b":1}`)); err == nil {
		t.Error("undeclared property accepted with additionalProperties:false")
	}
}

func TestAdditionalPropertiesSchema(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{"a":{"type":"string"}},
		"additionalProperties":{"type":"integer"}}`)
	if err := s.ValidateBytes([]byte(`{"a":"x","extra":3}`)); err != nil {
		t.Errorf("conforming extra property rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`{"extra":"not-int"}`)); err == nil {
		t.Error("non-conforming extra property accepted")
	}
}

func TestRefIntoDefs(t *testing.T) {
	s := mustCompile(t, `{
		"$defs":{"coupling":{"type":"array","items":{"type":"integer"},"minItems":2,"maxItems":2}},
		"type":"object",
		"properties":{"coupling_map":{"type":"array","items":{"$ref":"#/$defs/coupling"}}}}`)
	if err := s.ValidateBytes([]byte(`{"coupling_map":[[0,1],[1,2]]}`)); err != nil {
		t.Errorf("valid $ref doc rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`{"coupling_map":[[0]]}`)); err == nil {
		t.Error("short coupling pair accepted")
	}
}

func TestUnresolvableRef(t *testing.T) {
	s := mustCompile(t, `{"$ref":"#/$defs/missing"}`)
	if err := s.Validate(map[string]any{}); err == nil {
		t.Error("unresolvable $ref did not produce an error")
	}
}

func TestCombinators(t *testing.T) {
	anyOf := mustCompile(t, `{"anyOf":[{"type":"string"},{"type":"integer"}]}`)
	if err := anyOf.ValidateBytes([]byte(`"x"`)); err != nil {
		t.Errorf("anyOf string rejected: %v", err)
	}
	if err := anyOf.ValidateBytes([]byte(`3`)); err != nil {
		t.Errorf("anyOf integer rejected: %v", err)
	}
	if err := anyOf.ValidateBytes([]byte(`true`)); err == nil {
		t.Error("anyOf accepted non-alternative")
	}

	oneOf := mustCompile(t, `{"oneOf":[{"type":"number","minimum":0},{"type":"number","maximum":0}]}`)
	if err := oneOf.ValidateBytes([]byte(`5`)); err != nil {
		t.Errorf("oneOf single match rejected: %v", err)
	}
	if err := oneOf.ValidateBytes([]byte(`0`)); err == nil {
		t.Error("oneOf double match accepted")
	}

	not := mustCompile(t, `{"not":{"type":"null"}}`)
	if err := not.ValidateBytes([]byte(`null`)); err == nil {
		t.Error("not-schema accepted forbidden value")
	}
	if err := not.ValidateBytes([]byte(`1`)); err != nil {
		t.Errorf("not-schema rejected allowed value: %v", err)
	}

	allOf := mustCompile(t, `{"allOf":[{"type":"integer"},{"minimum":3}]}`)
	if err := allOf.ValidateBytes([]byte(`4`)); err != nil {
		t.Errorf("allOf valid value rejected: %v", err)
	}
	if err := allOf.ValidateBytes([]byte(`2`)); err == nil {
		t.Error("allOf invalid value accepted")
	}
}

func TestTypeUnion(t *testing.T) {
	s := mustCompile(t, `{"type":["string","null"]}`)
	if err := s.ValidateBytes([]byte(`"x"`)); err != nil {
		t.Errorf("union string rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`null`)); err != nil {
		t.Errorf("union null rejected: %v", err)
	}
	if err := s.ValidateBytes([]byte(`5`)); err == nil {
		t.Error("union accepted excluded type")
	}
}

func TestMalformedDocument(t *testing.T) {
	s := mustCompile(t, `{"type":"object"}`)
	if err := s.ValidateBytes([]byte(`{oops`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestErrorPathsAreInformative(t *testing.T) {
	s := mustCompile(t, `{"type":"object","properties":{
		"params":{"type":"object","properties":{
			"angles":{"type":"array","items":{"type":"number"}}}}}}`)
	err := s.ValidateBytes([]byte(`{"params":{"angles":[1.0,"bad"]}}`))
	if err == nil {
		t.Fatal("invalid doc accepted")
	}
	if !strings.Contains(err.Error(), "$.params.angles[1]") {
		t.Errorf("error path not informative: %v", err)
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic on bad schema")
		}
	}()
	MustCompile([]byte(`{`))
}
