package algolib

import (
	"fmt"
	"math"

	"repro/internal/qdt"
	"repro/internal/qop"
)

// NewGroverOracle builds a phase oracle flipping the sign of the marked
// basis states: O|x⟩ = −|x⟩ for x ∈ marked, identity otherwise. Realized
// natively as a diagonal unitary on the simulator path (as with the
// modular-arithmetic templates, basis-gate synthesis of arbitrary
// diagonals is left to targets that need it).
func NewGroverOracle(reg *qdt.DataType, marked []uint64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if len(marked) == 0 {
		return nil, fmt.Errorf("algolib: oracle needs at least one marked state")
	}
	space := uint64(1) << uint(reg.Width)
	seen := map[uint64]bool{}
	markedAny := make([]any, 0, len(marked))
	for _, m := range marked {
		if m >= space {
			return nil, fmt.Errorf("algolib: marked state %d exceeds register space 2^%d", m, reg.Width)
		}
		if seen[m] {
			return nil, fmt.Errorf("algolib: marked state %d repeated", m)
		}
		seen[m] = true
		markedAny = append(markedAny, float64(m))
	}
	op := newOp("grover_oracle", qop.GroverOracle, reg.ID)
	op.SetParam("marked", markedAny)
	op.CostHint = &qop.CostHint{Depth: 1, TwoQ: reg.Width} // multi-controlled-Z scale
	return op, nil
}

// NewGroverDiffusion builds the inversion-about-the-mean operator
// D = 2|s⟩⟨s| − I (with |s⟩ the uniform state), realized as
// H^⊗n · (2|0⟩⟨0| − I) · H^⊗n.
func NewGroverDiffusion(reg *qdt.DataType) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	op := newOp("grover_diffusion", qop.GroverDiffusion, reg.ID)
	op.CostHint = &qop.CostHint{OneQ: 2 * reg.Width, TwoQ: reg.Width, Depth: 3}
	return op, nil
}

// OptimalGroverIterations returns the iteration count maximizing the
// success probability sin²((2k+1)θ) with θ = asin(√(M/N)): the exact
// k* = round((π/(2θ) − 1)/2), which reduces to the familiar ⌈π/4·√(N/M)⌉
// in the small-θ limit but stays correct when the marked fraction is
// large.
func OptimalGroverIterations(width int, markedCount int) int {
	if markedCount < 1 {
		return 0
	}
	n := float64(uint64(1) << uint(width))
	m := float64(markedCount)
	if m >= n {
		return 0 // everything is marked; nothing to amplify
	}
	theta := math.Asin(math.Sqrt(m / n))
	k := math.Round((math.Pi/(2*theta) - 1) / 2)
	if k < 1 {
		return 1
	}
	return int(k)
}

// BuildGrover emits the full search sequence: uniform preparation,
// `iterations` oracle+diffusion rounds, and a typed measurement.
// iterations = 0 selects the optimal count automatically.
func BuildGrover(reg *qdt.DataType, marked []uint64, iterations int) (qop.Sequence, error) {
	if iterations < 0 {
		return nil, fmt.Errorf("algolib: negative Grover iterations %d", iterations)
	}
	if iterations == 0 {
		iterations = OptimalGroverIterations(reg.Width, len(marked))
	}
	prep, err := NewPrepUniform(reg)
	if err != nil {
		return nil, err
	}
	seq := qop.Sequence{prep}
	for i := 0; i < iterations; i++ {
		oracle, err := NewGroverOracle(reg, marked)
		if err != nil {
			return nil, err
		}
		diffusion, err := NewGroverDiffusion(reg)
		if err != nil {
			return nil, err
		}
		seq = append(seq, oracle, diffusion)
	}
	seq = append(seq, NewMeasurement(reg))
	return seq, nil
}

// lowerGroverOracle appends the oracle's diagonal realization.
func lowerGroverOracle(c interface {
	Diagonal(qubits []int, phases []complex128) error
}, op *qop.Operator, base, width int) error {
	marked, err := floatSliceParam(op, "marked")
	if err != nil {
		return err
	}
	phases := make([]complex128, 1<<uint(width))
	for i := range phases {
		phases[i] = 1
	}
	for _, m := range marked {
		idx := uint64(m)
		if idx >= uint64(len(phases)) {
			return fmt.Errorf("marked state %d out of range", idx)
		}
		phases[idx] = -1
	}
	return c.Diagonal(regQubits(base, width), phases)
}
