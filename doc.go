// Package repro is a Go reproduction of "An HPC-Inspired Blueprint for a
// Technology-Agnostic Quantum Middle Layer" (Markidis, Netzer, Pennati,
// Peng — SC Workshops '25, arXiv:2510.07079).
//
// The middle layer lets a program state its intent once — typed quantum
// registers (internal/qdt) and logical operator descriptors (internal/qop)
// — while execution policy travels separately in a context descriptor
// (internal/ctxdesc). The same intent bundle (internal/bundle) then runs
// on a gate-model statevector engine, a simulated annealer, or a pulse
// model (internal/backend) without modification.
//
// See README.md for the architecture tour, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmark harness in bench_test.go
// regenerates every quantitative artifact; cmd/qmlbench prints them as
// tables.
package repro
