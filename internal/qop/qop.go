// Package qop implements quantum operator descriptors, the middle layer's
// representation of logical transformations independent of realization
// (paper §4.2).
//
// An Operator names an abstract action (a QFT, a modular adder, an Ising
// cost-phase layer, an Ising problem …) over typed registers, carries its
// parameters, an optional device-independent cost hint, and — when a
// measurement occurs — an explicit result schema specifying how readout is
// produced and decoded. It contains no gates, pulses, or device details;
// those belong to backends and the execution context.
package qop

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// SchemaName is the JSON Schema identifier for operator descriptors,
// matching the paper's Listing 3.
const SchemaName = "qod.schema.json"

// RepKind identifies the logical transformation template. The values cover
// every operator the paper names: the QFT template of Listing 3, the QAOA
// descriptor stack of §5/Fig. 2 (PREP_UNIFORM, ISING_COST_PHASE, MIXER_RX,
// MEASUREMENT), the anneal path's ISING_PROBLEM of §5/Fig. 3, and the
// algorithmic-library families of §4.4 (arithmetic, boolean/conditional,
// phase/measurement, state preparation).
type RepKind string

const (
	// Phase / measurement family.
	QFTTemplate   RepKind = "QFT_TEMPLATE"
	QPETemplate   RepKind = "QPE_TEMPLATE"
	SwapTest      RepKind = "SWAP_TEST"
	Measurement   RepKind = "MEASUREMENT"
	PhaseKickback RepKind = "PHASE_KICKBACK"

	// State preparation family.
	PrepUniform   RepKind = "PREP_UNIFORM"
	PrepBasis     RepKind = "PREP_BASIS"
	AngleEncoding RepKind = "ANGLE_ENCODING"
	AmplitudeEnc  RepKind = "AMPLITUDE_ENCODING"

	// QAOA / Ising family.
	IsingCostPhase RepKind = "ISING_COST_PHASE"
	MixerRX        RepKind = "MIXER_RX"
	IsingProblem   RepKind = "ISING_PROBLEM"
	IsingEvolution RepKind = "ISING_EVOLUTION"

	// Arithmetic family.
	AdderTemplate   RepKind = "ADDER_TEMPLATE"
	ModAddTemplate  RepKind = "MOD_ADD_TEMPLATE"
	ModMulTemplate  RepKind = "MOD_MUL_TEMPLATE"
	ModExpTemplate  RepKind = "MOD_EXP_TEMPLATE"
	CompareTemplate RepKind = "COMPARE_TEMPLATE"

	// Boolean / conditional family.
	ControlledOp RepKind = "CONTROLLED_OP"
	Multiplexer  RepKind = "MULTIPLEXER"
	CSwap        RepKind = "CSWAP"

	// Amplitude-amplification family.
	GroverOracle    RepKind = "GROVER_ORACLE"
	GroverDiffusion RepKind = "GROVER_DIFFUSION"

	// Raw gate escape hatch used by tests and lowering.
	GateList RepKind = "GATE_LIST"
)

// knownKinds is the closed set accepted by Validate.
var knownKinds = map[RepKind]bool{
	QFTTemplate: true, QPETemplate: true, SwapTest: true, Measurement: true,
	PhaseKickback: true, PrepUniform: true, PrepBasis: true,
	AngleEncoding: true, AmplitudeEnc: true, IsingCostPhase: true,
	MixerRX: true, IsingProblem: true, IsingEvolution: true,
	AdderTemplate: true, ModAddTemplate: true, ModMulTemplate: true,
	ModExpTemplate: true, CompareTemplate: true, ControlledOp: true,
	Multiplexer: true, CSwap: true, GateList: true,
	GroverOracle: true, GroverDiffusion: true,
}

// CostHint is the device-independent cost estimate the paper attaches to
// operators, "analogous to FLOP counts and communication estimates used by
// HPC schedulers" (§2). All fields are estimates a scheduler may use for
// early planning; zero means unknown.
type CostHint struct {
	TwoQ       int     `json:"twoq,omitempty"`        // two-qubit gate count
	OneQ       int     `json:"oneq,omitempty"`        // one-qubit gate count
	Depth      int     `json:"depth,omitempty"`       // circuit depth
	Ancilla    int     `json:"ancilla,omitempty"`     // ancilla demand
	CommVolume int     `json:"comm_volume,omitempty"` // inter-QPU operations
	DurationNS float64 `json:"duration_ns,omitempty"` // expected wall time
}

// Add accumulates another hint (sequential composition: depth adds, counts
// add, ancilla takes the max).
func (c CostHint) Add(o CostHint) CostHint {
	return CostHint{
		TwoQ:       c.TwoQ + o.TwoQ,
		OneQ:       c.OneQ + o.OneQ,
		Depth:      c.Depth + o.Depth,
		Ancilla:    maxInt(c.Ancilla, o.Ancilla),
		CommVolume: c.CommVolume + o.CommVolume,
		DurationNS: c.DurationNS + o.DurationNS,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ResultSchema specifies how a downstream readout is produced and decoded
// (paper §4.2, Listing 3): the measurement basis, the datatype the
// bitstring encodes, the significance order, and the mapping of logical
// indices to successive classical bits.
type ResultSchema struct {
	Basis           string   `json:"basis"`            // "Z" (computational), "X", "Y"
	Datatype        string   `json:"datatype"`         // AS_PHASE, AS_BOOL, AS_INT, …
	BitSignificance string   `json:"bit_significance"` // LSB_0 or MSB_0
	ClbitOrder      []string `json:"clbit_order"`      // e.g. "reg_phase[3]"
}

// Validate checks the schema against the register it reads.
func (r *ResultSchema) Validate(registerID string, width int) error {
	var probs []string
	switch r.Basis {
	case "Z", "X", "Y":
	default:
		probs = append(probs, fmt.Sprintf("unknown basis %q", r.Basis))
	}
	switch r.Datatype {
	case "AS_INT", "AS_BOOL", "AS_PHASE", "AS_SPIN", "AS_FIXED":
	default:
		probs = append(probs, fmt.Sprintf("unknown datatype %q", r.Datatype))
	}
	switch r.BitSignificance {
	case "LSB_0", "MSB_0":
	default:
		probs = append(probs, fmt.Sprintf("unknown bit_significance %q", r.BitSignificance))
	}
	if len(r.ClbitOrder) != width {
		probs = append(probs, fmt.Sprintf("clbit_order has %d entries, register width is %d", len(r.ClbitOrder), width))
	}
	seen := map[int]bool{}
	for i, ref := range r.ClbitOrder {
		reg, idx, err := ParseBitRef(ref)
		if err != nil {
			probs = append(probs, err.Error())
			continue
		}
		if reg != registerID {
			probs = append(probs, fmt.Sprintf("clbit %d references register %q, want %q", i, reg, registerID))
		}
		if idx < 0 || idx >= width {
			probs = append(probs, fmt.Sprintf("clbit %d index %d out of [0,%d)", i, idx, width))
		} else if seen[idx] {
			probs = append(probs, fmt.Sprintf("logical index %d mapped twice", idx))
		}
		seen[idx] = true
	}
	if len(probs) > 0 {
		return fmt.Errorf("result_schema: %s", strings.Join(probs, "; "))
	}
	return nil
}

// ParseBitRef parses a logical bit reference of the form "reg[idx]".
func ParseBitRef(ref string) (register string, index int, err error) {
	open := strings.IndexByte(ref, '[')
	if open <= 0 || !strings.HasSuffix(ref, "]") {
		return "", 0, fmt.Errorf("qop: malformed bit reference %q", ref)
	}
	reg := ref[:open]
	var idx int
	if _, err := fmt.Sscanf(ref[open:], "[%d]", &idx); err != nil {
		return "", 0, fmt.Errorf("qop: malformed bit reference %q", ref)
	}
	return reg, idx, nil
}

// DefaultResultSchema builds the identity readout for a register: Z basis,
// the register's own semantics and significance, clbit i ← reg[i]. This is
// what the paper's Listing 3 writes out longhand.
func DefaultResultSchema(registerID string, width int, datatype, significance string) *ResultSchema {
	order := make([]string, width)
	for i := range order {
		order[i] = fmt.Sprintf("%s[%d]", registerID, i)
	}
	return &ResultSchema{Basis: "Z", Datatype: datatype, BitSignificance: significance, ClbitOrder: order}
}

// Operator is a quantum operator descriptor. JSON field names follow the
// paper's Listing 3.
type Operator struct {
	Schema      string         `json:"$schema"`
	Name        string         `json:"name"`
	RepKind     RepKind        `json:"rep_kind"`
	DomainQDT   string         `json:"domain_qdt"`
	CodomainQDT string         `json:"codomain_qdt"`
	Params      map[string]any `json:"params,omitempty"`
	CostHint    *CostHint      `json:"cost_hint,omitempty"`
	Result      *ResultSchema  `json:"result_schema,omitempty"`

	// Provenance records which library constructed the descriptor (§4.4
	// lists provenance among the metadata algorithmic libraries may add).
	Provenance string `json:"provenance,omitempty"`
}

// New returns an operator descriptor with the schema field set and an
// in-place register contract (domain == codomain), the common case.
func New(name string, kind RepKind, registerID string) *Operator {
	return &Operator{
		Schema:      SchemaName,
		Name:        name,
		RepKind:     kind,
		DomainQDT:   registerID,
		CodomainQDT: registerID,
		Params:      map[string]any{},
	}
}

// Validate checks structural consistency. Register-level checks (widths,
// encodings) happen in Sequence.Validate where the QDT table is available.
func (o *Operator) Validate() error {
	var probs []string
	if o.Schema != SchemaName {
		probs = append(probs, fmt.Sprintf("$schema is %q, want %q", o.Schema, SchemaName))
	}
	if o.Name == "" {
		probs = append(probs, "name is empty")
	}
	if !knownKinds[o.RepKind] {
		probs = append(probs, fmt.Sprintf("unknown rep_kind %q", o.RepKind))
	}
	if o.DomainQDT == "" {
		probs = append(probs, "domain_qdt is empty")
	}
	if o.CodomainQDT == "" {
		probs = append(probs, "codomain_qdt is empty")
	}
	if len(probs) > 0 {
		return fmt.Errorf("qop %q: %s", o.Name, strings.Join(probs, "; "))
	}
	return nil
}

// SetParam sets a parameter, replacing any existing value.
func (o *Operator) SetParam(key string, v any) *Operator {
	if o.Params == nil {
		o.Params = map[string]any{}
	}
	o.Params[key] = v
	return o
}

// ParamFloat reads a numeric parameter. JSON numbers decode as float64;
// Go-constructed descriptors may hold int or float64.
func (o *Operator) ParamFloat(key string) (float64, error) {
	v, ok := o.Params[key]
	if !ok {
		return 0, fmt.Errorf("qop %q: missing param %q", o.Name, key)
	}
	switch t := v.(type) {
	case float64:
		return t, nil
	case int:
		return float64(t), nil
	case json.Number:
		return t.Float64()
	}
	return 0, fmt.Errorf("qop %q: param %q is %T, want number", o.Name, key, v)
}

// ParamInt reads an integral parameter, rejecting non-integral floats.
func (o *Operator) ParamInt(key string) (int, error) {
	f, err := o.ParamFloat(key)
	if err != nil {
		return 0, err
	}
	if f != math.Trunc(f) {
		return 0, fmt.Errorf("qop %q: param %q = %v is not integral", o.Name, key, f)
	}
	return int(f), nil
}

// ParamBool reads a boolean parameter.
func (o *Operator) ParamBool(key string) (bool, error) {
	v, ok := o.Params[key]
	if !ok {
		return false, fmt.Errorf("qop %q: missing param %q", o.Name, key)
	}
	b, isBool := v.(bool)
	if !isBool {
		return false, fmt.Errorf("qop %q: param %q is %T, want bool", o.Name, key, v)
	}
	return b, nil
}

// ParamFloatDefault reads a numeric parameter, falling back to def when the
// key is absent (but still erroring on a present-but-mistyped value).
func (o *Operator) ParamFloatDefault(key string, def float64) (float64, error) {
	if _, ok := o.Params[key]; !ok {
		return def, nil
	}
	return o.ParamFloat(key)
}

// ParamBoolDefault is ParamBool with a default for absent keys.
func (o *Operator) ParamBoolDefault(key string, def bool) (bool, error) {
	if _, ok := o.Params[key]; !ok {
		return def, nil
	}
	return o.ParamBool(key)
}

// Clone returns a deep copy via JSON round-trip; descriptors are pure data,
// so this is exact. Used by composition helpers so callers' artifacts are
// never aliased.
func (o *Operator) Clone() *Operator {
	b, err := json.Marshal(o)
	if err != nil {
		panic(fmt.Sprintf("qop: clone marshal: %v", err)) // unreachable for pure data
	}
	var cp Operator
	if err := json.Unmarshal(b, &cp); err != nil {
		panic(fmt.Sprintf("qop: clone unmarshal: %v", err))
	}
	return &cp
}

// invertible maps each self-inverse-or-parametrically-invertible kind to
// its inversion rule.
//
// The algorithmic libraries provide "helpers for composition and inversion"
// (§4.4); Invert implements the inversion half for the kinds where a
// logical inverse exists.
func (o *Operator) Invert() (*Operator, error) {
	inv := o.Clone()
	inv.Name = o.Name + "_inv"
	switch o.RepKind {
	case QFTTemplate:
		cur, err := o.ParamBoolDefault("inverse", false)
		if err != nil {
			return nil, err
		}
		inv.SetParam("inverse", !cur)
	case IsingCostPhase:
		g, err := o.ParamFloat("gamma")
		if err != nil {
			return nil, err
		}
		inv.SetParam("gamma", -g)
	case MixerRX:
		b, err := o.ParamFloat("beta")
		if err != nil {
			return nil, err
		}
		inv.SetParam("beta", -b)
	case IsingEvolution:
		tm, err := o.ParamFloat("time")
		if err != nil {
			return nil, err
		}
		inv.SetParam("time", -tm)
	case CSwap, SwapTest, PrepBasis:
		// self-inverse at the logical level (PrepBasis on |0…0⟩).
	case PrepUniform:
		// Hadamard layer is self-inverse.
	case Measurement:
		return nil, fmt.Errorf("qop: MEASUREMENT is not invertible")
	default:
		return nil, fmt.Errorf("qop: no inversion rule for rep_kind %q", o.RepKind)
	}
	return inv, nil
}

// FromJSON parses and validates an operator descriptor.
func FromJSON(src []byte) (*Operator, error) {
	var o Operator
	if err := json.Unmarshal(src, &o); err != nil {
		return nil, fmt.Errorf("qop: parse: %w", err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &o, nil
}

// MarshalJSON defaults the schema field.
func (o *Operator) MarshalJSON() ([]byte, error) {
	type alias Operator
	cp := *o
	if cp.Schema == "" {
		cp.Schema = SchemaName
	}
	return json.Marshal((*alias)(&cp))
}
