// Package jobs is the middle layer's serving subsystem: an asynchronous
// job scheduler that turns the one-shot runtime.Submit path into the
// queued, job-ID-addressed execution model production quantum services
// (IBM Quantum's job API, D-Wave Leap) expose.
//
// A Pool accepts validated submission bundles, assigns job IDs, runs them
// on a fixed worker pool (one goroutine per worker) fed from a bounded
// queue — Submit fails fast with ErrQueueFull when the queue is saturated,
// the backpressure signal the HTTP front-end translates into 429 — and
// deduplicates identical submissions through a content-addressed result
// cache keyed by the canonical bundle JSON plus resolved shots and seed.
// A submission identical to a job that is *currently executing* does not
// run twice either: it coalesces onto the in-flight job and completes
// with the same result the moment the primary finishes. Every job records
// its lifecycle (queued → running → done/failed, or canceled while
// queued) with queue-wait and run-time metrics aggregated into Stats.
//
// The pool is also the shard scheduler for the statevector engine: when a
// job starts it is granted a parallelism level (Status.Shards) forwarded
// to backends implementing backend.Sharded. A job that finds the pool
// otherwise idle takes Options.MaxShards so one big simulation spans
// every core; jobs running alongside others stay single-shard so
// concurrent throughput is undisturbed. Submitters can pin an explicit
// grant per job via SubmitOptions.
//
// # Persistence and recovery
//
// With Options.Store attached (an internal/jobs/store journal + result
// directory), accepted work is durable. Every lifecycle transition
// appends one journal event — submitted (with the canonical bundle JSON),
// started, done/failed/canceled, and forget when bounded retention evicts
// a record — and completed results are written as content-addressed files
// before the terminal event references them, so a "done" record on disk
// never points at a missing result.
//
// The recovery guarantees, in order of the journal's fsync policy:
//
//   - A job terminal before the crash answers Status and Result after the
//     restart exactly as before it (result loaded lazily from disk).
//   - A job queued or running at crash time is requeued at boot under its
//     original ID and re-run. Execution is deterministic in the cache key
//     (bundle + shots + seed), so the re-run produces the counts the lost
//     run would have: requeueing is invisible except in timing.
//   - A torn final journal line (the append the crash interrupted) is
//     dropped and truncated; it can only be a transition that was never
//     acknowledged. Interior corruption fails Open loudly.
//   - The LRU result cache rehydrates from the newest on-disk results at
//     boot, and a memory-cache miss falls through to the disk store
//     (Stats.DiskHits), so identical resubmissions across restarts still
//     skip execution.
//
// # Sweep jobs
//
// A bundle whose context carries a sweep block — parameter names plus a
// point grid — enters through SubmitSweep as ONE job: one journal
// record (the submitted event stores the template with its grid), one
// queue slot, one worker fanning out per point. The worker materializes
// each point with bundle.BindPoint, which substitutes the point's
// values into the "$name" markers and strips the sweep block: the
// result is byte-for-byte the bundle a caller would have submitted for
// that point alone. The per-point cache key is derived from that
// concrete bundle exactly as a plain submission's would be (canonical
// bundle JSON + resolved shots and seed, see CacheKey), so sweep points
// hit, and populate, the same content-addressed cache as individual
// jobs — a sweep after a per-point run (or vice versa) re-executes
// nothing.
//
// Execution goes through runtime.SubmitSweep: the symbolic template
// compiles once into a sim.ParamPlan and each point binds into it. The
// bind-invariance contract (see internal/sim: structure, kernel order
// and stats fixed across bindings; bound execution bit-identical to a
// concrete compile) is what makes this sound — per-point counts,
// fingerprints and cache keys are indistinguishable from the
// concrete-angle path, so determinism-dependent machinery (cache,
// crash requeue, fleet re-forwarding) needs no sweep-specific cases.
// SweepResult returns the indexed per-point result set; the HTTP layer
// surfaces the pair as POST /v1/sweeps and GET /v1/sweeps/{id}, and
// GET /v1/jobs/{id} long-polls with ?wait=<duration>.
//
// cmd/qmlserve wraps a Pool in an HTTP server (see NewHandler) and wires
// -data-dir to a store; cmd/qmlrun -parallel uses the same Pool for
// concurrent batch execution.
package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	stdruntime "runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/jobs/store"
	"repro/internal/obs"
	"repro/internal/qop"
	"repro/internal/result"
	rt "repro/internal/runtime"
)

// State is a job lifecycle state.
type State string

// Lifecycle states. Queued jobs may move to Running or Canceled; Running
// jobs finish Done or Failed. Done, Failed and Canceled are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Sentinel errors returned by Pool methods.
var (
	// ErrQueueFull is the backpressure signal: the bounded queue is
	// saturated and the submission was rejected, not enqueued.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrClosed means the pool has been shut down.
	ErrClosed = errors.New("jobs: pool closed")
	// ErrNotFound means no job has the given ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotFinished means the job has not reached a terminal state yet.
	ErrNotFinished = errors.New("jobs: job not finished")
	// ErrCanceled means the job was canceled before it ran.
	ErrCanceled = errors.New("jobs: job canceled")
)

// Options configure a Pool. The zero value is usable: NumCPU workers, a
// 64-deep queue, and a 1024-entry result cache.
type Options struct {
	// Workers is the number of executor goroutines (default: NumCPU).
	Workers int
	// QueueDepth bounds the submission queue; a full queue rejects with
	// ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize bounds the content-addressed result cache in entries
	// (default 1024; negative disables caching).
	CacheSize int
	// MaxRecords bounds how many terminal job records (with their
	// results) are retained for Status/Result lookups; the oldest
	// finished jobs are evicted first and subsequently report
	// ErrNotFound (default 65536; negative retains everything).
	// Queued and running jobs are never evicted.
	MaxRecords int
	// MaxShards caps the statevector parallelism one job may be granted
	// (default: GOMAXPROCS). A job that starts while the pool is
	// otherwise idle receives the full cap; jobs running alongside
	// others receive one shard.
	MaxShards int
	// Store, when non-nil, makes the pool durable: every state
	// transition appends to the store's journal, results persist as
	// content-addressed files, and NewPool replays the journal —
	// terminal jobs stay queryable across restarts, jobs that were
	// queued or running at crash time are requeued, and the result
	// cache rehydrates from disk. The pool does not close the store;
	// the owner does, after Close returns. Journal append failures are
	// counted (Stats.Errors) but never fail the job operation — the
	// service degrades to in-memory rather than rejecting work.
	Store *store.Store
	// Run is forwarded to runtime.Submit for every job.
	Run rt.Options
	// Logger receives structured lifecycle logs (job ID, trace ID,
	// engine, state transitions). nil discards them.
	Logger *slog.Logger
	// Metrics is the registry the pool's instruments register in (nil: a
	// private registry, so pools in tests never collide). The server
	// passes its own so /metrics carries jobs_* families; pass the same
	// registry to the store so one scrape covers both.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = stdruntime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 1024
	}
	if o.MaxRecords == 0 {
		o.MaxRecords = 65536
	}
	if o.MaxShards <= 0 {
		o.MaxShards = stdruntime.GOMAXPROCS(0)
	}
	return o
}

// Status is an externally visible snapshot of one job's lifecycle.
type Status struct {
	ID string
	// Trace is the job's fleet-wide trace ID (inbound X-Trace-Id or
	// server-generated).
	Trace    string
	State    State
	Engine   string
	CacheHit bool
	// Coalesced reports that this job never executed: it attached to an
	// identical in-flight job and shares its outcome.
	Coalesced bool
	// Shards is the parallelism granted when the job started running (0
	// while queued, and for cache hits and coalesced jobs).
	Shards int
	// Sweep reports a sweep job; Points is its parameter-grid size and
	// PointsDone how many points have completed so far (equal to Points
	// once the job is done).
	Sweep      bool
	Points     int
	PointsDone int
	// Progress is PointsDone/Points for sweep jobs (1 for any terminal
	// job), and ETA a coarse remaining-time estimate extrapolated from
	// the completed points' average duration (zero until at least one
	// point finishes, and for non-sweep jobs).
	Progress float64
	ETA      time.Duration
	// Profile is the kernel-granular execution profile of a profiled job
	// (SubmitOptions.Profile): the sim.Profile kernel table for plain
	// jobs, the per-kind aggregate for sweeps. nil while the job runs and
	// for unprofiled jobs.
	Profile json.RawMessage
	// Error holds the failure message for StateFailed.
	Error       string
	SubmittedAt time.Time
	StartedAt   time.Time // zero until the job leaves the queue
	FinishedAt  time.Time // zero until terminal
	// QueueWait is StartedAt−SubmittedAt (or, for cache hits, coalesced
	// and canceled jobs, FinishedAt−SubmittedAt).
	QueueWait time.Duration
	// RunTime is FinishedAt−StartedAt (zero for cache hits).
	RunTime time.Duration
	// Spans is the job's lifecycle log: queued/started/stage timings/
	// persisted/terminal, in order, with monotonic timestamps.
	Spans []obs.Span
}

// Stats aggregates pool-level counters and timing metrics.
type Stats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	QueueLen   int    `json:"queue_len"`
	Running    int    `json:"running"`
	Submitted  uint64 `json:"submitted"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Canceled   uint64 `json:"canceled"`
	// Rejected counts submissions refused with ErrQueueFull.
	Rejected uint64 `json:"rejected"`
	// CacheHits counts submissions served from the content-addressed
	// result cache without re-execution.
	CacheHits uint64 `json:"cache_hits"`
	CacheSize int    `json:"cache_size"`
	// Coalesced counts submissions that attached to an identical
	// in-flight job instead of executing.
	Coalesced uint64 `json:"coalesced"`
	// MaxShards is the per-job parallelism cap; WideJobs counts jobs that
	// ran with more than one shard (the lone-big-job grant).
	MaxShards  int           `json:"max_shards"`
	WideJobs   uint64        `json:"wide_jobs"`
	TotalQueue time.Duration `json:"total_queue_ns"`
	TotalRun   time.Duration `json:"total_run_ns"`
	// Persistence counters (all zero unless Options.Store is attached).
	// Recovered counts job records restored from the journal at boot;
	// Requeued counts the subset that was queued or running at crash
	// time and re-entered the queue; DiskHits counts submissions served
	// from an on-disk result that was no longer in the memory cache.
	Recovered uint64 `json:"recovered"`
	Requeued  uint64 `json:"requeued"`
	DiskHits  uint64 `json:"disk_hits"`
	// Sweeps counts sweep submissions accepted; SweepPoints counts points
	// completed by done sweeps (cached points included).
	Sweeps      uint64 `json:"sweeps"`
	SweepPoints uint64 `json:"sweep_points"`
	// Build identifies the serving binary (Go version, VCS revision) so
	// fleet operators can tell mixed-version workers apart.
	Build obs.BuildInfo `json:"build"`
	// Journal/result-file counters from the attached store, inlined.
	store.Stats
}

// poolMetrics are the registry-backed instruments behind Stats: the
// counters are the system of record (Stats() reads them back), and the
// histograms additionally expose queue-wait and run-time distributions
// on /metrics (their exact nanosecond sums are Stats' total_queue_ns and
// total_run_ns).
type poolMetrics struct {
	submitted   *obs.Counter
	completed   *obs.Counter
	failed      *obs.Counter
	canceled    *obs.Counter
	rejected    *obs.Counter
	cacheHits   *obs.Counter
	diskHits    *obs.Counter
	coalesced   *obs.Counter
	wideJobs    *obs.Counter
	recovered   *obs.Counter
	requeued    *obs.Counter
	sweeps      *obs.Counter
	sweepPoints *obs.Counter
	queueWait   *obs.Histogram
	runTime     *obs.Histogram
}

func newPoolMetrics(reg *obs.Registry, p *Pool) *poolMetrics {
	m := &poolMetrics{
		submitted:   reg.Counter("jobs_submitted_total", "Submissions accepted (rejected ones count in jobs_rejected_total only)."),
		completed:   reg.Counter("jobs_completed_total", "Jobs finished in StateDone, including cache hits and coalesced twins."),
		failed:      reg.Counter("jobs_failed_total", "Jobs finished in StateFailed."),
		canceled:    reg.Counter("jobs_canceled_total", "Jobs canceled while queued."),
		rejected:    reg.Counter("jobs_rejected_total", "Submissions refused with ErrQueueFull."),
		cacheHits:   reg.Counter("jobs_cache_hits_total", "Submissions served from the content-addressed result cache."),
		diskHits:    reg.Counter("jobs_disk_hits_total", "Submissions served from an on-disk result absent from the memory cache."),
		coalesced:   reg.Counter("jobs_coalesced_total", "Submissions attached to an identical in-flight job."),
		wideJobs:    reg.Counter("jobs_wide_total", "Jobs granted more than one shard."),
		recovered:   reg.Counter("jobs_recovered_total", "Job records restored from the journal at boot."),
		requeued:    reg.Counter("jobs_requeued_total", "Recovered jobs that re-entered the queue."),
		sweeps:      reg.Counter("jobs_sweeps_total", "Sweep submissions accepted (each is one job fanning out per point)."),
		sweepPoints: reg.Counter("jobs_sweep_points_total", "Sweep points completed in StateDone sweeps, including cached points."),
		queueWait:   reg.Histogram("jobs_queue_wait_seconds", "Time from submission to execution start (or to completion for dequeue-time cache hits and coalesced twins).", nil),
		runTime:     reg.Histogram("jobs_run_seconds", "Execution wall time of jobs that ran.", nil),
	}
	reg.GaugeFunc("jobs_queue_len", "Jobs waiting in the bounded queue.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.pending))
	})
	reg.GaugeFunc("jobs_running", "Jobs executing right now.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(p.running)
	})
	reg.GaugeFunc("jobs_cache_entries", "Entries in the in-memory result cache.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.cache == nil {
			return 0
		}
		return float64(p.cache.len())
	})
	return m
}

// job is the internal record; all fields after construction are guarded
// by Pool.mu except done, which is closed exactly once under mu.
type job struct {
	id        string
	trace     string // fleet-wide trace ID
	bundle    *bundle.Bundle
	key       string
	state     State
	engine    string
	cacheHit  bool
	coalesced bool // served by attaching to an identical in-flight job
	shards    int  // submitter's explicit parallelism request (0 = scheduler)
	granted   int  // shards granted when the job started running
	profile   bool // run with the kernel-granular profiler on
	// profileDoc is the extracted Meta["profile"] JSON of a completed
	// profiled job, surfaced in Status next to the span log.
	profileDoc json.RawMessage
	waiters    []*job // identical submissions coalesced onto this running job
	primary    *job   // the running job this one is attached to (waiters only)
	resKey     string // content address of the on-disk result (recovered jobs)
	// sweep is non-nil for sweep jobs (SubmitSweep): per-point progress,
	// result keys and results. Such a job occupies one queue slot and one
	// journal record but fans out per point when it runs.
	sweep     *sweepState
	err       error
	res       *result.Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	spans     []obs.Span // lifecycle log, appended in transition order
	done      chan struct{}
}

// spanLocked appends one lifecycle span. Callers hold p.mu.
func (j *job) spanLocked(stage string, d time.Duration, note string) {
	j.spans = append(j.spans, obs.NewSpan(stage, d, note))
}

// Pool is a concurrent job scheduler over runtime.Submit.
type Pool struct {
	opts Options
	met  *poolMetrics
	reg  *obs.Registry
	log  *slog.Logger
	wg   sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond // signals workers when pending gains a job or Close runs
	// pending is the bounded FIFO feeding the workers. A slice (not a
	// channel) so Cancel can remove a queued job and free its slot for
	// backpressure accounting immediately.
	pending []*job
	jobs    map[string]*job
	// inflight maps a cache key to the job currently executing it, so
	// identical submissions coalesce onto the running job instead of
	// executing twice. Entries exist only while the primary is running.
	inflight map[string]*job
	cache    *resultCache
	nextID   uint64
	running  int
	closed   bool
	stats    Stats
	// terminal holds finished job IDs in completion order for bounded
	// record retention (Options.MaxRecords).
	terminal []string
}

// NewPool starts a pool with opts.Workers executor goroutines. Call Close
// to drain and stop them. When Options.Store is set, the store's journal
// is replayed first: terminal jobs are re-exposed for Status/Result
// lookups, jobs that were queued or running at crash time are requeued
// (same job IDs, so pre-crash handles keep resolving), and the result
// cache rehydrates from the on-disk result files.
func NewPool(opts Options) *Pool {
	opts = opts.withDefaults()
	p := &Pool{
		opts:     opts,
		jobs:     map[string]*job{},
		inflight: map[string]*job{},
	}
	p.cond = sync.NewCond(&p.mu)
	p.log = opts.Logger
	if p.log == nil {
		p.log = obs.Discard()
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p.reg = reg
	p.met = newPoolMetrics(reg, p)
	if opts.CacheSize > 0 {
		p.cache = newResultCache(opts.CacheSize)
	}
	if opts.Store != nil {
		p.mu.Lock()
		p.recoverLocked()
		p.mu.Unlock()
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// journal appends a lifecycle event to the attached store. Persistence
// failures are counted by the store and deliberately do not fail the job
// operation: the pool degrades to in-memory service instead of rejecting
// accepted work.
func (p *Pool) journal(ev store.Event) {
	if p.opts.Store == nil {
		return
	}
	//lint:ignore journalerr persistence failures count in store_journal_errors_total; the pool degrades to in-memory service rather than failing accepted work
	_ = p.opts.Store.Append(ev)
}

// recoverLocked replays the attached store's record table into the pool:
// terminal records become queryable job records whose results load
// lazily from disk, queued/running records are requeued (re-running a
// requeued job is safe — execution is deterministic in the cache key, so
// its counts are identical to what the lost run would have produced),
// and the LRU cache warms from the newest on-disk results. Callers hold
// p.mu; the workers have not started yet.
func (p *Pool) recoverLocked() {
	maxID := uint64(0)
	for _, rec := range p.opts.Store.Records() {
		var n uint64
		if _, err := fmt.Sscanf(rec.Job, "job-%d", &n); err == nil && n > maxID {
			maxID = n
		}
		j := &job{
			id:        rec.Job,
			trace:     rec.Trace,
			key:       rec.Key,
			engine:    rec.Engine,
			profile:   rec.Profile,
			submitted: rec.Submitted,
			done:      make(chan struct{}),
		}
		p.met.recovered.Inc()
		// Sweep records carry the grid size (and, when done, the per-point
		// result addresses); reconstruct the sweep state so Status reports
		// the job as a sweep and SweepResult can lazy-load from disk.
		if rec.Points > 0 {
			j.sweep = &sweepState{points: rec.Points}
		}
		switch rec.State {
		case store.StateDone:
			j.state = StateDone
			j.cacheHit = rec.CacheHit
			j.coalesced = rec.Coalesced
			j.granted = rec.Shards
			j.started = rec.Started
			j.finished = rec.Finished
			j.resKey = rec.ResultKey
			if len(rec.Results) > 0 {
				if j.sweep == nil {
					j.sweep = &sweepState{}
				}
				j.sweep.keys = append([]string(nil), rec.Results...)
				j.sweep.completed = len(rec.Results)
				if j.sweep.points == 0 {
					j.sweep.points = len(rec.Results)
				}
			}
			p.jobs[j.id] = j
			p.finishLocked(j)
		case store.StateFailed:
			j.state = StateFailed
			j.coalesced = rec.Coalesced
			j.granted = rec.Shards
			j.started = rec.Started
			j.finished = rec.Finished
			j.err = errors.New(rec.Error)
			p.jobs[j.id] = j
			p.finishLocked(j)
		case store.StateCanceled:
			j.state = StateCanceled
			j.finished = rec.Finished
			p.jobs[j.id] = j
			p.finishLocked(j)
		default: // queued or running at crash time: requeue
			b, err := bundle.FromJSON(rec.Bundle, qop.ValidateOptions{AllowMidCircuit: p.opts.Run.AllowMidCircuit})
			if err != nil {
				// The journaled bundle no longer validates (schema drift,
				// torn result of an older bug): surface it as a failed
				// job instead of dropping the record on the floor.
				j.state = StateFailed
				j.err = fmt.Errorf("jobs: recovery: %w", err)
				j.finished = time.Now()
				p.met.failed.Inc()
				p.jobs[j.id] = j
				p.journal(store.Event{T: store.EvFailed, Job: j.id, At: j.finished, Error: j.err.Error()})
				p.finishLocked(j)
				p.log.Warn("job failed at recovery", "job", j.id, "trace", j.trace, "err", j.err)
				continue
			}
			j.state = StateQueued
			j.bundle = b
			j.shards = rec.Pin // explicit grant requests survive the crash
			j.spanLocked("queued", 0, "requeued after restart")
			p.jobs[j.id] = j
			p.pending = append(p.pending, j)
			p.met.requeued.Inc()
			p.log.Info("job requeued", "job", j.id, "trace", j.trace, "engine", j.engine)
		}
	}
	if maxID > p.nextID {
		p.nextID = maxID
	}
	if p.cache != nil {
		for _, key := range p.opts.Store.RecentResultKeys(p.opts.CacheSize) {
			if res, ok, err := p.opts.Store.GetResult(key); err == nil && ok {
				p.cache.put(key, res)
			}
		}
	}
}

// SubmitOptions carry per-job execution hints.
type SubmitOptions struct {
	// Shards pins the parallelism grant for this job (0 = let the
	// scheduler decide: MaxShards when the pool is otherwise idle at
	// start time, one shard when running alongside other jobs). Values
	// above Options.MaxShards are clamped.
	Shards int
	// TraceID is the inbound fleet-wide trace ID (X-Trace-Id). Empty or
	// invalid IDs are replaced with a fresh random one; the accepted ID
	// is in the returned Status and every journal event and log line.
	TraceID string
	// Profile turns on the kernel-granular execution profiler for this
	// job: the per-kernel table lands in the result's Meta["profile"] and
	// the status document's "profile" field. Observational only — counts
	// are bit-identical — but profiled jobs cache under a distinct key so
	// the table's presence is deterministic in the submission.
	Profile bool
}

// Submit registers the bundle as a job and enqueues it, returning the job
// ID immediately. If an identical submission (same canonical bundle JSON,
// shots and seed) already completed, the job is born terminal in StateDone
// with the cached result and never touches the queue; if one is currently
// executing, the job coalesces onto it and completes when it does. A
// saturated queue rejects with ErrQueueFull.
func (p *Pool) Submit(b *bundle.Bundle) (string, error) {
	st, err := p.submit(b, SubmitOptions{})
	return st.ID, err
}

// SubmitWith is Submit with per-job execution hints.
func (p *Pool) SubmitWith(b *bundle.Bundle, o SubmitOptions) (string, error) {
	st, err := p.submit(b, o)
	return st.ID, err
}

// submit does the work of Submit and additionally returns the job's
// status snapshot from the same critical section, so callers (the HTTP
// front-end) need no follow-up lookup that could miss an already-evicted
// record.
func (p *Pool) submit(b *bundle.Bundle, o SubmitOptions) (Status, error) {
	if b == nil {
		return Status{}, fmt.Errorf("jobs: nil bundle")
	}
	// The content address feeds both the result cache and in-flight
	// coalescing; profiled submissions key separately so the profile's
	// presence is deterministic in the submission.
	key, err := CacheKey(b)
	if err != nil {
		return Status{}, err
	}
	key = profiledKey(key, o.Profile)
	engine := resolveEngine(b)
	// The journal records the canonical bundle JSON so a job that is
	// queued or running at crash time can be reconstructed and requeued.
	var rawBundle json.RawMessage
	if p.opts.Store != nil {
		rawBundle, err = json.Marshal(b)
		if err != nil {
			return Status{}, fmt.Errorf("jobs: marshal bundle: %w", err)
		}
	}
	now := time.Now()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Status{}, ErrClosed
	}
	p.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%08d", p.nextID),
		trace:     obs.EnsureTraceID(o.TraceID),
		bundle:    b,
		key:       key,
		state:     StateQueued,
		engine:    engine,
		shards:    o.Shards,
		profile:   o.Profile,
		submitted: now,
		done:      make(chan struct{}),
	}
	if p.cache != nil {
		res, hit := p.cache.get(key)
		if !hit && p.opts.Store != nil {
			// Second-level lookup: the result may live on disk (from a
			// previous process life) without being in the memory LRU.
			if dres, ok, derr := p.opts.Store.GetResult(key); derr == nil && ok {
				res, hit = dres, true
				p.cache.put(key, dres)
				p.met.diskHits.Inc()
			}
		}
		if hit {
			j.state = StateDone
			j.res = res
			j.cacheHit = true
			j.profileDoc = profileRaw(res)
			j.finished = now
			j.spanLocked("queued", 0, "")
			j.spanLocked("done", 0, "cache hit")
			p.met.submitted.Inc()
			p.met.cacheHits.Inc()
			p.met.completed.Inc()
			p.jobs[j.id] = j
			p.journalCacheHitLocked(j, res)
			p.finishLocked(j)
			obs.Record(obs.FlightJobDone, j.id, "cache hit")
			p.log.Info("job done", "job", j.id, "trace", j.trace, "engine", j.engine, "cache_hit", true)
			return p.statusLocked(j), nil
		}
	}
	// In-flight coalescing: an identical job is executing right now, so
	// attach to its completion instead of queueing a duplicate run. The
	// duplicate occupies no queue slot and exerts no backpressure. The
	// journal still records it as an independent queued job: if the
	// process dies before the primary finishes, the waiter requeues on
	// its own at recovery.
	if primary, ok := p.inflight[key]; ok {
		attachLocked(primary, j)
		j.spanLocked("queued", 0, "coalesced onto "+primary.id)
		p.jobs[j.id] = j
		p.met.submitted.Inc()
		p.met.coalesced.Inc()
		p.journal(store.Event{T: store.EvSubmitted, Job: j.id, At: now, Trace: j.trace, Key: key, Engine: engine, Bundle: rawBundle, Pin: o.Shards, Profile: o.Profile})
		obs.Record(obs.FlightJobQueued, j.id, "coalesced onto "+primary.id)
		p.log.Info("job coalesced", "job", j.id, "trace", j.trace, "engine", engine, "primary", primary.id)
		return p.statusLocked(j), nil
	}
	if len(p.pending) >= p.opts.QueueDepth {
		p.met.rejected.Inc()
		return Status{}, ErrQueueFull
	}
	j.spanLocked("queued", 0, "")
	p.pending = append(p.pending, j)
	p.jobs[j.id] = j
	p.met.submitted.Inc()
	p.journal(store.Event{T: store.EvSubmitted, Job: j.id, At: now, Trace: j.trace, Key: key, Engine: engine, Bundle: rawBundle, Pin: o.Shards, Profile: o.Profile})
	obs.Record(obs.FlightJobQueued, j.id, "")
	p.log.Info("job queued", "job", j.id, "trace", j.trace, "engine", engine)
	p.cond.Signal()
	return p.statusLocked(j), nil
}

// attachLocked coalesces j onto the running primary. Callers hold p.mu.
func attachLocked(primary, j *job) {
	j.primary = primary
	primary.waiters = append(primary.waiters, j)
}

// journalCacheHitLocked records a submission that was born terminal from
// the result cache: a submitted event (no bundle — nothing will ever
// requeue it) followed by a done event referencing the content-addressed
// result, which is written to disk first if some earlier process life
// never persisted it. Callers hold p.mu.
func (p *Pool) journalCacheHitLocked(j *job, res *result.Result) {
	if p.opts.Store == nil {
		return
	}
	if !p.opts.Store.HasResult(j.key) {
		//lint:ignore journalerr best-effort backfill; failures count in store_journal_errors_total and the result stays served from cache
		_ = p.opts.Store.PutResult(j.key, res)
	}
	p.journal(store.Event{T: store.EvSubmitted, Job: j.id, At: j.submitted, Trace: j.trace, Key: j.key, Engine: j.engine})
	p.journal(store.Event{T: store.EvDone, Job: j.id, At: j.finished, Engine: j.engine, CacheHit: true, Result: j.key})
}

// finishLocked marks a job terminal: closes its done channel, drops the
// submission payload (only the result and status are ever read after a
// terminal transition), and evicts the oldest terminal records beyond
// Options.MaxRecords. Callers hold p.mu and must have set the terminal
// state and finished time already.
func (p *Pool) finishLocked(j *job) {
	close(j.done)
	j.bundle = nil
	if p.opts.MaxRecords < 0 {
		return
	}
	p.terminal = append(p.terminal, j.id)
	for len(p.terminal) > p.opts.MaxRecords {
		evicted := p.terminal[0]
		delete(p.jobs, evicted)
		p.terminal = p.terminal[1:]
		// Keep the journal's record table in lockstep with the pool's
		// bounded retention, so compaction can drop the evicted job's
		// lines and restarts replay the same bounded history.
		p.journal(store.Event{T: store.EvForget, Job: evicted, At: time.Now()})
	}
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.pending) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.pending) == 0 { // closed and drained
			p.mu.Unlock()
			return
		}
		j := p.pending[0]
		p.pending = p.pending[1:]
		p.mu.Unlock()
		p.runJob(j)
	}
}

func (p *Pool) runJob(j *job) {
	// j.sweep is assigned before the job ever enters the pending queue
	// (under p.mu at submit or recovery), and the worker dequeued j under
	// the same mutex, so this unlocked read is ordered.
	if j.sweep != nil {
		p.runSweepJob(j)
		return
	}
	p.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		p.mu.Unlock()
		return
	}
	// Re-check the cache at dequeue time: an identical job may have
	// completed while this one waited in the queue.
	if p.cache != nil {
		if res, ok := p.cache.get(j.key); ok {
			if p.opts.Store != nil && !p.opts.Store.HasResult(j.key) {
				// Backfill the content-addressed result file (an earlier
				// process life never persisted it) off-lock: its fsync must
				// not stall submitters. Cancel can take the job while the
				// lock is down, so re-check before going terminal; the
				// orphaned result file is harmless (content-addressed, and
				// the next identical job reuses it).
				p.mu.Unlock()
				//lint:ignore journalerr best-effort backfill; failures count in store_journal_errors_total and the result stays served from cache
				_ = p.opts.Store.PutResult(j.key, res)
				p.mu.Lock()
				if j.state != StateQueued {
					p.mu.Unlock()
					return
				}
			}
			j.state = StateDone
			j.res = res
			j.cacheHit = true
			j.profileDoc = profileRaw(res)
			j.finished = time.Now()
			j.spanLocked("done", j.finished.Sub(j.submitted), "cache hit at dequeue")
			p.met.queueWait.Observe(j.finished.Sub(j.submitted))
			p.met.cacheHits.Inc()
			p.met.completed.Inc()
			if p.opts.Store != nil {
				p.journal(store.Event{T: store.EvDone, Job: j.id, At: j.finished, Engine: j.engine, CacheHit: true, Result: j.key})
			}
			p.finishLocked(j)
			obs.Record(obs.FlightJobDone, j.id, "cache hit at dequeue")
			p.log.Info("job done", "job", j.id, "trace", j.trace, "engine", j.engine, "cache_hit", true)
			p.mu.Unlock()
			return
		}
	}
	// Coalesce at dequeue time too: an identical job that was queued
	// behind this one's twin is attached rather than re-executed. No
	// journal event — the job stays "queued" on disk and would requeue
	// standalone after a crash.
	if primary, ok := p.inflight[j.key]; ok && primary != j {
		attachLocked(primary, j)
		j.spanLocked("queued", 0, "coalesced onto "+primary.id)
		p.met.coalesced.Inc()
		p.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	p.running++
	p.inflight[j.key] = j
	// Shard grant: a job starting into an otherwise idle pool takes the
	// full cap so one big simulation spans every core; a job running
	// alongside others (or with more work queued) stays single-shard.
	granted := j.shards
	if granted <= 0 {
		if p.running == 1 && len(p.pending) == 0 {
			granted = p.opts.MaxShards
		} else {
			granted = 1
		}
	}
	if granted > p.opts.MaxShards {
		granted = p.opts.MaxShards
	}
	j.granted = granted
	if granted > 1 {
		p.met.wideJobs.Inc()
	}
	p.met.queueWait.Observe(j.started.Sub(j.submitted))
	j.spanLocked("started", j.started.Sub(j.submitted), fmt.Sprintf("shards=%d", granted))
	p.journal(store.Event{T: store.EvStarted, Job: j.id, At: j.started, Shards: granted})
	obs.Record(obs.FlightJobRunning, j.id, fmt.Sprintf("shards=%d", granted))
	p.log.Info("job started", "job", j.id, "trace", j.trace, "engine", j.engine, "shards", granted)
	runOpts := p.opts.Run
	runOpts.Shards = granted
	runOpts.Profile = j.profile
	// Per-stage timings from the engine become spans on this job; the
	// callback runs on the worker goroutine with p.mu released.
	runOpts.Stages = func(stage string, d time.Duration) {
		p.mu.Lock()
		j.spanLocked(stage, d, "")
		p.mu.Unlock()
	}
	p.mu.Unlock()

	res, err := rt.Submit(j.bundle, runOpts)

	// Persist the result before journaling the terminal transition, so a
	// "done" record on disk never references a missing result file. A
	// crash in between replays as "running" and simply re-runs the job —
	// deterministic in the cache key, so the rerun's counts are
	// identical.
	persisted := false
	if err == nil && res != nil && p.opts.Store != nil {
		persisted = p.opts.Store.PutResult(j.key, res) == nil
	}

	p.mu.Lock()
	j.finished = time.Now()
	p.running--
	if p.inflight[j.key] == j {
		delete(p.inflight, j.key)
	}
	p.met.runTime.Observe(j.finished.Sub(j.started))
	if persisted {
		j.spanLocked("persisted", 0, "")
	}
	if err != nil {
		j.state = StateFailed
		j.err = err
		j.spanLocked("failed", j.finished.Sub(j.started), "")
		p.met.failed.Inc()
		p.journal(store.Event{T: store.EvFailed, Job: j.id, At: j.finished, Engine: j.engine, Error: err.Error()})
		obs.Record(obs.FlightJobFailed, j.id, err.Error())
		p.log.Warn("job failed", "job", j.id, "trace", j.trace, "engine", j.engine, "err", err)
	} else {
		j.state = StateDone
		j.res = res
		j.profileDoc = profileRaw(res)
		if res != nil {
			j.engine = res.Engine
		}
		j.spanLocked("done", j.finished.Sub(j.started), "")
		p.met.completed.Inc()
		if p.cache != nil {
			p.cache.put(j.key, res)
		}
		p.journal(store.Event{T: store.EvDone, Job: j.id, At: j.finished, Engine: j.engine, Result: j.key})
		obs.RecordDur(obs.FlightJobDone, j.id, "", j.finished.Sub(j.started))
		p.log.Info("job done", "job", j.id, "trace", j.trace, "engine", j.engine, "run_ms", j.finished.Sub(j.started).Milliseconds())
	}
	p.finishLocked(j)
	waiters := j.waiters
	j.waiters = nil
	p.mu.Unlock()
	if len(waiters) == 0 {
		return
	}
	// Complete every coalesced duplicate with the primary's outcome.
	// Result copies (private per job, so sorting one job's entries cannot
	// race with another consumer of the same execution) are made outside
	// the critical section: the waiter count is not bounded by the queue
	// depth, and the pool lock must not be held for O(waiters × result).
	// The inflight entry is already gone, so no new duplicate can attach;
	// Cancel detaches waiters from j.waiters, but that slice is already
	// severed, so a waiter canceled in this window is caught by the state
	// check below instead.
	copies := make([]*result.Result, len(waiters))
	if err == nil && res != nil {
		for i := range waiters {
			copies[i] = copyResult(res)
		}
	}
	p.mu.Lock()
	for i, w := range waiters {
		if w.state != StateQueued { // canceled while attached
			continue
		}
		w.primary = nil
		w.finished = j.finished
		w.coalesced = true
		w.engine = j.engine
		if err != nil {
			w.state = StateFailed
			w.err = err
			w.spanLocked("failed", 0, "with primary "+j.id)
			p.met.failed.Inc()
			p.journal(store.Event{T: store.EvFailed, Job: w.id, At: w.finished, Engine: w.engine, Coalesced: true, Error: err.Error()})
			p.log.Warn("job failed", "job", w.id, "trace", w.trace, "engine", w.engine, "coalesced", true, "err", err)
		} else {
			w.state = StateDone
			w.res = copies[i]
			w.profileDoc = j.profileDoc
			w.spanLocked("done", 0, "with primary "+j.id)
			p.met.completed.Inc()
			p.journal(store.Event{T: store.EvDone, Job: w.id, At: w.finished, Engine: w.engine, Coalesced: true, Result: w.key})
			p.log.Info("job done", "job", w.id, "trace", w.trace, "engine", w.engine, "coalesced", true)
		}
		p.met.queueWait.Observe(w.finished.Sub(w.submitted))
		p.finishLocked(w)
	}
	p.mu.Unlock()
}

// Status returns a snapshot of the job's lifecycle.
func (p *Pool) Status(id string) (Status, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return p.statusLocked(j), nil
}

// statusLocked snapshots a job; callers hold p.mu.
func (p *Pool) statusLocked(j *job) Status {
	s := Status{
		ID:          j.id,
		Trace:       j.trace,
		State:       j.state,
		Engine:      j.engine,
		CacheHit:    j.cacheHit,
		Coalesced:   j.coalesced,
		Shards:      j.granted,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
		Spans:       append([]obs.Span(nil), j.spans...),
	}
	s.Profile = j.profileDoc
	if j.sweep != nil {
		s.Sweep = true
		s.Points = j.sweep.points
		s.PointsDone = j.sweep.completed
		if s.Points > 0 {
			s.Progress = float64(s.PointsDone) / float64(s.Points)
		}
		// Coarse ETA: extrapolate the remaining points from the average
		// duration of the ones already completed this run.
		if j.state == StateRunning && s.PointsDone > 0 && s.PointsDone < s.Points {
			elapsed := time.Since(j.started)
			s.ETA = elapsed / time.Duration(s.PointsDone) * time.Duration(s.Points-s.PointsDone)
		}
	}
	if j.state.Terminal() {
		s.Progress = 1
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	switch {
	case !j.started.IsZero():
		s.QueueWait = j.started.Sub(j.submitted)
		if !j.finished.IsZero() {
			s.RunTime = j.finished.Sub(j.started)
		}
	case !j.finished.IsZero(): // cache hit or canceled in queue
		s.QueueWait = j.finished.Sub(j.submitted)
	}
	return s
}

// Result returns the job's result once it is Done. A queued or running
// job returns ErrNotFinished; a failed job returns its execution error; a
// canceled job returns ErrCanceled. Repeated calls for the same job ID
// share one Result (the cache keeps private copies, so mutating it cannot
// poison other jobs) — concurrent readers of one job must coordinate
// before calling methods that reorder Entries, such as Sort.
func (p *Pool) Result(id string) (*result.Result, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case StateDone:
		if j.sweep != nil {
			return nil, fmt.Errorf("jobs: %q is a sweep; use SweepResult", id)
		}
		// A job recovered from the journal holds only the content
		// address of its result; load the file on first access.
		if j.res == nil && j.resKey != "" && p.opts.Store != nil {
			res, ok, err := p.opts.Store.GetResult(j.resKey)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("jobs: result file for %q (%s) is gone", id, j.resKey)
			}
			j.res = res
			j.profileDoc = profileRaw(res)
		}
		return j.res, nil
	case StateFailed:
		return nil, j.err
	case StateCanceled:
		return nil, fmt.Errorf("%w: %q", ErrCanceled, id)
	default:
		return nil, fmt.Errorf("%w: %q is %s", ErrNotFinished, id, j.state)
	}
}

// Cancel cancels a job that is still in the queue, including a duplicate
// that coalesced onto a running primary: the duplicate detaches and
// cancels alone — the primary and any other attached duplicates are
// untouched. Running jobs cannot be preempted (the backends are
// synchronous), and terminal jobs cannot be canceled.
func (p *Pool) Cancel(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.state {
	case StateQueued:
		if j.primary != nil {
			// Coalesced duplicate: detach only this waiter so the
			// primary stops referencing it (a long-running primary must
			// not pin every canceled duplicate in memory) and its
			// completion sweep no longer considers it.
			ws := j.primary.waiters
			for i, w := range ws {
				if w == j {
					j.primary.waiters = append(ws[:i], ws[i+1:]...)
					break
				}
			}
			j.primary = nil
		} else {
			// Drop the job from the pending FIFO (if a worker has not
			// already popped it) so the queue slot frees immediately and
			// backpressure relaxes without waiting for a worker.
			for i, q := range p.pending {
				if q == j {
					p.pending = append(p.pending[:i], p.pending[i+1:]...)
					break
				}
			}
		}
		j.state = StateCanceled
		j.finished = time.Now()
		j.spanLocked("canceled", j.finished.Sub(j.submitted), "")
		p.met.canceled.Inc()
		p.journal(store.Event{T: store.EvCanceled, Job: j.id, At: j.finished})
		obs.Record(obs.FlightJobCanceled, j.id, "")
		p.log.Info("job canceled", "job", j.id, "trace", j.trace)
		p.finishLocked(j)
		return nil
	case StateRunning:
		return fmt.Errorf("jobs: %q is running and cannot be preempted", id)
	default:
		return fmt.Errorf("jobs: %q is already %s", id, j.state)
	}
}

// Wait blocks until the job reaches a terminal state, then returns its
// status. The snapshot comes from the job record Wait already holds, so
// it stays valid even if the record is evicted from lookup (MaxRecords)
// while waiting.
func (p *Pool) Wait(id string) (Status, error) {
	p.mu.Lock()
	j, ok := p.jobs[id]
	p.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	<-j.done
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.statusLocked(j), nil
}

// Metrics returns the registry the pool's instruments live in (the one
// from Options.Metrics, or the pool's private registry). NewHandler
// serves it on GET /metrics.
func (p *Pool) Metrics() *obs.Registry { return p.reg }

// Stats returns a snapshot of the pool's aggregate counters, including
// the attached store's journal/result-file counters when persistent.
// The registry instruments are the system of record: the counters read
// back verbatim and the timing totals are the exact nanosecond sums of
// the queue-wait and run-time histograms, so /v1/stats and /metrics can
// never disagree.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Submitted = p.met.submitted.Value()
	s.Completed = p.met.completed.Value()
	s.Failed = p.met.failed.Value()
	s.Canceled = p.met.canceled.Value()
	s.Rejected = p.met.rejected.Value()
	s.CacheHits = p.met.cacheHits.Value()
	s.DiskHits = p.met.diskHits.Value()
	s.Coalesced = p.met.coalesced.Value()
	s.WideJobs = p.met.wideJobs.Value()
	s.Recovered = p.met.recovered.Value()
	s.Requeued = p.met.requeued.Value()
	s.Sweeps = p.met.sweeps.Value()
	s.SweepPoints = p.met.sweepPoints.Value()
	s.TotalQueue = time.Duration(p.met.queueWait.SumNanos())
	s.TotalRun = time.Duration(p.met.runTime.SumNanos())
	s.Build = obs.Build()
	s.Workers = p.opts.Workers
	s.QueueDepth = p.opts.QueueDepth
	s.QueueLen = len(p.pending)
	s.Running = p.running
	s.MaxShards = p.opts.MaxShards
	if p.cache != nil {
		s.CacheSize = p.cache.len()
	}
	if p.opts.Store != nil {
		s.Stats = p.opts.Store.Stats()
	}
	return s
}

// List returns status snapshots of every job the pool still tracks,
// newest first (job IDs are monotonic). A non-empty state filters; limit
// caps the result (<= 0: no cap).
func (p *Pool) List(state State, limit int) []Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.jobs))
	for id, j := range p.jobs {
		if state != "" && j.state != state {
			continue
		}
		ids = append(ids, id)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(ids)))
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	out := make([]Status, len(ids))
	for i, id := range ids {
		out[i] = p.statusLocked(p.jobs[id])
	}
	return out
}

// Close stops accepting submissions, drains the queue, and waits for the
// workers to exit. Jobs still queued at Close time are executed; their
// waiters complete with them. Submissions arriving while the pool drains
// fail fast with ErrClosed — they never block on the dying queue. The
// attached store (if any) is flushed to disk before Close returns, but
// not closed: the owner closes it once no more journaling can happen.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
	if p.opts.Store != nil {
		//lint:ignore journalerr final courtesy flush on shutdown; every event already met its policy's durability barrier when appended
		_ = p.opts.Store.Sync()
	}
}

// ResolveEngine mirrors runtime.Submit's engine selection for status
// reporting without executing anything: the context's explicit engine,
// else the scheduler's choice, else empty (such a job will fail with the
// scheduler's error when it runs). The fleet dispatcher uses it to
// journal and report an engine for jobs it forwards rather than runs.
func ResolveEngine(b *bundle.Bundle) string { return resolveEngine(b) }

// resolveEngine mirrors runtime.Submit's engine selection for status
// reporting: the context's explicit engine, else the scheduler's choice,
// else empty (the job will fail with the scheduler's error when it runs).
func resolveEngine(b *bundle.Bundle) string {
	if b.Context != nil && b.Context.Exec != nil && b.Context.Exec.Engine != "" {
		return b.Context.Exec.Engine
	}
	if engine, err := rt.SelectEngine(b); err == nil {
		return engine
	}
	return ""
}
