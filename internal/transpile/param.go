package transpile

import (
	"repro/internal/circuit"
	"repro/internal/gates"
)

// TranspileParametric transpiles a circuit carrying symbolic parameter
// references so that binding commutes with transpilation: for every
// bind vector v under which no symbolic rotation's angle is ≡ 0
// (mod 2π), Transpile(c.BindValues(v), opts).Circuit equals
// result.Circuit.BindValues(v) instruction for instruction, and the
// reported Stats match what the concrete transpile would report (all
// stats fields are structural, never value-dependent).
//
// ok=false means the options or circuit fall outside the supported fast
// path — basis-gate decomposition, coupling-map routing, optimization
// level ≥ 2, or a level-1 merge opportunity adjacent to a symbolic
// rotation (a summed angle has no single-reference representation).
// Callers then transpile each bound point concretely; correctness is
// never at stake, only the compile-once speedup.
func TranspileParametric(c *circuit.Circuit, opts Options) (*Result, bool, error) {
	if len(opts.BasisGates) > 0 || len(opts.CouplingMap) > 0 || opts.OptimizationLevel >= 2 {
		return nil, false, nil
	}
	stats := Stats{
		DepthBefore: c.Depth(),
		TwoQBefore:  c.TwoQubitCount(),
		SizeBefore:  c.Size(),
	}
	// With no basis and no coupling map, Decompose and Route are
	// identity passes; the concrete pipeline reduces to OptimizeBasis
	// applied twice (before and after the no-op router).
	out := c.Copy()
	if opts.OptimizationLevel >= 1 {
		var ok bool
		if out.Instrs, ok = onePassParam(out.Instrs); !ok {
			return nil, false, nil
		}
		if out.Instrs, ok = onePassParam(out.Instrs); !ok {
			return nil, false, nil
		}
	}
	stats.DepthAfter = out.Depth()
	stats.TwoQAfter = out.TwoQubitCount()
	stats.SizeAfter = out.Size()
	return &Result{Circuit: out, Layout: identityLayout(c.NumQubits), Stats: stats}, true, nil
}

// ParamAngleZero reports whether any symbolic rotation in c binds to an
// angle ≡ 0 (mod 2π) under values. Level-1 optimization of the bound
// concrete circuit would drop such a rotation — a structural change the
// parametric template cannot express — so a bind hitting this condition
// must fall back to the concrete pipeline for that point.
func ParamAngleZero(c *circuit.Circuit, values []float64) bool {
	for i := range c.Instrs {
		ins := &c.Instrs[i]
		if ins.Op != circuit.OpGate || !isRotation(ins.Gate) || !ins.Symbolic() {
			continue
		}
		for _, r := range ins.Refs {
			if r.Index >= 0 && r.Index < len(values) && angleZero(r.Scale*values[r.Index]) {
				return true
			}
		}
	}
	return false
}

// onePassParam is onePass(…, lookThrough=false) lifted to circuits with
// symbolic parameter references. onePass's structure decisions — which
// pairs merge or cancel, where the look-ahead breaks — depend only on
// gate names and operands; the value-dependent decisions are the
// zero-angle drops. Symbolic rotations are therefore kept verbatim
// (ParamAngleZero catches the dropped-at-bind case), and a merge whose
// pair involves a symbolic rotation reports ok=false: unsupported.
func onePassParam(instrs []circuit.Instruction) ([]circuit.Instruction, bool) {
	var out []circuit.Instruction
	removed := make([]bool, len(instrs))
	for i := 0; i < len(instrs); i++ {
		if removed[i] {
			continue
		}
		ins := instrs[i]
		if ins.Op != circuit.OpGate {
			out = append(out, ins)
			continue
		}
		sym := ins.Symbolic()
		if sym && !isRotation(ins.Gate) {
			// Only rotations have a defined symbolic peephole story.
			return nil, false
		}
		if !sym {
			if ins.Gate == gates.I {
				continue
			}
			if isRotation(ins.Gate) && angleZero(ins.Params[0]) {
				continue
			}
		}
		matched := false
		for j := i + 1; j < len(instrs); j++ {
			if removed[j] {
				continue
			}
			next := instrs[j]
			if next.Op != circuit.OpGate {
				break
			}
			if isRotation(ins.Gate) && next.Gate == ins.Gate && sameOperands(ins, next) {
				if sym || next.Symbolic() {
					return nil, false
				}
				merged := ins
				merged.Params = []float64{ins.Params[0] + next.Params[0]}
				removed[j] = true
				if !angleZero(merged.Params[0]) {
					out = append(out, merged)
				}
				matched = true
				break
			}
			if inverseOf(ins, next) {
				removed[j] = true
				matched = true
				break
			}
			break
		}
		if !matched {
			out = append(out, ins)
		}
	}
	return out, true
}
