package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// The flight recorder is the always-on black box: a fixed-size lock-free
// ring of the most recent structured events across every layer — job
// transitions, kernel-batch completions, fleet forwards and detaches,
// journal fsync stalls. It costs one small allocation and one atomic
// store per event, so it stays on in production; /debug/events on the
// -debug-addr listener dumps it, and the Recover middleware appends its
// tail to every panic report so a post-mortem starts with the last things
// the process did rather than with log archaeology.

// Flight event kinds. The set is a fixed enum by convention — recording
// sites must not invent per-job kinds (the job ID goes in the Job field).
const (
	FlightJobQueued    = "job_queued"
	FlightJobRunning   = "job_running"
	FlightJobDone      = "job_done"
	FlightJobFailed    = "job_failed"
	FlightJobCanceled  = "job_canceled"
	FlightKernelBatch  = "kernel_batch"
	FlightFleetForward = "fleet_forward"
	FlightFleetDetach  = "fleet_detach"
	FlightFleetEject   = "fleet_eject"
	FlightFleetReadmit = "fleet_readmit"
	FlightFsyncStall   = "fsync_stall"
	FlightSweepRange   = "sweep_range"
)

// FlightEvent is one recorded entry. Seq is a process-wide monotonic
// sequence number; events with higher Seq happened later.
type FlightEvent struct {
	Seq   uint64    `json:"seq"`
	At    time.Time `json:"at"`
	Kind  string    `json:"kind"`
	Job   string    `json:"job,omitempty"`
	Note  string    `json:"note,omitempty"`
	DurNs int64     `json:"dur_ns,omitempty"`
}

// Flight is a fixed-size lock-free ring of recent events. Writers claim a
// sequence number with one atomic add and publish the event with one
// atomic pointer store; readers snapshot without blocking writers. The
// zero of a slot (nil) means "never written". A nil *Flight records
// nothing, so wiring is optional everywhere.
type Flight struct {
	mask uint64
	seq  atomic.Uint64
	slot []atomic.Pointer[FlightEvent]
}

// NewFlight returns a ring holding at least size events (rounded up to a
// power of two, minimum 16).
func NewFlight(size int) *Flight {
	n := 16
	for n < size && n < 1<<16 {
		n <<= 1
	}
	return &Flight{mask: uint64(n - 1), slot: make([]atomic.Pointer[FlightEvent], n)}
}

var defaultFlight = NewFlight(512)

// DefaultFlight is the process-wide ring. Library layers record here;
// servers mount its Handler on the debug listener.
func DefaultFlight() *Flight { return defaultFlight }

// Record appends kind/job/note to the process-wide ring.
func Record(kind, job, note string) { defaultFlight.RecordDur(kind, job, note, 0) }

// RecordDur appends an event carrying a duration to the process-wide ring.
func RecordDur(kind, job, note string, d time.Duration) {
	defaultFlight.RecordDur(kind, job, note, d)
}

// Record appends one event, overwriting the oldest once the ring is full.
func (f *Flight) Record(kind, job, note string) { f.RecordDur(kind, job, note, 0) }

// RecordDur appends one event carrying a duration. Safe for concurrent
// use from any goroutine, including under mutexes: it never blocks.
func (f *Flight) RecordDur(kind, job, note string, d time.Duration) {
	if f == nil {
		return
	}
	ev := &FlightEvent{At: time.Now(), Kind: kind, Job: job, Note: note, DurNs: d.Nanoseconds()}
	ev.Seq = f.seq.Add(1) - 1
	f.slot[ev.Seq&f.mask].Store(ev)
}

// Events snapshots the ring, oldest first. Events overwritten while the
// snapshot runs may be missing; the sequence numbers expose any gap.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	evs := make([]FlightEvent, 0, len(f.slot))
	for i := range f.slot {
		if p := f.slot[i].Load(); p != nil {
			evs = append(evs, *p)
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// Tail returns the newest n events, oldest first.
func (f *Flight) Tail(n int) []FlightEvent {
	evs := f.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// Len reports how many events have ever been recorded (not the ring
// capacity).
func (f *Flight) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Handler serves the ring as JSON: {"recorded": N, "events": [...]}. It
// belongs on the -debug-addr listener next to pprof and /metrics.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		evs := f.Events()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"recorded": f.Len(), "events": evs})
	})
}

// flightSummary renders events as one compact line for log records (the
// panic report): "kind job note" entries joined by " | ".
func flightSummary(evs []FlightEvent) string {
	if len(evs) == 0 {
		return ""
	}
	var b strings.Builder
	for i, ev := range evs {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(ev.At.Format("15:04:05.000"))
		b.WriteByte(' ')
		b.WriteString(ev.Kind)
		if ev.Job != "" {
			b.WriteByte(' ')
			b.WriteString(ev.Job)
		}
		if ev.Note != "" {
			b.WriteByte(' ')
			b.WriteString(ev.Note)
		}
	}
	return b.String()
}
