// QEC as execution context (paper §4.3.2 / Listing 5): the same logical
// Max-Cut program runs with and without an error-correction policy, and
// across code families and distances, by swapping only the context's qec
// block. Operator descriptors never change; the middle layer reports what
// each policy costs and buys.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/qdt"
	"repro/internal/qec"
	"repro/internal/runtime"
)

func main() {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.3927}, []float64{1.1781})
	if err != nil {
		log.Fatal(err)
	}

	base := ctxdesc.NewGate("gate.statevector", 1024, 42)
	bare, err := bundle.New([]*qdt.DataType{reg}, seq, base)
	if err != nil {
		log.Fatal(err)
	}
	bareFP, _ := bare.Fingerprint()

	fmt.Println("policy                        phys qubits   rounds   logical err/op")
	fmt.Printf("none (bare physical)          %11d   %6d   %.1e (= physical rate)\n", 4, 0, 1e-3)
	for _, d := range []int{3, 5, 7, 9} {
		pol := &ctxdesc.QEC{CodeFamily: "surface", Distance: d, Allocator: "auto",
			LogicalGateSet: []string{"H", "S", "CNOT", "T", "MEASURE_Z"}, PhysErrorRate: 1e-3}
		ctx := base.Clone()
		ctx.QEC = pol
		b := bare.WithContext(ctx)
		res, err := runtime.Submit(b, runtime.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ov, ok := res.Meta["qec"].(qec.Overhead)
		if !ok {
			log.Fatal("qec overhead missing")
		}
		fp, _ := b.Fingerprint()
		if fp != bareFP {
			log.Fatal("intent fingerprint changed under QEC context")
		}
		fmt.Printf("surface d=%-2d                  %11d   %6d   %.1e\n",
			d, ov.Allocation.PhysicalQubits, ov.RoundOverhead, ov.LogicalError)
	}
	fmt.Println("\n(Listing 5: distance-7 surface code; intent fingerprints identical across all runs)")

	// Executable decoder: repetition-code syndrome extraction.
	fmt.Println("\nrepetition-code syndrome extraction, d=5, 5 rounds, p=0.02, logical |1⟩:")
	decoded, syndromes, err := qec.SyndromeExtraction(5, 5, 0.02, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	for round, syn := range syndromes {
		fmt.Printf("  round %d syndromes: %v\n", round, syn)
	}
	fmt.Printf("  decoded logical value: %d (encoded 1)\n", decoded)

	// Monte Carlo vs closed form.
	mc, err := qec.SimulateRepetition(5, 0.05, 100000, 7)
	if err != nil {
		log.Fatal(err)
	}
	exact, _ := qec.LogicalErrorRate(&ctxdesc.QEC{CodeFamily: "repetition", Distance: 5}, 0.05)
	fmt.Printf("\nrepetition d=5 @ p=0.05: Monte Carlo %.5f vs closed form %.5f\n", mc.Rate, exact)
}
