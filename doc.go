// Package repro is a Go reproduction of "An HPC-Inspired Blueprint for a
// Technology-Agnostic Quantum Middle Layer" (Markidis, Netzer, Pennati,
// Peng — SC Workshops '25, arXiv:2510.07079).
//
// The middle layer lets a program state its intent once — typed quantum
// registers (internal/qdt) and logical operator descriptors (internal/qop)
// — while execution policy travels separately in a context descriptor
// (internal/ctxdesc). The same intent bundle (internal/bundle) then runs
// on a gate-model statevector engine, a simulated annealer, or a pulse
// model (internal/backend) without modification.
//
// The statevector engine (internal/sim) is a compile-then-execute kernel
// machine: circuits compile into fused kernel plans (single-qubit runs
// fold into one matrix, diagonal gates merge into phase tables, CX/CZ/CP/
// SWAP chains on a qubit pair fold with their surrounding single-qubit
// gates into dense 4×4 kernels, lone controlled permutations specialize)
// swept in cache-blocked order by a persistent shard pool that barriers
// between kernels. A dense 4×4 kernel that finalizes as permutation ×
// phase — a pure CX/CZ/SWAP chain — executes on a monomial fast path: 4
// complex multiplies per amplitude quadruple instead of the dense
// sweep's 16 multiplies and 12 adds (~2.3× on chain-heavy circuits).
// The per-job shard grant is a scheduling decision of the serving layer
// — see below.
//
// Amplitudes live in a structure-of-arrays layout: split real and
// imaginary float64 planes, each 64-byte aligned, so sweep bodies are
// autovectorizable scalar float loops instead of interleaved complex128
// arithmetic; kernel matrices and phase tables split once at compile
// time. Shard workers first-touch their own contiguous plane ranges at
// state creation, placing pages with their owners on NUMA machines. The
// split expressions group exactly as complex128 arithmetic, so sampled
// counts for a fixed bundle+shots+seed are bit-identical to the
// interleaved layout — the result cache and fleet re-run guarantees
// rest on this.
//
// # Serving layer
//
// On top of the one-shot runtime sits the asynchronous serving subsystem
// (internal/jobs): a job scheduler in the consumption model of production
// quantum services (IBM Quantum's job API, D-Wave Leap). A jobs.Pool
// accepts bundles, assigns job IDs, and executes them on a fixed worker
// pool fed from a bounded queue — saturation rejects immediately
// (backpressure) instead of stalling submitters. Identical submissions
// (same canonical bundle JSON, shots and seed) are deduplicated through a
// content-addressed LRU result cache, sound because every stochastic
// stage is seeded; a duplicate of a job that is currently executing
// coalesces onto the in-flight run instead of executing twice. Each job
// records its lifecycle (queued → running → done/failed, or canceled
// while queued) with queue-wait and run-time metrics.
//
// The pool is also the statevector shard scheduler: a job starting into
// an otherwise idle pool is granted every shard (one big simulation spans
// all cores), while jobs running alongside others stay single-shard so
// concurrent throughput is undisturbed. POST /v1/jobs?shards=N pins the
// grant per job; /v1/stats reports max_shards, wide_jobs and coalesced.
//
// The serving layer is durable (internal/jobs/store): with a data
// directory attached, every job transition appends to an append-only
// JSONL journal (explicit fsync policy — including a group-commit mode
// where concurrent appenders share one fsync barrier — compacted once
// terminal records dominate) and results persist as content-addressed
// files. A restart replays the journal — terminal jobs keep answering
// status/result lookups, work that was queued or running when the
// process died is requeued under its original ID and re-run to the same
// counts (execution is deterministic in bundle+shots+seed), and a torn
// final journal line from a mid-append crash is dropped, not fatal.
//
// # Fleet dispatch
//
// The serving layer scales past one machine with internal/fleet: a
// dispatcher that fronts N worker qmlserve nodes over the same /v1
// protocol the workers speak, so workers need zero changes to join a
// fleet and clients cannot tell the front-end from a single node
// (qmlserve -dispatch w1,w2,...). Routing is load-aware (least
// outstanding dispatched jobs) with cache-key affinity via consistent
// hashing — identical bundles land on the worker that already caches
// their result, and duplicates of an in-flight job are pinned to its
// worker so coalescing keeps working fleet-wide. A prober ejects workers
// after consecutive /v1/stats failures (their keys rehash minimally to
// the survivors) and readmits them on recovery; every dispatcher→worker
// call carries a timeout so a hung node can never wedge a dispatcher
// goroutine. With a journal attached the dispatcher records every
// accepted job and worker assignment: a worker SIGKILLed mid-job has its
// jobs re-forwarded and re-run to identical counts elsewhere, and a
// dispatcher restart replays the journal, re-polls workers for in-flight
// state, and keeps answering status/result for pre-crash jobs.
//
// # Parametric plans and sweeps
//
// Variational workloads (QAOA, QML training) submit thousands of
// circuits that differ only in rotation angles. The stack separates
// circuit structure from numeric parameters once at the bottom and
// exploits it at every layer above. Gate angles may be symbolic: an
// algolib descriptor carries a "$name" marker instead of a number
// (algolib.BuildQAOASymbolic, SymbolicParam) and LowerParametric emits
// the same circuit a concrete lowering would, with ParamRefs in place
// of constants. sim.CompileParametric compiles that circuit ONCE into a
// ParamPlan whose fusion structure, statistics and kernel order are
// bind-invariant; Bind(values) re-derives only the kernels whose
// matrices actually depend on a parameter and returns an ordinary Plan.
//
// One layer up, a bundle whose context carries a sweep block (parameter
// names + a point grid) is a sweep job: jobs.Pool.SubmitSweep accepts
// the whole grid as ONE job — one journal record, one queue slot —
// fanning out per point, with every point materialized by
// bundle.BindPoint into exactly the concrete bundle a caller would have
// submitted for that point alone. Per-point cache keys, fingerprints
// and sampled counts are therefore bit-identical to individual
// concrete-angle submissions — the determinism invariant the cache and
// replication story rests on. Over HTTP the grid is POST /v1/sweeps and
// the indexed result set is GET /v1/sweeps/{id}; GET /v1/jobs/{id}
// supports long-polling via ?wait=<duration> on both tiers. The fleet
// dispatcher scatters a sweep point-range-wise across healthy workers
// as independent sub-sweeps and re-forwards only the unfinished ranges
// when a worker dies; the merged, re-indexed result set is
// indistinguishable from a single-node run of the same grid.
//
// # Observability
//
// Every layer reports through internal/obs, a stdlib-only telemetry
// package: atomic counters, gauges and fixed-bucket histograms in a
// named registry, exposed in Prometheus text format on GET /metrics
// (worker and dispatcher alike). The instruments are the system of
// record — /v1/stats reads the same counters back — so the two surfaces
// can never disagree. Histograms time the stages that matter: queue
// wait, compile/execute/sample inside the engine, journal append and
// fsync, and the dispatcher→worker round trip.
//
// # Profiling and the flight recorder
//
// Kernel-granular execution profiling is opt-in per submission: POST
// /v1/jobs (or /v1/sweeps) with a top-level "profile": true flag — or
// ?profile=true — runs the statevector plan with per-kernel timers on,
// and the job's status document gains a "profile" kernel table next to
// the span log: one row per compiled kernel with its kind, qubit
// support mask, wall time, per-shard min/max sweep times and the
// max/mean imbalance ratio. The table's total tracks the execute stage
// span, so an operator reads exactly where a slow job's time went —
// and whether the shards shared it evenly — from the status endpoint
// alone. Profiled sweeps aggregate per-point tables into per-kind
// totals; the fleet dispatcher forwards the flag to whichever worker
// runs the job (it survives re-forwarding after a worker death) and
// proxies the table back opaquely. Profiling is observational only:
// counts are bit-identical with it on or off, and profiled submissions
// cache under a distinct key so a status document's kernel table is
// deterministic in the submission. Independent of the opt-in profiler,
// every executed kernel feeds always-on per-kind labeled instruments
// (sim_kernels_total, sim_kernel_seconds) on /metrics.
//
// The flight recorder (obs.Flight) is the always-on black box: a
// fixed-size lock-free ring of recent structured events — job
// transitions, kernel-batch completions, fleet forwards/detaches/
// ejects/readmits, journal fsync stalls — dumped as JSON at
// GET /debug/events on the -debug-addr listener and appended to every
// panic report, so a post-mortem starts from the last things the
// process did.
//
// Work is traceable fleet-wide: POST /v1/jobs accepts (or generates,
// then echoes) an X-Trace-Id; the dispatcher forwards it to whichever
// worker runs the job, both tiers journal it with every event, and
// GET /v1/jobs/{id} returns it with a per-job span log (queued →
// assigned → started → done, with durations) on either tier. All
// process output is structured log/slog (-log-format=text|json) tagged
// with trace, job and worker fields, and -debug-addr opts into a
// separate listener serving net/http/pprof plus a second /metrics.
// Handlers are wrapped in panic-recovery middleware that logs the
// stack and counts http_panics_total instead of killing the process.
//
// # Invariants and static enforcement
//
// The guarantees above are load-bearing: the result cache, crash
// requeue and fleet re-forwarding assume a fixed bundle+shots+seed
// samples bit-identical counts; the dispatcher assumes no fsync ever
// runs under its lock; the SoA sweeps assume no interleaved complex128
// arithmetic creeps back in; and the durability story assumes journal
// errors are never silently dropped. Rather than living in doc comments
// and reviewer memory, these contracts are enforced mechanically by
// cmd/simvet, a stdlib-only static-analysis driver over the custom
// analyzer suite in internal/lint (determinism, lockblock, soacomplex,
// obsconv, journalerr — see that package's doc for each contract and
// the //lint:ignore annotation syntax). CI runs
//
//	go run ./cmd/simvet ./...
//
// as a required gate alongside vet/build/test, so every future change
// is checked against the invariants automatically.
//
// Two consumers wrap the pool. cmd/qmlserve exposes it over HTTP
// (stdlib net/http) speaking the job.json schema:
//
//	qmlserve -addr :8080 -workers 8 -queue 256 -cache 4096 -data-dir /var/lib/qmlserve
//	curl -s -X POST --data-binary @job.json localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-00000001          # lifecycle + timing
//	curl -s localhost:8080/v1/jobs/job-00000001/result   # decoded entries
//	curl -s 'localhost:8080/v1/jobs?state=done'          # history, survives restarts
//	curl -s localhost:8080/v1/engines                    # registry contents
//	curl -s localhost:8080/v1/stats                      # counters incl. cache_hits
//
// and cmd/qmlrun -parallel runs a batch of job files concurrently on the
// same scheduler. The backend registry is concurrency-safe and accepts
// injected engines via backend.Register, which is how the jobs tests
// substitute fakes.
//
// See README.md for the architecture tour, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmark harness in bench_test.go
// regenerates every quantitative artifact; cmd/qmlbench prints them as
// tables.
package repro
