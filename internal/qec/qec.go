// Package qec implements the error-correction context service (paper
// §4.3.2): the orthogonal component that binds logical registers to
// physical patches, accounts for syndrome-extraction rounds, and estimates
// logical error rates — all driven by the context descriptor's qec block,
// never by the operator descriptors, so the same logical program runs
// unmodified with or without QEC.
//
// Two code families are realized:
//
//   - "repetition": a distance-d bit-flip repetition code, simulated
//     exactly — Monte Carlo error injection with a majority decoder,
//     cross-checked against the closed-form binomial logical error rate.
//   - "surface": a rotated surface code *resource model*: d² data qubits
//     plus d²−1 syndrome qubits per patch and the standard sub-threshold
//     scaling p_L ≈ A·(p/p_th)^⌈d/2⌉ for its logical error rate. A full
//     surface-code decoder is out of scope; the model preserves exactly
//     the behaviour the middle layer consumes (resource counts growing
//     with d², error rates falling exponentially in d below threshold).
package qec

import (
	"fmt"
	"math"

	"repro/internal/ctxdesc"
	"repro/internal/rng"
)

// Surface-code model constants: threshold and prefactor of the standard
// sub-threshold scaling fit.
const (
	SurfaceThreshold = 0.01
	SurfacePrefactor = 0.1
)

// Allocation describes the physical resources one QEC policy binds for a
// logical register.
type Allocation struct {
	CodeFamily         string
	Distance           int
	LogicalQubits      int
	DataQubits         int // per all patches
	SyndromeQubits     int
	PhysicalQubits     int // data + syndrome
	RoundsPerLogicalOp int
}

// Allocate computes the physical footprint for width logical qubits under
// the policy.
func Allocate(policy *ctxdesc.QEC, width int) (*Allocation, error) {
	if policy == nil {
		return nil, fmt.Errorf("qec: nil policy")
	}
	if width < 1 {
		return nil, fmt.Errorf("qec: logical width %d < 1", width)
	}
	if policy.Distance < 1 || policy.Distance%2 == 0 {
		return nil, fmt.Errorf("qec: distance %d must be odd and positive", policy.Distance)
	}
	d := policy.Distance
	a := &Allocation{CodeFamily: policy.CodeFamily, Distance: d, LogicalQubits: width}
	switch policy.CodeFamily {
	case "repetition":
		a.DataQubits = width * d
		a.SyndromeQubits = width * (d - 1)
	case "surface":
		a.DataQubits = width * d * d
		a.SyndromeQubits = width * (d*d - 1)
	default:
		return nil, fmt.Errorf("qec: unknown code family %q", policy.CodeFamily)
	}
	a.PhysicalQubits = a.DataQubits + a.SyndromeQubits
	a.RoundsPerLogicalOp = policy.Rounds
	if a.RoundsPerLogicalOp == 0 {
		a.RoundsPerLogicalOp = d
	}
	return a, nil
}

// LogicalErrorRate returns the per-logical-operation error probability
// under i.i.d. physical error rate p per round.
func LogicalErrorRate(policy *ctxdesc.QEC, p float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("qec: physical error rate %v out of [0,1)", p)
	}
	d := policy.Distance
	if d < 1 || d%2 == 0 {
		return 0, fmt.Errorf("qec: distance %d must be odd and positive", d)
	}
	switch policy.CodeFamily {
	case "repetition":
		return repetitionLogicalError(d, p), nil
	case "surface":
		if p == 0 {
			return 0, nil
		}
		pl := SurfacePrefactor * math.Pow(p/SurfaceThreshold, float64(d+1)/2)
		if pl > 1 {
			pl = 1
		}
		return pl, nil
	}
	return 0, fmt.Errorf("qec: unknown code family %q", policy.CodeFamily)
}

// repetitionLogicalError is the exact majority-decoder failure rate:
// P[more than d/2 of d bits flip] under i.i.d. flips with probability p.
func repetitionLogicalError(d int, p float64) float64 {
	total := 0.0
	for k := d/2 + 1; k <= d; k++ {
		total += binomialPMF(d, k, p)
	}
	return total
}

func binomialPMF(n, k int, p float64) float64 {
	// Exact via logs to stay stable for larger n.
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	logC := lgamma(float64(n+1)) - lgamma(float64(k+1)) - lgamma(float64(n-k+1))
	return math.Exp(logC + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// CorrectionResult reports a Monte Carlo decoding experiment.
type CorrectionResult struct {
	Trials        int
	LogicalErrors int
	Rate          float64
}

// SimulateRepetition injects i.i.d. bit flips into a distance-d repetition
// code and decodes by majority vote, returning the observed logical error
// rate. This is the executable half that validates the closed form.
func SimulateRepetition(d int, p float64, trials int, seed uint64) (*CorrectionResult, error) {
	if d < 1 || d%2 == 0 {
		return nil, fmt.Errorf("qec: distance %d must be odd and positive", d)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("qec: flip probability %v out of [0,1]", p)
	}
	if trials < 1 {
		return nil, fmt.Errorf("qec: trials %d < 1", trials)
	}
	r := rng.New(seed)
	errors := 0
	for t := 0; t < trials; t++ {
		flips := 0
		for i := 0; i < d; i++ {
			if r.Float64() < p {
				flips++
			}
		}
		if flips > d/2 {
			errors++
		}
	}
	return &CorrectionResult{Trials: trials, LogicalErrors: errors, Rate: float64(errors) / float64(trials)}, nil
}

// SyndromeExtraction simulates rounds of repetition-code stabilizer
// measurement on one logical qubit: data bits accumulate flips with
// probability p per round, each round records the d−1 parity syndromes,
// and the decoder majority-votes the final data word. It returns whether
// the decoded logical value matches the encoded one, exercising the
// "insert syndrome-extraction rounds and choose a decoder" path of §4.3.2.
func SyndromeExtraction(d, rounds int, p float64, logical uint8, seed uint64) (decoded uint8, syndromes [][]uint8, err error) {
	if d < 1 || d%2 == 0 {
		return 0, nil, fmt.Errorf("qec: distance %d must be odd and positive", d)
	}
	if rounds < 1 {
		return 0, nil, fmt.Errorf("qec: rounds %d < 1", rounds)
	}
	if logical > 1 {
		return 0, nil, fmt.Errorf("qec: logical value %d not a bit", logical)
	}
	r := rng.New(seed)
	data := make([]uint8, d)
	for i := range data {
		data[i] = logical
	}
	syndromes = make([][]uint8, rounds)
	for round := 0; round < rounds; round++ {
		for i := range data {
			if r.Float64() < p {
				data[i] ^= 1
			}
		}
		syn := make([]uint8, d-1)
		for i := 0; i+1 < d; i++ {
			syn[i] = data[i] ^ data[i+1]
		}
		syndromes[round] = syn
		// Decode-and-correct each round (single-round majority repair of
		// isolated flips flagged by adjacent syndromes).
		for i := 0; i+1 < len(syn); i++ {
			if syn[i] == 1 && syn[i+1] == 1 {
				data[i+1] ^= 1
				syn[i], syn[i+1] = 0, 0
			}
		}
	}
	ones := 0
	for _, b := range data {
		ones += int(b)
	}
	if ones > d/2 {
		decoded = 1
	}
	return decoded, syndromes, nil
}

// Overhead summarizes what a QEC context costs relative to the bare
// logical program — the E7 quantity.
type Overhead struct {
	Allocation     *Allocation
	QubitOverhead  float64 // physical / logical qubits
	RoundOverhead  int     // syndrome rounds per logical op
	LogicalError   float64 // per logical op at the policy's phys_error_rate
	UnprotectedErr float64 // physical error rate (what you'd eat without QEC)
}

// Estimate computes the overhead for running width logical qubits under
// the policy.
func Estimate(policy *ctxdesc.QEC, width int) (*Overhead, error) {
	alloc, err := Allocate(policy, width)
	if err != nil {
		return nil, err
	}
	p := policy.PhysErrorRate
	le, err := LogicalErrorRate(policy, p)
	if err != nil {
		return nil, err
	}
	return &Overhead{
		Allocation:     alloc,
		QubitOverhead:  float64(alloc.PhysicalQubits) / float64(width),
		RoundOverhead:  alloc.RoundsPerLogicalOp,
		LogicalError:   le,
		UnprotectedErr: p,
	}, nil
}

// CheckLogicalGateSet verifies that the requested operations are within
// the policy's fault-tolerant gate set (Listing 5's logical_gate_set
// "constrains synthesis to fault-tolerant primitives"). An empty set
// allows everything.
func CheckLogicalGateSet(policy *ctxdesc.QEC, required []string) error {
	if len(policy.LogicalGateSet) == 0 {
		return nil
	}
	allowed := map[string]bool{}
	for _, g := range policy.LogicalGateSet {
		allowed[g] = true
	}
	for _, g := range required {
		if !allowed[g] {
			return fmt.Errorf("qec: logical gate %q is not in the fault-tolerant gate set %v", g, policy.LogicalGateSet)
		}
	}
	return nil
}
