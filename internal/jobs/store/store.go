// Package store is the serving layer's persistence subsystem: an
// append-only JSONL journal of job lifecycle events plus content-addressed
// result files, giving jobs.Pool (and cmd/qmlserve via -data-dir) durable
// job history and crash-safe restarts.
//
// # Journal
//
// Every job state transition appends one JSON line to journal.jsonl:
// submitted (with the canonical bundle JSON, cache key and engine),
// started (with the shard grant), done (with the result's content
// address), failed (with the error), canceled, and forget (record
// eviction). Replay folds the lines into a per-job Record table with
// last-writer-wins merge semantics, so the same rules decode both a live
// journal and a compacted one. The submitted event carries the full
// bundle so a job that was queued or running at crash time can be
// reconstructed and requeued by the pool — accepted work is never
// silently dropped. Terminal events drop the bundle from the table (only
// status and the result address are needed afterwards).
//
// A truncated final line — the torn write of a crash mid-append — is
// tolerated: replay drops it and Open truncates the file back to the last
// complete line before appending resumes. A corrupt line that is *not*
// final fails Open, because silently skipping interior records would
// fabricate history.
//
// # Fsync policy
//
// The policy is explicit (Options.Sync): SyncAlways (default) fsyncs the
// journal after every event, so an acknowledged submission survives a
// crash of the very next instruction; SyncGroup gives the same guarantee
// through group commit — appenders write their line, then wait on a
// shared fsync barrier driven by a leader elected among the waiters, so
// N concurrent appends cost one fsync instead of N (Stats.Syncs vs
// Stats.Events makes the batching visible); SyncTerminal fsyncs only
// submitted and terminal events (a lost started event merely re-runs the
// job); SyncNone leaves flushing to the OS. Result files and compaction
// renames are always written via temp-file + rename, and fsynced unless
// SyncNone.
//
// The pool journals inside its own critical sections, which keeps the
// event order trivially equal to the transition order but puts the fsync
// on the submission path: under SyncAlways, sustained submission
// throughput from one pool is bounded by disk sync latency. SyncGroup is
// the lever when many goroutines journal concurrently — the fleet
// dispatcher, which journals every forwarded job from per-request
// goroutines, uses it by default.
//
// # Compaction
//
// The journal grows by one line per transition while the record table is
// bounded (the pool forgets evicted records). Once file lines exceed
// compactFactor× the live table (plus a floor), Append rewrites the
// journal from the table — at most four events per record — through a
// temp file and atomic rename. Unreferenced result files beyond
// Options.MaxResults are garbage-collected at the same time, oldest
// first.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SyncPolicy selects when the journal is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended event (default).
	SyncAlways SyncPolicy = iota
	// SyncTerminal fsyncs after submitted and terminal events only.
	SyncTerminal
	// SyncNone never fsyncs; the OS flushes when it pleases.
	SyncNone
	// SyncGroup is group commit: every event is durable before Append
	// returns (the SyncAlways guarantee), but concurrent appenders share
	// one fsync barrier — a leader elected among the waiters syncs once
	// for every line written before the barrier.
	SyncGroup
)

// ParseSyncPolicy maps the qmlserve -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "terminal":
		return SyncTerminal, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|group|terminal|none)", s)
}

// Event types journaled by the pool and the fleet dispatcher.
const (
	EvSubmitted = "submitted"
	// EvAssigned records a fleet dispatcher handing the job to a worker
	// node (Worker) under the worker's own job ID (Remote). A re-forward
	// after a worker death appends a fresh assignment; last writer wins.
	EvAssigned = "assigned"
	EvStarted  = "started"
	EvDone     = "done"
	EvFailed   = "failed"
	EvCanceled = "canceled"
	EvForget   = "forget"
)

// Job states as recorded in the journal (mirrors jobs.State without the
// import cycle).
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Event is one journal line.
type Event struct {
	T   string    `json:"t"`
	Job string    `json:"job"`
	At  time.Time `json:"at"`
	// Trace is the job's fleet-wide trace ID (set on submitted events;
	// replay and compaction keep it on the record so GET /v1/jobs/{id}
	// can answer with it after a restart).
	Trace string `json:"trace,omitempty"`
	// Submitted fields. Pin is the submitter's explicit parallelism
	// request (SubmitOptions.Shards), preserved so a requeued job keeps
	// its sizing after a crash. Profile records that the submitter asked
	// for the kernel-granular execution profile, so a requeued job re-runs
	// with profiling on and its status document regains the kernel table.
	Key     string          `json:"key,omitempty"`
	Engine  string          `json:"engine,omitempty"`
	Bundle  json.RawMessage `json:"bundle,omitempty"`
	Pin     int             `json:"pin,omitempty"`
	Profile bool            `json:"profile,omitempty"`
	// Assigned fields (fleet dispatcher): the worker node the job was
	// forwarded to and the job ID the worker answered with.
	Worker string `json:"worker,omitempty"`
	Remote string `json:"remote,omitempty"`
	// From/To bound the contiguous point range [From,To) covered by a
	// sweep-range assignment (fleet dispatcher; both zero on whole-job
	// assignments). Range history is observability, not folded state: a
	// restarted dispatcher re-scatters non-terminal sweeps from scratch.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Started fields.
	Shards int `json:"shards,omitempty"`
	// Sweep fields: Points (on submitted events) is the parameter-grid
	// size of a sweep job — the whole grid journals as ONE record, not one
	// per point; Results (on done events) lists the per-point result
	// content addresses in point order.
	Points  int      `json:"points,omitempty"`
	Results []string `json:"results,omitempty"`
	// Terminal fields.
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
	Result    string `json:"result,omitempty"` // content address of the result file
}

// Record is the folded journal state of one job.
type Record struct {
	Job       string
	Trace     string // fleet-wide trace ID
	Key       string
	Engine    string
	State     string
	Bundle    json.RawMessage // retained only while queued/running
	Pin       int             // submitter's explicit shard request
	Profile   bool            // submitter asked for the execution profile
	Worker    string          // fleet dispatcher: assigned worker node
	Remote    string          // fleet dispatcher: job ID on that worker
	Shards    int
	Points    int      // sweep jobs: parameter-grid size (0 for plain jobs)
	Results   []string // sweep jobs: per-point result content addresses
	CacheHit  bool
	Coalesced bool
	Error     string
	ResultKey string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Terminal reports whether the record's state is final.
func (r *Record) Terminal() bool {
	return r.State == StateDone || r.State == StateFailed || r.State == StateCanceled
}

// Stats are the persistence counters surfaced through /v1/stats.
type Stats struct {
	// Events counts journal lines appended since Open (not replayed ones).
	Events uint64 `json:"journal_events"`
	// Lines is the current journal file length in events.
	Lines int `json:"journal_lines"`
	// Syncs counts journal fsyncs issued on the append path since Open;
	// under SyncGroup, Syncs < Events shows group commit batching.
	Syncs uint64 `json:"journal_syncs"`
	// Compactions counts journal rewrites since Open.
	Compactions uint64 `json:"journal_compactions"`
	// Errors counts append/compaction failures the pool chose to survive.
	Errors uint64 `json:"journal_errors"`
	// Records is the live record-table size.
	Records int `json:"journal_records"`
	// Results is the number of result files on disk.
	Results int `json:"disk_results"`
	// TruncatedTail is 1 if Open dropped a torn final journal line.
	TruncatedTail int `json:"journal_truncated_tail"`
}

// Options configure Open. The zero value is usable: SyncAlways, a 4×
// compaction factor, and 4096 retained result files.
type Options struct {
	Sync SyncPolicy
	// CompactFactor triggers compaction when journal lines exceed this
	// multiple of the record table (plus a fixed floor); values < 2 are
	// raised to 2.
	CompactFactor int
	// MaxResults bounds result files kept through compaction; files
	// referenced by a live record are always kept (default 4096; negative
	// retains everything).
	MaxResults int
	// Metrics is the registry the store's instruments register in (nil:
	// a private registry, so stores in tests never collide). The server
	// passes its own so /metrics carries store_* families.
	Metrics *obs.Registry
}

// storeMetrics are the registry-backed instruments behind Stats: the
// counters are the system of record (Stats() reads them back), the
// histograms exist only on /metrics.
type storeMetrics struct {
	events      *obs.Counter
	syncs       *obs.Counter
	compactions *obs.Counter
	errors      *obs.Counter
	appendLat   *obs.Histogram
	fsyncLat    *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry, s *Store) *storeMetrics {
	m := &storeMetrics{
		events:      reg.Counter("store_journal_events_total", "Journal lines appended since Open (not replayed ones)."),
		syncs:       reg.Counter("store_journal_syncs_total", "Journal fsyncs issued on the append path since Open."),
		compactions: reg.Counter("store_journal_compactions_total", "Journal rewrites since Open."),
		errors:      reg.Counter("store_journal_errors_total", "Append/compaction/result-write failures the caller chose to survive."),
		appendLat:   reg.Histogram("store_journal_append_seconds", "Journal append latency including the durability barrier.", nil),
		fsyncLat:    reg.Histogram("store_journal_fsync_seconds", "Journal fsync latency.", nil),
	}
	reg.GaugeFunc("store_journal_lines", "Current journal file length in events.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.lines)
	})
	reg.GaugeFunc("store_journal_records", "Live record-table size.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.records))
	})
	return m
}

func (o Options) withDefaults() Options {
	if o.CompactFactor < 2 {
		if o.CompactFactor != 0 {
			o.CompactFactor = 2
		} else {
			o.CompactFactor = 4
		}
	}
	if o.MaxResults == 0 {
		o.MaxResults = 4096
	}
	return o
}

// compactFloor keeps tiny journals from compacting on every append.
const compactFloor = 64

// testSyncHook, when non-nil, runs in the group-commit leader with the
// mutex released, just before its fsync — a test seam that widens the
// barrier window so batching is observable on filesystems whose fsync
// returns instantly.
var testSyncHook func()

// fsyncStallThreshold is the journal fsync latency beyond which a
// fsync_stall event lands in the flight recorder: slow syncs are the
// usual culprit when submission latency spikes, and the ring keeps the
// recent ones visible at /debug/events without scraping histograms.
const fsyncStallThreshold = 50 * time.Millisecond

// observeFsync records the fsync latency in the histogram and, past the
// stall threshold, in the process flight recorder.
func (m *storeMetrics) observeFsync(d time.Duration) {
	m.fsyncLat.Observe(d)
	if d >= fsyncStallThreshold {
		obs.RecordDur(obs.FlightFsyncStall, "", "journal fsync", d)
	}
}

// Store is a journal + result-file directory owned by one process. All
// methods are safe for concurrent use (the pool journals under its own
// lock but writes result files from worker goroutines).
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	cond    *sync.Cond // group commit barrier + compaction/fsync exclusion
	f       *os.File   // journal, opened O_APPEND
	lines   int
	records map[string]*Record
	stats   Stats
	met     *storeMetrics

	// Group-commit state (SyncGroup only). dirtyGen counts appended
	// lines; syncedGen is the newest generation known durable. A leader
	// elected among the waiters fsyncs with the mutex released, covering
	// every line written before the sync began.
	dirtyGen  uint64
	syncedGen uint64
	syncing   bool
	failedGen uint64 // generations ≤ failedGen saw failErr if not yet synced
	failErr   error
}

// Open creates dir (and its results/ subdirectory) if needed, replays the
// journal into the record table, truncates a torn final line, and leaves
// the journal open for appending.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, records: map[string]*Record{}}
	s.cond = sync.NewCond(&s.mu)
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.met = newStoreMetrics(reg, s)
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	return s, nil
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, "journal.jsonl") }

// replay folds journal.jsonl into the record table. A torn final line is
// dropped and the file truncated to the last complete line; a corrupt
// interior line is a hard error.
func (s *Store) replay() error {
	raw, err := os.ReadFile(s.journalPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	good := 0 // byte offset past the last successfully applied line
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		lineEnd := good + len(line)
		if lineEnd < len(raw) { // the scanner consumed a trailing '\n'
			lineEnd++
		}
		if len(bytes.TrimSpace(line)) == 0 {
			good = lineEnd
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil || ev.T == "" || ev.Job == "" {
			// Only the final line may be torn (a crash mid-append writes a
			// partial tail, never garbage with valid records after it).
			if lineEnd < len(raw) && len(bytes.TrimSpace(raw[lineEnd:])) > 0 {
				return fmt.Errorf("store: corrupt journal line at byte %d: %s", good, truncateForErr(line))
			}
			s.stats.TruncatedTail = 1
			if terr := os.Truncate(s.journalPath(), int64(good)); terr != nil {
				return fmt.Errorf("store: truncating torn journal tail: %w", terr)
			}
			return nil
		}
		s.apply(ev)
		s.lines++
		good = lineEnd
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// A file not ending in '\n' had its tail handled above; if the last
	// line parsed but lacked the newline, re-terminate it so the next
	// append starts a fresh line.
	if len(raw) > 0 && raw[len(raw)-1] != '\n' && good == len(raw) {
		f, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		_, werr := f.WriteString("\n")
		cerr := f.Close()
		if werr != nil || cerr != nil {
			return fmt.Errorf("store: re-terminating journal: %v/%v", werr, cerr)
		}
	}
	return nil
}

func truncateForErr(line []byte) string {
	const max = 120
	if len(line) > max {
		return string(line[:max]) + "…"
	}
	return string(line)
}

// apply merges one event into the record table (last writer wins).
func (s *Store) apply(ev Event) {
	if ev.T == EvForget {
		delete(s.records, ev.Job)
		return
	}
	r := s.records[ev.Job]
	if r == nil {
		r = &Record{Job: ev.Job, State: StateQueued}
		s.records[ev.Job] = r
	}
	if ev.Trace != "" {
		r.Trace = ev.Trace
	}
	switch ev.T {
	case EvSubmitted:
		r.State = StateQueued
		r.Key = ev.Key
		r.Engine = ev.Engine
		r.Bundle = ev.Bundle
		r.Pin = ev.Pin
		r.Profile = ev.Profile
		r.Points = ev.Points
		r.Submitted = ev.At
	case EvAssigned:
		r.Worker = ev.Worker
		r.Remote = ev.Remote
	case EvStarted:
		r.State = StateRunning
		r.Started = ev.At
		r.Shards = ev.Shards
	case EvDone, EvFailed, EvCanceled:
		switch ev.T {
		case EvDone:
			r.State = StateDone
			r.ResultKey = ev.Result
			r.Results = ev.Results
		case EvFailed:
			r.State = StateFailed
			r.Error = ev.Error
		case EvCanceled:
			r.State = StateCanceled
		}
		if ev.Engine != "" {
			r.Engine = ev.Engine
		}
		r.CacheHit = ev.CacheHit
		r.Coalesced = ev.Coalesced
		r.Finished = ev.At
		r.Bundle = nil // only status + result address matter now
	}
}

// Append journals one event: table merge, file append, fsync per policy
// (under SyncGroup the appender waits on the shared group-commit
// barrier), and compaction when terminal/obsolete lines dominate the
// live table.
func (s *Store) Append(ev Event) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(ev); err != nil {
		s.met.errors.Inc()
		return err
	}
	if s.opts.Sync == SyncGroup {
		if err := s.awaitDurableLocked(s.dirtyGen); err != nil {
			s.met.errors.Inc()
			return err
		}
	}
	// Observed once the event is durable per policy — compaction is
	// amortized housekeeping, not append latency.
	s.met.appendLat.Observe(time.Since(start))
	if s.lines > s.opts.CompactFactor*len(s.records)+compactFloor {
		if err := s.compact(); err != nil {
			s.met.errors.Inc()
			return err
		}
	}
	return nil
}

// awaitDurableLocked blocks until every journal line up to generation gen
// is fsynced. The first waiter that finds no sync in flight becomes the
// leader: it releases the mutex, fsyncs once, and wakes everyone whose
// line was written before the sync began — one fsync absorbs a whole
// burst of concurrent appends. Callers hold s.mu; it is held again on
// return.
func (s *Store) awaitDurableLocked(gen uint64) error {
	for s.syncedGen < gen {
		if s.failedGen >= gen {
			return s.failErr
		}
		if s.f == nil {
			return errors.New("store: journal dead (lost during a failed compaction)")
		}
		if !s.syncing {
			s.syncing = true
			f := s.f
			s.mu.Unlock()
			if testSyncHook != nil {
				testSyncHook()
			}
			s.mu.Lock()
			// Re-read the barrier target after the hook/handoff window:
			// every line already written is covered by the sync below.
			target := s.dirtyGen
			s.mu.Unlock()
			syncStart := time.Now()
			err := f.Sync()
			s.met.observeFsync(time.Since(syncStart))
			s.mu.Lock()
			s.syncing = false
			s.met.syncs.Inc()
			if err != nil {
				// Fail every waiter covered by this barrier; later
				// appends elect a fresh leader and retry.
				s.failedGen = target
				s.failErr = fmt.Errorf("store: %w", err)
			} else if target > s.syncedGen {
				s.syncedGen = target
			}
			s.cond.Broadcast()
			continue
		}
		s.cond.Wait()
	}
	return nil
}

func (s *Store) append(ev Event) error {
	if s.f == nil {
		return errors.New("store: journal dead (lost during a failed compaction)")
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := s.f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.syncEvent(ev.T) {
		syncStart := time.Now()
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.met.observeFsync(time.Since(syncStart))
		s.met.syncs.Inc()
	}
	s.apply(ev)
	s.lines++
	s.dirtyGen++
	s.met.events.Inc()
	return nil
}

func (s *Store) syncEvent(t string) bool {
	switch s.opts.Sync {
	case SyncAlways:
		return true
	case SyncTerminal:
		return t != EvStarted && t != EvAssigned
	}
	return false // SyncNone, and SyncGroup syncs via the barrier
}

// Compact rewrites the journal from the record table (at most four
// events per record) through a temp file and atomic rename, then
// garbage-collects unreferenced result files beyond Options.MaxResults.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compact()
}

func (s *Store) compact() error {
	// A group-commit leader may be fsyncing the current handle with the
	// mutex released; wait it out so the rename/reopen below never races
	// an in-flight sync on the retiring file.
	for s.syncing {
		s.cond.Wait()
	}
	tmp, err := os.CreateTemp(s.dir, "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	jobs := make([]string, 0, len(s.records))
	for id := range s.records {
		jobs = append(jobs, id)
	}
	sort.Strings(jobs)
	written := 0
	for _, id := range jobs {
		for _, ev := range recordEvents(s.records[id]) {
			raw, err := json.Marshal(ev)
			if err != nil {
				tmp.Close()
				return fmt.Errorf("store: compact: %w", err)
			}
			if _, err := w.Write(append(raw, '\n')); err != nil {
				tmp.Close()
				return fmt.Errorf("store: compact: %w", err)
			}
			written++
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.opts.Sync != SyncNone {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	// Swap order matters for failure atomicity: rename over the live
	// journal first (the old handle keeps working until then, so a
	// rename failure leaves the store fully functional on the old file),
	// open the new inode, and only then retire the old handle. If the
	// reopen fails the old handle points at the unlinked inode — appends
	// there would vanish silently — so the store goes dead loudly
	// instead (every later Append errors) rather than lying.
	if err := os.Rename(tmp.Name(), s.journalPath()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.opts.Sync != SyncNone {
		syncDir(s.dir)
	}
	f, err := os.OpenFile(s.journalPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f.Close()
		s.f = nil
		return fmt.Errorf("store: compact: reopening journal: %w", err)
	}
	s.f.Close()
	s.f = f
	s.lines = written
	s.met.compactions.Inc()
	// The compacted file was fully written and (unless SyncNone) fsynced
	// before the rename, so every journaled generation is now durable;
	// release any group-commit waiters.
	if s.syncedGen < s.dirtyGen {
		s.syncedGen = s.dirtyGen
		s.cond.Broadcast()
	}
	s.gcResults()
	return nil
}

// recordEvents renders a record back into the minimal event sequence that
// replays to the same state.
func recordEvents(r *Record) []Event {
	evs := []Event{{
		T: EvSubmitted, Job: r.Job, At: r.Submitted, Trace: r.Trace,
		Key: r.Key, Engine: r.Engine, Bundle: r.Bundle, Pin: r.Pin,
		Profile: r.Profile, Points: r.Points,
	}}
	if r.Worker != "" || r.Remote != "" {
		evs = append(evs, Event{T: EvAssigned, Job: r.Job, Worker: r.Worker, Remote: r.Remote})
	}
	if !r.Started.IsZero() {
		evs = append(evs, Event{T: EvStarted, Job: r.Job, At: r.Started, Shards: r.Shards})
	}
	switch r.State {
	case StateDone:
		evs = append(evs, Event{
			T: EvDone, Job: r.Job, At: r.Finished, Engine: r.Engine,
			CacheHit: r.CacheHit, Coalesced: r.Coalesced, Result: r.ResultKey,
			Results: r.Results,
		})
	case StateFailed:
		evs = append(evs, Event{
			T: EvFailed, Job: r.Job, At: r.Finished, Engine: r.Engine,
			Coalesced: r.Coalesced, Error: r.Error,
		})
	case StateCanceled:
		evs = append(evs, Event{T: EvCanceled, Job: r.Job, At: r.Finished})
	}
	return evs
}

// Records returns the replayed job records sorted by job ID.
func (s *Store) Records() []*Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Record, 0, len(s.records))
	for _, r := range s.records {
		cp := *r
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// Stats snapshots the persistence counters. The registry instruments
// are the system of record; this keeps /v1/stats' JSON shape while
// /metrics reads the same instruments directly.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Events = s.met.events.Value()
	st.Syncs = s.met.syncs.Value()
	st.Compactions = s.met.compactions.Value()
	st.Errors = s.met.errors.Value()
	st.Lines = s.lines
	st.Records = len(s.records)
	st.Results = s.countResults()
	return st
}

// Sync flushes the journal to disk regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("store: journal dead (lost during a failed compaction)")
	}
	//lint:ignore lockblock s.mu is the journal handle's own lock; an explicit Sync must exclude appends and compaction swapping the handle
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close fsyncs (unless SyncNone) and closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Let an in-flight group-commit leader finish before the handle goes
	// away under its fsync.
	for s.syncing {
		s.cond.Wait()
	}
	if s.f == nil {
		return nil
	}
	if s.opts.Sync != SyncNone {
		//lint:ignore lockblock s.mu is the journal handle's own lock; Close tears the handle down, nothing can contend usefully past this point
		if err := s.f.Sync(); err != nil {
			s.f.Close()
			s.f = nil
			return fmt.Errorf("store: %w", err)
		}
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory after a rename.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
