package schemas

import (
	"encoding/json"
	"testing"

	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
)

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v", names)
	}
	if names[0] != "ctx.schema.json" {
		t.Errorf("names not sorted: %v", names)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope.json"); err == nil {
		t.Error("unknown schema name accepted")
	}
	if err := Validate("nope.json", []byte(`{}`)); err == nil {
		t.Error("Validate with unknown schema accepted")
	}
}

func TestQDTSchemaAcceptsListing2(t *testing.T) {
	doc := `{
		"$schema": "qdt-core.schema.json",
		"id": "reg_phase", "name": "phase", "width": 10,
		"encoding_kind": "PHASE_REGISTER", "bit_order": "LSB_0",
		"measurement_semantics": "AS_PHASE", "phase_scale": "1/1024"}`
	if err := Validate("qdt-core.schema.json", []byte(doc)); err != nil {
		t.Errorf("Listing 2 rejected by schema: %v", err)
	}
}

func TestQDTSchemaRejects(t *testing.T) {
	bad := []string{
		`{"id":"x","width":0,"encoding_kind":"INT_REGISTER","bit_order":"LSB_0","measurement_semantics":"AS_INT"}`,
		`{"id":"x","width":4,"encoding_kind":"NOPE","bit_order":"LSB_0","measurement_semantics":"AS_INT"}`,
		`{"id":"x","width":4,"encoding_kind":"INT_REGISTER","bit_order":"LSB_0","measurement_semantics":"AS_INT","extra":1}`,
		`{"width":4,"encoding_kind":"INT_REGISTER","bit_order":"LSB_0","measurement_semantics":"AS_INT"}`,
		`{"id":"x","width":4,"encoding_kind":"PHASE_REGISTER","bit_order":"LSB_0","measurement_semantics":"AS_PHASE","phase_scale":"a/b"}`,
	}
	for i, doc := range bad {
		if err := Validate("qdt-core.schema.json", []byte(doc)); err == nil {
			t.Errorf("bad doc %d accepted: %s", i, doc)
		}
	}
}

func TestQDTStructsConformToSchema(t *testing.T) {
	// Everything the qdt constructors produce must pass the embedded
	// schema — keeps struct and schema in lockstep.
	for _, d := range []*qdt.DataType{
		qdt.NewPhaseRegister("reg_phase", "phase", 10),
		qdt.NewIsingVars("ising_vars", "s", 4),
		qdt.New("n", "n", 8, qdt.IntRegister, qdt.AsInt),
	} {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate("qdt-core.schema.json", b); err != nil {
			t.Errorf("constructor output fails schema: %v\n%s", err, b)
		}
	}
}

func TestQODStructsConformToSchema(t *testing.T) {
	op := qop.New("QFT", qop.QFTTemplate, "reg_phase").
		SetParam("approx_degree", 0).SetParam("do_swaps", true).SetParam("inverse", false)
	op.CostHint = &qop.CostHint{TwoQ: 45, Depth: 100}
	op.Result = qop.DefaultResultSchema("reg_phase", 10, "AS_PHASE", "LSB_0")
	b, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate("qod.schema.json", b); err != nil {
		t.Errorf("operator fails schema: %v\n%s", err, b)
	}
}

func TestQODSchemaRejects(t *testing.T) {
	bad := []string{
		`{"name":"x","rep_kind":"lower_case","domain_qdt":"r","codomain_qdt":"r"}`,
		`{"rep_kind":"QFT_TEMPLATE","domain_qdt":"r","codomain_qdt":"r"}`,
		`{"name":"x","rep_kind":"QFT_TEMPLATE","domain_qdt":"r","codomain_qdt":"r","cost_hint":{"twoq":-1}}`,
		`{"name":"x","rep_kind":"QFT_TEMPLATE","domain_qdt":"r","codomain_qdt":"r","result_schema":{"basis":"Z","datatype":"AS_INT","bit_significance":"LSB_0","clbit_order":["bad ref"]}}`,
	}
	for i, doc := range bad {
		if err := Validate("qod.schema.json", []byte(doc)); err == nil {
			t.Errorf("bad operator %d accepted", i)
		}
	}
}

func TestCTXStructsConformToSchema(t *testing.T) {
	c := ctxdesc.NewGate("gate.statevector", 4096, 42)
	c.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	c.Exec.Options = map[string]any{"optimization_level": 2}
	c.QEC = &ctxdesc.QEC{CodeFamily: "surface", Distance: 7, Allocator: "auto",
		LogicalGateSet: []string{"H", "S", "CNOT", "T", "MEASURE_Z"}}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate("ctx.schema.json", b); err != nil {
		t.Errorf("context fails schema: %v\n%s", err, b)
	}
}

func TestCTXSchemaRejects(t *testing.T) {
	bad := []string{
		`{"exec":{}}`,
		`{"exec":{"engine":"g","samples":-1}}`,
		`{"exec":{"engine":"g","target":{"coupling_map":[[0]]}}}`,
		`{"qec":{"code_family":"surface"}}`,
		`{"anneal":{"num_reads":0}}`,
		`{"anneal":{"num_reads":10,"schedule":"weird"}}`,
		`{"comm":{"qpus":2}}`,
		`{"bogus_top_level":1}`,
	}
	for i, doc := range bad {
		if err := Validate("ctx.schema.json", []byte(doc)); err == nil {
			t.Errorf("bad context %d accepted: %s", i, doc)
		}
	}
}

func TestJobSchema(t *testing.T) {
	good := `{"$schema":"job.schema.json","qdts":[{"id":"r"}],"operators":[{"name":"x"}],
		"context":{"exec":{"engine":"g"}},
		"provenance":{"created_by":"algolib","version":"1","intent_fingerprint":"abc"}}`
	if err := Validate("job.schema.json", []byte(good)); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	for i, bad := range []string{
		`{"operators":[{}]}`,
		`{"qdts":[],"operators":[{}]}`,
		`{"qdts":[{}],"operators":[{}],"provenance":{"hacker":true}}`,
	} {
		if err := Validate("job.schema.json", []byte(bad)); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
}
