// Annealing-path deep dive: a frustrated weighted Max-Cut instance solved
// by the simulated annealer under different schedules, against the
// classical baselines (random, greedy descent, tabu search), and through
// minor embedding onto a Chimera hardware graph — the full §5 anneal
// workflow with the hardware-constraint path the Ocean stack performs
// implicitly.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/anneal"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/runtime"
)

func main() {
	// A 14-vertex weighted Erdős–Rényi instance: frustrated enough that
	// greedy gets stuck.
	g := graph.RandomWeighted(graph.ErdosRenyi(14, 0.4, 3), 0.5, 2.0, 4)
	m := ising.FromMaxCut(g)
	gs := m.BruteForce()
	fmt.Printf("instance: n=%d, %d edges, ground energy %+.3f (cut %.3f)\n\n",
		g.N, len(g.Edges), gs.Energy, ising.CutFromEnergy(g, gs.Energy))

	fmt.Println("sampler              best       mean      P(ground)")
	row := func(name string, res *anneal.Result) {
		fmt.Printf("%-18s %+8.3f  %+8.3f      %.2f\n",
			name, res.Best().Energy, res.MeanEnergy(), res.GroundProbability(gs.Energy, 1e-9))
	}
	const reads = 100
	if r, err := anneal.RandomSample(m, reads, 1); err == nil {
		row("random", r)
	} else {
		log.Fatal(err)
	}
	if r, err := anneal.GreedyDescent(m, reads, 1); err == nil {
		row("greedy descent", r)
	} else {
		log.Fatal(err)
	}
	if r, err := anneal.TabuSearch(m, reads, 0, 1); err == nil {
		row("tabu search", r)
	} else {
		log.Fatal(err)
	}
	for _, sweeps := range []int{10, 100, 1000} {
		for _, sched := range []string{"linear", "geometric"} {
			r, err := anneal.SampleModel(m, anneal.Params{
				NumReads: reads, Sweeps: sweeps, Schedule: sched, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			row(fmt.Sprintf("SA %s/%d", sched, sweeps), r)
		}
	}

	// Hardware-constrained run through the full middle layer: a small
	// instance embedded onto Chimera C(2).
	fmt.Println("\nembedded run: K4 Max-Cut on Chimera C(2) via the anneal backend")
	small := graph.Complete(4)
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(small))
	if err != nil {
		log.Fatal(err)
	}
	ctx := ctxdesc.NewAnneal("anneal.sa", 500, 9)
	ctx.Anneal.Embed = true
	ctx.Anneal.UnitCells = 2
	ctx.Anneal.Sweeps = 500
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  embedding: %+v\n", res.Meta["embedding"])
	res.Sort()
	for i, e := range res.Entries {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s  count=%-4d energy=%+.1f cut=%.0f\n",
			e.Bitstring, e.Count, e.Energy, small.CutValueBits(e.Index))
	}
	// K4 optimum: cut = 4 (2+2 split).
	stats, err := embed.Chimera(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  (hardware: %d qubits, %d couplers)\n", stats.N, stats.EdgeCount())
}
