package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/result"
)

func tstamp(i int) time.Time {
	return time.Date(2026, 7, 27, 12, 0, i, 0, time.UTC)
}

func sampleResult(seed int) *result.Result {
	return &result.Result{
		Engine:  "fake.store",
		Samples: 100,
		Entries: []result.Entry{
			{Bitstring: "0101", Index: uint64(seed % 16), Count: 60},
			{Bitstring: "1010", Index: uint64((seed + 5) % 16), Count: 40},
		},
	}
}

func sampleKey(i int) string {
	return "sha256:" + strings.Repeat(fmt.Sprintf("%02x", i), 32)
}

// TestKillAndReopen appends a mixed lifecycle, reopens the directory
// WITHOUT closing the first store (the crash image: O_APPEND writes are
// in the file the moment Append returns), and checks the replayed table.
func TestKillAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bundle := json.RawMessage(`{"fake":"bundle"}`)
	evs := []Event{
		{T: EvSubmitted, Job: "job-00000001", At: tstamp(1), Key: sampleKey(1), Engine: "e", Bundle: bundle},
		{T: EvStarted, Job: "job-00000001", At: tstamp(2), Shards: 4},
		{T: EvDone, Job: "job-00000001", At: tstamp(3), Engine: "e", Result: sampleKey(1)},
		{T: EvSubmitted, Job: "job-00000002", At: tstamp(4), Key: sampleKey(2), Engine: "e", Bundle: bundle},
		{T: EvStarted, Job: "job-00000002", At: tstamp(5), Shards: 1},
		{T: EvSubmitted, Job: "job-00000003", At: tstamp(6), Key: sampleKey(3), Engine: "e", Bundle: bundle},
		{T: EvSubmitted, Job: "job-00000004", At: tstamp(7), Key: sampleKey(4), Engine: "e", Bundle: bundle},
		{T: EvFailed, Job: "job-00000004", At: tstamp(8), Error: "boom"},
		{T: EvSubmitted, Job: "job-00000005", At: tstamp(9), Key: sampleKey(5), Engine: "e", Bundle: bundle},
		{T: EvCanceled, Job: "job-00000005", At: tstamp(10)},
		{T: EvSubmitted, Job: "job-00000006", At: tstamp(11), Key: sampleKey(6), Engine: "e", Bundle: bundle},
		{T: EvForget, Job: "job-00000006", At: tstamp(12)},
	}
	for _, ev := range evs {
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.PutResult(sampleKey(1), sampleResult(1)); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close. Reopen the same directory.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5 (forgotten job dropped): %+v", len(recs), recs)
	}
	byJob := map[string]*Record{}
	for _, r := range recs {
		byJob[r.Job] = r
	}
	r1 := byJob["job-00000001"]
	if r1.State != StateDone || r1.ResultKey != sampleKey(1) || !r1.Terminal() {
		t.Fatalf("job 1: %+v", r1)
	}
	if r1.Bundle != nil {
		t.Fatal("terminal record must drop the bundle")
	}
	if !r1.Submitted.Equal(tstamp(1)) || !r1.Started.Equal(tstamp(2)) || !r1.Finished.Equal(tstamp(3)) {
		t.Fatalf("job 1 timings: %+v", r1)
	}
	if r2 := byJob["job-00000002"]; r2.State != StateRunning || string(r2.Bundle) != string(bundle) || r2.Shards != 1 {
		t.Fatalf("job 2: %+v", r2)
	}
	if r3 := byJob["job-00000003"]; r3.State != StateQueued || string(r3.Bundle) != string(bundle) {
		t.Fatalf("job 3: %+v", r3)
	}
	if r4 := byJob["job-00000004"]; r4.State != StateFailed || r4.Error != "boom" {
		t.Fatalf("job 4: %+v", r4)
	}
	if r5 := byJob["job-00000005"]; r5.State != StateCanceled {
		t.Fatalf("job 5: %+v", r5)
	}
	res, ok, err := s2.GetResult(sampleKey(1))
	if err != nil || !ok {
		t.Fatalf("result: %v ok=%v", err, ok)
	}
	if !reflect.DeepEqual(res, sampleResult(1)) {
		t.Fatalf("result round-trip: %+v", res)
	}
}

// TestTruncatedFinalLineTolerated simulates the torn write of a crash
// mid-append: the final journal line is a partial record. Replay must
// drop it (and only it), truncate the file, and keep appending cleanly.
func TestTruncatedFinalLineTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ev := Event{T: EvSubmitted, Job: fmt.Sprintf("job-%08d", i), At: tstamp(i), Key: sampleKey(i)}
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Torn tail: half a JSON object, no newline.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"submitted","job":"job-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must not fail the boot: %v", err)
	}
	if got := len(s2.Records()); got != 3 {
		t.Fatalf("replayed %d records, want 3 (torn line dropped)", got)
	}
	if s2.Stats().TruncatedTail != 1 {
		t.Fatal("truncated tail not reported in stats")
	}
	// The file was truncated back to the last good line: appending and
	// reopening must parse cleanly.
	if err := s2.Append(Event{T: EvSubmitted, Job: "job-00000009", At: tstamp(9), Key: sampleKey(9)}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := len(s3.Records()); got != 4 {
		t.Fatalf("after truncate+append: %d records, want 4", got)
	}
	if s3.Stats().TruncatedTail != 0 {
		t.Fatal("clean journal reported a truncated tail")
	}
}

// TestCorruptInteriorLineFailsBoot: only the FINAL line may be torn;
// garbage with valid records after it means real corruption and must not
// be silently skipped.
func TestCorruptInteriorLineFailsBoot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Event{T: EvSubmitted, Job: "job-00000001", At: tstamp(1), Key: sampleKey(1)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("{\"t\":\"subm\n"), raw...)
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("interior corruption must fail Open")
	}
}

// TestCompaction drives the journal past the compaction threshold with
// repeated submit/cancel churn on a small live table and checks the file
// shrinks while replaying to the same state.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two long-lived records plus heavy churn of forgotten jobs.
	for i := 1; i <= 2; i++ {
		ev := Event{T: EvSubmitted, Job: fmt.Sprintf("job-%08d", i), At: tstamp(i), Key: sampleKey(i), Bundle: json.RawMessage(`{}`)}
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 200; i++ {
		id := fmt.Sprintf("job-%08d", i)
		for _, ev := range []Event{
			{T: EvSubmitted, Job: id, At: tstamp(i), Key: sampleKey(i % 50)},
			{T: EvCanceled, Job: id, At: tstamp(i)},
			{T: EvForget, Job: id, At: tstamp(i)},
		} {
			if err := s.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d events (lines=%d records=%d)", st.Events, st.Lines, st.Records)
	}
	if st.Lines > 2*st.Records+compactFloor+3 {
		t.Fatalf("journal did not shrink: lines=%d records=%d", st.Lines, st.Records)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 2 {
		t.Fatalf("compacted journal replays %d records, want 2", len(recs))
	}
	for _, r := range recs {
		if r.State != StateQueued || string(r.Bundle) != "{}" {
			t.Fatalf("compacted record lost state: %+v", r)
		}
	}
}

// TestResultGC checks unreferenced result files beyond MaxResults are
// collected at compaction, oldest first, while referenced files survive.
func TestResultGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, MaxResults: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if err := s.PutResult(sampleKey(i), sampleResult(i)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so "oldest" is well-defined on coarse clocks.
		path, _ := s.resultPath(sampleKey(i))
		mt := time.Now().Add(time.Duration(i-6) * time.Hour)
		os.Chtimes(path, mt, mt)
	}
	// Job 1 references key 0 (the oldest file): GC must keep it.
	if err := s.Append(Event{T: EvSubmitted, Job: "job-00000001", At: tstamp(1), Key: sampleKey(0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Down to MaxResults: the referenced oldest file is kept, so the
	// three unreferenced oldest (1, 2, 3) are the ones collected.
	if got := s.Stats().Results; got != 3 {
		t.Fatalf("results after GC = %d, want 3", got)
	}
	if !s.HasResult(sampleKey(0)) {
		t.Fatal("referenced result was collected")
	}
	for _, i := range []int{1, 2, 3} {
		if s.HasResult(sampleKey(i)) {
			t.Fatalf("old unreferenced result %d survived GC", i)
		}
	}
	for _, i := range []int{4, 5} {
		if !s.HasResult(sampleKey(i)) {
			t.Fatalf("newest result %d was collected", i)
		}
	}
}

// TestGroupCommitDurableAndBatched hammers a SyncGroup store from many
// goroutines: every append must be durable (all records replay after a
// kill-style reopen) while the fsync barrier batches — far fewer fsyncs
// than events.
func TestGroupCommitDurableAndBatched(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	// Widen the barrier window: on filesystems where fsync returns
	// instantly each appender would lead its own sync before the next
	// arrives and batching would be invisible.
	testSyncHook = func() { time.Sleep(2 * time.Millisecond) }
	defer func() { testSyncHook = nil }()
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := fmt.Sprintf("job-%08d", i)
			if err := s.Append(Event{T: EvSubmitted, Job: job, At: tstamp(i % 60), Key: sampleKey(i % 8), Engine: "fake.store"}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Events != n {
		t.Fatalf("events = %d, want %d", st.Events, n)
	}
	if st.Syncs >= n {
		t.Fatalf("group commit did not batch: %d fsyncs for %d events", st.Syncs, n)
	}
	if st.Syncs == 0 {
		t.Fatal("no fsync issued at all")
	}

	// Crash image: reopen without closing — every acknowledged append
	// must already be in the file.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.Records()); got != n {
		t.Fatalf("replayed %d records, want %d", got, n)
	}
	s.Close()
}

// TestAssignedEventReplay checks the fleet dispatcher's assignment event:
// last assignment wins on replay, and compaction regenerates it.
func TestAssignedEventReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Append(Event{T: EvSubmitted, Job: "job-00000001", At: tstamp(1), Key: sampleKey(1), Engine: "fake.store", Bundle: json.RawMessage(`{"a":1}`)}))
	must(s.Append(Event{T: EvAssigned, Job: "job-00000001", At: tstamp(2), Worker: "http://w1:8080", Remote: "job-00000042"}))
	// Worker died; re-forwarded elsewhere — the newer assignment wins.
	must(s.Append(Event{T: EvAssigned, Job: "job-00000001", At: tstamp(3), Worker: "http://w2:8080", Remote: "job-00000007"}))
	must(s.Close())

	check := func(s *Store) {
		t.Helper()
		recs := s.Records()
		if len(recs) != 1 {
			t.Fatalf("records: %d", len(recs))
		}
		r := recs[0]
		if r.Worker != "http://w2:8080" || r.Remote != "job-00000007" {
			t.Fatalf("assignment = %q/%q, want latest", r.Worker, r.Remote)
		}
		if r.State != StateQueued || string(r.Bundle) != `{"a":1}` {
			t.Fatalf("record lost submitted fields: %+v", r)
		}
	}
	s2, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	check(s2)
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	check(s3)
}

// TestParseSyncPolicy pins the flag values.
func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"always": SyncAlways, "group": SyncGroup, "terminal": SyncTerminal, "none": SyncNone} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

// TestResultKeyValidation: hostile keys must not escape the results dir.
func TestResultKeyValidation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, key := range []string{"", "sha256:", "md5:abcd", "sha256:../../etc/passwd", "sha256:zzzz"} {
		if err := s.PutResult(key, sampleResult(1)); err == nil {
			t.Fatalf("key %q accepted", key)
		}
	}
}
