package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

// wantRE matches expected-diagnostic comments in fixture files:
//
//	rand.Intn(6) // want `determinism: math/rand global-state call`
//
// The backquoted payload is a regexp matched against
// "analyzer: message" for diagnostics reported on the comment's line;
// one line may carry several want clauses.
var wantRE = regexp.MustCompile("// want `([^`]*)`")

var fixtures struct {
	once sync.Once
	pkgs []*lint.Package
	err  error
}

// fixturePkgs loads every testdata/src fixture tree once (tests
// included — analyzers must prove they skip _test.go files) and shares
// the result: the source importer re-type-checks dependencies per Load
// call, so one call keeps the suite fast.
func fixturePkgs(t *testing.T) []*lint.Package {
	t.Helper()
	fixtures.once.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			fixtures.err = err
			return
		}
		src := filepath.Join(root, "internal", "lint", "testdata", "src")
		fixtures.pkgs, fixtures.err = lint.Load(root, []string{src + "/..."}, lint.LoadOptions{IncludeTests: true})
	})
	if fixtures.err != nil {
		t.Fatalf("loading fixtures: %v", fixtures.err)
	}
	if len(fixtures.pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return fixtures.pkgs
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the test directory")
		}
		dir = parent
	}
}

// casePkgs filters the loaded fixtures to one testdata/src/<name> tree.
func casePkgs(t *testing.T, name string) []*lint.Package {
	marker := string(filepath.Separator) + filepath.Join("testdata", "src", name)
	var out []*lint.Package
	for _, p := range fixturePkgs(t) {
		if strings.HasSuffix(p.Dir, marker) || strings.Contains(p.Dir, marker+string(filepath.Separator)) {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		t.Fatalf("no packages under testdata/src/%s", name)
	}
	return out
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkgs []*lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := p.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// TestAnalyzersGolden runs the full suite over each fixture tree and
// requires an exact match between reported diagnostics and the
// fixtures' want comments: every diagnostic must satisfy a want on its
// line, and every want must be hit — so the deliberate near-misses
// (seeded generators, _test.go files, the plan.go allowlist,
// unlock-then-block sequences, //lint:ignore'd lines) fail the test if
// an analyzer ever starts flagging them.
func TestAnalyzersGolden(t *testing.T) {
	for _, name := range []string{"determinism", "lockblock", "soacomplex", "obsconv", "journalerr"} {
		t.Run(name, func(t *testing.T) {
			pkgs := casePkgs(t, name)
			diags := lint.Apply(pkgs, lint.All())
			if len(diags) == 0 {
				t.Fatalf("no diagnostics on the %s fixtures; expected true positives", name)
			}
			wants := collectWants(t, pkgs)
			for _, d := range diags {
				text := d.Analyzer + ": " + d.Message
				found := false
				for _, w := range wants {
					if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
						w.matched = true
						found = true
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestMalformedIgnoreDirective proves a reasonless //lint:ignore is
// itself reported (its own line cannot carry a want comment — a
// trailing comment would become part of the directive's fields).
func TestMalformedIgnoreDirective(t *testing.T) {
	pkgs := casePkgs(t, "badignore")
	diags := lint.Apply(pkgs, lint.All())
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed ignore directive") {
		t.Fatalf("got %s, want the malformed-directive report", d)
	}
	if filepath.Base(d.Pos.Filename) != "badignore.go" || d.Pos.Line == 0 {
		t.Fatalf("report carries no usable position: %s", d)
	}
}

// TestAnalyzerSuite pins the suite's composition: five analyzers with
// stable names, each documented — the names are API, since they appear
// in //lint:ignore directives across the tree.
func TestAnalyzerSuite(t *testing.T) {
	got := lint.All()
	names := []string{"determinism", "lockblock", "soacomplex", "obsconv", "journalerr"}
	if len(got) != len(names) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(names))
	}
	for i, a := range got {
		if a.Name != names[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, names[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc line", a.Name)
		}
	}
}
