package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// journalMutators are the store methods whose error results carry the
// durability verdict: a failed append or fsync means the event the
// caller just recorded may not survive a crash.
var journalMutators = map[string]bool{
	"Append":    true,
	"Sync":      true,
	"Compact":   true,
	"PutResult": true,
}

// JournalErr flags dropped error results from journal/store mutators —
// both the bare statement form `s.Append(ev)` and the explicit discard
// `_ = s.Append(ev)`. The explicit form is flagged on purpose: a
// durability error that is safe to drop deserves a
// //lint:ignore journalerr <why> stating the recovery story (usually
// "the store counts it in store_journal_errors_total and the caller
// degrades to in-memory").
func JournalErr() *Analyzer {
	return &Analyzer{
		Name: "journalerr",
		Doc:  "journal/store mutator errors must be handled or suppressed with a reasoned //lint:ignore",
		Run:  runJournalErr,
	}
}

func runJournalErr(p *Package) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, recv, meth, how string) {
		diags = append(diags, Diagnostic{
			Pos:      p.position(n),
			Analyzer: "journalerr",
			Message:  fmt.Sprintf("error from %s.%s %s; handle it or //lint:ignore journalerr with the recovery story", recv, meth, how),
		})
	}
	for _, f := range p.Files {
		if p.inTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if fn, recv, ok := p.journalMutatorCall(s.X); ok {
					report(s, recv, fn.Name(), "discarded by calling as a statement")
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 || !allBlank(s.Lhs) {
					return true
				}
				if fn, recv, ok := p.journalMutatorCall(s.Rhs[0]); ok {
					report(s, recv, fn.Name(), "assigned to _")
				}
			}
			return true
		})
	}
	return diags
}

// journalMutatorCall matches e as a call to a journal/store mutator
// returning an error, yielding the function and receiver type name.
func (p *Package) journalMutatorCall(e ast.Expr) (*types.Func, string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	fn := p.funcObj(call)
	if fn == nil || !journalMutators[fn.Name()] {
		return nil, "", false
	}
	pkg, typ := recvTypePkgPath(fn)
	if !hasPathSuffix(pkg, "jobs/store") {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if named, ok := last.(*types.Named); !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return nil, "", false
	}
	return fn, typ, true
}

func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
