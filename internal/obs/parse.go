package obs

import (
	"bufio"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its sorted label
// set (including le for histogram buckets), and the value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Label lookup on a sample; empty when absent.
func (s Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family is one parsed metric family: every sample sharing a base name,
// plus its declared TYPE ("counter", "gauge", "histogram", or "" when
// undeclared).
type Family struct {
	Name    string
	Type    string
	Samples []Sample
}

// Value returns the value of the family's first sample matching every
// given label (no labels = first sample), and ok=false when none match.
func (f *Family) Value(labels ...Label) (float64, bool) {
	for _, s := range f.Samples {
		match := true
		for _, want := range labels {
			if s.Label(want.Name) != want.Value {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// ParseExposition is a strict parser for the Prometheus text exposition
// format (version 0.0.4), used by tests to validate scraped /metrics
// bodies. Beyond grammar (metric and label name charsets, quoting,
// numeric values), it checks structural invariants:
//
//   - TYPE declared at most once per family, before its samples;
//   - histogram families expose _bucket/_sum/_count, bucket le bounds
//     parse and ascend strictly, cumulative bucket counts are
//     monotonically non-decreasing, and the +Inf bucket equals _count;
//   - counter values are non-negative;
//   - no duplicate sample (same name and label set).
//
// Families are keyed and returned by base name (histogram suffixes
// folded in), sorted by name.
func ParseExposition(body string) ([]Family, error) {
	type fam struct {
		*Family
		typedAt   int
		seen      map[string]bool
		hasBucket bool
		hasSum    bool
		hasCount  bool
	}
	fams := map[string]*fam{}
	get := func(name string) *fam {
		f, ok := fams[name]
		if !ok {
			f = &fam{Family: &Family{Name: name}, typedAt: -1, seen: map[string]bool{}}
			fams[name] = f
		}
		return f
	}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				continue // free-form comment
			}
			switch fields[1] {
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validName(name) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, typ, name)
				}
				f := get(name)
				if f.Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if len(f.Samples) > 0 {
					return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				f.Type = typ
				f.typedAt = lineNo
			case "HELP":
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, fields[2])
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := get(base)
		key := name + metricKey("", labels)
		if f.seen[key] {
			return nil, fmt.Errorf("line %d: duplicate sample %s%s", lineNo, name, renderLabels(labels, ""))
		}
		f.seen[key] = true
		switch {
		case f.Type == "histogram" && strings.HasSuffix(name, "_bucket"):
			f.hasBucket = true
		case f.Type == "histogram" && strings.HasSuffix(name, "_sum"):
			f.hasSum = true
		case f.Type == "histogram" && strings.HasSuffix(name, "_count"):
			f.hasCount = true
		case f.Type == "counter" && (value < 0 || math.IsNaN(value)):
			return nil, fmt.Errorf("line %d: counter %s has invalid value %v", lineNo, name, value)
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := checkHistogram(f.Family, f.hasBucket, f.hasSum, f.hasCount); err != nil {
				return nil, err
			}
		}
		out = append(out, *f.Family)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// checkHistogram validates one histogram family's bucket invariants,
// per label set (le excluded).
func checkHistogram(f *Family, hasBucket, hasSum, hasCount bool) error {
	if !hasBucket || !hasSum || !hasCount {
		return fmt.Errorf("histogram %s missing _bucket/_sum/_count series", f.Name)
	}
	type series struct {
		les    []float64
		counts []float64
		count  float64
		gotCnt bool
	}
	bySet := map[string]*series{}
	setKey := func(labels []Label) string {
		rest := make([]Label, 0, len(labels))
		for _, l := range labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		return metricKey("", rest)
	}
	for _, s := range f.Samples {
		k := setKey(s.Labels)
		sr, ok := bySet[k]
		if !ok {
			sr = &series{}
			bySet[k] = sr
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			leStr := s.Label("le")
			le := math.Inf(1)
			if leStr != "+Inf" {
				v, err := strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", f.Name, leStr)
				}
				le = v
			}
			sr.les = append(sr.les, le)
			sr.counts = append(sr.counts, s.Value)
		case strings.HasSuffix(s.Name, "_count"):
			sr.count = s.Value
			sr.gotCnt = true
		}
	}
	for _, sr := range bySet {
		if len(sr.les) == 0 {
			continue
		}
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				return fmt.Errorf("histogram %s: le bounds not strictly ascending (%v after %v)", f.Name, sr.les[i], sr.les[i-1])
			}
			if sr.counts[i] < sr.counts[i-1] {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease at le=%v", f.Name, sr.les[i])
			}
		}
		if !math.IsInf(sr.les[len(sr.les)-1], 1) {
			return fmt.Errorf("histogram %s: missing +Inf bucket", f.Name)
		}
		if !sr.gotCnt {
			return fmt.Errorf("histogram %s: label set missing _count", f.Name)
		}
		if inf := sr.counts[len(sr.counts)-1]; inf != sr.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", f.Name, inf, sr.count)
		}
	}
	return nil
}

// parseSampleLine parses `name{l="v",...} value` (labels optional).
// Timestamps (a third field) are accepted and ignored.
func parseSampleLine(line string) (string, []Label, float64, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample line %q", line)
	}
	name := line[:i]
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("metric %s: %v", name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("metric %s: expected value (and optional timestamp), got %q", name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("metric %s: bad value %q", name, fields[0])
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a].Name < labels[b].Name })
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels consumes `l1="v1",l2="v2"}` and returns the labels plus
// the remainder after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	for {
		s = strings.TrimLeft(s, " ")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", s)
		}
		lname := strings.TrimSpace(s[:eq])
		if !validName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s: value not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", lname)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("label %s: dangling escape", lname)
				}
				switch s[0] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", lname, s[0])
				}
				s = s[1:]
				continue
			}
			val.WriteByte(c)
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
		s = strings.TrimLeft(s, " ")
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}
