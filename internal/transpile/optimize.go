package transpile

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// Optimize applies peephole passes at the given level:
//
//	0 — none
//	1 — one pass of adjacent-pair cancellation and rotation merging
//	2 — commutation-aware cancellation, iterated to a fixpoint
//	3 — level 2 plus single-qubit run resynthesis (ZYZ, or the
//	    RZ·SX·RZ·SX·RZ hardware form when zsxBasis is set), then level 2
//	    again to clean up
func Optimize(c *circuit.Circuit, level int) *circuit.Circuit {
	return OptimizeBasis(c, level, false)
}

// OptimizeBasis is Optimize with the level-3 resynthesis form selectable:
// zsxBasis chooses the {sx, rz}-native output so basis-constrained
// pipelines never regress.
func OptimizeBasis(c *circuit.Circuit, level int, zsxBasis bool) *circuit.Circuit {
	out := c.Copy()
	if level <= 0 {
		return out
	}
	if level == 1 {
		out.Instrs = onePass(out.Instrs, false)
		return out
	}
	fixpoint := func(in *circuit.Circuit) *circuit.Circuit {
		for {
			before := len(in.Instrs)
			in.Instrs = onePass(in.Instrs, true)
			if len(in.Instrs) == before {
				return in
			}
		}
	}
	out = fixpoint(out)
	if level >= 3 {
		out = Resynthesize(out, zsxBasis)
		out = fixpoint(out)
	}
	return out
}

// angleZero reports whether a rotation angle is ≡ 0 (mod 2π); such
// rotations are identity up to global phase.
func angleZero(theta float64) bool {
	m := math.Mod(theta, 2*math.Pi)
	if m < 0 {
		m += 2 * math.Pi
	}
	return m < 1e-12 || 2*math.Pi-m < 1e-12
}

// mergeable rotation gates: same gate on the same operands composes by
// angle addition.
func isRotation(n gates.Name) bool {
	switch n {
	case gates.RX, gates.RY, gates.RZ, gates.P, gates.CP:
		return true
	}
	return false
}

func sameOperands(a, b circuit.Instruction) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	return true
}

func disjoint(a, b circuit.Instruction) bool {
	for _, q := range a.Qubits {
		for _, p := range b.Qubits {
			if q == p {
				return false
			}
		}
	}
	return true
}

// commutes reports whether two gate instructions commute, using sound but
// conservative rules: disjoint supports always commute; diagonal gates
// commute with each other; an RZ/P/diagonal single-qubit gate on the
// control of a CX commutes with that CX; an X/SX/RX on the target of a CX
// commutes with it; two CXs sharing only their control commute; two CXs
// sharing only their target commute.
func commutes(a, b circuit.Instruction) bool {
	if a.Op != circuit.OpGate || b.Op != circuit.OpGate {
		return false
	}
	if disjoint(a, b) {
		return true
	}
	if gates.IsDiagonal(a.Gate) && gates.IsDiagonal(b.Gate) {
		return true
	}
	// Orient so a is the 1-qubit gate when mixed.
	if len(a.Qubits) == 2 && len(b.Qubits) == 1 {
		a, b = b, a
	}
	if len(a.Qubits) == 1 && len(b.Qubits) == 2 && b.Gate == gates.CX {
		q := a.Qubits[0]
		if q == b.Qubits[0] && gates.IsDiagonal(a.Gate) {
			return true
		}
		if q == b.Qubits[1] {
			switch a.Gate {
			case gates.X, gates.SX, gates.RX:
				return true
			}
		}
		return false
	}
	if a.Gate == gates.CX && b.Gate == gates.CX {
		if a.Qubits[0] == b.Qubits[0] && a.Qubits[1] != b.Qubits[1] {
			return true
		}
		if a.Qubits[1] == b.Qubits[1] && a.Qubits[0] != b.Qubits[0] {
			return true
		}
	}
	return false
}

// inverseOf reports whether b undoes a exactly (same operands, inverse
// action, parameter-free self-inverse gates only; rotations are handled by
// merging instead).
func inverseOf(a, b circuit.Instruction) bool {
	if a.Op != circuit.OpGate || b.Op != circuit.OpGate || !sameOperands(a, b) {
		return false
	}
	if a.Gate == b.Gate && gates.IsSelfInverse(a.Gate) {
		return true
	}
	// s·sdg, t·tdg pairs.
	type pair struct{ x, y gates.Name }
	ps := []pair{{gates.S, gates.Sdg}, {gates.T, gates.Tdg}}
	for _, p := range ps {
		if (a.Gate == p.x && b.Gate == p.y) || (a.Gate == p.y && b.Gate == p.x) {
			return true
		}
	}
	return false
}

// onePass walks the instruction list once, merging rotations and
// cancelling inverse pairs. With lookThrough set it scans past commuting
// gates to find merge/cancel partners.
func onePass(instrs []circuit.Instruction, lookThrough bool) []circuit.Instruction {
	var out []circuit.Instruction
	removed := make([]bool, len(instrs))
	for i := 0; i < len(instrs); i++ {
		if removed[i] {
			continue
		}
		ins := instrs[i]
		if ins.Op != circuit.OpGate {
			out = append(out, ins)
			continue
		}
		// Drop identity gates and zero rotations outright.
		if ins.Gate == gates.I {
			continue
		}
		if isRotation(ins.Gate) && angleZero(ins.Params[0]) {
			continue
		}
		// Look ahead for a partner.
		matched := false
		for j := i + 1; j < len(instrs); j++ {
			if removed[j] {
				continue
			}
			next := instrs[j]
			if next.Op != circuit.OpGate {
				break
			}
			if isRotation(ins.Gate) && next.Gate == ins.Gate && sameOperands(ins, next) {
				merged := ins
				merged.Params = []float64{ins.Params[0] + next.Params[0]}
				removed[j] = true
				if !angleZero(merged.Params[0]) {
					out = append(out, merged)
				}
				matched = true
				break
			}
			if inverseOf(ins, next) {
				removed[j] = true
				matched = true
				break
			}
			if !lookThrough || !commutes(ins, next) {
				break
			}
		}
		if !matched {
			out = append(out, ins)
		}
	}
	return out
}
