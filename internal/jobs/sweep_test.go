package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/jobs/store"
	"repro/internal/qdt"
	"repro/internal/result"
	rt "repro/internal/runtime"
	"repro/internal/sim"
)

// sweepGrid64 is an 8×8 (gamma, beta) grid with no degenerate angles, so
// every point stays on the parametric fast path.
func sweepGrid64() [][]float64 {
	var points [][]float64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			points = append(points, []float64{0.1 + 0.09*float64(i), 0.15 + 0.08*float64(j)})
		}
	}
	return points
}

// sweepTestBundle builds a symbolic one-layer QAOA sweep template.
func sweepTestBundle(t testing.TB, points [][]float64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(4), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", 256, 11)
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: points}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sweepEntriesEqual(a, b *result.Result) error {
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("%d entries vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Value.Index != eb.Value.Index || ea.Count != eb.Count {
			return fmt.Errorf("entry %d: index/count (%d,%d) vs (%d,%d)",
				i, ea.Value.Index, ea.Count, eb.Value.Index, eb.Count)
		}
	}
	return nil
}

// TestSweepCompileOnce is the tentpole acceptance test: a 64-point QAOA
// sweep submitted as one job compiles its plan exactly once
// (sim.CompileCount delta), journals one record carrying all 64 per-point
// result addresses, and returns an indexed result set whose per-point
// counts are bit-identical to 64 individual concrete-angle submissions.
func TestSweepCompileOnce(t *testing.T) {
	points := sweepGrid64()
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	p := NewPool(Options{Workers: 2, Store: st})
	defer p.Close()

	b := sweepTestBundle(t, points)
	before := sim.CompileCount()
	id, err := p.SubmitSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := p.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if stat.State != StateDone {
		t.Fatalf("sweep state %s (err %q)", stat.State, stat.Error)
	}
	if delta := sim.CompileCount() - before; delta != 1 {
		t.Fatalf("sweep compiled %d times, want exactly 1", delta)
	}
	if !stat.Sweep || stat.Points != len(points) || stat.PointsDone != len(points) {
		t.Fatalf("status sweep=%v points=%d done=%d, want sweep 64/64", stat.Sweep, stat.Points, stat.PointsDone)
	}

	// One journal record for the whole grid, carrying every address.
	recs := st.Records()
	if len(recs) != 1 {
		t.Fatalf("journal has %d records, want 1", len(recs))
	}
	if recs[0].Points != len(points) || len(recs[0].Results) != len(points) {
		t.Fatalf("record points=%d results=%d, want %d/%d", recs[0].Points, len(recs[0].Results), len(points), len(points))
	}

	// Per-point bit-identity against individual concrete submissions
	// through the ordinary runtime path.
	results, err := p.SweepResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(points) {
		t.Fatalf("%d results for %d points", len(results), len(points))
	}
	for i, pt := range points {
		cb, err := b.BindPoint(pt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rt.Submit(cb, rt.Options{})
		if err != nil {
			t.Fatalf("concrete point %d: %v", i, err)
		}
		if err := sweepEntriesEqual(results[i], want); err != nil {
			t.Errorf("point %d: %v", i, err)
		}
		if results[i].Meta["intent_fingerprint"] != want.Meta["intent_fingerprint"] {
			t.Errorf("point %d fingerprint differs", i)
		}
	}

	// Result() on a sweep points callers at SweepResult.
	if _, err := p.Result(id); err == nil {
		t.Fatal("Result on a sweep job should error")
	}

	// An identical single-point submission is a cache hit: the sweep's
	// per-point results share the individual jobs' content addresses.
	cb, err := b.BindPoint(points[0])
	if err != nil {
		t.Fatal(err)
	}
	cst, err := p.submit(cb, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cst.CacheHit {
		t.Fatal("individual submission of a swept point should hit the per-point cache")
	}
}

// TestSweepResubmitCached re-submits an identical sweep and expects every
// point served from cache without execution.
func TestSweepResubmitCached(t *testing.T) {
	points := [][]float64{{0.3, 0.7}, {1.1, 0.2}, {0.8, 1.4}}
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	b := sweepTestBundle(t, points)
	id1, err := p.SubmitSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(id1); err != nil {
		t.Fatal(err)
	}
	before := sim.CompileCount()
	id2, err := p.SubmitSweep(sweepTestBundle(t, points))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := p.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("resubmitted sweep state=%s cache_hit=%v, want done from cache", st2.State, st2.CacheHit)
	}
	if delta := sim.CompileCount() - before; delta != 0 {
		t.Fatalf("cached resubmission compiled %d times", delta)
	}
	r1, err := p.SweepResult(id1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.SweepResult(id2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if err := sweepEntriesEqual(r1[i], r2[i]); err != nil {
			t.Errorf("point %d: %v", i, err)
		}
	}
}

// TestSweepRecovery restarts a store-backed pool after a done sweep and
// expects the record (with per-point progress) and the full result set to
// survive, results lazy-loading from disk.
func TestSweepRecovery(t *testing.T) {
	points := [][]float64{{0.3, 0.7}, {1.1, 0.2}, {0.8, 1.4}, {0.5, 0.9}}
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(Options{Workers: 1, Store: st})
	b := sweepTestBundle(t, points)
	id, err := p.SubmitSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(id); err != nil {
		t.Fatal(err)
	}
	want, err := p.SweepResult(id)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	p2 := NewPool(Options{Workers: 1, Store: st2})
	defer p2.Close()
	stat, err := p2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if stat.State != StateDone || !stat.Sweep || stat.Points != len(points) || stat.PointsDone != len(points) {
		t.Fatalf("recovered status %+v, want done sweep %d/%d", stat, len(points), len(points))
	}
	got, err := p2.SweepResult(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if err := sweepEntriesEqual(got[i], want[i]); err != nil {
			t.Errorf("recovered point %d: %v", i, err)
		}
	}
}

// TestSweepInterruptedRequeues replays a journal whose sweep never
// finished and expects the whole grid requeued as one sweep job.
func TestSweepInterruptedRequeues(t *testing.T) {
	points := [][]float64{{0.3, 0.7}, {1.1, 0.2}}
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Journal a submitted sweep by hand — as if the process died before
	// the worker picked it up.
	b := sweepTestBundle(t, points)
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(b)
	if err != nil {
		t.Fatal(err)
	}
	ev := store.Event{T: store.EvSubmitted, Job: "job-00000007", At: time.Now(), Key: key, Engine: "gate.statevector", Bundle: raw, Points: len(points)}
	if err := st.Append(ev); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	p := NewPool(Options{Workers: 1, Store: st2})
	defer p.Close()
	stat, err := p.Wait("job-00000007")
	if err != nil {
		t.Fatal(err)
	}
	if stat.State != StateDone || stat.PointsDone != len(points) {
		t.Fatalf("requeued sweep finished %s with %d/%d points (err %q)", stat.State, stat.PointsDone, len(points), stat.Error)
	}
	if _, err := p.SweepResult("job-00000007"); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitSweepValidation covers the submission guard rails.
func TestSubmitSweepValidation(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	if _, err := p.SubmitSweep(nil); err == nil {
		t.Fatal("nil bundle accepted")
	}
	plain := gateBundle(t, "gate.statevector", 64, 1)
	if _, err := p.SubmitSweep(plain); err == nil {
		t.Fatal("bundle without sweep block accepted")
	}
	big := make([][]float64, MaxSweepPoints+1)
	for i := range big {
		big[i] = []float64{0.1, 0.2}
	}
	over := sweepTestBundle(t, big)
	if _, err := p.SubmitSweep(over); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

// TestWaitTimeout pins the long-poll primitive: a short wait on a pending
// job returns its non-terminal state; a wait spanning completion returns
// the terminal state.
func TestWaitTimeout(t *testing.T) {
	block := make(chan struct{})
	ran := make(chan struct{}, 1)
	fb := &fakeBackend{block: block, ran: ran}
	registerFake(t, "fake.wait", fb)
	p := NewPool(Options{Workers: 1})
	defer p.Close()
	id, err := p.Submit(bundleFor(t, "fake.wait", 1))
	if err != nil {
		t.Fatal(err)
	}
	<-ran // executing and parked on block
	st, err := p.WaitTimeout(id, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("blocked job reported terminal state %s", st.State)
	}
	done := make(chan Status, 1)
	go func() {
		st, _ := p.WaitTimeout(id, 10*time.Second)
		done <- st
	}()
	close(block)
	st = <-done
	if !st.State.Terminal() {
		t.Fatalf("long-poll across completion returned %s", st.State)
	}
	if _, err := p.WaitTimeout("job-junk", time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
}
