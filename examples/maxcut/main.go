// Max-Cut on two backends — the paper's §5 proof of concept through the
// public Program API. The same typed problem (an ISING_SPIN register of
// width 4 over the 4-node cycle) runs on the gate path (QAOA) and the
// anneal path (Ising problem) by changing only the operator formulation
// and the context descriptor.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/core"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/result"
)

func main() {
	g := graph.Cycle(4)

	// The shared quantum data type: four logical spins, Boolean readout.
	newReg := func() *qdt.DataType { return qdt.NewIsingVars("ising_vars", "s", 4) }

	// Gate path: QAOA descriptor stack at the p=1 optimal angles.
	gateProg := core.NewProgram()
	gateReg := newReg()
	if err := gateProg.AddRegister(gateReg); err != nil {
		log.Fatal(err)
	}
	seq, err := algolib.BuildQAOA(gateReg, g, []float64{0.3927}, []float64{1.1781})
	if err != nil {
		log.Fatal(err)
	}
	if err := gateProg.AppendSequence(seq); err != nil {
		log.Fatal(err)
	}
	gateCtx := ctxdesc.NewGate("gate.aer_simulator", 4096, 42)
	gateCtx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	gateRes, err := gateProg.Run(gateCtx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("gate path (QAOA on gate.aer_simulator):")
	show(gateRes, g)

	// Anneal path: one Ising problem descriptor, anneal context.
	annealProg := core.NewProgram()
	annealReg := newReg()
	if err := annealProg.AddRegister(annealReg); err != nil {
		log.Fatal(err)
	}
	op, err := algolib.NewIsingProblem(annealReg, ising.FromMaxCut(g))
	if err != nil {
		log.Fatal(err)
	}
	if err := annealProg.Append(op); err != nil {
		log.Fatal(err)
	}
	annealRes, err := annealProg.Run(ctxdesc.NewAnneal("anneal.neal", 1000, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanneal path (Ising on anneal.neal):")
	show(annealRes, g)
}

func show(res *result.Result, g *graph.Graph) {
	res.Sort()
	cut := 0.0
	total := 0
	for _, e := range res.Entries {
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
	}
	for i, e := range res.Entries {
		if i >= 4 {
			break
		}
		fmt.Printf("  %s  count=%-5d cut=%.0f\n", e.Bitstring, e.Count, g.CutValueBits(e.Index))
	}
	fmt.Printf("  expected cut %.3f (optimum 4, paper's QAOA band ≈3.0–3.2)\n", cut/float64(total))
}
