package algolib

import (
	"fmt"

	"repro/internal/qdt"
	"repro/internal/qop"
)

// NewAdder builds the constant-addition template |x⟩ → |x + c mod 2^n⟩,
// realized on the gate path as a Draper adder (QFT, single-qubit phases,
// inverse QFT).
func NewAdder(reg *qdt.DataType, constant uint64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	op := newOp("add_const", qop.AdderTemplate, reg.ID)
	op.SetParam("constant", float64(constant%(uint64(1)<<uint(reg.Width))))
	n := reg.Width
	qft := EstimateQFTCost(n, 0, true)
	hint := qft.Add(qop.CostHint{OneQ: n}).Add(qft)
	op.CostHint = &hint
	attachDefaultResult(op, reg)
	return op, nil
}

// NewModAdd builds the modular-addition template |x⟩ → |x + a mod M⟩ for
// x < M (identity above M), the paper's §4.2 "modular adder … a main
// component of the Shor algorithm". Realized as an exact reversible
// permutation on the simulator path.
func NewModAdd(reg *qdt.DataType, a, modulus uint64) (*qop.Operator, error) {
	if err := validateModulus(reg, modulus); err != nil {
		return nil, err
	}
	op := newOp("mod_add", qop.ModAddTemplate, reg.ID)
	op.SetParam("a", float64(a%modulus))
	op.SetParam("modulus", float64(modulus))
	op.CostHint = &qop.CostHint{TwoQ: 4 * reg.Width, Depth: 8 * reg.Width, Ancilla: 1}
	attachDefaultResult(op, reg)
	return op, nil
}

// NewModMul builds the modular-multiplication template |x⟩ → |a·x mod M⟩
// for x < M; gcd(a, M) must be 1 so the map is reversible.
func NewModMul(reg *qdt.DataType, a, modulus uint64) (*qop.Operator, error) {
	if err := validateModulus(reg, modulus); err != nil {
		return nil, err
	}
	if gcd(a%modulus, modulus) != 1 {
		return nil, fmt.Errorf("algolib: gcd(%d, %d) != 1; modular multiplication is not reversible", a, modulus)
	}
	op := newOp("mod_mul", qop.ModMulTemplate, reg.ID)
	op.SetParam("a", float64(a%modulus))
	op.SetParam("modulus", float64(modulus))
	w := reg.Width
	op.CostHint = &qop.CostHint{TwoQ: 8 * w * w, Depth: 16 * w * w, Ancilla: w + 1}
	attachDefaultResult(op, reg)
	return op, nil
}

// NewModExp builds the modular-exponentiation template
// |e⟩|y⟩ → |e⟩|y·base^e mod M⟩ for y < M — the Shor workhorse. The
// exponent register is the domain; the target register id rides in
// params.
func NewModExp(expReg, targetReg *qdt.DataType, base, modulus uint64) (*qop.Operator, error) {
	if err := expReg.Validate(); err != nil {
		return nil, err
	}
	if err := validateModulus(targetReg, modulus); err != nil {
		return nil, err
	}
	if gcd(base%modulus, modulus) != 1 {
		return nil, fmt.Errorf("algolib: gcd(%d, %d) != 1; modular exponentiation is not reversible", base, modulus)
	}
	op := newOp("mod_exp", qop.ModExpTemplate, expReg.ID)
	op.SetParam("base", float64(base%modulus))
	op.SetParam("modulus", float64(modulus))
	op.SetParam("target_qdt", targetReg.ID)
	we, wt := expReg.Width, targetReg.Width
	op.CostHint = &qop.CostHint{TwoQ: 8 * we * wt * wt, Depth: 16 * we * wt * wt, Ancilla: wt + 1}
	return op, nil
}

// NewCompare builds the comparison template |x⟩|b⟩ → |x⟩|b ⊕ (x < c)⟩,
// writing into a one-bit flag register.
func NewCompare(reg, flag *qdt.DataType, constant uint64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if err := flag.Validate(); err != nil {
		return nil, err
	}
	if flag.Width != 1 {
		return nil, fmt.Errorf("algolib: compare flag register must have width 1, got %d", flag.Width)
	}
	op := newOp("compare_lt", qop.CompareTemplate, reg.ID)
	op.SetParam("constant", float64(constant))
	op.SetParam("flag_qdt", flag.ID)
	op.CostHint = &qop.CostHint{TwoQ: 2 * reg.Width, Depth: 4 * reg.Width, Ancilla: 1}
	return op, nil
}

// NewCSwap builds a controlled swap of two carriers within the register,
// controlled by a third.
func NewCSwap(reg *qdt.DataType, ctrlBit, aBit, bBit int) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	bits := []int{ctrlBit, aBit, bBit}
	for i, b := range bits {
		if b < 0 || b >= reg.Width {
			return nil, fmt.Errorf("algolib: cswap bit %d out of width %d", b, reg.Width)
		}
		for j := 0; j < i; j++ {
			if bits[j] == b {
				return nil, fmt.Errorf("algolib: cswap bits must be distinct")
			}
		}
	}
	op := newOp("cswap", qop.CSwap, reg.ID)
	op.SetParam("control", ctrlBit)
	op.SetParam("a", aBit)
	op.SetParam("b", bBit)
	op.CostHint = &qop.CostHint{TwoQ: 8, Depth: 12}
	return op, nil
}

// NewSwapTest builds the SWAP-test gadget estimating |⟨ψ_A|ψ_B⟩|²: an
// ancilla register (width 1, domain) controls pairwise swaps between two
// equal-width state registers; P(ancilla = 0) = (1 + |⟨A|B⟩|²)/2.
func NewSwapTest(anc, regA, regB *qdt.DataType) (*qop.Operator, error) {
	for _, d := range []*qdt.DataType{anc, regA, regB} {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if anc.Width != 1 {
		return nil, fmt.Errorf("algolib: swap-test ancilla must have width 1, got %d", anc.Width)
	}
	if regA.Width != regB.Width {
		return nil, fmt.Errorf("algolib: swap-test registers differ in width: %d vs %d", regA.Width, regB.Width)
	}
	op := newOp("swap_test", qop.SwapTest, anc.ID)
	op.SetParam("a_qdt", regA.ID)
	op.SetParam("b_qdt", regB.ID)
	op.CostHint = &qop.CostHint{TwoQ: 8 * regA.Width, OneQ: 2, Depth: 12*regA.Width + 2}
	attachDefaultResult(op, anc)
	return op, nil
}

func validateModulus(reg *qdt.DataType, modulus uint64) error {
	if err := reg.Validate(); err != nil {
		return err
	}
	if modulus < 2 {
		return fmt.Errorf("algolib: modulus %d < 2", modulus)
	}
	if reg.Width < 63 && modulus > uint64(1)<<uint(reg.Width) {
		return fmt.Errorf("algolib: modulus %d exceeds register capacity 2^%d", modulus, reg.Width)
	}
	return nil
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modPow computes base^e mod m.
func modPow(base, e, m uint64) uint64 {
	result := uint64(1) % m
	base %= m
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
	}
	return result
}
