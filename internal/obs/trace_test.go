package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 32 {
			t.Fatalf("trace ID %q has length %d, want 32", id, len(id))
		}
		if !ValidTraceID(id) {
			t.Fatalf("generated ID %q fails its own validator", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	valid := []string{"a", "req-42", "trace.id_A-Z", strings.Repeat("x", MaxTraceIDLen)}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", "has space", "семь", "a/b", "x\n", strings.Repeat("x", MaxTraceIDLen+1)}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestEnsureTraceID(t *testing.T) {
	if got := EnsureTraceID("keep-me"); got != "keep-me" {
		t.Fatalf("valid ID rewritten to %q", got)
	}
	if got := EnsureTraceID("bad id!"); !ValidTraceID(got) || got == "bad id!" {
		t.Fatalf("invalid ID not replaced: %q", got)
	}
	if got := EnsureTraceID(""); !ValidTraceID(got) {
		t.Fatalf("empty ID not replaced: %q", got)
	}
}

func TestNewSpan(t *testing.T) {
	sp := NewSpan("executed", 250*time.Millisecond, "w1")
	if sp.Stage != "executed" || sp.Note != "w1" {
		t.Fatalf("span fields: %+v", sp)
	}
	if sp.DurNs != 250e6 {
		t.Fatalf("DurNs = %d, want 250e6", sp.DurNs)
	}
	if sp.At.IsZero() || sp.At.Location() != time.UTC {
		t.Fatalf("span timestamp not stamped UTC: %v", sp.At)
	}
}
