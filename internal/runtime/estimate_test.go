package runtime

import (
	"testing"

	"repro/internal/ctxdesc"
)

func findEstimate(t *testing.T, ests []Estimate, engine string) Estimate {
	t.Helper()
	for _, e := range ests {
		if e.Engine == engine {
			return e
		}
	}
	t.Fatalf("no estimate for %s", engine)
	return Estimate{}
}

func TestEstimateAllGateBundle(t *testing.T) {
	b := qaoaBundle(t, ctxdesc.NewGate("gate.statevector", 2048, 1))
	ests, err := EstimateAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("%d estimates", len(ests))
	}
	gate := findEstimate(t, ests, "gate.statevector")
	if !gate.Feasible {
		t.Errorf("gate infeasible: %s", gate.Reason)
	}
	if gate.TwoQubitGates == 0 || gate.Depth == 0 || gate.PhysicalUnits != 4 {
		t.Errorf("gate estimate = %+v", gate)
	}
	if gate.DurationNS <= 0 {
		t.Errorf("gate duration = %v", gate.DurationNS)
	}
	pulseEst := findEstimate(t, ests, "pulse.model")
	if !pulseEst.Feasible {
		t.Errorf("pulse infeasible: %s", pulseEst.Reason)
	}
	annealEst := findEstimate(t, ests, "anneal.sa")
	if annealEst.Feasible {
		t.Error("anneal engine claims it can run a QAOA stack")
	}
}

func TestEstimateAllIsingBundle(t *testing.T) {
	ctx := ctxdesc.NewAnneal("anneal.sa", 500, 1)
	ctx.Anneal.Sweeps = 200
	b := isingBundle(t, ctx)
	ests, err := EstimateAll(b)
	if err != nil {
		t.Fatal(err)
	}
	annealEst := findEstimate(t, ests, "anneal.sa")
	if !annealEst.Feasible {
		t.Errorf("anneal infeasible: %s", annealEst.Reason)
	}
	// 500 reads × 200 sweeps × 4 spins × 2ns.
	if want := 500.0 * 200 * 4 * perFlipNS; annealEst.DurationNS != want {
		t.Errorf("anneal duration = %v, want %v", annealEst.DurationNS, want)
	}
	gate := findEstimate(t, ests, "gate.statevector")
	if gate.Feasible {
		t.Error("gate engine claims it can run an Ising problem")
	}
}

func TestEstimateScalesWithShots(t *testing.T) {
	small := qaoaBundle(t, ctxdesc.NewGate("gate.statevector", 100, 1))
	large := qaoaBundle(t, ctxdesc.NewGate("gate.statevector", 10000, 1))
	es, err := EstimateAll(small)
	if err != nil {
		t.Fatal(err)
	}
	el, err := EstimateAll(large)
	if err != nil {
		t.Fatal(err)
	}
	ds := findEstimate(t, es, "gate.statevector").DurationNS
	dl := findEstimate(t, el, "gate.statevector").DurationNS
	if dl <= ds {
		t.Errorf("duration did not scale with shots: %v vs %v", ds, dl)
	}
}

func TestEstimateInvalidBundle(t *testing.T) {
	b := qaoaBundle(t, nil)
	b.Operators = nil
	if _, err := EstimateAll(b); err == nil {
		t.Error("invalid bundle estimated")
	}
}
