package backend

import (
	"testing"

	"repro/internal/ctxdesc"
)

func TestNoiseFromOptionsAbsent(t *testing.T) {
	nm, err := noiseFromOptions(ctxdesc.New())
	if err != nil || !nm.Zero() {
		t.Errorf("empty context noise = %+v, %v", nm, err)
	}
	ctx := ctxdesc.NewGate("g", 1, 0)
	nm, err = noiseFromOptions(ctx)
	if err != nil || !nm.Zero() {
		t.Errorf("no-options noise = %+v, %v", nm, err)
	}
}

func TestNoiseFromOptionsParses(t *testing.T) {
	ctx := ctxdesc.NewGate("g", 1, 0)
	ctx.Exec.Options = map[string]any{
		"noise": map[string]any{"prob_1q": 0.01, "prob_2q": 0.05, "readout_flip": 0.02},
	}
	nm, err := noiseFromOptions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if nm.Prob1Q != 0.01 || nm.Prob2Q != 0.05 || nm.ReadoutFlip != 0.02 {
		t.Errorf("parsed noise = %+v", nm)
	}
}

func TestNoiseFromOptionsRejects(t *testing.T) {
	cases := []struct {
		name  string
		block any
	}{
		{"non-object", "loud"},
		{"mistyped field", map[string]any{"prob_1q": "high"}},
		{"out of range", map[string]any{"prob_2q": 1.5}},
		{"negative", map[string]any{"readout_flip": -0.1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := ctxdesc.NewGate("g", 1, 0)
			ctx.Exec.Options = map[string]any{"noise": tc.block}
			if _, err := noiseFromOptions(ctx); err == nil {
				t.Error("invalid noise block accepted")
			}
		})
	}
}

func TestGateBackendNoisyRunEndToEnd(t *testing.T) {
	ctx := ctxdesc.NewGate("gate.statevector", 1024, 3)
	ctx.Exec.Options = map[string]any{
		"noise": map[string]any{"prob_1q": 0.02, "prob_2q": 0.05},
	}
	res, err := (&Gate{engine: "gate.statevector"}).Execute(gateMaxCutBundle(t, 0.5, 0.3, ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Meta["noise"]; !ok {
		t.Error("noise model missing from meta")
	}
	total := 0
	for _, e := range res.Entries {
		total += e.Count
	}
	if total != 1024 {
		t.Errorf("noisy run returned %d samples", total)
	}
}
