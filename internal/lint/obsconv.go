package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRE is the registry's own validName contract plus the
// Prometheus best-practice shape: lower-snake_case starting with a
// letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// obsRegMethods are the internal/obs Registry registration entry points.
var obsRegMethods = map[string]bool{
	"Counter":         true,
	"Gauge":           true,
	"GaugeFunc":       true,
	"Histogram":       true,
	"CounterFamily":   true,
	"HistogramFamily": true,
}

// famBaseKind maps a family registration to the instrument kind its
// children register as, for kind-clash detection against plain
// registrations of the same name.
var famBaseKind = map[string]string{
	"CounterFamily":   "Counter",
	"HistogramFamily": "Histogram",
}

// maxFamilyValues mirrors the obs registry's cardinality bound; a larger
// "enum" is almost certainly a dynamic value set in disguise.
const maxFamilyValues = 32

// ObsConv enforces the Prometheus exposition conventions the /metrics
// surface promises: metric names are lower-snake_case; counters (and
// only counters) end in _total; nothing claims the _count/_sum/_bucket
// suffixes the histogram renderer owns; a name is never registered
// twice in one registry construction, nor with two different instrument
// kinds in one package (the registry panics on a kind clash at
// runtime — this finds it at vet time); and a registration with empty
// help text is only valid as a lookup of a name some other call in the
// package registers with real help.
func ObsConv() *Analyzer {
	return &Analyzer{
		Name: "obsconv",
		Doc:  "obs instrument names follow Prometheus conventions and register exactly once per construction",
		Run:  runObsConv,
	}
}

// obsReg is one literal-name registration call site.
type obsReg struct {
	name  string
	kind  string // method name: Counter, Gauge, GaugeFunc, Histogram, CounterFamily, HistogramFamily
	help  string
	scope string // enclosing function (duplicate detection unit)
	node  ast.Node

	// Family-only fields. A family registration carries a label name and
	// a value enum; both must be literals so the exposition's label
	// cardinality is provably bounded at vet time.
	label     string
	labelLit  bool
	values    []string
	valuesLit bool
}

func runObsConv(p *Package) []Diagnostic {
	var regs []obsReg
	for _, f := range p.Files {
		if p.inTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			scope := "package-level init"
			if fd, ok := decl.(*ast.FuncDecl); ok {
				scope = fd.Name.Name
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if r, ok := p.obsRegistration(call); ok {
					r.scope = scope
					regs = append(regs, r)
				}
				return true
			})
		}
	}
	if len(regs) == 0 {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      p.position(n),
			Analyzer: "obsconv",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	kindOf := map[string]string{}   // name → first kind seen
	seenIn := map[string]ast.Node{} // scope+name → first registration
	helpFor := map[string]bool{}    // name → registered with non-empty help somewhere
	for _, r := range regs {
		if r.help != "" {
			helpFor[r.name] = true
		}
	}
	for _, r := range regs {
		// A family registers children of its base instrument kind; its
		// name obeys the same suffix rules and clashes with plain
		// registrations of that kind.
		baseKind := r.kind
		if bk, fam := famBaseKind[r.kind]; fam {
			baseKind = bk
			checkFamily(report, r)
		}
		if !metricNameRE.MatchString(r.name) {
			report(r.node, "metric name %q is not lower-snake_case ([a-z][a-z0-9_]*)", r.name)
		}
		if baseKind == "Counter" && !strings.HasSuffix(r.name, "_total") {
			report(r.node, "counter %q must end in _total", r.name)
		}
		if baseKind != "Counter" && strings.HasSuffix(r.name, "_total") {
			report(r.node, "%s %q must not end in _total (reserved for counters)", strings.ToLower(r.kind), r.name)
		}
		for _, suffix := range []string{"_count", "_sum", "_bucket"} {
			if strings.HasSuffix(r.name, suffix) {
				report(r.node, "metric name %q ends in %s, which the histogram exposition owns", r.name, suffix)
			}
		}
		if first, ok := kindOf[r.name]; !ok {
			kindOf[r.name] = baseKind
		} else if first != baseKind {
			report(r.node, "metric %q registered as %s here but as %s elsewhere in the package (the registry panics on kind clashes)", r.name, baseKind, first)
		}
		key := r.scope + "\x00" + r.name
		if _, dup := seenIn[key]; dup {
			report(r.node, "duplicate registration of %q in %s", r.name, r.scope)
		} else {
			seenIn[key] = r.node
		}
		if r.help == "" && !helpFor[r.name] {
			report(r.node, "metric %q has empty help and no registration with help in this package — lookup of a never-registered name?", r.name)
		}
	}
	return diags
}

// checkFamily enforces the labeled-family contract: the label name is a
// literal in lower-snake_case, and the value set is a literal []string
// enum — non-empty, at most maxFamilyValues entries, no empty strings,
// no duplicates. Rejecting non-literal value sets is what guarantees a
// job or trace ID can never become a label value: unbounded-cardinality
// labels never survive vet.
func checkFamily(report func(ast.Node, string, ...any), r obsReg) {
	if !r.labelLit {
		report(r.node, "family %q label name must be a string literal", r.name)
	} else if !metricNameRE.MatchString(r.label) {
		report(r.node, "family %q label name %q is not lower-snake_case ([a-z][a-z0-9_]*)", r.name, r.label)
	}
	if !r.valuesLit {
		report(r.node, "family %q value set must be a literal []string of string literals — dynamic values are unbounded label cardinality", r.name)
		return
	}
	if len(r.values) == 0 {
		report(r.node, "family %q has an empty value set", r.name)
	}
	if len(r.values) > maxFamilyValues {
		report(r.node, "family %q has %d values; the registry caps label cardinality at %d", r.name, len(r.values), maxFamilyValues)
	}
	seen := map[string]bool{}
	for _, v := range r.values {
		if v == "" {
			report(r.node, "family %q has an empty label value", r.name)
			continue
		}
		if seen[v] {
			report(r.node, "family %q repeats label value %q", r.name, v)
		}
		seen[v] = true
	}
}

// obsRegistration matches a call to an internal/obs Registry
// registration method with a literal metric name, returning the parsed
// site. Non-literal names are invisible to static checking and skipped.
func (p *Package) obsRegistration(call *ast.CallExpr) (obsReg, bool) {
	fn := p.funcObj(call)
	if fn == nil || !obsRegMethods[fn.Name()] {
		return obsReg{}, false
	}
	pkg, typ := recvTypePkgPath(fn)
	if typ != "Registry" || !hasPathSuffix(pkg, "internal/obs") {
		return obsReg{}, false
	}
	if len(call.Args) < 2 {
		return obsReg{}, false
	}
	name, ok := stringLit(call.Args[0])
	if !ok {
		return obsReg{}, false
	}
	help, helpIsLit := stringLit(call.Args[1])
	if !helpIsLit {
		help = "<dynamic>" // non-literal help counts as provided
	}
	r := obsReg{name: name, kind: fn.Name(), help: help, node: call}
	if _, fam := famBaseKind[r.kind]; fam {
		// CounterFamily(name, help, label, values);
		// HistogramFamily(name, help, buckets, label, values).
		labelIdx := 2
		if r.kind == "HistogramFamily" {
			labelIdx = 3
		}
		if len(call.Args) <= labelIdx+1 {
			return obsReg{}, false
		}
		r.label, r.labelLit = stringLit(call.Args[labelIdx])
		r.values, r.valuesLit = stringSliceLit(call.Args[labelIdx+1])
	}
	return r, true
}

// stringSliceLit unpacks a literal []string{...} whose elements are all
// string literals. Anything else — a variable, an append, a call — is
// reported as non-literal, because the analyzer cannot bound its
// cardinality or prove it free of per-job identifiers.
func stringSliceLit(e ast.Expr) ([]string, bool) {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok {
		return nil, false
	}
	out := make([]string, 0, len(cl.Elts))
	for _, el := range cl.Elts {
		s, ok := stringLit(el)
		if !ok {
			return nil, false
		}
		out = append(out, s)
	}
	return out, true
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
