// Period finding (the Shor-algorithm core) on the middle layer: uniform
// superposition over exponents, the modular-exponentiation template
// (|e⟩|1⟩ → |e⟩|7^e mod 15⟩ — the paper's §4.2 "modular adder …
// main component of the Shor algorithm" family), an inverse QFT on the
// exponent register, and a typed readout. The measured distribution peaks
// at multiples of 2^n/r; for a = 7, N = 15 the order is r = 4.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/core"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
)

func main() {
	const (
		a       = 7
		modulus = 15
		nCount  = 4 // exponent register width: estimates phase to 1/16
	)
	counting := qdt.New("exponent", "e", nCount, qdt.IntRegister, qdt.AsInt)
	target := qdt.New("work", "y", 4, qdt.IntRegister, qdt.AsInt)

	prog := core.NewProgram()
	for _, r := range []*qdt.DataType{counting, target} {
		if err := prog.AddRegister(r); err != nil {
			log.Fatal(err)
		}
	}

	prepE, err := algolib.NewPrepUniform(counting)
	if err != nil {
		log.Fatal(err)
	}
	prepY, err := algolib.NewPrepBasis(target, 1)
	if err != nil {
		log.Fatal(err)
	}
	modExp, err := algolib.NewModExp(counting, target, a, modulus)
	if err != nil {
		log.Fatal(err)
	}
	iqft, err := algolib.NewQFT(counting, 0, true, true /* inverse */)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Append(prepE, prepY, modExp, iqft, algolib.NewMeasurement(counting)); err != nil {
		log.Fatal(err)
	}

	res, err := prog.Run(ctxdesc.NewGate("gate.statevector", 8192, 7))
	if err != nil {
		log.Fatal(err)
	}
	res.Sort()
	trueOrder, err := algolib.OrderOf(a, modulus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("period finding for %d^e mod %d (true order r = %d)\n", a, modulus, trueOrder)
	fmt.Println("measured k / 16 ≈ s/r; expect peaks at k ∈ {0, 4, 8, 12}:")
	peaks := 0
	recovered := 0
	for _, e := range res.Entries {
		frac := float64(e.Count) / float64(res.Samples)
		marker := ""
		if e.Index%4 == 0 {
			marker = "  <- s/4 peak"
			peaks += e.Count
		}
		// Classical post-processing: continued fractions on k/2^n.
		if r, ok, err := algolib.RecoverPeriod(e.Index, nCount, a, modulus, modulus); err == nil && ok && r == trueOrder {
			recovered += e.Count
			marker += "  (CF recovers r=4)"
		}
		if frac > 0.01 {
			fmt.Printf("  k=%-3d count=%-5d (%.1f%%)%s\n", e.Index, e.Count, 100*frac, marker)
		}
	}
	fmt.Printf("probability mass on the four s/4 peaks: %.1f%% (ideal 100%%)\n",
		100*float64(peaks)/float64(res.Samples))
	fmt.Printf("shots whose continued fractions recover r directly: %.1f%% (k=4 and k=12)\n",
		100*float64(recovered)/float64(res.Samples))
	fmt.Printf("with r = 4: gcd(%d^{r/2}±1, %d) yields the factors {3, 5}\n", a, modulus)
}
