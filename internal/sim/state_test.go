package sim

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/gates"
	"repro/internal/rng"
)

func mustState(t *testing.T, n int) *State {
	t.Helper()
	s, err := NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func apply1(t *testing.T, s *State, name gates.Name, q int, params ...float64) {
	t.Helper()
	m, err := gates.Unitary1(name, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply1(m, q); err != nil {
		t.Fatal(err)
	}
}

func TestNewStateBounds(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("0-qubit state accepted")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("oversized state accepted")
	}
	s := mustState(t, 3)
	if s.Dim() != 8 || s.NumQubits() != 3 {
		t.Errorf("dim %d, n %d", s.Dim(), s.NumQubits())
	}
	if s.Probability(0) != 1 {
		t.Error("initial state not |000⟩")
	}
}

func TestHadamardSuperposition(t *testing.T) {
	s := mustState(t, 1)
	apply1(t, s, gates.H, 0)
	for k := uint64(0); k < 2; k++ {
		if math.Abs(s.Probability(k)-0.5) > 1e-12 {
			t.Errorf("P(%d) = %v, want 0.5", k, s.Probability(k))
		}
	}
	// H² = I.
	apply1(t, s, gates.H, 0)
	if math.Abs(s.Probability(0)-1) > 1e-12 {
		t.Error("H·H != I")
	}
}

func TestXFlipsBit(t *testing.T) {
	s := mustState(t, 3)
	apply1(t, s, gates.X, 1)
	if math.Abs(s.Probability(2)-1) > 1e-12 {
		t.Errorf("X on qubit 1 gave P(2) = %v", s.Probability(2))
	}
}

func TestBellState(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.H, 0)
	if err := s.ApplyCX(0, 1); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(3)-0.5) > 1e-12 {
		t.Errorf("Bell probabilities: %v %v %v %v",
			s.Probability(0), s.Probability(1), s.Probability(2), s.Probability(3))
	}
	if s.Probability(1) > 1e-12 || s.Probability(2) > 1e-12 {
		t.Error("Bell state has weight on |01⟩/|10⟩")
	}
}

func TestGHZ(t *testing.T) {
	s := mustState(t, 5)
	apply1(t, s, gates.H, 0)
	for q := 1; q < 5; q++ {
		if err := s.ApplyCX(0, q); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(s.Probability(0)-0.5) > 1e-12 || math.Abs(s.Probability(31)-0.5) > 1e-12 {
		t.Error("GHZ state wrong")
	}
	if math.Abs(s.Norm()-1) > 1e-12 {
		t.Errorf("norm = %v", s.Norm())
	}
}

func TestCZPhase(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.H, 0)
	apply1(t, s, gates.H, 1)
	if err := s.ApplyCZ(0, 1); err != nil {
		t.Fatal(err)
	}
	// Amplitude of |11⟩ is negative.
	if real(s.Amplitude(3)) > 0 {
		t.Error("CZ did not flip |11⟩ phase")
	}
	if real(s.Amplitude(1)) < 0 || real(s.Amplitude(2)) < 0 {
		t.Error("CZ touched wrong amplitudes")
	}
}

func TestCPAngle(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.X, 0)
	apply1(t, s, gates.X, 1)
	theta := 0.7312
	if err := s.ApplyCP(theta, 0, 1); err != nil {
		t.Fatal(err)
	}
	want := cmplx.Exp(complex(0, theta))
	if cmplx.Abs(s.Amplitude(3)-want) > 1e-12 {
		t.Errorf("CP phase = %v, want %v", s.Amplitude(3), want)
	}
}

func TestSwapExchangesQubits(t *testing.T) {
	s := mustState(t, 3)
	apply1(t, s, gates.X, 0) // |001⟩
	if err := s.ApplySwap(0, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(4)-1) > 1e-12 {
		t.Error("swap did not move the excitation")
	}
	// Swap equals 3 CXs.
	a := mustState(t, 2)
	apply1(t, a, gates.H, 0)
	apply1(t, a, gates.T, 1)
	apply1(t, a, gates.H, 1)
	b := a.Clone()
	if err := a.ApplySwap(0, 1); err != nil {
		t.Fatal(err)
	}
	_ = b.ApplyCX(0, 1)
	_ = b.ApplyCX(1, 0)
	_ = b.ApplyCX(0, 1)
	for k := uint64(0); k < 4; k++ {
		if cmplx.Abs(a.Amplitude(k)-b.Amplitude(k)) > 1e-12 {
			t.Errorf("swap != cx·cx·cx at %d", k)
		}
	}
}

// TestClonePreservesSerialSweepPin guards the Clone regression: a clone of
// a serial-pinned state (trajectory shot workers pin their states) must
// stay pinned, or cloned states would regain nested sweep parallelism.
func TestClonePreservesSerialSweepPin(t *testing.T) {
	s := mustState(t, 3)
	apply1(t, s, gates.H, 0)
	s.noParallel = true
	cl := s.Clone()
	if !cl.noParallel {
		t.Error("Clone dropped the serial-sweep pin")
	}
	// Deep copy: mutating the clone must not touch the original.
	apply1(t, cl, gates.X, 1)
	if cmplx.Abs(s.Amplitude(2)) > 0 {
		t.Error("clone shares amplitude planes with the original")
	}
}

func TestCCXTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s := mustState(t, 3)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				apply1(t, s, gates.X, q)
			}
		}
		if err := s.ApplyCCX(0, 1, 2); err != nil {
			t.Fatal(err)
		}
		want := in
		if in&3 == 3 {
			want = in ^ 4
		}
		if math.Abs(s.Probability(want)-1) > 1e-12 {
			t.Errorf("CCX(%03b) did not produce %03b", in, want)
		}
	}
}

func TestCSwapTruthTable(t *testing.T) {
	for in := uint64(0); in < 8; in++ {
		s := mustState(t, 3)
		for q := 0; q < 3; q++ {
			if in>>uint(q)&1 == 1 {
				apply1(t, s, gates.X, q)
			}
		}
		if err := s.ApplyCSwap(0, 1, 2); err != nil {
			t.Fatal(err)
		}
		want := in
		if in&1 == 1 {
			b1 := in >> 1 & 1
			b2 := in >> 2 & 1
			want = in&1 | b1<<2 | b2<<1
		}
		if math.Abs(s.Probability(want)-1) > 1e-12 {
			t.Errorf("CSWAP(%03b) did not produce %03b", in, want)
		}
	}
}

// TestApply2MatchesNamedGates checks the direct dense two-qubit path
// against the specialized gate methods, in both operand orders.
func TestApply2MatchesNamedGates(t *testing.T) {
	prep := func() *State {
		s := mustState(t, 3)
		apply1(t, s, gates.H, 0)
		apply1(t, s, gates.T, 1)
		apply1(t, s, gates.RY, 2, 0.8)
		apply1(t, s, gates.H, 2)
		return s
	}
	cx := gates.Matrix4{{1, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}} // control = local bit 0
	for _, ops := range [][2]int{{0, 2}, {2, 0}, {1, 2}} {
		a, b := prep(), prep()
		// Apply2's local bit 0 is the first operand: control = ops[0].
		if err := a.Apply2(cx, ops[0], ops[1]); err != nil {
			t.Fatal(err)
		}
		if err := b.ApplyCX(ops[0], ops[1]); err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 8; k++ {
			if cmplx.Abs(a.Amplitude(k)-b.Amplitude(k)) > 1e-12 {
				t.Errorf("Apply2 CX(%d,%d) != ApplyCX at %d", ops[0], ops[1], k)
			}
		}
	}
}

// TestApply2KronOfSingles checks the basis convention: Kron2(mHi, mLo)
// applied to (q0, q1) must equal applying mLo to q0 and mHi to q1.
func TestApply2KronOfSingles(t *testing.T) {
	mLo, _ := gates.Unitary1(gates.RY, []float64{0.7})
	mHi, _ := gates.Unitary1(gates.SX, nil)
	a, b := mustState(t, 4), mustState(t, 4)
	apply1(t, a, gates.H, 1)
	apply1(t, b, gates.H, 1)
	apply1(t, a, gates.H, 3)
	apply1(t, b, gates.H, 3)
	if err := a.Apply2(gates.Kron2(mHi, mLo), 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply1(mLo, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Apply1(mHi, 3); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 16; k++ {
		if cmplx.Abs(a.Amplitude(k)-b.Amplitude(k)) > 1e-12 {
			t.Fatalf("Kron2 application mismatch at %d: %v vs %v", k, a.Amplitude(k), b.Amplitude(k))
		}
	}
}

// TestApply2HighPairBlockedSweep pushes a dense pair onto high qubits of a
// state large enough to cross the parallel threshold, exercising the
// cache-blocked sweep in both the serial and fan-out paths.
func TestApply2HighPairBlockedSweep(t *testing.T) {
	n := 15 // 2^15/4 = 8192 quads: at the fan-out threshold
	m := gates.Mul4(gates.Kron2(mustU1(t, gates.H), mustU1(t, gates.H)),
		gates.Matrix4{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}})
	par, ser := mustState(t, n), mustState(t, n)
	ser.noParallel = true
	for _, s := range []*State{par, ser} {
		apply1(t, s, gates.H, 0)
		apply1(t, s, gates.RY, n-1, 0.6)
		if err := s.Apply2(m, n-2, n-1); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(par.Norm()-1) > 1e-9 || math.Abs(ser.Norm()-1) > 1e-9 {
		t.Fatalf("norms drifted: %v, %v", par.Norm(), ser.Norm())
	}
	for _, k := range []uint64{0, 1, 1 << (n - 1), 1<<n - 1, 12345} {
		if cmplx.Abs(par.Amplitude(k)-ser.Amplitude(k)) > 1e-12 {
			t.Fatalf("serial and parallel blocked sweeps disagree at %d", k)
		}
	}
}

func mustU1(t *testing.T, n gates.Name, params ...float64) gates.Matrix2 {
	t.Helper()
	m, err := gates.Unitary1(n, params)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOperandValidation(t *testing.T) {
	s := mustState(t, 2)
	m, _ := gates.Unitary1(gates.X, nil)
	if err := s.Apply1(m, 5); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if err := s.ApplyCX(0, 0); err == nil {
		t.Error("duplicate qubits accepted")
	}
	if err := s.ApplyCCX(0, 1, 7); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestApplyPermuteCyclic(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.X, 0) // index 1
	// Cyclic +1 mod 4 over qubits [0,1].
	if err := s.ApplyPermute([]int{0, 1}, []uint64{1, 2, 3, 0}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(2)-1) > 1e-12 {
		t.Error("permute did not map 1 -> 2")
	}
}

func TestApplyPermuteSubsetOfLargerState(t *testing.T) {
	// Permute only qubits {0, 2} of a 3-qubit state; qubit 1 is a spectator.
	s := mustState(t, 3)
	apply1(t, s, gates.X, 1) // |010⟩ = index 2
	apply1(t, s, gates.X, 0) // |011⟩ = index 3
	// Over locals (q0, q2): local = q0 + 2·q2; swap local 1 <-> 2
	// (i.e. swap q0 and q2).
	if err := s.ApplyPermute([]int{0, 2}, []uint64{0, 2, 1, 3}); err != nil {
		t.Fatal(err)
	}
	// q0=1 becomes q2=1: index = 2 (q1) + 4 (q2) = 6.
	if math.Abs(s.Probability(6)-1) > 1e-12 {
		t.Error("subset permute wrong")
	}
}

func TestPermutePreservesNorm(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := mustStateQuick(4)
		// Random product state.
		for q := 0; q < 4; q++ {
			m, _ := gates.Unitary1(gates.RY, []float64{r.Float64() * 3})
			_ = s.Apply1(m, q)
			m2, _ := gates.Unitary1(gates.RZ, []float64{r.Float64() * 3})
			_ = s.Apply1(m2, q)
		}
		// Random permutation over qubits 1..2.
		perm := make([]uint64, 4)
		for i, p := range r.Perm(4) {
			perm[i] = uint64(p)
		}
		if err := s.ApplyPermute([]int{1, 2}, perm); err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func mustStateQuick(n int) *State {
	s, err := NewState(n)
	if err != nil {
		panic(err)
	}
	return s
}

func TestApplyInit(t *testing.T) {
	s := mustState(t, 2)
	amps := []complex128{0.6, 0, 0, 0.8}
	if err := s.ApplyInit([]int{0, 1}, amps); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Probability(0)-0.36) > 1e-12 || math.Abs(s.Probability(3)-0.64) > 1e-12 {
		t.Error("init amplitudes wrong")
	}
}

func TestApplyInitRejects(t *testing.T) {
	s := mustState(t, 2)
	if err := s.ApplyInit([]int{0}, []complex128{2, 0}); err == nil {
		t.Error("unnormalized init accepted")
	}
	apply1(t, s, gates.X, 0)
	if err := s.ApplyInit([]int{0}, []complex128{1, 0}); err == nil {
		t.Error("init on non-|0⟩ qubit accepted")
	}
	if err := s.ApplyInit([]int{1}, []complex128{1}); err == nil {
		t.Error("wrong init size accepted")
	}
}

func TestInitOnSubsetWithSpectators(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.H, 0) // qubit 0 in superposition, qubit 1 still |0⟩
	inv := 1 / math.Sqrt2
	if err := s.ApplyInit([]int{1}, []complex128{complex(inv, 0), complex(inv, 0)}); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 4; k++ {
		if math.Abs(s.Probability(k)-0.25) > 1e-12 {
			t.Errorf("P(%d) = %v, want 0.25", k, s.Probability(k))
		}
	}
}

func TestExpectationDiagonal(t *testing.T) {
	s := mustState(t, 2)
	apply1(t, s, gates.H, 0)
	apply1(t, s, gates.H, 1)
	// f(k) = k: uniform over 0..3 -> mean 1.5.
	got := s.ExpectationDiagonal(func(k uint64) float64 { return float64(k) })
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("expectation = %v, want 1.5", got)
	}
}

func TestUnitarityPreservedUnderRandomCircuits(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		s := mustStateQuick(5)
		oneQ := []gates.Name{gates.H, gates.X, gates.T, gates.SX, gates.RZ, gates.RY}
		for step := 0; step < 40; step++ {
			if r.Float64() < 0.3 {
				a := r.Intn(5)
				b := (a + 1 + r.Intn(4)) % 5
				_ = s.ApplyCX(a, b)
			} else {
				g := oneQ[r.Intn(len(oneQ))]
				info, _ := gates.Lookup(g)
				var params []float64
				if info.Params == 1 {
					params = []float64{r.Float64()*6 - 3}
				}
				m, _ := gates.Unitary1(g, params)
				_ = s.Apply1(m, r.Intn(5))
			}
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// A 14-qubit state crosses parallelThreshold; verify the fan-out path
	// produces the same state as a small serial reference computed via a
	// different route (H on all qubits = uniform).
	s := mustState(t, 14)
	m, _ := gates.Unitary1(gates.H, nil)
	for q := 0; q < 14; q++ {
		if err := s.Apply1(m, q); err != nil {
			t.Fatal(err)
		}
	}
	want := 1.0 / float64(s.Dim())
	for _, k := range []uint64{0, 1, 5000, uint64(s.Dim() - 1)} {
		if math.Abs(s.Probability(k)-want) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", k, s.Probability(k), want)
		}
	}
	if math.Abs(s.Norm()-1) > 1e-9 {
		t.Errorf("norm = %v", s.Norm())
	}
}
