package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
)

// NewLogger builds a slog.Logger writing to w in the given format:
// "json" for machine-ingested output, anything else (conventionally
// "text") for logfmt-style key=value lines.
func NewLogger(format string, w io.Writer) *slog.Logger {
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, nil))
	}
	return slog.New(slog.NewTextHandler(w, nil))
}

// Discard returns a logger that drops everything — the default for
// library layers whose caller did not wire one up.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }

// Recover wraps an HTTP handler with panic recovery: a panicking
// handler logs the stack (with the request's trace ID, method, path,
// and the tail of the process flight recorder — the last things the
// process did before the panic) and answers 500 JSON instead of tearing
// down the connection's serve goroutine. http.ErrAbortHandler passes
// through — it is the sanctioned way to abort a response mid-stream.
// Panics are counted in panics when non-nil.
func Recover(next http.Handler, log *slog.Logger, panics *Counter) http.Handler {
	if log == nil {
		log = Discard()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			if panics != nil {
				panics.Inc()
			}
			log.Error("handler panic",
				"err", fmt.Sprint(v),
				"method", r.Method,
				"path", r.URL.Path,
				"trace", r.Header.Get(TraceHeader),
				"stack", string(debug.Stack()),
				"flight", flightSummary(defaultFlight.Tail(16)),
			)
			// Headers may already be out; WriteHeader then double-logs
			// to the server's ErrorLog but the connection stays usable
			// for the common not-yet-written case.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			io.WriteString(w, `{"error":"internal server error"}`+"\n")
		}()
		next.ServeHTTP(w, r)
	})
}
