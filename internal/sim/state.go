// Package sim implements the statevector simulator backing the middle
// layer's gate path — the substitute for the paper's IBM Qiskit Aer state
// vector simulator.
//
// The simulator stores all 2^n complex amplitudes, applies unitary gates
// exactly, and samples measurement outcomes from the Born distribution
// with a seeded generator. Gate application parallelizes across goroutines
// once the state is large enough for the fan-out to pay for itself, in the
// HPC spirit of the paper: the state vector is the hot data structure and
// every gate is a bandwidth-bound sweep over it.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"sync"

	"repro/internal/gates"
)

// parallelThreshold is the amplitude count above which gate sweeps fan out
// to worker goroutines. Below it, goroutine overhead dominates.
const parallelThreshold = 1 << 13

// MaxQubits bounds state allocation (2^26 amplitudes = 1 GiB).
const MaxQubits = 26

// State is an n-qubit statevector. Qubit 0 is the least significant bit of
// the basis index: |q_{n-1} … q_1 q_0⟩ ↔ index Σ q_i 2^i.
type State struct {
	n    int
	amps []complex128
}

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", n, MaxQubits)
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s, nil
}

// NumQubits returns n.
func (s *State) NumQubits() int { return s.n }

// Dim returns 2^n.
func (s *State) Dim() int { return len(s.amps) }

// Amplitude returns the amplitude of basis state k.
func (s *State) Amplitude(k uint64) complex128 { return s.amps[k] }

// Probability returns |amp_k|².
func (s *State) Probability(k uint64) float64 {
	a := s.amps[k]
	return real(a)*real(a) + imag(a)*imag(a)
}

// Norm returns Σ|amp|², which must stay 1 under unitary evolution.
func (s *State) Norm() float64 {
	total := 0.0
	for _, a := range s.amps {
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	return total
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	cp := &State{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(cp.amps, s.amps)
	return cp
}

// parallelFor splits [0, n) across workers when n is large.
func parallelFor(n int, body func(lo, hi int)) {
	if n < parallelThreshold {
		body(0, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Apply1 applies a one-qubit unitary to qubit q.
func (s *State) Apply1(m gates.Matrix2, q int) error {
	if q < 0 || q >= s.n {
		return fmt.Errorf("sim: qubit %d out of [0,%d)", q, s.n)
	}
	stride := 1 << uint(q)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&stride != 0 {
				continue
			}
			j := i | stride
			a0, a1 := a[i], a[j]
			a[i] = m[0][0]*a0 + m[0][1]*a1
			a[j] = m[1][0]*a0 + m[1][1]*a1
		}
	})
	return nil
}

// ApplyCX applies a controlled-X with the given control and target.
func (s *State) ApplyCX(ctrl, tgt int) error {
	if err := s.checkDistinct(ctrl, tgt); err != nil {
		return err
	}
	cm := 1 << uint(ctrl)
	tm := 1 << uint(tgt)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&cm != 0 && i&tm == 0 {
				j := i | tm
				a[i], a[j] = a[j], a[i]
			}
		}
	})
	return nil
}

// ApplyCZ applies a controlled-Z.
func (s *State) ApplyCZ(a1, a2 int) error {
	if err := s.checkDistinct(a1, a2); err != nil {
		return err
	}
	m := (1 << uint(a1)) | (1 << uint(a2))
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&m == m {
				a[i] = -a[i]
			}
		}
	})
	return nil
}

// ApplyCP applies a controlled phase of angle lambda.
func (s *State) ApplyCP(lambda float64, a1, a2 int) error {
	if err := s.checkDistinct(a1, a2); err != nil {
		return err
	}
	ph := cmplx.Exp(complex(0, lambda))
	m := (1 << uint(a1)) | (1 << uint(a2))
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&m == m {
				a[i] *= ph
			}
		}
	})
	return nil
}

// ApplySwap swaps two qubits.
func (s *State) ApplySwap(q1, q2 int) error {
	if err := s.checkDistinct(q1, q2); err != nil {
		return err
	}
	m1 := 1 << uint(q1)
	m2 := 1 << uint(q2)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Process only (q1=1, q2=0) to visit each pair once.
			if i&m1 != 0 && i&m2 == 0 {
				j := (i &^ m1) | m2
				a[i], a[j] = a[j], a[i]
			}
		}
	})
	return nil
}

// ApplyCCX applies a Toffoli gate.
func (s *State) ApplyCCX(c1, c2, tgt int) error {
	if err := s.checkDistinct(c1, c2, tgt); err != nil {
		return err
	}
	cm := (1 << uint(c1)) | (1 << uint(c2))
	tm := 1 << uint(tgt)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&cm == cm && i&tm == 0 {
				j := i | tm
				a[i], a[j] = a[j], a[i]
			}
		}
	})
	return nil
}

// ApplyCSwap applies a Fredkin gate.
func (s *State) ApplyCSwap(ctrl, q1, q2 int) error {
	if err := s.checkDistinct(ctrl, q1, q2); err != nil {
		return err
	}
	cm := 1 << uint(ctrl)
	m1 := 1 << uint(q1)
	m2 := 1 << uint(q2)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i&cm != 0 && i&m1 != 0 && i&m2 == 0 {
				j := (i &^ m1) | m2
				a[i], a[j] = a[j], a[i]
			}
		}
	})
	return nil
}

// ApplyPermute applies a basis-state permutation over the listed qubits:
// local index ℓ (bit k of ℓ = value of qubits[k]) maps to perm[ℓ].
func (s *State) ApplyPermute(qubits []int, perm []uint64) error {
	nq := len(qubits)
	if len(perm) != 1<<uint(nq) {
		return fmt.Errorf("sim: permutation table size %d != 2^%d", len(perm), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	src := make([]complex128, len(s.amps))
	copy(src, s.amps)
	a := s.amps
	masks := make([]int, nq)
	for k, q := range qubits {
		masks[k] = 1 << uint(q)
	}
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			local := 0
			for k := range masks {
				if i&masks[k] != 0 {
					local |= 1 << uint(k)
				}
			}
			to := int(perm[local])
			j := i
			for k := range masks {
				if to&(1<<uint(k)) != 0 {
					j |= masks[k]
				} else {
					j &^= masks[k]
				}
			}
			a[j] = src[i]
		}
	})
	return nil
}

// ApplyInit initializes the listed qubits to the given local state. The
// listed qubits must currently be in |0…0⟩ (i.e. every amplitude with any
// of those bits set must vanish); this keeps initialization unitary-free
// but well-defined mid-circuit.
func (s *State) ApplyInit(qubits []int, amps []complex128) error {
	nq := len(qubits)
	if len(amps) != 1<<uint(nq) {
		return fmt.Errorf("sim: init state size %d != 2^%d", len(amps), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	norm := 0.0
	for _, a := range amps {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		return fmt.Errorf("sim: init state not normalized (norm² = %v)", norm)
	}
	var anyMask int
	masks := make([]int, nq)
	for k, q := range qubits {
		masks[k] = 1 << uint(q)
		anyMask |= masks[k]
	}
	for i, a := range s.amps {
		if i&anyMask != 0 && cmplx.Abs(a) > 1e-12 {
			return fmt.Errorf("sim: init target qubits not in |0…0⟩ (amplitude at %d)", i)
		}
	}
	src := make([]complex128, len(s.amps))
	copy(src, s.amps)
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			local := 0
			for k := range masks {
				if i&masks[k] != 0 {
					local |= 1 << uint(k)
				}
			}
			base := i &^ anyMask
			a[i] = src[base] * amps[local]
		}
	})
	return nil
}

// ApplyDiagonal multiplies each amplitude by the phase selected by the
// local index over the listed qubits (indexing as in ApplyPermute).
func (s *State) ApplyDiagonal(qubits []int, phases []complex128) error {
	nq := len(qubits)
	if len(phases) != 1<<uint(nq) {
		return fmt.Errorf("sim: diagonal table size %d != 2^%d", len(phases), nq)
	}
	if err := s.checkDistinct(qubits...); err != nil {
		return err
	}
	masks := make([]int, nq)
	for k, q := range qubits {
		masks[k] = 1 << uint(q)
	}
	a := s.amps
	parallelFor(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			local := 0
			for k := range masks {
				if i&masks[k] != 0 {
					local |= 1 << uint(k)
				}
			}
			a[i] *= phases[local]
		}
	})
	return nil
}

func (s *State) checkDistinct(qs ...int) error {
	for i, q := range qs {
		if q < 0 || q >= s.n {
			return fmt.Errorf("sim: qubit %d out of [0,%d)", q, s.n)
		}
		for j := 0; j < i; j++ {
			if qs[j] == q {
				return fmt.Errorf("sim: duplicate qubit %d", q)
			}
		}
	}
	return nil
}

// ExpectationDiagonal returns Σ_k |amp_k|² f(k) for a diagonal observable
// f over basis indices — the QAOA expected-cut evaluator.
func (s *State) ExpectationDiagonal(f func(uint64) float64) float64 {
	total := 0.0
	for k, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			total += p * f(uint64(k))
		}
	}
	return total
}

// Probabilities returns the full Born distribution. The slice is freshly
// allocated.
func (s *State) Probabilities() []float64 {
	ps := make([]float64, len(s.amps))
	parallelFor(len(s.amps), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a := s.amps[i]
			ps[i] = real(a)*real(a) + imag(a)*imag(a)
		}
	})
	return ps
}
