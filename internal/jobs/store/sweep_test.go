package store

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSweepRecordReplayAndCompaction pins the sweep extension of the
// event schema: Points survives the submitted event, the done event's
// Results list survives replay AND a compaction rewrite, and result files
// referenced only by a sweep record are exempt from GC.
func TestSweepRecordReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	bundle := json.RawMessage(`{"fake":"sweep-bundle"}`)
	keys := []string{sampleKey(1), sampleKey(2), sampleKey(3)}
	for i, k := range keys {
		if err := s.PutResult(k, sampleResult(i)); err != nil {
			t.Fatal(err)
		}
	}
	evs := []Event{
		{T: EvSubmitted, Job: "job-00000001", At: tstamp(1), Key: sampleKey(9), Engine: "e", Bundle: bundle, Points: 3},
		{T: EvStarted, Job: "job-00000001", At: tstamp(2), Shards: 2},
		{T: EvDone, Job: "job-00000001", At: tstamp(3), Engine: "e", Results: keys},
	}
	for _, ev := range evs {
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}

	check := func(stage string, st *Store) {
		t.Helper()
		recs := st.Records()
		if len(recs) != 1 {
			t.Fatalf("%s: %d records, want 1", stage, len(recs))
		}
		r := recs[0]
		if r.State != StateDone || r.Points != 3 || !reflect.DeepEqual(r.Results, keys) {
			t.Fatalf("%s: record state=%s points=%d results=%v", stage, r.State, r.Points, r.Results)
		}
		if r.Bundle != nil {
			t.Fatalf("%s: terminal record kept its bundle", stage)
		}
	}
	check("live", s)

	// Crash image: reopen without closing.
	s2, err := Open(dir, Options{MaxResults: 1})
	if err != nil {
		t.Fatal(err)
	}
	check("replayed", s2)

	// Compaction rewrites from the record table; the sweep fields must
	// round-trip through recordEvents, and gcResults must treat every
	// per-point key as referenced even with MaxResults=1.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	check("compacted", s2)
	for _, k := range keys {
		if !s2.HasResult(k) {
			t.Fatalf("GC removed sweep-referenced result %s", k)
		}
	}
	s.Close()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	check("reopened after compaction", s3)
}
