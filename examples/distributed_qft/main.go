// Distributed execution: the communication context service (§4.3.1) in
// action. A QFT is partitioned across QPUs; crossing CX gates become
// coherent teleported CNOTs backed by EPR pairs, and the middle layer
// reports the communication volume a scheduler would need — the cost
// dimension the paper's §2 example says today's stacks hide.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/comm"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/runtime"
	"repro/internal/transpile"
)

func main() {
	// Accounting sweep: QFT(n) over 2 QPUs.
	fmt.Println("communication accounting, QFT(n) block-split over 2 QPUs:")
	fmt.Println("  n   crossing-cx   EPR pairs   classical bits")
	basis := []string{"sx", "rz", "cx"}
	for _, n := range []int{4, 6, 8, 10} {
		circ, err := algolib.QFTCircuit(n, 0, true, false)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: basis, OptimizationLevel: 1})
		if err != nil {
			log.Fatal(err)
		}
		part, err := comm.BlockPartition(n, 2, (n+1)/2)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := comm.Analyze(tr.Circuit, part)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-2d     %5d        %5d          %5d\n",
			n, plan.CrossingGates, plan.EPRPairs, plan.ClassicalBits)
	}

	// Executable distributed run: a width-3 QFT over two QPUs,
	// teleportation inserted, simulated exactly (each teleported CX
	// consumes a fresh EPR ancilla pair, so the simulable width bounds
	// the demo size; Analyze above covers the larger sweeps). The context
	// is the only thing that changed versus a local run.
	fmt.Println("\nexecutable distributed run: QFT(3)+measure over 2 QPUs")
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 3)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		log.Fatal(err)
	}
	seq := qop.Sequence{qft, algolib.NewMeasurement(reg)}
	ctx := ctxdesc.NewGate("gate.statevector", 4096, 11)
	ctx.Comm = &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 2, AllowTeleport: true}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  plan: %+v\n", res.Meta["comm"])
	fmt.Printf("  %d outcomes over %d shots (QFT|0…0⟩ is uniform: expect 8 outcomes ≈ 512 each)\n",
		len(res.Entries), res.Samples)

	// Policy enforcement: the same job with teleportation forbidden.
	noTele := ctx.Clone()
	noTele.Comm.AllowTeleport = false
	b2 := b.WithContext(noTele)
	if _, err := runtime.Submit(b2, runtime.Options{}); err != nil {
		fmt.Printf("\nwith allow_teleport=false the middle layer refuses, as it must:\n  %v\n", err)
	} else {
		log.Fatal("crossing gates executed without teleportation permission")
	}
}
