// Package runtime is the middle layer's execution engine: it validates a
// submission bundle (semantic checks plus JSON Schema conformance),
// selects a backend — from the explicit context or, absent one, from the
// intent artifacts' shape and cost hints, the scheduler role the paper's
// §2 cost_hint discussion motivates — executes it, and returns decoded
// results.
package runtime

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/qop"
	"repro/internal/result"
)

// Options tune a submission.
type Options struct {
	// SkipSchemaValidation bypasses the raw JSON Schema pass (the
	// semantic pass always runs). Artifacts built by algolib always
	// conform; artifacts from other tools should keep this false.
	SkipSchemaValidation bool
	// AllowMidCircuit forwards to sequence validation.
	AllowMidCircuit bool
	// Shards is the per-job parallelism grant forwarded to backends that
	// implement backend.Sharded (the statevector engine splits its
	// amplitude sweeps into this many persistent shards). 0 lets the
	// engine choose; the jobs scheduler sets it so a lone big simulation
	// takes every core while concurrent jobs stay narrow.
	Shards int
	// Stages, when non-nil, receives per-stage timing callbacks from
	// backends implementing backend.Staged (transpile/compile/execute/
	// sample for the gate path). The jobs layer wires this to per-job
	// span logs; backends without stage support ignore it.
	Stages backend.StageFunc
	// Profile requests the kernel-granular execution profile from
	// backends implementing backend.Profiled: the per-kernel table lands
	// in the result's Meta["profile"]. Backends without profiling support
	// execute normally and return no profile. Observational only — the
	// result entries are bit-identical with or without it.
	Profile bool
}

// SelectEngine picks an engine for a bundle with no explicit exec block:
// a bundle whose operators are a single Ising problem is annealing work;
// everything else goes to the gate simulator. Cost hints gate a guardrail:
// beyond MaxGateTwoQ two-qubit gates the statevector engine would be
// impractical and submission is refused rather than silently mis-placed.
func SelectEngine(b *bundle.Bundle) (string, error) {
	hasIsing := false
	onlyIsing := true
	for _, op := range b.Operators {
		switch op.RepKind {
		case qop.IsingProblem:
			hasIsing = true
		case qop.Measurement:
		default:
			onlyIsing = false
		}
	}
	if hasIsing && onlyIsing {
		return "anneal.sa", nil
	}
	if hasIsing {
		return "", fmt.Errorf("runtime: bundle mixes ISING_PROBLEM with gate-path operators; split it or set exec.engine explicitly")
	}
	hint, _ := b.Operators.TotalCostHint()
	if hint.TwoQ > MaxGateTwoQ {
		return "", fmt.Errorf("runtime: cost hint of %d two-qubit gates exceeds the statevector guardrail (%d); no registered engine can take this job", hint.TwoQ, MaxGateTwoQ)
	}
	return "gate.statevector", nil
}

// MaxGateTwoQ is the scheduler guardrail on hinted two-qubit counts.
const MaxGateTwoQ = 1_000_000

// Submit validates and executes a bundle.
func Submit(b *bundle.Bundle, opts Options) (*result.Result, error) {
	if err := b.Validate(qop.ValidateOptions{AllowMidCircuit: opts.AllowMidCircuit}); err != nil {
		return nil, err
	}
	if !opts.SkipSchemaValidation {
		if err := b.ValidateAgainstSchemas(); err != nil {
			return nil, err
		}
	}
	engine := ""
	if b.Context != nil && b.Context.Exec != nil {
		engine = b.Context.Exec.Engine
	}
	if engine == "" {
		selected, err := SelectEngine(b)
		if err != nil {
			return nil, err
		}
		engine = selected
	}
	be, err := backend.Get(engine)
	if err != nil {
		return nil, err
	}
	var res *result.Result
	if pb, ok := be.(backend.Profiled); ok && opts.Profile {
		res, err = pb.ExecuteProfiled(b, opts.Shards, opts.Stages)
	} else if tb, ok := be.(backend.Staged); ok && (opts.Shards > 0 || opts.Stages != nil) {
		res, err = tb.ExecuteStaged(b, opts.Shards, opts.Stages)
	} else if sb, ok := be.(backend.Sharded); ok && opts.Shards > 0 {
		res, err = sb.ExecuteSharded(b, opts.Shards)
	} else {
		res, err = be.Execute(b)
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: engine %s: %w", engine, err)
	}
	if fp, ferr := b.Fingerprint(); ferr == nil {
		if res.Meta == nil {
			res.Meta = map[string]any{}
		}
		res.Meta["intent_fingerprint"] = fp
	}
	return res, nil
}

// SubmitSweep validates the sweep template bundle once and executes the
// given points, invoking each per completed point with its global index.
// concrete[k] is the materialized bundle for point indices[k] (see
// bundle.BindPoint); backends implementing backend.Sweeper compile the
// template once and bind per point, others — and points the sweep path
// cannot serve exactly — run their concrete bundle through the ordinary
// Submit path. Either way each point's result, including its
// intent_fingerprint, is what Submit(concrete[k]) would have produced.
func SubmitSweep(b *bundle.Bundle, concrete []*bundle.Bundle, indices []int, opts Options, each func(i int, res *result.Result) error) error {
	if len(concrete) != len(indices) {
		return fmt.Errorf("runtime: %d concrete bundles for %d indices", len(concrete), len(indices))
	}
	if b.Context == nil || b.Context.Sweep == nil {
		return fmt.Errorf("runtime: sweep submission without a sweep context block")
	}
	if err := b.Validate(qop.ValidateOptions{AllowMidCircuit: opts.AllowMidCircuit}); err != nil {
		return err
	}
	if !opts.SkipSchemaValidation {
		if err := b.ValidateAgainstSchemas(); err != nil {
			return err
		}
	}
	engine := ""
	if b.Context.Exec != nil {
		engine = b.Context.Exec.Engine
	}
	if engine == "" {
		selected, err := SelectEngine(b)
		if err != nil {
			return err
		}
		engine = selected
	}
	be, err := backend.Get(engine)
	if err != nil {
		return err
	}
	sweeper, ok := be.(backend.Sweeper)
	if !ok {
		// Engines without a parametric path run every point concretely.
		for k, gi := range indices {
			res, err := Submit(concrete[k], opts)
			if err != nil {
				return fmt.Errorf("runtime: point %d: %w", gi, err)
			}
			if err := each(gi, res); err != nil {
				return err
			}
		}
		return nil
	}
	pos := make(map[int]int, len(indices))
	for k, gi := range indices {
		pos[gi] = k
	}
	err = sweeper.ExecuteSweep(b, concrete, indices, opts.Shards, opts.Stages, opts.Profile, func(i int, res *result.Result) error {
		if k, known := pos[i]; known {
			// BindPoint stamps the bound bundle's provenance with a fresh
			// intent fingerprint; reuse it rather than re-hashing the whole
			// bundle on the per-point hot path.
			fp := ""
			if concrete[k].Provenance != nil {
				fp = concrete[k].Provenance.IntentFingerprint
			}
			if fp == "" {
				if h, ferr := concrete[k].Fingerprint(); ferr == nil {
					fp = h
				}
			}
			if fp != "" {
				if res.Meta == nil {
					res.Meta = map[string]any{}
				}
				res.Meta["intent_fingerprint"] = fp
			}
		}
		return each(i, res)
	})
	if err != nil {
		return fmt.Errorf("runtime: engine %s: %w", engine, err)
	}
	return nil
}
