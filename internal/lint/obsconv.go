package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// metricNameRE is the registry's own validName contract plus the
// Prometheus best-practice shape: lower-snake_case starting with a
// letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// obsRegMethods are the internal/obs Registry registration entry points.
var obsRegMethods = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"GaugeFunc": true,
	"Histogram": true,
}

// ObsConv enforces the Prometheus exposition conventions the /metrics
// surface promises: metric names are lower-snake_case; counters (and
// only counters) end in _total; nothing claims the _count/_sum/_bucket
// suffixes the histogram renderer owns; a name is never registered
// twice in one registry construction, nor with two different instrument
// kinds in one package (the registry panics on a kind clash at
// runtime — this finds it at vet time); and a registration with empty
// help text is only valid as a lookup of a name some other call in the
// package registers with real help.
func ObsConv() *Analyzer {
	return &Analyzer{
		Name: "obsconv",
		Doc:  "obs instrument names follow Prometheus conventions and register exactly once per construction",
		Run:  runObsConv,
	}
}

// obsReg is one literal-name registration call site.
type obsReg struct {
	name  string
	kind  string // method name: Counter, Gauge, GaugeFunc, Histogram
	help  string
	scope string // enclosing function (duplicate detection unit)
	node  ast.Node
}

func runObsConv(p *Package) []Diagnostic {
	var regs []obsReg
	for _, f := range p.Files {
		if p.inTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			scope := "package-level init"
			if fd, ok := decl.(*ast.FuncDecl); ok {
				scope = fd.Name.Name
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if r, ok := p.obsRegistration(call); ok {
					r.scope = scope
					regs = append(regs, r)
				}
				return true
			})
		}
	}
	if len(regs) == 0 {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      p.position(n),
			Analyzer: "obsconv",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	kindOf := map[string]string{}   // name → first kind seen
	seenIn := map[string]ast.Node{} // scope+name → first registration
	helpFor := map[string]bool{}    // name → registered with non-empty help somewhere
	for _, r := range regs {
		if r.help != "" {
			helpFor[r.name] = true
		}
	}
	for _, r := range regs {
		if !metricNameRE.MatchString(r.name) {
			report(r.node, "metric name %q is not lower-snake_case ([a-z][a-z0-9_]*)", r.name)
		}
		if r.kind == "Counter" && !strings.HasSuffix(r.name, "_total") {
			report(r.node, "counter %q must end in _total", r.name)
		}
		if r.kind != "Counter" && strings.HasSuffix(r.name, "_total") {
			report(r.node, "%s %q must not end in _total (reserved for counters)", strings.ToLower(r.kind), r.name)
		}
		for _, suffix := range []string{"_count", "_sum", "_bucket"} {
			if strings.HasSuffix(r.name, suffix) {
				report(r.node, "metric name %q ends in %s, which the histogram exposition owns", r.name, suffix)
			}
		}
		if first, ok := kindOf[r.name]; !ok {
			kindOf[r.name] = r.kind
		} else if first != r.kind {
			report(r.node, "metric %q registered as %s here but as %s elsewhere in the package (the registry panics on kind clashes)", r.name, r.kind, first)
		}
		key := r.scope + "\x00" + r.name
		if _, dup := seenIn[key]; dup {
			report(r.node, "duplicate registration of %q in %s", r.name, r.scope)
		} else {
			seenIn[key] = r.node
		}
		if r.help == "" && !helpFor[r.name] {
			report(r.node, "metric %q has empty help and no registration with help in this package — lookup of a never-registered name?", r.name)
		}
	}
	return diags
}

// obsRegistration matches a call to an internal/obs Registry
// registration method with a literal metric name, returning the parsed
// site. Non-literal names are invisible to static checking and skipped.
func (p *Package) obsRegistration(call *ast.CallExpr) (obsReg, bool) {
	fn := p.funcObj(call)
	if fn == nil || !obsRegMethods[fn.Name()] {
		return obsReg{}, false
	}
	pkg, typ := recvTypePkgPath(fn)
	if typ != "Registry" || !hasPathSuffix(pkg, "internal/obs") {
		return obsReg{}, false
	}
	if len(call.Args) < 2 {
		return obsReg{}, false
	}
	name, ok := stringLit(call.Args[0])
	if !ok {
		return obsReg{}, false
	}
	help, helpIsLit := stringLit(call.Args[1])
	if !helpIsLit {
		help = "<dynamic>" // non-literal help counts as provided
	}
	return obsReg{name: name, kind: fn.Name(), help: help, node: call}, true
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
