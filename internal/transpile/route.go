package transpile

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// Layout maps logical qubits to physical qubits.
type Layout []int

// identityLayout returns [0, 1, …, n-1].
func identityLayout(n int) Layout {
	l := make(Layout, n)
	for i := range l {
		l[i] = i
	}
	return l
}

// Physical returns the physical qubit currently holding logical qubit l.
func (l Layout) Physical(logical int) int { return l[logical] }

// coupling is an adjacency view over the context's coupling map.
type coupling struct {
	n   int
	adj map[int][]int
}

func newCoupling(pairs [][2]int, numQubits int) (*coupling, error) {
	c := &coupling{n: numQubits, adj: map[int][]int{}}
	for _, p := range pairs {
		a, b := p[0], p[1]
		if a == b {
			return nil, fmt.Errorf("transpile: coupling self-loop (%d,%d)", a, b)
		}
		if a >= numQubits || b >= numQubits || a < 0 || b < 0 {
			return nil, fmt.Errorf("transpile: coupling pair (%d,%d) outside %d qubits", a, b, numQubits)
		}
		c.adj[a] = append(c.adj[a], b)
		c.adj[b] = append(c.adj[b], a)
	}
	for v := range c.adj {
		sort.Ints(c.adj[v])
	}
	return c, nil
}

func (c *coupling) connected(a, b int) bool {
	for _, v := range c.adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

// shortestPath returns a physical-qubit path from a to b inclusive (BFS),
// or nil if disconnected.
func (c *coupling) shortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := map[int]int{a: -1}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range c.adj[v] {
			if _, seen := prev[u]; seen {
				continue
			}
			prev[u] = v
			if u == b {
				var path []int
				for x := b; x != -1; x = prev[x] {
					path = append(path, x)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, u)
		}
	}
	return nil
}

// Route inserts SWAPs so every two-qubit gate acts on coupled physical
// qubits. It returns the routed circuit (over physical qubits), the final
// layout, and the number of SWAPs inserted. Gates on three or more qubits
// must be decomposed before routing.
func Route(c *circuit.Circuit, pairs [][2]int) (*circuit.Circuit, Layout, int, error) {
	if len(pairs) == 0 {
		return c.Copy(), identityLayout(c.NumQubits), 0, nil
	}
	coup, err := newCoupling(pairs, c.NumQubits)
	if err != nil {
		return nil, nil, 0, err
	}
	out := circuit.New(c.NumQubits, c.NumClbits)
	layout := identityLayout(c.NumQubits)
	// phys2log is the inverse mapping, kept in sync with layout.
	phys2log := identityLayout(c.NumQubits)
	swaps := 0

	swapPhys := func(p1, p2 int) {
		l1, l2 := phys2log[p1], phys2log[p2]
		layout[l1], layout[l2] = p2, p1
		phys2log[p1], phys2log[p2] = l2, l1
		out.Swap(p1, p2)
		swaps++
	}

	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpGate:
			switch len(ins.Qubits) {
			case 1:
				if err := out.Append(circuit.Instruction{Op: circuit.OpGate, Gate: ins.Gate,
					Qubits: []int{layout[ins.Qubits[0]]}, Params: append([]float64(nil), ins.Params...)}); err != nil {
					return nil, nil, 0, err
				}
			case 2:
				a := layout[ins.Qubits[0]]
				b := layout[ins.Qubits[1]]
				if !coup.connected(a, b) {
					path := coup.shortestPath(a, b)
					if path == nil {
						return nil, nil, 0, fmt.Errorf("transpile: instruction %d: physical qubits %d and %d are disconnected in the coupling map", idx, a, b)
					}
					// Move a's logical qubit along the path until adjacent
					// to b.
					for i := 0; i+2 < len(path); i++ {
						swapPhys(path[i], path[i+1])
					}
					a = layout[ins.Qubits[0]]
					b = layout[ins.Qubits[1]]
					if !coup.connected(a, b) {
						return nil, nil, 0, fmt.Errorf("transpile: instruction %d: routing failed to make %d and %d adjacent", idx, a, b)
					}
				}
				if err := out.Append(circuit.Instruction{Op: circuit.OpGate, Gate: ins.Gate,
					Qubits: []int{a, b}, Params: append([]float64(nil), ins.Params...)}); err != nil {
					return nil, nil, 0, err
				}
			default:
				return nil, nil, 0, fmt.Errorf("transpile: instruction %d: %d-qubit gate %q must be decomposed before routing", idx, len(ins.Qubits), ins.Gate)
			}
		case circuit.OpMeasure:
			mapped := circuit.Instruction{Op: circuit.OpMeasure,
				Qubits: make([]int, len(ins.Qubits)), Clbits: append([]int(nil), ins.Clbits...)}
			for i, q := range ins.Qubits {
				mapped.Qubits[i] = layout[q]
			}
			if err := out.Append(mapped); err != nil {
				return nil, nil, 0, err
			}
		case circuit.OpBarrier:
			mapped := circuit.Instruction{Op: circuit.OpBarrier, Qubits: make([]int, len(ins.Qubits))}
			for i, q := range ins.Qubits {
				mapped.Qubits[i] = layout[q]
			}
			if err := out.Append(mapped); err != nil {
				return nil, nil, 0, err
			}
		default:
			return nil, nil, 0, fmt.Errorf("transpile: instruction %d: opcode not routable; decompose first", idx)
		}
	}
	return out, layout, swaps, nil
}
